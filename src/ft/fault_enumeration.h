#pragma once

#include <cstdint>
#include <functional>

#include "ft/noise_injector.h"

namespace ftqc::ft {

// Exhaustive fault enumeration over a gadget experiment. The experiment is a
// callable that executes one full gadget run against the given injector and
// returns true when the run FAILED (by whatever criterion the experiment
// defines, e.g. "a logical error survives ideal decoding").
//
// This realizes the paper's order-ε analysis: a gadget is fault tolerant
// when no single fault fails it (§3), and its level-1 failure coefficient is
// the weighted count of failing fault *pairs* (Eq. 33's "21").
using GadgetExperiment = std::function<bool(NoiseInjector&)>;

// Which location kinds can fault (mirrors which ε knobs are nonzero).
using KindFilter = std::function<bool(LocationKind)>;

[[nodiscard]] inline KindFilter all_kinds() {
  return [](LocationKind) { return true; };
}
[[nodiscard]] inline KindFilter gate_kinds_only() {
  return [](LocationKind k) { return k != LocationKind::kStorage; };
}

// Restricts a scan to part of the gadget. The window [first_location,
// last_location) is expressed in the recorder's location indices; gadget
// drivers publish sub-gadget boundaries as markers (see
// FaultPointInjector::marker_window), so a scan can be aimed at, say, one
// level-2 ancilla preparation ("prep:A".."prep:A:end") or the block of
// interleaved level-1 recoveries ("exrec:A".."exrec:A:end") instead of the
// whole ~50k-location level-2 cycle.
// `location_stride > 1` subsamples every stride-th location for cheap
// smoke-level coverage of a gadget too large to scan exhaustively in a
// unit-tier test.
struct ScanOptions {
  KindFilter filter = all_kinds();
  size_t first_location = 0;
  size_t last_location = SIZE_MAX;
  size_t location_stride = 1;
};

struct SingleFaultScan {
  size_t num_locations = 0;       // fault opportunities on the noiseless path
  size_t faults_tried = 0;        // (location, variant) pairs executed
  size_t faults_failing = 0;      // of those, how many failed the gadget
  double weighted_failing = 0.0;  // Σ variant_weight over failing faults:
                                  // the coefficient of ε¹ in P(fail)
};

[[nodiscard]] SingleFaultScan scan_single_faults(const GadgetExperiment& run,
                                                 const ScanOptions& options);
[[nodiscard]] SingleFaultScan scan_single_faults(const GadgetExperiment& run,
                                                 const KindFilter& filter);

struct PairFaultScan {
  size_t pairs_tried = 0;
  size_t pairs_failing = 0;
  double weighted_failing = 0.0;  // Σ w1·w2 over failing pairs: the ε²
                                  // coefficient (the "A" of p1 = A ε²)
  double weighted_total = 0.0;    // Σ w1·w2 over all pairs (normalization)
};

// Enumerates ordered pairs loc1 < loc2 where loc2 ranges over the execution
// path taken once the first fault is armed (fault-dependent control flow —
// ancilla retries, syndrome repeats — lengthens the path; those locations
// are enumerated too).
[[nodiscard]] PairFaultScan scan_fault_pairs(const GadgetExperiment& run,
                                             const KindFilter& filter);

struct PairSampleScan {
  size_t pairs_sampled = 0;
  size_t pairs_failing = 0;  // malignant pairs among the samples
  [[nodiscard]] double malignant_fraction() const {
    return pairs_sampled > 0
               ? static_cast<double>(pairs_failing) /
                     static_cast<double>(pairs_sampled)
               : 0.0;
  }
};

// Monte Carlo estimate of the malignant-pair fraction: draws `num_samples`
// ordered fault pairs (location and variant uniform over the options
// window of the RECORDED noiseless path) and replays the gadget with both
// armed. Deterministic for a fixed seed. Exhaustive pair scans over a
// level-2 gadget are ~1e10 runs; sampling inside a marker window makes the
// bare-vs-exRec malignancy comparison affordable. Variants are clamped
// (FaultPointInjector::set_clamp_variants) in case the first fault reroutes
// control flow across the second location; windows that stay inside one
// straight-line sub-gadget are unaffected.
[[nodiscard]] PairSampleScan sample_fault_pairs(const GadgetExperiment& run,
                                                const ScanOptions& options,
                                                size_t num_samples,
                                                uint64_t seed);

// Two-window variant: the first fault is drawn from `first`, the second
// from `second` (windows must be ordered and disjoint: first.last_location
// <= second.first_location). This is how the cross-extraction malignancy of
// the bare level-2 gadget is measured — its failing pairs put one fault in
// EACH of the two ancilla preparations, a region pairing that uniform
// whole-cycle sampling rarely hits.
[[nodiscard]] PairSampleScan sample_fault_pairs(const GadgetExperiment& run,
                                                const ScanOptions& first,
                                                const ScanOptions& second,
                                                size_t num_samples,
                                                uint64_t seed);

}  // namespace ftqc::ft
