#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ft/noise_injector.h"
#include "sim/circuit.h"
#include "sim/frame_sim.h"

namespace ftqc::ft {

// Executes an ideal gadget circuit on a Pauli frame, announcing every fault
// opportunity to the injector: after each unitary (gate noise), after each
// R (preparation noise), before each M/MX (measurement noise), and at each
// TICK for every qubit of `active_qubits` that rested during the layer
// (storage noise, §6 "maximal parallelism": only the resting qubits decohere
// extra). Returns measurement flips relative to the noiseless reference.
//
// `active_qubits` names the qubits considered alive for storage accounting;
// gadget drivers pass the data block plus any in-flight ancillas and exclude
// qubits not yet prepared.
std::vector<uint8_t> run_gadget(sim::FrameSim& frame, const sim::Circuit& circuit,
                                NoiseInjector& injector,
                                std::span<const uint32_t> active_qubits);

}  // namespace ftqc::ft
