#pragma once

#include <unordered_map>

#include "codes/stabilizer_code.h"

namespace ftqc::codes {

// Minimum-weight lookup decoder: maps every syndrome to the lowest-weight
// Pauli producing it (ties broken by enumeration order). This realizes the
// paper's "ideal recovery" step — measure the syndrome, then apply the
// inferred unitary (§2) — and is used both inside recovery gadgets and for
// the end-of-experiment ideal decode of residual error frames.
class LookupDecoder {
 public:
  explicit LookupDecoder(const StabilizerCode& code);

  [[nodiscard]] const StabilizerCode& code() const { return code_; }

  // Correction for a measured syndrome. Unfilled syndromes (possible only if
  // the table could not be completed) decode to identity.
  [[nodiscard]] const pauli::PauliString& decode(const gf2::BitVec& syndrome) const;

  // Applies decode() to the error's own syndrome and reports whether the
  // corrected residual (error * correction) acts as a logical operator.
  [[nodiscard]] StabilizerCode::LogicalEffect residual_effect(
      const pauli::PauliString& error) const;

  // True iff the error is corrected without any logical damage.
  [[nodiscard]] bool corrects(const pauli::PauliString& error) const {
    return !residual_effect(error).any();
  }

  [[nodiscard]] size_t table_size() const { return table_.size(); }

 private:
  const StabilizerCode& code_;
  pauli::PauliString identity_;
  std::unordered_map<uint64_t, pauli::PauliString> table_;
};

}  // namespace ftqc::codes
