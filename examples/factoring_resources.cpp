// factoring_resources: the §6 machine-sizing exercise. How big a
// fault-tolerant quantum computer factors your number, at your hardware
// quality?
//
//   ./build/examples/factoring_resources [--smoke] [bits] [eps_gate] [eps_store]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "example_util.h"
#include "threshold/resources.h"

int main(int argc, char** argv) {
  using namespace ftqc;
  using namespace ftqc::threshold;

  strip_smoke_flag(argc, argv);  // analytic: smoke changes nothing
  FactoringWorkload load;
  load.bits = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 432;
  const double eps_gate = argc > 2 ? std::atof(argv[2]) : 1e-6;
  const double eps_store = argc > 3 ? std::atof(argv[3]) : eps_gate;

  std::printf("Factoring a %zu-bit number with Shor's algorithm "
              "(Beckman et al. costs):\n", load.bits);
  std::printf("  logical qubits : %zu  (5n)\n", load.logical_qubits());
  std::printf("  Toffoli gates  : %.2e  (38 n^3)\n", load.toffoli_gates());
  std::printf("  error budgets  : gate %.1e, storage %.1e\n\n",
              load.target_gate_error(), load.target_storage_error());

  const ResourceModel model;
  const auto plan = model.plan(load, eps_gate, eps_store);
  if (!plan.feasible) {
    std::printf("Hardware at eps_gate=%.1e / eps_store=%.1e is ABOVE the\n"
                "effective threshold: no amount of concatenation helps (§5).\n",
                eps_gate, eps_store);
    return 1;
  }
  Table table({"quantity", "value"});
  table.add_row({"concatenation levels", strfmt("%zu", plan.levels)});
  table.add_row({"block size (7^L)", strfmt("%zu", plan.block_size)});
  table.add_row({"gate error achieved", strfmt("%.2e", plan.gate_error_achieved)});
  table.add_row(
      {"storage error achieved", strfmt("%.2e", plan.storage_error_achieved)});
  table.add_row({"data qubits", strfmt("%zu", plan.data_qubits)});
  table.add_row({"total qubits (w/ ancillas)", strfmt("%zu", plan.total_qubits)});
  table.print();

  std::printf("\nThe paper's benchmark (432 bits, eps = 1e-6): L = 3,\n"
              "block 343, ~1e6 qubits. Run with different eps to see the\n"
              "levels collapse as hardware improves.\n");
  return 0;
}
