#include "pauli/pauli_string.h"

#include "common/check.h"

namespace ftqc::pauli {

PauliString PauliString::from_string(const std::string& text) {
  size_t start = 0;
  uint8_t phase = 0;
  if (start < text.size() && (text[start] == '+' || text[start] == '-')) {
    if (text[start] == '-') phase = 2;
    ++start;
  }
  if (start < text.size() && text[start] == 'i') {
    phase = (phase + 1) & 3;
    ++start;
  }
  PauliString p(text.size() - start);
  p.phase_ = phase;
  for (size_t q = 0; start + q < text.size(); ++q) {
    p.set_pauli(q, text[start + q]);
  }
  return p;
}

PauliString PauliString::single(size_t n, size_t q, char pauli) {
  PauliString p(n);
  p.set_pauli(q, pauli);
  return p;
}

char PauliString::pauli_at(size_t q) const {
  const bool x = x_.get(q);
  const bool z = z_.get(q);
  if (x && z) return 'Y';
  if (x) return 'X';
  if (z) return 'Z';
  return 'I';
}

void PauliString::set_pauli(size_t q, char pauli) {
  switch (pauli) {
    case 'I':
      x_.set(q, false);
      z_.set(q, false);
      break;
    case 'X':
      x_.set(q, true);
      z_.set(q, false);
      break;
    case 'Y':
      x_.set(q, true);
      z_.set(q, true);
      break;
    case 'Z':
      x_.set(q, false);
      z_.set(q, true);
      break;
    default:
      FTQC_CHECK(false, std::string("invalid Pauli character: ") + pauli);
  }
}

PauliString PauliString::operator*(const PauliString& other) const {
  FTQC_CHECK(num_qubits() == other.num_qubits(), "Pauli product size mismatch");
  PauliString out(num_qubits());
  // Convention: the (x,z) = (1,1) pair is the literal Pauli Y (= iXZ), and
  // phase_ is a global i^k prefactor. The per-qubit product then contributes
  // i^(±1) whenever two distinct non-identity Paulis meet, with the cyclic
  // order X->Y->Z->X giving +i (e.g. XY = iZ) and the reverse giving -i.
  int phase = phase_ + other.phase_;
  for (size_t q = 0; q < num_qubits(); ++q) {
    const int x1 = x_.get(q), z1 = z_.get(q);
    const int x2 = other.x_.get(q), z2 = other.z_.get(q);
    phase += pauli_product_phase(x1 != 0, z1 != 0, x2 != 0, z2 != 0);
  }
  out.x_ = x_ ^ other.x_;
  out.z_ = z_ ^ other.z_;
  out.phase_ = static_cast<uint8_t>(((phase % 4) + 4) % 4);
  return out;
}

std::string PauliString::to_string() const {
  static const char* kPhase[] = {"+", "+i", "-", "-i"};
  std::string s = kPhase[phase_];
  for (size_t q = 0; q < num_qubits(); ++q) s += pauli_at(q);
  return s;
}

int pauli_product_phase(bool x1, bool z1, bool x2, bool z2) {
  // Encode each single-qubit Pauli as 0=I, 1=X, 2=Y, 3=Z and use the
  // exhaustive multiplication table of exponents of i:
  //   X*Y = iZ, Y*Z = iX, Z*X = iY, and reversed orders give -i.
  static constexpr int kCode[2][2] = {{0, 3}, {1, 2}};  // [x][z]
  const int a = kCode[x1][z1];
  const int b = kCode[x2][z2];
  if (a == 0 || b == 0 || a == b) return 0;
  // Cyclic order X->Y->Z->X gives +i; anti-cyclic gives -i.
  const bool cyclic = (b - a + 3) % 3 == 1;
  return cyclic ? 1 : 3;
}

}  // namespace ftqc::pauli
