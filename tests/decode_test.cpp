// The src/decode matching subsystem: exhaustive minimum-weight pins against
// brute force, strategy-vs-strategy cost properties, and the 3D space-time
// decoder for faulty syndrome measurement.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "decode/decoder.h"
#include "decode/matching.h"
#include "decode/spacetime.h"
#include "topo/toric_code.h"

namespace ftqc::decode {
namespace {

using topo::ToricCode;

constexpr size_t kUnreachable = std::numeric_limits<size_t>::max();

std::shared_ptr<const MwpmMatching> mwpm() {
  static const auto strategy = std::make_shared<const MwpmMatching>();
  return strategy;
}

std::shared_ptr<const GreedyMatching> greedy() {
  static const auto strategy = std::make_shared<const GreedyMatching>();
  return strategy;
}

// Minimum error weight for every plaquette syndrome of a small lattice, by
// Gray-code enumeration of all 2^(2L^2) X-error patterns with the syndrome
// maintained incrementally (each step flips one edge = two syndrome bits).
std::vector<size_t> brute_force_min_weights(const ToricCode& code) {
  const size_t nq = code.num_qubits();
  const size_t ns = code.num_plaquettes();
  EXPECT_LE(nq, 20u) << "brute force is for small lattices only";
  std::vector<uint32_t> edge_toggles(nq, 0);
  for (size_t e = 0; e < nq; ++e) {
    gf2::BitVec err(nq);
    err.set(e, true);
    edge_toggles[e] = static_cast<uint32_t>(code.plaquette_syndrome(err).to_u64());
  }
  std::vector<size_t> min_weight(size_t{1} << ns, kUnreachable);
  min_weight[0] = 0;
  uint64_t pattern = 0;
  uint32_t syndrome = 0;
  int weight = 0;
  for (uint64_t i = 1; i < (uint64_t{1} << nq); ++i) {
    const int bit = __builtin_ctzll(i);
    pattern ^= uint64_t{1} << bit;
    weight += ((pattern >> bit) & 1) != 0 ? 1 : -1;
    syndrome ^= edge_toggles[static_cast<size_t>(bit)];
    min_weight[syndrome] =
        std::min(min_weight[syndrome], static_cast<size_t>(weight));
  }
  return min_weight;
}

void expect_mwpm_matches_brute_force(size_t lattice) {
  const ToricCode code(lattice);
  const ToricMatchingDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  const auto min_weight = brute_force_min_weights(code);
  size_t checked = 0;
  for (size_t s = 0; s < min_weight.size(); ++s) {
    const bool even = (__builtin_popcountll(s) & 1) == 0;
    // On a torus the boundary map reaches exactly the even-parity syndromes.
    ASSERT_EQ(min_weight[s] != kUnreachable, even) << "syndrome " << s;
    if (!even) continue;
    gf2::BitVec syndrome(code.num_plaquettes());
    for (size_t b = 0; b < code.num_plaquettes(); ++b) {
      syndrome.set(b, ((s >> b) & 1) != 0);
    }
    const gf2::BitVec correction = decoder.decode(syndrome);
    EXPECT_EQ(code.plaquette_syndrome(correction), syndrome)
        << "syndrome " << s << " not cleared";
    EXPECT_EQ(correction.popcount(), min_weight[s])
        << "syndrome " << s << " corrected above minimum weight";
    ++checked;
  }
  EXPECT_EQ(checked, min_weight.size() / 2);
}

TEST(MwpmExhaustive, MatchesBruteForceMinimumWeightL2) {
  expect_mwpm_matches_brute_force(2);
}

TEST(MwpmExhaustive, MatchesBruteForceMinimumWeightL3) {
  expect_mwpm_matches_brute_force(3);
}

// In the exact-DP regime (<= MwpmOptions::exact_limit defects) the MWPM cost
// is a global optimum, so it can never exceed the greedy pairing's cost.
TEST(MatchingProperty, MwpmCostNeverExceedsGreedyOnRandomSyndromes) {
  const ToricCode code(6);
  Rng rng(71);
  const DistanceFn metric = [&](size_t a, size_t b) {
    return code.torus_site_distance(a, b);
  };
  for (int trial = 0; trial < 100; ++trial) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(0.05)) errors.set(e, true);
    }
    const gf2::BitVec syndrome = code.plaquette_syndrome(errors);
    std::vector<uint32_t> defects;
    for (size_t s = syndrome.first_set(); s < syndrome.size();
         s = syndrome.next_set(s + 1)) {
      defects.push_back(static_cast<uint32_t>(s));
    }
    // The guarantee only holds while the exact DP runs; the clustering
    // fallback above exact_limit is covered by the aggregate test below.
    if (defects.size() > MwpmOptions{}.exact_limit) continue;
    const DistanceFn defect_metric = [&](size_t a, size_t b) {
      return metric(defects[a], defects[b]);
    };
    const auto exact = mwpm()->match(defects.size(), defect_metric);
    const auto greedy_pairs = greedy()->match(defects.size(), defect_metric);
    EXPECT_LE(matching_cost(exact, defect_metric),
              matching_cost(greedy_pairs, defect_metric));
  }
}

// Above the exact limit the union-find clustering takes over; per-cluster
// optima are not a global guarantee, so the property is checked per shot for
// syndrome clearing and in aggregate for cost.
TEST(MatchingProperty, UnionFindFallbackClearsSyndromesAndStaysCompetitive) {
  const ToricCode code(8);
  const ToricMatchingDecoder exact_dec(code, ToricSide::kPlaquette, mwpm());
  const ToricMatchingDecoder greedy_dec(code, ToricSide::kPlaquette, greedy());
  Rng rng(73);
  size_t mwpm_total = 0, greedy_total = 0, fallback_trials = 0;
  for (int trial = 0; trial < 60; ++trial) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(0.10)) errors.set(e, true);
    }
    const gf2::BitVec syndrome = code.plaquette_syndrome(errors);
    if (syndrome.popcount() <= MwpmOptions{}.exact_limit) continue;
    ++fallback_trials;
    const gf2::BitVec mwpm_corr = exact_dec.decode(syndrome);
    const gf2::BitVec greedy_corr = greedy_dec.decode(syndrome);
    EXPECT_EQ(code.plaquette_syndrome(mwpm_corr), syndrome);
    mwpm_total += mwpm_corr.popcount();
    greedy_total += greedy_corr.popcount();
  }
  ASSERT_GT(fallback_trials, 10u) << "noise too weak to exercise the fallback";
  EXPECT_LE(mwpm_total, greedy_total);
}

TEST(SpacetimeDecoder, SingleDataErrorIsCorrectedExactly) {
  const ToricCode code(4);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  gf2::BitVec errors(code.num_qubits());
  errors.set(code.h_edge(1, 1), true);
  const gf2::BitVec truth = code.plaquette_syndrome(errors);
  // Error lands before round 1: rounds 0 sees vacuum, rounds 1..2 see it,
  // and the final trusted round confirms it.
  const std::vector<gf2::BitVec> syndromes = {
      gf2::BitVec(code.num_plaquettes()), truth, truth, truth};
  const gf2::BitVec correction = decoder.decode(syndromes);
  EXPECT_EQ(correction.popcount(), 1u);
  EXPECT_TRUE(correction.get(code.h_edge(1, 1)));
}

TEST(SpacetimeDecoder, SingleMeasurementErrorNeedsNoCorrection) {
  const ToricCode code(4);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  const gf2::BitVec vacuum(code.num_plaquettes());
  gf2::BitVec misread = vacuum;
  misread.set(5, true);  // one flipped syndrome bit in round 1 only
  const std::vector<gf2::BitVec> syndromes = {vacuum, misread, vacuum, vacuum};
  EXPECT_FALSE(decoder.decode(syndromes).any());
}

TEST(SpacetimeDecoder, DistinguishesDataFromMeasurementError) {
  const ToricCode code(4);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  gf2::BitVec errors(code.num_qubits());
  errors.set(code.v_edge(0, 2), true);
  const gf2::BitVec truth = code.plaquette_syndrome(errors);
  gf2::BitVec misread = truth;
  misread.flip(0);  // simultaneous misread far from the data defect pair
  const std::vector<gf2::BitVec> syndromes = {
      gf2::BitVec(code.num_plaquettes()), misread, truth, truth};
  const gf2::BitVec correction = decoder.decode(syndromes);
  EXPECT_EQ(correction.popcount(), 1u);
  EXPECT_TRUE(correction.get(code.v_edge(0, 2)));
}

TEST(SpacetimeDecoder, PhenomenologicalRunsAlwaysClearTheFinalSyndrome) {
  const ToricCode code(4);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  size_t failures = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const auto result =
        run_phenomenological_memory(decoder, 0.01, 0.01, 4, 900 + seed);
    EXPECT_TRUE(result.cleared) << "seed " << seed;
    failures += result.logical_fail ? 1 : 0;
  }
  // p = q = 1% sits well below the ~3% phenomenological threshold.
  EXPECT_LT(failures, 20u);
}

TEST(SpacetimeDecoder, FailureFallsWithLatticeSizeBelowThreshold) {
  const double p = 0.015;
  const auto failure_rate = [&](size_t lattice, size_t shots) {
    const ToricCode code(lattice);
    const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
    size_t failures = 0;
    for (uint64_t seed = 0; seed < shots; ++seed) {
      failures += run_phenomenological_memory(decoder, p, p, lattice,
                                              1300 + seed * 3)
                      .logical_fail
                      ? 1
                      : 0;
    }
    return static_cast<double>(failures) / static_cast<double>(shots);
  };
  EXPECT_LT(failure_rate(6, 500), failure_rate(3, 500) + 1e-9);
}

TEST(DecoderInterface, StrategiesArePluggableThroughOneCallSite) {
  const ToricCode code(6);
  Rng rng(79);
  gf2::BitVec errors(code.num_qubits());
  for (size_t e = 0; e < code.num_qubits(); ++e) {
    if (rng.bernoulli(0.04)) errors.set(e, true);
  }
  const gf2::BitVec syndrome = code.plaquette_syndrome(errors);
  const std::vector<std::shared_ptr<const MatchingStrategy>> strategies = {
      greedy(), mwpm()};
  for (const auto& strategy : strategies) {
    const std::unique_ptr<Decoder> decoder =
        std::make_unique<ToricMatchingDecoder>(code, ToricSide::kPlaquette,
                                               strategy);
    EXPECT_EQ(code.plaquette_syndrome(decoder->decode(syndrome)), syndrome)
        << decoder->name();
  }
}

TEST(DecoderInterface, ToricCodeWrapperStillUsesGreedyStrategy) {
  // ToricCode::decode_plaquette_syndrome delegates to the subsystem with the
  // greedy strategy; pin the equivalence so the rewire stays honest.
  const ToricCode code(6);
  const ToricMatchingDecoder greedy_dec(code, ToricSide::kPlaquette, greedy());
  Rng rng(83);
  for (int trial = 0; trial < 25; ++trial) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(0.06)) errors.set(e, true);
    }
    const gf2::BitVec syndrome = code.plaquette_syndrome(errors);
    EXPECT_EQ(code.decode_plaquette_syndrome(syndrome),
              greedy_dec.decode(syndrome));
  }
}

}  // namespace
}  // namespace ftqc::decode
