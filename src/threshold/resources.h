#pragma once

#include <cstddef>
#include <cstdint>

#include "threshold/flow.h"

namespace ftqc::threshold {

// The §6 resource estimate for factoring with Shor's algorithm, using the
// circuit costs of Beckman-Chari-Devabhaktuni-Preskill (ref. 47):
// 5n logical qubits and ~38 n³ Toffoli gates to factor an n-bit number.
struct FactoringWorkload {
  size_t bits = 432;  // the paper's 130-digit benchmark number

  [[nodiscard]] size_t logical_qubits() const { return 5 * bits; }
  [[nodiscard]] double toffoli_gates() const {
    const double n = static_cast<double>(bits);
    return 38.0 * n * n * n;
  }
  // Error budgets the paper quotes for a reasonable success probability:
  // per-Toffoli below ~1/#gates ("less than about 10^-9"), per-qubit storage
  // three orders tighter ("less than about 10^-12": every qubit rests
  // through each gate time across the whole machine).
  [[nodiscard]] double target_gate_error() const { return 1.0 / toffoli_gates(); }
  [[nodiscard]] double target_storage_error() const {
    return 1e-3 * target_gate_error();
  }
};

// Concatenated-code resource plan: choose the number of levels so both the
// gate and storage targets are met, then cost out the machine.
struct ResourcePlan {
  size_t levels = 0;
  size_t block_size = 0;        // 7^levels physical qubits per logical qubit
  double gate_error_achieved = 0;
  double storage_error_achieved = 0;
  size_t data_qubits = 0;       // logical qubits × block size
  size_t total_qubits = 0;      // including ancilla factories
  bool feasible = false;
};

struct ResourceModel {
  // Effective per-level flow for the full fault-tolerant gadgetry. The
  // combinatorial 1/21 applies to code-capacity noise; the §5 circuit-level
  // analysis (ref. 23) yields an effective threshold near 1e-5..1e-4 once
  // ancilla preparation and the Toffoli construction are costed, which is
  // the calibration that reproduces the paper's L = 3 / block-343 table.
  QuadraticFlow gate_flow{/*coefficient=*/1e5};
  QuadraticFlow storage_flow{/*coefficient=*/1e5};
  // Ancilla overhead: Fig. 9 needs ~2 ancilla blocks in flight per data
  // block, plus workspace (the paper: block 343 on 2160 logical qubits is
  // ~7.4e5 data qubits, "of order 10^6" with ancillas).
  double ancilla_factor = 1.35;

  [[nodiscard]] ResourcePlan plan(const FactoringWorkload& load,
                                  double eps_gate, double eps_store) const;
};

}  // namespace ftqc::threshold
