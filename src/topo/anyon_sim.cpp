#include "topo/anyon_sim.h"

#include <cmath>

#include "common/check.h"

namespace ftqc::topo {

namespace {
constexpr size_t kBitsPerPair = 6;
constexpr size_t kMaxPairs = 10;
}  // namespace

AnyonSim::AnyonSim(const A5& group, uint64_t seed) : group_(group), rng_(seed) {
  amplitudes_.emplace(0, std::complex<double>(1, 0));
}

AnyonSim::Key AnyonSim::key_set(Key key, size_t pair, size_t element_index) const {
  const size_t shift = kBitsPerPair * pair;
  key &= ~(Key{0x3F} << shift);
  key |= static_cast<Key>(element_index) << shift;
  return key;
}

size_t AnyonSim::key_get(Key key, size_t pair) const {
  return (key >> (kBitsPerPair * pair)) & 0x3F;
}

size_t AnyonSim::create_pair(const Perm& u) {
  FTQC_CHECK(num_pairs_ < kMaxPairs, "pair register full");
  const size_t pair = num_pairs_++;
  const size_t idx = group_.index_of(u);
  std::unordered_map<Key, std::complex<double>> next;
  next.reserve(amplitudes_.size());
  for (const auto& [key, amp] : amplitudes_) {
    next.emplace(key_set(key, pair, idx), amp);
  }
  amplitudes_ = std::move(next);
  return pair;
}

size_t AnyonSim::create_vacuum_pair(const Perm& representative) {
  FTQC_CHECK(num_pairs_ < kMaxPairs, "pair register full");
  const size_t pair = num_pairs_++;
  const auto cls = group_.conjugacy_class(representative);
  const double scale = 1.0 / std::sqrt(static_cast<double>(cls.size()));
  std::unordered_map<Key, std::complex<double>> next;
  next.reserve(amplitudes_.size() * cls.size());
  for (const auto& [key, amp] : amplitudes_) {
    for (size_t idx : cls) {
      next[key_set(key, pair, idx)] += amp * scale;
    }
  }
  amplitudes_ = std::move(next);
  return pair;
}

void AnyonSim::pull_through(size_t target, size_t through) {
  FTQC_CHECK(target < num_pairs_ && through < num_pairs_ && target != through,
             "bad pair indices");
  std::unordered_map<Key, std::complex<double>> next;
  next.reserve(amplitudes_.size());
  for (const auto& [key, amp] : amplitudes_) {
    const Perm u_t = group_.element(key_get(key, target));
    const Perm u_c = group_.element(key_get(key, through));
    const size_t idx = group_.index_of(u_t.conjugated_by(u_c));
    next[key_set(key, target, idx)] += amp;
  }
  amplitudes_ = std::move(next);
}

void AnyonSim::pull_through_inverse(size_t target, size_t through) {
  std::unordered_map<Key, std::complex<double>> next;
  next.reserve(amplitudes_.size());
  for (const auto& [key, amp] : amplitudes_) {
    const Perm u_t = group_.element(key_get(key, target));
    const Perm u_c = group_.element(key_get(key, through));
    const size_t idx = group_.index_of(u_t.conjugated_by(u_c.inverse()));
    next[key_set(key, target, idx)] += amp;
  }
  amplitudes_ = std::move(next);
}

void AnyonSim::exchange(size_t a, size_t b) {
  FTQC_CHECK(a < num_pairs_ && b < num_pairs_ && a != b, "bad pair indices");
  std::unordered_map<Key, std::complex<double>> next;
  next.reserve(amplitudes_.size());
  for (const auto& [key, amp] : amplitudes_) {
    const Perm u_a = group_.element(key_get(key, a));
    const Perm u_b = group_.element(key_get(key, b));
    Key k = key_set(key, a, group_.index_of(u_b));
    k = key_set(k, b, group_.index_of(u_a.conjugated_by(u_b)));
    next[k] += amp;
  }
  amplitudes_ = std::move(next);
}

void AnyonSim::conjugate_by_constant(size_t target, const Perm& u) {
  std::unordered_map<Key, std::complex<double>> next;
  next.reserve(amplitudes_.size());
  for (const auto& [key, amp] : amplitudes_) {
    const Perm u_t = group_.element(key_get(key, target));
    next[key_set(key, target, group_.index_of(u_t.conjugated_by(u)))] += amp;
  }
  amplitudes_ = std::move(next);
}

Perm AnyonSim::measure_flux(size_t p) {
  FTQC_CHECK(p < num_pairs_, "bad pair index");
  // Marginal distribution over the pair's flux.
  std::unordered_map<size_t, double> probs;
  for (const auto& [key, amp] : amplitudes_) {
    probs[key_get(key, p)] += std::norm(amp);
  }
  double draw = rng_.next_double() * norm();
  size_t chosen = probs.begin()->first;
  for (const auto& [idx, prob] : probs) {
    chosen = idx;
    draw -= prob;
    if (draw <= 0) break;
  }
  // Collapse and renormalize.
  std::unordered_map<Key, std::complex<double>> next;
  double kept = 0;
  for (const auto& [key, amp] : amplitudes_) {
    if (key_get(key, p) == chosen) {
      next.emplace(key, amp);
      kept += std::norm(amp);
    }
  }
  FTQC_CHECK(kept > 1e-12, "flux collapse lost all amplitude");
  const double scale = 1.0 / std::sqrt(kept);
  for (auto& [key, amp] : next) amp *= scale;
  amplitudes_ = std::move(next);
  return group_.element(chosen);
}

bool AnyonSim::measure_charge_pm(size_t p, const Perm& u0, const Perm& u1) {
  FTQC_CHECK(p < num_pairs_, "bad pair index");
  const size_t i0 = group_.index_of(u0);
  const size_t i1 = group_.index_of(u1);
  // Projectors onto |±> = (|u0> ± |u1>)/sqrt2 within pair p. The pair must
  // be supported on {u0, u1}.
  std::unordered_map<Key, std::complex<double>> plus;
  std::unordered_map<Key, std::complex<double>> minus;
  double p_plus = 0, p_minus = 0;
  for (const auto& [key, amp] : amplitudes_) {
    const size_t idx = key_get(key, p);
    FTQC_CHECK(idx == i0 || idx == i1,
               "charge interferometer requires support on {u0, u1}");
    const Key base = key_set(key, p, i0);       // representative: flux slot u0
    const double sign = idx == i0 ? 1.0 : -1.0;  // u1 picks up - in |->
    plus[base] += amp * 0.5;                     // <+|u> = 1/sqrt2 both
    minus[base] += amp * 0.5 * sign;
  }
  for (const auto& [key, amp] : plus) {
    (void)key;
    p_plus += std::norm(amp) * 2.0;  // |+> components: norm accounting below
  }
  for (const auto& [key, amp] : minus) {
    (void)key;
    p_minus += std::norm(amp) * 2.0;
  }
  const double total = p_plus + p_minus;
  FTQC_CHECK(total > 1e-12, "charge measurement on empty state");
  const bool outcome_minus = rng_.next_double() * total >= p_plus;

  // Rebuild the post-measurement state: outcome |s> replaces the pair's flux
  // content with (|u0> + s|u1>)/sqrt2 times the projected coefficient.
  const auto& keep = outcome_minus ? minus : plus;
  const double kept = (outcome_minus ? p_minus : p_plus) / 2.0;
  const double scale = 1.0 / std::sqrt(2.0 * kept);
  const double s = outcome_minus ? -1.0 : 1.0;
  std::unordered_map<Key, std::complex<double>> next;
  for (const auto& [key, amp] : keep) {
    next[key_set(key, p, i0)] += amp * scale;
    next[key_set(key, p, i1)] += amp * scale * s;
  }
  amplitudes_ = std::move(next);
  return outcome_minus;
}

std::complex<double> AnyonSim::amplitude(
    const std::vector<Perm>& assignment) const {
  FTQC_CHECK(assignment.size() == num_pairs_, "assignment size mismatch");
  Key key = 0;
  for (size_t p = 0; p < num_pairs_; ++p) {
    key = key_set(key, p, group_.index_of(assignment[p]));
  }
  const auto it = amplitudes_.find(key);
  return it == amplitudes_.end() ? std::complex<double>(0, 0) : it->second;
}

double AnyonSim::norm() const {
  double total = 0;
  for (const auto& [key, amp] : amplitudes_) {
    (void)key;
    total += std::norm(amp);
  }
  return total;
}

double AnyonSim::flux_probability(size_t p, const Perm& u) const {
  const size_t idx = group_.index_of(u);
  double total = 0;
  for (const auto& [key, amp] : amplitudes_) {
    if (key_get(key, p) == idx) total += std::norm(amp);
  }
  return total;
}

}  // namespace ftqc::topo
