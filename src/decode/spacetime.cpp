#include "decode/spacetime.h"

#include <cstdlib>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace ftqc::decode {

SpacetimeToricDecoder::SpacetimeToricDecoder(
    const topo::ToricCode& code, ToricSide side,
    std::shared_ptr<const MatchingStrategy> strategy, SpacetimeOptions options)
    : code_(code),
      side_(side),
      strategy_(std::move(strategy)),
      options_(options) {
  FTQC_CHECK(strategy_ != nullptr, "matching strategy required");
  FTQC_CHECK(options_.space_weight > 0 && options_.time_weight > 0,
             "edge weights must be positive");
}

gf2::BitVec SpacetimeToricDecoder::decode(
    const std::vector<gf2::BitVec>& syndromes) const {
  const size_t sites = side_ == ToricSide::kPlaquette ? code_.num_plaquettes()
                                                      : code_.num_vertices();
  FTQC_CHECK(!syndromes.empty(), "need at least the final trusted round");

  // Defects are the XOR of consecutive rounds (round -1 is the all-clear
  // reference state). Each defect site carries its round for the time metric.
  // `diff` and `prev` are hoisted and recycled: after streaming round t's
  // defects, prev ^= diff restores prev to syndromes[t] without copying.
  std::vector<uint32_t> defect_site;
  std::vector<uint32_t> defect_round;
  gf2::BitVec prev(sites);
  gf2::BitVec diff(sites);
  for (size_t t = 0; t < syndromes.size(); ++t) {
    FTQC_CHECK(syndromes[t].size() == sites, "syndrome size mismatch");
    diff = syndromes[t];
    diff ^= prev;
    for (size_t s = diff.first_set(); s < sites; s = diff.next_set(s + 1)) {
      defect_site.push_back(static_cast<uint32_t>(s));
      defect_round.push_back(static_cast<uint32_t>(t));
    }
    prev ^= diff;
  }
  return decode_defects(defect_site, defect_round);
}

gf2::BitVec SpacetimeToricDecoder::decode_defects(
    const std::vector<uint32_t>& defect_site,
    const std::vector<uint32_t>& defect_round) const {
  FTQC_CHECK(defect_site.size() == defect_round.size(),
             "defect site/round lists must be parallel");
  FTQC_CHECK(defect_site.size() % 2 == 0,
             "space-time defects come in pairs when the last round is trusted");

  const auto matches =
      strategy_->match(defect_site.size(), [&](size_t a, size_t b) {
        const size_t dt = defect_round[a] > defect_round[b]
                              ? defect_round[a] - defect_round[b]
                              : defect_round[b] - defect_round[a];
        return options_.space_weight *
                   code_.torus_site_distance(defect_site[a], defect_site[b]) +
               options_.time_weight * dt;
      });
  gf2::BitVec correction(code_.num_qubits());
  for (const Match& m : matches) {
    // Purely time-like pairs (same site) are measurement-error explanations;
    // toggle_*_path is a no-op for them.
    if (side_ == ToricSide::kPlaquette) {
      code_.toggle_dual_path(defect_site[m.a], defect_site[m.b], correction);
    } else {
      code_.toggle_primal_path(defect_site[m.a], defect_site[m.b], correction);
    }
  }
  return correction;
}

PhenomenologicalResult run_phenomenological_memory(
    const SpacetimeToricDecoder& decoder, double data_error, double meas_error,
    size_t rounds, uint64_t seed, PhenomenologicalScratch* scratch) {
  const topo::ToricCode& code = decoder.code();
  const bool plaquette = decoder.side() == ToricSide::kPlaquette;
  const size_t sites =
      plaquette ? code.num_plaquettes() : code.num_vertices();
  Rng rng(seed);

  // All per-shot buffers live in the (caller-provided or local) scratch, so
  // repeated shots of a sweep point allocate nothing after the first.
  PhenomenologicalScratch local;
  PhenomenologicalScratch& s = scratch != nullptr ? *scratch : local;
  if (s.errors.size() != code.num_qubits()) s.errors.resize(code.num_qubits());
  s.errors.clear();
  s.syndromes.resize(rounds + 1);

  const auto syndrome_into = [&](const gf2::BitVec& pattern,
                                 gf2::BitVec& out) {
    if (plaquette) {
      code.plaquette_syndrome_into(pattern, out);
    } else {
      code.star_syndrome_into(pattern, out);
    }
  };
  for (size_t t = 0; t < rounds; ++t) {
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(data_error)) s.errors.flip(e);
    }
    gf2::BitVec& measured = s.syndromes[t];
    syndrome_into(s.errors, measured);
    for (size_t site = 0; site < sites; ++site) {
      if (rng.bernoulli(meas_error)) measured.flip(site);
    }
  }
  syndrome_into(s.errors, s.syndromes[rounds]);

  PhenomenologicalResult result;
  s.errors ^= decoder.decode(s.syndromes);  // errors becomes the residual
  syndrome_into(s.errors, s.check);
  result.cleared = !s.check.any();
  const auto [f1, f2] = plaquette ? code.logical_x_flips(s.errors)
                                  : code.logical_z_flips(s.errors);
  result.logical_fail = f1 || f2;
  return result;
}

}  // namespace ftqc::decode
