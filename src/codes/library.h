#pragma once

#include "codes/stabilizer_code.h"

namespace ftqc::codes {

// Steane's [[7,1,3]] code (§2), built as the self-dual CSS code on the
// [7,4,3] Hamming parity check of Eq. (1). Its stabilizer generators are
// exactly the six operators of Eq. (18). Logical operators are the
// transversal X^⊗7 / Z^⊗7 (the paper's bitwise NOT, §4.1).
[[nodiscard]] const StabilizerCode& steane();

// The five-qubit [[5,1,3]] code of §4.2 (Bennett et al. / Laflamme et al.):
// the smallest single-error-correcting code; not CSS, and far less
// convenient for fault-tolerant computation than Steane's (bench E15).
[[nodiscard]] const StabilizerCode& five_qubit();

// Shor's [[9,1,3]] code (ref. 10): the original concatenation of the 3-bit
// repetition codes in both bases.
[[nodiscard]] const StabilizerCode& shor9();

// The [[15,7,3]] CSS code built from the r=4 Hamming code: the §3.6 example
// of a block code "encoding many qubits in a single block".
[[nodiscard]] const StabilizerCode& hamming15();

// The [[15,1,3]] quantum Reed-Muller code (punctured RM(1,4) / RM(2,4)
// pair): qubit q represents the nonzero 4-bit vector q+1; the 4 X-type
// generators are the weight-8 coordinate hyperplanes {v : v_i = 1}, and the
// 10 Z-type generators add the 6 weight-4 pairwise intersections
// {v : v_i = v_j = 1}. d_Z = 3 (the decoder corrects one X error and one Z
// error, like any distance-3 code), but d_X = 7 — the asymmetry that buys
// the code its transversal T: physical T† on all 15 qubits enacts logical T
// (ft/transversal.h), making it the standard magic-state distillation code.
[[nodiscard]] const StabilizerCode& reed_muller15();

}  // namespace ftqc::codes
