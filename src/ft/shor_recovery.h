#pragma once

#include <cstdint>

#include "ft/noise_injector.h"
#include "ft/recovery.h"
#include "gf2/hamming.h"
#include "sim/frame_sim.h"
#include "sim/noise_model.h"

namespace ftqc::ft {

// Fault-tolerant recovery for one Steane block using Shor's cat-state method
// (§3.2-§3.4): each of the six stabilizer generators of Eq. (18) is measured
// with a dedicated 4-bit ancilla prepared in a verified cat/Shor state
// (Fig. 8), one XOR per ancilla bit (Fig. 6 "Good!"), and the syndrome bit
// taken as the parity of the four ancilla measurements. Verification
// failures discard the cat and retry (§3.3); nontrivial syndromes are
// accepted only on repetition (§3.4).
//
// Register layout: data [0,7), cat [7,11), check qubit 11.
class ShorRecovery {
 public:
  static constexpr uint32_t kNumQubits = 12;

  ShorRecovery(const sim::NoiseParams& noise, RecoveryPolicy policy,
               uint64_t seed);

  void reset();
  void inject_data(uint32_t q, char pauli);
  void apply_memory_noise(double p);

  // One full recovery cycle: bit-flip syndrome (3 generators), then
  // phase-flip syndrome (3 generators), with the §3.4 repetition policy.
  void run_cycle();

  [[nodiscard]] bool logical_x_error() const;
  [[nodiscard]] bool logical_z_error() const;
  [[nodiscard]] bool any_logical_error() const {
    return logical_x_error() || logical_z_error();
  }

  // Number of cat preparations discarded by verification so far (E3).
  [[nodiscard]] size_t cats_discarded() const { return cats_discarded_; }

  void set_injector(NoiseInjector* injector);
  [[nodiscard]] sim::FrameSim& frame() { return frame_; }

 private:
  // Measures one syndrome bit for the generator with the given Hamming-row
  // support; x_type selects the X-generator direction (Fig. 7).
  bool measure_syndrome_bit(const gf2::BitVec& support, bool x_type);
  // All three syndrome bits of one type.
  gf2::BitVec extract_syndrome(bool phase_type);
  void correct(bool phase_type, const gf2::BitVec& syndrome);
  void prepare_verified_cat(bool final_hadamards);

  sim::FrameSim frame_;
  sim::NoiseParams noise_;
  RecoveryPolicy policy_;
  gf2::Hamming743 hamming_;
  StochasticInjector stochastic_;
  NoiseInjector* injector_;
  size_t cats_discarded_ = 0;
};

}  // namespace ftqc::ft
