// E5 (§3 Fig. 9, §5): full fault-tolerant recovery cycle, Steane method vs
// Shor method, under the uniform gate-error model. Reports the logical
// failure per cycle, the fitted quadratic coefficient c (failure ≈ c eps²),
// and the level-1 pseudothreshold 1/c. Also compares storage-error
// sensitivity: §5 claims the Steane method is better optimized for storage
// errors because "a gate acts on each qubit in almost every step".
//
// The Steane sweep runs twice — serial FrameSim shots and the bit-parallel
// BatchSteaneRecovery (64 shots/word) — to pin the two engines against each
// other: estimates must agree within binomial error while the batch path
// delivers an order-of-magnitude throughput win (the ShotRunner refactor's
// acceptance gate).
#include <cmath>
#include <cstdio>

#include "bench_harness.h"
#include "common/table.h"
#include "threshold/pseudothreshold.h"

namespace {
using namespace ftqc;
using namespace ftqc::threshold;

// |p1 - p2| in units of the combined binomial standard error.
double agreement_sigma(const Proportion& a, const Proportion& b) {
  const double pa = a.mean(), pb = b.mean();
  const double va = pa * (1 - pa) / static_cast<double>(a.trials);
  const double vb = pb * (1 - pb) / static_cast<double>(b.trials);
  const double se = std::sqrt(va + vb);
  return se > 0 ? std::fabs(pa - pb) / se : 0.0;
}
}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E05");
  std::printf(
      "E5: logical failure per FT recovery cycle (Fig. 9), Steane vs Shor\n"
      "syndrome extraction, uniform gate error model of §6.\n\n");
  const std::vector<double> eps_values = {0.008, 0.004, 0.002, 0.001};
  const size_t shots = ftqc::bench::scaled(60000, 400);

  auto steane = sweep_cycle_failure(RecoveryMethod::kSteane, eps_values, shots,
                                    1, sim::ShotEngine::kFrame);
  auto steane_batch = sweep_cycle_failure(RecoveryMethod::kSteane, eps_values,
                                          shots, 17, sim::ShotEngine::kBatch);
  auto shor = sweep_cycle_failure(RecoveryMethod::kShor, eps_values, shots, 2);

  ftqc::Table table({"eps", "Steane frame", "Steane batch", "agree(sigma)",
                     "Shor: P(logical)", "Shor/eps^2"});
  double max_sigma = 0;
  for (size_t i = 0; i < eps_values.size(); ++i) {
    const double e = eps_values[i];
    const double sigma =
        agreement_sigma(steane[i].failures, steane_batch[i].failures);
    max_sigma = std::max(max_sigma, sigma);
    table.add_row({ftqc::strfmt("%.3g", e),
                   ftqc::strfmt("%.3e", steane[i].failures.mean()),
                   ftqc::strfmt("%.3e", steane_batch[i].failures.mean()),
                   ftqc::strfmt("%.2f", sigma),
                   ftqc::strfmt("%.3e", shor[i].failures.mean()),
                   ftqc::strfmt("%.1f", shor[i].failures.mean() / (e * e))});
  }
  table.print();

  double frame_seconds = 0, batch_seconds = 0;
  uint64_t sweep_shots = 0;
  for (size_t i = 0; i < eps_values.size(); ++i) {
    frame_seconds += steane[i].seconds;
    batch_seconds += steane_batch[i].seconds;
    sweep_shots += steane[i].failures.trials;
  }
  const double frame_sps =
      frame_seconds > 0 ? static_cast<double>(sweep_shots) / frame_seconds : 0;
  const double batch_sps =
      batch_seconds > 0 ? static_cast<double>(sweep_shots) / batch_seconds : 0;
  const double speedup = frame_sps > 0 ? batch_sps / frame_sps : 0;
  std::printf(
      "\nThroughput (Steane sweep, %zu shots/point): frame %.3g shots/s,\n"
      "batch %.3g shots/s -> %.1fx; worst cross-engine deviation %.2f sigma.\n",
      shots, frame_sps, batch_sps, speedup, max_sigma);

  const double c_steane = fit_quadratic_coefficient(steane);
  const double c_batch = fit_quadratic_coefficient(steane_batch);
  const double c_shor = fit_quadratic_coefficient(shor);
  std::printf(
      "\nQuadratic fit: Steane c = %.0f (pseudothreshold 1/c = %.2e)\n"
      "               batch  c = %.0f (pseudothreshold 1/c = %.2e)\n"
      "               Shor   c = %.0f (pseudothreshold 1/c = %.2e)\n",
      c_steane, 1 / c_steane, c_batch, 1 / c_batch, c_shor, 1 / c_shor);

  ftqc::bench::JsonResult json;
  json.add("shots", shots);
  json.add("steane_quadratic_coeff", c_steane);
  json.add("steane_batch_quadratic_coeff", c_batch);
  json.add("shor_quadratic_coeff", c_shor);
  json.add("steane_pseudothreshold", 1 / c_steane);
  json.add("shor_pseudothreshold", 1 / c_shor);
  json.add("frame_shots_per_sec", frame_sps);
  json.add("batch_shots_per_sec", batch_sps);
  json.add("batch_speedup", speedup);
  json.add("max_cross_engine_sigma", max_sigma);
  json.write();

  std::printf(
      "\nStorage-error sensitivity (gate error fixed at 1e-3):\n");
  ftqc::Table storage({"eps_store", "Steane: P(logical)", "Shor: P(logical)"});
  for (const double es : {0.0, 1e-3, 2e-3}) {
    const auto st = measure_cycle_failure(RecoveryMethod::kSteane, 1e-3, shots,
                                          31, es, sim::ShotEngine::kBatch);
    const auto sh = measure_cycle_failure(RecoveryMethod::kShor, 1e-3, shots,
                                          37, es);
    storage.add_row({ftqc::strfmt("%.3g", es),
                     ftqc::strfmt("%.3e", st.failures.mean()),
                     ftqc::strfmt("%.3e", sh.failures.mean())});
  }
  storage.print();
  std::printf(
      "\nShape check: both methods are O(eps^2) with pseudothresholds of a\n"
      "few 1e-4 to 1e-3 — the same order as the paper's ~6e-4 estimate\n"
      "(Eq. 34). In this implementation Shor's 4-bit cats give a smaller\n"
      "gate-error coefficient than Steane's two full encoded ancilla blocks\n"
      "per syndrome, while the Steane method is comparatively less hurt by\n"
      "storage noise — the §5 trade the paper describes (its qubits are\n"
      "\"rarely idle\").\n");
  return 0;
}
