// The electric (Z-error / star-defect) side of the toric code: duality with
// the magnetic side, decoder correctness, and the combined depolarizing
// memory.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "topo/toric_code.h"

namespace ftqc::topo {
namespace {

TEST(ToricDual, SingleZErrorCreatesChargePair) {
  const ToricCode code(4);
  gf2::BitVec errors(code.num_qubits());
  errors.set(code.v_edge(2, 1), true);
  EXPECT_EQ(code.star_syndrome(errors).popcount(), 2u);
}

TEST(ToricDual, StarDecoderClearsSyndrome) {
  const ToricCode code(6);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(0.03)) errors.set(e, true);
    }
    gf2::BitVec residual = errors;
    residual ^= code.decode_star_syndrome(code.star_syndrome(errors));
    EXPECT_FALSE(code.star_syndrome(residual).any());
  }
}

TEST(ToricDual, LogicalZFlipDetection) {
  const ToricCode code(4);
  // A full nontrivial Z loop along logical_z1's support is itself logical:
  // syndrome-free and flipping logical X... check via overlap bookkeeping:
  // logical_x1 (h-column) crosses it once.
  gf2::BitVec z_loop(code.num_qubits());
  for (size_t x = 0; x < 4; ++x) z_loop.set(code.h_edge(x, 0), true);
  EXPECT_FALSE(code.star_syndrome(z_loop).any());
  const auto [f1, f2] = code.logical_z_flips(z_loop);
  EXPECT_TRUE(f1);
  EXPECT_FALSE(f2);
}

TEST(ToricDual, StarsAndPlaquettesDecodeIndependently) {
  // Depolarizing-style noise: independent X and Z patterns; decoding each
  // side separately clears both syndromes (CSS structure of the model).
  const ToricCode code(6);
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    gf2::BitVec x_errors(code.num_qubits());
    gf2::BitVec z_errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      const auto roll = rng.next_below(100);
      if (roll < 2) x_errors.set(e, true);         // X
      if (roll >= 1 && roll < 3) z_errors.set(e, true);  // Z (and Y overlap)
    }
    gf2::BitVec rx = x_errors;
    rx ^= code.decode_plaquette_syndrome(code.plaquette_syndrome(x_errors));
    gf2::BitVec rz = z_errors;
    rz ^= code.decode_star_syndrome(code.star_syndrome(z_errors));
    EXPECT_FALSE(code.plaquette_syndrome(rx).any());
    EXPECT_FALSE(code.star_syndrome(rz).any());
  }
}

TEST(ToricDual, ZMemoryFailureDropsWithLatticeSize) {
  const double p = 0.03;
  auto failure_rate = [&](size_t l, size_t shots) {
    const ToricCode code(l);
    Rng rng(31 + l);
    size_t failures = 0;
    for (size_t s = 0; s < shots; ++s) {
      gf2::BitVec errors(code.num_qubits());
      for (size_t e = 0; e < code.num_qubits(); ++e) {
        if (rng.bernoulli(p)) errors.set(e, true);
      }
      gf2::BitVec residual = errors;
      residual ^= code.decode_star_syndrome(code.star_syndrome(errors));
      const auto [f1, f2] = code.logical_z_flips(residual);
      failures += (f1 || f2) ? 1 : 0;
    }
    return static_cast<double>(failures) / static_cast<double>(shots);
  };
  EXPECT_LT(failure_rate(8, 1500), failure_rate(4, 1500) + 1e-9);
}

TEST(ToricDual, ChargeAharonovBohmSeenByXLoop) {
  // Dual of the Fig. 16 check: an X loop (transporting a fluxon around a
  // region) equals the product of enclosed star operators and flags an
  // enclosed electric charge with a -1.
  const ToricCode code(3);
  sim::TableauSim sim(code.num_qubits(), 7);
  code.prepare_ground_state(sim);
  const auto loop = code.star_operator(1, 1);  // X loop around vertex (1,1)
  auto value = sim.peek_pauli(loop);
  ASSERT_TRUE(value.has_value());
  EXPECT_FALSE(*value);
  sim.apply_z(code.v_edge(1, 1));  // creates charges at vertices (1,1),(1,2)
  value = sim.peek_pauli(loop);
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(*value);
}

}  // namespace
}  // namespace ftqc::topo
