#include <gtest/gtest.h>

#include "ft/concatenated_recovery.h"
#include "ft/fault_enumeration.h"

namespace ftqc::ft {
namespace {

const sim::NoiseParams kNoiseless{};

TEST(Level2Recovery, NoiselessCycleIsClean) {
  Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 1);
  rec.run_cycle();
  EXPECT_FALSE(rec.any_logical_error());
  EXPECT_FALSE(rec.frame().x_frame().any());
  EXPECT_FALSE(rec.frame().z_frame().any());
}

TEST(Level2Recovery, CorrectsSinglePhysicalErrors) {
  // Sampled positions across subblocks, every Pauli type.
  for (uint32_t q : {0u, 5u, 7u, 13u, 24u, 30u, 48u}) {
    for (char pauli : {'X', 'Y', 'Z'}) {
      Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 10 + q);
      rec.inject_data(q, pauli);
      rec.run_cycle();
      EXPECT_FALSE(rec.any_logical_error())
          << pauli << " on qubit " << q << " not corrected";
      EXPECT_FALSE(rec.frame().x_frame().any() || rec.frame().z_frame().any())
          << pauli << " on qubit " << q << " left residuals";
    }
  }
}

TEST(Level2Recovery, CorrectsOneErrorPerSubblockSimultaneously) {
  // Seven X errors, one per subblock: each level-1 decode fixes its own.
  Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 21);
  for (size_t sub = 0; sub < 7; ++sub) {
    rec.inject_data(static_cast<uint32_t>(7 * sub + (sub % 7)), 'X');
  }
  rec.run_cycle();
  EXPECT_FALSE(rec.any_logical_error());
}

TEST(Level2Recovery, CorrectsSubblockLogicalError) {
  // Two X's in one subblock = a level-1 logical X after subblock decoding;
  // the level-2 syndrome must catch and fix it.
  Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 22);
  rec.inject_data(0, 'X');
  rec.inject_data(1, 'X');
  rec.run_cycle();
  EXPECT_FALSE(rec.any_logical_error());
}

TEST(Level2Recovery, TwoFailedSubblocksDefeatLevel2) {
  // Double-logical failure exceeds the top code's correction power.
  Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 23);
  rec.inject_data(0, 'X');
  rec.inject_data(1, 'X');  // subblock 0 logically flipped
  rec.inject_data(7, 'X');
  rec.inject_data(8, 'X');  // subblock 1 logically flipped
  rec.run_cycle();
  EXPECT_TRUE(rec.logical_x_error());
}

TEST(Level2Recovery, SingleFaultSampleSurvives) {
  // The full single-fault scan over a level-2 cycle is ~27k runs of a
  // ~3000-location gadget — run a strided sample here; the bench covers a
  // fuller sweep statistically.
  FaultPointInjector recorder;
  {
    Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 31);
    rec.set_injector(&recorder);
    rec.run_cycle();
  }
  const auto& kinds = recorder.kinds();
  ASSERT_GT(kinds.size(), 1000u);
  size_t tried = 0;
  for (size_t loc = 0; loc < kinds.size(); loc += 37) {
    for (int v = 0; v < location_variants(kinds[loc]); ++v) {
      FaultPointInjector injector({{loc, v}});
      Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 31);
      rec.set_injector(&injector);
      rec.run_cycle();
      rec.set_injector(nullptr);
      EXPECT_FALSE(rec.any_logical_error())
          << "single fault at location " << loc << " variant " << v;
      ++tried;
    }
  }
  EXPECT_GT(tried, 200u);
}

TEST(Level2Recovery, StochasticLowNoiseIsQuiet) {
  const auto noise = sim::NoiseParams::uniform_gate(1e-4);
  size_t failures = 0;
  for (uint64_t s = 0; s < 300; ++s) {
    Level2Recovery rec(noise, RecoveryPolicy{}, 100 + s);
    rec.run_cycle();
    failures += rec.any_logical_error();
  }
  EXPECT_EQ(failures, 0u);
}

}  // namespace
}  // namespace ftqc::ft
