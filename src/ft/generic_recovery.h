#pragma once

#include <cstdint>
#include <vector>

#include "codes/lookup_decoder.h"
#include "codes/stabilizer_code.h"
#include "ft/noise_injector.h"
#include "ft/recovery.h"
#include "sim/frame_sim.h"
#include "sim/noise_model.h"

namespace ftqc::ft {

// Fault-tolerant recovery for an ARBITRARY stabilizer code via the
// generalized Shor method of §3.6: each generator M (any product of X, Y, Z)
// is measured with a verified cat state whose width equals the generator
// weight, one controlled-Pauli per ancilla bit, and an X-basis cat readout
// whose parity is the eigenvalue. Syndromes follow the §3.4 repetition
// policy; corrections come from the code's minimum-weight lookup decoder.
//
// This is the machinery behind the §4.2 claim that "universal fault-tolerant
// quantum computation can be achieved with any stabilizer code" — including
// the five-qubit code (whose generators mix X and Z on one qubit) and the
// [[15,7,3]] Hamming CSS code.
//
// Register layout: data [0, n), cat [n, n + max_weight), check qubit last.
class GenericShorRecovery {
 public:
  GenericShorRecovery(const codes::StabilizerCode& code,
                      const sim::NoiseParams& noise, RecoveryPolicy policy,
                      uint64_t seed);

  void reset();
  void inject_data(uint32_t q, char pauli);
  void apply_memory_noise(double p);

  // One full recovery cycle: measure every generator (repeating per policy),
  // decode with the lookup table, apply the correction.
  void run_cycle();

  // Residual error on the data block, as a signed-free Pauli.
  [[nodiscard]] pauli::PauliString residual() const;
  // True if the residual defeats ideal decoding (a logical error).
  [[nodiscard]] bool any_logical_error() const;

  [[nodiscard]] size_t cats_discarded() const { return cats_discarded_; }
  void set_injector(NoiseInjector* injector);
  [[nodiscard]] sim::FrameSim& frame() { return frame_; }

 private:
  [[nodiscard]] bool measure_generator(const pauli::PauliString& generator);
  [[nodiscard]] gf2::BitVec extract_syndrome();
  void prepare_verified_cat(size_t width);

  const codes::StabilizerCode& code_;
  codes::LookupDecoder decoder_;
  sim::FrameSim frame_;
  sim::NoiseParams noise_;
  RecoveryPolicy policy_;
  StochasticInjector stochastic_;
  NoiseInjector* injector_;
  size_t max_weight_;
  std::vector<uint32_t> cat_;
  uint32_t check_;
  std::vector<uint32_t> all_qubits_;
  size_t cats_discarded_ = 0;
};

// Emits a controlled-Pauli (CX / CZ / CY) from `control` onto `target`;
// CY is decomposed as S_target · CX · S†_target so every engine supports it.
void append_controlled_pauli(sim::Circuit& circuit, uint32_t control,
                             uint32_t target, char pauli);

}  // namespace ftqc::ft
