// BatchSteaneRecovery vs the serial SteaneRecovery: the bit-parallel
// recovery cycle must (a) reproduce the serial engine's deterministic
// outcomes exactly for injected error patterns under noiseless execution,
// and (b) match its failure statistics under the stochastic §6 model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "codes/library.h"
#include "common/errors.h"
#include "ft/batch_level2.h"
#include "ft/batch_recovery.h"
#include "ft/batch_shor.h"
#include "ft/steane_recovery.h"
#include "sim/noise_model.h"
#include "threshold/pseudothreshold.h"
#include "universal/batch_flag_recovery.h"

namespace ftqc::ft {
namespace {

const sim::NoiseParams kNoiseless;

// Noiseless cycles are deterministic (gauge draws never touch the data
// block), so every lane must agree with a serial reference run.
void expect_matches_serial(const char paulis[2], uint32_t qa, uint32_t qb) {
  SteaneRecovery serial(kNoiseless, RecoveryPolicy{}, /*seed=*/1);
  serial.inject_data(qa, paulis[0]);
  serial.inject_data(qb, paulis[1]);
  serial.run_cycle();

  BatchSteaneRecovery batch(kNoiseless, RecoveryPolicy{}, /*shots=*/128,
                            /*seed=*/77);
  batch.inject_data(qa, paulis[0]);
  batch.inject_data(qb, paulis[1]);
  batch.run_cycle();

  for (size_t shot : {size_t{0}, size_t{63}, size_t{64}, size_t{127}}) {
    EXPECT_EQ(batch.logical_x_error(shot), serial.logical_x_error())
        << paulis[0] << qa << " " << paulis[1] << qb << " shot " << shot;
    EXPECT_EQ(batch.logical_z_error(shot), serial.logical_z_error())
        << paulis[0] << qa << " " << paulis[1] << qb << " shot " << shot;
  }
  const uint64_t expected =
      serial.any_logical_error() ? batch.num_shots() : 0u;
  EXPECT_EQ(batch.count_any_logical_error(), expected);
}

TEST(BatchRecovery, CorrectsEverySingleError) {
  for (const char pauli : {'X', 'Y', 'Z'}) {
    for (uint32_t q = 0; q < 7; ++q) {
      BatchSteaneRecovery rec(kNoiseless, RecoveryPolicy{}, 64, /*seed=*/5);
      rec.inject_data(q, pauli);
      rec.run_cycle();
      EXPECT_EQ(rec.count_residual(), 0u) << pauli << q;
      EXPECT_EQ(rec.count_any_logical_error(), 0u) << pauli << q;
    }
  }
}

TEST(BatchRecovery, TwoErrorOutcomeMatchesSerial) {
  for (uint32_t qa = 0; qa < 7; ++qa) {
    for (uint32_t qb = qa + 1; qb < 7; ++qb) {
      expect_matches_serial("XX", qa, qb);
      expect_matches_serial("ZZ", qa, qb);
      expect_matches_serial("XZ", qa, qb);
    }
  }
}

TEST(BatchRecovery, LogicalImpliesResidualAndAccessorsAgree) {
  const auto noise = sim::NoiseParams::uniform_gate(8e-3);
  BatchSteaneRecovery rec(noise, RecoveryPolicy{}, 64 * 32, /*seed=*/31);
  rec.run_cycle();
  uint64_t per_shot_logical = 0;
  for (size_t shot = 0; shot < rec.num_shots(); ++shot) {
    per_shot_logical += rec.any_logical_error(shot) ? 1 : 0;
  }
  EXPECT_EQ(rec.count_any_logical_error(), per_shot_logical);
  EXPECT_LE(rec.count_any_logical_error(), rec.count_residual());
  // Lane-limited counting only sees the front of the register.
  EXPECT_LE(rec.count_any_logical_error(64), rec.count_any_logical_error());
}

// Stochastic agreement with the serial engine, via the shared threshold
// driver: both estimates target the same failure probability, so their
// difference should be a few combined standard errors at most (the bound
// here is ~5 sigma; a semantics bug shows up as tens of sigma).
TEST(BatchRecovery, FailureRateMatchesSerialEngine) {
  const double eps = 8e-3;
  const size_t shots = 6000;
  const auto serial = threshold::measure_cycle_failure(
      threshold::RecoveryMethod::kSteane, eps, shots, /*seed=*/3, 0.0,
      sim::ShotEngine::kFrame);
  const auto batch = threshold::measure_cycle_failure(
      threshold::RecoveryMethod::kSteane, eps, shots, /*seed=*/19, 0.0,
      sim::ShotEngine::kBatch);
  const double pf = serial.failures.mean();
  const double pb = batch.failures.mean();
  EXPECT_GT(pf, 0.02);  // the point is alive at this eps
  const double se = std::sqrt(pf * (1 - pf) / shots + pb * (1 - pb) / shots);
  EXPECT_LT(std::fabs(pf - pb), 5.0 * se)
      << "frame " << pf << " vs batch " << pb;
}

// Under measurement error alone, §3.4 says acting on a single nontrivial
// syndrome miscorrects at O(eps_meas) while the repeat policy defers; the
// batch engine must reproduce that separation.
TEST(BatchRecovery, MeasurementOnlyNoiseRepeatPolicySeparation) {
  const auto noise = sim::NoiseParams::measurement_only(0.02);
  const size_t shots = 64 * 64;

  RecoveryPolicy once;
  once.repeat_nontrivial_syndrome = false;
  BatchSteaneRecovery rec_once(noise, once, shots, /*seed=*/7);
  rec_once.run_cycle();

  BatchSteaneRecovery rec_repeat(noise, RecoveryPolicy{}, shots, /*seed=*/9);
  rec_repeat.run_cycle();

  const double p_once =
      static_cast<double>(rec_once.count_residual()) / shots;
  const double p_repeat =
      static_cast<double>(rec_repeat.count_residual()) / shots;
  EXPECT_GT(p_once, 0.1);     // ~0.25 expected: O(eps_meas) miscorrections
  EXPECT_LT(p_repeat, 0.05);  // ~4e-3 expected: demoted to O(eps_meas^2)
}

TEST(BatchRecovery, SeedDeterminism) {
  const auto noise = sim::NoiseParams::uniform_gate(5e-3);
  BatchSteaneRecovery a(noise, RecoveryPolicy{}, 256, /*seed=*/123);
  BatchSteaneRecovery b(noise, RecoveryPolicy{}, 256, /*seed=*/123);
  a.run_cycle();
  b.run_cycle();
  for (size_t shot = 0; shot < a.num_shots(); ++shot) {
    ASSERT_EQ(a.logical_x_error(shot), b.logical_x_error(shot)) << shot;
    ASSERT_EQ(a.logical_z_error(shot), b.logical_z_error(shot)) << shot;
  }
  EXPECT_EQ(a.count_residual(), b.count_residual());
}

// Heralded erasure rides the same pinned channel layer in both engines
// (see ErasureBoundary.HeraldPlanesPinnedFrameVsBatch for the bit-level
// pin); at the recovery level the engines draw independent streams, so
// their failure estimates must agree statistically.
TEST(BatchRecovery, HeraldedErasureFailureRateMatchesSerial) {
  const auto noise = sim::NoiseParams::with_erasure(6e-3, /*p_erase=*/0.01);
  const size_t shots = 4000;
  size_t serial_fails = 0;
  for (uint64_t seed = 1; seed <= shots; ++seed) {
    SteaneRecovery rec(noise, RecoveryPolicy{}, seed);
    rec.run_cycle();
    serial_fails += rec.any_logical_error() ? 1 : 0;
  }
  BatchSteaneRecovery batch(noise, RecoveryPolicy{}, shots, /*seed=*/417);
  batch.run_cycle();
  const double pf = static_cast<double>(serial_fails) / shots;
  const double pb =
      static_cast<double>(batch.count_any_logical_error()) / shots;
  EXPECT_GT(pf, 0.005);  // the point is alive under this channel
  const double se = std::sqrt(pf * (1 - pf) / shots + pb * (1 - pb) / shots);
  EXPECT_LT(std::fabs(pf - pb), 5.0 * se)
      << "frame " << pf << " vs batch " << pb;
}

// Exhausted herald-retry lanes surface through the abort-mask contract:
// under certain erasure every re-preparation heralds again, so every lane
// must end up discarded — and none when heralds are ignored.
TEST(BatchRecovery, HeraldExhaustionSurfacesAbortMask) {
  sim::NoiseParams noise;
  noise.p_erase = 1.0;
  BatchSteaneRecovery rec(noise, RecoveryPolicy{}, 128, /*seed=*/5);
  rec.run_cycle();
  for (size_t shot = 0; shot < rec.num_shots(); ++shot) {
    ASSERT_TRUE(rec.frames().aborted(shot)) << shot;
  }
  RecoveryPolicy blind;
  blind.herald_reinit = false;
  BatchSteaneRecovery ignore(noise, blind, 128, /*seed=*/5);
  ignore.run_cycle();
  for (size_t shot = 0; shot < ignore.num_shots(); ++shot) {
    ASSERT_FALSE(ignore.frames().aborted(shot)) << shot;
  }
}

// Leakage has no bit-parallel form: every batch family must degrade
// gracefully with a structured UnsupportedChannel naming its serial
// fallback, not die mid-campaign.
TEST(BatchRecovery, RejectsLeakageWithStructuredError) {
  sim::NoiseParams noise;
  noise.p_leak = 1e-3;
  try {
    BatchSteaneRecovery reject(noise, RecoveryPolicy{}, 64, 1);
    FAIL() << "p_leak > 0 must throw UnsupportedChannel";
  } catch (const UnsupportedChannel& e) {
    EXPECT_EQ(e.engine(), "BatchSteaneRecovery");
    EXPECT_EQ(e.channel(), "p_leak > 0");
    EXPECT_EQ(e.fallback(), "SteaneRecovery");
    EXPECT_NE(std::string(e.what()).find("SteaneRecovery"),
              std::string::npos);
  }
  EXPECT_THROW(BatchShorRecovery(noise, RecoveryPolicy{}, 64, 1),
               UnsupportedChannel);
  EXPECT_THROW(BatchGenericShorRecovery(codes::five_qubit(), noise,
                                        RecoveryPolicy{}, 64, 1),
               UnsupportedChannel);
  EXPECT_THROW(BatchLevel2Recovery(noise, RecoveryPolicy{}, 64, 1),
               UnsupportedChannel);
  EXPECT_THROW(universal::BatchFlagRecovery(codes::steane(), noise,
                                            RecoveryPolicy{}, 64, 1),
               UnsupportedChannel);
}

}  // namespace
}  // namespace ftqc::ft
