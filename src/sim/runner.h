#pragma once

#include <cstdint>
#include <vector>

#include "sim/batch_frame_sim.h"
#include "sim/circuit.h"
#include "sim/frame_sim.h"
#include "sim/statevector_sim.h"
#include "sim/tableau_sim.h"

namespace ftqc::sim {

// Executes a circuit (unitaries, measurements, channels, classical
// feedforward) on the exact Clifford engine. Returns the measurement record.
// Channels are sampled with the simulator's RNG, so repeated calls on fresh
// simulators give independent shots.
std::vector<uint8_t> run_circuit(TableauSim& sim, const Circuit& circuit);

// Same, on the dense engine (adds CCX/CCZ/RX/RZ support; channels become
// trajectory sampling; leakage is not representable here).
std::vector<uint8_t> run_circuit(StateVectorSim& sim, const Circuit& circuit);

// Frame execution: the returned record holds measurement-outcome *flips*
// relative to the noiseless reference run. Classical feedforward (`cond`) is
// rejected — drivers that need feedback implement it against decoded flips.
std::vector<uint8_t> run_circuit(FrameSim& sim, const Circuit& circuit);

// Bit-parallel frame execution, 64 shots per word: full gadget replay with
// measurements, resets and Pauli feedforward. Returns the engine's
// word-packed record (one row per measurement, flips relative to the
// reference); rows recorded by this call start at the record size the engine
// had on entry. Conditional non-Pauli gates are rejected — they cannot be
// bit-sliced across lanes.
const BatchRecord& run_circuit(BatchFrameSim& sim, const Circuit& circuit);

}  // namespace ftqc::sim
