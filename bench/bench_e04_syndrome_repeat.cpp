// E4 (§3.4): verifying the syndrome. Acting on a single (possibly faulty)
// nontrivial syndrome reading risks "correcting" an error that is not there,
// compounding the damage; accepting only a twice-repeated nontrivial
// syndrome removes those order-eps miscorrections.
#include <cstdio>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "ft/steane_recovery.h"

namespace {

using namespace ftqc;
using namespace ftqc::ft;

struct RepeatStats {
  Proportion residual;  // any residual error left on the block
  Proportion logical;   // residual is a logical error after ideal decode
};

RepeatStats run(bool repeat, double eps, size_t shots, uint64_t seed) {
  auto noise = sim::NoiseParams::uniform_gate(eps);
  RecoveryPolicy policy;
  policy.repeat_nontrivial_syndrome = repeat;
  RepeatStats stats;
  for (size_t s = 0; s < shots; ++s) {
    SteaneRecovery rec(noise, policy, seed + s);
    rec.run_cycle();
    stats.residual.trials++;
    stats.residual.successes +=
        (rec.residual_x_coset_weight() + rec.residual_z_coset_weight()) > 0;
    stats.logical.trials++;
    stats.logical.successes += rec.any_logical_error();
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E04");
  std::printf(
      "E4: syndrome repetition (§3.4). One recovery cycle on a clean block\n"
      "at gate error eps; compare acting on every nontrivial syndrome vs\n"
      "acting only on a repeated, agreeing one.\n\n");
  const size_t shots = ftqc::bench::scaled(60000, 1000);
  ftqc::bench::JsonResult json;
  ftqc::Table table({"eps", "P(residual) once", "P(residual) repeat",
                     "P(logical) once", "P(logical) repeat"});
  for (const double eps : {0.01, 0.005, 0.002, 0.001}) {
    const auto once = run(false, eps, shots, 1000);
    const auto twice = run(true, eps, shots, 2000);
    table.add_row({ftqc::strfmt("%.3g", eps),
                   ftqc::strfmt("%.4f", once.residual.mean()),
                   ftqc::strfmt("%.4f", twice.residual.mean()),
                   ftqc::strfmt("%.2e", once.logical.mean()),
                   ftqc::strfmt("%.2e", twice.logical.mean())});
    if (eps == 0.01) {
      json.add("eps", eps);
      json.add("p_residual_once", once.residual.mean());
      json.add("p_residual_repeat", twice.residual.mean());
      json.add("p_logical_once", once.logical.mean());
      json.add("p_logical_repeat", twice.logical.mean());
    }
  }
  table.print();
  json.add("shots", shots);
  json.write();
  std::printf(
      "\nShape check: repetition lowers the leftover-error rate (fewer\n"
      "miscorrections) at every eps; logical failures stay O(eps^2) for both\n"
      "(single faults never cause them), but the repeated protocol's\n"
      "coefficient is smaller.\n");
  return 0;
}
