#include "threshold/pseudothreshold.h"

#include "codes/library.h"
#include "ft/batch_recovery.h"
#include "ft/batch_shor.h"
#include "ft/shor_recovery.h"
#include "ft/steane_recovery.h"
#include "universal/batch_flag_recovery.h"
#include "universal/flag_recovery.h"

namespace ftqc::threshold {

namespace {

// Per-shot seed spacing: kept from the original hand-rolled loop so frame
// sweeps stay reproducible against pre-ShotRunner results.
constexpr uint64_t kSeedStride = 0x9E37;

template <typename Driver>
bool one_cycle_fails(const sim::NoiseParams& noise, uint64_t seed) {
  Driver rec(noise, ft::RecoveryPolicy{}, seed);
  rec.run_cycle();
  return rec.any_logical_error();
}

}  // namespace

CyclePoint measure_cycle_failure(RecoveryMethod method, double eps_gate,
                                 size_t shots, uint64_t seed, double eps_store,
                                 sim::ShotEngine engine, bool parallel) {
  FTQC_CHECK(engine != sim::ShotEngine::kExact,
             "recovery cycles are frame-native; use frame or batch");
  const auto noise = sim::NoiseParams::uniform_gate(eps_gate, eps_store);

  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  plan.seed_stride = kSeedStride;
  plan.engine = engine;
  plan.parallel = parallel;
  const sim::ShotRunner runner(plan);

  const auto shot_fails = [&](uint64_t shot_seed) {
    if (method == RecoveryMethod::kFlag) {
      // Code-first constructor: the flag family is code-generic.
      universal::FlagRecovery rec(codes::steane(), noise, ft::RecoveryPolicy{},
                                  shot_seed);
      rec.run_cycle();
      return rec.any_logical_error();
    }
    return method == RecoveryMethod::kSteane
               ? one_cycle_fails<ft::SteaneRecovery>(noise, shot_seed)
               : one_cycle_fails<ft::ShorRecovery>(noise, shot_seed);
  };
  const auto block_fails = [&](uint64_t block_seed, size_t block_shots) {
    if (method == RecoveryMethod::kSteane) {
      ft::BatchSteaneRecovery rec(noise, ft::RecoveryPolicy{}, block_shots,
                                  block_seed);
      rec.run_cycle();
      return rec.count_any_logical_error(block_shots);
    }
    if (method == RecoveryMethod::kFlag) {
      universal::BatchFlagRecovery rec(codes::steane(), noise,
                                       ft::RecoveryPolicy{}, block_shots,
                                       block_seed);
      rec.run_cycle();
      return rec.count_any_logical_error(block_shots);
    }
    // The Shor cat-retry loop is data-dependent per shot; BatchShorRecovery
    // replays it as masked re-replay of the failed lanes.
    ft::BatchShorRecovery rec(noise, ft::RecoveryPolicy{}, block_shots,
                              block_seed);
    rec.run_cycle();
    return rec.count_any_logical_error(block_shots);
  };
  const sim::ShotResult result = runner.run(shot_fails, block_fails);

  CyclePoint point;
  point.eps = eps_gate;
  point.failures = result.proportion();
  point.seconds = result.seconds;
  return point;
}

std::vector<CyclePoint> sweep_cycle_failure(RecoveryMethod method,
                                            const std::vector<double>& eps_values,
                                            size_t shots, uint64_t seed,
                                            sim::ShotEngine engine) {
  std::vector<CyclePoint> points;
  points.reserve(eps_values.size());
  for (size_t i = 0; i < eps_values.size(); ++i) {
    points.push_back(measure_cycle_failure(method, eps_values[i], shots,
                                           seed + 131 * i, 0.0, engine));
  }
  return points;
}

double fit_quadratic_coefficient(const std::vector<CyclePoint>& points) {
  // Least squares for failure = c·ε² (single parameter):
  // c = Σ w f ε² / Σ w ε⁴ with w = trials (binomial weight ~ 1/variance up
  // to the common factor f(1-f) which is nearly constant across the sweep).
  double num = 0, denom = 0;
  for (const auto& p : points) {
    const double w = static_cast<double>(p.failures.trials);
    const double e2 = p.eps * p.eps;
    num += w * p.failures.mean() * e2;
    denom += w * e2 * e2;
  }
  return denom > 0 ? num / denom : 0.0;
}

}  // namespace ftqc::threshold
