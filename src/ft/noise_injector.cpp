#include "ft/noise_injector.h"

#include <algorithm>

#include "common/check.h"

namespace ftqc::ft {

FaultPointInjector::FaultPointInjector(std::vector<Fault> faults,
                                       bool record_kinds)
    : faults_(std::move(faults)), record_kinds_(record_kinds) {
  std::sort(faults_.begin(), faults_.end(),
            [](const Fault& a, const Fault& b) { return a.location < b.location; });
  for (size_t i = 1; i < faults_.size(); ++i) {
    FTQC_CHECK(faults_[i].location != faults_[i - 1].location,
               "duplicate fault location");
  }
}

int FaultPointInjector::step(LocationKind kind) {
  if (record_kinds_) kinds_.push_back(kind);
  const size_t loc = counter_++;
  if (cursor_ < faults_.size() && faults_[cursor_].location == loc) {
    int variant = faults_[cursor_].variant;
    if (clamp_variants_) {
      variant %= location_variants(kind);
    } else {
      FTQC_CHECK(variant >= 0 && variant < location_variants(kind),
                 "fault variant out of range for location kind");
    }
    ++cursor_;
    return variant;
  }
  return -1;
}

void FaultPointInjector::on_marker(std::string_view label) {
  markers_.emplace_back(std::string(label), counter_);
}

std::pair<size_t, size_t> FaultPointInjector::marker_window(
    std::string_view begin, std::string_view end, size_t occurrence) const {
  size_t lo = 0, hi = 0;
  bool have_lo = false, have_hi = false;
  size_t seen = 0;
  for (const auto& [label, loc] : markers_) {
    if (!have_lo && label == begin) {
      if (seen++ < occurrence) continue;
      lo = loc;
      have_lo = true;
    } else if (have_lo && !have_hi && label == end) {
      hi = loc;
      have_hi = true;
      break;
    }
  }
  FTQC_CHECK(have_lo && have_hi, "marker window not found");
  return {lo, hi};
}

double biased_variant_weight(LocationKind kind, int variant, double fx,
                             double fy, double fz) {
  FTQC_CHECK(variant >= 0 && variant < location_variants(kind),
             "fault variant out of range for location kind");
  switch (kind) {
    case LocationKind::kGate1:
    case LocationKind::kStorage: {
      const double f[3] = {fx, fy, fz};
      return f[variant];
    }
    case LocationKind::kGate2: {
      // variant+1 encodes (code_a, code_b) base 4, 1=X/2=Z/3=Y; per-qubit
      // weights (1, 3fx, 3fy, 3fz)/4 conditioned on not-II normalize over
      // the 15 non-identity pairs to w_a * w_b / 15.
      const auto axis_weight = [&](int code) {
        switch (code) {
          case 0: return 1.0;
          case 1: return 3.0 * fx;
          case 3: return 3.0 * fy;
          default: return 3.0 * fz;
        }
      };
      const int which = variant + 1;
      return axis_weight(which & 3) * axis_weight((which >> 2) & 3) / 15.0;
    }
    case LocationKind::kPrep:
    case LocationKind::kMeas:
      return 1.0;
  }
  return 0.0;
}

void inject_pauli1_fault(sim::FrameSim& sim, uint32_t q, int variant) {
  switch (variant) {
    case 0: sim.inject_x(q); break;
    case 1: sim.inject_y(q); break;
    case 2: sim.inject_z(q); break;
    default: FTQC_CHECK(false, "bad 1-qubit fault variant");
  }
}

void inject_pauli2_fault(sim::FrameSim& sim, uint32_t a, uint32_t b,
                         int variant) {
  FTQC_CHECK(variant >= 0 && variant < 15, "bad 2-qubit fault variant");
  const int which = variant + 1;
  const auto apply_code = [&sim](uint32_t q, int code) {
    switch (code) {
      case 1: sim.inject_x(q); break;
      case 2: sim.inject_z(q); break;
      case 3: sim.inject_y(q); break;
      default: break;
    }
  };
  apply_code(a, which & 3);
  apply_code(b, (which >> 2) & 3);
}

void inject_prep_fault(sim::FrameSim& sim, uint32_t q) { sim.inject_x(q); }

void inject_meas_fault(sim::FrameSim& sim, uint32_t q, bool x_basis) {
  if (x_basis) {
    sim.inject_z(q);
  } else {
    sim.inject_x(q);
  }
}

void FaultPointInjector::on_gate1(sim::FrameSim& sim, uint32_t q) {
  const int v = step(LocationKind::kGate1);
  if (v >= 0) inject_pauli1_fault(sim, q, v);
}

void FaultPointInjector::on_gate2(sim::FrameSim& sim, uint32_t a, uint32_t b) {
  const int v = step(LocationKind::kGate2);
  if (v >= 0) inject_pauli2_fault(sim, a, b, v);
}

void FaultPointInjector::on_prep(sim::FrameSim& sim, uint32_t q) {
  if (step(LocationKind::kPrep) >= 0) inject_prep_fault(sim, q);
}

void FaultPointInjector::on_meas(sim::FrameSim& sim, uint32_t q, bool x_basis) {
  if (step(LocationKind::kMeas) >= 0) inject_meas_fault(sim, q, x_basis);
}

void FaultPointInjector::on_storage(sim::FrameSim& sim, uint32_t q) {
  const int v = step(LocationKind::kStorage);
  if (v >= 0) inject_pauli1_fault(sim, q, v);
}

}  // namespace ftqc::ft
