#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ftqc::classical {

// Von Neumann's 1952 multiplexing scheme (§1): a logical bit is carried by a
// bundle of N wires; each stage recomputes every wire as the majority of
// three randomly chosen wires of the input bundle, through gates that fail
// independently with probability eps. Below a critical eps the fraction of
// corrupted wires in the bundle stays pinned near a small fixed point; above
// it the bundle drifts to 50% corruption — the classical ancestor of the
// paper's accuracy threshold.
class MultiplexedBundle {
 public:
  MultiplexedBundle(size_t width, bool value, uint64_t seed);

  [[nodiscard]] size_t width() const { return wires_.size(); }
  // Fraction of wires disagreeing with the intended value.
  [[nodiscard]] double error_fraction() const;
  [[nodiscard]] bool majority_value() const;

  // Flips each wire independently (initial corruption for experiments).
  void corrupt(double fraction_probability);

  // One restorative stage: every output wire is MAJ3 of three uniformly
  // random input wires, and the gate output flips with probability eps.
  void restore_step(double eps);

  // An executive NAND stage against another bundle (von Neumann's universal
  // gate), gates failing with probability eps. The intended value becomes
  // NAND of the two intended values.
  void nand_with(const MultiplexedBundle& other, double eps);

 private:
  std::vector<uint8_t> wires_;
  bool intended_;
  Rng rng_;
};

// The mean-field map for the restorative stage: f' = eps + (1-2 eps)·m(f)
// with m(f) = P(majority of three iid wrong-with-prob-f draws is wrong).
[[nodiscard]] double restoration_map(double f, double eps);

// Stable small fixed point of the map, or -1 if none exists (above
// threshold).
[[nodiscard]] double stable_error_fraction(double eps);

// The multiplexing threshold: the largest eps for which a stable small
// fixed point of the restoration map exists (for MAJ3 restoration this is
// 1/6 in the eps->..., found numerically here).
[[nodiscard]] double multiplexing_threshold();

}  // namespace ftqc::classical
