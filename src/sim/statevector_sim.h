#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "pauli/pauli_string.h"
#include "sim/circuit.h"

namespace ftqc::sim {

// Dense state-vector simulator (little-endian: qubit q toggles bit q of the
// basis index). Capped at 24 qubits. This is the ground-truth engine: it
// verifies the Clifford simulators on random circuits, executes the
// non-Clifford Toffoli gadget of Fig. 13, and realizes the coherent
// (systematic) error model of §6 that stabilizer methods cannot express.
class StateVectorSim {
 public:
  explicit StateVectorSim(size_t num_qubits, uint64_t seed = 1);

  [[nodiscard]] size_t num_qubits() const { return n_; }

  void apply_h(size_t q);
  void apply_x(size_t q);
  void apply_y(size_t q);
  void apply_z(size_t q);
  void apply_s(size_t q);
  void apply_s_dag(size_t q);
  void apply_rx(size_t q, double theta);  // exp(-i theta X / 2)
  void apply_rz(size_t q, double theta);  // exp(-i theta Z / 2)
  void apply_cx(size_t control, size_t target);
  void apply_cz(size_t a, size_t b);
  void apply_swap(size_t a, size_t b);
  void apply_ccx(size_t c0, size_t c1, size_t target);
  void apply_ccz(size_t a, size_t b, size_t c);
  void apply_pauli(const pauli::PauliString& p);

  // Generic single-qubit unitary [[u00,u01],[u10,u11]].
  void apply_unitary1(size_t q, std::complex<double> u00, std::complex<double> u01,
                      std::complex<double> u10, std::complex<double> u11);

  bool measure_z(size_t q);
  bool measure_x(size_t q);
  void reset(size_t q);

  // Projective measurement of a ±1 Pauli observable, with collapse.
  bool measure_pauli(const pauli::PauliString& p);
  // Expectation value <psi|P|psi> (real for Hermitian P).
  [[nodiscard]] double expectation_pauli(const pauli::PauliString& p) const;

  // |<other|this>|^2.
  [[nodiscard]] double fidelity_with(const StateVectorSim& other) const;
  [[nodiscard]] std::complex<double> inner_product(const StateVectorSim& other) const;

  [[nodiscard]] std::complex<double> amplitude(uint64_t basis_index) const {
    return amps_[basis_index];
  }
  void set_state(uint64_t basis_index);  // reset to a computational basis state
  [[nodiscard]] double norm() const;

  // Probability that measuring qubit q yields 1.
  [[nodiscard]] double prob_one(size_t q) const;

  Rng& rng() { return rng_; }

 private:
  void collapse(size_t q, bool outcome, double prob_one);

  size_t n_;
  std::vector<std::complex<double>> amps_;
  Rng rng_;
};

}  // namespace ftqc::sim
