#include "topo/toric_code.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/check.h"
#include "decode/decoder.h"

namespace ftqc::topo {

using pauli::PauliString;

ToricCode::ToricCode(size_t lattice_size) : l_(lattice_size) {
  FTQC_CHECK(l_ >= 2, "torus needs L >= 2");
}

uint32_t ToricCode::h_edge(size_t x, size_t y) const {
  return static_cast<uint32_t>(2 * ((y % l_) * l_ + (x % l_)));
}

uint32_t ToricCode::v_edge(size_t x, size_t y) const {
  return static_cast<uint32_t>(2 * ((y % l_) * l_ + (x % l_)) + 1);
}

PauliString ToricCode::star_operator(size_t x, size_t y) const {
  PauliString p(num_qubits());
  p.set_pauli(h_edge(x, y), 'X');
  p.set_pauli(h_edge(x + l_ - 1, y), 'X');
  p.set_pauli(v_edge(x, y), 'X');
  p.set_pauli(v_edge(x, y + l_ - 1), 'X');
  return p;
}

PauliString ToricCode::plaquette_operator(size_t x, size_t y) const {
  PauliString p(num_qubits());
  p.set_pauli(h_edge(x, y), 'Z');
  p.set_pauli(h_edge(x, y + 1), 'Z');
  p.set_pauli(v_edge(x, y), 'Z');
  p.set_pauli(v_edge(x + 1, y), 'Z');
  return p;
}

PauliString ToricCode::logical_z1() const {
  PauliString p(num_qubits());
  for (size_t x = 0; x < l_; ++x) p.set_pauli(h_edge(x, 0), 'Z');
  return p;
}

PauliString ToricCode::logical_z2() const {
  PauliString p(num_qubits());
  for (size_t y = 0; y < l_; ++y) p.set_pauli(v_edge(0, y), 'Z');
  return p;
}

PauliString ToricCode::logical_x1() const {
  // Anticommutes with logical_z1 (crosses the h-row once): a vertical
  // column of h-edges on the dual lattice = X on h(x0, y) for all y.
  PauliString p(num_qubits());
  for (size_t y = 0; y < l_; ++y) p.set_pauli(h_edge(0, y), 'X');
  return p;
}

PauliString ToricCode::logical_x2() const {
  PauliString p(num_qubits());
  for (size_t x = 0; x < l_; ++x) p.set_pauli(v_edge(x, 0), 'X');
  return p;
}

gf2::BitVec ToricCode::plaquette_syndrome(const gf2::BitVec& x_errors) const {
  gf2::BitVec syndrome(num_plaquettes());
  plaquette_syndrome_into(x_errors, syndrome);
  return syndrome;
}

gf2::BitVec ToricCode::star_syndrome(const gf2::BitVec& z_errors) const {
  gf2::BitVec syndrome(num_vertices());
  star_syndrome_into(z_errors, syndrome);
  return syndrome;
}

void ToricCode::plaquette_syndrome_into(const gf2::BitVec& x_errors,
                                        gf2::BitVec& syndrome) const {
  FTQC_CHECK(x_errors.size() == num_qubits(), "error pattern size mismatch");
  if (syndrome.size() != num_plaquettes()) syndrome.resize(num_plaquettes());
  for (size_t y = 0; y < l_; ++y) {
    for (size_t x = 0; x < l_; ++x) {
      bool violated = false;
      violated ^= x_errors.get(h_edge(x, y));
      violated ^= x_errors.get(h_edge(x, y + 1));
      violated ^= x_errors.get(v_edge(x, y));
      violated ^= x_errors.get(v_edge(x + 1, y));
      syndrome.set(plaquette_index(x, y), violated);
    }
  }
}

void ToricCode::star_syndrome_into(const gf2::BitVec& z_errors,
                                   gf2::BitVec& syndrome) const {
  FTQC_CHECK(z_errors.size() == num_qubits(), "error pattern size mismatch");
  if (syndrome.size() != num_vertices()) syndrome.resize(num_vertices());
  for (size_t y = 0; y < l_; ++y) {
    for (size_t x = 0; x < l_; ++x) {
      bool violated = false;
      violated ^= z_errors.get(h_edge(x, y));
      violated ^= z_errors.get(h_edge(x + l_ - 1, y));
      violated ^= z_errors.get(v_edge(x, y));
      violated ^= z_errors.get(v_edge(x, y + l_ - 1));
      syndrome.set(y * l_ + x, violated);
    }
  }
}

std::pair<bool, bool> ToricCode::logical_x_flips(
    const gf2::BitVec& residual_x) const {
  bool flip1 = false, flip2 = false;
  for (size_t x = 0; x < l_; ++x) flip1 ^= residual_x.get(h_edge(x, 0));
  for (size_t y = 0; y < l_; ++y) flip2 ^= residual_x.get(v_edge(0, y));
  return {flip1, flip2};
}

std::pair<bool, bool> ToricCode::logical_z_flips(
    const gf2::BitVec& residual_z) const {
  // A residual Z flips logical qubit i when it overlaps the corresponding
  // X loop (logical_x1 = h-column, logical_x2 = v-row) an odd number of
  // times.
  bool flip1 = false, flip2 = false;
  for (size_t y = 0; y < l_; ++y) flip1 ^= residual_z.get(h_edge(0, y));
  for (size_t x = 0; x < l_; ++x) flip2 ^= residual_z.get(v_edge(x, 0));
  return {flip1, flip2};
}

size_t ToricCode::torus_site_distance(size_t a, size_t b) const {
  const size_t ax = a % l_, ay = a / l_;
  const size_t bx = b % l_, by = b / l_;
  const size_t dx = std::min((bx + l_ - ax) % l_, (ax + l_ - bx) % l_);
  const size_t dy = std::min((by + l_ - ay) % l_, (ay + l_ - by) % l_);
  return dx + dy;
}

std::pair<size_t, size_t> ToricCode::edge_plaquettes(size_t edge) const {
  FTQC_CHECK(edge < num_qubits(), "edge index out of range");
  const size_t idx = edge / 2;
  const size_t x = idx % l_, y = idx / l_;
  if ((edge & 1) == 0) {
    // h(x,y) is the north edge of p(x,y) and the south edge of p(x,y-1).
    return {y * l_ + x, ((y + l_ - 1) % l_) * l_ + x};
  }
  // v(x,y) is the west edge of p(x,y) and the east edge of p(x-1,y).
  return {y * l_ + x, y * l_ + (x + l_ - 1) % l_};
}

std::pair<size_t, size_t> ToricCode::edge_vertices(size_t edge) const {
  FTQC_CHECK(edge < num_qubits(), "edge index out of range");
  const size_t idx = edge / 2;
  const size_t x = idx % l_, y = idx / l_;
  if ((edge & 1) == 0) {
    // h(x,y) leaves vertex (x,y) in +x.
    return {y * l_ + x, y * l_ + (x + 1) % l_};
  }
  return {y * l_ + x, ((y + 1) % l_) * l_ + x};
}

void ToricCode::toggle_dual_path(size_t from, size_t to,
                                 gf2::BitVec& correction) const {
  // Walk on plaquettes: x then y, along the shorter way around the torus.
  size_t x = from % l_, y = from / l_;
  const size_t tx = to % l_, ty = to / l_;
  const auto step_count = [this](size_t a, size_t b, bool* forward) {
    const size_t fwd = (b + l_ - a) % l_;
    const size_t back = (a + l_ - b) % l_;
    *forward = fwd <= back;
    return std::min(fwd, back);
  };
  bool forward = true;
  size_t steps = step_count(x, tx, &forward);
  for (size_t s = 0; s < steps; ++s) {
    if (forward) {
      // (x,y) -> (x+1,y): crossing the shared edge v(x+1, y).
      correction.flip(v_edge(x + 1, y));
      x = (x + 1) % l_;
    } else {
      correction.flip(v_edge(x, y));
      x = (x + l_ - 1) % l_;
    }
  }
  steps = step_count(y, ty, &forward);
  for (size_t s = 0; s < steps; ++s) {
    if (forward) {
      // (x,y) -> (x,y+1): crossing h(x, y+1).
      correction.flip(h_edge(x, y + 1));
      y = (y + 1) % l_;
    } else {
      correction.flip(h_edge(x, y));
      y = (y + l_ - 1) % l_;
    }
  }
}

void ToricCode::toggle_primal_path(size_t from, size_t to,
                                   gf2::BitVec& support) const {
  size_t x = from % l_, y = from / l_;
  const size_t tx = to % l_, ty = to / l_;
  const auto step_count = [this](size_t a, size_t b, bool* forward) {
    const size_t fwd = (b + l_ - a) % l_;
    const size_t back = (a + l_ - b) % l_;
    *forward = fwd <= back;
    return std::min(fwd, back);
  };
  bool forward = true;
  size_t steps = step_count(x, tx, &forward);
  for (size_t s = 0; s < steps; ++s) {
    if (forward) {
      support.flip(h_edge(x, y));  // (x,y) -> (x+1,y) along h(x,y)
      x = (x + 1) % l_;
    } else {
      support.flip(h_edge(x + l_ - 1, y));
      x = (x + l_ - 1) % l_;
    }
  }
  steps = step_count(y, ty, &forward);
  for (size_t s = 0; s < steps; ++s) {
    if (forward) {
      support.flip(v_edge(x, y));
      y = (y + 1) % l_;
    } else {
      support.flip(v_edge(x, y + l_ - 1));
      y = (y + l_ - 1) % l_;
    }
  }
}

gf2::BitVec ToricCode::decode_plaquette_syndrome(
    const gf2::BitVec& syndrome) const {
  static const auto greedy = std::make_shared<const decode::GreedyMatching>();
  return decode::ToricMatchingDecoder(*this, decode::ToricSide::kPlaquette,
                                      greedy)
      .decode(syndrome);
}

gf2::BitVec ToricCode::decode_star_syndrome(const gf2::BitVec& syndrome) const {
  static const auto greedy = std::make_shared<const decode::GreedyMatching>();
  return decode::ToricMatchingDecoder(*this, decode::ToricSide::kStar, greedy)
      .decode(syndrome);
}

void ToricCode::prepare_ground_state(sim::TableauSim& sim) const {
  FTQC_CHECK(sim.num_qubits() >= num_qubits(), "simulator too small");
  // |0...0> already satisfies every plaquette; measure the stars and pair up
  // the -1 outcomes with Z strings (which commute with all plaquettes).
  std::vector<size_t> bad;
  for (size_t y = 0; y < l_; ++y) {
    for (size_t x = 0; x < l_; ++x) {
      if (sim.measure_pauli(star_operator(x, y))) bad.push_back(y * l_ + x);
    }
  }
  FTQC_CHECK(bad.size() % 2 == 0, "electric charges come in pairs");
  for (size_t i = 0; i + 1 < bad.size(); i += 2) {
    gf2::BitVec support(num_qubits());
    toggle_primal_path(bad[i], bad[i + 1], support);
    for (size_t e = 0; e < num_qubits(); ++e) {
      if (support.get(e)) sim.apply_z(e);
    }
  }
}

}  // namespace ftqc::topo
