// Rare-event engine micro-bench: the importance-sampled fault-set strata
// (ft/fault_enumeration.h + sim/rare_event.h) measured end to end.
//
// Three stations:
//   1. toy closed form — a 5-location gadget whose failure probability is
//      analytically eps^2 + eps^3 - eps^5; the stratified estimate must track
//      it across eight decades of eps with one shared conditional table;
//   2. level-1 Steane cycle — the sub-pseudothreshold sweep down to
//      eps = 1e-5 (about one failure per 1e10 direct shots), with the
//      two-stage budget's per-stratum spend profile and replay throughput;
//   3. direct cross-check — the stratified estimate at eps = 3e-3 against a
//      plain stochastic Monte Carlo run, in combined-standard-error units.
// Joins the bench-smoke tier (<=1s under --smoke) and the rare-event CTest
// group alongside tests/rare_event_test.cpp.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "ft/fault_enumeration.h"
#include "ft/steane_recovery.h"
#include "sim/frame_sim.h"
#include "sim/rare_event.h"
#include "threshold/pseudothreshold.h"

namespace {

using namespace ftqc;
using namespace ftqc::ft;

// Five prep locations (one X variant each); fails iff locations {0,2} both
// fault OR {1,3,4} all fault, so P = eps^2 + eps^3 - eps^5 exactly.
bool toy5_fails(NoiseInjector& injector) {
  sim::FrameSim f(5, /*seed=*/1);
  for (uint32_t q = 0; q < 5; ++q) injector.on_prep(f, q);
  const bool a = f.destructive_z_flip(0) && f.destructive_z_flip(2);
  const bool b = f.destructive_z_flip(1) && f.destructive_z_flip(3) &&
                 f.destructive_z_flip(4);
  return a || b;
}

double toy5_analytic(double eps) {
  return eps * eps + eps * eps * eps - std::pow(eps, 5);
}

GadgetExperiment steane_cycle() {
  return [](NoiseInjector& injector) {
    SteaneRecovery rec(sim::NoiseParams{}, RecoveryPolicy{}, /*seed=*/77);
    rec.set_injector(&injector);
    rec.run_cycle();
    rec.set_injector(nullptr);
    return rec.any_logical_error();
  };
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "RARE");
  std::printf(
      "RARE: importance-sampled fault-set strata. Conditional failure\n"
      "probabilities P(fail | exactly k faults) are measured once per\n"
      "gadget and combined with binomial priors, so one conditional table\n"
      "prices every eps — including rates no direct shot budget reaches.\n\n");
  ftqc::bench::JsonResult json;

  // Station 1: toy gadget vs closed form, eps spanning eight decades.
  {
    RareEventOptions options;
    // The sweep needs strictly more locations than strata, so the k = 5
    // stratum rides the tail bound (w_5 <= 1e-5 across these eps points).
    options.max_faults = 4;
    // No single fault fails the toy (both failure sets have >= 2 members),
    // so k = 1 is pinned; otherwise the router would chase the always-zero
    // stratum's prior-weighted interval at the smallest eps views.
    options.known_zero_max_k = 1;
    options.budget = ftqc::bench::scaled(20000, 2000);
    options.seed = 7;
    const std::vector<double> eps_points = {1e-1, 1e-3, 1e-5, 1e-9};
    const RareEventSweep sweep =
        estimate_rare_failure_sweep(toy5_fails, eps_points, options);
    double max_rel_error = 0;
    ftqc::Table toy_table({"eps", "stratified", "analytic", "rel error"});
    for (size_t i = 0; i < eps_points.size(); ++i) {
      const double exact = toy5_analytic(eps_points[i]);
      const double rel =
          std::fabs(sweep.estimates[i].mean - exact) / exact;
      max_rel_error = std::max(max_rel_error, rel);
      toy_table.add_row({ftqc::strfmt("%.0e", eps_points[i]),
                         ftqc::strfmt("%.4e", sweep.estimates[i].mean),
                         ftqc::strfmt("%.4e", exact),
                         ftqc::strfmt("%.2e", rel)});
    }
    toy_table.print();
    json.add("toy_max_rel_error", max_rel_error);
  }

  // Station 2: level-1 Steane cycle, sub-pseudothreshold sweep. The k = 1
  // stratum is pinned to zero (proven malignancy-free by the exhaustive
  // single-fault scan in the recovery test suite), so the interval at tiny
  // eps is set by the malignant-pair stratum alone.
  const std::vector<double> eps_points = {1e-4, 5e-5, 1e-5};
  RareEventOptions options;
  options.scan.filter = gate_kinds_only();
  options.max_faults = 4;
  options.known_zero_max_k = 1;
  options.budget = ftqc::bench::scaled(24000, 2000);
  options.seed = 11;
  const auto t0 = std::chrono::steady_clock::now();
  const RareEventSweep sweep =
      estimate_rare_failure_sweep(steane_cycle(), eps_points, options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ftqc::Table table({"eps", "stratified P(fail)", "rel 95% hw"});
  const char* labels[] = {"1em4", "5em5", "1em5"};
  for (size_t i = 0; i < eps_points.size(); ++i) {
    const auto& est = sweep.estimates[i];
    table.add_row({ftqc::strfmt("%.0e", eps_points[i]),
                   ftqc::strfmt("%.3e", est.mean),
                   ftqc::strfmt("%.0f%%", 100 * est.relative_halfwidth())});
    json.add(std::string("rare_level1_") + labels[i], est.mean);
    json.add(std::string("rare_level1_") + labels[i] + "_relerr",
             est.relative_halfwidth());
  }
  table.print();
  std::printf("  conditional replays: %zu in %.2fs", sweep.shots, seconds);
  if (seconds > 0) {
    std::printf(" (%.3g replays/s)", static_cast<double>(sweep.shots) / seconds);
    json.add("replay_shots_per_sec",
             static_cast<double>(sweep.shots) / seconds);
  }
  std::printf("\n  two-stage budget spend per stratum:");
  for (size_t k = 0; k < sweep.strata.size(); ++k) {
    std::printf(" k=%zu:%llu", k,
                static_cast<unsigned long long>(sweep.strata[k].trials));
  }
  std::printf("\n\n");
  json.add("replays", sweep.shots);

  // Station 3: cross-check against direct Monte Carlo where both methods
  // can see failures. The stratified run reuses the calibrated-N_eff prior
  // because fault-triggered retries lengthen the path at this eps.
  {
    const double eps = 3e-3;
    const size_t direct_shots = ftqc::bench::scaled(40000, 4000);
    const auto direct = threshold::measure_cycle_failure(
        threshold::RecoveryMethod::kSteane, eps, direct_shots, /*seed=*/5);
    RareEventOptions agree = options;
    agree.max_faults = 8;
    agree.budget = ftqc::bench::scaled(16000, 2000);
    agree.seed = 13;
    agree.n_eff_override = calibrate_mean_locations(
        [](NoiseInjector& injector, uint64_t seed) {
          SteaneRecovery rec(sim::NoiseParams{}, RecoveryPolicy{}, seed);
          rec.set_injector(&injector);
          rec.run_cycle();
          rec.set_injector(nullptr);
          return rec.any_logical_error();
        },
        sim::NoiseParams::uniform_gate(eps), gate_kinds_only(),
        ftqc::bench::scaled(200, 20), /*seed=*/3);
    const RareEventSweep check =
        estimate_rare_failure_sweep(steane_cycle(), {eps}, agree);
    const double se_strat = check.estimates[0].halfwidth / 1.96;
    const double se_direct = direct.failures.wilson_halfwidth() / 1.96;
    const double se = std::sqrt(se_strat * se_strat + se_direct * se_direct);
    const double sigma =
        se > 0
            ? std::fabs(check.estimates[0].mean - direct.failures.mean()) / se
            : 0.0;
    std::printf(
        "Cross-check at eps = %.0e: stratified %.3e vs direct %.3e "
        "(%.2f sigma, N_eff %.1f)\n",
        eps, check.estimates[0].mean, direct.failures.mean(), sigma,
        check.n_eff);
    json.add("agreement_sigma_3em3", sigma);
    json.add("n_eff_3em3", check.n_eff);
  }

  json.write();
  std::printf(
      "\nShape check: the stratified estimates stay on the toy closed form\n"
      "across decades, and the level-1 cycle's sub-pseudothreshold points\n"
      "scale as the malignant-pair term A*eps^2 — the same coefficient the\n"
      "exhaustive pair scan counts — while the router concentrates replays\n"
      "on whichever stratum's interval dominates the requested eps views.\n");
  return 0;
}
