// run_campaign: the whole E01-E19 paper benchmark set as ONE invocation on
// the work-stealing sweep scheduler (sim/sweep_scheduler.h).
//
// Each benchmark executable is one sweep point (bench id "CAMPAIGN"): the
// point shells out to the binary with --json-dir pointed at the campaign
// output directory, captures its stdout/stderr to <dir>/logs/<id>.log, and
// checkpoints a BENCH_CAMPAIGN.<id>.json shard on success. A killed
// campaign therefore resumes by skipping the benchmarks that already
// finished — and because every benchmark also receives
// --checkpoint-dir=<dir>/checkpoints and --workers=1, the sweep-driven
// benches (E14, E18) resume mid-sweep from their own shards while the
// campaign scheduler keeps sole ownership of the thread pool.
//
//   run_campaign --smoke --dir=out            # quick pass over everything
//   run_campaign --dir=out --workers=4        # full campaign, 4 benches at
//                                             # a time (each internally
//                                             # serial)
//   run_campaign --dir=out --max-points=5     # run 5 fresh benches, stop
//   run_campaign --dir=out                    # ...later: resumes the rest
//   run_campaign --only=E14,E18 --dir=out     # subset by bench id
//
// Exit status: 0 when every selected benchmark has completed (now or in a
// previous resume), 1 when any benchmark failed, 0 with a "remaining"
// notice when --max-points stopped the run early.
#include <sys/wait.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sim/sweep_scheduler.h"

namespace {

namespace fs = std::filesystem;
using ftqc::sim::CheckpointStore;
using ftqc::sim::SweepMetrics;
using ftqc::sim::SweepOptions;
using ftqc::sim::SweepPoint;

struct Campaign {
  const char* id;          // sweep-point id and log name, e.g. "E14"
  const char* executable;  // binary name under --bench-dir
  bool optional;           // skip with a notice when the binary is absent
                           // (E17 only builds when google-benchmark exists)
  bool harness;            // uses bench_harness.h flags (--json-dir,
                           // --checkpoint-dir, --workers); E17 does not
};

constexpr Campaign kCampaigns[] = {
    {"E01", "bench_e01_code_fidelity", false, true},
    {"E02", "bench_e02_bad_good_syndrome", false, true},
    {"E03", "bench_e03_cat_verification", false, true},
    {"E04", "bench_e04_syndrome_repeat", false, true},
    {"E05", "bench_e05_recovery_cycle", false, true},
    {"E06", "bench_e06_flow_coefficient", false, true},
    {"E07", "bench_e07_optimal_t", false, true},
    {"E08", "bench_e08_resources", false, true},
    {"E09", "bench_e09_systematic_errors", false, true},
    {"E10", "bench_e10_leakage", false, true},
    {"E11", "bench_e11_anyon_gates", false, true},
    {"E12", "bench_e12_toffoli_gadget", false, true},
    {"E13", "bench_e13_von_neumann", false, true},
    {"E14", "bench_e14_toric_memory", false, true},
    {"E15", "bench_e15_code_comparison", false, true},
    {"E16", "bench_e16_topo_suppression", false, true},
    {"E17", "bench_e17_kernels", true, false},
    {"E18", "bench_e18_concatenation_gain", false, true},
    {"E19", "bench_e19_magic_pipeline", false, true},
    {"E20", "bench_e20_erasure_bias", false, true},
    {"BATCHSIM", "bench_batch_sim", false, true},
    {"DECODE", "bench_decode_matching", false, true},
    {"RARE", "bench_rare_event", false, true},
};

struct Args {
  std::string dir = "campaign_out";
  std::string bench_dir;  // defaults to <argv0 dir>/../bench
  std::string only;       // comma-separated ids; empty = all
  bool smoke = false;
  // Robustness knobs: each bench runs under `timeout` (0 disables) and a
  // failed or timed-out bench gets exactly one more attempt after a
  // backoff. A bench that fails twice is reported at the end; the rest of
  // the campaign keeps running either way.
  size_t timeout_secs = 3600;
  size_t backoff_secs = 5;
  SweepOptions sweep;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--smoke] [--dir=DIR] [--bench-dir=DIR] [--only=E14,E18]\n"
      "          [--workers=N] [--max-points=N] [--timeout=SECS]\n"
      "          [--backoff=SECS]\n"
      "Runs the E01-E19 benchmark set (plus the micro-benches) as one\n"
      "checkpointed sweep; rerun with the same --dir to resume.\n"
      "Each bench is killed after --timeout seconds (default 3600, 0 = no\n"
      "limit) and retried once after --backoff seconds; a bench that fails\n"
      "twice is reported in the summary without stopping the campaign.\n",
      argv0);
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strncmp(arg, "--dir=", 6) == 0) {
      args.dir = arg + 6;
    } else if (std::strncmp(arg, "--bench-dir=", 12) == 0) {
      args.bench_dir = arg + 12;
    } else if (std::strncmp(arg, "--only=", 7) == 0) {
      args.only = arg + 7;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      args.sweep.workers =
          static_cast<size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--max-points=", 13) == 0) {
      args.sweep.max_points =
          static_cast<size_t>(std::strtoull(arg + 13, nullptr, 10));
    } else if (std::strncmp(arg, "--timeout=", 10) == 0) {
      args.timeout_secs =
          static_cast<size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--backoff=", 10) == 0) {
      args.backoff_secs =
          static_cast<size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      std::exit(2);
    }
  }
  if (args.bench_dir.empty()) {
    args.bench_dir = (fs::path(argv[0]).parent_path() / ".." / "bench")
                         .lexically_normal()
                         .string();
  }
  return args;
}

bool selected(const std::string& only, const char* id) {
  if (only.empty()) return true;
  size_t start = 0;
  while (start <= only.size()) {
    const size_t comma = only.find(',', start);
    const size_t end = comma == std::string::npos ? only.size() : comma;
    if (only.compare(start, end - start, id) == 0) return true;
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return false;
}

std::string quoted(const std::string& s) { return "\"" + s + "\""; }

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  fs::create_directories(fs::path(args.dir) / "logs");
  const std::string checkpoint_dir =
      (fs::path(args.dir) / "checkpoints").string();

  std::vector<SweepPoint> points;
  std::vector<std::string> missing;
  std::vector<std::string> failed_twice;
  std::mutex failed_mutex;
  for (const Campaign& c : kCampaigns) {
    if (!selected(args.only, c.id)) continue;
    const fs::path binary = fs::path(args.bench_dir) / c.executable;
    if (!fs::exists(binary)) {
      if (c.optional) {
        std::fprintf(stderr, "[campaign] %s: %s not built, skipping\n", c.id,
                     binary.string().c_str());
      } else {
        missing.push_back(binary.string());
      }
      continue;
    }
    std::string cmd;
    if (args.timeout_secs > 0) {
      // coreutils `timeout` kills the bench process group; exit 124 marks
      // the timeout so the retry log can say which failure mode it was.
      cmd += "timeout " + std::to_string(args.timeout_secs) + " ";
    }
    cmd += quoted(binary.string());
    if (args.smoke) cmd += " --smoke";
    if (c.harness) {
      cmd += " --json-dir=" + quoted(args.dir);
      // The campaign scheduler owns all parallelism; the sweep-driven
      // benches run their own points serially but still shard per-point
      // checkpoints, so a mid-bench kill resumes too.
      cmd += " --checkpoint-dir=" + quoted(checkpoint_dir);
      cmd += " --workers=1";
    }
    const std::string log =
        (fs::path(args.dir) / "logs" / (std::string(c.id) + ".log")).string();
    SweepPoint point;
    point.bench = "CAMPAIGN";
    point.id = c.id;
    point.run = [cmd, log, id = std::string(c.id), &args, &failed_twice,
                 &failed_mutex]() -> std::optional<SweepMetrics> {
      for (int attempt = 0; attempt < 2; ++attempt) {
        // The retry appends to the log so the first attempt's tail (the
        // crash or the timeout cutoff) stays diagnosable.
        const std::string redirected =
            cmd + (attempt == 0 ? " > " : " >> ") + quoted(log) + " 2>&1";
        const int status = std::system(redirected.c_str());
        if (status == 0) {
          SweepMetrics metrics;
          metrics.add("exit_code", 0.0);
          metrics.add("attempts", static_cast<double>(attempt + 1));
          return metrics;
        }
        const bool timed_out =
            WIFEXITED(status) && WEXITSTATUS(status) == 124 &&
            args.timeout_secs > 0;
        if (attempt == 0) {
          std::fprintf(stderr,
                       "[campaign] %s: %s on attempt 1, retrying in %zus\n",
                       id.c_str(), timed_out ? "timed out" : "failed",
                       args.backoff_secs);
          std::this_thread::sleep_for(
              std::chrono::seconds(args.backoff_secs));
        } else {
          const std::lock_guard<std::mutex> lock(failed_mutex);
          failed_twice.push_back(id + (timed_out ? " (timeout)" : ""));
        }
      }
      return std::nullopt;  // failed twice: do not checkpoint
    };
    points.push_back(std::move(point));
  }
  for (const std::string& path : missing) {
    std::fprintf(stderr, "[campaign] missing benchmark binary: %s\n",
                 path.c_str());
  }
  if (points.empty() && missing.empty()) {
    std::fprintf(stderr, "[campaign] nothing selected (--only=%s)\n",
                 args.only.c_str());
    return 2;
  }

  CheckpointStore store(checkpoint_dir);
  const auto report = ftqc::sim::run_sweep(points, args.sweep, &store);

  std::printf("\ncampaign summary (%s):\n", args.smoke ? "smoke" : "full");
  for (size_t i = 0; i < points.size(); ++i) {
    // A null result is either a failure or a point --max-points never
    // reached; the [sweep] stderr log names the failures.
    std::printf("  %-10s %s\n", points[i].id.c_str(),
                report.results[i].has_value() ? "done" : "incomplete");
  }
  std::printf(
      "completed %zu, resumed-from-checkpoint %zu, failed %zu, remaining "
      "%zu (%.1fs); artifacts in %s\n",
      report.completed, report.skipped, report.failed, report.remaining,
      report.seconds, args.dir.c_str());
  if (!failed_twice.empty()) {
    std::printf("failed twice (see %s/logs/<id>.log):\n", args.dir.c_str());
    for (const std::string& id : failed_twice) {
      std::printf("  %s\n", id.c_str());
    }
  }
  if (report.remaining > 0) {
    std::printf("rerun with the same --dir to resume the remaining %zu\n",
                report.remaining);
  }
  return (report.failed > 0 || !missing.empty()) ? 1 : 0;
}
