#pragma once

#include <cmath>
#include <cstdint>

namespace ftqc {

// Binomial proportion estimate with a Wilson-score interval. Threshold
// experiments report logical failure rates; the interval lets benches flag
// statistically meaningless comparisons.
struct Proportion {
  uint64_t successes = 0;
  uint64_t trials = 0;

  [[nodiscard]] double mean() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) / static_cast<double>(trials);
  }

  // Half-width of the 95% Wilson interval around the Wilson midpoint.
  [[nodiscard]] double wilson_halfwidth() const {
    if (trials == 0) return 1.0;
    constexpr double z = 1.959963984540054;  // 97.5th normal percentile
    const double n = static_cast<double>(trials);
    const double p = mean();
    const double denom = 1.0 + z * z / n;
    return (z / denom) * std::sqrt(p * (1 - p) / n + z * z / (4 * n * n));
  }

  [[nodiscard]] double wilson_center() const {
    if (trials == 0) return 0.5;
    constexpr double z = 1.959963984540054;
    const double n = static_cast<double>(trials);
    const double p = mean();
    return (p + z * z / (2 * n)) / (1.0 + z * z / n);
  }
};

}  // namespace ftqc
