// ft_memory: hold a logical qubit alive through many noisy fault-tolerant
// recovery cycles and watch the survival curve — the paper's core promise
// (§5): below threshold, encoded information outlives any bare qubit.
//
//   ./build/examples/ft_memory [--smoke] [eps] [cycles] [shots]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/table.h"
#include "example_util.h"
#include "ft/steane_recovery.h"

int main(int argc, char** argv) {
  using namespace ftqc;
  const bool smoke = strip_smoke_flag(argc, argv);
  const double eps = argc > 1 ? std::atof(argv[1]) : 2e-3;
  const int cycles = argc > 2 ? std::atoi(argv[2]) : (smoke ? 10 : 50);
  const size_t shots = argc > 3 ? static_cast<size_t>(std::atoll(argv[3]))
                                : (smoke ? 200 : 2000);

  std::printf(
      "Logical memory: Steane block, gate error %.2e, %d recovery cycles,\n"
      "%zu shots. A bare qubit's survival after n steps is (1-eps)^n.\n\n",
      eps, cycles, shots);

  const auto noise = sim::NoiseParams::uniform_gate(eps);
  std::vector<size_t> alive_at(static_cast<size_t>(cycles) + 1, 0);
  for (size_t s = 0; s < shots; ++s) {
    ft::SteaneRecovery rec(noise, ft::RecoveryPolicy{}, 77 + s);
    alive_at[0]++;
    for (int c = 1; c <= cycles; ++c) {
      rec.apply_memory_noise(eps);
      rec.run_cycle();
      if (rec.any_logical_error()) break;  // first logical failure kills it
      alive_at[static_cast<size_t>(c)]++;
    }
  }

  Table table({"cycle", "encoded survival", "bare qubit (1-eps)^n"});
  for (int c = 0; c <= cycles; c += cycles / 10 > 0 ? cycles / 10 : 1) {
    double bare = 1;
    for (int i = 0; i < c; ++i) bare *= (1 - eps);
    table.add_row({strfmt("%d", c),
                   strfmt("%.4f", static_cast<double>(alive_at[c]) / shots),
                   strfmt("%.4f", bare)});
  }
  table.print();
  std::printf(
      "\nNote: 'break' scores the first logical failure as fatal, which is\n"
      "conservative; per-cycle failure is O(eps^2) so the encoded curve\n"
      "decays far slower than the bare one whenever eps is below the\n"
      "pseudothreshold (see bench_e05).\n");
  return 0;
}
