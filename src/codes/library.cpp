#include "codes/library.h"

#include "codes/css.h"
#include "gf2/hamming.h"

namespace ftqc::codes {

using pauli::PauliString;

const StabilizerCode& steane() {
  static const StabilizerCode code = [] {
    const gf2::Hamming743 hamming;
    // Self-dual CSS construction, with the paper's transversal logicals.
    std::vector<PauliString> generators = {
        PauliString::from_string("IIIZZZZ"), PauliString::from_string("IZZIIZZ"),
        PauliString::from_string("ZIZIZIZ"), PauliString::from_string("IIIXXXX"),
        PauliString::from_string("IXXIIXX"), PauliString::from_string("XIXIXIX")};
    return StabilizerCode("Steane [[7,1,3]]", 7, std::move(generators),
                          {PauliString::from_string("XXXXXXX")},
                          {PauliString::from_string("ZZZZZZZ")});
  }();
  return code;
}

const StabilizerCode& five_qubit() {
  static const StabilizerCode code = [] {
    std::vector<PauliString> generators = {
        PauliString::from_string("XZZXI"), PauliString::from_string("IXZZX"),
        PauliString::from_string("XIXZZ"), PauliString::from_string("ZXIXZ")};
    return StabilizerCode("Five-qubit [[5,1,3]]", 5, std::move(generators),
                          {PauliString::from_string("XXXXX")},
                          {PauliString::from_string("ZZZZZ")});
  }();
  return code;
}

const StabilizerCode& shor9() {
  static const StabilizerCode code = [] {
    std::vector<PauliString> generators = {
        PauliString::from_string("ZZIIIIIII"), PauliString::from_string("IZZIIIIII"),
        PauliString::from_string("IIIZZIIII"), PauliString::from_string("IIIIZZIII"),
        PauliString::from_string("IIIIIIZZI"), PauliString::from_string("IIIIIIIZZ"),
        PauliString::from_string("XXXXXXIII"), PauliString::from_string("IIIXXXXXX")};
    // For Shor's code the transversal operators swap roles: X^⊗9 acts as the
    // logical Z (it flips the sign of each GHZ factor) and Z^⊗9 as logical X.
    return StabilizerCode("Shor [[9,1,3]]", 9, std::move(generators),
                          {PauliString::from_string("ZZZZZZZZZ")},
                          {PauliString::from_string("XXXXXXXXX")});
  }();
  return code;
}

const StabilizerCode& hamming15() {
  static const StabilizerCode code = [] {
    const auto h = gf2::hamming_check_matrix(4);
    return make_css_code("Hamming CSS [[15,7,3]]", h, h);
  }();
  return code;
}

}  // namespace ftqc::codes
