#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ft/recovery.h"
#include "ft/steane_recovery.h"
#include "gf2/hamming.h"
#include "sim/batch_frame_sim.h"
#include "sim/noise_model.h"

namespace ftqc::ft {

// --- Shared bit-parallel building blocks ------------------------------------
//
// Every batched recovery driver (level-1 Steane, the level-2 exRec cycle,
// the Shor/generic cat-retry paths) replays the same ideal gadget circuits
// on a BatchFrameSim with the §6 noise hooks masked to the lanes that
// "really" execute the gadget. These helpers are the common substrate, so
// the drivers cannot drift apart on noise accounting or decode conventions.

// True if any lane bit is set in `mask` (words words).
[[nodiscard]] inline bool batch_any_lane(const uint64_t* mask, size_t words) {
  for (size_t w = 0; w < words; ++w) {
    if (mask[w] != 0) return true;
  }
  return false;
}

// Popcount of `mask` restricted to the first `num_lanes` lanes.
[[nodiscard]] inline uint64_t batch_count_lanes(const uint64_t* mask,
                                                size_t words,
                                                size_t num_lanes) {
  uint64_t count = 0;
  const size_t full = words < num_lanes / 64 ? words : num_lanes / 64;
  for (size_t w = 0; w < full; ++w) count += __builtin_popcountll(mask[w]);
  if (full < words && num_lanes % 64 != 0) {
    const uint64_t tail = (uint64_t{1} << (num_lanes % 64)) - 1;
    count += __builtin_popcountll(mask[full] & tail);
  }
  return count;
}

// §6 channel application shared by every batched driver, mirroring the
// serial StochasticInjector hook for hook: bias reroutes the depolarizing
// draw through the explicit per-axis channels, and gate/prep locations take
// a heralded-erasure draw when p_erase > 0. The unbiased p_erase = 0 path
// calls depolarize1/2 / x_error directly, preserving the pinned RNG
// streams bit for bit. Leakage has no batch form — drivers reject it at
// construction with UnsupportedChannel.
void batch_on_gate1(sim::BatchFrameSim& sim, const sim::NoiseParams& noise,
                    uint32_t q, const uint64_t* lane_mask);
void batch_on_gate2(sim::BatchFrameSim& sim, const sim::NoiseParams& noise,
                    uint32_t a, uint32_t b, const uint64_t* lane_mask);
void batch_on_prep(sim::BatchFrameSim& sim, const sim::NoiseParams& noise,
                   uint32_t q, const uint64_t* lane_mask);
void batch_on_storage(sim::BatchFrameSim& sim, const sim::NoiseParams& noise,
                      uint32_t q, const uint64_t* lane_mask);

// §3.4 mask algebra, shared by every batched driver's run_cycle so the
// repeat-policy convention cannot drift between them. `syndrome_rows` is
// num_rows * words words.
//
// Lanes whose syndrome has any set bit, intersected with `active`
// (nullptr = all lanes).
void batch_nontrivial_mask(const uint64_t* syndrome_rows, size_t num_rows,
                           const uint64_t* active, uint64_t* out,
                           size_t words);
// Lanes of `nontrivial` whose two syndrome readings agree on every row —
// the lanes that act; the §3.4 conflicted lanes defer.
void batch_agreement_mask(const uint64_t* syn1, const uint64_t* syn2,
                          size_t num_rows, const uint64_t* nontrivial,
                          uint64_t* out, size_t words);

// One full §3.4 repeat-policy round, the control-flow skeleton every batched
// run_cycle shares: extract the syndrome on the active lanes, stop if every
// lane read trivial, optionally re-extract on just the nontrivial lanes and
// keep the agreeing ones, then hand (first syndrome, acting mask) to
// `correct`. `extract(mask, out)` writes num_rows * words syndrome words for
// the lanes of `mask` (nullptr = all); `correct(syn, act)` applies the
// driver's correction (including any pre-correction hooks, e.g. the exRec
// data-subblock recoveries).
template <typename ExtractFn, typename CorrectFn>
void run_batch_repeat_policy(size_t num_rows, size_t words, bool repeat,
                             const uint64_t* active, ExtractFn&& extract,
                             CorrectFn&& correct) {
  std::vector<uint64_t> syn1(num_rows * words), syn2(num_rows * words);
  std::vector<uint64_t> nontrivial(words), act(words);
  extract(active, syn1.data());
  batch_nontrivial_mask(syn1.data(), num_rows, active, nontrivial.data(),
                        words);
  if (!batch_any_lane(nontrivial.data(), words)) return;  // §3.4: no action
  if (repeat) {
    // Only the nontrivial lanes pay for (and can be hurt by) the repeat.
    extract(nontrivial.data(), syn2.data());
    batch_agreement_mask(syn1.data(), syn2.data(), num_rows,
                         nontrivial.data(), act.data(), words);
  } else {
    std::copy(nontrivial.begin(), nontrivial.end(), act.begin());
  }
  correct(syn1.data(), act.data());
}

// Bit-sliced classical Hamming decode over 7 record/frame rows into `out`
// (words words). logical=true computes decode_logical (corrected-word
// parity); logical=false computes "any residual" (the word is not an
// even-weight Hamming codeword, i.e. nonzero coset weight).
void batch_decode_rows(const gf2::Hamming743& hamming,
                       const uint64_t* const rows[7], bool logical,
                       uint64_t* out, size_t words);

// Per-position decode masks from 3 bit-sliced syndrome rows (Eq. 3: bits
// (s0,s1,s2) spell the 1-based position s0*4 + s1*2 + s2). Fills pos_masks
// (7 * words words): lanes of `act_mask` whose syndrome points at each
// position. The union of the position masks is act_mask minus the
// trivial-syndrome lanes.
void batch_decode_positions(const uint64_t* syndrome_rows,
                            const uint64_t* act_mask, uint64_t* pos_masks,
                            size_t words);

// The serial one-Pauli data-block correction, bit-sliced: gate noise on the
// corrected qubit, storage noise on the other six, and only for the lanes
// of `act_mask` that actually correct (§3.4 lanes that deferred take no
// fault opportunity at all). `syndrome_rows` is 3*words words.
void batch_correct_data_block(sim::BatchFrameSim& sim,
                              const sim::NoiseParams& noise, bool phase_type,
                              std::span<const uint32_t> data,
                              const uint64_t* syndrome_rows,
                              const uint64_t* act_mask);

// Executes an ideal gadget on all lanes of `sim`, applying the §6 noise
// hooks of ft::run_gadget (gate/prep/meas/storage) as per-lane random masks
// restricted to `lane_mask` (nullptr = every lane). Returns the indices of
// the record rows the gadget measured. The record is cleared first, so row
// indices from earlier gadgets do not survive a call — consume rows (or
// copy them out) before running the next gadget.
//
// Unconditional unitaries run on EVERY lane: gadget circuits are
// frame-linear, so lanes whose gadget qubits carry no noise pass through
// unchanged, and masking the noise to the active lanes reproduces the
// serial per-shot branch exactly. That requires inactive lanes to enter
// with clean frames on the gadget's qubits — gadgets that start from R
// resets (all the prep circuits) or that follow an unmasked reset satisfy
// this by construction.
class BatchGadgetRunner {
 public:
  BatchGadgetRunner(sim::BatchFrameSim& sim, const sim::NoiseParams& noise);

  std::vector<size_t> run(const sim::Circuit& circuit,
                          std::span<const uint32_t> active_qubits,
                          const uint64_t* lane_mask);

  [[nodiscard]] sim::BatchFrameSim& sim() { return sim_; }
  [[nodiscard]] const sim::NoiseParams& noise() const { return noise_; }

 private:
  sim::BatchFrameSim& sim_;
  sim::NoiseParams noise_;
  std::vector<bool> touched_;  // per-layer storage-accounting scratch
};

// --- The Fig. 9 cycle, bit-parallel -----------------------------------------

// One full fault-tolerant Steane recovery cycle on a caller-owned
// BatchFrameSim, 64 shots per word, on an arbitrary layout — the batch
// analogue of run_steane_cycle. `active` (nullptr = all lanes) is the
// incoming active-lane mask: lanes cleared in it collect no noise, no
// verification fixes and no corrections, exactly as if their serial shot
// had skipped the cycle. Every mask the cycle derives internally
// (verification votes, nontrivial syndromes, §3.4 agreement) is composed
// with `active`, which is what lets a level-2 driver nest this cycle inside
// its own per-lane control flow (the exRec interleave).
//
// `circuits` must be compile_steane_cycle(layout); precompiling lets the
// level-2 exRec driver replay 14+ nested cycles per level-2 cycle without
// rebuilding circuits.
void run_batch_steane_cycle(sim::BatchFrameSim& sim,
                            const sim::NoiseParams& noise,
                            const RecoveryPolicy& policy,
                            const gf2::Hamming743& hamming,
                            const SteaneCycleLayout& layout,
                            const SteaneCycleCircuits& circuits,
                            const uint64_t* active);

// Bit-parallel SteaneRecovery: one full fault-tolerant recovery cycle
// (Fig. 9) on 64 shots per word, replayed gadget by gadget on a
// BatchFrameSim. Statistically equivalent to running `shots` independent
// SteaneRecovery instances under the same NoiseParams/RecoveryPolicy:
//
//  * the same ideal circuits (steane_circuits.h builders) drive every lane;
//  * the §6 noise hooks of ft::run_gadget (gate/prep/meas/storage) are
//    applied as per-lane random masks;
//  * per-shot control flow — syndrome repetition, the §3.3 verification fix,
//    and the final correction — becomes lane masking: gates of a
//    conditionally executed gadget are frame-linear, so lanes whose
//    ancillas carry no noise pass through it unchanged, and masking the
//    NOISE to the lanes that "really" execute the gadget reproduces the
//    serial branch exactly;
//  * Hamming decoding is bit-sliced: syndrome rows are XORs of measurement
//    record rows, and the corrected-parity logical readout is
//    parity(word) ^ (syndrome != 0), all word ops.
//
// Leakage is not representable in the bit-parallel engine; constructing with
// p_leak > 0 is an error. Use the serial SteaneRecovery for leakage studies.
class BatchSteaneRecovery {
 public:
  static constexpr uint32_t kNumQubits = 21;

  // shots is rounded up to a multiple of 64.
  BatchSteaneRecovery(const sim::NoiseParams& noise, RecoveryPolicy policy,
                      size_t shots, uint64_t seed);

  [[nodiscard]] size_t num_shots() const { return sim_.num_shots(); }
  [[nodiscard]] size_t num_words() const { return sim_.num_words(); }

  // Returns every lane to the all-clean state.
  void reset();

  // Injects a Pauli on a data qubit, every lane (error-channel input).
  void inject_data(uint32_t q, char pauli);
  // iid depolarizing channel on every data qubit, every lane.
  void apply_memory_noise(double p);

  // One full fault-tolerant recovery cycle (Fig. 9) across all lanes.
  void run_cycle();

  // Lanes (among the first `num_lanes`; SIZE_MAX = all) whose residual data
  // error defeats ideal decoding — the batch analogue of
  // SteaneRecovery::any_logical_error summed over shots.
  [[nodiscard]] uint64_t count_any_logical_error(
      size_t num_lanes = SIZE_MAX) const;
  // Lanes carrying any residual error (nonzero coset weight, X or Z side).
  [[nodiscard]] uint64_t count_residual(size_t num_lanes = SIZE_MAX) const;

  // Per-lane introspection for tests.
  [[nodiscard]] bool logical_x_error(size_t shot) const;
  [[nodiscard]] bool logical_z_error(size_t shot) const;
  [[nodiscard]] bool any_logical_error(size_t shot) const {
    return logical_x_error(shot) || logical_z_error(shot);
  }

  [[nodiscard]] sim::BatchFrameSim& frames() { return sim_; }

 private:
  // Shared body of count_any_logical_error / count_residual.
  uint64_t count_frames(bool logical, size_t num_lanes) const;

  sim::BatchFrameSim sim_;
  sim::NoiseParams noise_;
  RecoveryPolicy policy_;
  gf2::Hamming743 hamming_;
  size_t words_;
};

}  // namespace ftqc::ft
