// E6 (§5, Eq. 33): the concatenation flow coefficient. Three independent
// routes to "A" in p_{L+1} = A p_L²:
//  (a) the combinatorial count C(7,2) = 21 of the paper;
//  (b) the exact code-capacity flow map of the Hamming decoder;
//  (c) exhaustive two-fault enumeration over the full Fig. 9 recovery
//      circuit (the circuit-level analogue).
// Then iterates the flow to reproduce the Eq. 36 cascade and the 1/A
// threshold.
#include <cstdio>

#include "bench_harness.h"
#include "codes/concatenated.h"
#include "common/table.h"
#include "ft/fault_enumeration.h"
#include "ft/steane_recovery.h"
#include "threshold/flow.h"

namespace {
using namespace ftqc;
using namespace ftqc::ft;
using namespace ftqc::threshold;
}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E06");
  std::printf("E6: the Eq. 33 flow coefficient p1 = A p0^2 and its threshold.\n\n");

  // (a) combinatorial: C(7,2).
  std::printf("(a) combinatorial C(7,2)                = 21\n");

  // (b) code capacity, exact: block_failure(p)/p^2 as p -> 0.
  const double p_small = 1e-5;
  const double a_code =
      codes::ConcatenatedSteane::block_failure_exact(p_small) / (p_small * p_small);
  std::printf("(b) exact Hamming-decoder flow map      = %.2f\n", a_code);

  // (c) circuit level: weighted failing fault pairs over one full recovery
  // cycle (gate faults only, matching the eps_gate-only model). The pair
  // enumeration is quadratic in fault locations, so smoke mode skips it.
  double a_circuit = 0;
  if (!ftqc::bench::smoke()) {
    const auto pair_scan = scan_fault_pairs(
        [](NoiseInjector& injector) {
          SteaneRecovery rec(sim::NoiseParams{}, RecoveryPolicy{}, 7);
          rec.set_injector(&injector);
          rec.run_cycle();
          rec.set_injector(nullptr);
          return rec.any_logical_error();
        },
        gate_kinds_only());
    a_circuit = pair_scan.weighted_failing;
    std::printf(
        "(c) circuit-level two-fault enumeration = %.1f  (%zu pairs tried, "
        "%zu failing)\n\n",
        pair_scan.weighted_failing, pair_scan.pairs_tried,
        pair_scan.pairs_failing);
  } else {
    std::printf("(c) circuit-level two-fault enumeration skipped in smoke mode\n\n");
  }

  std::printf("Thresholds 1/A:\n");
  std::printf("  combinatorial  : %.4f  (the paper's 1/21 = %.4f)\n", 1.0 / 21,
              1.0 / 21);
  std::printf("  code capacity  : %.4f (exact fixed point %.4f)\n", 1.0 / a_code,
              codes::ConcatenatedSteane::code_capacity_threshold());
  if (a_circuit > 0) {
    std::printf("  circuit level  : %.2e (per-gate eps)\n\n", 1.0 / a_circuit);
  }

  ftqc::bench::JsonResult json;
  json.add("flow_coeff_code_capacity", a_code);
  if (a_circuit > 0) json.add("flow_coeff_circuit_level", a_circuit);
  json.add("threshold_code_capacity",
           codes::ConcatenatedSteane::code_capacity_threshold());
  json.write();

  // Flow cascade (Eq. 36): iterate from p0 = 1e-3.
  const QuadraticFlow flow{21.0};
  std::printf("Eq. 36 cascade with A = 21 from p0 = 1e-3:\n");
  ftqc::Table table({"level L", "p_L (iterated)", "p_L (closed form)",
                     "block size 7^L"});
  for (size_t level = 0; level <= 4; ++level) {
    table.add_row({ftqc::strfmt("%zu", level),
                   ftqc::strfmt("%.3e", flow.at_level(1e-3, level)),
                   ftqc::strfmt("%.3e", flow.at_level_closed_form(1e-3, level)),
                   ftqc::strfmt("%zu", concatenated_block_size(level))});
  }
  table.print();
  std::printf(
      "\nShape check: (b) reproduces the paper's 21 exactly in the p->0\n"
      "limit; (c) gives the much larger circuit-level coefficient (hundreds),\n"
      "which is why circuit-level thresholds (~1e-3..1e-4) sit far below the\n"
      "combinatorial 1/21 — consistent with the paper's Eq. 34 estimate.\n");
  return 0;
}
