// E14 (§7.1-7.2): topological memory. The toric code stores two logical
// qubits in the torus homology; under iid X noise with matching-based
// decoding the logical failure rate falls exponentially with lattice size
// below a threshold — Kitaev's "intrinsically fault-tolerant hardware".
#include <cstdio>

#include "bench_harness.h"
#include "common/rng.h"
#include "common/table.h"
#include "topo/toric_code.h"

namespace {

double failure_rate(const ftqc::topo::ToricCode& code, double p, size_t shots,
                    uint64_t seed) {
  ftqc::Rng rng(seed);
  size_t failures = 0;
  ftqc::gf2::BitVec errors(code.num_qubits());
  for (size_t s = 0; s < shots; ++s) {
    errors.clear();
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(p)) errors.set(e, true);
    }
    ftqc::gf2::BitVec residual = errors;
    residual ^= code.decode_plaquette_syndrome(code.plaquette_syndrome(errors));
    const auto [f1, f2] = code.logical_x_flips(residual);
    failures += (f1 || f2) ? 1 : 0;
  }
  return static_cast<double>(failures) / static_cast<double>(shots);
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E14");
  using ftqc::topo::ToricCode;
  std::printf(
      "E14: toric-code memory under iid X noise, greedy-matching decoder.\n"
      "Rows: physical error rate p; columns: lattice size L (2L^2 qubits).\n\n");

  const size_t shots = ftqc::bench::scaled(3000, 300);
  ftqc::bench::JsonResult json;
  ftqc::Table table({"p", "L=4", "L=6", "L=8", "trend"});
  for (const double p : {0.12, 0.10, 0.08, 0.06, 0.04, 0.02, 0.01}) {
    const double f4 = failure_rate(ToricCode(4), p, shots, 11);
    const double f6 = failure_rate(ToricCode(6), p, shots, 13);
    const double f8 = failure_rate(ToricCode(8), p, shots, 17);
    const char* trend = (f8 < f6 && f6 < f4) ? "bigger is better"
                        : (f8 > f6 && f6 > f4) ? "bigger is WORSE"
                                               : "crossover";
    table.add_row({ftqc::strfmt("%.2f", p), ftqc::strfmt("%.4f", f4),
                   ftqc::strfmt("%.4f", f6), ftqc::strfmt("%.4f", f8), trend});
    if (p == 0.02) {
      json.add("p", p);
      json.add("failure_L4", f4);
      json.add("failure_L6", f6);
      json.add("failure_L8", f8);
    }
  }
  table.print();
  json.add("shots", shots);
  json.write();
  std::printf(
      "\nShape check: below ~0.05-0.08 growing the lattice suppresses the\n"
      "logical failure (exponentially in L); above it, larger lattices are\n"
      "worse — a topological accuracy threshold. (The optimal MWPM decoder\n"
      "reaches ~0.103; greedy matching trades a few points of threshold for\n"
      "simplicity. The §7 claim — macroscopic protection from local noise —\n"
      "is decoder-independent.)\n");
  return 0;
}
