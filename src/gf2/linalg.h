#pragma once

#include <optional>
#include <vector>

#include "gf2/bitmat.h"

namespace ftqc::gf2 {

// Result of reduction to row echelon form.
struct Echelon {
  BitMat mat;                      // reduced row-echelon form
  std::vector<size_t> pivot_cols;  // pivot column of each nonzero row
  size_t rank = 0;
};

// Reduced row-echelon form by Gaussian elimination (word-parallel row xors).
[[nodiscard]] Echelon rref(BitMat m);

[[nodiscard]] size_t rank(const BitMat& m);

// Solves M x = b. Returns one solution if consistent, nullopt otherwise.
[[nodiscard]] std::optional<BitVec> solve(const BitMat& m, const BitVec& b);

// Basis of the null space {x : M x = 0}.
[[nodiscard]] std::vector<BitVec> kernel_basis(const BitMat& m);

// True if v lies in the row space of M.
[[nodiscard]] bool in_row_space(const BitMat& m, const BitVec& v);

}  // namespace ftqc::gf2
