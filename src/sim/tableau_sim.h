#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "gf2/bitvec.h"
#include "pauli/pauli_string.h"
#include "sim/circuit.h"

namespace ftqc::sim {

// Stabilizer-state simulator in the Aaronson–Gottesman tableau form: n
// destabilizer rows and n stabilizer rows, each a signed Pauli. This is the
// exact-Clifford engine used to validate gadgets and to cross-check the fast
// Pauli-frame sampler. Initial state is |0...0>.
//
// Supports leakage (§6): a leaked qubit absorbs gates (they act as identity,
// matching the assumption under Fig. 15), measures to a random outcome, and
// is restored to |0> by R.
class TableauSim {
 public:
  explicit TableauSim(size_t num_qubits, uint64_t seed = 1);

  [[nodiscard]] size_t num_qubits() const { return n_; }

  // --- Clifford unitaries -------------------------------------------------
  void apply_h(size_t q);
  void apply_s(size_t q);
  void apply_s_dag(size_t q);
  void apply_x(size_t q);
  void apply_y(size_t q);
  void apply_z(size_t q);
  void apply_cx(size_t control, size_t target);
  void apply_cz(size_t a, size_t b);
  void apply_swap(size_t a, size_t b);
  // Conjugates the state by an arbitrary Pauli (used for error injection).
  void apply_pauli(const pauli::PauliString& p);

  // --- Measurement / reset ------------------------------------------------
  // Z-basis measurement with collapse; returns the outcome bit.
  bool measure_z(size_t q);
  bool measure_x(size_t q);
  void reset(size_t q);

  // Generalized projective measurement of a Pauli observable P with
  // eigenvalues ±1; returns outcome bit b where the state is projected onto
  // the (-1)^b eigenspace. Used for encoded-operator measurements (§3.6).
  bool measure_pauli(const pauli::PauliString& p);

  // Outcome of measuring P if it is deterministic, nullopt if it would be
  // random. Does not disturb the state.
  [[nodiscard]] std::optional<bool> peek_pauli(const pauli::PauliString& p) const;

  // True iff P (ignoring its sign) is in the stabilizer group up to sign;
  // `sign_out` receives the sign with which it stabilizes (0 => +P).
  [[nodiscard]] bool stabilizes(const pauli::PauliString& p, bool* sign_out = nullptr) const;

  // --- Leakage ------------------------------------------------------------
  void mark_leaked(size_t q) { leaked_[q] = true; }
  [[nodiscard]] bool is_leaked(size_t q) const { return leaked_[q]; }

  // --- Introspection ------------------------------------------------------
  // The i-th stabilizer generator of the current state, as a signed Pauli.
  [[nodiscard]] pauli::PauliString stabilizer(size_t i) const;
  [[nodiscard]] pauli::PauliString destabilizer(size_t i) const;

  Rng& rng() { return rng_; }

 private:
  struct Row {
    gf2::BitVec x;
    gf2::BitVec z;
    bool sign = false;  // false => +, true => -
  };

  // row_h <- row_i * row_h with exact sign tracking.
  void row_mult_into(size_t i, size_t h);
  void row_mult_into(const Row& src, Row& dst) const;
  [[nodiscard]] static int phase_exponent_of_product(const Row& a, const Row& b);
  [[nodiscard]] bool row_anticommutes(size_t row, const pauli::PauliString& p) const;

  size_t n_;
  std::vector<Row> rows_;  // [0,n) destabilizers, [n,2n) stabilizers
  std::vector<bool> leaked_;
  Rng rng_;
};

}  // namespace ftqc::sim
