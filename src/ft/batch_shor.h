#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codes/lookup_decoder.h"
#include "codes/stabilizer_code.h"
#include "ft/batch_recovery.h"
#include "ft/recovery.h"
#include "gf2/hamming.h"
#include "pauli/pauli_string.h"
#include "sim/batch_frame_sim.h"
#include "sim/noise_model.h"

namespace ftqc::ft {

// Batched §3.3 cat-retry: replays a cat_prep_with_check circuit at 64 shots
// per word with the data-dependent discard loop expressed as masked
// re-replay. Attempt k re-runs ONLY the lanes that failed attempts 0..k-1:
// later attempts replay the gadget's unitaries over the whole word (the
// prep's R resets make that safe for lanes with clean frames), so lanes
// that already passed park their cat-qubit frames in a side buffer while
// the stragglers retry and are restored afterwards — a scatter/compact over
// the handful of cat qubits instead of the whole register.
//
// Retry-cap semantics: the serial path silently uses the last cat
// unverified when the budget runs out. The batch path keeps those lanes'
// last-attempt frames (same statistics) but ALSO surfaces them in the sim's
// abort mask via discard_lanes, so a forced-failure pathology (e.g. a
// deliberately broken verification) cannot masquerade as a verified
// ancilla; at this library's noise scales the cap is unreachable and the
// mask stays empty.
class BatchCatRetry {
 public:
  explicit BatchCatRetry(sim::BatchFrameSim& sim);

  // `prep` must measure exactly one qubit (the cat check); `cat` names the
  // qubits whose frames carry the prepared state past the retry loop.
  // `active` (nullptr = all) restricts the whole loop to the lanes whose
  // shot is executing this preparation. A lane fails an attempt when the
  // check bit flips (policy.verify_ancilla) OR any cat qubit carries a
  // heralded erasure (policy.herald_reinit, p_erase > 0) — mirroring the
  // serial discard decision bit for bit. Returns the number of discarded
  // cats summed over lanes (the serial cats_discarded counter).
  uint64_t prepare(BatchGadgetRunner& gadgets, const sim::Circuit& prep,
                   std::span<const uint32_t> cat,
                   std::span<const uint32_t> active_qubits,
                   const RecoveryPolicy& policy, const uint64_t* active);

 private:
  sim::BatchFrameSim& sim_;
  std::vector<uint64_t> need_, passed_any_, failed_, scratch_;
  std::vector<uint64_t> parked_;  // [cat qubit][x|z][word]
};

// Bit-parallel ShorRecovery: one full cat-state recovery cycle (§3.2-§3.4)
// on 64 shots per word. Each of the six generators is measured with a
// verified 4-bit cat prepared through BatchCatRetry; syndrome bits are
// bit-sliced parities of the cat readout rows; the §3.4 repeat and the
// correction become lane masking, exactly as in BatchSteaneRecovery.
// Register layout matches ShorRecovery: data [0,7), cat [7,11), check 11.
class BatchShorRecovery {
 public:
  static constexpr uint32_t kNumQubits = 12;

  // shots is rounded up to a multiple of 64.
  BatchShorRecovery(const sim::NoiseParams& noise, RecoveryPolicy policy,
                    size_t shots, uint64_t seed);

  [[nodiscard]] size_t num_shots() const { return sim_.num_shots(); }
  [[nodiscard]] size_t num_words() const { return sim_.num_words(); }

  void reset();
  void inject_data(uint32_t q, char pauli);
  void apply_memory_noise(double p);

  void run_cycle();

  [[nodiscard]] uint64_t count_any_logical_error(
      size_t num_lanes = SIZE_MAX) const;
  [[nodiscard]] bool logical_x_error(size_t shot) const;
  [[nodiscard]] bool logical_z_error(size_t shot) const;
  [[nodiscard]] bool any_logical_error(size_t shot) const {
    return logical_x_error(shot) || logical_z_error(shot);
  }

  // Cat preparations discarded by verification, summed over lanes (E3).
  [[nodiscard]] uint64_t cats_discarded() const { return cats_discarded_; }
  // Lanes whose retry budget ran out without a verified cat (also set in
  // frames().abort_mask(); empty at realistic noise).
  [[nodiscard]] uint64_t count_retry_exhausted() const;

  [[nodiscard]] sim::BatchFrameSim& frames() { return sim_; }

 private:
  // Writes one bit-sliced syndrome bit (words words) into `out`.
  void measure_syndrome_bit(size_t row, bool x_type, const uint64_t* active,
                            uint64_t* out);
  // Writes 3 syndrome rows (3 * words words) into `syndrome_rows`.
  void extract_syndrome(bool phase_type, const uint64_t* active,
                        uint64_t* syndrome_rows);

  sim::BatchFrameSim sim_;
  BatchGadgetRunner gadgets_;
  BatchCatRetry retry_;
  sim::NoiseParams noise_;
  RecoveryPolicy policy_;
  gf2::Hamming743 hamming_;
  size_t words_;
  uint64_t cats_discarded_ = 0;
};

// Bit-parallel GenericShorRecovery (§3.6/§4.2): fault-tolerant recovery for
// an arbitrary stabilizer code, 64 shots per word. Generator measurement
// and the cat-retry loop are bit-sliced as in BatchShorRecovery; the
// correction step gathers the per-lane syndrome values among the acting
// lanes, decodes each DISTINCT value once through the code's lookup
// decoder, and applies the resulting Pauli as masked injections (acting
// lanes are sparse below threshold, so the gather costs a handful of bit
// reads per correcting shot).
class BatchGenericShorRecovery {
 public:
  BatchGenericShorRecovery(const codes::StabilizerCode& code,
                           const sim::NoiseParams& noise,
                           RecoveryPolicy policy, size_t shots, uint64_t seed);

  [[nodiscard]] size_t num_shots() const { return sim_.num_shots(); }
  [[nodiscard]] size_t num_words() const { return sim_.num_words(); }

  void reset();
  void inject_data(uint32_t q, char pauli);
  void apply_memory_noise(double p);

  void run_cycle();

  // Residual error of one lane, as a signed-free Pauli.
  [[nodiscard]] pauli::PauliString residual(size_t shot) const;
  [[nodiscard]] bool any_logical_error(size_t shot) const;
  [[nodiscard]] uint64_t count_any_logical_error(
      size_t num_lanes = SIZE_MAX) const;

  [[nodiscard]] uint64_t cats_discarded() const { return cats_discarded_; }
  [[nodiscard]] sim::BatchFrameSim& frames() { return sim_; }

 private:
  void measure_generator(size_t g, const uint64_t* active, uint64_t* out);
  void extract_syndrome(const uint64_t* active, uint64_t* syndrome_rows);
  void correct(const uint64_t* syndrome_rows, const uint64_t* act_mask);

  const codes::StabilizerCode& code_;
  codes::LookupDecoder decoder_;
  sim::BatchFrameSim sim_;
  BatchGadgetRunner gadgets_;
  BatchCatRetry retry_;
  sim::NoiseParams noise_;
  RecoveryPolicy policy_;
  size_t words_;
  size_t max_weight_;
  std::vector<uint32_t> cat_;
  uint32_t check_;
  std::vector<uint32_t> all_qubits_;
  std::vector<sim::Circuit> cat_preps_;    // per generator (width-matched)
  std::vector<sim::Circuit> gen_gadgets_;  // per generator
  uint64_t cats_discarded_ = 0;
};

}  // namespace ftqc::ft
