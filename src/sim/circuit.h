#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "sim/gate.h"

namespace ftqc::sim {

// A single instruction. `targets` are qubit indices; `arg` is the channel
// probability or rotation angle; `cond` (when >= 0) indexes a bit of the
// measurement record and the operation is applied only when that bit is 1 —
// this implements the measurement-conditioned corrections of Figs. 9 and 13.
struct Operation {
  Gate gate = Gate::I;
  std::vector<uint32_t> targets;
  double arg = 0.0;
  // Second and third channel parameters: the biased Pauli channels carry
  // (p_x, p_y, p_z) as (arg, arg2, arg3). Zero for every other gate.
  double arg2 = 0.0;
  double arg3 = 0.0;
  int32_t cond = -1;

  [[nodiscard]] std::string to_string() const;
};

// A straight-line quantum circuit with classical feedforward. Built by the
// gadget constructors in src/ft/ and consumed by the simulators in this
// module. Gadgets insert TICKs between logical time steps so the noise model
// can attach storage errors to idle qubits (§6 "maximal parallelism").
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(size_t num_qubits) : num_qubits_(num_qubits) {}

  [[nodiscard]] size_t num_qubits() const { return num_qubits_; }
  [[nodiscard]] const std::vector<Operation>& ops() const { return ops_; }
  [[nodiscard]] size_t num_measurements() const { return num_measurements_; }

  // Grows the qubit register if an op references beyond the current size.
  void ensure_qubits(size_t n) {
    if (n > num_qubits_) num_qubits_ = n;
  }

  // Appends an op and returns the measurement-record index it writes
  // (or -1 for non-recording ops).
  int32_t append(Gate g, std::span<const uint32_t> targets, double arg = 0.0,
                 int32_t cond = -1);

  // Convenience builders (see Fig. 1 for the diagram notation).
  void i(uint32_t q) { append1(Gate::I, q); }
  void x(uint32_t q, int32_t cond = -1) { append1(Gate::X, q, 0.0, cond); }
  void y(uint32_t q, int32_t cond = -1) { append1(Gate::Y, q, 0.0, cond); }
  void z(uint32_t q, int32_t cond = -1) { append1(Gate::Z, q, 0.0, cond); }
  void h(uint32_t q) { append1(Gate::H, q); }
  void s(uint32_t q) { append1(Gate::S, q); }
  void s_dag(uint32_t q) { append1(Gate::S_DAG, q); }
  void rx(uint32_t q, double theta) { append1(Gate::RX, q, theta); }
  void rz(uint32_t q, double theta) { append1(Gate::RZ, q, theta); }
  void cx(uint32_t control, uint32_t target, int32_t cond = -1) {
    append2(Gate::CX, control, target, 0.0, cond);
  }
  void cz(uint32_t a, uint32_t b, int32_t cond = -1) {
    append2(Gate::CZ, a, b, 0.0, cond);
  }
  void swap(uint32_t a, uint32_t b) { append2(Gate::SWAP, a, b); }
  void ccx(uint32_t c0, uint32_t c1, uint32_t target) {
    const uint32_t t[3] = {c0, c1, target};
    append(Gate::CCX, t);
  }
  void ccz(uint32_t a, uint32_t b, uint32_t c) {
    const uint32_t t[3] = {a, b, c};
    append(Gate::CCZ, t);
  }
  int32_t m(uint32_t q) { return append1(Gate::M, q); }
  int32_t mx(uint32_t q) { return append1(Gate::MX, q); }
  int32_t mr(uint32_t q) { return append1(Gate::MR, q); }
  void r(uint32_t q) { append1(Gate::R, q); }
  void tick() { append(Gate::TICK, std::span<const uint32_t>{}); }

  void depolarize1(uint32_t q, double p) { append1(Gate::DEPOLARIZE1, q, p); }
  void depolarize2(uint32_t a, uint32_t b, double p) {
    append2(Gate::DEPOLARIZE2, a, b, p);
  }
  void x_error(uint32_t q, double p) { append1(Gate::X_ERROR, q, p); }
  void y_error(uint32_t q, double p) { append1(Gate::Y_ERROR, q, p); }
  void z_error(uint32_t q, double p) { append1(Gate::Z_ERROR, q, p); }
  void leak_error(uint32_t q, double p) { append1(Gate::LEAK_ERROR, q, p); }
  void erase_error(uint32_t q, double p) { append1(Gate::ERASE, q, p); }
  // Biased single-qubit Pauli channel: X/Y/Z with probabilities px/py/pz.
  void pauli_channel1(uint32_t q, double px, double py, double pz) {
    const uint32_t t[1] = {q};
    const int32_t idx = append(Gate::PAULI_CHANNEL1, t, px);
    (void)idx;
    ops_.back().arg2 = py;
    ops_.back().arg3 = pz;
  }
  // Biased two-qubit channel: total probability p of a non-identity fault,
  // each qubit's Pauli drawn from weights (1, 3f_x, 3f_y, 3f_z) with
  // f = (px,py,pz)/(px+py+pz), conditioned on not-II. Reduces to the
  // uniform 15-way DEPOLARIZE2 distribution when px = py = pz.
  void pauli_channel2(uint32_t a, uint32_t b, double p, double fx, double fy) {
    const uint32_t t[2] = {a, b};
    const int32_t idx = append(Gate::PAULI_CHANNEL2, t, p);
    (void)idx;
    ops_.back().arg2 = fx;
    ops_.back().arg3 = fy;
  }
  void inject(uint32_t q, char pauli);

  // Appends another circuit, remapping its qubit i to qubit_map[i] and
  // offsetting its measurement-conditioned controls to this record.
  void append_circuit(const Circuit& other, std::span<const uint32_t> qubit_map);

  // Counts of each gate kind; used by the structural circuit tests and the
  // resource accounting in bench E15.
  [[nodiscard]] size_t count(Gate g) const;
  // Number of time steps = TICK count + 1 (if nonempty).
  [[nodiscard]] size_t depth_in_ticks() const;

  [[nodiscard]] std::string to_string() const;

 private:
  int32_t append1(Gate g, uint32_t q, double arg = 0.0, int32_t cond = -1) {
    const uint32_t t[1] = {q};
    return append(g, t, arg, cond);
  }
  int32_t append2(Gate g, uint32_t a, uint32_t b, double arg = 0.0,
                  int32_t cond = -1) {
    const uint32_t t[2] = {a, b};
    return append(g, t, arg, cond);
  }

  size_t num_qubits_ = 0;
  size_t num_measurements_ = 0;
  std::vector<Operation> ops_;
};

}  // namespace ftqc::sim
