#include "sim/frame_sim.h"

#include <algorithm>

#include "common/check.h"

namespace ftqc::sim {

FrameSim::FrameSim(size_t num_qubits, uint64_t seed)
    : n_(num_qubits), x_(num_qubits), z_(num_qubits),
      leaked_(num_qubits, false), erased_(num_qubits, false), rng_(seed) {}

void FrameSim::clear() {
  x_.clear();
  z_.clear();
  std::fill(leaked_.begin(), leaked_.end(), false);
  std::fill(erased_.begin(), erased_.end(), false);
}

void FrameSim::apply_h(size_t q) {
  if (leaked_[q]) return;
  const bool x = x_.get(q);
  x_.set(q, z_.get(q));
  z_.set(q, x);
}

void FrameSim::apply_s(size_t q) {
  if (leaked_[q]) return;
  // S maps X -> Y: the Z component toggles when an X is present. Signs are
  // irrelevant to a frame.
  if (x_.get(q)) z_.flip(q);
}

void FrameSim::apply_cx(size_t control, size_t target) {
  if (leaked_[control] || leaked_[target]) return;
  if (x_.get(control)) x_.flip(target);   // X propagates forward (§3.1)
  if (z_.get(target)) z_.flip(control);   // Z propagates backward (§3.1)
}

void FrameSim::apply_cz(size_t a, size_t b) {
  if (leaked_[a] || leaked_[b]) return;
  if (x_.get(a)) z_.flip(b);
  if (x_.get(b)) z_.flip(a);
}

void FrameSim::apply_swap(size_t a, size_t b) {
  if (leaked_[a] || leaked_[b]) return;
  const bool xa = x_.get(a), za = z_.get(a);
  x_.set(a, x_.get(b));
  z_.set(a, z_.get(b));
  x_.set(b, xa);
  z_.set(b, za);
}

void FrameSim::inject(const pauli::PauliString& p) {
  FTQC_CHECK(p.num_qubits() == n_, "inject size mismatch");
  x_ ^= p.x_part();
  z_ ^= p.z_part();
}

void FrameSim::depolarize1(size_t q, double p) {
  if (p <= 0) return;  // keep the RNG stream aligned with the batch engine
  if (!rng_.bernoulli(p)) return;
  // X, Y or Z with equal probability (the §6 storage model).
  switch (rng_.next_below(3)) {
    case 0: inject_x(q); break;
    case 1: inject_y(q); break;
    default: inject_z(q); break;
  }
}

void FrameSim::depolarize2(size_t a, size_t b, double p) {
  if (p <= 0) return;
  if (!rng_.bernoulli(p)) return;
  // One of the 15 non-identity two-qubit Paulis, uniformly: the paper's
  // pessimistic rule that a faulty gate may damage every qubit it touches.
  const uint64_t which = rng_.next_below(15) + 1;  // 1..15, 2 bits per qubit
  const auto apply_code = [this](size_t q, uint64_t code) {
    switch (code) {
      case 1: inject_x(q); break;
      case 2: inject_z(q); break;
      case 3: inject_y(q); break;
      default: break;
    }
  };
  apply_code(a, which & 3);
  apply_code(b, (which >> 2) & 3);
}

void FrameSim::x_error(size_t q, double p) {
  if (p <= 0) return;
  if (rng_.bernoulli(p)) inject_x(q);
}

void FrameSim::z_error(size_t q, double p) {
  if (p <= 0) return;
  if (rng_.bernoulli(p)) inject_z(q);
}

void FrameSim::y_error(size_t q, double p) {
  if (p <= 0) return;
  if (rng_.bernoulli(p)) inject_y(q);
}

bool FrameSim::measure_z(size_t q) {
  const bool flip = x_.get(q);
  // Collapse gauge: the post-measurement Z frame is unobservable.
  if (rng_.next_u64() & 1) z_.flip(q);
  return flip;
}

bool FrameSim::measure_x(size_t q) {
  const bool flip = z_.get(q);
  if (rng_.next_u64() & 1) x_.flip(q);
  return flip;
}

void FrameSim::reset(size_t q) {
  x_.set(q, false);
  z_.set(q, false);
  leaked_[q] = false;
  erased_[q] = false;
}

void FrameSim::leak_error(size_t q, double p) {
  if (p <= 0) return;
  if (rng_.bernoulli(p)) leaked_[q] = true;
}

void FrameSim::erase_error(size_t q, double p) {
  if (p <= 0) return;
  if (!rng_.bernoulli(p)) return;
  erased_[q] = true;
  // Replace-with-mixed is a uniform Pauli twirl in frame space: the frame
  // bits become fresh uniform random, erasing any correlation with the
  // pre-erasure error. One draw per component, matching the gauge idiom.
  x_.set(q, (rng_.next_u64() & 1) != 0);
  z_.set(q, (rng_.next_u64() & 1) != 0);
}

void FrameSim::pauli_channel1(size_t q, double px, double py, double pz) {
  const double total = px + py + pz;
  if (total <= 0) return;
  if (!rng_.bernoulli(total)) return;
  const double u = rng_.next_double() * total;
  if (u < px) {
    inject_x(q);
  } else if (u < px + py) {
    inject_y(q);
  } else {
    inject_z(q);
  }
}

void FrameSim::pauli_channel2(size_t a, size_t b, double p, double fx,
                              double fy) {
  if (p <= 0) return;
  if (!rng_.bernoulli(p)) return;
  // Each qubit draws from weights (1, 3fx, 3fy, 3fz), total 4, conditioned
  // on the pair not being II by rejection. At fx = fy = fz = 1/3 this is
  // exactly the uniform 15-way non-identity draw of DEPOLARIZE2.
  const double wx = 3.0 * fx;
  const double wy = 3.0 * fy;
  const double wz = 3.0 - wx - wy;
  const auto draw_code = [&]() -> uint64_t {
    const double u = rng_.next_double() * 4.0;
    if (u < 1.0) return 0;             // I
    if (u < 1.0 + wx) return 1;        // X
    if (u < 1.0 + wx + wy) return 3;   // Y
    (void)wz;
    return 2;                          // Z
  };
  uint64_t ca = 0, cb = 0;
  do {
    ca = draw_code();
    cb = draw_code();
  } while (ca == 0 && cb == 0);
  const auto apply_code = [this](size_t q, uint64_t code) {
    switch (code) {
      case 1: inject_x(q); break;
      case 2: inject_z(q); break;
      case 3: inject_y(q); break;
      default: break;
    }
  };
  apply_code(a, ca);
  apply_code(b, cb);
}

pauli::PauliString FrameSim::frame() const {
  pauli::PauliString p(n_);
  p.x_part() = x_;
  p.z_part() = z_;
  return p;
}

}  // namespace ftqc::sim
