#include "sim/noise_model.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace ftqc::sim {

Circuit add_noise(const Circuit& ideal, const NoiseParams& params) {
  Circuit noisy(ideal.num_qubits());
  std::vector<bool> touched(ideal.num_qubits(), false);

  // Unbiased params must compile to the exact ops they always did (the
  // pinned RNG streams depend on it); bias reroutes through the
  // PAULI_CHANNEL ops with the same total probability per location.
  const bool biased = params.is_biased();
  const auto noise1 = [&](uint32_t q, double eps) {
    if (biased) {
      noisy.pauli_channel1(q, eps * params.frac_x(), eps * params.frac_y(),
                           eps * params.frac_z());
    } else {
      noisy.depolarize1(q, eps);
    }
  };
  const auto noise2 = [&](uint32_t a, uint32_t b, double eps) {
    if (biased) {
      noisy.pauli_channel2(a, b, eps, params.frac_x(), params.frac_y());
    } else {
      noisy.depolarize2(a, b, eps);
    }
  };

  const auto flush_storage = [&] {
    if (params.eps_store > 0) {
      for (size_t q = 0; q < ideal.num_qubits(); ++q) {
        if (!touched[q]) noise1(static_cast<uint32_t>(q), params.eps_store);
      }
    }
    std::fill(touched.begin(), touched.end(), false);
  };

  for (const Operation& op : ideal.ops()) {
    for (uint32_t t : op.targets) touched[t] = true;
    switch (op.gate) {
      case Gate::TICK:
        noisy.append(Gate::TICK, std::span<const uint32_t>{});
        flush_storage();
        continue;
      case Gate::M:
        if (params.eps_meas > 0) noisy.x_error(op.targets[0], params.eps_meas);
        break;
      case Gate::MX:
        if (params.eps_meas > 0) noisy.z_error(op.targets[0], params.eps_meas);
        break;
      default:
        break;
    }

    noisy.append(op.gate, op.targets, op.arg, op.cond);

    switch (op.gate) {
      case Gate::X:
      case Gate::Y:
      case Gate::Z:
      case Gate::H:
      case Gate::S:
      case Gate::S_DAG:
      case Gate::RX:
      case Gate::RZ:
        if (params.eps_gate1 > 0) noise1(op.targets[0], params.eps_gate1);
        if (params.p_leak > 0) noisy.leak_error(op.targets[0], params.p_leak);
        if (params.p_erase > 0) noisy.erase_error(op.targets[0],
                                                  params.p_erase);
        break;
      case Gate::I:
        // Explicit I marks a deliberately idle qubit inside a layer; it
        // already receives storage noise at the TICK, not gate noise.
        break;
      case Gate::CX:
      case Gate::CZ:
      case Gate::SWAP:
        if (params.eps_gate2 > 0) {
          noise2(op.targets[0], op.targets[1], params.eps_gate2);
        }
        if (params.p_leak > 0) {
          noisy.leak_error(op.targets[0], params.p_leak);
          noisy.leak_error(op.targets[1], params.p_leak);
        }
        if (params.p_erase > 0) {
          noisy.erase_error(op.targets[0], params.p_erase);
          noisy.erase_error(op.targets[1], params.p_erase);
        }
        break;
      case Gate::CCX:
      case Gate::CCZ:
        FTQC_CHECK(params.is_noiseless(),
                   "stochastic channels for 3-qubit gates are not modelled; "
                   "use fault injection (E12) for Toffoli gadgets");
        break;
      case Gate::R:
      case Gate::MR:
        if (params.eps_prep > 0) noisy.x_error(op.targets[0], params.eps_prep);
        if (params.p_erase > 0) noisy.erase_error(op.targets[0],
                                                  params.p_erase);
        break;
      default:
        break;
    }
  }
  // Note: ops after the final TICK form an unterminated time step and get no
  // storage noise; gadget builders end every step with an explicit TICK.
  return noisy;
}

size_t count_fault_locations(const Circuit& noisy) {
  size_t count = 0;
  for (const Operation& op : noisy.ops()) {
    if (gate_is_channel(op.gate)) ++count;
  }
  return count;
}

}  // namespace ftqc::sim
