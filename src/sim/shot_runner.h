#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string_view>
#include <type_traits>
#include <utility>

#include "common/check.h"
#include "common/stats.h"

// OpenMP pragmas in this header are compiled into every consumer, including
// builds without OpenMP; emit them only when the compiler understands them.
#ifdef _OPENMP
#define FTQC_OMP_PRAGMA(directive) _Pragma(directive)
#else
#define FTQC_OMP_PRAGMA(directive)
#endif

namespace ftqc::sim {

// Which simulation engine a Monte Carlo loop should drive. The runner itself
// is engine-agnostic — it distributes shots, seeds, threads and timing — but
// carrying the choice in the plan lets one driver own all three paths instead
// of hand-rolling a loop per engine (the pre-refactor state of benches
// E02/E04/E05/E10/E18 and the pseudothreshold sweeps).
enum class ShotEngine : uint8_t {
  kExact,  // TableauSim: exact stabilizer states, one shot at a time
  kFrame,  // FrameSim: Pauli frames, one shot at a time
  kBatch,  // BatchFrameSim: bit-parallel frames, 64 shots per word
};

[[nodiscard]] const char* shot_engine_name(ShotEngine engine);
// Parses "exact" / "frame" / "batch"; nullopt on anything else.
[[nodiscard]] std::optional<ShotEngine> parse_shot_engine(std::string_view name);

// How to run a Monte Carlo estimate: shot budget, seeding discipline, engine
// and threading. Per-shot seeds are `seed + seed_stride * shot_index`, which
// keeps every shot reproducible independently of the thread schedule.
struct ShotPlan {
  size_t shots = 0;
  uint64_t seed = 1;
  uint64_t seed_stride = 1;
  ShotEngine engine = ShotEngine::kFrame;
  // Shots handed to one batch-engine block (rounded up to a multiple of 64
  // by the batch engine itself). Blocks seed as shots do: block k covers
  // shot indices [k*block_shots, ...), so its seed uses that first index.
  size_t block_shots = 4096;
  // OpenMP over shots (serial engines) or blocks (batch engine) when the
  // library was built with it; a plan can opt out for deterministic ordering.
  bool parallel = true;

  // Decorrelated sub-plan for one importance stratum: same budget, engine
  // and stride, but the base seed is offset by a splitmix64-mixed function
  // of the stratum index, so stratum k's shot i never replays stratum j's
  // seed stream. The rare-event samplers pair this with run_range so each
  // stratum is an independent, chunk-boundary-reproducible shot sequence.
  [[nodiscard]] ShotPlan for_stratum(size_t stratum) const {
    ShotPlan sub = *this;
    uint64_t z = (static_cast<uint64_t>(stratum) + 1) * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    sub.seed = seed + (z ^ (z >> 31));
    return sub;
  }
};

// Outcome of a run: event counts plus wall-clock throughput, ready for the
// BENCH_*.json artifacts. Shot callables report up to kMaxEvents independent
// binary events per shot (bit i of the returned mask -> counts[i]); plain
// bool callables count event 0, the conventional "failure".
struct ShotResult {
  static constexpr size_t kMaxEvents = 4;

  std::array<uint64_t, kMaxEvents> counts{};
  uint64_t trials = 0;
  double seconds = 0;

  [[nodiscard]] uint64_t failures() const { return counts[0]; }
  // False until at least one shot actually ran. failure_rate() returns 0.0
  // either way, so sweep fit loops must skip unresolved points instead of
  // treating "never measured" as a perfect zero.
  [[nodiscard]] bool resolved() const { return trials > 0; }
  [[nodiscard]] double failure_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(counts[0]) /
                             static_cast<double>(trials);
  }
  [[nodiscard]] double shots_per_sec() const {
    return seconds > 0 ? static_cast<double>(trials) / seconds : 0.0;
  }
  [[nodiscard]] Proportion proportion(size_t event = 0) const {
    return Proportion{counts[event], trials};
  }
};

// Unified driver for every Monte Carlo shot loop in the tree. Callables
// receive a seed and own engine construction, so the runner needs no
// knowledge of recovery drivers or circuits:
//
//   ShotRunner runner({.shots = 60000, .seed = 1});
//   auto result = runner.run([&](uint64_t seed) {
//     SteaneRecovery rec(noise, policy, seed);
//     rec.run_cycle();
//     return rec.any_logical_error();   // bool or event bitmask
//   });
//
// The two-callable overload adds the word-parallel path: when the plan says
// kBatch, `block(seed, shots_in_block)` must process a whole block and
// return either a failure count (integral) or per-event counts
// (std::array<uint64_t, kMaxEvents>).
class ShotRunner {
 public:
  explicit ShotRunner(const ShotPlan& plan) : plan_(plan) {}

  [[nodiscard]] const ShotPlan& plan() const { return plan_; }

  template <typename ShotFn>
  ShotResult run(ShotFn&& shot) const {
    FTQC_CHECK(plan_.engine != ShotEngine::kBatch,
               "batch engine needs the (shot, block) overload");
    return run_serial(std::forward<ShotFn>(shot));
  }

  template <typename ShotFn, typename BlockFn>
  ShotResult run(ShotFn&& shot, BlockFn&& block) const {
    if (plan_.engine == ShotEngine::kBatch) {
      return run_blocks(std::forward<BlockFn>(block));
    }
    return run_serial(std::forward<ShotFn>(shot));
  }

  // Runs shots [first_shot, first_shot + num_shots) of the plan's seed
  // sequence, ignoring plan.shots. Sequential samplers (the rare-event
  // budget router grants chunks one at a time) use this so the estimate is
  // identical no matter how the total was split into chunks: shot i always
  // sees seed_for(i).
  template <typename ShotFn>
  ShotResult run_range(size_t first_shot, size_t num_shots,
                       ShotFn&& shot) const {
    ShotResult result;
    result.trials = num_shots;
    const auto start = Clock::now();
    uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    const int64_t shots = static_cast<int64_t>(num_shots);
    const bool par = plan_.parallel;
    (void)par;
    // clang-format off
    FTQC_OMP_PRAGMA("omp parallel for schedule(static) reduction(+:c0,c1,c2,c3) if(par)")
    // clang-format on
    for (int64_t s = 0; s < shots; ++s) {
      const uint32_t mask = static_cast<uint32_t>(
          shot(seed_for(first_shot + static_cast<size_t>(s))));
      c0 += mask & 1u;
      c1 += (mask >> 1) & 1u;
      c2 += (mask >> 2) & 1u;
      c3 += (mask >> 3) & 1u;
    }
    result.counts = {c0, c1, c2, c3};
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  }

  // Batch-engine range: whole blocks anchored at absolute shot indices, so
  // block k of a range starting at first_shot covers
  // [first_shot + k*block_shots, ...) and seeds from that first index.
  // Chunk-boundary independence holds when chunks are multiples of
  // block_shots (the rare-event samplers size their chunks that way).
  template <typename BlockFn>
  ShotResult run_range_blocks(size_t first_shot, size_t num_shots,
                              BlockFn&& block) const {
    const size_t block_shots = plan_.block_shots > 0 ? plan_.block_shots : 4096;
    const size_t num_blocks = (num_shots + block_shots - 1) / block_shots;
    ShotResult result;
    const auto start = Clock::now();
    uint64_t trials = 0, c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    const int64_t blocks = static_cast<int64_t>(num_blocks);
    const bool par = plan_.parallel;
    (void)par;
    // clang-format off
    FTQC_OMP_PRAGMA("omp parallel for schedule(dynamic) reduction(+:trials,c0,c1,c2,c3) if(par)")
    // clang-format on
    for (int64_t b = 0; b < blocks; ++b) {
      const size_t offset = static_cast<size_t>(b) * block_shots;
      const size_t n = std::min(block_shots, num_shots - offset);
      const auto counts = block(seed_for(first_shot + offset), n);
      if constexpr (std::is_integral_v<std::decay_t<decltype(counts)>>) {
        c0 += static_cast<uint64_t>(counts);
      } else {
        c0 += counts[0];
        c1 += counts[1];
        c2 += counts[2];
        c3 += counts[3];
      }
      trials += n;
    }
    result.counts = {c0, c1, c2, c3};
    result.trials = trials;
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  }

 private:
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] uint64_t seed_for(size_t shot_index) const {
    return plan_.seed + plan_.seed_stride * static_cast<uint64_t>(shot_index);
  }

  template <typename ShotFn>
  ShotResult run_serial(ShotFn&& shot) const {
    ShotResult result;
    result.trials = plan_.shots;
    const auto start = Clock::now();
    uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    const int64_t shots = static_cast<int64_t>(plan_.shots);
    const bool par = plan_.parallel;
    (void)par;
    // clang-format off
    FTQC_OMP_PRAGMA("omp parallel for schedule(static) reduction(+:c0,c1,c2,c3) if(par)")
    // clang-format on
    for (int64_t s = 0; s < shots; ++s) {
      const uint32_t mask =
          static_cast<uint32_t>(shot(seed_for(static_cast<size_t>(s))));
      c0 += mask & 1u;
      c1 += (mask >> 1) & 1u;
      c2 += (mask >> 2) & 1u;
      c3 += (mask >> 3) & 1u;
    }
    result.counts = {c0, c1, c2, c3};
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  }

  template <typename BlockFn>
  ShotResult run_blocks(BlockFn&& block) const {
    const size_t block_shots = plan_.block_shots > 0 ? plan_.block_shots : 4096;
    const size_t num_blocks = (plan_.shots + block_shots - 1) / block_shots;
    ShotResult result;
    const auto start = Clock::now();
    uint64_t trials = 0, c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    const int64_t blocks = static_cast<int64_t>(num_blocks);
    const bool par = plan_.parallel;
    (void)par;
    // clang-format off
    FTQC_OMP_PRAGMA("omp parallel for schedule(dynamic) reduction(+:trials,c0,c1,c2,c3) if(par)")
    // clang-format on
    for (int64_t b = 0; b < blocks; ++b) {
      const size_t first = static_cast<size_t>(b) * block_shots;
      const size_t n = std::min(block_shots, plan_.shots - first);
      const auto counts = block(seed_for(first), n);
      if constexpr (std::is_integral_v<std::decay_t<decltype(counts)>>) {
        c0 += static_cast<uint64_t>(counts);
      } else {
        c0 += counts[0];
        c1 += counts[1];
        c2 += counts[2];
        c3 += counts[3];
      }
      // The batch engine rounds block sizes up to whole 64-lane words; the
      // block callable reports failures among the first n lanes only.
      trials += n;
    }
    result.counts = {c0, c1, c2, c3};
    result.trials = trials;
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  }

  ShotPlan plan_;
};

}  // namespace ftqc::sim
