// Micro-benchmark for the BatchFrameSim hot paths, broken down per kernel
// class so the rolling-baseline trend step can tell WHICH layer regressed:
//   fill    — the geometric-skip RNG hit-word fill (fill_hit_words), the
//             stochastic channels' dominant cost at physical error rates;
//   laneop  — the streaming SIMD word kernels (simd::xor_into) that move
//             frames around once the hit words exist;
//   decode  — the bit-sliced Hamming [7,4,3] decode (batch_decode_rows);
//   channel — the assembled stochastic channels at typical error rates;
//   cycle   — the full bit-parallel Fig. 9 recovery those kernels feed.
// Also reports the active SIMD dispatch level (simd_level / simd_width) and
// the measured laneop speedup of that level over the forced-scalar path
// (simd_speedup) — the dispatch is bit-exact, so this is pure throughput.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_harness.h"
#include "common/table.h"
#include "ft/batch_recovery.h"
#include "gf2/hamming.h"
#include "sim/batch_frame_sim.h"
#include "sim/noise_model.h"
#include "sim/simd.h"

namespace {

using namespace ftqc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Streams dst ^= src over `words`-word rows `reps` times and returns
// lane-ops/sec (64 * words * reps / wall). The xor kernel stands in for the
// whole streaming family (xor2/blend/and_eq/...): they share the one
// vector-extension stamp, so one measurement tracks them all.
double laneop_rate(uint64_t* dst, const uint64_t* src, size_t words,
                   size_t reps) {
  const auto start = Clock::now();
  for (size_t r = 0; r < reps; ++r) sim::simd::xor_into(dst, src, words);
  return 64.0 * static_cast<double>(words) * static_cast<double>(reps) /
         seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "BATCHSIM");
  const sim::simd::Level level = sim::simd::active_level();
  std::printf(
      "BATCHSIM: BatchFrameSim kernel breakdown + bit-parallel recovery\n"
      "cycle. Kernel rows are lane-ops/sec; channel rows are\n"
      "lane-applications/sec (qubits x shots x reps / wall clock) at the\n"
      "library's typical error rates. [simd: %s, %zu-bit]\n\n",
      sim::simd::level_name(level), sim::simd::width_bits(level));

  constexpr size_t kQubits = 32;
  const size_t shots = ftqc::bench::scaled(1 << 18, 1 << 13);
  const size_t reps = ftqc::bench::scaled(64, 8);
  sim::BatchFrameSim sim(kQubits, shots, /*seed=*/12345);
  const size_t words = sim.num_words();
  const double lanes =
      static_cast<double>(sim.num_shots()) * kQubits * static_cast<double>(reps);

  ftqc::bench::JsonResult json;
  json.add_string("simd_level", sim::simd::level_name(level));
  json.add("simd_width", sim::simd::width_bits(level));
  ftqc::Table table({"kernel", "p", "lanes/sec"});

  // --- fill: the RNG hit-word fill alone (no frame updates) ----------------
  {
    const double p = 1e-3;
    const size_t fill_reps = reps * kQubits;  // same draw volume as a channel
    const auto start = Clock::now();
    for (size_t r = 0; r < fill_reps; ++r) (void)sim.fill_hit_words(p);
    const double rate = lanes / seconds_since(start);
    table.add_row({"fill", "1e-03", ftqc::strfmt("%.3g", rate)});
    json.add("fill_lanes_per_sec", rate);
  }

  // --- laneop: the streaming word kernels, at the active and the scalar
  // dispatch level. The frame rows of real gadgets are a few words long, so
  // measure at the sim's own row width (cache-hot), many rows deep.
  {
    std::vector<uint64_t> dst(words, 0x5555555555555555ull);
    std::vector<uint64_t> src(words, 0x0123456789abcdefull);
    const size_t op_reps = reps * kQubits * 64;
    const double active_rate = laneop_rate(dst.data(), src.data(), words, op_reps);
    sim::simd::set_level(sim::simd::Level::kScalar);
    const double scalar_rate = laneop_rate(dst.data(), src.data(), words, op_reps);
    sim::simd::set_level(level);
    table.add_row({"laneop", "-", ftqc::strfmt("%.3g", active_rate)});
    json.add("laneop_lanes_per_sec", active_rate);
    const double speedup = scalar_rate > 0 ? active_rate / scalar_rate : 0.0;
    std::printf("laneop simd speedup: %.2fx (%s vs scalar)\n\n", speedup,
                sim::simd::level_name(level));
    json.add("simd_speedup", speedup);
  }

  // --- decode: bit-sliced Hamming [7,4,3] over 7 frame rows ----------------
  {
    const gf2::Hamming743 hamming;
    std::vector<uint64_t> row_data(7 * words);
    const uint64_t* rows[7];
    for (size_t j = 0; j < 7; ++j) {
      for (size_t w = 0; w < words; ++w) {
        row_data[j * words + w] = 0x9e3779b97f4a7c15ull * (j * words + w + 1);
      }
      rows[j] = &row_data[j * words];
    }
    std::vector<uint64_t> out(words);
    const size_t decode_reps = reps * kQubits;
    const auto start = Clock::now();
    for (size_t r = 0; r < decode_reps; ++r) {
      ft::batch_decode_rows(hamming, rows, /*logical=*/true, out.data(), words);
    }
    const double rate = 64.0 * static_cast<double>(words) *
                        static_cast<double>(decode_reps) /
                        seconds_since(start);
    table.add_row({"decode", "-", ftqc::strfmt("%.3g", rate)});
    json.add("decode_lanes_per_sec", rate);
  }

  // --- channels: the assembled stochastic paths ----------------------------
  const auto bench_channel = [&](const char* name, double p, auto&& apply) {
    const auto start = Clock::now();
    for (size_t r = 0; r < reps; ++r) {
      for (size_t q = 0; q < kQubits; ++q) apply(q, p);
    }
    const double rate = lanes / seconds_since(start);
    table.add_row({name, ftqc::strfmt("%.0e", p), ftqc::strfmt("%.3g", rate)});
    json.add(std::string(name) + "_lanes_per_sec", rate);
  };
  bench_channel("depolarize1", 1e-3,
                [&](size_t q, double p) { sim.depolarize1(q, p); });
  bench_channel("x_error", 1e-3,
                [&](size_t q, double p) { sim.x_error(q, p); });
  bench_channel("depolarize2", 1e-3, [&](size_t q, double p) {
    sim.depolarize2(q, (q + 1) % kQubits, p);
  });
  // A denser regime (storage-noise scale sweeps) to catch regressions in
  // the per-hit-lane flavor picking, not just the skip stream.
  bench_channel("depolarize1_dense", 2e-2,
                [&](size_t q, double p) { sim.depolarize1(q, p); });
  table.print();

  // End-to-end: the full bit-parallel recovery cycle these kernels feed.
  const size_t cycle_shots = ftqc::bench::scaled(1 << 16, 1 << 10);
  const auto noise = sim::NoiseParams::uniform_gate(1e-3);
  const auto start = Clock::now();
  ft::BatchSteaneRecovery rec(noise, ft::RecoveryPolicy{}, cycle_shots,
                              /*seed=*/7);
  rec.run_cycle();
  const double cycle_sps =
      static_cast<double>(rec.num_shots()) / seconds_since(start);
  (void)rec.count_any_logical_error();
  std::printf("\nBatchSteaneRecovery cycle: %.3g shots/sec (%zu shots)\n",
              cycle_sps, rec.num_shots());
  json.add("cycle_shots_per_sec", cycle_sps);
  json.write();
  return 0;
}
