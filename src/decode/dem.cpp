#include "decode/dem.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace ftqc::decode {
namespace {

// Enumeration depth: three rounds, with single faults armed only inside the
// middle one, give the translation-invariant bulk detector classes (round 0
// absorbs "error already present", round 2 catches delayed detections).
constexpr size_t kDemRounds = 3;

uint32_t ancilla_of(const topo::ToricCode& code, size_t site) {
  return static_cast<uint32_t>(code.num_qubits() + site);
}

}  // namespace

void run_extraction_round(sim::FrameSim& sim, ft::NoiseInjector& injector,
                          const topo::ToricCode& code, ToricSide side,
                          gf2::BitVec& measured_flips) {
  const size_t l = code.lattice();
  const size_t sites = l * l;
  FTQC_CHECK(sim.num_qubits() == code.num_qubits() + sites,
             "extraction circuit needs one ancilla per check");
  if (measured_flips.size() != sites) measured_flips.resize(sites);

  const bool plaquette = side == ToricSide::kPlaquette;
  for (size_t s = 0; s < sites; ++s) {
    const uint32_t anc = ancilla_of(code, s);
    sim.reset(anc);
    injector.on_prep(sim, anc);
  }
  if (!plaquette) {
    for (size_t s = 0; s < sites; ++s) {
      const uint32_t anc = ancilla_of(code, s);
      sim.apply_h(anc);
      injector.on_gate1(sim, anc);
    }
  }
  // Four CNOT layers; within a layer every check touches a distinct data
  // qubit (each edge borders exactly one plaquette per compass direction),
  // so a layer is one parallel time step.
  for (int layer = 0; layer < 4; ++layer) {
    for (size_t y = 0; y < l; ++y) {
      for (size_t x = 0; x < l; ++x) {
        uint32_t data = 0;
        if (plaquette) {
          switch (layer) {
            case 0: data = code.h_edge(x, y); break;      // north
            case 1: data = code.v_edge(x, y); break;      // west
            case 2: data = code.v_edge(x + 1, y); break;  // east
            default: data = code.h_edge(x, y + 1); break; // south
          }
        } else {
          switch (layer) {
            case 0: data = code.h_edge(x, y); break;
            case 1: data = code.v_edge(x, y); break;
            case 2: data = code.v_edge(x, y + l - 1); break;
            default: data = code.h_edge(x + l - 1, y); break;
          }
        }
        const uint32_t anc = ancilla_of(code, y * l + x);
        if (plaquette) {
          sim.apply_cx(data, anc);
          injector.on_gate2(sim, data, anc);
        } else {
          sim.apply_cx(anc, data);
          injector.on_gate2(sim, anc, data);
        }
      }
    }
  }
  if (!plaquette) {
    for (size_t s = 0; s < sites; ++s) {
      const uint32_t anc = ancilla_of(code, s);
      sim.apply_h(anc);
      injector.on_gate1(sim, anc);
    }
  }
  // Resting data qubits take one storage step per round.
  for (uint32_t q = 0; q < code.num_qubits(); ++q) {
    injector.on_storage(sim, q);
  }
  for (size_t s = 0; s < sites; ++s) {
    const uint32_t anc = ancilla_of(code, s);
    injector.on_meas(sim, anc, false);
    measured_flips.set(s, sim.measure_z(anc));
  }
}

ToricDem ToricDem::build(const topo::ToricCode& code, ToricSide side) {
  return build(code, side, sim::NoiseParams{});
}

ToricDem ToricDem::build(const topo::ToricCode& code, ToricSide side,
                         const sim::NoiseParams& params) {
  const size_t sites = code.num_plaquettes();
  const bool plaquette = side == ToricSide::kPlaquette;

  // Recording pass: learn the location count and the middle round's window.
  ft::FaultPointInjector recorder;
  {
    sim::FrameSim sim(code.num_qubits() + sites, /*seed=*/1);
    gf2::BitVec m(sites);
    for (size_t t = 0; t < kDemRounds; ++t) {
      recorder.on_marker(t == 1 ? "dem:bulk" : "dem:edge");
      run_extraction_round(sim, recorder, code, side, m);
    }
  }
  const auto [win_lo, win_hi] = recorder.marker_window("dem:bulk", "dem:edge");

  ToricDem dem;
  dem.sites_ = sites;
  dem.counts_.locations = win_hi - win_lo;

  // Replay every (location, variant) in the bulk window and read off which
  // detectors fire. Detector d_t = m_t ^ m_{t-1}; the last detector row
  // compares against the trusted syndrome of the residual data frame.
  std::vector<gf2::BitVec> m(kDemRounds, gf2::BitVec(sites));
  gf2::BitVec data_frame(code.num_qubits());
  gf2::BitVec trusted(sites);
  std::vector<std::pair<uint32_t, uint32_t>> fired;  // (site, detector round)
  for (size_t loc = win_lo; loc < win_hi; ++loc) {
    const ft::LocationKind kind = recorder.kinds()[loc];
    const int variants = ft::location_variants(kind);
    for (int v = 0; v < variants; ++v) {
      ft::FaultPointInjector inj({{loc, v}}, /*record_kinds=*/false);
      sim::FrameSim sim(code.num_qubits() + sites, /*seed=*/1);
      for (size_t t = 0; t < kDemRounds; ++t) {
        run_extraction_round(sim, inj, code, side, m[t]);
      }
      for (uint32_t q = 0; q < code.num_qubits(); ++q) {
        data_frame.set(q, plaquette ? sim.x_frame().get(q)
                                    : sim.z_frame().get(q));
      }
      if (plaquette) {
        code.plaquette_syndrome_into(data_frame, trusted);
      } else {
        code.star_syndrome_into(data_frame, trusted);
      }

      fired.clear();
      for (size_t s = 0; s < sites; ++s) {
        bool prev = false;
        for (size_t t = 0; t < kDemRounds; ++t) {
          if (m[t].get(s) != prev) {
            fired.push_back({static_cast<uint32_t>(s),
                             static_cast<uint32_t>(t)});
          }
          prev = m[t].get(s);
        }
        if (trusted.get(s) != prev) {
          fired.push_back({static_cast<uint32_t>(s),
                           static_cast<uint32_t>(kDemRounds)});
        }
      }
      FTQC_CHECK(fired.size() % 2 == 0,
                 "single faults fire detectors in pairs on a torus");
      if (fired.empty()) continue;

      // Decompose the fired set into pairs (min total displacement over the
      // three pairings of four; greedy beyond that) and classify each.
      const auto displacement = [&](size_t a, size_t b) {
        const size_t ds =
            code.torus_site_distance(fired[a].first, fired[b].first);
        const size_t dt = fired[a].second > fired[b].second
                              ? fired[a].second - fired[b].second
                              : fired[b].second - fired[a].second;
        return std::pair<size_t, size_t>{ds, dt};
      };
      const double w =
          params.is_biased()
              ? ft::biased_variant_weight(kind, v, params.frac_x(),
                                          params.frac_y(), params.frac_z())
              : ft::variant_weight(kind);
      const auto classify = [&](size_t a, size_t b) {
        const auto [ds, dt] = displacement(a, b);
        if (ds == 0 && dt == 1) {
          dem.counts_.time += w;
        } else if (ds == 1 && dt == 0) {
          dem.counts_.space += w;
        } else if (ds == 1 && dt == 1) {
          dem.counts_.diag += w;
        } else {
          dem.counts_.far += w;
        }
      };
      std::vector<size_t> order(fired.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      while (order.size() > 2) {
        // Pair the first remaining detector with its nearest partner.
        size_t best = 1;
        size_t best_d = SIZE_MAX;
        for (size_t i = 1; i < order.size(); ++i) {
          const auto [ds, dt] = displacement(order[0], order[i]);
          if (ds + dt < best_d) {
            best_d = ds + dt;
            best = i;
          }
        }
        classify(order[0], order[best]);
        order.erase(order.begin() + static_cast<ptrdiff_t>(best));
        order.erase(order.begin());
      }
      classify(order[0], order[1]);
    }
  }
  return dem;
}

double ToricDem::p_space(double eps) const {
  // 2·L² spatial edges per round (each site borders four, shared two ways);
  // hook mass counts toward both classes.
  return eps * (counts_.space + counts_.diag) /
         (2.0 * static_cast<double>(sites_));
}

double ToricDem::p_time(double eps) const {
  return eps * (counts_.time + counts_.diag) / static_cast<double>(sites_);
}

SpacetimeOptions ToricDem::weights_at(double eps, double scale) const {
  FTQC_CHECK(eps > 0 && eps < 1, "physical fault rate must be in (0, 1)");
  const double ps = std::min(0.5, p_space(eps));
  const double pt = std::min(0.5, p_time(eps));
  FTQC_CHECK(ps > 0 && pt > 0,
             "detector error model has an empty edge class");
  SpacetimeOptions options;
  options.space_weight = static_cast<size_t>(
      std::max<long long>(1, std::llround(-std::log(ps) * scale)));
  options.time_weight = static_cast<size_t>(
      std::max<long long>(1, std::llround(-std::log(pt) * scale)));
  return options;
}

PhenomenologicalResult run_circuit_memory(const SpacetimeToricDecoder& decoder,
                                          double eps, size_t rounds,
                                          uint64_t seed,
                                          PhenomenologicalScratch* scratch) {
  return run_circuit_memory(decoder,
                            sim::NoiseParams::uniform_gate(eps, /*eps_store=*/eps),
                            rounds, seed, scratch);
}

PhenomenologicalResult run_circuit_memory(const SpacetimeToricDecoder& decoder,
                                          const sim::NoiseParams& params,
                                          size_t rounds, uint64_t seed,
                                          PhenomenologicalScratch* scratch) {
  const topo::ToricCode& code = decoder.code();
  const bool plaquette = decoder.side() == ToricSide::kPlaquette;
  const size_t sites = code.num_plaquettes();

  PhenomenologicalScratch local;
  PhenomenologicalScratch& s = scratch != nullptr ? *scratch : local;
  s.syndromes.resize(rounds + 1);
  if (s.errors.size() != code.num_qubits()) s.errors.resize(code.num_qubits());

  sim::FrameSim sim(code.num_qubits() + sites, seed);
  ft::StochasticInjector injector(params);
  for (size_t t = 0; t < rounds; ++t) {
    run_extraction_round(sim, injector, code, decoder.side(), s.syndromes[t]);
  }
  // Trusted closing round: the residual data frame read without noise.
  for (uint32_t q = 0; q < code.num_qubits(); ++q) {
    s.errors.set(q, plaquette ? sim.x_frame().get(q) : sim.z_frame().get(q));
  }
  if (plaquette) {
    code.plaquette_syndrome_into(s.errors, s.syndromes[rounds]);
  } else {
    code.star_syndrome_into(s.errors, s.syndromes[rounds]);
  }

  PhenomenologicalResult result;
  s.errors ^= decoder.decode(s.syndromes);  // errors becomes the residual
  if (plaquette) {
    code.plaquette_syndrome_into(s.errors, s.check);
  } else {
    code.star_syndrome_into(s.errors, s.check);
  }
  result.cleared = !s.check.any();
  const auto [f1, f2] = plaquette ? code.logical_x_flips(s.errors)
                                  : code.logical_z_flips(s.errors);
  result.logical_fail = f1 || f2;
  return result;
}

}  // namespace ftqc::decode
