#include "gf2/linalg.h"

namespace ftqc::gf2 {

Echelon rref(BitMat m) {
  Echelon e;
  const size_t rows = m.rows();
  const size_t cols = m.cols();
  size_t pivot_row = 0;
  for (size_t col = 0; col < cols && pivot_row < rows; ++col) {
    size_t found = rows;
    for (size_t r = pivot_row; r < rows; ++r) {
      if (m.get(r, col)) {
        found = r;
        break;
      }
    }
    if (found == rows) continue;
    m.swap_rows(pivot_row, found);
    for (size_t r = 0; r < rows; ++r) {
      if (r != pivot_row && m.get(r, col)) m.xor_row_into(pivot_row, r);
    }
    e.pivot_cols.push_back(col);
    ++pivot_row;
  }
  e.rank = pivot_row;
  e.mat = std::move(m);
  return e;
}

size_t rank(const BitMat& m) { return rref(m).rank; }

std::optional<BitVec> solve(const BitMat& m, const BitVec& b) {
  FTQC_CHECK(b.size() == m.rows(), "solve: rhs dimension mismatch");
  // Eliminate on the augmented matrix [M | b].
  BitMat rhs(m.rows(), 1);
  for (size_t r = 0; r < m.rows(); ++r) rhs.set(r, 0, b.get(r));
  Echelon e = rref(BitMat::hconcat(m, rhs));

  const size_t n = m.cols();
  BitVec x(n);
  for (size_t r = 0; r < e.rank; ++r) {
    const size_t pivot = e.pivot_cols[r];
    if (pivot == n) return std::nullopt;  // pivot in the augmented column: inconsistent
    x.set(pivot, e.mat.get(r, n));
  }
  return x;
}

std::vector<BitVec> kernel_basis(const BitMat& m) {
  Echelon e = rref(m);
  const size_t n = m.cols();
  std::vector<bool> is_pivot(n, false);
  for (size_t p : e.pivot_cols) is_pivot[p] = true;

  std::vector<BitVec> basis;
  for (size_t free_col = 0; free_col < n; ++free_col) {
    if (is_pivot[free_col]) continue;
    BitVec v(n);
    v.set(free_col, true);
    for (size_t r = 0; r < e.rank; ++r) {
      if (e.mat.get(r, free_col)) v.set(e.pivot_cols[r], true);
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

bool in_row_space(const BitMat& m, const BitVec& v) {
  FTQC_CHECK(v.size() == m.cols(), "in_row_space: dimension mismatch");
  // v is in rowspace(M) iff rank([M; v]) == rank(M).
  BitMat stacked(m.rows() + 1, m.cols());
  for (size_t r = 0; r < m.rows(); ++r) stacked.row(r) = m.row(r);
  stacked.row(m.rows()) = v;
  return rank(stacked) == rank(m);
}

}  // namespace ftqc::gf2
