#pragma once

#include "sim/circuit.h"

namespace ftqc::sim {

// The stochastic error model of §6, as knobs:
//  * eps_store  — per qubit, per time step (TICK), equal X/Y/Z: applied to
//                 every qubit that rested during the step ("storage errors
//                 that afflict the resting qubits").
//  * eps_gate1  — after each 1-qubit gate, equal X/Y/Z on its target.
//  * eps_gate2  — after each 2-qubit gate, a uniform non-identity 2-qubit
//                 Pauli on its targets (the pessimistic "a faulty XOR gate
//                 introduces errors in both the source and the target").
//  * eps_meas   — measurement-outcome flip (X before M, Z before MX).
//  * eps_prep   — faulty |0> preparation (X after R / MR).
//  * p_leak     — per-gate leakage out of the computational space (§6).
//
// Errors are spatially and temporally uncorrelated, matching the paper's
// "uncorrelated errors" assumption.
struct NoiseParams {
  double eps_store = 0.0;
  double eps_gate1 = 0.0;
  double eps_gate2 = 0.0;
  double eps_meas = 0.0;
  double eps_prep = 0.0;
  double p_leak = 0.0;

  // The single-knob model used for the threshold estimates (Eq. 34/35):
  // every gate-type error probability set to eps_gate, storage separate.
  [[nodiscard]] static NoiseParams uniform_gate(double eps_gate,
                                                double eps_store = 0.0) {
    NoiseParams p;
    p.eps_gate1 = eps_gate;
    p.eps_gate2 = eps_gate;
    p.eps_meas = eps_gate;
    p.eps_prep = eps_gate;
    p.eps_store = eps_store;
    return p;
  }

  // Measurement-error-only model: every gate, preparation and storage step
  // is perfect and only the readout flips. Isolates the §3.4 question of how
  // much syndrome repetition buys when the syndrome itself is the unreliable
  // ingredient (bench E04).
  [[nodiscard]] static NoiseParams measurement_only(double eps_meas) {
    NoiseParams p;
    p.eps_meas = eps_meas;
    return p;
  }

  [[nodiscard]] bool is_noiseless() const {
    return eps_store == 0 && eps_gate1 == 0 && eps_gate2 == 0 &&
           eps_meas == 0 && eps_prep == 0 && p_leak == 0;
  }
};

// Compiles an ideal circuit into a noisy one by inserting channel ops:
// gate noise directly after each unitary, measurement/preparation noise
// around M/R, and storage noise on the qubits that idled in each TICK layer.
[[nodiscard]] Circuit add_noise(const Circuit& ideal, const NoiseParams& params);

// Number of fault locations the model exposes in a circuit (used by the
// fault enumerator and by the analytic coefficient counting in E6).
[[nodiscard]] size_t count_fault_locations(const Circuit& noisy);

}  // namespace ftqc::sim
