// The common module is header-only; this translation unit exists so the
// static library target has at least one object file.
#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace ftqc {
namespace {
[[maybe_unused]] constexpr int kCommonModuleAnchor = 0;
}  // namespace
}  // namespace ftqc
