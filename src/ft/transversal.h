#pragma once

#include <span>

#include "sim/circuit.h"

namespace ftqc::ft {

// Transversal / bitwise implementations of the fault-tolerant gate set of
// §4.1 for the Steane code. Each builder emits the gates for one encoded
// operation; because every physical gate touches one qubit per block (or one
// pair across two blocks), a single fault produces at most one error per
// block — the defining fault-tolerance property (tested in ft_gates_test).

// Bitwise NOT: implements the encoded X (every odd Hamming codeword is the
// complement of an even one).
[[nodiscard]] sim::Circuit logical_x_bitwise(std::span<const uint32_t> block);
// Minimal 3-gate variant on the logical-X support (§4.1 footnote f).
[[nodiscard]] sim::Circuit logical_x_minimal(std::span<const uint32_t> block);

// Bitwise Z.
[[nodiscard]] sim::Circuit logical_z_bitwise(std::span<const uint32_t> block);

// Bitwise Hadamard: the encoded R (Eq. 11).
[[nodiscard]] sim::Circuit logical_h_bitwise(std::span<const uint32_t> block);

// Encoded phase gate P (Eq. 22): bitwise P^{-1} = S_DAG, because odd
// codewords have weight ≡ 3 (mod 4).
[[nodiscard]] sim::Circuit logical_s_bitwise(std::span<const uint32_t> block);

// Encoded XOR between two blocks (Fig. 11).
[[nodiscard]] sim::Circuit logical_cx_transversal(
    std::span<const uint32_t> source, std::span<const uint32_t> target);

// Transversal T for the [[15,1,3]] Reed-Muller code: physical T† on every
// block qubit enacts the LOGICAL T, because |1̄⟩ components have weight
// ≡ 7 (mod 8) while |0̄⟩ components have weight ≡ 0 (mod 8), so the product
// of per-qubit e^{-iπ/4} phases is e^{-i7π/4} = e^{+iπ/4} on |1̄⟩ only.
// `dagger` swaps the direction (physical T = logical T†). Emitted as RZ
// rotations — statevector-only; the Monte Carlo pipeline tracks T through
// the twirled-error model instead (see universal/magic_pipeline.h). Frame
// tracking through T uses the conjugation rule T·X = e^{iπ/4}·S·X·T: an X
// frame bit crossing a T gate leaves an S byproduct, which is why the
// injection gadget measures and corrects BEFORE the transversal T layer.
[[nodiscard]] sim::Circuit logical_t_transversal(std::span<const uint32_t> block,
                                                 bool dagger = false);

}  // namespace ftqc::ft
