// E5 (§3 Fig. 9, §5): full fault-tolerant recovery cycle, Steane method vs
// Shor method, under the uniform gate-error model. Reports the logical
// failure per cycle, the fitted quadratic coefficient c (failure ≈ c eps²),
// and the level-1 pseudothreshold 1/c. Also compares storage-error
// sensitivity: §5 claims the Steane method is better optimized for storage
// errors because "a gate acts on each qubit in almost every step".
#include <cstdio>

#include "bench_harness.h"
#include "common/table.h"
#include "threshold/pseudothreshold.h"

namespace {
using namespace ftqc;
using namespace ftqc::threshold;
}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E05");
  std::printf(
      "E5: logical failure per FT recovery cycle (Fig. 9), Steane vs Shor\n"
      "syndrome extraction, uniform gate error model of §6.\n\n");
  const std::vector<double> eps_values = {0.008, 0.004, 0.002, 0.001};
  const size_t shots = ftqc::bench::scaled(60000, 400);

  ftqc::Table table({"eps", "Steane: P(logical)", "Steane/eps^2",
                     "Shor: P(logical)", "Shor/eps^2"});
  auto steane = sweep_cycle_failure(RecoveryMethod::kSteane, eps_values, shots, 1);
  auto shor = sweep_cycle_failure(RecoveryMethod::kShor, eps_values, shots, 2);
  for (size_t i = 0; i < eps_values.size(); ++i) {
    const double e = eps_values[i];
    table.add_row({ftqc::strfmt("%.3g", e),
                   ftqc::strfmt("%.3e", steane[i].failures.mean()),
                   ftqc::strfmt("%.1f", steane[i].failures.mean() / (e * e)),
                   ftqc::strfmt("%.3e", shor[i].failures.mean()),
                   ftqc::strfmt("%.1f", shor[i].failures.mean() / (e * e))});
  }
  table.print();

  const double c_steane = fit_quadratic_coefficient(steane);
  const double c_shor = fit_quadratic_coefficient(shor);
  std::printf(
      "\nQuadratic fit: Steane c = %.0f (pseudothreshold 1/c = %.2e)\n"
      "               Shor   c = %.0f (pseudothreshold 1/c = %.2e)\n",
      c_steane, 1 / c_steane, c_shor, 1 / c_shor);

  ftqc::bench::JsonResult json;
  json.add("shots", shots);
  json.add("steane_quadratic_coeff", c_steane);
  json.add("shor_quadratic_coeff", c_shor);
  json.add("steane_pseudothreshold", 1 / c_steane);
  json.add("shor_pseudothreshold", 1 / c_shor);
  json.write();

  std::printf(
      "\nStorage-error sensitivity (gate error fixed at 1e-3):\n");
  ftqc::Table storage({"eps_store", "Steane: P(logical)", "Shor: P(logical)"});
  for (const double es : {0.0, 1e-3, 2e-3}) {
    const auto st = measure_cycle_failure(RecoveryMethod::kSteane, 1e-3, shots,
                                          31, es);
    const auto sh = measure_cycle_failure(RecoveryMethod::kShor, 1e-3, shots,
                                          37, es);
    storage.add_row({ftqc::strfmt("%.3g", es),
                     ftqc::strfmt("%.3e", st.failures.mean()),
                     ftqc::strfmt("%.3e", sh.failures.mean())});
  }
  storage.print();
  std::printf(
      "\nShape check: both methods are O(eps^2) with pseudothresholds of a\n"
      "few 1e-4 to 1e-3 — the same order as the paper's ~6e-4 estimate\n"
      "(Eq. 34). In this implementation Shor's 4-bit cats give a smaller\n"
      "gate-error coefficient than Steane's two full encoded ancilla blocks\n"
      "per syndrome, while the Steane method is comparatively less hurt by\n"
      "storage noise — the §5 trade the paper describes (its qubits are\n"
      "\"rarely idle\").\n");
  return 0;
}
