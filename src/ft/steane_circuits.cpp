#include "ft/steane_circuits.h"

#include <algorithm>

#include "common/check.h"
#include "gf2/hamming.h"
#include "gf2/linalg.h"

namespace ftqc::ft {

using gf2::BitMat;
using gf2::BitVec;
using sim::Circuit;

namespace {

// Row-reduces `hx` so every row owns a pivot column outside `avoid`;
// returns the reduced rows. Each reduced row still spans the same space
// (they are the X-stabilizer supports used as superposition generators).
std::vector<BitVec> pivoted_rows(const BitMat& hx,
                                 std::span<const uint32_t> avoid,
                                 std::vector<size_t>* pivots_out) {
  std::vector<BitVec> rows;
  for (size_t r = 0; r < hx.rows(); ++r) rows.push_back(hx.row(r));
  std::vector<bool> avoided(hx.cols(), false);
  for (uint32_t a : avoid) avoided[a] = true;

  std::vector<size_t> pivots;
  size_t next_row = 0;
  for (size_t col = 0; col < hx.cols() && next_row < rows.size(); ++col) {
    if (avoided[col]) continue;
    size_t found = rows.size();
    for (size_t r = next_row; r < rows.size(); ++r) {
      if (rows[r].get(col)) {
        found = r;
        break;
      }
    }
    if (found == rows.size()) continue;
    std::swap(rows[next_row], rows[found]);
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r != next_row && rows[r].get(col)) rows[r] ^= rows[next_row];
    }
    pivots.push_back(col);
    ++next_row;
  }
  FTQC_CHECK(next_row == rows.size(),
             "hx rows not independent outside the avoided columns");
  if (pivots_out != nullptr) *pivots_out = pivots;
  return rows;
}

// Greedy ASAP layering: each XOR lands in the earliest layer where both its
// qubits are free, honoring the §6 "maximal parallelism" assumption. Layers
// are emitted with TICK separators.
void emit_layered_cnots(Circuit& c,
                        const std::vector<std::pair<uint32_t, uint32_t>>& cnots) {
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> layers;
  std::vector<size_t> busy_until;  // per qubit: first free layer index
  const auto free_layer = [&busy_until](uint32_t q) {
    return q < busy_until.size() ? busy_until[q] : 0;
  };
  for (const auto& [a, b] : cnots) {
    const size_t layer = std::max(free_layer(a), free_layer(b));
    if (layer >= layers.size()) layers.resize(layer + 1);
    layers[layer].push_back({a, b});
    const uint32_t hi = std::max(a, b);
    if (hi >= busy_until.size()) busy_until.resize(hi + 1, 0);
    busy_until[a] = layer + 1;
    busy_until[b] = layer + 1;
  }
  for (const auto& layer : layers) {
    for (const auto& [a, b] : layer) c.cx(a, b);
    c.tick();
  }
}

}  // namespace

Circuit css_zero_prep(const BitMat& hx, std::span<const uint32_t> qubits,
                      std::span<const uint32_t> avoid) {
  FTQC_CHECK(qubits.size() == hx.cols(), "qubit count must match block length");
  std::vector<size_t> pivots;
  const auto rows = pivoted_rows(hx, avoid, &pivots);

  Circuit c;
  for (uint32_t q : qubits) c.r(q);
  c.tick();
  for (size_t r = 0; r < rows.size(); ++r) c.h(qubits[pivots[r]]);
  c.tick();
  std::vector<std::pair<uint32_t, uint32_t>> cnots;
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t col = 0; col < hx.cols(); ++col) {
      if (col != pivots[r] && rows[r].get(col)) {
        cnots.push_back({qubits[pivots[r]], qubits[col]});
      }
    }
  }
  emit_layered_cnots(c, cnots);
  return c;
}

Circuit steane_encoder(std::span<const uint32_t> qubits) {
  FTQC_CHECK(qubits.size() == 7, "Steane encoder needs seven qubits");
  const gf2::Hamming743 hamming;
  // Logical-X support {0,1,2}: 1110000 is an odd-weight Hamming codeword in
  // the Eq. (1) convention, so the two fan-out XORs prepare
  // a|0000000> + b|1110000>.
  Circuit c;
  for (size_t q = 1; q < 7; ++q) c.r(qubits[q]);
  c.tick();
  c.cx(qubits[0], qubits[1]);
  c.tick();
  c.cx(qubits[0], qubits[2]);
  c.tick();
  // Superpose the even subcode on top, pivoting away from {0,1,2}.
  const uint32_t avoid[3] = {0, 1, 2};
  std::vector<size_t> pivots;
  const auto rows = pivoted_rows(hamming.check_matrix(), avoid, &pivots);
  for (size_t r = 0; r < rows.size(); ++r) c.h(qubits[pivots[r]]);
  c.tick();
  std::vector<std::pair<uint32_t, uint32_t>> cnots;
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t col = 0; col < 7; ++col) {
      if (col != pivots[r] && rows[r].get(col)) {
        cnots.push_back({qubits[pivots[r]], qubits[col]});
      }
    }
  }
  emit_layered_cnots(c, cnots);
  return c;
}

Circuit steane_zero_prep(std::span<const uint32_t> qubits) {
  FTQC_CHECK(qubits.size() == 7, "Steane prep needs seven qubits");
  const gf2::Hamming743 hamming;
  return css_zero_prep(hamming.check_matrix(), qubits);
}

Circuit steane_plus_prep(std::span<const uint32_t> qubits) {
  Circuit c = steane_zero_prep(qubits);
  for (uint32_t q : qubits) c.h(q);
  c.tick();
  return c;
}

Circuit nonft_bitflip_syndrome(std::span<const uint32_t> data, uint32_t ancilla) {
  FTQC_CHECK(data.size() == 7, "Steane block has seven qubits");
  const gf2::Hamming743 hamming;
  Circuit c;
  for (size_t row = 0; row < 3; ++row) {
    c.r(ancilla);
    c.tick();
    for (size_t col = 0; col < 7; ++col) {
      if (hamming.check_matrix().get(row, col)) {
        c.cx(data[col], ancilla);  // one shared target: the Fig. 6 mistake
        c.tick();
      }
    }
    c.m(ancilla);
    c.tick();
  }
  return c;
}

Circuit shor_syndrome_bit(std::span<const uint32_t> data,
                          std::span<const uint32_t> ancilla,
                          const BitVec& support, bool x_type) {
  FTQC_CHECK(support.popcount() == ancilla.size(),
             "need one Shor-state bit per supported data qubit");
  Circuit c;
  size_t a = 0;
  for (size_t col = 0; col < support.size(); ++col) {
    if (!support.get(col)) continue;
    if (x_type) {
      // Cat-state ancilla as the XOR source (Fig. 7c): X-type eigenvalue.
      c.cx(ancilla[a], data[col]);
    } else {
      // Data as the source, Shor-state bits as targets (§3.2).
      c.cx(data[col], ancilla[a]);
    }
    c.tick();
    ++a;
  }
  if (x_type) {
    // Read the cat in the X basis.
    for (uint32_t q : ancilla) c.mx(q);
  } else {
    for (uint32_t q : ancilla) c.m(q);
  }
  c.tick();
  return c;
}

Circuit cat_prep_with_check(std::span<const uint32_t> cat, uint32_t check,
                            bool final_hadamards) {
  FTQC_CHECK(cat.size() >= 2, "cat state needs at least two qubits");
  Circuit c;
  for (uint32_t q : cat) c.r(q);
  c.r(check);
  c.tick();
  c.h(cat[0]);
  c.tick();
  for (size_t i = 0; i + 1 < cat.size(); ++i) {
    c.cx(cat[i], cat[i + 1]);
    c.tick();
  }
  // Verification: the troublesome single faults in the XOR chain leave the
  // first and last cat bits unequal (§3.3), so compare exactly those two.
  c.cx(cat.front(), check);
  c.tick();
  c.cx(cat.back(), check);
  c.tick();
  c.m(check);
  c.tick();
  if (final_hadamards) {
    for (uint32_t q : cat) c.h(q);
    c.tick();
  }
  return c;
}

Circuit transversal_cx(std::span<const uint32_t> source,
                       std::span<const uint32_t> target) {
  FTQC_CHECK(source.size() == target.size(), "block size mismatch");
  Circuit c;
  for (size_t i = 0; i < source.size(); ++i) c.cx(source[i], target[i]);
  c.tick();
  return c;
}

Circuit steane_syndrome_gadget(bool phase_type, std::span<const uint32_t> data,
                               std::span<const uint32_t> ancilla) {
  FTQC_CHECK(data.size() == 7 && ancilla.size() == 7,
             "Steane blocks have seven qubits");
  Circuit c;
  if (phase_type) {
    // Phase syndrome: |0>_code ancilla as XOR source, data as target; data Z
    // errors propagate backward onto the ancilla; read it in the X basis.
    for (size_t i = 0; i < 7; ++i) c.cx(ancilla[i], data[i]);
    c.tick();
    for (uint32_t q : ancilla) c.mx(q);
    c.tick();
  } else {
    // Bit-flip syndrome: rotate the verified |0>_code into the Steane state
    // (Eq. 17), XOR the data in, and measure in the Z basis.
    for (uint32_t q : ancilla) c.h(q);
    c.tick();
    for (size_t i = 0; i < 7; ++i) c.cx(data[i], ancilla[i]);
    c.tick();
    for (uint32_t q : ancilla) c.m(q);
    c.tick();
  }
  return c;
}

Circuit nondestructive_parity(std::span<const uint32_t> data, uint32_t ancilla) {
  FTQC_CHECK(data.size() == 7, "Steane block has seven qubits");
  Circuit c;
  c.r(ancilla);
  c.tick();
  // Z-logical support {0,1,2} (odd codeword 1110000 in the Eq. (1) basis).
  for (size_t q : {size_t{0}, size_t{1}, size_t{2}}) {
    c.cx(data[q], ancilla);
    c.tick();
  }
  c.m(ancilla);
  c.tick();
  return c;
}

Circuit destructive_measure(std::span<const uint32_t> data) {
  Circuit c;
  for (uint32_t q : data) c.m(q);
  c.tick();
  return c;
}

Circuit leak_detection(uint32_t data, uint32_t ancilla) {
  // Two data-controlled XORs bracketing a NOT on the data qubit: a healthy
  // qubit drives the ancilla to |1> regardless of its value, while a leaked
  // qubit leaves both XORs inert and the ancilla reads |0>.
  Circuit c;
  c.r(ancilla);
  c.tick();
  c.cx(data, ancilla);
  c.tick();
  c.x(data);
  c.tick();
  c.cx(data, ancilla);
  c.tick();
  c.x(data);
  c.tick();
  c.m(ancilla);
  c.tick();
  return c;
}

}  // namespace ftqc::ft
