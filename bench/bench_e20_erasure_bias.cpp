// E20: heralded-erasure and biased-noise channels on the toric memory.
//
// Two claims ride this bench:
//   1. Erasure ladder (code capacity): every data qubit is erased with
//      probability p_erase (herald bit recorded, frame replaced by a
//      uniformly random Pauli) on top of a small depolarizing floor. The
//      SAME shots are decoded twice — heralds withheld ("blind": each
//      erasure is an invisible 50/50 error) and heralds supplied ("aware":
//      Delfosse-Zémor peeling plus erasure-discounted matching). The
//      aware decoder's threshold should sit at roughly DOUBLE the blind
//      one: blind caps near 2 x the ~10.3% matching threshold, aware runs
//      toward the 50% bond-percolation limit.
//   2. Z-bias shift (circuit level): under a Z-heavy channel (eta = p_z /
//      p_x) the plaquette side sees fewer X components per fault, so the
//      DEM-weighted space-time matching threshold in TOTAL eps rises
//      against the unbiased build measured on the same machinery.
//
// Every (curve, L, p) cell is one sweep point on the work-stealing
// scheduler; under --checkpoint-dir each completed cell shards to
// BENCH_E20.<id>.json and a killed run resumes from the shards.
//
// Thresholds are fitted on a straddle window: the log-log extrapolation is
// restricted to the grid points around the first L-large/L-small ratio
// crossing of 1, so a reported non-extrapolated crossing really is
// bracketed by measured points instead of being dragged by the saturated
// tail of the ladder.
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "decode/blossom.h"
#include "decode/dem.h"
#include "decode/erasure.h"
#include "decode/spacetime.h"
#include "sim/noise_model.h"
#include "sim/sweep_scheduler.h"
#include "topo/toric_code.h"

namespace {

using namespace ftqc;

// Depolarizing floor under the erasure ladder: the channel stays "mixed"
// (Pauli + erasure) so the peeling stage has to hand leftovers to the
// matching stage, as in any real device.
constexpr double kErasureEpsStore = 0.01;
constexpr double kZBiasEta = 4.0;

struct ErasureCell {
  uint64_t blind_fails = 0;
  uint64_t aware_fails = 0;
  uint64_t trials = 0;
};

// Paired blind/aware failures over `shots` seeded code-capacity shots.
ErasureCell erasure_rates(const decode::ErasureAwareDecoder& decoder,
                          double p_erase, size_t shots, uint64_t seed) {
  sim::NoiseParams params;
  params.eps_store = kErasureEpsStore;
  params.p_erase = p_erase;
  ErasureCell cell;
  Rng rng(seed);
  for (size_t shot = 0; shot < shots; ++shot) {
    const decode::ErasureMemoryResult r =
        decode::run_erasure_memory(decoder, params, rng.next_u64());
    cell.blind_fails += r.blind_fail ? 1 : 0;
    cell.aware_fails += r.aware_fail ? 1 : 0;
    ++cell.trials;
  }
  return cell;
}

// Circuit-level failure rate under the full NoiseParams channel set (the
// biased points pair a biased-DEM decoder with the matching biased noise).
Proportion circuit_rate(const decode::SpacetimeToricDecoder& decoder,
                        const sim::NoiseParams& params, size_t rounds,
                        size_t shots, uint64_t seed) {
  decode::PhenomenologicalScratch scratch;
  Rng rng(seed);
  uint64_t fails = 0;
  for (size_t shot = 0; shot < shots; ++shot) {
    fails += decode::run_circuit_memory(decoder, params, rounds,
                                        rng.next_u64(), &scratch)
                     .logical_fail
                 ? 1
                 : 0;
  }
  return Proportion{fails, shots};
}

// Log-log crossing fitted on the window around the first ratio < 1 -> >= 1
// straddle of an ascending grid. Falls back to the global fit (which will
// usually report extrapolated) when no straddle was measured.
ftqc::UnitCrossing windowed_crossing(const std::vector<double>& grid,
                                     const std::vector<double>& ratio) {
  for (size_t i = 0; i + 1 < grid.size(); ++i) {
    if (ratio[i] > 0 && ratio[i + 1] > 0 && ratio[i] < 1.0 &&
        ratio[i + 1] >= 1.0) {
      const size_t lo = (i > 0 && ratio[i - 1] > 0) ? i - 1 : i;
      const size_t hi =
          (i + 2 < grid.size() && ratio[i + 2] > 0) ? i + 2 : i + 1;
      const std::vector<double> xs(grid.begin() + lo, grid.begin() + hi + 1);
      const std::vector<double> rs(ratio.begin() + lo,
                                   ratio.begin() + hi + 1);
      return ftqc::loglog_unit_crossing_ex(xs, rs);
    }
  }
  return ftqc::loglog_unit_crossing_ex(grid, ratio);
}

double safe_ratio(const Proportion& small, const Proportion& large) {
  return small.resolved() && large.resolved() && small.mean() > 0 &&
                 large.mean() > 0
             ? large.mean() / small.mean()
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E20", {sim::ShotEngine::kFrame});
  std::printf(
      "E20: heralded erasure & biased noise. Ladder 1: blind vs erasure-\n"
      "aware decoding of the SAME shots (eps_store = %.3g floor). Ladder 2:\n"
      "circuit-level threshold, unbiased vs Z-biased (eta = %.0f) channels\n"
      "with bias-matched DEM weights.\n\n",
      kErasureEpsStore, kZBiasEta);

  const size_t shots_erasure = ftqc::bench::scaled(1500, 120);
  const size_t shots_circuit = ftqc::bench::scaled(1200, 80);

  using topo::ToricCode;
  const ToricCode code4(4), code6(6), code8(8);
  const auto mwpm = std::make_shared<const decode::BlossomMatching>();
  const decode::ErasureAwareDecoder erasure4(
      code4, decode::ToricSide::kPlaquette, mwpm);
  const decode::ErasureAwareDecoder erasure8(
      code8, decode::ToricSide::kPlaquette, mwpm);

  // Ascending grids; both thresholds must end up bracketed. Blind caps
  // near 2 x 10.3% minus the Pauli floor (~0.19); aware runs toward the
  // 0.5 percolation limit (~0.45 with the floor).
  const std::vector<double> erasure_grid = {0.10, 0.15, 0.20, 0.25, 0.30,
                                            0.35, 0.40, 0.45, 0.50, 0.55};
  const std::vector<double> circuit_grid = {0.006, 0.008, 0.010, 0.013,
                                            0.016, 0.020, 0.024};
  const std::vector<double> zbias_grid = {0.010, 0.014, 0.018, 0.024,
                                          0.030, 0.038, 0.048};

  const sim::NoiseParams zbias_shape =
      sim::NoiseParams::biased_gate(0.01, kZBiasEta, 0.01);
  const decode::ToricDem dem4 =
      decode::ToricDem::build(code4, decode::ToricSide::kPlaquette);
  const decode::ToricDem dem6 =
      decode::ToricDem::build(code6, decode::ToricSide::kPlaquette);
  const decode::ToricDem dem4z = decode::ToricDem::build(
      code4, decode::ToricSide::kPlaquette, zbias_shape);
  const decode::ToricDem dem6z = decode::ToricDem::build(
      code6, decode::ToricSide::kPlaquette, zbias_shape);

  // --- Build the sweep ------------------------------------------------------
  std::vector<sim::SweepPoint> points;
  std::map<std::string, size_t> index;
  const auto add_point = [&](std::string id,
                             std::function<sim::SweepMetrics()> measure) {
    index.emplace(id, points.size());
    points.push_back(sim::SweepPoint{
        "E20", std::move(id),
        [measure = std::move(measure)]() -> std::optional<sim::SweepMetrics> {
          return measure();
        }});
  };

  struct ErasureRow {
    const decode::ErasureAwareDecoder* decoder;
    size_t l;
    uint64_t seed;
  };
  const ErasureRow erasure_rows[] = {{&erasure4, 4, 211}, {&erasure8, 8, 223}};
  for (const ErasureRow& row : erasure_rows) {
    for (const double p : erasure_grid) {
      add_point(ftqc::strfmt("erasure_L%zu_p%.3f", row.l, p), [&, p] {
        const ErasureCell cell =
            erasure_rates(*row.decoder, p, shots_erasure, row.seed);
        sim::SweepMetrics metrics;
        metrics.add("blind_failures", static_cast<double>(cell.blind_fails));
        metrics.add("aware_failures", static_cast<double>(cell.aware_fails));
        metrics.add("trials", static_cast<double>(cell.trials));
        return metrics;
      });
    }
  }
  struct CircuitRow {
    const char* key;
    size_t l;
    size_t rounds;
    const ToricCode* code;
    const decode::ToricDem* dem;
    bool biased;
    uint64_t seed;
    const std::vector<double>* grid;
  };
  const CircuitRow circuit_rows[] = {
      {"circuit", 4, 4, &code4, &dem4, false, 307, &circuit_grid},
      {"circuit", 6, 6, &code6, &dem6, false, 311, &circuit_grid},
      {"zbias", 4, 4, &code4, &dem4z, true, 331, &zbias_grid},
      {"zbias", 6, 6, &code6, &dem6z, true, 337, &zbias_grid},
  };
  for (const CircuitRow& row : circuit_rows) {
    for (const double eps : *row.grid) {
      add_point(ftqc::strfmt("%s_L%zu_p%.3f", row.key, row.l, eps),
                [&, eps] {
                  const sim::NoiseParams params =
                      row.biased
                          ? sim::NoiseParams::biased_gate(eps, kZBiasEta, eps)
                          : sim::NoiseParams::uniform_gate(eps, eps);
                  const decode::SpacetimeToricDecoder decoder(
                      *row.code, decode::ToricSide::kPlaquette, mwpm,
                      row.dem->weights_at(eps));
                  const Proportion rate = circuit_rate(
                      decoder, params, row.rounds, shots_circuit, row.seed);
                  sim::SweepMetrics metrics;
                  metrics.add("failures",
                              static_cast<double>(rate.successes));
                  metrics.add("trials", static_cast<double>(rate.trials));
                  return metrics;
                });
    }
  }

  sim::CheckpointStore store(ftqc::bench::checkpoint_dir());
  const sim::SweepReport report = sim::run_sweep(
      points, ftqc::bench::sweep_options(),
      ftqc::bench::checkpoint_dir().empty() ? nullptr : &store);
  if (!report.finished()) {
    std::printf(
        "E20 sweep checkpointed: %zu done, %zu remaining (rerun with the "
        "same --checkpoint-dir to resume; no BENCH_E20.json written)\n",
        report.completed + report.skipped, report.remaining + report.failed);
    return report.failed > 0 ? 1 : 0;
  }
  const auto metric = [&](const std::string& id, const char* field) {
    return report.results[index.at(id)]->at(field);
  };
  const auto prop = [&](const std::string& id, const char* fails) {
    return Proportion{static_cast<uint64_t>(metric(id, fails)),
                      static_cast<uint64_t>(metric(id, "trials"))};
  };

  ftqc::bench::JsonResult json;
  json.add("erasure_eps_store", kErasureEpsStore);
  json.add("zbias_eta", kZBiasEta);

  // --- Ladder 1: blind vs aware erasure thresholds --------------------------
  std::printf("Heralded erasure ladder (floor eps_store = %.3g):\n",
              kErasureEpsStore);
  ftqc::Table table({"p_erase", "blind L=4", "blind L=8", "aware L=4",
                     "aware L=8"});
  std::vector<double> blind_ratio, aware_ratio;
  for (const double p : erasure_grid) {
    const auto b4 = prop(ftqc::strfmt("erasure_L4_p%.3f", p),
                         "blind_failures");
    const auto b8 = prop(ftqc::strfmt("erasure_L8_p%.3f", p),
                         "blind_failures");
    const auto a4 = prop(ftqc::strfmt("erasure_L4_p%.3f", p),
                         "aware_failures");
    const auto a8 = prop(ftqc::strfmt("erasure_L8_p%.3f", p),
                         "aware_failures");
    table.add_row({ftqc::strfmt("%.2f", p), ftqc::strfmt("%.4f", b4.mean()),
                   ftqc::strfmt("%.4f", b8.mean()),
                   ftqc::strfmt("%.4f", a4.mean()),
                   ftqc::strfmt("%.4f", a8.mean())});
    blind_ratio.push_back(safe_ratio(b4, b8));
    aware_ratio.push_back(safe_ratio(a4, a8));
    if (p == 0.30) {
      json.add("failure_blind_L8_p30", b8.mean());
      json.add("failure_aware_L8_p30", a8.mean());
    }
  }
  table.print();
  const ftqc::UnitCrossing blind_cross =
      windowed_crossing(erasure_grid, blind_ratio);
  const ftqc::UnitCrossing aware_cross =
      windowed_crossing(erasure_grid, aware_ratio);
  json.add("threshold_erasure_blind", blind_cross.valid ? blind_cross.x : 0.0);
  json.add("threshold_erasure_blind_extrapolated",
           !blind_cross.valid || blind_cross.extrapolated);
  json.add("threshold_erasure_aware", aware_cross.valid ? aware_cross.x : 0.0);
  json.add("threshold_erasure_aware_extrapolated",
           !aware_cross.valid || aware_cross.extrapolated);
  if (blind_cross.valid && aware_cross.valid) {
    json.add("erasure_aware_gain", aware_cross.x / blind_cross.x);
    std::printf(
        "  blind threshold (%s): p_erase ~ %.3f\n"
        "  aware threshold (%s): p_erase ~ %.3f  (gain %.2fx)\n\n",
        blind_cross.extrapolated ? "extrapolated" : "bracketed",
        blind_cross.x, aware_cross.extrapolated ? "extrapolated" : "bracketed",
        aware_cross.x, aware_cross.x / blind_cross.x);
  } else {
    std::printf("  erasure thresholds not resolved at these shot counts\n\n");
  }

  // --- Ladder 2: Z-bias threshold shift -------------------------------------
  const auto circuit_threshold = [&](const char* key,
                                     const std::vector<double>& grid) {
    std::vector<double> ratio;
    ftqc::Table c_table({"eps", "L=4", "L=6"});
    for (const double eps : grid) {
      const auto f4 = prop(ftqc::strfmt("%s_L4_p%.3f", key, eps), "failures");
      const auto f6 = prop(ftqc::strfmt("%s_L6_p%.3f", key, eps), "failures");
      c_table.add_row({ftqc::strfmt("%.3f", eps),
                       ftqc::strfmt("%.4f", f4.mean()),
                       ftqc::strfmt("%.4f", f6.mean())});
      ratio.push_back(safe_ratio(f4, f6));
    }
    c_table.print();
    return windowed_crossing(grid, ratio);
  };
  std::printf("Circuit-level, unbiased channel (DEM-weighted matching):\n");
  const ftqc::UnitCrossing plain_cross =
      circuit_threshold("circuit", circuit_grid);
  std::printf("Circuit-level, Z-biased channel (eta = %.0f, biased DEM):\n",
              kZBiasEta);
  const ftqc::UnitCrossing zbias_cross = circuit_threshold("zbias",
                                                           zbias_grid);
  json.add("threshold_circuit", plain_cross.valid ? plain_cross.x : 0.0);
  json.add("threshold_circuit_extrapolated",
           !plain_cross.valid || plain_cross.extrapolated);
  json.add("threshold_zbias", zbias_cross.valid ? zbias_cross.x : 0.0);
  json.add("threshold_zbias_extrapolated",
           !zbias_cross.valid || zbias_cross.extrapolated);
  if (plain_cross.valid && zbias_cross.valid) {
    json.add("zbias_threshold_shift", zbias_cross.x / plain_cross.x);
    std::printf(
        "  unbiased threshold (%s): eps ~ %.4f\n"
        "  Z-biased threshold (%s): eps ~ %.4f  (shift %.2fx)\n",
        plain_cross.extrapolated ? "extrapolated" : "bracketed",
        plain_cross.x, zbias_cross.extrapolated ? "extrapolated" : "bracketed",
        zbias_cross.x, zbias_cross.x / plain_cross.x);
  }
  json.write();
  std::printf(
      "\nShape check: the aware decoder tolerates roughly double the blind\n"
      "erasure rate, and the Z-biased channel's threshold in total eps sits\n"
      "above the unbiased one on the X-detecting plaquette side.\n");
  return 0;
}
