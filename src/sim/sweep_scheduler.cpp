#include "sim/sweep_scheduler.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "common/check.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ftqc::sim {

namespace {

namespace fs = std::filesystem;

// FNV-1a over "bench" + '/' + "id": a stable, platform-independent hash so
// a checkpointed campaign re-derives identical per-point seeds on resume.
uint64_t fnv1a(std::string_view bench, std::string_view id) {
  uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
  };
  mix(bench);
  h ^= static_cast<unsigned char>('/');
  h *= 0x100000001b3ull;
  mix(id);
  return h;
}

std::string checkpoint_key(std::string_view bench, std::string_view id) {
  std::string key(bench);
  key += '\n';  // ids never contain newlines; benches are "E14"-style tags
  key += id;
  return key;
}

std::string json_escaped(std::string_view raw) {
  std::string out;
  for (const char c : raw) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// --- Flat JSON shard parsing ------------------------------------------------
// Shards are one-line flat objects (string / number / bool / null values,
// no nesting) in the exact dialect CheckpointStore::record and
// bench_harness.h emit. Anything else fails the parse and the file is
// skipped with a warning — a stray foreign .json in the campaign dir must
// not abort a resume.

struct FlatJson {
  std::vector<std::pair<std::string, double>> numbers;
  std::map<std::string, std::string, std::less<>> strings;
};

class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view text) : text_(text) {}

  bool parse(FlatJson& out) {
    skip_ws();
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      std::string key, str;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (peek() == '"') {
        if (!parse_string(str)) return false;
        out.strings.emplace(std::move(key), std::move(str));
      } else if (eat_word("true")) {
        out.numbers.emplace_back(std::move(key), 1.0);
      } else if (eat_word("false")) {
        out.numbers.emplace_back(std::move(key), 0.0);
      } else if (eat_word("null")) {
        // A non-finite metric (JsonResult and the shards both write those
        // as null): absent on read-back, by design.
      } else {
        double value = 0;
        if (!parse_number(value)) return false;
        out.numbers.emplace_back(std::move(key), value);
      }
      skip_ws();
      if (eat('}')) break;
      if (!eat(',')) return false;
      skip_ws();
    }
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  bool eat_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          const unsigned long cp =
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                           nullptr, 16);
          pos_ += 4;
          // Shards only escape control bytes, so one raw byte suffices.
          out += static_cast<char>(cp);
          break;
        }
        default: return false;
      }
    }
    return false;
  }
  bool parse_number(double& out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

size_t default_workers() {
#ifdef _OPENMP
  const int n = omp_get_max_threads();
#else
  const int n = static_cast<int>(std::thread::hardware_concurrency());
#endif
  return n > 0 ? static_cast<size_t>(n) : 1;
}

}  // namespace

// --- SweepMetrics -----------------------------------------------------------

std::optional<double> SweepMetrics::get(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

double SweepMetrics::at(std::string_view key) const {
  const auto value = get(key);
  FTQC_CHECK(value.has_value(), "sweep metric missing");
  return *value;
}

// --- plan_for_point ---------------------------------------------------------

ShotPlan plan_for_point(const ShotPlan& base, std::string_view bench,
                        std::string_view id) {
  ShotPlan plan = base.for_stratum(fnv1a(bench, id));
  plan.parallel = false;
  return plan;
}

// --- CheckpointStore --------------------------------------------------------

namespace {

// 32-bit FNV-1a over the canonical shard payload (everything before the
// trailing ,"crc":... field). Tamper evidence against torn writes and
// bit rot, not cryptography: a mismatch means "distrust and recompute",
// which is always safe because every point re-derives its own seeds.
uint32_t shard_checksum(std::string_view payload) {
  uint32_t h = 2166136261u;
  for (const unsigned char c : payload) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

}  // namespace

std::string CheckpointStore::shard_filename(std::string_view bench,
                                            std::string_view id) {
  std::string name = "BENCH_";
  name += bench;
  name += '.';
  for (const char c : id) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    name += ok ? c : '_';
  }
  name += ".json";
  return name;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0 || name.size() < 6 ||
        entry.path().extension() != ".json") {
      continue;
    }
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    FlatJson parsed;
    if (!FlatJsonParser(buffer.str()).parse(parsed)) {
      std::fprintf(stderr, "[sweep] warning: unparseable shard %s (ignored)\n",
                   entry.path().c_str());
      continue;
    }
    // Only point shards resume; final BENCH_<name>.json artifacts (no
    // "point" field) share the directory without being mistaken for one.
    const auto bench_it = parsed.strings.find("bench");
    const auto point_it = parsed.strings.find("point");
    if (bench_it == parsed.strings.end() || point_it == parsed.strings.end()) {
      continue;
    }
    // A point shard must carry a matching checksum: a flipped bit in a
    // digit still parses as valid JSON, and resuming from it would silently
    // corrupt the sweep. Distrusted shards are ignored, so the scheduler
    // just recomputes the point.
    const std::string text = buffer.str();
    const size_t crc_pos = text.rfind(",\"crc\":");
    const auto crc_it =
        std::find_if(parsed.numbers.begin(), parsed.numbers.end(),
                     [](const auto& field) { return field.first == "crc"; });
    if (crc_pos == std::string::npos || crc_it == parsed.numbers.end() ||
        crc_it->second !=
            static_cast<double>(shard_checksum(
                std::string_view(text).substr(0, crc_pos)))) {
      std::fprintf(stderr,
                   "[sweep] warning: checksum mismatch in shard %s (ignored)\n",
                   entry.path().c_str());
      continue;
    }
    SweepMetrics metrics;
    for (auto& [key, value] : parsed.numbers) {
      if (key != "crc") metrics.add(key, value);
    }
    loaded_.insert_or_assign(
        checkpoint_key(bench_it->second, point_it->second),
        std::move(metrics));
  }
}

bool CheckpointStore::contains(std::string_view bench,
                               std::string_view id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return loaded_.find(checkpoint_key(bench, id)) != loaded_.end();
}

std::optional<SweepMetrics> CheckpointStore::find(std::string_view bench,
                                                  std::string_view id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = loaded_.find(checkpoint_key(bench, id));
  if (it == loaded_.end()) return std::nullopt;
  return it->second;
}

size_t CheckpointStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return loaded_.size();
}

void CheckpointStore::record(std::string_view bench, std::string_view id,
                             const SweepMetrics& metrics) {
  std::string json = "{\"bench\":\"";
  json += json_escaped(bench);
  json += "\",\"point\":\"";
  json += json_escaped(id);
  json += '"';
  for (const auto& [key, value] : metrics.fields()) {
    json += ",\"";
    json += json_escaped(key);
    json += "\":";
    if (std::isfinite(value)) {
      // %.17g round-trips every finite double exactly through strtod: the
      // resume path must reproduce the straight-through metrics to the bit,
      // not to 12 digits.
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", value);
      json += buf;
    } else {
      json += "null";
    }
  }
  // Appended last so the loader can rfind the field and checksum the
  // payload before it (a metric literally named "crc" would shadow this —
  // don't name one that).
  const uint32_t crc = shard_checksum(json);
  json += ",\"crc\":";
  json += std::to_string(crc);
  json += "}";

  const std::lock_guard<std::mutex> lock(mutex_);
  loaded_.insert_or_assign(checkpoint_key(bench, id), metrics);
  if (dir_.empty()) return;
  const fs::path path = fs::path(dir_) / shard_filename(bench, id);
  // Temp-then-rename: a kill mid-write leaves at worst a stale .tmp, never
  // a truncated shard that the resume scan would have to distrust.
  const fs::path tmp = path.string() + ".tmp";
  if (std::FILE* out = std::fopen(tmp.c_str(), "w")) {
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
      std::fprintf(stderr, "[sweep] warning: could not commit %s: %s\n",
                   path.c_str(), ec.message().c_str());
    }
  } else {
    std::fprintf(stderr, "[sweep] warning: could not write %s\n", tmp.c_str());
  }
}

// --- run_sweep --------------------------------------------------------------

namespace {

// One worker's slice of the bag. Owner and thieves pop through the same
// atomic cursor, so a pop is a single fetch_add wherever it comes from.
struct WorkQueue {
  std::vector<size_t> items;
  std::atomic<size_t> head{0};

  std::optional<size_t> pop() {
    const size_t h = head.fetch_add(1, std::memory_order_relaxed);
    if (h < items.size()) return items[h];
    return std::nullopt;
  }
  [[nodiscard]] size_t left() const {
    const size_t h = head.load(std::memory_order_relaxed);
    return h < items.size() ? items.size() - h : 0;
  }
};

}  // namespace

SweepReport run_sweep(const std::vector<SweepPoint>& points,
                      const SweepOptions& options, CheckpointStore* store) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  SweepReport report;
  report.results.resize(points.size());

  std::vector<size_t> todo;
  for (size_t i = 0; i < points.size(); ++i) {
    if (store != nullptr) {
      if (auto cached = store->find(points[i].bench, points[i].id)) {
        report.results[i] = std::move(*cached);
        ++report.skipped;
        continue;
      }
    }
    todo.push_back(i);
  }
  if (options.verbose && report.skipped > 0) {
    std::fprintf(stderr,
                 "[sweep] resume: %zu of %zu points already checkpointed\n",
                 report.skipped, points.size());
  }

  const size_t budget =
      options.max_points == 0 ? todo.size()
                              : std::min(options.max_points, todo.size());
  size_t num_workers = options.workers == 0 ? default_workers()
                                            : options.workers;
  num_workers = std::max<size_t>(1, std::min(num_workers, budget));

  const auto queues = std::make_unique<WorkQueue[]>(num_workers);
  for (size_t k = 0; k < todo.size(); ++k) {
    queues[k % num_workers].items.push_back(todo[k]);
  }

  std::atomic<size_t> tickets{0};
  std::atomic<size_t> completed{0};
  std::atomic<size_t> failed{0};
  std::mutex io_mutex;

  const auto next_point = [&](size_t w) -> std::optional<size_t> {
    if (auto idx = queues[w].pop()) return idx;
    for (;;) {
      // Steal from the most loaded victim: the longest queue is the one
      // most likely to still have work by the time the fetch_add lands.
      size_t best = num_workers;
      size_t best_left = 0;
      for (size_t j = 0; j < num_workers; ++j) {
        const size_t left = queues[j].left();
        if (left > best_left) {
          best_left = left;
          best = j;
        }
      }
      if (best == num_workers) return std::nullopt;
      if (auto idx = queues[best].pop()) return idx;
      // Lost the race to another thief; rescan.
    }
  };

  const auto work = [&](size_t w) {
    for (;;) {
      // Ticket before pop: a ticket only goes to waste when the bag is
      // already empty, so max_points still means "at most N fresh runs".
      if (tickets.fetch_add(1, std::memory_order_relaxed) >= budget) return;
      const auto idx = next_point(w);
      if (!idx) return;
      const SweepPoint& point = points[*idx];
      std::optional<SweepMetrics> metrics;
      try {
        metrics = point.run();
      } catch (...) {
        metrics.reset();
      }
      if (metrics.has_value()) {
        if (store != nullptr) store->record(point.bench, point.id, *metrics);
        report.results[*idx] = std::move(*metrics);
        const size_t done =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options.verbose) {
          const std::lock_guard<std::mutex> lock(io_mutex);
          std::fprintf(stderr, "[sweep] %s/%s done (%zu/%zu)\n",
                       point.bench.c_str(), point.id.c_str(), done, budget);
        }
      } else {
        failed.fetch_add(1, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(io_mutex);
        std::fprintf(stderr, "[sweep] %s/%s FAILED\n", point.bench.c_str(),
                     point.id.c_str());
      }
    }
  };

  if (num_workers <= 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) pool.emplace_back(work, w);
    for (auto& t : pool) t.join();
  }

  report.completed = completed.load();
  report.failed = failed.load();
  report.remaining = todo.size() - report.completed - report.failed;
  report.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (options.verbose && report.remaining > 0) {
    std::fprintf(stderr,
                 "[sweep] stopped after %zu points (max-points); %zu left "
                 "checkpoint-resumable\n",
                 report.completed, report.remaining);
  }
  return report;
}

}  // namespace ftqc::sim
