#include "decode/decoder.h"

#include <utility>
#include <vector>

#include "common/check.h"

namespace ftqc::decode {

ToricMatchingDecoder::ToricMatchingDecoder(
    const topo::ToricCode& code, ToricSide side,
    std::shared_ptr<const MatchingStrategy> strategy)
    : code_(code), side_(side), strategy_(std::move(strategy)) {
  FTQC_CHECK(strategy_ != nullptr, "matching strategy required");
}

const char* ToricMatchingDecoder::name() const { return strategy_->name(); }

gf2::BitVec ToricMatchingDecoder::decode(const gf2::BitVec& syndrome) const {
  const size_t sites = side_ == ToricSide::kPlaquette ? code_.num_plaquettes()
                                                      : code_.num_vertices();
  FTQC_CHECK(syndrome.size() == sites, "syndrome size mismatch");
  std::vector<uint32_t> defects;
  for (size_t s = syndrome.first_set(); s < sites; s = syndrome.next_set(s + 1)) {
    defects.push_back(static_cast<uint32_t>(s));
  }
  FTQC_CHECK(defects.size() % 2 == 0, "defects come in pairs on a torus");

  const auto matches =
      strategy_->match(defects.size(), [&](size_t a, size_t b) {
        return code_.torus_site_distance(defects[a], defects[b]);
      });
  gf2::BitVec correction(code_.num_qubits());
  for (const Match& m : matches) {
    if (side_ == ToricSide::kPlaquette) {
      code_.toggle_dual_path(defects[m.a], defects[m.b], correction);
    } else {
      code_.toggle_primal_path(defects[m.a], defects[m.b], correction);
    }
  }
  return correction;
}

}  // namespace ftqc::decode
