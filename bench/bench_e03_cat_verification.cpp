// E3 (§3.3, Fig. 8): cat-state verification. A single fault in the XOR chain
// can leave two bit-flip errors in the cat (= two phase errors in the Shor
// state, which would feed back into the data). The check qubit catches
// exactly those; discarding flagged cats makes multi-error acceptance O(eps²).
#include <array>
#include <cstdio>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "ft/gadget_runner.h"
#include "ft/noise_injector.h"
#include "ft/steane_circuits.h"
#include "sim/frame_sim.h"

namespace {

using namespace ftqc;
using namespace ftqc::ft;

constexpr std::array<uint32_t, 4> kCat = {0, 1, 2, 3};
constexpr uint32_t kCheck = 4;
constexpr std::array<uint32_t, 5> kAll = {0, 1, 2, 3, 4};

struct CatStats {
  Proportion accepted;             // verification passes
  Proportion multi_error_given_ok; // >= 2 cat bit-flips among accepted cats
  Proportion multi_error_all;      // >= 2 cat bit-flips, ignoring the check
};

CatStats run(double eps, size_t shots, uint64_t seed) {
  const auto noise = sim::NoiseParams::uniform_gate(eps);
  // Verify the raw cat (before the Shor-state Hadamards): bit-flip errors
  // here are the dangerous phase errors afterwards.
  const sim::Circuit prep = cat_prep_with_check(kCat, kCheck, false);
  CatStats stats;
  for (size_t s = 0; s < shots; ++s) {
    sim::FrameSim frame(5, seed + s);
    StochasticInjector injector(noise);
    const auto record = run_gadget(frame, prep, injector, kAll);
    const bool pass = record[0] == 0;
    // Count cat bit-flip errors relative to the stabilizer: the cat state
    // is stabilized by pairwise ZZ, so the error class is the X-frame
    // pattern modulo the all-ones flip.
    size_t flips = 0;
    for (uint32_t q : kCat) flips += frame.destructive_z_flip(q) ? 1 : 0;
    const size_t weight = std::min(flips, size_t{4} - flips);
    stats.accepted.trials++;
    stats.accepted.successes += pass;
    stats.multi_error_all.trials++;
    stats.multi_error_all.successes += weight >= 2;
    if (pass) {
      stats.multi_error_given_ok.trials++;
      stats.multi_error_given_ok.successes += weight >= 2;
    }
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E03");
  std::printf(
      "E3: Fig. 8 cat-state verification. Without the check, a single chain\n"
      "fault leaves 2 bit-flips in the cat at O(eps); conditioned on the\n"
      "check passing, multi-error cats survive only at O(eps^2).\n\n");
  const size_t shots = ftqc::bench::scaled(400000, 4000);
  ftqc::bench::JsonResult json;
  ftqc::Table table({"eps", "accept rate", "P(>=2 flips) unchecked",
                     "P(>=2 flips | accepted)", "unchecked/eps", "accepted/eps^2"});
  for (const double eps : {0.02, 0.01, 0.005, 0.002}) {
    const auto stats = run(eps, shots, 99);
    const double unchecked = stats.multi_error_all.mean();
    const double checked = stats.multi_error_given_ok.mean();
    table.add_row({ftqc::strfmt("%.3g", eps),
                   ftqc::strfmt("%.4f", stats.accepted.mean()),
                   ftqc::strfmt("%.3e", unchecked),
                   ftqc::strfmt("%.3e", checked),
                   ftqc::strfmt("%.2f", unchecked / eps),
                   ftqc::strfmt("%.1f", checked / (eps * eps))});
    if (eps == 0.01) {
      json.add("eps", eps);
      json.add("accept_rate", stats.accepted.mean());
      json.add("p_multi_unchecked", unchecked);
      json.add("p_multi_accepted", checked);
    }
  }
  table.print();
  json.add("shots", shots);
  json.write();
  std::printf(
      "\nShape check: the unchecked column scales linearly in eps; the\n"
      "accepted column scales quadratically — verification works (§3.3).\n");
  return 0;
}
