// Work-stealing sweep scheduler + checkpoint/resume (sim/sweep_scheduler.h).
// The load-bearing property is the determinism contract: a sweep's metrics
// are identical whether it ran straight through on one worker, raced across
// four, or was killed mid-flight and resumed from its shards — because each
// point owns its seeds and all parallelism lives in the scheduler. These
// tests pin that contract at the library level (the E14/E18 benches and the
// campaign runner pin it again end to end).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <optional>
#include <string>
#include <vector>

#include <filesystem>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "sim/shot_runner.h"
#include "sim/sweep_scheduler.h"

namespace ftqc::sim {
namespace {

// A deterministic stand-in workload: a short seeded RNG reduction, so two
// runs of the same point agree bit-for-bit and different points differ.
SweepMetrics fake_measurement(const ShotPlan& plan) {
  Rng rng(plan.seed);
  double acc = 0;
  uint64_t hits = 0;
  for (size_t i = 0; i < 1000; ++i) {
    const double u = rng.next_double();
    acc += u;
    hits += u < 0.25 ? 1 : 0;
  }
  SweepMetrics m;
  m.add("acc", acc);
  m.add("hits", static_cast<double>(hits));
  return m;
}

std::vector<SweepPoint> make_points(size_t n, std::atomic<size_t>* runs) {
  ShotPlan base;
  base.shots = 1000;
  base.seed = 99;
  base.seed_stride = 17;
  std::vector<SweepPoint> points;
  for (size_t i = 0; i < n; ++i) {
    SweepPoint point;
    point.bench = "TEST";
    point.id = "pt" + std::to_string(i);
    const ShotPlan plan = plan_for_point(base, point.bench, point.id);
    point.run = [plan, runs]() -> std::optional<SweepMetrics> {
      if (runs != nullptr) runs->fetch_add(1);
      return fake_measurement(plan);
    };
    points.push_back(std::move(point));
  }
  return points;
}

// A per-test scratch directory, cleared on entry: TempDir() persists
// across test-binary invocations, and stale shards would satisfy resume.
std::string fresh_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::pair<std::string, double>> all_fields(
    const SweepReport& report) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& metrics : report.results) {
    EXPECT_TRUE(metrics.has_value());
    if (!metrics) continue;
    for (const auto& field : metrics->fields()) out.push_back(field);
  }
  return out;
}

TEST(PlanForPoint, DerivesDecorrelatedSerialPlans) {
  ShotPlan base;
  base.shots = 1234;
  base.seed = 7;
  base.seed_stride = 11;
  base.parallel = true;
  const ShotPlan a = plan_for_point(base, "E18", "l1_1em3");
  const ShotPlan b = plan_for_point(base, "E18", "l1_2em3");
  const ShotPlan c = plan_for_point(base, "E14", "l1_1em3");
  // Budget and blocking carry over; the seed decorrelates; parallelism is
  // forced off (the scheduler owns the threads).
  EXPECT_EQ(a.shots, base.shots);
  EXPECT_EQ(a.engine, base.engine);
  EXPECT_FALSE(a.parallel);
  EXPECT_NE(a.seed, base.seed);
  EXPECT_NE(a.seed, b.seed);
  EXPECT_NE(a.seed, c.seed);  // same id, different bench
  // Stable across calls: the checkpoint key doubles as the seed key.
  EXPECT_EQ(a.seed, plan_for_point(base, "E18", "l1_1em3").seed);
}

TEST(SweepScheduler, WorkerCountDoesNotChangeResults) {
  const auto points = make_points(23, nullptr);
  SweepOptions serial;
  serial.workers = 1;
  serial.verbose = false;
  SweepOptions pooled;
  pooled.workers = 4;
  pooled.verbose = false;
  const SweepReport a = run_sweep(points, serial);
  const SweepReport b = run_sweep(points, pooled);
  EXPECT_TRUE(a.finished());
  EXPECT_TRUE(b.finished());
  EXPECT_EQ(a.completed, 23u);
  EXPECT_EQ(b.completed, 23u);
  EXPECT_EQ(all_fields(a), all_fields(b));
}

TEST(SweepScheduler, KilledAndResumedMatchesStraightThrough) {
  const auto straight_points = make_points(12, nullptr);
  SweepOptions options;
  options.verbose = false;
  options.workers = 2;
  const SweepReport straight = run_sweep(straight_points, options);
  ASSERT_TRUE(straight.finished());

  CheckpointStore store(fresh_dir("sweep_resume"));
  // Round 1: the "kill" — only 5 fresh points allowed.
  std::atomic<size_t> runs{0};
  const auto points = make_points(12, &runs);
  SweepOptions killed = options;
  killed.max_points = 5;
  const SweepReport partial = run_sweep(points, killed, &store);
  EXPECT_FALSE(partial.finished());
  EXPECT_EQ(partial.completed, 5u);
  EXPECT_EQ(partial.remaining, 7u);
  EXPECT_EQ(runs.load(), 5u);
  EXPECT_EQ(store.size(), 5u);

  // Round 2: resume — a FRESH store instance must reload the shards from
  // disk, skip the 5 done points, and finish the rest.
  CheckpointStore reloaded(store.dir());
  EXPECT_EQ(reloaded.size(), 5u);
  const SweepReport resumed = run_sweep(points, options, &reloaded);
  EXPECT_TRUE(resumed.finished());
  EXPECT_EQ(resumed.skipped, 5u);
  EXPECT_EQ(resumed.completed, 7u);
  EXPECT_EQ(runs.load(), 12u);
  EXPECT_EQ(all_fields(resumed), all_fields(straight));

  // Round 3: everything checkpointed — nothing runs at all.
  const SweepReport rerun = run_sweep(points, options, &reloaded);
  EXPECT_TRUE(rerun.finished());
  EXPECT_EQ(rerun.skipped, 12u);
  EXPECT_EQ(rerun.completed, 0u);
  EXPECT_EQ(runs.load(), 12u);
  EXPECT_EQ(all_fields(rerun), all_fields(straight));
}

TEST(SweepScheduler, FailedPointIsNotCheckpointedAndRetriesNextRound) {
  CheckpointStore store(fresh_dir("sweep_fail"));
  std::atomic<bool> heal{false};
  std::vector<SweepPoint> points;
  SweepPoint flaky;
  flaky.bench = "TEST";
  flaky.id = "flaky";
  flaky.run = [&heal]() -> std::optional<SweepMetrics> {
    if (!heal.load()) return std::nullopt;
    SweepMetrics m;
    m.add("ok", 1.0);
    return m;
  };
  points.push_back(std::move(flaky));
  SweepOptions options;
  options.verbose = false;
  options.workers = 1;

  const SweepReport failed = run_sweep(points, options, &store);
  EXPECT_FALSE(failed.finished());
  EXPECT_EQ(failed.failed, 1u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(points[0].run == nullptr);
  EXPECT_FALSE(failed.results[0].has_value());

  heal.store(true);
  const SweepReport healed = run_sweep(points, options, &store);
  EXPECT_TRUE(healed.finished());
  EXPECT_EQ(healed.completed, 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(CheckpointStore, ShardRoundTripsMetricsIncludingNonFinite) {
  CheckpointStore store(fresh_dir("sweep_shard"));
  SweepMetrics m;
  m.add("trials", 40000.0);
  m.add("failures", 3.0);
  m.add("rate", 7.5e-5);
  m.add("tiny", 1.25e-300);
  m.add("relerr", std::numeric_limits<double>::infinity());
  m.add("sigma", std::numeric_limits<double>::quiet_NaN());
  store.record("E18", "rare/exrec eps=1e-4", m);

  // A fresh store reads the shard back from disk.
  CheckpointStore reloaded(store.dir());
  ASSERT_TRUE(reloaded.contains("E18", "rare/exrec eps=1e-4"));
  const auto got = reloaded.find("E18", "rare/exrec eps=1e-4");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->at("trials"), 40000.0);
  EXPECT_EQ(got->at("failures"), 3.0);
  EXPECT_EQ(got->at("rate"), 7.5e-5);
  EXPECT_EQ(got->at("tiny"), 1.25e-300);
  // Non-finite fields serialize as JSON null and read back as absent —
  // callers treat "absent" as "unresolved", same as they would the NaN.
  EXPECT_FALSE(got->get("relerr").has_value());
  EXPECT_FALSE(got->get("sigma").has_value());
  // Unknown point/bench stay absent.
  EXPECT_FALSE(reloaded.contains("E18", "other"));
  EXPECT_FALSE(reloaded.contains("E14", "rare/exrec eps=1e-4"));
}

TEST(CheckpointStore, ShardFilenameSanitizesIds) {
  EXPECT_EQ(CheckpointStore::shard_filename("E14", "greedy_L4_p0.080"),
            "BENCH_E14.greedy_L4_p0.080.json");
  EXPECT_EQ(CheckpointStore::shard_filename("E18", "rare/exrec eps=1e-4"),
            "BENCH_E18.rare_exrec_eps_1e-4.json");
}

TEST(CheckpointStore, IgnoresFinalBenchArtifactsInResumeScan) {
  const std::string dir = fresh_dir("sweep_foreign");
  CheckpointStore store(dir);
  SweepMetrics m;
  m.add("x", 1.0);
  store.record("E14", "a", m);
  // Drop a final BENCH_E14.json (no "point" field) and a torn shard next to
  // the real one: both must be ignored, not crash the scan.
  {
    std::FILE* f = std::fopen((dir + "/BENCH_E14.json").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "{\"bench\":\"E14\",\"threshold_greedy\":0.078}\n");
    std::fclose(f);
  }
  {
    std::FILE* f = std::fopen((dir + "/BENCH_E14.torn.json").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "{\"bench\":\"E14\",\"point\":\"torn\",\"x\":");
    std::fclose(f);
  }
  CheckpointStore reloaded(dir);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_TRUE(reloaded.contains("E14", "a"));
  EXPECT_FALSE(reloaded.contains("E14", "torn"));
}

TEST(SweepScheduler, MaxPointsBudgetsFreshRunsNotSkips) {
  CheckpointStore store(fresh_dir("sweep_budget"));
  std::atomic<size_t> runs{0};
  const auto points = make_points(10, &runs);
  SweepOptions options;
  options.verbose = false;
  options.workers = 3;
  options.max_points = 4;
  // Two killed rounds then a finishing round: 4 + 4 + 2.
  EXPECT_EQ(run_sweep(points, options, &store).completed, 4u);
  EXPECT_EQ(run_sweep(points, options, &store).completed, 4u);
  const SweepReport last = run_sweep(points, options, &store);
  EXPECT_EQ(last.completed, 2u);
  EXPECT_EQ(last.skipped, 8u);
  EXPECT_TRUE(last.finished());
  EXPECT_EQ(runs.load(), 10u);
}

// --- Chaos: random kills and corrupted shards --------------------------------
//
// The determinism contract must survive hostile schedules and hostile
// disks: any interleaving of mid-sweep kills, truncated shards and
// bit-flipped shards may cost recomputation, but never change a metric.

std::vector<std::filesystem::path> shard_paths(const std::string& dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

TEST(SweepChaos, RandomKillScheduleMatchesStraightThrough) {
  SweepOptions options;
  options.verbose = false;
  options.workers = 3;
  const SweepReport straight = run_sweep(make_points(17, nullptr), options);
  ASSERT_TRUE(straight.finished());

  Rng rng(0xC4A05);
  for (int trial = 0; trial < 5; ++trial) {
    const std::string dir =
        fresh_dir(("sweep_chaos_kill" + std::to_string(trial)).c_str());
    std::filesystem::remove_all(dir);
    std::atomic<size_t> runs{0};
    const auto points = make_points(17, &runs);
    SweepReport report;
    // Kill after a random number of fresh points, resume from a FRESH
    // store each round (as a restarted process would), repeat until done.
    for (int round = 0; round < 64; ++round) {
      CheckpointStore store(dir);
      SweepOptions killed = options;
      killed.max_points = 1 + rng.next_below(6);
      report = run_sweep(points, killed, &store);
      if (report.finished()) break;
    }
    ASSERT_TRUE(report.finished()) << trial;
    EXPECT_EQ(runs.load(), 17u) << "every point ran exactly once";
    EXPECT_EQ(all_fields(report), all_fields(straight)) << trial;
  }
}

TEST(SweepChaos, TruncatedShardIsDistrustedAndRecomputed) {
  const std::string dir = fresh_dir("sweep_chaos_trunc");
  SweepOptions options;
  options.verbose = false;
  options.workers = 2;
  const auto points = make_points(6, nullptr);
  const SweepReport straight = run_sweep(points, options);
  {
    CheckpointStore store(dir);
    ASSERT_TRUE(run_sweep(points, options, &store).finished());
  }
  const auto shards = shard_paths(dir);
  ASSERT_EQ(shards.size(), 6u);
  Rng rng(0xC4A06);
  for (const size_t keep : {size_t{0}, size_t{10}, size_t{40}}) {
    const auto& victim = shards[rng.next_below(shards.size())];
    const std::string pristine = read_file(victim);
    ASSERT_GT(pristine.size(), keep);
    write_file(victim, pristine.substr(0, keep));
    std::atomic<size_t> runs{0};
    const auto resume_points = make_points(6, &runs);
    CheckpointStore reloaded(dir);
    EXPECT_EQ(reloaded.size(), 5u) << "torn shard must be distrusted";
    const SweepReport resumed = run_sweep(resume_points, options, &reloaded);
    EXPECT_TRUE(resumed.finished());
    EXPECT_EQ(runs.load(), 1u) << "only the torn point recomputes";
    EXPECT_EQ(all_fields(resumed), all_fields(straight));
  }
}

TEST(SweepChaos, BitFlippedShardNeverChangesAMetric) {
  const std::string dir = fresh_dir("sweep_chaos_flip");
  SweepOptions options;
  options.verbose = false;
  options.workers = 2;
  const auto points = make_points(4, nullptr);
  const SweepReport straight = run_sweep(points, options);
  {
    CheckpointStore store(dir);
    ASSERT_TRUE(run_sweep(points, options, &store).finished());
  }
  const auto shards = shard_paths(dir);
  ASSERT_EQ(shards.size(), 4u);
  std::vector<std::string> pristine;
  for (const auto& path : shards) pristine.push_back(read_file(path));

  Rng rng(0xC4A07);
  size_t rejected = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const size_t victim = rng.next_below(shards.size());
    std::string mutated = pristine[victim];
    const size_t byte = rng.next_below(mutated.size());
    mutated[byte] = static_cast<char>(
        static_cast<unsigned char>(mutated[byte]) ^ (1u << rng.next_below(8)));
    write_file(shards[victim], mutated);

    // The flipped shard is either rejected (checksum/parse/point mismatch)
    // or — if the flip landed outside the checksummed payload — read back
    // with every metric bit-identical. It must never load altered values.
    CheckpointStore reloaded(dir);
    rejected += reloaded.size() < shards.size() ? 1 : 0;
    std::atomic<size_t> runs{0};
    const auto resume_points = make_points(4, &runs);
    const SweepReport resumed = run_sweep(resume_points, options, &reloaded);
    EXPECT_TRUE(resumed.finished()) << trial;
    EXPECT_LE(runs.load(), 1u) << trial;
    EXPECT_EQ(all_fields(resumed), all_fields(straight)) << trial;

    write_file(shards[victim], pristine[victim]);  // heal for the next trial
  }
  // The flips overwhelmingly land inside the checksummed payload; if none
  // were rejected the checksum is not actually being checked.
  EXPECT_GT(rejected, 40u);
}

}  // namespace
}  // namespace ftqc::sim
