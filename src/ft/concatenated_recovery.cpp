#include "ft/concatenated_recovery.h"

#include "common/check.h"
#include "ft/gadget_runner.h"
#include "ft/steane_circuits.h"
#include "ft/steane_recovery.h"
#include "gf2/linalg.h"

namespace ftqc::ft {

namespace {

constexpr uint32_t kData = 0;
constexpr uint32_t kAncA = 49;
constexpr uint32_t kAncB = 98;

}  // namespace

std::array<uint32_t, 7> level2_subblock(uint32_t base, size_t sub) {
  std::array<uint32_t, 7> q{};
  for (uint32_t i = 0; i < 7; ++i) {
    q[i] = base + static_cast<uint32_t>(7 * sub) + i;
  }
  return q;
}

Level2Recovery::Level2Recovery(const sim::NoiseParams& noise,
                               RecoveryPolicy policy, uint64_t seed)
    : frame_(kNumQubits, seed),
      noise_(noise),
      policy_(policy),
      stochastic_(noise),
      injector_(&stochastic_) {
  for (uint32_t q = 0; q < kAncB; ++q) data_and_a_.push_back(q);
  // The scratch ancillas [kScratchA, kNumQubits) are alive only inside the
  // interleaved level-1 cycles, which do their own storage accounting; the
  // level-2 active set stays the three 49-qubit blocks.
  for (uint32_t q = 0; q < kAncB + kBlock; ++q) all_.push_back(q);
}

void Level2Recovery::reset() { frame_.clear(); }

void Level2Recovery::set_injector(NoiseInjector* injector) {
  injector_ = injector != nullptr ? injector : &stochastic_;
}

void Level2Recovery::inject_data(uint32_t q, char pauli) {
  FTQC_CHECK(q < kBlock, "data qubit index out of range");
  switch (pauli) {
    case 'X': frame_.inject_x(q); break;
    case 'Y': frame_.inject_y(q); break;
    case 'Z': frame_.inject_z(q); break;
    default: FTQC_CHECK(false, "inject_data expects X, Y or Z");
  }
}

void Level2Recovery::apply_memory_noise(double p) {
  for (uint32_t q = 0; q < kBlock; ++q) frame_.depolarize1(q, p);
}

sim::Circuit level2_zero_prep(const gf2::Hamming743& hamming,
                              uint32_t base) {
  sim::Circuit c;
  // Seven level-1 |0>_code preparations (built on local qubits 0..6 and
  // remapped onto the subblock).
  static const std::array<uint32_t, 7> kLocal = {0, 1, 2, 3, 4, 5, 6};
  const sim::Circuit local_prep = steane_zero_prep(kLocal);
  for (size_t sub = 0; sub < 7; ++sub) {
    const auto q = level2_subblock(base, sub);
    c.append_circuit(local_prep, std::vector<uint32_t>(q.begin(), q.end()));
  }
  // Fig. 3 at the logical level: pivot the Hamming rows away from the
  // logical-X support {0,1,2}, bitwise-H the pivot subblocks, then
  // transversal XOR fan-outs between subblocks.
  const uint32_t avoid[3] = {0, 1, 2};
  std::vector<bool> avoided(7, false);
  for (uint32_t a : avoid) avoided[a] = true;
  // Re-derive the pivoted rows (same algorithm as steane_zero_prep).
  std::vector<gf2::BitVec> rows;
  for (size_t r = 0; r < 3; ++r) rows.push_back(hamming.check_matrix().row(r));
  std::vector<size_t> pivots;
  size_t next = 0;
  for (size_t col = 0; col < 7 && next < rows.size(); ++col) {
    if (avoided[col]) continue;
    size_t found = rows.size();
    for (size_t r = next; r < rows.size(); ++r) {
      if (rows[r].get(col)) {
        found = r;
        break;
      }
    }
    if (found == rows.size()) continue;
    std::swap(rows[next], rows[found]);
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r != next && rows[r].get(col)) rows[r] ^= rows[next];
    }
    pivots.push_back(col);
    ++next;
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    for (uint32_t q : level2_subblock(base, pivots[r])) c.h(q);  // logical H
  }
  c.tick();
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t col = 0; col < 7; ++col) {
      if (col == pivots[r] || !rows[r].get(col)) continue;
      const auto src = level2_subblock(base, pivots[r]);
      const auto dst = level2_subblock(base, col);
      for (size_t i = 0; i < 7; ++i) c.cx(src[i], dst[i]);  // logical XOR
      c.tick();
    }
  }
  return c;
}

bool Level2Recovery::DecodedSyndrome::any() const {
  if (top.any()) return true;
  for (const auto& s : sub) {
    if (s.any()) return true;
  }
  return false;
}

bool Level2Recovery::DecodedSyndrome::operator==(
    const DecodedSyndrome& other) const {
  if (!(top == other.top)) return false;
  for (size_t i = 0; i < 7; ++i) {
    if (!(sub[i] == other.sub[i])) return false;
  }
  return true;
}

void Level2Recovery::run_subblock_recoveries(uint32_t base) {
  static constexpr std::array<uint32_t, 7> kScrA = {147, 148, 149, 150,
                                                    151, 152, 153};
  static constexpr std::array<uint32_t, 7> kScrB = {154, 155, 156, 157,
                                                    158, 159, 160};
  static_assert(kScrA[0] == kScratchA && kScrB[0] == kScratchB);
  struct SubblockCycle {
    SteaneCycleLayout layout;
    SteaneCycleCircuits circuits;
  };
  // The fault scans replay this gadget ~200k times, so the per-subblock
  // circuits are compiled exactly once per base (thread-safe static init;
  // read-only afterwards).
  static const std::array<std::array<SubblockCycle, 7>, 2> kCycles = [] {
    std::array<std::array<SubblockCycle, 7>, 2> cycles;
    for (const uint32_t b : {kData, kAncA}) {
      for (size_t sub = 0; sub < 7; ++sub) {
        SubblockCycle& cy = cycles[b == kData ? 0 : 1][sub];
        cy.layout = SteaneCycleLayout{level2_subblock(b, sub), kScrA, kScrB};
        cy.circuits = compile_steane_cycle(cy.layout);
      }
    }
    return cycles;
  }();
  FTQC_CHECK(base == kData || base == kAncA,
             "subblock recoveries run on the data block or ancilla A");
  for (const SubblockCycle& cy : kCycles[base == kData ? 0 : 1]) {
    run_steane_cycle(frame_, *injector_, policy_, hamming_, cy.layout,
                     cy.circuits);
  }
}

void Level2Recovery::prepare_verified_zero_ancilla() {
  // Compiled once: identical for every instance (the Hamming code is
  // stateless) and replayed ~200k times by the exhaustive fault scans.
  static const sim::Circuit kPrepA =
      level2_zero_prep(gf2::Hamming743{}, kAncA);
  static const sim::Circuit kPrepB =
      level2_zero_prep(gf2::Hamming743{}, kAncB);
  injector_->on_marker("prep:A");
  run_gadget(frame_, kPrepA, *injector_, data_and_a_);
  injector_->on_marker("prep:A:end");
  if (policy_.level2_discipline == Level2Discipline::kExRec) {
    // Extended rectangle: scrub every ancilla subblock with a level-1
    // recovery before the §3.3 verification, so a fan-out fault pair can no
    // longer seed two subblocks that later defeat the hierarchy.
    injector_->on_marker("exrec:A");
    run_subblock_recoveries(kAncA);
    injector_->on_marker("exrec:A:end");
  }
  if (!policy_.verify_ancilla) return;
  injector_->on_marker("verify");

  int votes_one = 0;
  int rounds = 0;
  static const sim::Circuit kVerifyCnots = [] {
    sim::Circuit cnots;
    for (uint32_t i = 0; i < kBlock; ++i) cnots.cx(kAncA + i, kAncB + i);
    cnots.tick();
    for (uint32_t i = 0; i < kBlock; ++i) cnots.m(kAncB + i);
    cnots.tick();
    return cnots;
  }();
  for (int round = 0; round < policy_.verification_rounds; ++round) {
    run_gadget(frame_, kPrepB, *injector_, all_);
    const auto flips = run_gadget(frame_, kVerifyCnots, *injector_, all_);
    // Hierarchical decode of the measured block.
    gf2::BitVec logicals(7);
    for (size_t sub = 0; sub < 7; ++sub) {
      gf2::BitVec word(7);
      for (size_t i = 0; i < 7; ++i) word.set(i, flips[7 * sub + i] != 0);
      logicals.set(sub, hamming_.decode_logical(word));
    }
    votes_one += hamming_.decode_logical(logicals) ? 1 : 0;
    ++rounds;
    for (uint32_t i = 0; i < kBlock; ++i) frame_.reset(kAncB + i);
  }
  if (votes_one == rounds && rounds > 0) {
    // Logical flip of the level-2 ancilla: logical X on subblocks {0,1,2},
    // each a 3-qubit bitwise NOT on the subblock's logical-X support.
    sim::Circuit fix;
    std::vector<uint32_t> touched;
    for (size_t sub : {size_t{0}, size_t{1}, size_t{2}}) {
      const auto q = level2_subblock(kAncA, sub);
      for (size_t i : {size_t{0}, size_t{1}, size_t{2}}) {
        fix.x(q[i]);
        touched.push_back(q[i]);
      }
    }
    fix.tick();
    run_gadget(frame_, fix, *injector_, data_and_a_);
    for (uint32_t q : touched) frame_.inject_x(q);
  }
  injector_->on_marker("verify:end");
}

Level2Recovery::DecodedSyndrome Level2Recovery::extract_syndrome(
    bool phase_type) {
  prepare_verified_zero_ancilla();
  injector_->on_marker("extract");

  static const std::array<sim::Circuit, 2> kExtract = [] {
    std::array<sim::Circuit, 2> gadgets;
    for (const bool phase : {false, true}) {
      sim::Circuit& gadget = gadgets[phase];
      if (phase) {
        for (uint32_t i = 0; i < kBlock; ++i) gadget.cx(kAncA + i, kData + i);
        gadget.tick();
        for (uint32_t i = 0; i < kBlock; ++i) gadget.mx(kAncA + i);
        gadget.tick();
      } else {
        for (uint32_t i = 0; i < kBlock; ++i) gadget.h(kAncA + i);
        gadget.tick();
        for (uint32_t i = 0; i < kBlock; ++i) gadget.cx(kData + i, kAncA + i);
        gadget.tick();
        for (uint32_t i = 0; i < kBlock; ++i) gadget.m(kAncA + i);
        gadget.tick();
      }
    }
    return gadgets;
  }();
  const auto flips =
      run_gadget(frame_, kExtract[phase_type], *injector_, data_and_a_);
  for (uint32_t i = 0; i < kBlock; ++i) frame_.reset(kAncA + i);
  injector_->on_marker("extract:end");

  // One measurement, both levels (§5): per-subblock Hamming syndromes plus
  // the level-2 syndrome of the subblock logical values.
  DecodedSyndrome out;
  gf2::BitVec logicals(7);
  for (size_t sub = 0; sub < 7; ++sub) {
    gf2::BitVec word(7);
    for (size_t i = 0; i < 7; ++i) word.set(i, flips[7 * sub + i] != 0);
    out.sub[sub] = hamming_.syndrome(word);
    logicals.set(sub, hamming_.decode_logical(word));
  }
  out.top = hamming_.syndrome(logicals);
  return out;
}

void Level2Recovery::correct(bool phase_type, const DecodedSyndrome& syndrome) {
  // With interleaved data recoveries the per-subblock physical errors were
  // already scrubbed between extraction and this point; re-applying the
  // extraction's level-1 corrections would re-inject them, so only the
  // top-level logical fix remains ours to apply.
  const bool delegate_sub_corrections =
      policy_.level2_discipline == Level2Discipline::kExRec &&
      policy_.exrec_data_recoveries;
  sim::Circuit fix;
  std::vector<uint32_t> targets;
  if (!delegate_sub_corrections) {
    // Level-1 corrections: one physical Pauli per flagged subblock.
    for (size_t sub = 0; sub < 7; ++sub) {
      const size_t pos = hamming_.error_position(syndrome.sub[sub]);
      if (pos >= 7) continue;
      const uint32_t q = level2_subblock(kData, sub)[pos];
      if (phase_type) {
        fix.z(q);
      } else {
        fix.x(q);
      }
      targets.push_back(q);
    }
  }
  // Level-2 correction: a logical Pauli on the flagged subblock.
  const size_t bad_sub = hamming_.error_position(syndrome.top);
  if (bad_sub < 7) {
    const auto q = level2_subblock(kData, bad_sub);
    for (size_t i : {size_t{0}, size_t{1}, size_t{2}}) {
      if (phase_type) {
        fix.z(q[i]);
      } else {
        fix.x(q[i]);
      }
      targets.push_back(q[i]);
    }
  }
  if (targets.empty()) return;
  fix.tick();
  std::vector<uint32_t> data_only;
  for (uint32_t q = 0; q < kBlock; ++q) data_only.push_back(q);
  run_gadget(frame_, fix, *injector_, data_only);
  for (uint32_t q : targets) {
    if (phase_type) {
      frame_.inject_z(q);
    } else {
      frame_.inject_x(q);
    }
  }
}

void Level2Recovery::run_cycle() {
  const auto correct_exrec = [this](bool phase_type,
                                    const DecodedSyndrome& syndrome) {
    if (policy_.level2_discipline == Level2Discipline::kExRec &&
        policy_.exrec_data_recoveries) {
      // Optional trailing leg of the extended rectangle: level-1 recoveries
      // on the data subblocks between extraction and correction. They clear
      // the physical errors the extraction saw; correct() then applies the
      // top-level logical fix only.
      injector_->on_marker("exrec:data");
      run_subblock_recoveries(kData);
      injector_->on_marker("exrec:data:end");
    }
    correct(phase_type, syndrome);
  };
  for (const bool phase_type : {false, true}) {
    const DecodedSyndrome syndrome = extract_syndrome(phase_type);
    if (!syndrome.any()) continue;
    if (policy_.repeat_nontrivial_syndrome) {
      const DecodedSyndrome again = extract_syndrome(phase_type);
      if (again == syndrome) correct_exrec(phase_type, syndrome);
    } else {
      correct_exrec(phase_type, syndrome);
    }
  }
}

bool Level2Recovery::hierarchical_decode(bool phase_type) const {
  gf2::BitVec logicals(7);
  for (size_t sub = 0; sub < 7; ++sub) {
    gf2::BitVec word(7);
    for (size_t i = 0; i < 7; ++i) {
      const size_t q = 7 * sub + i;
      word.set(i, phase_type ? frame_.z_frame().get(q) : frame_.x_frame().get(q));
    }
    logicals.set(sub, hamming_.decode_logical(word));
  }
  return hamming_.decode_logical(logicals);
}

bool Level2Recovery::logical_x_error() const {
  return hierarchical_decode(/*phase_type=*/false);
}

bool Level2Recovery::logical_z_error() const {
  return hierarchical_decode(/*phase_type=*/true);
}

}  // namespace ftqc::ft
