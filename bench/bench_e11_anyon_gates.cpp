// E11 (§7.3-7.4): the anyonic gate set. Exchange/pull-through algebra
// (Eqs. 40-41), the topological NOT via v = (14)(35) on u0 = (125),
// u1 = (234) (Eq. 45), charge-interferometer statistics (Fig. 22), and
// universal classical computation by conjugation (Barrington / A5
// nonsolvability).
#include <cstdio>

#include "bench_harness.h"
#include "common/table.h"
#include "topo/anyon_gates.h"
#include "topo/anyon_sim.h"

namespace {
using namespace ftqc;
using namespace ftqc::topo;
}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E11");
  const A5 group;
  std::printf("E11: Aharonov-Bohm quantum logic in the A5 Kitaev model.\n\n");
  std::printf("Group facts: |A5| = %zu, commutator subgroup order = %zu\n",
              group.order(), group.commutator_subgroup().size());
  std::printf("Computational fluxes (Eq. 45): u0 = %s, u1 = %s, NOT flux v = %s\n",
              computational_u0().to_string().c_str(),
              computational_u1().to_string().c_str(),
              not_conjugator().to_string().c_str());
  std::printf("Check: v^-1 u0 v = %s (= u1), v^-1 u1 v = %s (= u0)\n\n",
              computational_u0().conjugated_by(not_conjugator()).to_string().c_str(),
              computational_u1().conjugated_by(not_conjugator()).to_string().c_str());

  // NOT truth table on the anyon simulator.
  ftqc::Table nots({"input", "after NOT", "after NOT NOT"});
  for (const bool in : {false, true}) {
    AnyonSim sim(group, 3 + in);
    const size_t q = create_computational_pair(sim, in);
    apply_topological_not(sim, q);
    const bool once = sim.flux_probability(q, computational_u1()) > 0.5;
    apply_topological_not(sim, q);
    const bool twice = sim.flux_probability(q, computational_u1()) > 0.5;
    nots.add_row({in ? "1" : "0", once ? "1" : "0", twice ? "1" : "0"});
  }
  nots.print();

  // Charge interferometer statistics: flux eigenstate splits 50/50 into |±>,
  // repeated measurement is stable (Fig. 22).
  size_t minus_count = 0, stable = 0;
  const size_t trials = ftqc::bench::scaled(400, 50);
  for (size_t t = 0; t < trials; ++t) {
    AnyonSim sim(group, 100 + t);
    const size_t q = create_computational_pair(sim, false);
    const bool m1 = measure_computational_charge(sim, q);
    const bool m2 = measure_computational_charge(sim, q);
    minus_count += m1;
    stable += (m1 == m2);
  }
  std::printf("\nCharge interferometer on |u0>: P(-) = %.3f (expect 0.5), "
              "repeat agreement = %.3f (expect 1.0)\n",
              static_cast<double>(minus_count) / trials,
              static_cast<double>(stable) / trials);

  // Barrington universality: AND by commutator, Toffoli truth table.
  const auto [wa, wb] = find_commutator_witness(group);
  const Perm comm = wa.inverse() * wb.inverse() * wa * wb;
  std::printf("\nCommutator witness: a = %s, b = %s, [a,b] = %s (a 5-cycle)\n",
              wa.to_string().c_str(), wb.to_string().c_str(),
              comm.to_string().c_str());

  const Perm sigma = Perm::from_cycles({{0, 1, 2, 3, 4}});
  const auto and_prog = BranchingProgram::conjunction(
      group, BranchingProgram::variable(0, sigma),
      BranchingProgram::variable(1, sigma));
  std::printf("AND-by-conjugation program length: %zu instructions\n\n",
              and_prog.length());

  ftqc::Table tof({"a", "b", "c", "AND(a,b)", "c XOR AND(a,b)"});
  const auto c_var = BranchingProgram::variable(2, sigma);
  const auto not_f = BranchingProgram::negation(group, and_prog);
  const auto not_c = BranchingProgram::negation(group, c_var);
  const auto left = BranchingProgram::conjunction(group, c_var, not_f);
  const auto right = BranchingProgram::conjunction(group, not_c, and_prog);
  const auto toffoli = BranchingProgram::negation(
      group, BranchingProgram::conjunction(
                 group, BranchingProgram::negation(group, left),
                 BranchingProgram::negation(group, right)));
  for (int in = 0; in < 8; ++in) {
    const bool a = in & 1, b = in & 2, c = in & 4;
    tof.add_row({a ? "1" : "0", b ? "1" : "0", c ? "1" : "0",
                 and_prog.eval({a, b, c}) ? "1" : "0",
                 toffoli.eval({a, b, c}) ? "1" : "0"});
  }
  tof.print();
  ftqc::bench::JsonResult json;
  json.add("interferometer_trials", trials);
  json.add("p_minus", static_cast<double>(minus_count) / trials);
  json.add("repeat_agreement", static_cast<double>(stable) / trials);
  json.add("and_program_length", and_prog.length());
  json.write();
  std::printf(
      "\nShape check: the NOT is an involution realized purely by a\n"
      "pull-through; charge measurement prepares |±> with the right Born\n"
      "statistics; AND (and hence Toffoli) is computable entirely by\n"
      "conjugation words — the nonsolvability route to universality that\n"
      "§7.4 invokes (Barrington, ref. 66). The unpublished 16-pull-through\n"
      "Ogburn-Preskill Toffoli is replaced by this constructive equivalent;\n"
      "see DESIGN.md.\n");
  return 0;
}
