#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gf2/bitmat.h"
#include "sim/circuit.h"

namespace ftqc::ft {

// Circuit builders for the Steane-code gadgets of §§2-3, parameterized over
// the qubit indices they act on so drivers can place them anywhere in a
// larger register. All builders insert TICKs between parallel layers so the
// storage-noise accounting of §6 applies.

// Generic CSS |0...0>-logical preparation: for each X-stabilizer generator
// (row of hx, pivoted outside `avoid`), Hadamard a pivot qubit and fan XORs
// to the rest of the row's support. With hx = the Hamming check matrix this
// is the ancilla-preparation part of Fig. 3.
[[nodiscard]] sim::Circuit css_zero_prep(const gf2::BitMat& hx,
                                         std::span<const uint32_t> qubits,
                                         std::span<const uint32_t> avoid = {});

// Fig. 3: encode the unknown state on `qubits[input_position]` into the
// Steane block laid out on the seven `qubits`. Uses the Eq. (1) generator
// convention with logical-X support {0,1,2}; input_position must be 0.
[[nodiscard]] sim::Circuit steane_encoder(std::span<const uint32_t> qubits);

// |0>_code preparation on seven qubits (Fig. 3 without the input stage).
[[nodiscard]] sim::Circuit steane_zero_prep(std::span<const uint32_t> qubits);

// Steane-state / |+>_code preparation: |0>_code followed by bitwise H
// (Eq. 17: the equal superposition of all 16 Hamming codewords).
[[nodiscard]] sim::Circuit steane_plus_prep(std::span<const uint32_t> qubits);

// Fig. 2 / Fig. 6-"Bad!": the non-fault-tolerant syndrome circuit that
// reuses ONE ancilla qubit as the target of all four XORs of each
// Z-generator. Measures 3 bit-flip syndrome bits on `ancilla`.
[[nodiscard]] sim::Circuit nonft_bitflip_syndrome(
    std::span<const uint32_t> data, uint32_t ancilla);

// Fig. 6-"Good!" one generator: each of the four XORs targets its own
// ancilla bit (ancillas must hold 4 qubits, prepared in a Shor state by the
// caller); the syndrome bit is the parity of the four measurements.
[[nodiscard]] sim::Circuit shor_syndrome_bit(std::span<const uint32_t> data,
                                             std::span<const uint32_t> ancilla,
                                             const gf2::BitVec& support,
                                             bool x_type);

// Fig. 8: prepare a 4-qubit cat state on `cat` and verify it with the check
// qubit: H, XOR chain, two verification XORs (first and last cat bit into
// `check`), measure `check`. Caller discards on outcome 1. If
// `final_hadamards`, the four H's completing the Shor state are appended.
[[nodiscard]] sim::Circuit cat_prep_with_check(std::span<const uint32_t> cat,
                                               uint32_t check,
                                               bool final_hadamards);

// Transversal XOR between two blocks (Fig. 11).
[[nodiscard]] sim::Circuit transversal_cx(std::span<const uint32_t> source,
                                          std::span<const uint32_t> target);

// Fig. 9 syndrome-extraction gadget, assuming a verified |0>_code already
// sits on `ancilla`. phase_type=false: rotate the ancilla to the Steane
// state (Eq. 17), XOR the data in, measure Z. phase_type=true: XOR the
// ancilla onto the data (Z errors propagate backward), measure X. Shared by
// the serial and batch recovery drivers so their circuits cannot drift.
[[nodiscard]] sim::Circuit steane_syndrome_gadget(
    bool phase_type, std::span<const uint32_t> data,
    std::span<const uint32_t> ancilla);

// Fig. 4 (right): nondestructive encoded-Z measurement by copying the parity
// onto one ancilla via the weight-3 logical-Z support {0,1,2}.
[[nodiscard]] sim::Circuit nondestructive_parity(std::span<const uint32_t> data,
                                                 uint32_t ancilla);

// Fig. 4 (left): destructive measurement — measure every data qubit.
[[nodiscard]] sim::Circuit destructive_measure(std::span<const uint32_t> data);

// Fig. 15: leakage detection. The ancilla ends in |1> for healthy data and
// |0> for leaked data.
[[nodiscard]] sim::Circuit leak_detection(uint32_t data, uint32_t ancilla);

}  // namespace ftqc::ft
