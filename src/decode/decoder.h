#pragma once

#include <memory>

#include "decode/matching.h"
#include "gf2/bitvec.h"
#include "topo/toric_code.h"

namespace ftqc::decode {

// Syndrome -> correction. Implementations own their code geometry; callers
// XOR the returned correction into the error frame and ask the code for the
// residual's logical action. Every decoder in the subsystem is pluggable
// through this interface so benches can A/B strategies shot-for-shot.
class Decoder {
 public:
  virtual ~Decoder() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual gf2::BitVec decode(
      const gf2::BitVec& syndrome) const = 0;
};

// Which half of the toric code's CSS structure a decoder corrects: violated
// plaquettes (magnetic fluxons, X errors, dual-lattice geodesics) or violated
// stars (electric charges, Z errors, primal-lattice geodesics).
enum class ToricSide : uint8_t {
  kPlaquette,
  kStar,
};

// 2D perfect-measurement matching decoder: collects defects from one
// syndrome snapshot, pairs them with the injected strategy under the
// torus-periodic site metric, and toggles a geodesic per pair.
class ToricMatchingDecoder final : public Decoder {
 public:
  ToricMatchingDecoder(const topo::ToricCode& code, ToricSide side,
                       std::shared_ptr<const MatchingStrategy> strategy);

  [[nodiscard]] const char* name() const override;
  [[nodiscard]] gf2::BitVec decode(const gf2::BitVec& syndrome) const override;

  [[nodiscard]] const topo::ToricCode& code() const { return code_; }
  [[nodiscard]] ToricSide side() const { return side_; }
  [[nodiscard]] const MatchingStrategy& strategy() const { return *strategy_; }

 private:
  const topo::ToricCode& code_;
  ToricSide side_;
  std::shared_ptr<const MatchingStrategy> strategy_;
};

}  // namespace ftqc::decode
