#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "pauli/pauli_string.h"
#include "sim/runner.h"
#include "sim/statevector_sim.h"
#include "sim/tableau_sim.h"

namespace ftqc::sim {
namespace {

using pauli::PauliString;

TEST(StateVectorSim, HadamardSuperposition) {
  StateVectorSim sim(1);
  sim.apply_h(0);
  EXPECT_NEAR(std::norm(sim.amplitude(0)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(sim.amplitude(1)), 0.5, 1e-12);
}

TEST(StateVectorSim, ToffoliTruthTable) {
  for (uint64_t in = 0; in < 8; ++in) {
    StateVectorSim sim(3);
    sim.set_state(in);
    sim.apply_ccx(0, 1, 2);
    const uint64_t expect =
        ((in & 3) == 3) ? (in ^ 4) : in;  // z ⊕ xy with x,y = bits 0,1
    EXPECT_NEAR(std::norm(sim.amplitude(expect)), 1.0, 1e-12) << "in=" << in;
  }
}

TEST(StateVectorSim, CCZPhasesOnlyAllOnes) {
  StateVectorSim sim(3);
  // uniform superposition
  for (size_t q = 0; q < 3; ++q) sim.apply_h(q);
  sim.apply_ccz(0, 1, 2);
  for (uint64_t i = 0; i < 8; ++i) {
    const double expected_sign = (i == 7) ? -1.0 : 1.0;
    EXPECT_NEAR(sim.amplitude(i).real(), expected_sign / std::sqrt(8.0), 1e-12);
  }
}

TEST(StateVectorSim, ToffoliEqualsHCCZH) {
  StateVectorSim a(3, 1);
  StateVectorSim b(3, 1);
  for (size_t q = 0; q < 3; ++q) {
    a.apply_h(q);
    b.apply_h(q);
  }
  a.apply_ccx(0, 1, 2);
  b.apply_h(2);
  b.apply_ccz(0, 1, 2);
  b.apply_h(2);
  EXPECT_NEAR(a.fidelity_with(b), 1.0, 1e-12);
}

TEST(StateVectorSim, RzPhases) {
  StateVectorSim sim(1);
  sim.apply_h(0);
  sim.apply_rz(0, M_PI);  // RZ(pi) = -iZ up to global phase
  sim.apply_h(0);
  // H RZ(pi) H |0> = X-ish: should be |1> up to phase
  EXPECT_NEAR(std::norm(sim.amplitude(1)), 1.0, 1e-12);
}

TEST(StateVectorSim, RxSmallAngleErrorProbability) {
  // The systematic-error model of §6/E9: RX(theta) on |0> leaves
  // P(1) = sin^2(theta/2).
  const double theta = 0.02;
  StateVectorSim sim(1);
  sim.apply_rx(0, theta);
  EXPECT_NEAR(sim.prob_one(0), std::pow(std::sin(theta / 2), 2), 1e-12);
}

TEST(StateVectorSim, MeasureCollapsesAndNormalizes) {
  StateVectorSim sim(2, 5);
  sim.apply_h(0);
  sim.apply_cx(0, 1);
  const bool m0 = sim.measure_z(0);
  EXPECT_NEAR(sim.norm(), 1.0, 1e-12);
  EXPECT_EQ(sim.measure_z(1), m0);  // Bell correlation
}

TEST(StateVectorSim, MeasurePauliOnBellState) {
  StateVectorSim sim(2, 7);
  sim.apply_h(0);
  sim.apply_cx(0, 1);
  EXPECT_NEAR(sim.expectation_pauli(PauliString::from_string("XX")), 1.0, 1e-12);
  EXPECT_NEAR(sim.expectation_pauli(PauliString::from_string("ZZ")), 1.0, 1e-12);
  EXPECT_NEAR(sim.expectation_pauli(PauliString::from_string("YY")), -1.0, 1e-12);
  EXPECT_NEAR(sim.expectation_pauli(PauliString::from_string("ZI")), 0.0, 1e-12);
  EXPECT_FALSE(sim.measure_pauli(PauliString::from_string("XX")));  // +1 branch
}

TEST(StateVectorSim, PauliPhaseConvention) {
  // Y|0> = i|1>.
  StateVectorSim sim(1);
  sim.apply_y(0);
  EXPECT_NEAR(std::abs(sim.amplitude(1) - std::complex<double>(0, 1)), 0.0,
              1e-12);
}

// Cross-validation: random Clifford circuits agree between the tableau and
// state-vector engines on every stabilizer expectation value.
class CliffordCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(CliffordCrossValidation, RandomCircuitsAgree) {
  const uint64_t seed = 1000 + static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  const size_t n = 2 + rng.next_below(4);  // 2..5 qubits
  TableauSim tab(n, seed);
  StateVectorSim vec(n, seed);

  // Random Clifford circuit of 40 gates.
  for (int step = 0; step < 40; ++step) {
    switch (rng.next_below(6)) {
      case 0: {
        const size_t q = rng.next_below(n);
        tab.apply_h(q);
        vec.apply_h(q);
        break;
      }
      case 1: {
        const size_t q = rng.next_below(n);
        tab.apply_s(q);
        vec.apply_s(q);
        break;
      }
      case 2: {
        const size_t q = rng.next_below(n);
        tab.apply_s_dag(q);
        vec.apply_s_dag(q);
        break;
      }
      case 3: {
        const size_t q = rng.next_below(n);
        tab.apply_x(q);
        vec.apply_x(q);
        break;
      }
      case 4: {
        const size_t q = rng.next_below(n);
        tab.apply_y(q);
        vec.apply_y(q);
        break;
      }
      default: {
        const size_t a = rng.next_below(n);
        size_t b = rng.next_below(n);
        while (b == a) b = rng.next_below(n);
        tab.apply_cx(a, b);
        vec.apply_cx(a, b);
        break;
      }
    }
  }

  // Every tableau stabilizer must have expectation +1 (resp. -1 with sign)
  // in the state vector.
  for (size_t i = 0; i < n; ++i) {
    const auto stab = tab.stabilizer(i);
    PauliString unsigned_stab = stab;
    unsigned_stab.set_phase_exponent(0);
    const double expect = vec.expectation_pauli(unsigned_stab);
    const double sign = stab.phase_exponent() == 2 ? -1.0 : 1.0;
    EXPECT_NEAR(expect, sign, 1e-9) << "stabilizer " << stab.to_string();
  }

  // Random Pauli expectations must agree: deterministic peeks match the
  // state vector; random peeks have expectation 0.
  for (int trial = 0; trial < 10; ++trial) {
    PauliString p(n);
    for (size_t q = 0; q < n; ++q) {
      const char chars[] = {'I', 'X', 'Y', 'Z'};
      p.set_pauli(q, chars[rng.next_below(4)]);
    }
    const auto peek = tab.peek_pauli(p);
    const double expect = vec.expectation_pauli(p);
    if (peek.has_value()) {
      EXPECT_NEAR(expect, *peek ? -1.0 : 1.0, 1e-9) << p.to_string();
    } else {
      EXPECT_NEAR(expect, 0.0, 1e-9) << p.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CliffordCrossValidation, ::testing::Range(0, 20));

TEST(RunnerStateVector, ConditionalToffoliCircuit) {
  // Measurement-conditioned X, as used inside the Fig. 13 gadget.
  Circuit c(2);
  c.h(0);
  const int32_t m = c.m(0);
  c.x(1, m);
  c.m(1);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    StateVectorSim sim(2, seed);
    const auto record = run_circuit(sim, c);
    EXPECT_EQ(record[0], record[1]);
  }
}

}  // namespace
}  // namespace ftqc::sim
