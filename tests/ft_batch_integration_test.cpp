// Batch-vs-serial pins for the level-2 exRec cycle and the cat-retry
// recovery paths: (a) noiseless injected-error patterns must decode
// bit-for-bit identically on every lane, for both level-2 disciplines and
// both cat-retry drivers; (b) stochastic failure estimates must agree
// within one combined standard error over >= 4k shots; (c) the batched
// retry loop's cap-exhaustion edge case must surface in the abort mask
// instead of silently passing as verified.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "codes/library.h"
#include "ft/batch_level2.h"
#include "ft/batch_shor.h"
#include "ft/concatenated_recovery.h"
#include "ft/generic_recovery.h"
#include "ft/shor_recovery.h"
#include "sim/noise_model.h"
#include "threshold/pseudothreshold.h"

namespace ftqc::ft {
namespace {

const sim::NoiseParams kNoiseless;

RecoveryPolicy policy_for(Level2Discipline discipline,
                          bool data_recoveries = false) {
  RecoveryPolicy policy;
  policy.level2_discipline = discipline;
  policy.exrec_data_recoveries = data_recoveries;
  return policy;
}

// Noiseless cycles are deterministic (gauge draws never touch the data
// block), so every lane must agree with a serial reference run.
void expect_level2_matches_serial(const RecoveryPolicy& policy,
                                  const std::vector<std::pair<uint32_t, char>>&
                                      injections) {
  Level2Recovery serial(kNoiseless, policy, /*seed=*/1);
  for (const auto& [q, p] : injections) serial.inject_data(q, p);
  serial.run_cycle();

  BatchLevel2Recovery batch(kNoiseless, policy, /*shots=*/128, /*seed=*/77);
  for (const auto& [q, p] : injections) batch.inject_data(q, p);
  batch.run_cycle();

  for (size_t shot : {size_t{0}, size_t{63}, size_t{64}, size_t{127}}) {
    EXPECT_EQ(batch.logical_x_error(shot), serial.logical_x_error())
        << "shot " << shot;
    EXPECT_EQ(batch.logical_z_error(shot), serial.logical_z_error())
        << "shot " << shot;
  }
  const uint64_t expected = serial.any_logical_error() ? batch.num_shots() : 0u;
  EXPECT_EQ(batch.count_any_logical_error(), expected);
}

TEST(BatchLevel2Pins, NoiselessPatternsMatchSerialBareDiscipline) {
  const auto policy = policy_for(Level2Discipline::kBare);
  for (const char pauli : {'X', 'Z'}) {
    // Single errors across subblocks; the hierarchy must clean all of them.
    for (uint32_t q : {0u, 6u, 7u, 24u, 48u}) {
      expect_level2_matches_serial(policy, {{q, pauli}});
    }
  }
  // Pairs within one subblock (level-1 miscorrection -> level-2 catches)
  // and across subblocks (the §5 failure channel).
  expect_level2_matches_serial(policy, {{0, 'X'}, {1, 'X'}});
  expect_level2_matches_serial(policy, {{0, 'Z'}, {1, 'Z'}});
  expect_level2_matches_serial(policy, {{3, 'X'}, {10, 'X'}});
  expect_level2_matches_serial(policy, {{5, 'Z'}, {47, 'Z'}});
  expect_level2_matches_serial(policy, {{2, 'X'}, {2, 'Z'}});
  expect_level2_matches_serial(
      policy, {{0, 'X'}, {1, 'X'}, {7, 'X'}, {8, 'X'}, {14, 'X'}, {15, 'X'}});
}

TEST(BatchLevel2Pins, NoiselessPatternsMatchSerialExRecDiscipline) {
  const auto policy = policy_for(Level2Discipline::kExRec);
  for (const char pauli : {'X', 'Z'}) {
    for (uint32_t q : {0u, 7u, 30u, 48u}) {
      expect_level2_matches_serial(policy, {{q, pauli}});
    }
  }
  expect_level2_matches_serial(policy, {{0, 'X'}, {1, 'X'}});
  expect_level2_matches_serial(policy, {{5, 'Z'}, {47, 'Z'}});
  expect_level2_matches_serial(policy, {{12, 'X'}, {12, 'Z'}});
}

TEST(BatchLevel2Pins, NoiselessPatternsMatchSerialExRecDataRecoveries) {
  const auto policy = policy_for(Level2Discipline::kExRec,
                                 /*data_recoveries=*/true);
  for (uint32_t q : {0u, 20u, 48u}) {
    expect_level2_matches_serial(policy, {{q, 'X'}});
    expect_level2_matches_serial(policy, {{q, 'Z'}});
  }
  expect_level2_matches_serial(policy, {{0, 'X'}, {8, 'X'}});
}

// Stochastic agreement with the serial engine: both estimates target the
// same failure probability, so with the pinned seeds the difference must
// sit within one combined binomial standard error (a semantics bug shows
// up as tens of sigma; the seeds are fixed, so this is deterministic).
void expect_level2_statistics_match(Level2Discipline discipline, double eps,
                                    size_t shots, uint64_t serial_seed,
                                    uint64_t batch_seed) {
  const auto noise = sim::NoiseParams::uniform_gate(eps);
  const auto policy = policy_for(discipline);
  size_t serial_failures = 0;
  for (size_t s = 0; s < shots; ++s) {
    Level2Recovery rec(noise, policy, serial_seed + 11 * s);
    rec.run_cycle();
    serial_failures += rec.any_logical_error() ? 1 : 0;
  }
  BatchLevel2Recovery batch(noise, policy, shots, batch_seed);
  batch.run_cycle();
  const double n = static_cast<double>(shots);
  const double pf = static_cast<double>(serial_failures) / n;
  const double pb =
      static_cast<double>(batch.count_any_logical_error(shots)) / n;
  EXPECT_GT(pf, 0.01);  // the point is alive at this eps
  const double se = std::sqrt(pf * (1 - pf) / n + pb * (1 - pb) / n);
  EXPECT_LE(std::fabs(pf - pb), 1.0 * se)
      << "serial " << pf << " vs batch " << pb << " (se " << se << ")";
}

TEST(BatchLevel2Pins, FailureRateMatchesSerialBare) {
  expect_level2_statistics_match(Level2Discipline::kBare, 4e-3, 4096,
                                 /*serial_seed=*/3, /*batch_seed=*/41);
}

TEST(BatchLevel2Pins, FailureRateMatchesSerialExRec) {
  expect_level2_statistics_match(Level2Discipline::kExRec, 4e-3, 4096,
                                 /*serial_seed=*/5, /*batch_seed=*/37);
}

// --- Shor cat-retry path ----------------------------------------------------

void expect_shor_matches_serial(const std::vector<std::pair<uint32_t, char>>&
                                    injections) {
  ShorRecovery serial(kNoiseless, RecoveryPolicy{}, /*seed=*/1);
  for (const auto& [q, p] : injections) serial.inject_data(q, p);
  serial.run_cycle();

  BatchShorRecovery batch(kNoiseless, RecoveryPolicy{}, /*shots=*/128,
                          /*seed=*/77);
  for (const auto& [q, p] : injections) batch.inject_data(q, p);
  batch.run_cycle();

  EXPECT_EQ(batch.cats_discarded(), 0u);
  EXPECT_EQ(batch.count_retry_exhausted(), 0u);
  for (size_t shot : {size_t{0}, size_t{63}, size_t{64}, size_t{127}}) {
    EXPECT_EQ(batch.logical_x_error(shot), serial.logical_x_error())
        << "shot " << shot;
    EXPECT_EQ(batch.logical_z_error(shot), serial.logical_z_error())
        << "shot " << shot;
  }
  const uint64_t expected = serial.any_logical_error() ? batch.num_shots() : 0u;
  EXPECT_EQ(batch.count_any_logical_error(), expected);
}

TEST(BatchShorPins, NoiselessPatternsMatchSerial) {
  for (const char pauli : {'X', 'Y', 'Z'}) {
    for (uint32_t q = 0; q < 7; ++q) {
      expect_shor_matches_serial({{q, pauli}});
    }
  }
  for (uint32_t qa = 0; qa < 7; ++qa) {
    for (uint32_t qb = qa + 1; qb < 7; ++qb) {
      expect_shor_matches_serial({{qa, 'X'}, {qb, 'X'}});
      expect_shor_matches_serial({{qa, 'Z'}, {qb, 'Z'}});
      expect_shor_matches_serial({{qa, 'X'}, {qb, 'Z'}});
    }
  }
}

// The threshold driver now dispatches kShor to BatchShorRecovery; the two
// engines must agree statistically through the shared path.
TEST(BatchShorPins, FailureRateMatchesSerialEngine) {
  const double eps = 8e-3;
  const size_t shots = 4096;
  const auto serial = threshold::measure_cycle_failure(
      threshold::RecoveryMethod::kShor, eps, shots, /*seed=*/3, 0.0,
      sim::ShotEngine::kFrame);
  const auto batch = threshold::measure_cycle_failure(
      threshold::RecoveryMethod::kShor, eps, shots, /*seed=*/83, 0.0,
      sim::ShotEngine::kBatch);
  const double pf = serial.failures.mean();
  const double pb = batch.failures.mean();
  EXPECT_GT(pf, 0.005);  // the point is alive at this eps
  const double n = static_cast<double>(shots);
  const double se = std::sqrt(pf * (1 - pf) / n + pb * (1 - pb) / n);
  EXPECT_LE(std::fabs(pf - pb), 1.0 * se)
      << "frame " << pf << " vs batch " << pb << " (se " << se << ")";
}

// Regression for the retry-cap edge case: with every cat verification
// forced to fail (measurement error probability 1 flips the check readout
// on every attempt), lanes must surface in the abort/postselection mask —
// not silently pass as verified.
TEST(BatchShorPins, RetryCapExhaustionSurfacesInAbortMask) {
  sim::NoiseParams always_fail;
  always_fail.eps_meas = 1.0;
  RecoveryPolicy policy;
  BatchShorRecovery rec(always_fail, policy, /*shots=*/128, /*seed=*/5);
  rec.run_cycle();
  EXPECT_EQ(rec.count_retry_exhausted(), rec.num_shots());
  EXPECT_EQ(rec.frames().num_kept(), 0u);
  // Every lane burned the full retry budget on every cat preparation: 6
  // generator measurements (+ repeats) x max_cat_attempts discards/lane.
  EXPECT_GE(rec.cats_discarded(),
            static_cast<uint64_t>(policy.max_cat_attempts) * 6 *
                rec.num_shots());
}

TEST(BatchShorPins, RetryLoopDiscardStatisticsMatchSerial) {
  // At a noise level where discards are common, the summed discard counter
  // must agree with the serial loop's within a few standard errors.
  const auto noise = sim::NoiseParams::uniform_gate(0.02);
  const size_t shots = 2048;
  uint64_t serial_discards = 0;
  for (size_t s = 0; s < shots; ++s) {
    ShorRecovery rec(noise, RecoveryPolicy{}, 100 + 7 * s);
    rec.run_cycle();
    serial_discards += rec.cats_discarded();
  }
  BatchShorRecovery batch(noise, RecoveryPolicy{}, shots, /*seed=*/42);
  batch.run_cycle();
  const double per_shot_serial =
      static_cast<double>(serial_discards) / static_cast<double>(shots);
  const double per_shot_batch = static_cast<double>(batch.cats_discarded()) /
                                static_cast<double>(shots);
  EXPECT_GT(per_shot_serial, 0.1);
  EXPECT_NEAR(per_shot_batch, per_shot_serial, 0.25 * per_shot_serial);
}

// --- Generic (arbitrary stabilizer code) cat-retry path ---------------------

void expect_generic_matches_serial(const codes::StabilizerCode& code,
                                   uint32_t q, char pauli) {
  GenericShorRecovery serial(code, kNoiseless, RecoveryPolicy{}, /*seed=*/3);
  serial.inject_data(q, pauli);
  serial.run_cycle();

  BatchGenericShorRecovery batch(code, kNoiseless, RecoveryPolicy{},
                                 /*shots=*/128, /*seed=*/77);
  batch.inject_data(q, pauli);
  batch.run_cycle();

  for (size_t shot : {size_t{0}, size_t{63}, size_t{64}, size_t{127}}) {
    EXPECT_EQ(batch.any_logical_error(shot), serial.any_logical_error())
        << code.n() << "-qubit code, " << pauli << q << " shot " << shot;
  }
}

TEST(BatchGenericPins, NoiselessSingleErrorsMatchSerialOnLibraryCodes) {
  for (const auto* code : {&codes::five_qubit(), &codes::steane()}) {
    for (uint32_t q = 0; q < code->n(); ++q) {
      for (const char pauli : {'X', 'Y', 'Z'}) {
        expect_generic_matches_serial(*code, q, pauli);
      }
    }
  }
}

TEST(BatchGenericPins, NoiselessCycleCleanAndDeterministic) {
  const auto& code = codes::hamming15();
  BatchGenericShorRecovery a(code, kNoiseless, RecoveryPolicy{}, 128, 9);
  BatchGenericShorRecovery b(code, kNoiseless, RecoveryPolicy{}, 128, 9);
  a.run_cycle();
  b.run_cycle();
  EXPECT_EQ(a.count_any_logical_error(), 0u);
  for (size_t shot = 0; shot < a.num_shots(); ++shot) {
    ASSERT_EQ(a.any_logical_error(shot), b.any_logical_error(shot)) << shot;
  }
}

TEST(BatchGenericPins, FailureRateMatchesSerialOnFiveQubitCode) {
  const auto& code = codes::five_qubit();
  const auto noise = sim::NoiseParams::uniform_gate(8e-3);
  const size_t shots = 4096;
  size_t serial_failures = 0;
  for (size_t s = 0; s < shots; ++s) {
    GenericShorRecovery rec(code, noise, RecoveryPolicy{}, 1000 + 13 * s);
    rec.run_cycle();
    serial_failures += rec.any_logical_error() ? 1 : 0;
  }
  BatchGenericShorRecovery batch(code, noise, RecoveryPolicy{}, shots,
                                 /*seed=*/29);
  batch.run_cycle();
  const double n = static_cast<double>(shots);
  const double pf = static_cast<double>(serial_failures) / n;
  const double pb =
      static_cast<double>(batch.count_any_logical_error(shots)) / n;
  EXPECT_GT(pf, 0.005);
  const double se = std::sqrt(pf * (1 - pf) / n + pb * (1 - pb) / n);
  EXPECT_LE(std::fabs(pf - pb), 1.0 * se)
      << "serial " << pf << " vs batch " << pb << " (se " << se << ")";
}

}  // namespace
}  // namespace ftqc::ft
