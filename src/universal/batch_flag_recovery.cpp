#include "universal/batch_flag_recovery.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/errors.h"
#include "sim/simd.h"

namespace ftqc::universal {

using pauli::PauliString;

BatchFlagRecovery::BatchFlagRecovery(const codes::StabilizerCode& code,
                                     const sim::NoiseParams& noise,
                                     ft::RecoveryPolicy policy, size_t shots,
                                     uint64_t seed)
    : code_(code),
      table_(code),
      decoder_(code),
      sim_(code.n() + 2, shots, seed),
      gadgets_(sim_, noise),
      noise_(noise),
      policy_(policy),
      words_(sim_.num_words()),
      ancilla_(static_cast<uint32_t>(code.n())),
      flag_(static_cast<uint32_t>(code.n()) + 1) {
  if (noise.p_leak > 0) {
    throw UnsupportedChannel("BatchFlagRecovery", "p_leak > 0",
                             "FlagRecovery");
  }
  for (uint32_t q = 0; q < flag_ + 1; ++q) all_qubits_.push_back(q);
  for (uint32_t q = 0; q < ancilla_ + 1; ++q) noflag_qubits_.push_back(q);
  for (size_t g = 0; g < code.num_generators(); ++g) {
    const auto& order = table_.order(g);
    flagged_gadgets_.push_back(flag_extraction_circuit(
        code.generators()[g], order, ancilla_, flag_, /*flagged=*/true));
    unflagged_gadgets_.push_back(flag_extraction_circuit(
        code.generators()[g], order, ancilla_, flag_, /*flagged=*/false));
  }
}

void BatchFlagRecovery::reset() {
  sim_.clear();
  flags_raised_ = 0;
}

void BatchFlagRecovery::inject_data(uint32_t q, char pauli) {
  FTQC_CHECK(q < code_.n(), "data qubit index out of range");
  switch (pauli) {
    case 'X': sim_.inject_x(q); break;
    case 'Y': sim_.inject_y(q); break;
    case 'Z': sim_.inject_z(q); break;
    default: FTQC_CHECK(false, "inject_data expects X, Y or Z");
  }
}

void BatchFlagRecovery::apply_memory_noise(double p) {
  for (uint32_t q = 0; q < code_.n(); ++q) sim_.depolarize1(q, p);
}

void BatchFlagRecovery::measure_unflagged(size_t g, const uint64_t* active,
                                          uint64_t* out) {
  const auto rows = gadgets_.run(unflagged_gadgets_[g], noflag_qubits_, active);
  FTQC_CHECK(rows.size() == 1, "unflagged comb reads the ancilla");
  std::copy_n(sim_.record().row(rows[0]), words_, out);
  sim_.reset(ancilla_);
  sim_.reset(flag_);
}

void BatchFlagRecovery::apply_group_correction(const PauliString& correction,
                                               const uint64_t* mask) {
  if (correction.is_identity()) return;
  // Mirrors the serial fix gadget: gate noise on each corrected qubit,
  // storage noise on the resting data qubits, then the frame shift (the
  // noiseless reference never corrects).
  for (size_t q = 0; q < code_.n(); ++q) {
    if (correction.pauli_at(q) != 'I') {
      ft::batch_on_gate1(sim_, noise_, static_cast<uint32_t>(q), mask);
    }
  }
  for (size_t q = 0; q < code_.n(); ++q) {
    if (correction.pauli_at(q) == 'I') {
      ft::batch_on_storage(sim_, noise_, static_cast<uint32_t>(q), mask);
    }
  }
  for (size_t q = 0; q < code_.n(); ++q) {
    switch (correction.pauli_at(q)) {
      case 'X': sim_.inject_x_masked(q, mask); break;
      case 'Y': sim_.inject_y_masked(q, mask); break;
      case 'Z': sim_.inject_z_masked(q, mask); break;
      default: break;
    }
  }
}

void BatchFlagRecovery::correct_flagged(const std::vector<uint64_t>& flag_rows,
                                        const uint64_t* syndrome_rows,
                                        const uint64_t* flagged_mask) {
  const size_t num_gen = code_.num_generators();
  // Gather the flagged lanes by (first fired generator, follow-up
  // syndrome); each distinct key decodes exactly once. Flagged lanes are
  // O(num_gen * eps) sparse, so the per-lane bit reads are cheap.
  std::map<std::pair<uint32_t, uint64_t>, std::vector<uint64_t>> groups;
  for (size_t w = 0; w < words_; ++w) {
    uint64_t lanes = flagged_mask[w];
    while (lanes != 0) {
      const int lane = __builtin_ctzll(lanes);
      lanes &= lanes - 1;
      uint32_t first = 0;
      while ((flag_rows[first * words_ + w] >> lane & 1u) == 0) ++first;
      uint64_t value = 0;
      for (size_t g = 0; g < num_gen; ++g) {
        value |= uint64_t{syndrome_rows[g * words_ + w] >> lane & 1u} << g;
      }
      auto [it, inserted] = groups.try_emplace({first, value});
      if (inserted) it->second.assign(words_, 0);
      it->second[w] |= uint64_t{1} << lane;
    }
  }
  for (const auto& [key, mask] : groups) {
    gf2::BitVec syndrome(num_gen);
    for (size_t g = 0; g < num_gen; ++g) syndrome.set(g, (key.second >> g) & 1u);
    const PauliString* flagged = table_.decode(key.first, syndrome);
    apply_group_correction(
        flagged != nullptr ? *flagged : decoder_.decode(syndrome), mask.data());
  }
}

void BatchFlagRecovery::run_cycle() {
  const size_t num_gen = code_.num_generators();
  FTQC_CHECK(num_gen <= 64, "syndrome gather packs into one word");
  // Round 1: flagged combs on every lane.
  std::vector<uint64_t> syn1(num_gen * words_), flag_rows(num_gen * words_);
  std::vector<uint64_t> flagged(words_, 0);
  for (size_t g = 0; g < num_gen; ++g) {
    const auto rows =
        gadgets_.run(flagged_gadgets_[g], all_qubits_, /*lane_mask=*/nullptr);
    FTQC_CHECK(rows.size() == 2, "flagged comb reads ancilla + flag");
    std::copy_n(sim_.record().row(rows[0]), words_, &syn1[g * words_]);
    std::copy_n(sim_.record().row(rows[1]), words_, &flag_rows[g * words_]);
    sim_.reset(ancilla_);
    sim_.reset(flag_);
    sim::simd::or_into(flagged.data(), &flag_rows[g * words_], words_);
    flags_raised_ +=
        ft::batch_count_lanes(&flag_rows[g * words_], words_, sim_.num_shots());
  }
  if (ft::batch_any_lane(flagged.data(), words_)) {
    // Clean re-extraction, then the flag-conditioned decode, on the flagged
    // lanes only.
    std::vector<uint64_t> syn2(num_gen * words_);
    for (size_t g = 0; g < num_gen; ++g) {
      measure_unflagged(g, flagged.data(), &syn2[g * words_]);
    }
    correct_flagged(flag_rows, syn2.data(), flagged.data());
  }
  // Unflagged lanes: the ordinary §3.4 repeat policy, with round 1's
  // syndrome as the first reading.
  std::vector<uint64_t> unflagged(words_);
  for (size_t w = 0; w < words_; ++w) unflagged[w] = ~flagged[w];
  bool first_call = true;
  ft::run_batch_repeat_policy(
      num_gen, words_, policy_.repeat_nontrivial_syndrome, unflagged.data(),
      [&](const uint64_t* mask, uint64_t* out) {
        if (first_call) {
          first_call = false;
          std::copy(syn1.begin(), syn1.end(), out);
          return;
        }
        for (size_t g = 0; g < num_gen; ++g) {
          measure_unflagged(g, mask, out + g * words_);
        }
      },
      [&](const uint64_t* syn, const uint64_t* act) {
        // Gather-decode through the plain lookup table (no flag fired).
        std::map<uint64_t, std::vector<uint64_t>> groups;
        for (size_t w = 0; w < words_; ++w) {
          uint64_t lanes = act[w];
          while (lanes != 0) {
            const int lane = __builtin_ctzll(lanes);
            lanes &= lanes - 1;
            uint64_t value = 0;
            for (size_t g = 0; g < num_gen; ++g) {
              value |= uint64_t{syn[g * words_ + w] >> lane & 1u} << g;
            }
            auto [it, inserted] = groups.try_emplace(value);
            if (inserted) it->second.assign(words_, 0);
            it->second[w] |= uint64_t{1} << lane;
          }
        }
        for (const auto& [value, mask] : groups) {
          gf2::BitVec syndrome(num_gen);
          for (size_t g = 0; g < num_gen; ++g) {
            syndrome.set(g, (value >> g) & 1u);
          }
          apply_group_correction(decoder_.decode(syndrome), mask.data());
        }
      });
}

PauliString BatchFlagRecovery::residual(size_t shot) const {
  PauliString r(code_.n());
  for (size_t q = 0; q < code_.n(); ++q) {
    r.set_x(q, sim_.x_flip(q, shot));
    r.set_z(q, sim_.z_flip(q, shot));
  }
  return r;
}

bool BatchFlagRecovery::any_logical_error(size_t shot) const {
  return decoder_.residual_effect(residual(shot)).any();
}

uint64_t BatchFlagRecovery::count_any_logical_error(size_t num_lanes) const {
  const size_t lanes = std::min(num_lanes, sim_.num_shots());
  uint64_t count = 0;
  for (size_t shot = 0; shot < lanes; ++shot) {
    count += any_logical_error(shot) ? 1 : 0;
  }
  return count;
}

}  // namespace ftqc::universal
