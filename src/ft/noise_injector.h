#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/frame_sim.h"
#include "sim/noise_model.h"

namespace ftqc::ft {

// Where a fault can strike during a fault-tolerant gadget. The recovery
// drivers announce every opportunity to an injector; the injector decides
// whether (and which) Pauli lands. Two implementations:
//  * StochasticInjector — samples the §6 error model (Monte Carlo runs);
//  * FaultPointInjector — deterministically injects chosen faults at chosen
//    locations (the exhaustive O(ε)/O(ε²) analysis of §3: "consider
//    systematically all the possible ways that recovery might fail").
enum class LocationKind : uint8_t {
  kGate1,    // after a 1-qubit gate: X, Y or Z (3 variants)
  kGate2,    // after a 2-qubit gate: 15 two-qubit Pauli variants
  kPrep,     // faulty |0> preparation: X (1 variant)
  kMeas,     // measurement flip (1 variant)
  kStorage,  // resting qubit, per time step: X, Y or Z (3 variants)
};

[[nodiscard]] constexpr int location_variants(LocationKind kind) {
  switch (kind) {
    case LocationKind::kGate1: return 3;
    case LocationKind::kGate2: return 15;
    case LocationKind::kPrep: return 1;
    case LocationKind::kMeas: return 1;
    case LocationKind::kStorage: return 3;
  }
  return 0;
}

// Probability weight of one variant, conditioned on the location faulting
// (variants of a location are equiprobable under the §6 model).
[[nodiscard]] constexpr double variant_weight(LocationKind kind) {
  return 1.0 / location_variants(kind);
}

// Conditional variant weight under a biased Pauli channel with axis
// fractions (fx, fy, fz): kGate1/kStorage variants 0..2 weigh fx/fy/fz,
// kGate2 variants follow the per-qubit (1, 3fx, 3fy, 3fz)/4 product
// conditioned on not-II (exactly StochasticInjector's sampling law), and
// prep/meas flips are bias-blind. Reduces to variant_weight(kind) at
// fx = fy = fz = 1/3. Weighted DEM builds (ToricDem) use this to turn a
// bias into asymmetric decoder edge probabilities.
[[nodiscard]] double biased_variant_weight(LocationKind kind, int variant,
                                           double fx, double fy, double fz);

// Shared variant semantics: every injector that realizes enumerated faults
// (FaultPointInjector replays, the Bernoulli proposal injector behind the
// rare-event sampler) applies variants through these, so "variant v at a
// kind-K location" names the same physical error everywhere.
//
// 1-qubit fault (kGate1/kStorage): variant 0..2 = X, Y, Z.
void inject_pauli1_fault(sim::FrameSim& sim, uint32_t q, int variant);
// 2-qubit fault (kGate2): variant 0..14; variant+1 encodes (code_a, code_b)
// in base 4 with 1=X, 2=Z, 3=Y per qubit (00 excluded — that is "no fault").
void inject_pauli2_fault(sim::FrameSim& sim, uint32_t a, uint32_t b,
                         int variant);
// Faulty |0> preparation flips the prepared qubit.
void inject_prep_fault(sim::FrameSim& sim, uint32_t q);
// Faulty measurement is a basis-appropriate flip of the outcome.
void inject_meas_fault(sim::FrameSim& sim, uint32_t q, bool x_basis);

class NoiseInjector {
 public:
  virtual ~NoiseInjector() = default;
  virtual void on_gate1(sim::FrameSim& sim, uint32_t q) = 0;
  virtual void on_gate2(sim::FrameSim& sim, uint32_t a, uint32_t b) = 0;
  virtual void on_prep(sim::FrameSim& sim, uint32_t q) = 0;
  // Called just before a measurement; a faulty measurement is modelled as a
  // basis-appropriate flip of the outcome.
  virtual void on_meas(sim::FrameSim& sim, uint32_t q, bool x_basis) = 0;
  virtual void on_storage(sim::FrameSim& sim, uint32_t q) = 0;
  // Span boundary announcement: gadget drivers name the sub-gadget that is
  // about to run (e.g. "prep:A", "exrec:A") so fault scans can be windowed
  // onto it. Not a fault opportunity; stochastic injectors ignore it.
  virtual void on_marker(std::string_view label) { (void)label; }
};

// Samples the stochastic model: every hook is an independent Bernoulli draw
// using the FrameSim's own RNG.
class StochasticInjector final : public NoiseInjector {
 public:
  explicit StochasticInjector(const sim::NoiseParams& params) : params_(params) {}

  void on_gate1(sim::FrameSim& sim, uint32_t q) override {
    pauli1(sim, q, params_.eps_gate1);
    if (params_.p_erase > 0) sim.erase_error(q, params_.p_erase);
    if (params_.p_leak > 0) sim.leak_error(q, params_.p_leak);
  }
  void on_gate2(sim::FrameSim& sim, uint32_t a, uint32_t b) override {
    if (params_.is_biased()) {
      sim.pauli_channel2(a, b, params_.eps_gate2, params_.frac_x(),
                         params_.frac_y());
    } else {
      sim.depolarize2(a, b, params_.eps_gate2);
    }
    if (params_.p_erase > 0) {
      sim.erase_error(a, params_.p_erase);
      sim.erase_error(b, params_.p_erase);
    }
    if (params_.p_leak > 0) {
      sim.leak_error(a, params_.p_leak);
      sim.leak_error(b, params_.p_leak);
    }
  }
  void on_prep(sim::FrameSim& sim, uint32_t q) override {
    sim.x_error(q, params_.eps_prep);
    if (params_.p_erase > 0) sim.erase_error(q, params_.p_erase);
  }
  void on_meas(sim::FrameSim& sim, uint32_t q, bool x_basis) override {
    if (x_basis) {
      sim.z_error(q, params_.eps_meas);
    } else {
      sim.x_error(q, params_.eps_meas);
    }
  }
  void on_storage(sim::FrameSim& sim, uint32_t q) override {
    pauli1(sim, q, params_.eps_store);
  }

 private:
  // Unbiased params take the exact depolarize1 path (bit-identical RNG
  // streams with every pre-bias pinned run); bias reroutes through the
  // explicit axis channel.
  void pauli1(sim::FrameSim& sim, uint32_t q, double eps) {
    if (params_.is_biased()) {
      sim.pauli_channel1(q, eps * params_.frac_x(), eps * params_.frac_y(),
                         eps * params_.frac_z());
    } else {
      sim.depolarize1(q, eps);
    }
  }

  sim::NoiseParams params_;
};

// Deterministic injector for exhaustive fault enumeration. Run once in
// recording mode to learn the fault locations of the noiseless path; then
// re-run with one or two (location, variant) faults armed. Location indices
// are assigned in execution order, so indices below the first armed fault
// always refer to the same physical opportunity as in the noiseless run.
class FaultPointInjector final : public NoiseInjector {
 public:
  struct Fault {
    size_t location = 0;
    int variant = 0;
  };

  FaultPointInjector() = default;  // recording mode
  // Replay mode. `record_kinds=false` skips the per-location kind log (a
  // measurable saving when a scan replays a ~50k-location gadget thousands
  // of times and only cares about the experiment's verdict).
  explicit FaultPointInjector(std::vector<Fault> faults,
                              bool record_kinds = true);

  void on_gate1(sim::FrameSim& sim, uint32_t q) override;
  void on_gate2(sim::FrameSim& sim, uint32_t a, uint32_t b) override;
  void on_prep(sim::FrameSim& sim, uint32_t q) override;
  void on_meas(sim::FrameSim& sim, uint32_t q, bool x_basis) override;
  void on_storage(sim::FrameSim& sim, uint32_t q) override;
  void on_marker(std::string_view label) override;

  // Sampled pair scans draw a variant for the location kind seen on the
  // RECORDED path; if the armed first fault reroutes control flow so a
  // different kind sits at that location, reduce the variant modulo the new
  // kind's variant count instead of aborting. Off by default: exhaustive
  // scans want the hard check.
  void set_clamp_variants(bool clamp) { clamp_variants_ = clamp; }

  // Locations seen so far (valid in both modes).
  [[nodiscard]] size_t num_locations() const { return counter_; }
  // Kinds recorded during this run (recording mode fills it fully).
  [[nodiscard]] const std::vector<LocationKind>& kinds() const { return kinds_; }
  // (label, location counter at emission) pairs, in execution order. The
  // location is the index of the NEXT fault opportunity, so two markers
  // bracket the half-open location window of the sub-gadget between them.
  [[nodiscard]] const std::vector<std::pair<std::string, size_t>>& markers()
      const {
    return markers_;
  }
  // Location window of the `occurrence`-th emission of `begin`..`end`
  // markers; FTQC_CHECKs that both exist.
  [[nodiscard]] std::pair<size_t, size_t> marker_window(
      std::string_view begin, std::string_view end,
      size_t occurrence = 0) const;

 private:
  // Returns the variant to inject at the current location, or -1.
  int step(LocationKind kind);

  std::vector<Fault> faults_;  // sorted by location
  size_t cursor_ = 0;
  size_t counter_ = 0;
  bool record_kinds_ = true;
  bool clamp_variants_ = false;
  std::vector<LocationKind> kinds_;
  std::vector<std::pair<std::string, size_t>> markers_;
};

}  // namespace ftqc::ft
