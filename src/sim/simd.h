#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

// Runtime-dispatched SIMD word kernels for the bit-parallel shot engine.
//
// Every hot loop of BatchFrameSim and the batched recovery drivers is a
// streaming boolean op over arrays of 64-lane words (XOR/AND/OR lane masks,
// bit-sliced Hamming decode). Those generalize from one machine word to
// 256/512-bit lane groups with GCC vector extensions; the kernels here are
// compiled three times from one implementation file — portable scalar,
// AVX2 (`target("avx2")`), AVX-512 (`target("avx512f")`) — and dispatched
// at runtime from CPUID, so the library binary stays generic-march and a
// machine without AVX2 runs the scalar path unchanged.
//
// Bit-exactness contract: every kernel produces identical output at every
// level (they are pure word ops; the vector paths process floor(words/W)
// groups plus a scalar tail), and no kernel consumes RNG — so an entire
// BatchFrameSim replay is bit-for-bit identical across levels under a fixed
// seed. tests/simd_kernels_test.cpp pins this per kernel across register
// sizes that exercise the tails, and end-to-end through a noisy gadget.
//
// Level selection: highest CPU-supported level by default; the FTQC_SIMD
// environment variable ("scalar" | "avx2" | "avx512") caps it (requesting
// an unsupported level falls back to the best supported one), and
// set_level() overrides programmatically (benches measure simd_speedup by
// timing the same kernel at forced-scalar vs active level).
namespace ftqc::sim::simd {

enum class Level : uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

[[nodiscard]] const char* level_name(Level level);
[[nodiscard]] std::optional<Level> parse_level(std::string_view name);
// Words per SIMD register at this level (1 / 4 / 8).
[[nodiscard]] size_t level_words(Level level);
// Register width in bits (64 / 256 / 512).
[[nodiscard]] inline size_t width_bits(Level level) {
  return 64 * level_words(level);
}

// Best level this CPU supports (CPUID, cached).
[[nodiscard]] Level max_supported_level();
// The level the kernels below dispatch to: min(max supported, FTQC_SIMD cap)
// unless overridden by set_level().
[[nodiscard]] Level active_level();
// Force a level (clamped to max_supported_level()); returns the level that
// is now active. Benches and tests use this to compare paths on one machine.
Level set_level(Level level);

// --- Streaming word kernels -------------------------------------------------
// All arrays are `words` uint64_t long and may be unaligned; `dst` may not
// alias any source except where a kernel reads and writes the same array.

// dst[w] ^= src[w]
void xor_into(uint64_t* dst, const uint64_t* src, size_t words);
// dst[w] ^= src[w] & mask[w]
void xor_masked_into(uint64_t* dst, const uint64_t* src, const uint64_t* mask,
                     size_t words);
// d1[w] ^= s1[w]; d2[w] ^= s2[w]  (one pass: CX/CZ touch two frame rows)
void xor2_into(uint64_t* d1, const uint64_t* s1, uint64_t* d2,
               const uint64_t* s2, size_t words);
// swap(a[w], b[w])
void swap_words(uint64_t* a, uint64_t* b, size_t words);
// dst[w] |= src[w]
void or_into(uint64_t* dst, const uint64_t* src, size_t words);
// dst[w] |= ~src[w]
void or_not_into(uint64_t* dst, const uint64_t* src, size_t words);
// dst[w] &= src[w]
void and_into(uint64_t* dst, const uint64_t* src, size_t words);
// dst[w] &= ~(a[w] ^ b[w])   (the §3.4 agreement fold)
void and_eq_into(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                 size_t words);
// dst[w] = a[w] & ~b[w]
void andnot(uint64_t* dst, const uint64_t* a, const uint64_t* b, size_t words);
// dst[w] = (dst[w] & ~mask[w]) | (src[w] & mask[w])   (per-lane mux: lanes
// of mask take src, the rest keep dst — the cat-retry parking update)
void blend_into(uint64_t* dst, const uint64_t* src, const uint64_t* mask,
                size_t words);
// dst[w] = (a[w] ^ b[w]) & mask[w]   (masked frame difference)
void xor_and(uint64_t* dst, const uint64_t* a, const uint64_t* b,
             const uint64_t* mask, size_t words);
// out[w] = act[w] & (s0[w]^i0) & (s1[w]^i1) & (s2[w]^i2), where ik is ~0
// to take the complement of bitplane k and 0 to take it as is — the
// three-bitplane position select of the bit-sliced Hamming decode (Eq. 3).
void select3_and(uint64_t* out, const uint64_t* act, const uint64_t* s0,
                 uint64_t i0, const uint64_t* s1, uint64_t i1,
                 const uint64_t* s2, uint64_t i2, size_t words);
// Bit-sliced classical Hamming [7,4,3] decode over 7 rows. syn_mask[j] holds
// the 7-bit support of check-matrix row j. logical=true: corrected-word
// parity (parity ^ syndrome-nonzero); logical=false: nonzero coset weight
// (syndrome-nonzero | parity).
void hamming7_decode(const uint64_t* const rows[7], const uint8_t syn_mask[3],
                     bool logical, uint64_t* out, size_t words);
// out[w] = (rows[0][w] | ... | rows[n-1][w]) [& active[w] if non-null],
// rows laid out contiguously with stride `words` (syndrome-row blocks).
void or_rows_masked(const uint64_t* rows, size_t num_rows,
                    const uint64_t* active, uint64_t* out, size_t words);
// In-place natural log of n doubles in (0, 1]: the geometric-skip sampler's
// block transform (glibc log1p is latency-bound per call on uniform
// arguments). Branchless musl-style reduction x = z * 2^k with z in
// [sqrt(1/2), sqrt(2)), then an atanh-series polynomial — elementwise
// identical at every level (the translation unit is built with
// -ffp-contract=off so no stamp fuses a*b+c), relative error < 1e-10,
// which is orders below anything a sampling application can resolve.
// Inputs outside (0, 1] are unsupported.
void log_unit(double* values, size_t n);

}  // namespace ftqc::sim::simd
