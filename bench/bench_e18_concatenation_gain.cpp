// E18 (§5): the point of concatenation, measured at circuit level — compare
// the logical failure of one fault-tolerant recovery cycle on a level-1
// Steane block against a full level-2 (49-qubit) block, across the
// pseudothreshold. Above it, the bigger code is WORSE ("coding will make
// things worse instead of better"); below it, level 2 wins and the gain
// grows as eps shrinks — the mechanism behind the accuracy threshold.
#include <cstdio>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "ft/concatenated_recovery.h"
#include "ft/steane_recovery.h"
#include "sim/shot_runner.h"
#include "threshold/pseudothreshold.h"

namespace {

using namespace ftqc;
using namespace ftqc::ft;

// Level 1 is exactly the pseudothreshold cycle measurement, so it rides the
// shared ShotRunner path and its engine parameter (batch by default: the
// level-1 curve is the shot-hungry side of this comparison).
Proportion level1_failure(double eps, size_t shots, uint64_t seed,
                          sim::ShotEngine engine) {
  return threshold::measure_cycle_failure(threshold::RecoveryMethod::kSteane,
                                          eps, shots, seed, 0.0, engine)
      .failures;
}

// The 49-qubit level-2 gadget stays serial per shot (its recovery drivers
// are frame-native and branch per shot); ShotRunner still parallelizes.
Proportion level2_failure(double eps, size_t shots, uint64_t seed) {
  const auto noise = sim::NoiseParams::uniform_gate(eps);
  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  plan.seed_stride = 11;
  const sim::ShotRunner runner(plan);
  const auto result = runner.run([&](uint64_t shot_seed) {
    Level2Recovery rec(noise, RecoveryPolicy{}, shot_seed);
    rec.run_cycle();
    return rec.any_logical_error();
  });
  return result.proportion();
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E18",
                    {sim::ShotEngine::kFrame, sim::ShotEngine::kBatch});
  const sim::ShotEngine engine =
      ftqc::bench::engine_or(sim::ShotEngine::kBatch);
  std::printf(
      "E18: level-1 vs level-2 concatenated recovery, full circuit level.\n"
      "One FT recovery cycle per level; failure after ideal decode.\n"
      "[level-1 engine: %s]\n\n",
      sim::shot_engine_name(engine));
  ftqc::Table table({"eps", "level-1 P(fail)", "level-2 P(fail)",
                     "winner", "gain"});
  struct Point {
    double eps;
    size_t shots;
  };
  // Smoke mode divides shot counts by 100 (and still exercises both levels).
  const size_t div = ftqc::bench::smoke() ? 100 : 1;
  ftqc::bench::JsonResult json;
  for (const Point pt : {Point{4e-3, 20000}, Point{2e-3, 20000},
                         Point{1e-3, 30000}, Point{5e-4, 40000},
                         Point{2.5e-4, 40000}}) {
    const auto l1 = level1_failure(pt.eps, pt.shots / div, 1000, engine);
    const auto l2 = level2_failure(pt.eps, pt.shots / div / 4, 2000);
    const double f1 = l1.mean();
    const double f2 = l2.mean();
    const char* winner = f2 < f1 ? "level 2" : "level 1";
    table.add_row({ftqc::strfmt("%.2e", pt.eps), ftqc::strfmt("%.3e", f1),
                   ftqc::strfmt("%.3e", f2), winner,
                   ftqc::strfmt("%.2fx", f2 > 0 ? f1 / f2 : -1.0)});
    if (pt.eps == 1e-3) {
      json.add("eps", pt.eps);
      json.add("level1_failure", f1);
      json.add("level2_failure", f2);
    }
  }
  table.print();
  json.write();
  std::printf(
      "\nShape check: the level-2/level-1 failure ratio falls steadily as eps\n"
      "drops (the level-2 curve is steeper), extrapolating to a crossover\n"
      "near ~5e-5 for this gadget — well below the level-1 pseudothreshold.\n"
      "The gap from the ideal p2 = A p1^2 law has a known cause that this\n"
      "measurement exposes: our level-2 gadget runs the paper's 'all levels\n"
      "simultaneously' extraction but does NOT interleave level-1 recoveries\n"
      "inside the level-2 ancilla preparation, so a PAIR of transversal-XOR\n"
      "faults can plant one error in each of two subblocks twice and defeat\n"
      "the hierarchy at O(eps^2) with a larger constant. Eliminating that\n"
      "path requires the nested-EC ('extended rectangle') discipline the\n"
      "paper alludes to when it notes the Fig. 9 threshold analysis 'has not\n"
      "yet been completed' (§5) — formalized years later by\n"
      "Aliferis-Gottesman-Preskill. The qualitative §5 mechanism — the\n"
      "bigger code's failure curve is steeper, so below a critical eps each\n"
      "added level helps — is exactly what the falling ratio demonstrates.\n");
  return 0;
}
