// E12 (§4.1, Figs. 12-13): Shor's measurement-based Toffoli gadget at the
// bare level: exact agreement with a direct Toffoli on every basis state and
// on random superpositions (phases included), plus the gate budget of the
// encoded version.
#include <cstdio>

#include "bench_harness.h"
#include "common/rng.h"
#include "common/table.h"
#include "ft/toffoli_gadget.h"
#include "sim/runner.h"
#include "sim/statevector_sim.h"

namespace {
using namespace ftqc;
using namespace ftqc::ft;
}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E12");
  std::printf("E12: Shor's Toffoli gadget (Fig. 13), bare-level verification.\n\n");

  // Truth table.
  ftqc::Table table({"input |x,y,z>", "gadget output", "CCX output", "match"});
  for (int in = 0; in < 8; ++in) {
    const ToffoliGadget g = make_bare_toffoli_gadget();
    sim::StateVectorSim sim(7, 500 + in);
    if (in & 1) sim.apply_x(g.in_data[0]);
    if (in & 2) sim.apply_x(g.in_data[1]);
    if (in & 4) sim.apply_x(g.in_data[2]);
    run_circuit(sim, g.circuit);
    int got = 0;
    got |= sim.measure_z(g.out_data[0]) ? 1 : 0;
    got |= sim.measure_z(g.out_data[1]) ? 2 : 0;
    got |= sim.measure_z(g.out_data[2]) ? 4 : 0;
    const int x = in & 1, y = (in >> 1) & 1, z = (in >> 2) & 1;
    const int want = x | (y << 1) | ((z ^ (x & y)) << 2);
    table.add_row({ftqc::strfmt("|%d,%d,%d>", x, y, z),
                   ftqc::strfmt("|%d,%d,%d>", got & 1, (got >> 1) & 1, got >> 2),
                   ftqc::strfmt("|%d,%d,%d>", want & 1, (want >> 1) & 1,
                                want >> 2),
                   got == want ? "yes" : "NO"});
  }
  table.print();

  // Fidelity on random superposition inputs.
  const uint64_t num_inputs = ftqc::bench::scaled(50, 8);
  double min_fidelity = 1.0;
  for (uint64_t seed = 0; seed < num_inputs; ++seed) {
    const ToffoliGadget g = make_bare_toffoli_gadget();
    sim::Circuit prep(7);
    Rng rng(900 + seed);
    for (uint32_t q = 4; q < 7; ++q) {
      if (rng.bernoulli(0.5)) prep.h(q);
      if (rng.bernoulli(0.5)) prep.s(q);
      if (rng.bernoulli(0.5)) prep.x(q);
      if (rng.bernoulli(0.5)) prep.h(q);
    }
    sim::StateVectorSim sim(7, seed);
    run_circuit(sim, prep);
    sim::StateVectorSim ref(7, seed);
    run_circuit(ref, prep);
    ref.apply_ccx(4, 5, 6);
    run_circuit(sim, g.circuit);
    sim.apply_swap(0, 4);
    sim.apply_swap(1, 5);
    sim.apply_swap(2, 6);
    for (uint32_t q = 0; q < 4; ++q) sim.reset(q);
    min_fidelity = std::min(min_fidelity, sim.fidelity_with(ref));
  }
  std::printf("\nMinimum fidelity vs direct CCX over %zu random inputs: %.12f\n",
              static_cast<size_t>(num_inputs), min_fidelity);

  ftqc::bench::JsonResult json;
  json.add("random_inputs", static_cast<size_t>(num_inputs));
  json.add("min_fidelity", min_fidelity);
  json.write();

  const ToffoliGadget g = make_bare_toffoli_gadget();
  std::printf(
      "\nGadget structure: %zu ops, 1 bitwise Toffoli (CCZ), %zu "
      "measurements,\n%zu conditional corrections.\n",
      g.circuit.ops().size(), g.circuit.count(sim::Gate::M),
      static_cast<size_t>(7));
  std::printf(
      "Encoded cost (Steane blocks, block size 7): ~%zu physical gates; the\n"
      "elementary Toffoli tolerance requirement is ~1e-3 when other gates\n"
      "are ~1e-4-1e-6 (§5 footnote j) because it appears once per gadget.\n",
      encoded_gadget_gate_count(7));
  std::printf(
      "\nShape check: exact truth table and unit fidelity on superpositions —\n"
      "the measurement-based construction implements Toffoli exactly, using\n"
      "only gates with transversal/bitwise fault-tolerant realizations.\n");
  return 0;
}
