#include "decode/erasure.h"

#include <queue>
#include <utility>

#include "common/check.h"
#include "sim/frame_sim.h"

namespace ftqc::decode {

ErasureAwareDecoder::ErasureAwareDecoder(
    const topo::ToricCode& code, ToricSide side,
    std::shared_ptr<const MatchingStrategy> strategy, ErasureOptions options)
    : code_(code),
      side_(side),
      strategy_(std::move(strategy)),
      options_(options),
      sites_(side == ToricSide::kPlaquette ? code.num_plaquettes()
                                           : code.num_vertices()),
      adjacency_(sites_) {
  FTQC_CHECK(strategy_ != nullptr, "matching strategy required");
  FTQC_CHECK(options_.normal_weight > 0 && options_.erased_weight > 0,
             "edge weights must be positive");
  FTQC_CHECK(options_.erased_weight <= options_.normal_weight,
             "heralds must discount, not penalize");
  for (uint32_t e = 0; e < code_.num_qubits(); ++e) {
    const auto [u, v] = side == ToricSide::kPlaquette
                            ? code_.edge_plaquettes(e)
                            : code_.edge_vertices(e);
    adjacency_[u].push_back({e, static_cast<uint32_t>(v)});
    adjacency_[v].push_back({e, static_cast<uint32_t>(u)});
  }
}

void ErasureAwareDecoder::peel(gf2::BitVec& defects,
                               const gf2::BitVec& heralds,
                               gf2::BitVec& correction) const {
  // Spanning forest of the heralded subgraph, recorded in DFS preorder so
  // that reversing the order visits every node after its whole subtree —
  // exactly leaf-first peeling without an explicit leaf queue.
  std::vector<int64_t> parent_edge(sites_, -1);
  std::vector<uint32_t> parent_site(sites_, 0);
  std::vector<uint8_t> visited(sites_, 0);
  std::vector<uint32_t> order;
  order.reserve(sites_);
  std::vector<uint32_t> stack;
  for (uint32_t root = 0; root < sites_; ++root) {
    if (visited[root]) continue;
    visited[root] = 1;
    stack.push_back(root);
    while (!stack.empty()) {
      const uint32_t u = stack.back();
      stack.pop_back();
      order.push_back(u);
      for (const Incidence& inc : adjacency_[u]) {
        if (!heralds.get(inc.edge) || visited[inc.site]) continue;
        visited[inc.site] = 1;
        parent_edge[inc.site] = inc.edge;
        parent_site[inc.site] = u;
        stack.push_back(inc.site);
      }
    }
  }
  // Peel: a defect on a non-root node rides its tree edge toward the root.
  // Even-parity clusters annihilate completely; odd ones leave one defect at
  // the root for the matching stage. Non-tree erased edges are simply unused
  // — any correction supported on the spanning forest already matches the
  // cluster's syndrome.
  for (size_t i = order.size(); i-- > 0;) {
    const uint32_t v = order[i];
    if (parent_edge[v] < 0) continue;
    if (!defects.get(v)) continue;
    correction.flip(static_cast<size_t>(parent_edge[v]));
    defects.flip(v);
    defects.flip(parent_site[v]);
  }
}

gf2::BitVec ErasureAwareDecoder::decode(const gf2::BitVec& syndrome,
                                        const gf2::BitVec& heralds) const {
  FTQC_CHECK(syndrome.size() == sites_, "syndrome size mismatch");
  const bool aware = !heralds.empty();
  if (aware) {
    FTQC_CHECK(heralds.size() == code_.num_qubits(),
               "herald vector must cover every data qubit");
  }

  gf2::BitVec correction(code_.num_qubits());
  gf2::BitVec defects = syndrome;
  if (aware && heralds.any()) peel(defects, heralds, correction);

  std::vector<uint32_t> defect_site;
  for (size_t s = defects.first_set(); s < sites_;
       s = defects.next_set(s + 1)) {
    defect_site.push_back(static_cast<uint32_t>(s));
  }
  if (defect_site.empty()) return correction;
  FTQC_CHECK(defect_site.size() % 2 == 0,
             "torus defects come in pairs (peeling preserves parity)");

  // Dijkstra from every remaining defect over the weighted site graph,
  // keeping each search tree for path reconstruction. The defect count is
  // tiny next to the lattice, so all-pairs through per-source searches is
  // the cheap direction.
  const size_t n = defect_site.size();
  constexpr size_t kInf = SIZE_MAX;
  std::vector<std::vector<size_t>> dist(n);
  std::vector<std::vector<uint32_t>> via_edge(n);
  std::vector<std::vector<uint32_t>> via_site(n);
  const auto edge_weight = [&](uint32_t e) {
    return aware && heralds.get(e) ? options_.erased_weight
                                   : options_.normal_weight;
  };
  using QueueEntry = std::pair<size_t, uint32_t>;  // (distance, site)
  for (size_t i = 0; i < n; ++i) {
    dist[i].assign(sites_, kInf);
    via_edge[i].assign(sites_, 0);
    via_site[i].assign(sites_, 0);
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        frontier;
    dist[i][defect_site[i]] = 0;
    frontier.push({0, defect_site[i]});
    while (!frontier.empty()) {
      const auto [d, u] = frontier.top();
      frontier.pop();
      if (d != dist[i][u]) continue;  // stale entry
      for (const Incidence& inc : adjacency_[u]) {
        const size_t nd = d + edge_weight(inc.edge);
        if (nd >= dist[i][inc.site]) continue;
        dist[i][inc.site] = nd;
        via_edge[i][inc.site] = inc.edge;
        via_site[i][inc.site] = u;
        frontier.push({nd, inc.site});
      }
    }
  }

  const auto matches = strategy_->match(n, [&](size_t a, size_t b) {
    return dist[a][defect_site[b]];
  });
  for (const Match& m : matches) {
    // Walk b back to a through a's shortest-path tree, toggling each crossed
    // edge. Unlike toggle_dual_path/toggle_primal_path this follows the
    // weighted route, which is what lets the correction thread the erasure.
    uint32_t cur = defect_site[m.b];
    const uint32_t goal = defect_site[m.a];
    while (cur != goal) {
      correction.flip(via_edge[m.a][cur]);
      cur = via_site[m.a][cur];
    }
  }
  return correction;
}

ErasureMemoryResult run_erasure_memory(const ErasureAwareDecoder& decoder,
                                       const sim::NoiseParams& params,
                                       uint64_t seed) {
  const topo::ToricCode& code = decoder.code();
  const bool plaquette = decoder.side() == ToricSide::kPlaquette;
  const size_t nq = code.num_qubits();

  // Drive the actual sim channels (not a hand-rolled sampler) so the herald
  // bits the decoder consumes are the ones FrameSim::erase_error records.
  sim::FrameSim sim(nq, seed);
  const double eps = params.eps_store;
  for (uint32_t q = 0; q < nq; ++q) {
    if (params.is_biased()) {
      sim.pauli_channel1(q, eps * params.frac_x(), eps * params.frac_y(),
                         eps * params.frac_z());
    } else {
      sim.depolarize1(q, eps);
    }
    sim.erase_error(q, params.p_erase);
  }

  gf2::BitVec errors(nq);
  gf2::BitVec heralds(nq);
  ErasureMemoryResult result;
  for (uint32_t q = 0; q < nq; ++q) {
    errors.set(q, plaquette ? sim.x_frame().get(q) : sim.z_frame().get(q));
    if (sim.is_erased(q)) {
      heralds.set(q, true);
      ++result.num_heralds;
    }
  }
  const gf2::BitVec syndrome = plaquette ? code.plaquette_syndrome(errors)
                                         : code.star_syndrome(errors);

  const auto verdict = [&](const gf2::BitVec& h, bool* fail, bool* cleared) {
    gf2::BitVec residual = errors;
    residual ^= decoder.decode(syndrome, h);
    const gf2::BitVec check = plaquette ? code.plaquette_syndrome(residual)
                                        : code.star_syndrome(residual);
    *cleared = !check.any();
    const auto [f1, f2] = plaquette ? code.logical_x_flips(residual)
                                    : code.logical_z_flips(residual);
    *fail = f1 || f2;
  };
  verdict(gf2::BitVec(), &result.blind_fail, &result.blind_cleared);
  verdict(heralds, &result.aware_fail, &result.aware_cleared);
  return result;
}

}  // namespace ftqc::decode
