// E16 (§7.1): quasiparticle error suppression: tunneling errors fall as
// e^{-mL} with anyon separation L; thermal plasma errors as e^{-Δ/T}.
// Analytic model vs Poisson-process Monte Carlo.
#include <cmath>
#include <cstdio>

#include "bench_harness.h"
#include "common/rng.h"
#include "common/table.h"
#include "topo/suppression.h"

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E16");
  using ftqc::topo::TopologicalMemoryModel;
  const TopologicalMemoryModel model{/*mass=*/1.0, /*gap=*/1.0,
                                     /*attempt_rate=*/1.0};
  std::printf(
      "E16: topological memory error suppression (§7.1).\n"
      "rate(L, T) = e^{-mL} + e^{-Δ/T}; memory survives time t with\n"
      "probability e^{-rate·t}.\n\n");

  std::printf("T = 0: tunneling only (e^{-mL}):\n");
  ftqc::Table sep({"separation L", "rate (analytic)", "survival(t=100)",
                   "MC survival", "ratio to previous L"});
  ftqc::Rng rng(5);
  ftqc::bench::JsonResult json;
  double prev = 0;
  for (const double l : {4.0, 6.0, 8.0, 10.0}) {
    const double rate = model.error_rate(l, 0);
    const double survive = model.survival_probability(l, 0, 100);
    size_t ok = 0;
    const size_t shots = ftqc::bench::scaled(20000, 2000);
    for (size_t s = 0; s < shots; ++s) {
      ok += model.sample_error_events(l, 0, 100, rng) == 0 ? 1 : 0;
    }
    const double mc_survival = static_cast<double>(ok) / shots;
    sep.add_row({ftqc::strfmt("%.0f", l), ftqc::strfmt("%.3e", rate),
                 ftqc::strfmt("%.4f", survive),
                 ftqc::strfmt("%.4f", mc_survival),
                 prev > 0 ? ftqc::strfmt("%.4f", rate / prev) : "-"});
    // Structured per-L fields so compare_bench.py can track the topological
    // suppression trend line, not just the two scalar design targets.
    const std::string suffix = ftqc::strfmt("_L%.0f", l);
    json.add("rate" + suffix, rate);
    json.add("mc_survival" + suffix, mc_survival);
    prev = rate;
  }
  sep.print();
  std::printf("(each +2 in L multiplies the rate by e^{-2} = %.4f)\n\n",
              std::exp(-2.0));

  std::printf("Large separation: thermal plasma only (e^{-Δ/T}):\n");
  ftqc::Table temp({"T/Δ", "rate (analytic)", "survival(t=100)", "MC survival"});
  for (const double t : {0.5, 0.25, 0.125, 0.0625}) {
    const double rate = model.error_rate(100, t);
    const double survive = model.survival_probability(100, t, 100);
    size_t ok = 0;
    const size_t shots = ftqc::bench::scaled(20000, 2000);
    for (size_t s = 0; s < shots; ++s) {
      ok += model.sample_error_events(100, t, 100, rng) == 0 ? 1 : 0;
    }
    temp.add_row({ftqc::strfmt("%.4f", t), ftqc::strfmt("%.3e", rate),
                  ftqc::strfmt("%.4f", survive),
                  ftqc::strfmt("%.4f", static_cast<double>(ok) / shots)});
  }
  temp.print();

  std::printf("\nDesign targets (rate <= 1e-9): separation L >= %.1f, "
              "temperature T <= %.4f Δ\n",
              model.separation_for_target(1e-9),
              model.temperature_for_target(1e-9));

  json.add("separation_for_1e-9", model.separation_for_target(1e-9));
  json.add("temperature_for_1e-9", model.temperature_for_target(1e-9));
  json.add("rate_L8_T0", model.error_rate(8, 0));
  // Measured suppression exponent: ln(rate_L4 / rate_L10) / 6 should pin the
  // model mass m = 1 — the per-L analog of a threshold estimate.
  json.add("decay_exponent",
           std::log(model.error_rate(4, 0) / model.error_rate(10, 0)) / 6.0);
  json.write();
  std::printf(
      "\nShape check: exponential suppression in both L and 1/T — the §7.1\n"
      "argument that topological hardware can be operated 'relatively\n"
      "carelessly': protection improves geometrically with distance, and the\n"
      "temperature need only sit 'well below the gap'.\n");
  return 0;
}
