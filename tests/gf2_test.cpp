#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf2/bitmat.h"
#include "gf2/bitvec.h"
#include "gf2/hamming.h"
#include "gf2/linalg.h"

namespace ftqc::gf2 {
namespace {

TEST(BitVec, SetGetFlip) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_FALSE(v.any());
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 3u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVec, FromToString) {
  const auto v = BitVec::from_string("1011001");
  EXPECT_EQ(v.to_string(), "1011001");
  EXPECT_EQ(v.popcount(), 4u);
  EXPECT_FALSE(v.parity());
  EXPECT_TRUE(BitVec::from_string("11100").parity());  // three ones
}

TEST(BitVec, XorAndOr) {
  const auto a = BitVec::from_string("1100");
  const auto b = BitVec::from_string("1010");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
}

TEST(BitVec, DotProduct) {
  const auto a = BitVec::from_string("1101");
  const auto b = BitVec::from_string("1011");
  // overlap = 1001 -> two ones -> parity 0
  EXPECT_FALSE(a.dot(b));
  const auto c = BitVec::from_string("0111");
  // overlap with a = 0101 -> parity 0; with b = 0011 -> parity 0
  EXPECT_FALSE(a.dot(c));
  const auto d = BitVec::from_string("1000");
  EXPECT_TRUE(a.dot(d));
}

TEST(BitVec, FirstSet) {
  BitVec v(200);
  EXPECT_EQ(v.first_set(), 200u);
  v.set(130, true);
  EXPECT_EQ(v.first_set(), 130u);
  v.set(7, true);
  EXPECT_EQ(v.first_set(), 7u);
}

TEST(BitVec, NextSetStreamsSparseBitsAcrossWords) {
  BitVec v(200);
  v.set(7, true);
  v.set(63, true);
  v.set(64, true);
  v.set(130, true);
  std::vector<size_t> seen;
  for (size_t i = v.first_set(); i < v.size(); i = v.next_set(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, (std::vector<size_t>{7, 63, 64, 130}));
  EXPECT_EQ(v.next_set(131), 200u);
  EXPECT_EQ(v.next_set(500), 200u);
}

TEST(BitVec, TailMaskingAfterResize) {
  BitVec v(70);
  v.set(69, true);
  v.resize(65);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitMat, MulMatchesManualParity) {
  const auto h = BitMat::from_rows({"110", "011"});
  const auto x = BitVec::from_string("111");
  const auto y = h.mul(x);
  EXPECT_EQ(y.to_string(), "00");
  const auto x2 = BitVec::from_string("100");
  EXPECT_EQ(h.mul(x2).to_string(), "10");
}

TEST(BitMat, TransposeRoundTrip) {
  const auto m = BitMat::from_rows({"101", "010"});
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Linalg, RankOfIdentityAndSingular) {
  const auto id = BitMat::from_rows({"100", "010", "001"});
  EXPECT_EQ(rank(id), 3u);
  const auto sing = BitMat::from_rows({"110", "110", "001"});
  EXPECT_EQ(rank(sing), 2u);
}

TEST(Linalg, SolveConsistentSystem) {
  const auto m = BitMat::from_rows({"110", "011"});
  const auto b = BitVec::from_string("10");
  const auto x = solve(m, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(m.mul(*x), b);
}

TEST(Linalg, SolveInconsistentSystem) {
  const auto m = BitMat::from_rows({"110", "110"});
  const auto b = BitVec::from_string("10");
  EXPECT_FALSE(solve(m, b).has_value());
}

TEST(Linalg, KernelBasisAnnihilated) {
  const auto h = BitMat::from_rows({"0001111", "0110011", "1010101"});
  const auto basis = kernel_basis(h);
  EXPECT_EQ(basis.size(), 4u);  // Hamming code has k = 4
  for (const auto& v : basis) {
    EXPECT_FALSE(h.mul(v).any());
  }
  // Basis vectors are linearly independent: stack and check rank.
  BitMat stacked(basis.size(), 7);
  for (size_t i = 0; i < basis.size(); ++i) stacked.row(i) = basis[i];
  EXPECT_EQ(rank(stacked), 4u);
}

TEST(Linalg, InRowSpace) {
  const auto m = BitMat::from_rows({"110", "011"});
  EXPECT_TRUE(in_row_space(m, BitVec::from_string("101")));  // sum of rows
  EXPECT_FALSE(in_row_space(m, BitVec::from_string("111")));
}

// Property test: solve() returns a valid solution on random consistent
// systems of many shapes.
class LinalgRandomSolve : public ::testing::TestWithParam<int> {};

TEST_P(LinalgRandomSolve, RandomConsistentSystems) {
  Rng rng(42 + static_cast<uint64_t>(GetParam()));
  const size_t rows = 1 + rng.next_below(12);
  const size_t cols = 1 + rng.next_below(12);
  BitMat m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m.set(r, c, rng.bernoulli(0.5));
  }
  BitVec x0(cols);
  for (size_t c = 0; c < cols; ++c) x0.set(c, rng.bernoulli(0.5));
  const BitVec b = m.mul(x0);
  const auto x = solve(m, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(m.mul(*x), b);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LinalgRandomSolve, ::testing::Range(0, 25));

TEST(Hamming, MatrixShapesMatchPaper) {
  const Hamming743 code;
  // Eq. (1): column i is the binary expansion of i+1.
  const auto& h = code.check_matrix();
  EXPECT_EQ(h.rows(), 3u);
  EXPECT_EQ(h.cols(), 7u);
  for (size_t col = 0; col < 7; ++col) {
    const size_t value = (h.get(0, col) ? 4u : 0u) | (h.get(1, col) ? 2u : 0u) |
                         (h.get(2, col) ? 1u : 0u);
    EXPECT_EQ(value, col + 1);
  }
}

TEST(Hamming, SystematicFormIsEquivalentCode) {
  const Hamming743 code;
  // Eq. (15) is a column permutation of Eq. (1): same code size & distance.
  const LinearCode sys(code.check_matrix_systematic());
  EXPECT_EQ(sys.k(), 4u);
  EXPECT_EQ(sys.brute_force_distance(), 3u);
}

TEST(Hamming, SixteenCodewordsSplitEvenOdd) {
  const Hamming743 code;
  EXPECT_EQ(code.codewords().size(), 16u);
  EXPECT_EQ(code.even_codewords().size(), 8u);
  EXPECT_EQ(code.odd_codewords().size(), 8u);
}

TEST(Hamming, DistanceIsThree) {
  const Hamming743 code;
  EXPECT_EQ(code.brute_force_distance(), 3u);
}

TEST(Hamming, OddWordsAreComplementsOfEvenWords) {
  // §4.1: "each odd parity Hamming codeword is the complement of an even
  // parity Hamming codeword" — this is why transversal NOT works.
  const Hamming743 code;
  for (uint8_t even : code.even_codewords()) {
    const uint8_t complement = static_cast<uint8_t>(~even & 0x7F);
    bool found = false;
    for (uint8_t odd : code.odd_codewords()) found |= (odd == complement);
    EXPECT_TRUE(found) << "complement of even word " << int(even)
                       << " is not an odd codeword";
  }
}

TEST(Hamming, WeightsModFour) {
  // §4.1: odd codewords have weight ≡ 3 (mod 4), even ones ≡ 0 (mod 4)
  // (this is why the phase gate is implemented by bitwise P^{-1}).
  const Hamming743 code;
  for (uint8_t w : code.even_codewords()) {
    EXPECT_EQ(__builtin_popcount(w) % 4, 0);
  }
  for (uint8_t w : code.odd_codewords()) {
    EXPECT_EQ(__builtin_popcount(w) % 4, 3);
  }
}

// Every single-bit error on every codeword is corrected (Eq. 3).
class HammingSingleError : public ::testing::TestWithParam<int> {};

TEST_P(HammingSingleError, Corrected) {
  const Hamming743 code;
  const int param = GetParam();
  const uint8_t word = code.codewords()[static_cast<size_t>(param) / 7];
  const size_t flip = static_cast<size_t>(param) % 7;
  BitVec v(7);
  for (size_t i = 0; i < 7; ++i) v.set(i, (word >> i) & 1);
  const BitVec original = v;
  v.flip(flip);
  EXPECT_EQ(code.error_position(code.syndrome(v)), flip);
  EXPECT_EQ(code.correct(v), original);
}

INSTANTIATE_TEST_SUITE_P(AllCodewordsAllPositions, HammingSingleError,
                         ::testing::Range(0, 16 * 7));

TEST(Hamming, DoubleErrorsMisdecodeToLogicalFlip) {
  // §2: two bit flips cause the parity check to misdiagnose; recovery lands
  // back in the code but with flipped parity (Eq. 12).
  const Hamming743 code;
  BitVec v(7);  // |0000000>, an even codeword
  v.flip(1);
  v.flip(4);
  const BitVec recovered = code.correct(v);
  EXPECT_TRUE(code.is_codeword(recovered));
  EXPECT_TRUE(recovered.parity());  // decoded as logical 1: a logical error
}

TEST(Hamming, DecodeLogical) {
  const Hamming743 code;
  for (uint8_t w : code.odd_codewords()) {
    BitVec v(7);
    for (size_t i = 0; i < 7; ++i) v.set(i, (w >> i) & 1);
    EXPECT_TRUE(code.decode_logical(v));
    v.flip(3);  // one measurement error should not change the logical read
    EXPECT_TRUE(code.decode_logical(v));
  }
}

TEST(HammingFamily, CheckMatrixGeneratesHammingCodes) {
  for (size_t r = 2; r <= 5; ++r) {
    const LinearCode code{hamming_check_matrix(r)};
    const size_t n = (size_t{1} << r) - 1;
    EXPECT_EQ(code.n(), n);
    EXPECT_EQ(code.k(), n - r);
    if (r <= 4) {
      EXPECT_EQ(code.brute_force_distance(), 3u);
    }
  }
}

TEST(HammingFamily, R3MatchesHamming743) {
  const Hamming743 code;
  EXPECT_EQ(hamming_check_matrix(3).to_string(),
            code.check_matrix().to_string());
}

}  // namespace
}  // namespace ftqc::gf2
