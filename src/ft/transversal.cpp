#include "ft/transversal.h"

#include "common/check.h"

namespace ftqc::ft {

using sim::Circuit;

Circuit logical_x_bitwise(std::span<const uint32_t> block) {
  Circuit c;
  for (uint32_t q : block) c.x(q);
  c.tick();
  return c;
}

Circuit logical_x_minimal(std::span<const uint32_t> block) {
  FTQC_CHECK(block.size() == 7, "Steane block expected");
  Circuit c;
  // {0,1,2} supports the odd codeword 1110000 (Eq. (1) convention).
  c.x(block[0]);
  c.x(block[1]);
  c.x(block[2]);
  c.tick();
  return c;
}

Circuit logical_z_bitwise(std::span<const uint32_t> block) {
  Circuit c;
  for (uint32_t q : block) c.z(q);
  c.tick();
  return c;
}

Circuit logical_h_bitwise(std::span<const uint32_t> block) {
  Circuit c;
  for (uint32_t q : block) c.h(q);
  c.tick();
  return c;
}

Circuit logical_s_bitwise(std::span<const uint32_t> block) {
  Circuit c;
  for (uint32_t q : block) c.s_dag(q);
  c.tick();
  return c;
}

Circuit logical_cx_transversal(std::span<const uint32_t> source,
                               std::span<const uint32_t> target) {
  FTQC_CHECK(source.size() == target.size(), "block size mismatch");
  Circuit c;
  for (size_t i = 0; i < source.size(); ++i) c.cx(source[i], target[i]);
  c.tick();
  return c;
}

Circuit logical_t_transversal(std::span<const uint32_t> block, bool dagger) {
  FTQC_CHECK(block.size() == 15, "Reed-Muller [[15,1,3]] block expected");
  Circuit c;
  // RZ(θ) = diag(e^{-iθ/2}, e^{+iθ/2}), so physical T† = RZ(-π/4) up to a
  // global phase; the bitwise product acts as logical T (weights mod 8).
  const double theta = dagger ? 0.7853981633974483 : -0.7853981633974483;
  for (uint32_t q : block) c.rz(q, theta);
  c.tick();
  return c;
}

}  // namespace ftqc::ft
