#include "ft/recovery.h"

namespace ftqc::ft {

gf2::BitVec hamming_syndrome_of_flips(const gf2::Hamming743& code,
                                      const uint8_t* flips) {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, flips[q] != 0);
  return code.syndrome(word);
}

}  // namespace ftqc::ft
