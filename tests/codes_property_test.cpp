// Deeper property suites for the codes layer: CSS construction invariants
// on alternative matrices, decoder/logical-effect algebra, and the
// concatenated hierarchy.
#include <gtest/gtest.h>

#include <cmath>

#include "codes/concatenated.h"
#include "codes/css.h"
#include "codes/library.h"
#include "codes/lookup_decoder.h"
#include "common/rng.h"
#include "gf2/hamming.h"

namespace ftqc::codes {
namespace {

using pauli::PauliString;

TEST(CssBuilder, SystematicHammingFormGivesEquivalentSteane) {
  // Eq. (15) is a column permutation of Eq. (1); the CSS construction on it
  // must yield a [[7,1,3]] code with the same parameters.
  const gf2::Hamming743 hamming;
  const auto code = make_css_code("steane-sys", hamming.check_matrix_systematic(),
                                  hamming.check_matrix_systematic());
  EXPECT_EQ(code.n(), 7u);
  EXPECT_EQ(code.k(), 1u);
  EXPECT_EQ(code.brute_force_distance(), 3u);
}

TEST(CssBuilder, AsymmetricCssCodeValidates) {
  // Shor's code as an explicitly asymmetric CSS construction: Z checks from
  // the repetition code pairs, X checks from the coarse two-row matrix.
  const auto hz = gf2::BitMat::from_rows({
      "110000000", "011000000", "000110000",
      "000011000", "000000110", "000000011",
  });
  const auto hx = gf2::BitMat::from_rows({
      "111111000", "000111111",
  });
  const auto code = make_css_code("shor-css", hx, hz);
  EXPECT_EQ(code.n(), 9u);
  EXPECT_EQ(code.k(), 1u);
  EXPECT_EQ(code.brute_force_distance(), 3u);
  // Same stabilizer group as the library's hand-written Shor code.
  for (const auto& g : code.generators()) {
    EXPECT_TRUE(shor9().in_stabilizer_group(g)) << g.to_string();
  }
}

TEST(CssBuilder, RejectsNonOrthogonalMatrices) {
  const auto hx = gf2::BitMat::from_rows({"110"});
  const auto hz = gf2::BitMat::from_rows({"100"});  // odd overlap with hx
  EXPECT_DEATH((void)make_css_code("bad", hx, hz), "hx");
}

TEST(LogicalEffect, StabilizerElementsActTrivially) {
  const auto& code = steane();
  for (const auto& g : code.generators()) {
    EXPECT_FALSE(code.logical_effect(g).any()) << g.to_string();
  }
  // Products of generators too.
  const auto prod = code.generators()[0] * code.generators()[3];
  EXPECT_FALSE(code.logical_effect(prod).any());
}

TEST(LogicalEffect, LogicalOperatorsReportThemselves) {
  const auto& code = steane();
  const auto ex = code.logical_effect(code.logical_x());
  EXPECT_TRUE(ex.x_flips.get(0));
  EXPECT_FALSE(ex.z_flips.get(0));
  const auto ez = code.logical_effect(code.logical_z());
  EXPECT_TRUE(ez.z_flips.get(0));
  EXPECT_FALSE(ez.x_flips.get(0));
  // Y-bar = X-bar * Z-bar flips both.
  const auto ey = code.logical_effect(code.logical_x() * code.logical_z());
  EXPECT_TRUE(ey.x_flips.get(0));
  EXPECT_TRUE(ey.z_flips.get(0));
}

TEST(LookupDecoder, DecodedCorrectionAlwaysClearsSyndrome) {
  // Property: for random errors of any weight, error * decode(syndrome) has
  // trivial syndrome (lands back in the normalizer).
  Rng rng(3);
  const auto& code = steane();
  const LookupDecoder decoder(code);
  for (int trial = 0; trial < 300; ++trial) {
    PauliString error(7);
    for (size_t q = 0; q < 7; ++q) {
      static constexpr char kChars[] = {'I', 'X', 'Y', 'Z'};
      error.set_pauli(q, kChars[rng.next_below(4)]);
    }
    const auto correction = decoder.decode(code.syndrome(error));
    EXPECT_FALSE(code.syndrome(error * correction).any());
  }
}

TEST(LookupDecoder, WeightTwoErrorsNeverGoUndetectedOnSteane) {
  // Distance 3: weight-2 errors always have nonzero syndrome OR are in the
  // stabilizer... for Steane no weight-2 stabilizer exists, so every
  // weight-2 error is detected.
  const auto& code = steane();
  for (size_t a = 0; a < 7; ++a) {
    for (size_t b = a + 1; b < 7; ++b) {
      for (char ca : {'X', 'Y', 'Z'}) {
        for (char cb : {'X', 'Y', 'Z'}) {
          PauliString e(7);
          e.set_pauli(a, ca);
          e.set_pauli(b, cb);
          EXPECT_TRUE(code.syndrome(e).any())
              << "undetected weight-2 error " << e.to_string();
        }
      }
    }
  }
}

TEST(ConcatenatedSteane, DecodeToLevelShapes) {
  const ConcatenatedSteane code(3);
  gf2::BitVec errors(343);
  EXPECT_EQ(code.decode_to_level(errors, 0).size(), 343u);
  EXPECT_EQ(code.decode_to_level(errors, 1).size(), 49u);
  EXPECT_EQ(code.decode_to_level(errors, 2).size(), 7u);
  EXPECT_EQ(code.decode_to_level(errors, 3).size(), 1u);
}

TEST(ConcatenatedSteane, HierarchyAbsorbsOneDeadSubblockPerLevel) {
  // Level 3: kill one level-1 block (2 flips) inside each of up to three
  // different level-2 blocks — still decodable as long as each level-2
  // block has at most one dead child.
  const ConcatenatedSteane code(3);
  gf2::BitVec errors(343);
  for (size_t super : {size_t{0}, size_t{3}, size_t{6}}) {
    const size_t base = 49 * super;  // one subblock inside this superblock
    errors.set(base + 0, true);
    errors.set(base + 1, true);  // kills level-1 block 0 of this superblock
  }
  EXPECT_FALSE(code.decode_logical(errors));
}

TEST(ConcatenatedSteane, FlowMapMonotoneInP) {
  double prev = 0;
  for (double p = 0.001; p < 0.5; p += 0.013) {
    const double f = ConcatenatedSteane::block_failure_exact(p);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

class ConcatenatedMcSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConcatenatedMcSweep, Level2MonteCarloMatchesIteratedExactMap) {
  const double p = GetParam();
  const ConcatenatedSteane code(2);
  Rng rng(1234);
  const double mc = code.logical_failure_rate(p, 60000, rng);
  const double exact = ConcatenatedSteane::block_failure_exact(
      ConcatenatedSteane::block_failure_exact(p));
  // The iterated mean-field map neglects correlations between subblock
  // failures (none exist for iid noise) — agreement should be tight.
  EXPECT_NEAR(mc, exact, 5 * std::sqrt(exact / 60000 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Ps, ConcatenatedMcSweep,
                         ::testing::Values(0.01, 0.03, 0.05));

}  // namespace
}  // namespace ftqc::codes
