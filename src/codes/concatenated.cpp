#include "codes/concatenated.h"

#include "common/check.h"

namespace ftqc::codes {

ConcatenatedSteane::ConcatenatedSteane(size_t levels) : levels_(levels) {
  FTQC_CHECK(levels >= 1 && levels <= 8, "supported levels: 1..8 (7^8 qubits)");
  block_size_ = 1;
  for (size_t l = 0; l < levels; ++l) block_size_ *= 7;
}

std::vector<bool> ConcatenatedSteane::decode_to_level(const gf2::BitVec& errors,
                                                      size_t level) const {
  FTQC_CHECK(errors.size() == block_size_, "error pattern size mismatch");
  FTQC_CHECK(level <= levels_, "level out of range");
  std::vector<bool> bits(block_size_);
  for (size_t i = 0; i < block_size_; ++i) bits[i] = errors.get(i);
  for (size_t l = 0; l < level; ++l) {
    std::vector<bool> up(bits.size() / 7);
    for (size_t b = 0; b < up.size(); ++b) {
      gf2::BitVec block(7);
      for (size_t q = 0; q < 7; ++q) block.set(q, bits[7 * b + q]);
      up[b] = hamming_.decode_logical(block);
    }
    bits = std::move(up);
  }
  return bits;
}

bool ConcatenatedSteane::decode_logical(const gf2::BitVec& errors) const {
  return decode_to_level(errors, levels_)[0];
}

double ConcatenatedSteane::logical_failure_rate(double p, size_t shots,
                                                Rng& rng) const {
  size_t failures = 0;
  gf2::BitVec errors(block_size_);
  for (size_t s = 0; s < shots; ++s) {
    errors.clear();
    for (size_t q = 0; q < block_size_; ++q) {
      if (rng.bernoulli(p)) errors.set(q, true);
    }
    failures += decode_logical(errors);
  }
  return static_cast<double>(failures) / static_cast<double>(shots);
}

double ConcatenatedSteane::block_failure_exact(double p) {
  // Sum over all 2^7 patterns: P(pattern) * [decodes to logical flip].
  static const gf2::Hamming743 hamming;
  double total = 0;
  for (uint32_t pattern = 0; pattern < 128; ++pattern) {
    gf2::BitVec block(7);
    for (size_t q = 0; q < 7; ++q) block.set(q, (pattern >> q) & 1u);
    if (!hamming.decode_logical(block)) continue;
    const int w = __builtin_popcount(pattern);
    double prob = 1;
    for (int i = 0; i < w; ++i) prob *= p;
    for (int i = w; i < 7; ++i) prob *= (1 - p);
    total += prob;
  }
  return total;
}

double ConcatenatedSteane::code_capacity_threshold() {
  // The nontrivial fixed point of p -> block_failure_exact(p) in (0, 1/2),
  // found by bisection on f(p) - p.
  double lo = 1e-6, hi = 0.5;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (block_failure_exact(mid) < mid) {
      lo = mid;  // below threshold: decoding helps
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace ftqc::codes
