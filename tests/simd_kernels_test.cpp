// Bit-exactness pins for the runtime-dispatched SIMD word kernels
// (sim/simd.h). The dispatch contract is that every kernel produces
// IDENTICAL output at every level — the vector paths process whole register
// groups plus a scalar tail — so a fixed-seed BatchFrameSim replay cannot
// depend on the host CPU. Each kernel is pinned scalar-vs-level across word
// counts that exercise the tails of both the 4-word (AVX2) and 8-word
// (AVX-512) groups, then the whole engine is pinned end to end through a
// noisy gadget, and the geometric-skip RNG fill is pinned against a
// draw-order mirror so its stream cannot silently change.
#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "ft/batch_recovery.h"
#include "gf2/hamming.h"
#include "gtest/gtest.h"
#include "sim/batch_frame_sim.h"
#include "sim/simd.h"

namespace ftqc {
namespace {

namespace simd = sim::simd;

// Word counts straddling the vector-group boundaries: 1/3 (pure scalar
// tail), 4 (one AVX2 group), 5 (group + tail), 8 (one AVX-512 group / two
// AVX2 groups), 13 (groups + tail at both widths).
constexpr size_t kWordCounts[] = {1, 3, 4, 5, 8, 13};

std::vector<uint64_t> random_words(Rng& rng, size_t n) {
  std::vector<uint64_t> out(n);
  for (auto& w : out) w = rng.next_u64();
  return out;
}

// Restores the dispatch level active at test start, whatever the test
// forced in between.
class SimdKernelsTest : public ::testing::Test {
 protected:
  void SetUp() override { initial_ = simd::active_level(); }
  void TearDown() override { simd::set_level(initial_); }

  // The levels this host can actually run (set_level clamps to CPU
  // support); always includes kScalar.
  static std::vector<simd::Level> levels() {
    std::vector<simd::Level> out{simd::Level::kScalar};
    for (const simd::Level lv : {simd::Level::kAvx2, simd::Level::kAvx512}) {
      if (simd::set_level(lv) == lv) out.push_back(lv);
    }
    return out;
  }

  // Runs `kernel()` once per level on identical inputs and checks every
  // level reproduces the scalar output. `kernel` must write its full output
  // into the vector it returns.
  template <typename Kernel>
  static void expect_level_invariant(const char* name, size_t words,
                                     Kernel&& kernel) {
    simd::set_level(simd::Level::kScalar);
    const std::vector<uint64_t> expected = kernel();
    for (const simd::Level lv : levels()) {
      simd::set_level(lv);
      EXPECT_EQ(kernel(), expected)
          << name << " diverges at level " << simd::level_name(lv) << ", "
          << words << " words";
    }
  }

 private:
  simd::Level initial_ = simd::Level::kScalar;
};

TEST_F(SimdKernelsTest, StreamingKernelsMatchScalarAcrossTails) {
  Rng rng(0xC0FFEE);
  for (const size_t words : kWordCounts) {
    const auto a = random_words(rng, words);
    const auto b = random_words(rng, words);
    const auto c = random_words(rng, words);
    const auto d = random_words(rng, words);

    expect_level_invariant("xor_into", words, [&] {
      auto dst = a;
      simd::xor_into(dst.data(), b.data(), words);
      return dst;
    });
    expect_level_invariant("xor_masked_into", words, [&] {
      auto dst = a;
      simd::xor_masked_into(dst.data(), b.data(), c.data(), words);
      return dst;
    });
    expect_level_invariant("xor2_into", words, [&] {
      auto d1 = a;
      auto d2 = b;
      simd::xor2_into(d1.data(), c.data(), d2.data(), d.data(), words);
      d1.insert(d1.end(), d2.begin(), d2.end());
      return d1;
    });
    expect_level_invariant("swap_words", words, [&] {
      auto x = a;
      auto y = b;
      simd::swap_words(x.data(), y.data(), words);
      x.insert(x.end(), y.begin(), y.end());
      return x;
    });
    expect_level_invariant("or_into", words, [&] {
      auto dst = a;
      simd::or_into(dst.data(), b.data(), words);
      return dst;
    });
    expect_level_invariant("or_not_into", words, [&] {
      auto dst = a;
      simd::or_not_into(dst.data(), b.data(), words);
      return dst;
    });
    expect_level_invariant("and_into", words, [&] {
      auto dst = a;
      simd::and_into(dst.data(), b.data(), words);
      return dst;
    });
    expect_level_invariant("and_eq_into", words, [&] {
      auto dst = a;
      simd::and_eq_into(dst.data(), b.data(), c.data(), words);
      return dst;
    });
    expect_level_invariant("andnot", words, [&] {
      std::vector<uint64_t> dst(words);
      simd::andnot(dst.data(), a.data(), b.data(), words);
      return dst;
    });
    expect_level_invariant("blend_into", words, [&] {
      auto dst = a;
      simd::blend_into(dst.data(), b.data(), c.data(), words);
      return dst;
    });
    expect_level_invariant("xor_and", words, [&] {
      std::vector<uint64_t> dst(words);
      simd::xor_and(dst.data(), a.data(), b.data(), c.data(), words);
      return dst;
    });
  }
}

TEST_F(SimdKernelsTest, Select3AndMatchesScalarForAllInversions) {
  Rng rng(0xBEEF);
  for (const size_t words : kWordCounts) {
    const auto act = random_words(rng, words);
    const auto s0 = random_words(rng, words);
    const auto s1 = random_words(rng, words);
    const auto s2 = random_words(rng, words);
    for (uint64_t value = 0; value <= 7; ++value) {
      const uint64_t i0 = (value & 4) ? 0 : ~uint64_t{0};
      const uint64_t i1 = (value & 2) ? 0 : ~uint64_t{0};
      const uint64_t i2 = (value & 1) ? 0 : ~uint64_t{0};
      expect_level_invariant("select3_and", words, [&] {
        std::vector<uint64_t> out(words);
        simd::select3_and(out.data(), act.data(), s0.data(), i0, s1.data(), i1,
                          s2.data(), i2, words);
        return out;
      });
    }
  }
}

TEST_F(SimdKernelsTest, Hamming7DecodeMatchesScalarInBothModes) {
  const gf2::Hamming743 hamming;
  Rng rng(0x5EED);
  for (const size_t words : kWordCounts) {
    std::vector<uint64_t> row_data = random_words(rng, 7 * words);
    const uint64_t* rows[7];
    for (size_t j = 0; j < 7; ++j) rows[j] = &row_data[j * words];
    for (const bool logical : {false, true}) {
      expect_level_invariant("hamming7_decode", words, [&] {
        std::vector<uint64_t> out(words);
        ft::batch_decode_rows(hamming, rows, logical, out.data(), words);
        return out;
      });
    }
  }
}

TEST_F(SimdKernelsTest, OrRowsMaskedMatchesScalarWithAndWithoutMask) {
  Rng rng(0xACE);
  for (const size_t words : kWordCounts) {
    for (const size_t num_rows : {size_t{1}, size_t{3}, size_t{6}}) {
      const auto rows = random_words(rng, num_rows * words);
      const auto active = random_words(rng, words);
      for (const bool masked : {false, true}) {
        expect_level_invariant("or_rows_masked", words, [&] {
          std::vector<uint64_t> out(words);
          simd::or_rows_masked(rows.data(), num_rows,
                               masked ? active.data() : nullptr, out.data(),
                               words);
          return out;
        });
      }
    }
  }
}

TEST_F(SimdKernelsTest, LogUnitIsElementwiseIdenticalAcrossLevels) {
  // The fill's skip logs must be BITWISE equal at every level, or the RNG
  // consumption (and so every downstream stream) would depend on the CPU.
  // Cover the full (0, 1] domain including the exact endpoints and
  // subnormal-adjacent tiny values, across vector-tail lengths.
  Rng rng(0xF00D);
  for (const size_t n : kWordCounts) {
    std::vector<double> values(n);
    for (size_t i = 0; i < n; ++i) {
      values[i] = 1.0 - rng.next_double();  // (0, 1]
    }
    values[0] = 1.0;
    if (n > 2) values[2] = 0x1.0p-900;
    simd::set_level(simd::Level::kScalar);
    auto expected = values;
    simd::log_unit(expected.data(), n);
    for (const simd::Level lv : levels()) {
      simd::set_level(lv);
      auto got = values;
      simd::log_unit(got.data(), n);
      ASSERT_EQ(std::memcmp(got.data(), expected.data(), n * sizeof(double)),
                0)
          << "log_unit diverges at level " << simd::level_name(lv) << ", " << n
          << " values";
    }
    // Sanity on top of equality: the values are actually logarithms.
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(expected[i], std::log(values[i]),
                  std::abs(std::log(values[i])) * 1e-10 + 1e-12);
    }
  }
}

// End to end: a noisy multi-qubit gadget replayed at forced-scalar and at
// the best supported level must produce identical frames, records, and
// abort masks — the engine-level statement of the per-kernel pins above.
TEST_F(SimdKernelsTest, NoisyBatchGadgetIsBitIdenticalAcrossLevels) {
  constexpr size_t kQubits = 7;
  constexpr size_t kShots = 5 * 64;  // 5 words: AVX2 group + tail
  struct Capture {
    std::vector<uint64_t> frames;
    std::vector<uint64_t> record;
    std::vector<uint64_t> abort;
  };
  const auto run = [&] {
    sim::BatchFrameSim sim(kQubits, kShots, /*seed=*/4242);
    std::vector<uint64_t> mask(sim.num_words(), 0xAAAAAAAAAAAAAAAAull);
    for (size_t q = 0; q < kQubits; ++q) {
      sim.apply_h(q);
      sim.depolarize1(q, 0.05);
      sim.apply_cx(q, (q + 3) % kQubits);
      sim.depolarize2(q, (q + 3) % kQubits, 0.03);
      sim.z_error(q, 0.2, mask.data());
      sim.x_error((q + 1) % kQubits, 1e-4);
    }
    const size_t m0 = sim.measure_z(0);
    sim.classical_x(1, m0);
    sim.measure_x(3);
    sim.discard_where(m0, true);
    Capture cap;
    for (size_t q = 0; q < kQubits; ++q) {
      cap.frames.insert(cap.frames.end(), sim.x_flips(q),
                        sim.x_flips(q) + sim.num_words());
      cap.frames.insert(cap.frames.end(), sim.z_flips(q),
                        sim.z_flips(q) + sim.num_words());
    }
    for (size_t m = 0; m < sim.record().size(); ++m) {
      cap.record.insert(cap.record.end(), sim.record().row(m),
                        sim.record().row(m) + sim.num_words());
    }
    cap.abort.assign(sim.abort_mask(), sim.abort_mask() + sim.num_words());
    return cap;
  };
  simd::set_level(simd::Level::kScalar);
  const Capture expected = run();
  for (const simd::Level lv : levels()) {
    simd::set_level(lv);
    const Capture got = run();
    EXPECT_EQ(got.frames, expected.frames)
        << "frames diverge at " << simd::level_name(lv);
    EXPECT_EQ(got.record, expected.record)
        << "record diverges at " << simd::level_name(lv);
    EXPECT_EQ(got.abort, expected.abort)
        << "abort mask diverges at " << simd::level_name(lv);
  }
}

// Mirrors BatchFrameSim's geometric-skip sampler draw for draw: blocks of
// kFillBlock uniforms transformed through simd::log_unit, consumed lazily
// across fills (leftovers carry between channel calls with different p).
// Any change to the fill's RNG stream shows up here as a bit mismatch.
class FillMirror {
 public:
  explicit FillMirror(uint64_t seed, size_t shots)
      : rng_(seed), shots_(shots), words_(shots / 64) {}

  // Expected (hit words, dirty indices) of the next fill_hit_words(p).
  struct Expected {
    std::vector<uint64_t> hit;
    std::vector<uint32_t> dirty;
    bool dense = false;
    bool empty = false;
  };
  Expected fill(double p) {
    Expected out;
    out.hit.assign(words_, 0);
    if (p <= 0) {
      out.empty = true;
      return out;
    }
    if (p >= 1) {
      out.hit.assign(words_, ~uint64_t{0});
      out.dense = true;
      return out;
    }
    const double inv = 1.0 / std::log1p(-p);
    const auto total = static_cast<double>(shots_);
    uint32_t last = ~uint32_t{0};
    double position = -1.0;
    for (;;) {
      const double skip = 1.0 + std::floor(next_log() * inv);
      position += skip;
      if (position >= total) break;
      const auto bit = static_cast<size_t>(position);
      const auto word = static_cast<uint32_t>(bit >> 6);
      out.hit[word] |= uint64_t{1} << (bit & 63);
      if (word != last) out.dirty.push_back(word);
      last = word;
    }
    out.empty = out.dirty.empty();
    return out;
  }

 private:
  double next_log() {
    if (pos_ == sim::BatchFrameSim::kFillBlock) {
      for (double& v : cache_) v = 1.0 - rng_.next_double();
      sim::simd::log_unit(cache_.data(), cache_.size());
      pos_ = 0;
    }
    return cache_[pos_++];
  }

  Rng rng_;
  size_t shots_;
  size_t words_;
  std::array<double, sim::BatchFrameSim::kFillBlock> cache_{};
  size_t pos_ = sim::BatchFrameSim::kFillBlock;
};

TEST_F(SimdKernelsTest, FillHitWordsMatchesDrawOrderMirror) {
  constexpr uint64_t kSeed = 98765;
  constexpr size_t kShots = 13 * 64;  // tails at both vector widths
  sim::BatchFrameSim sim(/*num_qubits=*/1, kShots, kSeed);
  FillMirror mirror(kSeed, kShots);
  // Interleave sparse, dense, degenerate, and moderate p: the leftover skip
  // logs must carry across calls, the dense path must not consume draws,
  // and the scratch must come back clean after every shape of fill.
  const double ps[] = {1e-3, 0.0, 0.4, 1.0, 1e-5, 0.08, 1.5, 1e-3, 0.25};
  for (const double p : ps) {
    SCOPED_TRACE(p);
    const auto expected = mirror.fill(p);
    const auto got = sim.fill_hit_words(p);
    if (expected.dense) {
      ASSERT_TRUE(got);
      EXPECT_TRUE(got.dense);
      for (size_t w = 0; w < sim.num_words(); ++w) {
        EXPECT_EQ(got.bits[w], ~uint64_t{0});
      }
      continue;
    }
    if (expected.empty) {
      EXPECT_FALSE(got);
      continue;
    }
    ASSERT_TRUE(got);
    EXPECT_FALSE(got.dense);
    for (size_t w = 0; w < sim.num_words(); ++w) {
      EXPECT_EQ(got.bits[w], expected.hit[w]) << "word " << w;
    }
    ASSERT_EQ(got.num_dirty, expected.dirty.size());
    for (size_t i = 0; i < got.num_dirty; ++i) {
      EXPECT_EQ(got.dirty[i], expected.dirty[i]) << "dirty index " << i;
    }
  }
}

// The scratch-zeroing regression (the bug the dirty-word bookkeeping once
// had): a dense fill followed by a sparse one must not leak the dense fill's
// all-ones words into the sparse result, and two sparse fills must not leak
// each other's bits.
TEST_F(SimdKernelsTest, FillHitWordsScratchComesBackClean) {
  sim::BatchFrameSim sim(/*num_qubits=*/1, /*shots=*/8 * 64, /*seed=*/5);
  (void)sim.fill_hit_words(1.0);  // dense: every word all-ones
  const auto sparse = sim.fill_hit_words(1e-3);
  size_t bits = 0;
  if (sparse) {
    for (size_t w = 0; w < sim.num_words(); ++w) {
      bits += static_cast<size_t>(__builtin_popcountll(sparse.bits[w]));
    }
  }
  // 512 lanes at p = 1e-3: a leak of even one stale word adds 64 bits.
  EXPECT_LT(bits, 32u);
  // And every bit set must be listed in the dirty words.
  if (sparse) {
    for (size_t w = 0; w < sim.num_words(); ++w) {
      if (sparse.bits[w] == 0) continue;
      bool listed = false;
      for (size_t i = 0; i < sparse.num_dirty; ++i) {
        listed |= sparse.dirty[i] == w;
      }
      EXPECT_TRUE(listed) << "word " << w << " set but not dirty-listed";
    }
  }
}

}  // namespace
}  // namespace ftqc
