#include <gtest/gtest.h>

#include "common/stats.h"
#include "ft/fault_enumeration.h"
#include "ft/noise_injector.h"
#include "ft/shor_recovery.h"
#include "ft/steane_recovery.h"

namespace ftqc::ft {
namespace {

const sim::NoiseParams kNoiseless{};

RecoveryPolicy full_policy() { return RecoveryPolicy{}; }

// The conditional variant law under bias must stay a probability
// distribution over each location's variants, and collapse to the uniform
// §6 weights at fx = fy = fz = 1/3 (the weighted DEM build relies on both).
TEST(BiasedVariantWeight, NormalizedAndReducesToUniform) {
  const double fracs[][3] = {{1.0 / 3, 1.0 / 3, 1.0 / 3},
                             {0.5, 0.25, 0.25},
                             {1.0 / 102, 1.0 / 102, 100.0 / 102},
                             {0.9, 0.05, 0.05}};
  for (const LocationKind kind :
       {LocationKind::kGate1, LocationKind::kGate2, LocationKind::kStorage,
        LocationKind::kPrep, LocationKind::kMeas}) {
    for (const auto& f : fracs) {
      double sum = 0.0;
      for (int v = 0; v < location_variants(kind); ++v) {
        const double w = biased_variant_weight(kind, v, f[0], f[1], f[2]);
        EXPECT_GE(w, 0.0);
        sum += w;
      }
      EXPECT_NEAR(sum, 1.0, 1e-12)
          << "kind " << static_cast<int>(kind) << " fx=" << f[0];
    }
    for (int v = 0; v < location_variants(kind); ++v) {
      EXPECT_NEAR(
          biased_variant_weight(kind, v, 1.0 / 3, 1.0 / 3, 1.0 / 3),
          variant_weight(kind), 1e-12);
    }
  }
  // A pure-Z bias loads the Z variant of 1-qubit locations entirely.
  EXPECT_NEAR(biased_variant_weight(LocationKind::kGate1, 2, 0.0, 0.0, 1.0),
              1.0, 1e-12);
  EXPECT_NEAR(biased_variant_weight(LocationKind::kGate1, 0, 0.0, 0.0, 1.0),
              0.0, 1e-12);
}

TEST(SteaneRecovery, NoiselessCycleIsClean) {
  SteaneRecovery rec(kNoiseless, full_policy(), 1);
  rec.run_cycle();
  EXPECT_FALSE(rec.any_logical_error());
  EXPECT_EQ(rec.residual_x_weight(), 0u);
  EXPECT_EQ(rec.residual_z_weight(), 0u);
}

TEST(SteaneRecovery, CorrectsEverySingleDataError) {
  for (uint32_t q = 0; q < 7; ++q) {
    for (char pauli : {'X', 'Y', 'Z'}) {
      SteaneRecovery rec(kNoiseless, full_policy(), 10 + q);
      rec.inject_data(q, pauli);
      rec.run_cycle();
      EXPECT_FALSE(rec.any_logical_error())
          << pauli << " on qubit " << q << " not corrected";
      EXPECT_EQ(rec.residual_x_weight() + rec.residual_z_weight(), 0u)
          << pauli << " on qubit " << q << " left residual errors";
    }
  }
}

TEST(SteaneRecovery, TwoBitFlipsCauseLogicalError) {
  // The code only corrects one error: two X's in the block end up as a
  // logical X after recovery (Eq. 12).
  SteaneRecovery rec(kNoiseless, full_policy(), 21);
  rec.inject_data(1, 'X');
  rec.inject_data(4, 'X');
  rec.run_cycle();
  EXPECT_TRUE(rec.logical_x_error());
}

TEST(SteaneRecovery, MixedPairOnDistinctQubitsIsCorrected) {
  // One bit flip plus one phase flip on different qubits: recoverable (§2).
  SteaneRecovery rec(kNoiseless, full_policy(), 22);
  rec.inject_data(2, 'X');
  rec.inject_data(5, 'Z');
  rec.run_cycle();
  EXPECT_FALSE(rec.any_logical_error());
}

TEST(ShorRecovery, NoiselessCycleIsClean) {
  ShorRecovery rec(kNoiseless, full_policy(), 2);
  rec.run_cycle();
  EXPECT_FALSE(rec.any_logical_error());
  EXPECT_EQ(rec.cats_discarded(), 0u);
}

TEST(ShorRecovery, CorrectsEverySingleDataError) {
  for (uint32_t q = 0; q < 7; ++q) {
    for (char pauli : {'X', 'Y', 'Z'}) {
      ShorRecovery rec(kNoiseless, full_policy(), 30 + q);
      rec.inject_data(q, pauli);
      rec.run_cycle();
      EXPECT_FALSE(rec.any_logical_error())
          << pauli << " on qubit " << q << " not corrected";
    }
  }
}

// ---- The central fault-tolerance property (§3): no single fault anywhere
// ---- in the recovery circuit may leave the block with a logical error.

bool steane_cycle_fails_under(NoiseInjector& injector, uint64_t seed) {
  SteaneRecovery rec(kNoiseless, full_policy(), seed);
  rec.set_injector(&injector);
  rec.run_cycle();
  rec.set_injector(nullptr);
  return rec.any_logical_error();
}

TEST(FaultTolerance, SteaneRecoverySurvivesEverySingleFault) {
  const auto scan = scan_single_faults(
      [](NoiseInjector& injector) {
        return steane_cycle_fails_under(injector, 77);
      },
      all_kinds());
  EXPECT_GT(scan.num_locations, 100u);  // Fig. 9 is a real circuit
  EXPECT_GT(scan.faults_tried, 300u);
  EXPECT_EQ(scan.faults_failing, 0u)
      << "a single fault caused a logical error: not fault tolerant";
}

TEST(FaultTolerance, SteaneRecoveryLeavesAtMostOneErrorPerTypePerFault) {
  // Stronger property: a single fault leaves a residual correctable by the
  // next ideal recovery — at most one X and one Z on the data block, counted
  // modulo the stabilizer (frame patterns equal to a generator's support act
  // trivially on the code space).
  const auto scan = scan_single_faults(
      [](NoiseInjector& injector) {
        SteaneRecovery rec(kNoiseless, full_policy(), 78);
        rec.set_injector(&injector);
        rec.run_cycle();
        rec.set_injector(nullptr);
        return rec.residual_x_coset_weight() > 1 ||
               rec.residual_z_coset_weight() > 1;
      },
      all_kinds());
  EXPECT_EQ(scan.faults_failing, 0u)
      << "a single fault left two same-type errors in the block";
}

TEST(FaultTolerance, ShorRecoverySurvivesEverySingleFault) {
  const auto scan = scan_single_faults(
      [](NoiseInjector& injector) {
        ShorRecovery rec(kNoiseless, full_policy(), 79);
        rec.set_injector(&injector);
        rec.run_cycle();
        rec.set_injector(nullptr);
        return rec.any_logical_error();
      },
      all_kinds());
  EXPECT_GT(scan.num_locations, 100u);
  EXPECT_EQ(scan.faults_failing, 0u);
}

TEST(FaultTolerance, UnverifiedAncillaBreaksSingleFaultSafety) {
  // Switching §3.3 verification off must expose single-fault failures —
  // this is the paper's argument for why verification is necessary.
  RecoveryPolicy no_verify = full_policy();
  no_verify.verify_ancilla = false;
  const auto scan = scan_single_faults(
      [&no_verify](NoiseInjector& injector) {
        SteaneRecovery rec(kNoiseless, no_verify, 80);
        rec.set_injector(&injector);
        rec.run_cycle();
        rec.set_injector(nullptr);
        return rec.residual_x_coset_weight() > 1 ||
               rec.residual_z_coset_weight() > 1;
      },
      all_kinds());
  EXPECT_GT(scan.faults_failing, 0u)
      << "expected unverified ancillas to propagate multi-errors";
}

TEST(FaultTolerance, SingleSyndromeReadingRisksMiscorrection) {
  // §3.4: without repetition, one measurement fault plus the resulting
  // mis-correction leaves two errors... a single fault alone must still not
  // produce a LOGICAL error (it adds at most one wrong correction on top of
  // zero real errors), but it can leave the block with a nonzero residual
  // where the repeating protocol leaves none.
  RecoveryPolicy no_repeat = full_policy();
  no_repeat.repeat_nontrivial_syndrome = false;
  const auto scan_residual = scan_single_faults(
      [&no_repeat](NoiseInjector& injector) {
        SteaneRecovery rec(kNoiseless, no_repeat, 81);
        rec.set_injector(&injector);
        rec.run_cycle();
        rec.set_injector(nullptr);
        return rec.residual_x_coset_weight() + rec.residual_z_coset_weight() > 1;
      },
      all_kinds());
  const auto scan_repeat = scan_single_faults(
      [](NoiseInjector& injector) {
        SteaneRecovery rec(kNoiseless, full_policy(), 81);
        rec.set_injector(&injector);
        rec.run_cycle();
        rec.set_injector(nullptr);
        return rec.residual_x_coset_weight() + rec.residual_z_coset_weight() > 1;
      },
      all_kinds());
  // Repetition strictly reduces the single-fault residual-error exposure.
  EXPECT_LE(scan_repeat.weighted_failing, scan_residual.weighted_failing);
}

TEST(FaultEnumeration, RecorderCountsLocationsDeterministically) {
  FaultPointInjector rec1, rec2;
  steane_cycle_fails_under(rec1, 99);
  steane_cycle_fails_under(rec2, 99);
  EXPECT_EQ(rec1.num_locations(), rec2.num_locations());
  EXPECT_EQ(rec1.kinds().size(), rec1.num_locations());
}

TEST(StochasticRecovery, LowNoiseRarelyFails) {
  const auto noise = sim::NoiseParams::uniform_gate(1e-4);
  Proportion failures;
  for (uint64_t shot = 0; shot < 2000; ++shot) {
    SteaneRecovery rec(noise, full_policy(), 1000 + shot);
    rec.run_cycle();
    failures.trials++;
    failures.successes += rec.any_logical_error();
  }
  // Failure is O(eps^2) ~ 1e-8-ish per cycle; 2000 shots should see none.
  EXPECT_EQ(failures.successes, 0u);
}

TEST(StochasticRecovery, MemoryChannelFidelityIsQuadratic) {
  // E1's core claim in miniature: with ideal recovery gadget (noiseless
  // gadget, noisy memory), the logical failure rate scales ~ c p².
  const double p1 = 0.02, p2 = 0.04;
  const size_t shots = 30000;
  auto failure_rate = [&](double p) {
    size_t fails = 0;
    for (uint64_t shot = 0; shot < shots; ++shot) {
      SteaneRecovery rec(kNoiseless, full_policy(), 5000 + shot);
      rec.apply_memory_noise(p);
      rec.run_cycle();
      fails += rec.any_logical_error();
    }
    return static_cast<double>(fails) / static_cast<double>(shots);
  };
  const double r1 = failure_rate(p1);
  const double r2 = failure_rate(p2);
  // Doubling p should roughly quadruple the failure rate.
  EXPECT_GT(r2 / r1, 2.5);
  EXPECT_LT(r2 / r1, 6.5);
}

// Herald-triggered ancilla reinit (the Fig. 15 detect-and-replace moved
// in-gadget): discarding heralded ancilla blocks must strictly beat
// feeding known-maximally-mixed qubits into syndrome extraction.
TEST(HeraldReinit, ReinitBeatsBlindUnderPureErasure) {
  sim::NoiseParams noise;
  noise.p_erase = 0.02;
  RecoveryPolicy blind;
  blind.herald_reinit = false;
  size_t reinit_fails = 0, blind_fails = 0;
  const uint64_t trials = 1500;
  for (uint64_t seed = 1; seed <= trials; ++seed) {
    SteaneRecovery with(noise, full_policy(), seed);
    with.run_cycle();
    reinit_fails += with.any_logical_error() ? 1 : 0;
    SteaneRecovery without(noise, blind, seed);
    without.run_cycle();
    blind_fails += without.any_logical_error() ? 1 : 0;
  }
  EXPECT_LT(reinit_fails, blind_fails)
      << "reinit " << reinit_fails << " vs blind " << blind_fails;
}

// An exhausted re-preparation budget keeps the last block and proceeds —
// certain erasure must not hang the retry loop or crash the cycle.
TEST(HeraldReinit, ExhaustedBudgetTerminatesAndProceeds) {
  sim::NoiseParams noise;
  noise.p_erase = 1.0;
  SteaneRecovery rec(noise, full_policy(), 3);
  rec.run_cycle();
  ShorRecovery shor(noise, full_policy(), 4);
  shor.run_cycle();
}

}  // namespace
}  // namespace ftqc::ft
