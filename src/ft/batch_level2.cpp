#include "ft/batch_level2.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/errors.h"
#include "ft/concatenated_recovery.h"
#include "ft/steane_circuits.h"
#include "ft/steane_recovery.h"
#include "sim/simd.h"

namespace ftqc::ft {

namespace {

constexpr uint32_t kData = 0;
constexpr uint32_t kAncA = 49;
constexpr uint32_t kAncB = 98;

}  // namespace

BatchLevel2Recovery::BatchLevel2Recovery(const sim::NoiseParams& noise,
                                         RecoveryPolicy policy, size_t shots,
                                         uint64_t seed)
    : sim_(kNumQubits, shots, seed),
      gadgets_(sim_, noise),
      noise_(noise),
      policy_(policy),
      words_(sim_.num_words()) {
  if (noise.p_leak > 0) {
    throw UnsupportedChannel("BatchLevel2Recovery", "p_leak > 0",
                             "Level2Recovery");
  }
  for (uint32_t q = 0; q < kAncB; ++q) data_and_a_.push_back(q);
  // The scratch ancillas [147,161) are alive only inside the nested level-1
  // cycles, which do their own storage accounting; the level-2 active set
  // stays the three 49-qubit blocks (as in the serial driver).
  for (uint32_t q = 0; q < kAncB + kBlock; ++q) all_.push_back(q);
}

void BatchLevel2Recovery::reset() { sim_.clear(); }

void BatchLevel2Recovery::inject_data(uint32_t q, char pauli) {
  FTQC_CHECK(q < kBlock, "data qubit index out of range");
  switch (pauli) {
    case 'X': sim_.inject_x(q); break;
    case 'Y': sim_.inject_y(q); break;
    case 'Z': sim_.inject_z(q); break;
    default: FTQC_CHECK(false, "inject_data expects X, Y or Z");
  }
}

void BatchLevel2Recovery::apply_memory_noise(double p) {
  for (uint32_t q = 0; q < kBlock; ++q) sim_.depolarize1(q, p);
}

void BatchLevel2Recovery::hierarchical_decode(const uint64_t* const rows[49],
                                              uint64_t* logicals,
                                              uint64_t* out) const {
  for (size_t sub = 0; sub < 7; ++sub) {
    const uint64_t* sub_rows[7];
    for (size_t i = 0; i < 7; ++i) sub_rows[i] = rows[7 * sub + i];
    batch_decode_rows(hamming_, sub_rows, /*logical=*/true,
                      logicals + sub * words_, words_);
  }
  const uint64_t* logical_rows[7];
  for (size_t sub = 0; sub < 7; ++sub) logical_rows[sub] = logicals + sub * words_;
  batch_decode_rows(hamming_, logical_rows, /*logical=*/true, out, words_);
}

void BatchLevel2Recovery::run_subblock_recoveries(uint32_t base,
                                                  const uint64_t* lane_mask) {
  static constexpr std::array<uint32_t, 7> kScrA = {147, 148, 149, 150,
                                                    151, 152, 153};
  static constexpr std::array<uint32_t, 7> kScrB = {154, 155, 156, 157,
                                                    158, 159, 160};
  struct SubblockCycle {
    SteaneCycleLayout layout;
    SteaneCycleCircuits circuits;
  };
  // Compiled exactly once (thread-safe static init; read-only afterwards):
  // the batch engine amortizes one compile over every block of every sweep.
  static const std::array<std::array<SubblockCycle, 7>, 2> kCycles = [] {
    std::array<std::array<SubblockCycle, 7>, 2> cycles;
    for (const uint32_t b : {kData, kAncA}) {
      for (size_t sub = 0; sub < 7; ++sub) {
        SubblockCycle& cy = cycles[b == kData ? 0 : 1][sub];
        cy.layout = SteaneCycleLayout{level2_subblock(b, sub), kScrA, kScrB};
        cy.circuits = compile_steane_cycle(cy.layout);
      }
    }
    return cycles;
  }();
  FTQC_CHECK(base == kData || base == kAncA,
             "subblock recoveries run on the data block or ancilla A");
  for (const SubblockCycle& cy : kCycles[base == kData ? 0 : 1]) {
    run_batch_steane_cycle(sim_, noise_, policy_, hamming_, cy.layout,
                           cy.circuits, lane_mask);
  }
}

void BatchLevel2Recovery::prepare_verified_zero_ancilla(
    const uint64_t* lane_mask) {
  // Compiled once: identical for every instance (the Hamming code is
  // stateless); the serial driver replays the very same circuits.
  static const sim::Circuit kPrepA = level2_zero_prep(gf2::Hamming743{}, kAncA);
  static const sim::Circuit kPrepB = level2_zero_prep(gf2::Hamming743{}, kAncB);
  gadgets_.run(kPrepA, data_and_a_, lane_mask);
  if (policy_.level2_discipline == Level2Discipline::kExRec) {
    // Extended rectangle: scrub every ancilla subblock with a nested
    // level-1 recovery before the §3.3 verification; the current lane mask
    // threads through so only the lanes executing this preparation collect
    // the interleave's faults and corrections.
    run_subblock_recoveries(kAncA, lane_mask);
  }
  if (!policy_.verify_ancilla || policy_.verification_rounds <= 0) return;

  static const sim::Circuit kVerifyCnots = [] {
    sim::Circuit cnots;
    for (uint32_t i = 0; i < kBlock; ++i) cnots.cx(kAncA + i, kAncB + i);
    cnots.tick();
    for (uint32_t i = 0; i < kBlock; ++i) cnots.m(kAncB + i);
    cnots.tick();
    return cnots;
  }();
  // A lane is fixed only when EVERY round votes "logically flipped" (the
  // serial votes_one == rounds).
  std::vector<uint64_t> votes(words_, ~uint64_t{0});
  std::vector<uint64_t> logicals(7 * words_), vote(words_);
  for (int round = 0; round < policy_.verification_rounds; ++round) {
    gadgets_.run(kPrepB, all_, lane_mask);
    const auto rows = gadgets_.run(kVerifyCnots, all_, lane_mask);
    FTQC_CHECK(rows.size() == kBlock, "verification must read 49 qubits");
    const uint64_t* flip_rows[49];
    for (size_t i = 0; i < kBlock; ++i) {
      flip_rows[i] = sim_.record().row(rows[i]);
    }
    hierarchical_decode(flip_rows, logicals.data(), vote.data());
    sim::simd::and_into(votes.data(), vote.data(), words_);
    for (uint32_t i = 0; i < kBlock; ++i) sim_.reset(kAncB + i);
  }
  if (lane_mask != nullptr) {
    sim::simd::and_into(votes.data(), lane_mask, words_);
  }
  if (!batch_any_lane(votes.data(), words_)) return;

  // Logical flip of the level-2 ancilla: logical X on subblocks {0,1,2},
  // each a 3-qubit bitwise NOT on the subblock's logical-X support. The
  // serial path runs a 9-NOT circuit through run_gadget (gate noise on the
  // nine targets, storage on the rest of data+ancilla A) then flips the
  // frame; replay that masked per lane.
  std::array<bool, kAncB> is_target{};
  std::vector<uint32_t> targets;
  for (size_t sub : {size_t{0}, size_t{1}, size_t{2}}) {
    const auto q = level2_subblock(kAncA, sub);
    for (size_t i : {size_t{0}, size_t{1}, size_t{2}}) {
      targets.push_back(q[i]);
      is_target[q[i]] = true;
    }
  }
  for (uint32_t q : targets) {
    batch_on_gate1(sim_, noise_, q, votes.data());
  }
  for (uint32_t q : data_and_a_) {
    if (!is_target[q]) batch_on_storage(sim_, noise_, q, votes.data());
  }
  for (uint32_t q : targets) sim_.inject_x_masked(q, votes.data());
}

void BatchLevel2Recovery::extract_syndrome(bool phase_type,
                                           const uint64_t* lane_mask,
                                           uint64_t* rows24) {
  prepare_verified_zero_ancilla(lane_mask);

  static const std::array<sim::Circuit, 2> kExtract = [] {
    std::array<sim::Circuit, 2> gadgets;
    for (const bool phase : {false, true}) {
      sim::Circuit& gadget = gadgets[phase];
      if (phase) {
        for (uint32_t i = 0; i < kBlock; ++i) gadget.cx(kAncA + i, kData + i);
        gadget.tick();
        for (uint32_t i = 0; i < kBlock; ++i) gadget.mx(kAncA + i);
        gadget.tick();
      } else {
        for (uint32_t i = 0; i < kBlock; ++i) gadget.h(kAncA + i);
        gadget.tick();
        for (uint32_t i = 0; i < kBlock; ++i) gadget.cx(kData + i, kAncA + i);
        gadget.tick();
        for (uint32_t i = 0; i < kBlock; ++i) gadget.m(kAncA + i);
        gadget.tick();
      }
    }
    return gadgets;
  }();
  const auto rows = gadgets_.run(kExtract[phase_type], data_and_a_, lane_mask);
  FTQC_CHECK(rows.size() == kBlock, "extraction must read 49 qubits");
  for (uint32_t i = 0; i < kBlock; ++i) sim_.reset(kAncA + i);

  // One measurement, both levels (§5): per-subblock Hamming syndrome rows
  // plus the level-2 syndrome rows over the bit-sliced subblock logical
  // values. Copied out of the record immediately: nested gadget replays
  // (the exRec data recoveries, the §3.4 repeat) drop the record.
  const gf2::BitMat& h = hamming_.check_matrix();
  std::vector<uint64_t> logicals(7 * words_);
  for (size_t sub = 0; sub < 7; ++sub) {
    const uint64_t* sub_rows[7];
    for (size_t i = 0; i < 7; ++i) {
      sub_rows[i] = sim_.record().row(rows[7 * sub + i]);
    }
    for (size_t j = 0; j < 3; ++j) {
      uint64_t* out = rows24 + (3 * sub + j) * words_;
      std::fill_n(out, words_, 0);
      for (size_t i = 0; i < 7; ++i) {
        if (!h.row(j).get(i)) continue;
        sim::simd::xor_into(out, sub_rows[i], words_);
      }
    }
    batch_decode_rows(hamming_, sub_rows, /*logical=*/true,
                      logicals.data() + sub * words_, words_);
  }
  for (size_t j = 0; j < 3; ++j) {
    uint64_t* out = rows24 + (21 + j) * words_;
    std::fill_n(out, words_, 0);
    for (size_t sub = 0; sub < 7; ++sub) {
      if (!h.row(j).get(sub)) continue;
      sim::simd::xor_into(out, logicals.data() + sub * words_, words_);
    }
  }
}

void BatchLevel2Recovery::correct(bool phase_type, const uint64_t* rows24,
                                  const uint64_t* act_mask) {
  if (!batch_any_lane(act_mask, words_)) return;
  // With interleaved data recoveries the per-subblock physical errors were
  // already scrubbed between extraction and this point; re-applying the
  // extraction's level-1 corrections would re-inject them, so only the
  // top-level logical fix remains ours to apply.
  const bool delegate_sub_corrections =
      policy_.level2_discipline == Level2Discipline::kExRec &&
      policy_.exrec_data_recoveries;

  // Per-qubit target masks: l1 = level-1 physical fixes, l2 = the level-2
  // logical fix (subblocks' logical-X/Z support {0,1,2}). A lane can hit
  // the same qubit through both — the serial circuit then carries two gates
  // (two fault opportunities) whose injections cancel, so gate noise is
  // applied per component and the injection uses the XOR.
  std::vector<uint64_t> l1(kBlock * words_, 0), l2(kBlock * words_, 0);
  std::vector<uint64_t> pos(7 * words_);
  if (!delegate_sub_corrections) {
    for (size_t sub = 0; sub < 7; ++sub) {
      batch_decode_positions(rows24 + 3 * sub * words_, act_mask, pos.data(),
                             words_);
      std::copy_n(pos.data(), 7 * words_, l1.data() + 7 * sub * words_);
    }
  }
  batch_decode_positions(rows24 + 21 * words_, act_mask, pos.data(), words_);
  for (size_t bad = 0; bad < 7; ++bad) {
    for (size_t i = 0; i < 3; ++i) {
      std::copy_n(pos.data() + bad * words_, words_,
                  l2.data() + (7 * bad + i) * words_);
    }
  }

  // Lanes with at least one target; lanes of act_mask whose syndrome
  // decoded to "no error" run no fix circuit at all (serial early return).
  std::vector<uint64_t> has(words_, 0);
  for (size_t q = 0; q < kBlock; ++q) {
    sim::simd::or_into(has.data(), l1.data() + q * words_, words_);
    sim::simd::or_into(has.data(), l2.data() + q * words_, words_);
  }
  if (!batch_any_lane(has.data(), words_)) return;

  for (size_t q = 0; q < kBlock; ++q) {
    const uint64_t* a = l1.data() + q * words_;
    if (batch_any_lane(a, words_)) {
      sim_.depolarize1(q, noise_.eps_gate1, a);
    }
  }
  for (size_t q = 0; q < kBlock; ++q) {
    const uint64_t* b = l2.data() + q * words_;
    if (batch_any_lane(b, words_)) {
      sim_.depolarize1(q, noise_.eps_gate1, b);
    }
  }
  std::vector<uint64_t> mask(words_);
  for (size_t q = 0; q < kBlock; ++q) {
    const uint64_t* a = l1.data() + q * words_;
    const uint64_t* b = l2.data() + q * words_;
    // has & ~a & ~b, two register-wide passes.
    sim::simd::andnot(mask.data(), has.data(), a, words_);
    sim::simd::andnot(mask.data(), mask.data(), b, words_);
    sim_.depolarize1(q, noise_.eps_store, mask.data());
  }
  for (size_t q = 0; q < kBlock; ++q) {
    const uint64_t* a = l1.data() + q * words_;
    const uint64_t* b = l2.data() + q * words_;
    std::copy_n(a, words_, mask.data());
    sim::simd::xor_into(mask.data(), b, words_);
    if (!batch_any_lane(mask.data(), words_)) continue;
    if (phase_type) {
      sim_.inject_z_masked(q, mask.data());
    } else {
      sim_.inject_x_masked(q, mask.data());
    }
  }
}

void BatchLevel2Recovery::run_cycle() {
  for (const bool phase_type : {false, true}) {
    run_batch_repeat_policy(
        kSyndromeRows, words_, policy_.repeat_nontrivial_syndrome,
        /*active=*/nullptr,
        [&](const uint64_t* mask, uint64_t* out) {
          extract_syndrome(phase_type, mask, out);
        },
        [&](const uint64_t* syn, const uint64_t* act) {
          if (policy_.level2_discipline == Level2Discipline::kExRec &&
              policy_.exrec_data_recoveries && batch_any_lane(act, words_)) {
            // Trailing leg of the extended rectangle: level-1 recoveries on
            // the data subblocks between extraction and correction, only on
            // the lanes that are about to correct (the serial branch).
            run_subblock_recoveries(kData, act);
          }
          correct(phase_type, syn, act);
        });
  }
}

void BatchLevel2Recovery::residual_logical(bool phase_type,
                                           uint64_t* out) const {
  const uint64_t* rows[49];
  for (uint32_t q = 0; q < kBlock; ++q) {
    rows[q] = phase_type ? sim_.z_flips(q) : sim_.x_flips(q);
  }
  std::vector<uint64_t> logicals(7 * words_);
  hierarchical_decode(rows, logicals.data(), out);
}

uint64_t BatchLevel2Recovery::count_any_logical_error(size_t num_lanes) const {
  std::vector<uint64_t> lx(words_), lz(words_);
  residual_logical(/*phase_type=*/false, lx.data());
  residual_logical(/*phase_type=*/true, lz.data());
  sim::simd::or_into(lx.data(), lz.data(), words_);
  return batch_count_lanes(lx.data(), words_,
                           std::min(num_lanes, sim_.num_shots()));
}

bool BatchLevel2Recovery::lane_logical(bool phase_type, size_t shot) const {
  // One lane only: the whole-register bit-sliced decode would make a
  // loop-over-shots caller quadratic.
  gf2::BitVec logicals(7);
  for (size_t sub = 0; sub < 7; ++sub) {
    gf2::BitVec word(7);
    for (size_t i = 0; i < 7; ++i) {
      const size_t q = 7 * sub + i;
      word.set(i, phase_type ? sim_.z_flip(q, shot) : sim_.x_flip(q, shot));
    }
    logicals.set(sub, hamming_.decode_logical(word));
  }
  return hamming_.decode_logical(logicals);
}

bool BatchLevel2Recovery::logical_x_error(size_t shot) const {
  return lane_logical(/*phase_type=*/false, shot);
}

bool BatchLevel2Recovery::logical_z_error(size_t shot) const {
  return lane_logical(/*phase_type=*/true, shot);
}

}  // namespace ftqc::ft
