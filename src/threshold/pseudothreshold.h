#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "ft/recovery.h"
#include "sim/noise_model.h"
#include "sim/shot_runner.h"

namespace ftqc::threshold {

// Circuit-level Monte Carlo for the level-1 pseudothreshold (E5): run one
// fault-tolerant recovery cycle of the chosen method on a clean block under
// the uniform gate-error model and report the logical failure probability
// after an ideal final decode. The pseudothreshold is the ε where the
// encoded cycle stops beating a bare physical gate (failure = ε).
// kFlag is the flag-qubit extraction family (universal/flag_recovery.h) on
// the Steane code: two ancillas per generator instead of the verified cat.
enum class RecoveryMethod { kSteane, kShor, kFlag };

struct CyclePoint {
  double eps = 0;
  Proportion failures;
  // Wall-clock of the shot loop, for the BENCH_*.json trend artifacts.
  double seconds = 0;
  [[nodiscard]] double shots_per_sec() const {
    return seconds > 0 ? static_cast<double>(failures.trials) / seconds : 0.0;
  }
};

// One sweep point, driven by a ShotRunner. Engine selection:
//  * kFrame — one serial FrameSim recovery per shot (OpenMP over shots);
//  * kBatch — BatchSteaneRecovery / BatchShorRecovery, 64 shots per word
//    (OpenMP over blocks). The Shor cat-retry loop is data-dependent per
//    shot; the batch driver replays it as masked re-replay of failed lanes.
// kExact is rejected: the recovery gadgets are frame-native.
// `parallel = false` opts the shot loop out of OpenMP — sweep-scheduler
// points do this because the worker pool already owns all parallelism.
[[nodiscard]] CyclePoint measure_cycle_failure(
    RecoveryMethod method, double eps_gate, size_t shots, uint64_t seed,
    double eps_store = 0.0, sim::ShotEngine engine = sim::ShotEngine::kFrame,
    bool parallel = true);

// Sweep a list of ε values.
[[nodiscard]] std::vector<CyclePoint> sweep_cycle_failure(
    RecoveryMethod method, const std::vector<double>& eps_values, size_t shots,
    uint64_t seed, sim::ShotEngine engine = sim::ShotEngine::kFrame);

// Quadratic-fit coefficient c from failure = c·ε² (least squares through the
// sweep points, weighted by shots); 1/c estimates the pseudothreshold.
[[nodiscard]] double fit_quadratic_coefficient(const std::vector<CyclePoint>& points);

}  // namespace ftqc::threshold
