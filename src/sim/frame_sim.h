#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gf2/bitvec.h"
#include "pauli/pauli_string.h"
#include "sim/circuit.h"

namespace ftqc::sim {

// Pauli-frame simulator: tracks the Pauli difference between the actual noisy
// run and a noiseless reference run of the same Clifford circuit. A frame is
// a pair of bit vectors (X part, Z part). Measurement results are reported as
// *flips* relative to the reference outcome; circuits used with this engine
// are designed so the reference value of every decoded quantity (syndrome
// bits, parities, verification checks) is zero, which makes the flip itself
// the quantity of interest.
//
// After a Z measurement the physical state collapses, making the Z frame on
// the measured qubit gauge; a fresh random Z is injected to keep frame
// statistics faithful (the standard trick from Stim-style frame samplers).
class FrameSim {
 public:
  explicit FrameSim(size_t num_qubits, uint64_t seed = 1);

  [[nodiscard]] size_t num_qubits() const { return n_; }

  void clear();

  // --- Clifford frame propagation ----------------------------------------
  void apply_h(size_t q);
  void apply_s(size_t q);     // same frame action as S_DAG
  void apply_cx(size_t control, size_t target);
  void apply_cz(size_t a, size_t b);
  void apply_swap(size_t a, size_t b);

  // --- Errors -------------------------------------------------------------
  void inject_x(size_t q) { x_.flip(q); }
  void inject_y(size_t q) { x_.flip(q); z_.flip(q); }
  void inject_z(size_t q) { z_.flip(q); }
  void inject(const pauli::PauliString& p);
  void depolarize1(size_t q, double p);
  void depolarize2(size_t a, size_t b, double p);
  void x_error(size_t q, double p);
  void z_error(size_t q, double p);
  void y_error(size_t q, double p);
  // Biased Pauli channels (see Gate::PAULI_CHANNEL1/2): X/Y/Z with
  // probabilities px/py/pz; the 2-qubit form takes the total probability
  // and the conditional axis fractions (fz = 1 - fx - fy).
  void pauli_channel1(size_t q, double px, double py, double pz);
  void pauli_channel2(size_t a, size_t b, double p, double fx, double fy);

  // --- Measurement / reset (flip semantics) -------------------------------
  // Flip of a Z-basis measurement outcome relative to the reference.
  bool measure_z(size_t q);
  bool measure_x(size_t q);
  void reset(size_t q);

  // Flip of a transversal Z-measurement parity over `qubits` (no collapse
  // randomization; use when qubits are measured destructively en bloc).
  [[nodiscard]] bool destructive_z_flip(size_t q) const { return x_.get(q); }
  [[nodiscard]] bool destructive_x_flip(size_t q) const { return z_.get(q); }

  // --- Leakage ------------------------------------------------------------
  void leak_error(size_t q, double p);
  void mark_leaked(size_t q) { leaked_[q] = true; }
  [[nodiscard]] bool is_leaked(size_t q) const { return leaked_[q]; }

  // --- Heralded erasure ----------------------------------------------------
  // With probability p: herald the qubit and replace it by the maximally
  // mixed state — in frame space, a uniform Pauli twirl (the frame's X and Z
  // bits become fresh uniform random bits). Gates keep acting normally on an
  // erased qubit, which is what lets the batch engine run erasure at full
  // width (contrast leak_error). reset() clears the herald: a freshly
  // prepared replacement qubit is not erased.
  void erase_error(size_t q, double p);
  // Deterministic herald-only variant (no frame randomization, no RNG
  // draws): the cross-engine pinning tests use it to compare herald planes
  // bit for bit.
  void mark_erased(size_t q) { erased_[q] = true; }
  [[nodiscard]] bool is_erased(size_t q) const { return erased_[q]; }
  // Clears every herald without touching frames: drivers that consume
  // heralds once per decode window call this between windows.
  void clear_heralds() {
    std::fill(erased_.begin(), erased_.end(), false);
  }

  // --- Introspection -------------------------------------------------------
  [[nodiscard]] const gf2::BitVec& x_frame() const { return x_; }
  [[nodiscard]] const gf2::BitVec& z_frame() const { return z_; }
  [[nodiscard]] pauli::PauliString frame() const;

  Rng& rng() { return rng_; }

 private:
  size_t n_;
  gf2::BitVec x_;
  gf2::BitVec z_;
  std::vector<bool> leaked_;
  std::vector<bool> erased_;
  Rng rng_;
};

}  // namespace ftqc::sim
