#include <gtest/gtest.h>

#include <array>
#include <complex>

#include "pauli/pauli_string.h"

namespace ftqc::pauli {
namespace {

using cd = std::complex<double>;

TEST(PauliString, ParseAndPrint) {
  const auto p = PauliString::from_string("IXYZ");
  EXPECT_EQ(p.num_qubits(), 4u);
  EXPECT_EQ(p.pauli_at(0), 'I');
  EXPECT_EQ(p.pauli_at(1), 'X');
  EXPECT_EQ(p.pauli_at(2), 'Y');
  EXPECT_EQ(p.pauli_at(3), 'Z');
  EXPECT_EQ(p.to_string(), "+IXYZ");
  EXPECT_EQ(PauliString::from_string("-XX").to_string(), "-XX");
  EXPECT_EQ(PauliString::from_string("iZ").to_string(), "+iZ");
  EXPECT_EQ(PauliString::from_string("-iY").to_string(), "-iY");
}

TEST(PauliString, WeightAndIdentity) {
  EXPECT_EQ(PauliString::from_string("IXYZ").weight(), 3u);
  EXPECT_TRUE(PauliString(5).is_identity());
  EXPECT_FALSE(PauliString::from_string("IIIX").is_identity());
}

TEST(PauliString, StabilizerGeneratorsOfSteaneCodeCommute) {
  // Eq. (18): the six generators of Steane's code all commute pairwise.
  const std::array<PauliString, 6> gens = {
      PauliString::from_string("IIIZZZZ"), PauliString::from_string("IZZIIZZ"),
      PauliString::from_string("ZIZIZIZ"), PauliString::from_string("IIIXXXX"),
      PauliString::from_string("IXXIIXX"), PauliString::from_string("XIXIXIX")};
  for (const auto& a : gens) {
    for (const auto& b : gens) {
      EXPECT_TRUE(a.commutes_with(b));
    }
  }
}

TEST(PauliString, AnticommutationBasics) {
  const auto x = PauliString::from_string("X");
  const auto y = PauliString::from_string("Y");
  const auto z = PauliString::from_string("Z");
  EXPECT_FALSE(x.commutes_with(z));
  EXPECT_FALSE(x.commutes_with(y));
  EXPECT_FALSE(y.commutes_with(z));
  EXPECT_TRUE(x.commutes_with(x));
  // XX vs ZZ: two anticommuting positions -> commute overall.
  EXPECT_TRUE(PauliString::from_string("XX").commutes_with(
      PauliString::from_string("ZZ")));
  EXPECT_FALSE(PauliString::from_string("XI").commutes_with(
      PauliString::from_string("ZI")));
}

// The single-qubit multiplication table, exhaustively: products and phases.
struct MulCase {
  const char* a;
  const char* b;
  const char* expect;
};

class PauliMulTable : public ::testing::TestWithParam<MulCase> {};

TEST_P(PauliMulTable, Product) {
  const auto& c = GetParam();
  const auto prod =
      PauliString::from_string(c.a) * PauliString::from_string(c.b);
  EXPECT_EQ(prod.to_string(), c.expect)
      << c.a << " * " << c.b << " should be " << c.expect;
}

INSTANTIATE_TEST_SUITE_P(
    SingleQubit, PauliMulTable,
    ::testing::Values(MulCase{"X", "X", "+I"}, MulCase{"Y", "Y", "+I"},
                      MulCase{"Z", "Z", "+I"}, MulCase{"X", "Y", "+iZ"},
                      MulCase{"Y", "X", "-iZ"}, MulCase{"Y", "Z", "+iX"},
                      MulCase{"Z", "Y", "-iX"}, MulCase{"Z", "X", "+iY"},
                      MulCase{"X", "Z", "-iY"}, MulCase{"I", "X", "+X"},
                      MulCase{"Z", "I", "+Z"}));

INSTANTIATE_TEST_SUITE_P(
    MultiQubit, PauliMulTable,
    ::testing::Values(MulCase{"XX", "ZZ", "-YY"},   // (-iY)(-iY) = -YY
                      MulCase{"XZ", "ZX", "+YY"},   // (-iY)(+iY) = +YY
                      MulCase{"XYZ", "XYZ", "+III"},
                      MulCase{"XIZ", "ZIX", "+YIY"}));

TEST(PauliString, ProductAssociativity) {
  const auto a = PauliString::from_string("XYZI");
  const auto b = PauliString::from_string("YYXZ");
  const auto c = PauliString::from_string("ZIXY");
  EXPECT_EQ(((a * b) * c).to_string(), (a * (b * c)).to_string());
}

TEST(PauliString, SelfInverseUpToPhase) {
  const auto p = PauliString::from_string("XYZYX");
  const auto sq = p * p;
  EXPECT_TRUE(sq.equals_up_to_phase(PauliString(5)));
  EXPECT_EQ(sq.phase_exponent(), 0);  // Paulis are involutions
}

// Verify the phase convention against explicit 2x2 matrices.
using Mat2 = std::array<std::array<cd, 2>, 2>;

Mat2 matrix_of(char pauli) {
  switch (pauli) {
    case 'X': return {{{cd(0), cd(1)}, {cd(1), cd(0)}}};
    case 'Y': return {{{cd(0), cd(0, -1)}, {cd(0, 1), cd(0)}}};
    case 'Z': return {{{cd(1), cd(0)}, {cd(0), cd(-1)}}};
    default: return {{{cd(1), cd(0)}, {cd(0), cd(1)}}};
  }
}

Mat2 mul(const Mat2& a, const Mat2& b) {
  Mat2 c{};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      c[i][j] = a[i][0] * b[0][j] + a[i][1] * b[1][j];
    }
  }
  return c;
}

TEST(PauliString, PhaseMatchesMatrixAlgebraExhaustively) {
  const char paulis[] = {'I', 'X', 'Y', 'Z'};
  const cd phases[] = {cd(1), cd(0, 1), cd(-1), cd(0, -1)};
  for (char a : paulis) {
    for (char b : paulis) {
      const auto pa = PauliString::single(1, 0, a);
      const auto pb = PauliString::single(1, 0, b);
      const auto prod = pa * pb;
      const Mat2 expected = mul(matrix_of(a), matrix_of(b));
      const Mat2 base = matrix_of(prod.pauli_at(0));
      const cd phase = phases[prod.phase_exponent()];
      for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
          EXPECT_NEAR(std::abs(phase * base[i][j] - expected[i][j]), 0.0, 1e-12)
              << a << " * " << b;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ftqc::pauli
