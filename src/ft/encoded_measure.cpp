#include "ft/encoded_measure.h"

#include "codes/library.h"
#include "codes/lookup_decoder.h"
#include "common/check.h"
#include "gf2/hamming.h"
#include "pauli/pauli_string.h"

namespace ftqc::ft {

using pauli::PauliString;

bool destructive_logical_measure(sim::TableauSim& sim,
                                 std::span<const uint32_t> block) {
  FTQC_CHECK(block.size() == 7, "Steane block expected");
  static const gf2::Hamming743 hamming;
  gf2::BitVec word(7);
  for (size_t i = 0; i < 7; ++i) word.set(i, sim.measure_z(block[i]));
  return hamming.decode_logical(word);
}

bool nondestructive_logical_measure(sim::TableauSim& sim,
                                    std::span<const uint32_t> block,
                                    uint32_t ancilla, int repetitions) {
  FTQC_CHECK(block.size() == 7, "Steane block expected");
  int ones = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    sim.reset(ancilla);
    // Copy the parity through the weight-3 logical-Z support {0,1,2}.
    sim.apply_cx(block[0], ancilla);
    sim.apply_cx(block[1], ancilla);
    sim.apply_cx(block[2], ancilla);
    ones += sim.measure_z(ancilla) ? 1 : 0;
  }
  return 2 * ones > repetitions;
}

void project_to_logical_zero(sim::TableauSim& sim,
                             std::span<const uint32_t> block,
                             uint32_t ancilla) {
  FTQC_CHECK(block.size() == 7, "Steane block expected");
  const auto& code = codes::steane();
  // Fault-tolerant error correction projects any input onto the code space
  // (§3.5). At the tableau level we realize the projection by measuring the
  // stabilizer generators and applying the lookup correction.
  gf2::BitVec syndrome(code.num_generators());
  for (size_t g = 0; g < code.num_generators(); ++g) {
    PauliString gen(sim.num_qubits());
    for (size_t q = 0; q < 7; ++q) {
      gen.set_pauli(block[q], code.generators()[g].pauli_at(q));
    }
    syndrome.set(g, sim.measure_pauli(gen));
  }
  static const codes::LookupDecoder decoder(codes::steane());
  const PauliString correction = decoder.decode(syndrome);
  for (size_t q = 0; q < 7; ++q) {
    const char p = correction.pauli_at(q);
    if (p == 'X') sim.apply_x(block[q]);
    if (p == 'Y') sim.apply_y(block[q]);
    if (p == 'Z') sim.apply_z(block[q]);
  }
  // Measure the logical qubit; flip the block on outcome 1.
  if (nondestructive_logical_measure(sim, block, ancilla)) {
    for (uint32_t q : block) sim.apply_x(q);
  }
}

}  // namespace ftqc::ft
