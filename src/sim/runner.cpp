#include "sim/runner.h"

#include "common/check.h"

namespace ftqc::sim {

namespace {

// Samples a uniform non-identity single-qubit Pauli index: 0=X, 1=Y, 2=Z.
template <typename Sim>
void apply_sampled_pauli(Sim& sim, size_t q, uint64_t which) {
  switch (which) {
    case 0: sim.apply_x(q); break;
    case 1: sim.apply_y(q); break;
    default: sim.apply_z(q); break;
  }
}

// Applies the Pauli encoded by two bits (1=X, 2=Z, 3=Y), as used by the
// 15-way two-qubit depolarizing channel.
template <typename Sim>
void apply_coded_pauli(Sim& sim, size_t q, uint64_t code) {
  switch (code) {
    case 1: sim.apply_x(q); break;
    case 2: sim.apply_z(q); break;
    case 3: sim.apply_y(q); break;
    default: break;
  }
}

template <typename Sim>
bool is_cond_satisfied(const Operation& op, const std::vector<uint8_t>& record) {
  if (op.cond < 0) return true;
  FTQC_CHECK(static_cast<size_t>(op.cond) < record.size(),
             "conditional references future measurement");
  return record[static_cast<size_t>(op.cond)] != 0;
}

}  // namespace

std::vector<uint8_t> run_circuit(TableauSim& sim, const Circuit& circuit) {
  FTQC_CHECK(circuit.num_qubits() <= sim.num_qubits(),
             "circuit larger than simulator register");
  std::vector<uint8_t> record;
  record.reserve(circuit.num_measurements());
  Rng& rng = sim.rng();

  for (const Operation& op : circuit.ops()) {
    if (!is_cond_satisfied<TableauSim>(op, record)) {
      if (gate_records_measurement(op.gate)) {
        FTQC_CHECK(false, "measurements cannot be conditional");
      }
      continue;
    }
    switch (op.gate) {
      case Gate::I:
      case Gate::TICK: break;
      case Gate::X: sim.apply_x(op.targets[0]); break;
      case Gate::Y: sim.apply_y(op.targets[0]); break;
      case Gate::Z: sim.apply_z(op.targets[0]); break;
      case Gate::H: sim.apply_h(op.targets[0]); break;
      case Gate::S: sim.apply_s(op.targets[0]); break;
      case Gate::S_DAG: sim.apply_s_dag(op.targets[0]); break;
      case Gate::CX: sim.apply_cx(op.targets[0], op.targets[1]); break;
      case Gate::CZ: sim.apply_cz(op.targets[0], op.targets[1]); break;
      case Gate::SWAP: sim.apply_swap(op.targets[0], op.targets[1]); break;
      case Gate::M: record.push_back(sim.measure_z(op.targets[0])); break;
      case Gate::MX: record.push_back(sim.measure_x(op.targets[0])); break;
      case Gate::MR: {
        const bool out = sim.measure_z(op.targets[0]);
        record.push_back(out);
        if (out) sim.apply_x(op.targets[0]);
        break;
      }
      case Gate::R: sim.reset(op.targets[0]); break;
      case Gate::DEPOLARIZE1:
        if (rng.bernoulli(op.arg)) {
          apply_sampled_pauli(sim, op.targets[0], rng.next_below(3));
        }
        break;
      case Gate::DEPOLARIZE2:
        if (rng.bernoulli(op.arg)) {
          const uint64_t which = rng.next_below(15) + 1;
          apply_coded_pauli(sim, op.targets[0], which & 3);
          apply_coded_pauli(sim, op.targets[1], (which >> 2) & 3);
        }
        break;
      case Gate::X_ERROR:
        if (rng.bernoulli(op.arg)) sim.apply_x(op.targets[0]);
        break;
      case Gate::Y_ERROR:
        if (rng.bernoulli(op.arg)) sim.apply_y(op.targets[0]);
        break;
      case Gate::Z_ERROR:
        if (rng.bernoulli(op.arg)) sim.apply_z(op.targets[0]);
        break;
      case Gate::LEAK_ERROR:
        if (rng.bernoulli(op.arg)) sim.mark_leaked(op.targets[0]);
        break;
      case Gate::PAULI_CHANNEL1:
        if (rng.bernoulli(op.arg + op.arg2 + op.arg3)) {
          const double u = rng.next_double() * (op.arg + op.arg2 + op.arg3);
          apply_sampled_pauli(sim, op.targets[0],
                              u < op.arg ? 0 : (u < op.arg + op.arg2 ? 1 : 2));
        }
        break;
      case Gate::PAULI_CHANNEL2:
        if (rng.bernoulli(op.arg)) {
          const double wx = 3.0 * op.arg2;
          const double wy = 3.0 * op.arg3;
          const auto draw_code = [&]() -> uint64_t {
            const double u = rng.next_double() * 4.0;
            if (u < 1.0) return 0;
            if (u < 1.0 + wx) return 1;
            if (u < 1.0 + wx + wy) return 3;
            return 2;
          };
          uint64_t ca = 0, cb = 0;
          do {
            ca = draw_code();
            cb = draw_code();
          } while (ca == 0 && cb == 0);
          apply_coded_pauli(sim, op.targets[0], ca);
          apply_coded_pauli(sim, op.targets[1], cb);
        }
        break;
      case Gate::ERASE:
        // Replace-with-mixed in the exact engine: reset to |0>, then X with
        // probability 1/2 (a Z on |0> is trivial, so two draws suffice as
        // one). The herald is tracked by the frame engines; the exact
        // engine realizes the channel without recording it.
        if (rng.bernoulli(op.arg)) {
          sim.reset(op.targets[0]);
          if (rng.next_u64() & 1) sim.apply_x(op.targets[0]);
        }
        break;
      case Gate::INJECT_X: sim.apply_x(op.targets[0]); break;
      case Gate::INJECT_Y: sim.apply_y(op.targets[0]); break;
      case Gate::INJECT_Z: sim.apply_z(op.targets[0]); break;
      default:
        FTQC_CHECK(false, std::string("TableauSim cannot run gate ") +
                              gate_name(op.gate));
    }
  }
  return record;
}

std::vector<uint8_t> run_circuit(StateVectorSim& sim, const Circuit& circuit) {
  FTQC_CHECK(circuit.num_qubits() <= sim.num_qubits(),
             "circuit larger than simulator register");
  std::vector<uint8_t> record;
  record.reserve(circuit.num_measurements());
  Rng& rng = sim.rng();

  for (const Operation& op : circuit.ops()) {
    if (!is_cond_satisfied<StateVectorSim>(op, record)) continue;
    switch (op.gate) {
      case Gate::I:
      case Gate::TICK: break;
      case Gate::X: sim.apply_x(op.targets[0]); break;
      case Gate::Y: sim.apply_y(op.targets[0]); break;
      case Gate::Z: sim.apply_z(op.targets[0]); break;
      case Gate::H: sim.apply_h(op.targets[0]); break;
      case Gate::S: sim.apply_s(op.targets[0]); break;
      case Gate::S_DAG: sim.apply_s_dag(op.targets[0]); break;
      case Gate::RX: sim.apply_rx(op.targets[0], op.arg); break;
      case Gate::RZ: sim.apply_rz(op.targets[0], op.arg); break;
      case Gate::CX: sim.apply_cx(op.targets[0], op.targets[1]); break;
      case Gate::CZ: sim.apply_cz(op.targets[0], op.targets[1]); break;
      case Gate::SWAP: sim.apply_swap(op.targets[0], op.targets[1]); break;
      case Gate::CCX:
        sim.apply_ccx(op.targets[0], op.targets[1], op.targets[2]);
        break;
      case Gate::CCZ:
        sim.apply_ccz(op.targets[0], op.targets[1], op.targets[2]);
        break;
      case Gate::M: record.push_back(sim.measure_z(op.targets[0])); break;
      case Gate::MX: record.push_back(sim.measure_x(op.targets[0])); break;
      case Gate::MR: {
        const bool out = sim.measure_z(op.targets[0]);
        record.push_back(out);
        if (out) sim.apply_x(op.targets[0]);
        break;
      }
      case Gate::R: sim.reset(op.targets[0]); break;
      case Gate::DEPOLARIZE1:
        if (rng.bernoulli(op.arg)) {
          apply_sampled_pauli(sim, op.targets[0], rng.next_below(3));
        }
        break;
      case Gate::DEPOLARIZE2:
        if (rng.bernoulli(op.arg)) {
          const uint64_t which = rng.next_below(15) + 1;
          apply_coded_pauli(sim, op.targets[0], which & 3);
          apply_coded_pauli(sim, op.targets[1], (which >> 2) & 3);
        }
        break;
      case Gate::X_ERROR:
        if (rng.bernoulli(op.arg)) sim.apply_x(op.targets[0]);
        break;
      case Gate::Y_ERROR:
        if (rng.bernoulli(op.arg)) sim.apply_y(op.targets[0]);
        break;
      case Gate::Z_ERROR:
        if (rng.bernoulli(op.arg)) sim.apply_z(op.targets[0]);
        break;
      case Gate::INJECT_X: sim.apply_x(op.targets[0]); break;
      case Gate::INJECT_Y: sim.apply_y(op.targets[0]); break;
      case Gate::INJECT_Z: sim.apply_z(op.targets[0]); break;
      default:
        FTQC_CHECK(false, std::string("StateVectorSim cannot run gate ") +
                              gate_name(op.gate));
    }
  }
  return record;
}

std::vector<uint8_t> run_circuit(FrameSim& sim, const Circuit& circuit) {
  FTQC_CHECK(circuit.num_qubits() <= sim.num_qubits(),
             "circuit larger than frame register");
  std::vector<uint8_t> record;
  record.reserve(circuit.num_measurements());
  Rng& rng = sim.rng();

  for (const Operation& op : circuit.ops()) {
    FTQC_CHECK(op.cond < 0,
               "frame execution does not support feedforward; decode flips "
               "in the driver instead");
    switch (op.gate) {
      case Gate::I:
      case Gate::TICK:
      case Gate::X:
      case Gate::Y:
      case Gate::Z:
        break;  // deterministic Paulis move the reference, not the frame
      case Gate::H: sim.apply_h(op.targets[0]); break;
      case Gate::S:
      case Gate::S_DAG: sim.apply_s(op.targets[0]); break;
      case Gate::CX: sim.apply_cx(op.targets[0], op.targets[1]); break;
      case Gate::CZ: sim.apply_cz(op.targets[0], op.targets[1]); break;
      case Gate::SWAP: sim.apply_swap(op.targets[0], op.targets[1]); break;
      case Gate::M: record.push_back(sim.measure_z(op.targets[0])); break;
      case Gate::MX: record.push_back(sim.measure_x(op.targets[0])); break;
      case Gate::MR: {
        record.push_back(sim.measure_z(op.targets[0]));
        sim.reset(op.targets[0]);
        break;
      }
      case Gate::R: sim.reset(op.targets[0]); break;
      case Gate::DEPOLARIZE1: sim.depolarize1(op.targets[0], op.arg); break;
      case Gate::DEPOLARIZE2:
        sim.depolarize2(op.targets[0], op.targets[1], op.arg);
        break;
      case Gate::X_ERROR: sim.x_error(op.targets[0], op.arg); break;
      case Gate::Y_ERROR: sim.y_error(op.targets[0], op.arg); break;
      case Gate::Z_ERROR: sim.z_error(op.targets[0], op.arg); break;
      case Gate::LEAK_ERROR: sim.leak_error(op.targets[0], op.arg); break;
      case Gate::PAULI_CHANNEL1:
        sim.pauli_channel1(op.targets[0], op.arg, op.arg2, op.arg3);
        break;
      case Gate::PAULI_CHANNEL2:
        sim.pauli_channel2(op.targets[0], op.targets[1], op.arg, op.arg2,
                           op.arg3);
        break;
      case Gate::ERASE: sim.erase_error(op.targets[0], op.arg); break;
      case Gate::INJECT_X: sim.inject_x(op.targets[0]); break;
      case Gate::INJECT_Y: sim.inject_y(op.targets[0]); break;
      case Gate::INJECT_Z: sim.inject_z(op.targets[0]); break;
      default:
        FTQC_CHECK(false, std::string("FrameSim cannot run gate ") +
                              gate_name(op.gate));
    }
  }
  (void)rng;
  return record;
}

const BatchRecord& run_circuit(BatchFrameSim& sim, const Circuit& circuit) {
  sim.run(circuit);
  return sim.record();
}

}  // namespace ftqc::sim
