#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.h"

namespace ftqc::topo {

// The quasiparticle error-rate model of §7.1: at zero temperature, encoded
// charge leaks only by quantum tunneling, with amplitude ~ e^{-mL} for
// quasiparticle separation L and lightest-charge mass m; at temperature T a
// thermal plasma of density ~ e^{-Δ/T} (Boltzmann factor of the gap Δ)
// occasionally slips a charge between the data anyons.
struct TopologicalMemoryModel {
  double mass = 1.0;          // m, in inverse length units
  double gap = 1.0;           // Δ
  double attempt_rate = 1.0;  // overall rate prefactor (per unit time)

  // Instantaneous error rate per unit time.
  [[nodiscard]] double error_rate(double separation, double temperature) const;

  // Probability that the encoded pair survives `time` without an error
  // (Poisson process: exp(-rate·time)).
  [[nodiscard]] double survival_probability(double separation,
                                            double temperature,
                                            double time) const;

  // Samples the number of error events in `time` (Poisson draw); the memory
  // fails when at least one event occurs.
  [[nodiscard]] size_t sample_error_events(double separation, double temperature,
                                           double time, Rng& rng) const;

  // Separation needed to push the T=0 error rate below `target_rate`:
  // L = ln(attempt_rate/target)/m.
  [[nodiscard]] double separation_for_target(double target_rate) const;

  // Temperature needed to push the thermal rate below `target_rate`:
  // T = Δ / ln(attempt_rate/target) — "keep the temperature well below the
  // gap".
  [[nodiscard]] double temperature_for_target(double target_rate) const;
};

}  // namespace ftqc::topo
