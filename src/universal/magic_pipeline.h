#pragma once

#include <cstdint>
#include <vector>

#include "ft/recovery.h"
#include "sim/noise_model.h"
#include "universal/batch_flag_recovery.h"

namespace ftqc::universal {

// Counts accumulated by the 15-to-1 magic-state pipeline. A distillation
// attempt consumes 15 injected |T⟩ blocks and accepts when all four parity
// checks pass; the distilled output carries a logical T error exactly when
// the (undetected) injected-error pattern has odd overlap with the logical
// X̄ = X^⊗15 — i.e. odd total parity, since every parity-check-invisible
// pattern is a [15,11,3] Hamming codeword and all 35 weight-3 ones are odd.
// That is what buys the ~35·eps³ suppression the bench curve shows.
struct MagicPipelineStats {
  uint64_t attempts = 0;      // distillation attempts (lanes x rounds)
  uint64_t accepted = 0;      // attempts passing all 4 parity checks
  uint64_t accepted_bad = 0;  // accepted attempts with a logical T error
  uint64_t injections = 0;    // 15 x attempts
  uint64_t injected_bad = 0;  // injections left with a logical error

  [[nodiscard]] double p_accept() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(accepted) /
                               static_cast<double>(attempts);
  }
  // Distilled T infidelity, conditioned on acceptance.
  [[nodiscard]] double eps_out() const {
    return accepted == 0 ? 0.0
                         : static_cast<double>(accepted_bad) /
                               static_cast<double>(accepted);
  }
  // Marginal infidelity of one flag-verified injected T (the un-distilled
  // baseline the output curve is compared against).
  [[nodiscard]] double eps_inj() const {
    return injections == 0 ? 0.0
                           : static_cast<double>(injected_bad) /
                                 static_cast<double>(injections);
  }

  MagicPipelineStats& operator+=(const MagicPipelineStats& o) {
    attempts += o.attempts;
    accepted += o.accepted;
    accepted_bad += o.accepted_bad;
    injections += o.injections;
    injected_bad += o.injected_bad;
    return *this;
  }
};

// End-to-end magic-state pipeline on the [[15,1,3]] Reed-Muller code,
// bit-sliced at 64 distillation attempts per word:
//
//   noisy |T⟩ prep  →  flag-verified injection  →  15-to-1 distillation
//
// Model (Z-twirled): a raw |T⟩ carries a Z error with probability `eps_in`
// (non-fault-tolerant preparation, so eps_in >> gate eps). Injecting it by
// teleportation into a Reed-Muller block maps that Z onto the LOGICAL Z̄ of
// the block — zero syndrome, invisible to recovery; that is the physics of
// state injection, not a shortcut. The injection step itself is a full
// BatchFlagRecovery cycle under circuit-level noise (the flag-verified
// correction the encoded teleportation ends with), whose residual logical
// effect folds into the per-block error bit e_i. The 15-to-1 round is then
// exact GF(2) algebra: one transversal-CX noise fold per block
// (eps_gate2, a conservative one-layer account of the decoding circuit),
// the four X-hyperplane parity checks, postselection, and the odd-parity
// output error. T is never simulated as a unitary here — the transversal
// T/T† layers act diagonally on the twirled error bits (T·Z = Z·T), which
// is what makes the bit-sliced account exact for this model; the
// statevector cross-validation of the transversal-T rule lives in
// tests/universal_test.cpp.
class MagicStatePipeline {
 public:
  // `shots` (rounded up to 64) parallel distillation attempts per round.
  MagicStatePipeline(const sim::NoiseParams& noise, double eps_in,
                     size_t shots, uint64_t seed);

  [[nodiscard]] size_t num_shots() const { return rec_.num_shots(); }

  // Runs `rounds` batches of num_shots() attempts; counts accumulate.
  MagicPipelineStats run(size_t rounds);

  [[nodiscard]] BatchFlagRecovery& recovery() { return rec_; }

 private:
  // iid Bernoulli(p) lane mask into `out` via the sim's hit-word filler.
  void fill_bernoulli(double p, std::vector<uint64_t>& out);

  sim::NoiseParams noise_;
  double eps_in_;
  BatchFlagRecovery rec_;
  size_t words_;
};

}  // namespace ftqc::universal
