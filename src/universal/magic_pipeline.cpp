#include "universal/magic_pipeline.h"

#include <algorithm>

#include "codes/library.h"
#include "common/check.h"
#include "ft/batch_recovery.h"
#include "sim/simd.h"

namespace ftqc::universal {

MagicStatePipeline::MagicStatePipeline(const sim::NoiseParams& noise,
                                       double eps_in, size_t shots,
                                       uint64_t seed)
    : noise_(noise),
      eps_in_(eps_in),
      rec_(codes::reed_muller15(), noise, ft::RecoveryPolicy{}, shots, seed),
      words_(rec_.num_words()) {
  FTQC_CHECK(eps_in >= 0 && eps_in <= 1, "eps_in is a probability");
}

void MagicStatePipeline::fill_bernoulli(double p, std::vector<uint64_t>& out) {
  std::fill(out.begin(), out.end(), 0);
  if (p <= 0) return;
  const auto hits = rec_.frames().fill_hit_words(p);
  if (!hits) return;
  if (hits.dense) {
    std::fill(out.begin(), out.end(), ~uint64_t{0});
    return;
  }
  for (size_t k = 0; k < hits.num_dirty; ++k) {
    out[hits.dirty[k]] = hits.bits[hits.dirty[k]];
  }
}

MagicPipelineStats MagicStatePipeline::run(size_t rounds) {
  const auto& code = codes::reed_muller15();
  const size_t shots = rec_.num_shots();
  MagicPipelineStats stats;
  std::vector<uint64_t> e(15 * words_);
  std::vector<uint64_t> z_in(words_), cx_noise(words_);
  std::vector<uint64_t> reject(words_), out_err(words_), parity(words_);

  for (size_t round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < 15; ++i) {
      // One flag-verified injection: the raw state's twirled Z lands as the
      // block's logical Z̄ (zero syndrome — recovery cannot and should not
      // touch it), then a full recovery cycle under circuit noise models
      // the teleportation gadget's flag-verified correction round.
      rec_.reset();
      fill_bernoulli(eps_in_, z_in);
      for (size_t q = 0; q < code.n(); ++q) {
        if (code.logical_z(0).z_bit(q)) {
          rec_.frames().inject_z_masked(static_cast<uint32_t>(q), z_in.data());
        }
      }
      rec_.run_cycle();
      uint64_t* ei = &e[i * words_];
      std::fill_n(ei, words_, 0);
      for (size_t shot = 0; shot < shots; ++shot) {
        if (rec_.any_logical_error(shot)) {
          ei[shot >> 6] |= uint64_t{1} << (shot & 63);
        }
      }
      stats.injected_bad += ft::batch_count_lanes(ei, words_, shots);
      // The distillation circuit touches each injected block with one
      // transversal-CX layer; fold its eps_gate2 as an extra flip.
      fill_bernoulli(noise_.eps_gate2, cx_noise);
      sim::simd::xor_into(ei, cx_noise.data(), words_);
    }
    stats.injections += 15 * shots;
    stats.attempts += shots;

    // The four X-hyperplane parity checks: an attempt is rejected when any
    // check reads odd. The undetected patterns are exactly the [15,11,3]
    // Hamming codewords; the output T error is their overlap with
    // X̄ = X^⊗15, i.e. the total parity.
    std::fill(reject.begin(), reject.end(), 0);
    for (size_t j = 0; j < 4; ++j) {
      std::fill(parity.begin(), parity.end(), 0);
      const auto& support = code.generators()[j].x_part();
      for (size_t i = 0; i < 15; ++i) {
        if (support.get(i)) {
          sim::simd::xor_into(parity.data(), &e[i * words_], words_);
        }
      }
      sim::simd::or_into(reject.data(), parity.data(), words_);
    }
    std::fill(out_err.begin(), out_err.end(), 0);
    for (size_t i = 0; i < 15; ++i) {
      sim::simd::xor_into(out_err.data(), &e[i * words_], words_);
    }
    const uint64_t rejected = ft::batch_count_lanes(reject.data(), words_, shots);
    stats.accepted += shots - rejected;
    for (size_t w = 0; w < words_; ++w) out_err[w] &= ~reject[w];
    stats.accepted_bad += ft::batch_count_lanes(out_err.data(), words_, shots);
  }
  return stats;
}

}  // namespace ftqc::universal
