// Decoder micro-benchmark: raw decode throughput of the src/decode matching
// strategies on fixed pre-sampled workloads, so decoder-side regressions show
// up in the BENCH_DECODE.json trend line independently of the Monte Carlo
// physics sweeps in E14.
//   2D: L=8 toric lattice at p = 0.08 (near the greedy threshold, mean ~14
//       defects — the exact-DP regime with occasional union-find fallbacks)
//   3D: L=6, T=6 rounds of phenomenological noise at p = q = 0.02
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_harness.h"
#include "common/rng.h"
#include "common/table.h"
#include "decode/blossom.h"
#include "decode/decoder.h"
#include "decode/matching.h"
#include "decode/spacetime.h"
#include "topo/toric_code.h"

namespace {

using namespace ftqc;
using Clock = std::chrono::steady_clock;

double decodes_per_sec(const decode::Decoder& dec,
                       const std::vector<gf2::BitVec>& syndromes) {
  const auto start = Clock::now();
  size_t sink = 0;
  for (const gf2::BitVec& s : syndromes) sink += dec.decode(s).popcount();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  // Fold the sink into the result's noise floor so the loop cannot be
  // optimized away.
  return (static_cast<double>(syndromes.size()) + (sink == SIZE_MAX ? 1 : 0)) /
         seconds;
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "DECODE");
  std::printf(
      "DECODE: matching-decoder micro-benchmark (fixed workloads, decode\n"
      "time only; sampling excluded).\n\n");
  const size_t shots = ftqc::bench::scaled(3000, 300);

  const topo::ToricCode code(8);
  const double p = 0.08;
  Rng rng(2024);
  std::vector<gf2::BitVec> syndromes;
  syndromes.reserve(shots);
  size_t total_defects = 0;
  for (size_t s = 0; s < shots; ++s) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(p)) errors.set(e, true);
    }
    syndromes.push_back(code.plaquette_syndrome(errors));
    total_defects += syndromes.back().popcount();
  }

  const auto greedy = std::make_shared<const decode::GreedyMatching>();
  const auto mwpm = std::make_shared<const decode::MwpmMatching>();
  const auto blossom = std::make_shared<const decode::BlossomMatching>();
  const decode::ToricMatchingDecoder greedy_dec(
      code, decode::ToricSide::kPlaquette, greedy);
  const decode::ToricMatchingDecoder mwpm_dec(
      code, decode::ToricSide::kPlaquette, mwpm);
  const decode::ToricMatchingDecoder blossom_dec(
      code, decode::ToricSide::kPlaquette, blossom);
  const double greedy_rate = decodes_per_sec(greedy_dec, syndromes);
  const double mwpm_rate = decodes_per_sec(mwpm_dec, syndromes);
  const double blossom_rate = decodes_per_sec(blossom_dec, syndromes);

  // Space-time: time whole phenomenological shots (T noisy rounds + decode);
  // the matcher dominates, and whole-shot rate is what E14's sweep pays.
  // Blossom here, matching E14's space-time contender.
  const topo::ToricCode code_st(6);
  const decode::SpacetimeToricDecoder st_dec(
      code_st, decode::ToricSide::kPlaquette, blossom);
  const size_t st_shots = shots / 2;
  const auto st_start = Clock::now();
  size_t st_fails = 0;
  for (size_t s = 0; s < st_shots; ++s) {
    st_fails += decode::run_phenomenological_memory(st_dec, 0.02, 0.02, 6,
                                                    3000 + s)
                    .logical_fail
                    ? 1
                    : 0;
  }
  const double st_seconds =
      std::chrono::duration<double>(Clock::now() - st_start).count();
  const double st_rate = static_cast<double>(st_shots) / st_seconds;

  ftqc::Table table({"decoder", "workload", "decodes/sec"});
  table.add_row({"greedy", "2D L=8 p=0.08", ftqc::strfmt("%.3g", greedy_rate)});
  table.add_row({"mwpm", "2D L=8 p=0.08", ftqc::strfmt("%.3g", mwpm_rate)});
  table.add_row(
      {"blossom", "2D L=8 p=0.08", ftqc::strfmt("%.3g", blossom_rate)});
  table.add_row({"spacetime blossom", "3D L=6 T=6 p=q=0.02",
                 ftqc::strfmt("%.3g", st_rate)});
  table.print();
  std::printf("mean defects per 2D syndrome: %.1f\n",
              static_cast<double>(total_defects) / static_cast<double>(shots));

  ftqc::bench::JsonResult json;
  json.add("greedy_decodes_per_sec", greedy_rate);
  json.add("mwpm_decodes_per_sec", mwpm_rate);
  json.add("blossom_decodes_per_sec", blossom_rate);
  json.add("spacetime_shots_per_sec", st_rate);
  json.add("mean_defects_2d",
           static_cast<double>(total_defects) / static_cast<double>(shots));
  json.add("shots", shots);
  json.write();
  return 0;
}
