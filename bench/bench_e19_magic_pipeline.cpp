// E19: universal gates via magic states, end to end. Three measurements:
//
//  1. The magic-state pipeline on the [[15,1,3]] Reed-Muller code — noisy
//     |T⟩ prep (eps_in = 10x the gate error), flag-verified injection, one
//     15-to-1 distillation round — swept across the gate-error grid. The
//     distilled output infidelity falls as ~O(eps_inj^3) (35 weight-3
//     Hamming codewords survive the four parity checks), and the pipeline
//     pseudothreshold is the eps where distillation stops helping
//     (eps_out / eps_inj crosses 1).
//
//  2. An A/B of the three syndrome-extraction families on the Steane code —
//     flag (2 ancillas/generator), Shor cat (4+1 with verification), Steane
//     block (2x7) — via the cycle-failure pseudothreshold (failure/eps -> 1).
//
//  3. Resource counts: ancilla qubits per generator per family, and the
//     qubit-rounds bill of one distillation attempt.
//
// Every measurement is one point on the work-stealing sweep scheduler, so
// --checkpoint-dir shards and resumes exactly like E18.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/shot_runner.h"
#include "sim/sweep_scheduler.h"
#include "threshold/pseudothreshold.h"
#include "universal/magic_pipeline.h"

namespace {

using namespace ftqc;

struct GridPoint {
  const char* tag;
  double eps;
  size_t pipeline_attempts;  // full-mode distillation attempts
  size_t cycle_shots;        // full-mode cycle-failure shots per method
};

// Attempts grow toward small eps because eps_out ~ 35 * eps_inj^3 needs the
// statistics; the smallest point may stay unresolved (zero accepted-bad
// events) and is then reported but excluded from the fits. The 1e-4 point
// is cycle-only (pipeline_attempts = 0): it exists to bracket the Steane
// family's crossing, which sits below 3e-4; its pipeline eps_out would need
// billions of attempts.
const std::vector<GridPoint> kGrid = {{"1em4", 1e-4, 0, 400000},
                                      {"3em4", 3e-4, 1048576, 100000},
                                      {"1em3", 1e-3, 524288, 40000},
                                      {"3em3", 3e-3, 131072, 40000},
                                      {"1em2", 1e-2, 65536, 40000},
                                      {"3em2", 3e-2, 32768, 40000}};

// eps_inj above this is past the pipeline's useful regime (the output curve
// saturates toward 1/2); the suppression-exponent fit stays below it.
constexpr double kSuppressionFitCap = 0.1;

// Qubit-rounds of one 15-to-1 attempt: 15 blocks x (15 data + syndrome +
// flag ancilla) x (10 flagged generator extractions + 4 parity checks).
constexpr size_t kPipelineQubitRounds = 15 * 17 * 14;

// Ancilla qubits per weight-4 stabilizer measurement, by family: flag =
// 1 syndrome + 1 flag; Shor = 4-qubit cat + 1 verification; Steane = two
// 7-qubit encoded ancilla blocks (X and Z sides).
constexpr int kFlagAncillas = 2;
constexpr int kShorAncillas = 5;
constexpr int kSteaneAncillas = 14;

sim::SweepMetrics pipeline_metrics(const universal::MagicPipelineStats& s,
                                   double seconds) {
  sim::SweepMetrics m;
  m.add("attempts", static_cast<double>(s.attempts));
  m.add("accepted", static_cast<double>(s.accepted));
  m.add("accepted_bad", static_cast<double>(s.accepted_bad));
  m.add("injections", static_cast<double>(s.injections));
  m.add("injected_bad", static_cast<double>(s.injected_bad));
  m.add("seconds", seconds);
  return m;
}

// Least-squares slope of log(y) on log(x): the measured suppression
// exponent of the distilled-vs-injected infidelity curve (expect ~3).
double loglog_slope(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0 || ys[i] <= 0) continue;
    const double lx = std::log(xs[i]), ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  const double denom = n * sxx - sx * sx;
  return denom > 0 ? (n * sxy - sx * sy) / denom : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E19",
                    {sim::ShotEngine::kFrame, sim::ShotEngine::kBatch});
  const sim::ShotEngine engine =
      ftqc::bench::engine_or(sim::ShotEngine::kBatch);
  std::printf(
      "E19: magic-state pipeline on [[15,1,3]] + flag/Shor/Steane extraction "
      "A/B.\n[engine: %s]\n\n",
      sim::shot_engine_name(engine));
  const size_t div = ftqc::bench::smoke() ? 64 : 1;

  // --- Build the sweep ------------------------------------------------------
  std::vector<sim::SweepPoint> points;
  std::map<std::string, size_t> index;
  const auto add_point =
      [&](std::string id,
          std::function<std::optional<sim::SweepMetrics>()> run) {
        index.emplace(id, points.size());
        points.push_back(sim::SweepPoint{"E19", std::move(id), std::move(run)});
      };
  for (const GridPoint& pt : kGrid) {
    if (pt.pipeline_attempts > 0)
      add_point(std::string("pipe_") + pt.tag,
              [&pt, div]() -> std::optional<sim::SweepMetrics> {
                const auto noise = sim::NoiseParams::uniform_gate(pt.eps);
                // Fixed 8192-lane register; rounds make up the budget. The
                // pipeline is bit-sliced, so the engine flag does not apply
                // here — it steers the cycle-failure A/B below.
                const size_t lanes = std::min<size_t>(8192,
                                                      pt.pipeline_attempts / div);
                const size_t rounds =
                    std::max<size_t>(1, pt.pipeline_attempts / div / lanes);
                universal::MagicStatePipeline pipe(
                    noise, 10 * pt.eps, std::max<size_t>(64, lanes),
                    /*seed=*/9000 + static_cast<uint64_t>(pt.eps * 1e6));
                const auto start = std::chrono::steady_clock::now();
                const auto stats = pipe.run(rounds);
                const double seconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                return pipeline_metrics(stats, seconds);
              });
    const auto add_cycle = [&](const char* method_tag,
                               threshold::RecoveryMethod method) {
      add_point(std::string(method_tag) + "_" + pt.tag,
                [&pt, div, method, engine]() -> std::optional<sim::SweepMetrics> {
                  const auto cp = threshold::measure_cycle_failure(
                      method, pt.eps, pt.cycle_shots / div,
                      /*seed=*/3000 + 131 * static_cast<uint64_t>(pt.eps * 1e6),
                      0.0, engine, /*parallel=*/false);
                  sim::SweepMetrics m;
                  m.add("failures", static_cast<double>(cp.failures.successes));
                  m.add("trials", static_cast<double>(cp.failures.trials));
                  m.add("seconds", cp.seconds);
                  return m;
                });
    };
    add_cycle("flag", threshold::RecoveryMethod::kFlag);
    add_cycle("shor", threshold::RecoveryMethod::kShor);
    add_cycle("steane", threshold::RecoveryMethod::kSteane);
  }

  sim::CheckpointStore store(ftqc::bench::checkpoint_dir());
  const sim::SweepReport report = sim::run_sweep(
      points, ftqc::bench::sweep_options(),
      ftqc::bench::checkpoint_dir().empty() ? nullptr : &store);
  if (!report.finished()) {
    std::printf(
        "E19 sweep checkpointed: %zu done, %zu remaining (rerun with the "
        "same --checkpoint-dir to resume; no BENCH_E19.json written)\n",
        report.completed + report.skipped, report.remaining + report.failed);
    return report.failed > 0 ? 1 : 0;
  }
  const auto metrics_of =
      [&](const std::string& id) -> const sim::SweepMetrics& {
    return *report.results[index.at(id)];
  };

  // --- Pipeline curve -------------------------------------------------------
  ftqc::bench::JsonResult json;
  ftqc::Table pipe_table({"gate eps", "eps_in", "p_accept", "eps_inj",
                          "eps_out", "suppression"});
  std::vector<double> pipe_grid, inj_curve, out_curve, ratio;
  std::vector<double> fit_inj, fit_out;
  for (size_t i = 0; i < kGrid.size(); ++i) {
    if (kGrid[i].pipeline_attempts == 0) continue;
    const auto& m = metrics_of(std::string("pipe_") + kGrid[i].tag);
    universal::MagicPipelineStats s;
    s.attempts = static_cast<uint64_t>(m.at("attempts"));
    s.accepted = static_cast<uint64_t>(m.at("accepted"));
    s.accepted_bad = static_cast<uint64_t>(m.at("accepted_bad"));
    s.injections = static_cast<uint64_t>(m.at("injections"));
    s.injected_bad = static_cast<uint64_t>(m.at("injected_bad"));
    const double eps_inj = s.eps_inj(), eps_out = s.eps_out();
    pipe_grid.push_back(kGrid[i].eps);
    inj_curve.push_back(eps_inj);
    out_curve.push_back(eps_out);
    if (eps_inj > 0 && eps_inj < kSuppressionFitCap && eps_out > 0) {
      fit_inj.push_back(eps_inj);
      fit_out.push_back(eps_out);
    }
    // Only points where BOTH infidelities resolved (>=1 event) enter the
    // threshold fit — an unresolved eps_out would masquerade as perfect.
    ratio.push_back(eps_inj > 0 && eps_out > 0 ? eps_out / eps_inj : 0.0);
    pipe_table.add_row(
        {ftqc::strfmt("%.0e", kGrid[i].eps),
         ftqc::strfmt("%.0e", 10 * kGrid[i].eps),
         ftqc::strfmt("%.3f", s.p_accept()), ftqc::strfmt("%.3e", eps_inj),
         eps_out > 0 ? ftqc::strfmt("%.3e", eps_out) : std::string("<resol"),
         eps_out > 0 && eps_inj > 0 ? ftqc::strfmt("%.1fx", eps_inj / eps_out)
                                    : std::string("-")});
    const size_t pi = pipe_grid.size() - 1;
    json.add(ftqc::strfmt("pipeline_eps_%zu", pi), kGrid[i].eps);
    json.add(ftqc::strfmt("injected_infidelity_%zu", pi), eps_inj);
    json.add(ftqc::strfmt("distilled_infidelity_%zu", pi), eps_out);
    json.add(ftqc::strfmt("pipeline_p_accept_%zu", pi), s.p_accept());
  }
  std::printf("Magic-state pipeline (15-to-1 on [[15,1,3]], eps_in = 10*eps):\n");
  pipe_table.print();

  const double slope = loglog_slope(fit_inj, fit_out);
  const ftqc::UnitCrossing pipe_cross =
      ftqc::loglog_unit_crossing_ex(pipe_grid, ratio);
  json.add("suppression_exponent", slope);
  if (pipe_cross.valid) json.add("threshold_pipeline", pipe_cross.x);
  json.add("threshold_pipeline_extrapolated",
           !pipe_cross.valid || pipe_cross.extrapolated);
  std::printf(
      "\nSuppression exponent (log eps_out / log eps_inj slope): %.2f "
      "(expect ~3)\nPipeline pseudothreshold (eps_out/eps_inj -> 1): eps ~ "
      "%.2e (%s)\n",
      slope, pipe_cross.x,
      pipe_cross.valid && !pipe_cross.extrapolated ? "bracketed"
                                                   : "extrapolated");

  // --- Extraction-family A/B ------------------------------------------------
  ftqc::Table ab_table({"gate eps", "flag P(fail)", "Shor P(fail)",
                        "Steane P(fail)"});
  std::vector<double> cycle_grid, flag_ratio, shor_ratio, steane_ratio;
  for (const GridPoint& pt : kGrid) {
    cycle_grid.push_back(pt.eps);
    double fail[3] = {0, 0, 0};
    const char* tags[3] = {"flag", "shor", "steane"};
    std::vector<double>* ratios[3] = {&flag_ratio, &shor_ratio, &steane_ratio};
    for (int k = 0; k < 3; ++k) {
      const auto& m = metrics_of(std::string(tags[k]) + "_" + pt.tag);
      const double trials = m.at("trials");
      fail[k] = trials > 0 ? m.at("failures") / trials : 0.0;
      // failure/eps -> 1 is the cycle pseudothreshold (E5 convention).
      ratios[k]->push_back(fail[k] > 0 ? fail[k] / pt.eps : 0.0);
    }
    ab_table.add_row({ftqc::strfmt("%.0e", pt.eps),
                      ftqc::strfmt("%.3e", fail[0]),
                      ftqc::strfmt("%.3e", fail[1]),
                      ftqc::strfmt("%.3e", fail[2])});
  }
  std::printf("\nSteane-code recovery-cycle failure by extraction family:\n");
  ab_table.print();

  const ftqc::UnitCrossing flag_cross =
      ftqc::loglog_unit_crossing_ex(cycle_grid, flag_ratio);
  const ftqc::UnitCrossing shor_cross =
      ftqc::loglog_unit_crossing_ex(cycle_grid, shor_ratio);
  const ftqc::UnitCrossing steane_cross =
      ftqc::loglog_unit_crossing_ex(cycle_grid, steane_ratio);
  if (flag_cross.valid) json.add("pseudothreshold_flag", flag_cross.x);
  if (shor_cross.valid) json.add("pseudothreshold_shor", shor_cross.x);
  if (steane_cross.valid) json.add("pseudothreshold_steane", steane_cross.x);
  json.add("pseudothreshold_flag_extrapolated",
           !flag_cross.valid || flag_cross.extrapolated);
  json.add("pseudothreshold_shor_extrapolated",
           !shor_cross.valid || shor_cross.extrapolated);
  json.add("pseudothreshold_steane_extrapolated",
           !steane_cross.valid || steane_cross.extrapolated);
  std::printf(
      "\nCycle pseudothreshold (failure/eps -> 1):\n"
      "  flag   : eps ~ %.2e (%s), %d ancillas/generator\n"
      "  Shor   : eps ~ %.2e (%s), %d ancillas/generator\n"
      "  Steane : eps ~ %.2e (%s), %d ancillas/generator\n",
      flag_cross.x, flag_cross.extrapolated ? "extrapolated" : "bracketed",
      kFlagAncillas, shor_cross.x,
      shor_cross.extrapolated ? "extrapolated" : "bracketed", kShorAncillas,
      steane_cross.x,
      steane_cross.extrapolated ? "extrapolated" : "bracketed",
      kSteaneAncillas);

  json.add("flag_ancilla_qubits", kFlagAncillas);
  json.add("shor_ancilla_qubits", kShorAncillas);
  json.add("steane_ancilla_qubits", kSteaneAncillas);
  json.add("pipeline_qubit_rounds", kPipelineQubitRounds);
  json.add_string("engine", sim::shot_engine_name(engine));
  json.write();

  std::printf(
      "\nShape check: the distilled curve falls ~cubically in the injected\n"
      "infidelity — the 15-to-1 round only passes error patterns that are\n"
      "[15,11,3] Hamming codewords, and the lightest ones have weight 3 —\n"
      "until eps_inj gets large enough that distillation consumes more\n"
      "fidelity than it buys (the pipeline pseudothreshold). The flag\n"
      "family's 2-ancilla footprint (vs %d for the verified cat, %d for\n"
      "Steane blocks) costs serialized two-qubit gates instead of ancilla\n"
      "verification, yet its cycle pseudothreshold lands within ~25%% of the\n"
      "cat-based families' — a large hardware saving for a small threshold\n"
      "price, which is why flag circuits displaced cats on small devices.\n",
      kShorAncillas, kSteaneAncillas);
  return 0;
}
