#pragma once

#include <cstdint>
#include <vector>

#include "decode/spacetime.h"
#include "ft/noise_injector.h"
#include "sim/frame_sim.h"
#include "topo/toric_code.h"

namespace ftqc::decode {

// One noisy syndrome-extraction round of the toric code, announced location
// by location to `injector` (the same hook protocol every gadget driver
// uses). One ancilla per check; the four CNOTs run in N/S/W/E layers, each a
// perfect matching of data qubits onto ancillas, so a layer never touches a
// qubit twice. Plaquette side: prep |0>, CX(data -> ancilla) x4, measure Z —
// the ancilla's X frame accumulates the X-error parity of the four edges.
// Star side: prep |0>, H, CX(ancilla -> data) x4, H, measure Z — the Z-error
// parity rides the ancilla's Z frame through the Hadamard sandwich. Every
// data qubit also takes one storage location per round. `measured_flips`
// (size L²) receives each check's measurement flip; ancillas are qubits
// 2L².. 3L²-1 of `sim` and are reset at the start of each round's prep.
void run_extraction_round(sim::FrameSim& sim, ft::NoiseInjector& injector,
                          const topo::ToricCode& code, ToricSide side,
                          gf2::BitVec& measured_flips);

// Detector error model for the circuit above, built by exhaustive single-
// fault enumeration (the §3 discipline: replay every (location, variant)
// once and record which detectors fire). Detectors are the standard
// space-time events d_t = m_t XOR m_{t-1} (plus a final trusted round), so a
// data error fires a space-separated pair, a misread fires a time-separated
// pair, and mid-extraction CNOT faults fire the diagonal "hook" pairs that
// phenomenological q = p modelling never sees. Enumeration is windowed onto
// the middle of three rounds, giving the translation-invariant bulk counts.
//
// Counts are eps-independent: each (location, variant) contributes its
// variant_weight to the classes of the detector pairs it fires, so the edge
// probability at physical rate eps is count · eps / (#edges of that class in
// one bulk round). weights_at() turns those into the -log p integer weights
// SpacetimeToricDecoder consumes.
class ToricDem {
 public:
  struct Counts {
    double space = 0;  // same-round pairs, adjacent sites
    double time = 0;   // same-site pairs, consecutive rounds
    double diag = 0;   // hook pairs: one step in space AND time
    double far = 0;    // anything else (multi-step displacements)
    size_t locations = 0;  // fault opportunities in one bulk round
  };

  static ToricDem build(const topo::ToricCode& code, ToricSide side);
  // Bias-weighted build: each (location, variant) contributes its biased
  // conditional probability (ft::biased_variant_weight) instead of the
  // uniform variant weight. Since a variant's fired-detector set is bias-
  // independent, only the masses shift — a Z-heavy channel drains the
  // plaquette side's space class (few X components survive) and swells the
  // star side's, so weights_at() hands each side its own asymmetric space
  // weight. Reduces exactly to the uniform build when params.is_biased()
  // is false.
  static ToricDem build(const topo::ToricCode& code, ToricSide side,
                        const sim::NoiseParams& params);

  [[nodiscard]] const Counts& counts() const { return counts_; }
  [[nodiscard]] size_t sites() const { return sites_; }

  // Per-edge probabilities of the two decoder edge classes at physical fault
  // rate eps (diagonal hook mass contributes to both: a hook is one spatial
  // AND one temporal step of explanation).
  [[nodiscard]] double p_space(double eps) const;
  [[nodiscard]] double p_time(double eps) const;

  // Integer space/time weights w = max(1, round(-log p · scale)) for the
  // matching metric; only the w_space : w_time ratio matters to the decoder,
  // and scale = 16 keeps the quantization error of that ratio under ~1%.
  [[nodiscard]] SpacetimeOptions weights_at(double eps,
                                            double scale = 16.0) const;

 private:
  Counts counts_;
  size_t sites_ = 0;
};

// One shot of the circuit-level memory experiment: `rounds` noisy extraction
// rounds (every prep, CNOT, storage step, and readout faulting at rate eps
// through StochasticInjector) followed by a trusted readout of the residual
// frame, decoded by `decoder` — which should carry this circuit's DEM
// weights (ToricDem::weights_at) rather than the phenomenological defaults.
[[nodiscard]] PhenomenologicalResult run_circuit_memory(
    const SpacetimeToricDecoder& decoder, double eps, size_t rounds,
    uint64_t seed, PhenomenologicalScratch* scratch = nullptr);

// Generalized form: the injector runs the full NoiseParams channel set
// (biased axes, heralded erasure, separate storage rate...), so a biased
// memory point pairs a biased build() decoder with the matching biased
// noise. The eps overload above is exactly this with uniform_gate(eps, eps).
[[nodiscard]] PhenomenologicalResult run_circuit_memory(
    const SpacetimeToricDecoder& decoder, const sim::NoiseParams& params,
    size_t rounds, uint64_t seed, PhenomenologicalScratch* scratch = nullptr);

}  // namespace ftqc::decode
