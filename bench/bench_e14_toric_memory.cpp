// E14 (§7.1-7.2): topological memory, decoder A/B/C. The toric code stores
// two logical qubits in the torus homology; below a decoder-dependent
// threshold the logical failure rate falls exponentially with lattice size —
// Kitaev's "intrinsically fault-tolerant hardware". Three decoders from
// src/decode compete on the same noise:
//   greedy     — closest-pair matching, perfect measurement (threshold ~8%)
//   mwpm       — minimum-weight perfect matching, perfect measurement
//                (optimal matching reaches ~10.3%)
//   space-time — MWPM over 3D (site, round) defects: T = L rounds of FAULTY
//                syndrome extraction (measured bits flip at q = p), the
//                phenomenological-noise workload (threshold ~3%).
// Each sweep's L-small vs L-large failure ratio is extrapolated to its
// crossing, and the threshold estimates land in BENCH_E14.json for the CI
// trend step.
//
// The whole decoder x lattice x p matrix runs on the work-stealing sweep
// scheduler (sim/sweep_scheduler.h): one point per (decoder, L, p) cell,
// each with its legacy per-cell seed so the measured values match the
// pre-scheduler sweep bit for bit. Under --checkpoint-dir every completed
// cell shards to BENCH_E14.<id>.json and a killed run resumes from the
// shards; --max-points simulates the kill.
#include <cstdio>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "decode/batch_decode.h"
#include "decode/blossom.h"
#include "decode/decoder.h"
#include "decode/dem.h"
#include "decode/matching.h"
#include "decode/spacetime.h"
#include "sim/shot_runner.h"
#include "sim/sweep_scheduler.h"
#include "topo/toric_code.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace {

using namespace ftqc;

// 2D memory shot: iid X noise, one perfect syndrome snapshot, decode, check
// the residual against both logical Z loops.
bool memory_shot_2d(const topo::ToricCode& code, const decode::Decoder& dec,
                    double p, Rng& rng) {
  gf2::BitVec errors(code.num_qubits());
  for (size_t e = 0; e < code.num_qubits(); ++e) {
    if (rng.bernoulli(p)) errors.set(e, true);
  }
  gf2::BitVec residual = errors;
  residual ^= dec.decode(code.plaquette_syndrome(errors));
  const auto [f1, f2] = code.logical_x_flips(residual);
  return f1 || f2;
}

// All Monte Carlo loops ride ShotRunner: kFrame runs one seeded serial shot
// per index; kBatch hands each block to the batched pipeline — BatchFrameSim
// sampling, bit-sliced syndrome extraction, and decode_lanes over 64 packed
// shots per word — so the batch engine is batched end-to-end, decode
// included. parallel = false: the sweep scheduler's worker pool owns all
// parallelism, so the per-point shot loop stays serial (and
// schedule-independent). Returns the full Proportion rather than a bare rate
// so the threshold fit can tell "0 failures in n shots" apart from "never
// measured".
Proportion failure_rate_2d(const topo::ToricCode& code,
                           const decode::Decoder& dec,
                           const decode::SpacetimeToricDecoder& batch_dec,
                           double p, size_t shots, uint64_t seed,
                           sim::ShotEngine engine) {
  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  plan.seed_stride = 7;
  plan.engine = engine;
  plan.parallel = false;
  const sim::ShotRunner runner(plan);
  const auto result = runner.run(
      [&](uint64_t shot_seed) {
        Rng rng(shot_seed);
        return memory_shot_2d(code, dec, p, rng);
      },
      [&](uint64_t block_seed, size_t n) {
        return decode::batch_memory_2d_failures(batch_dec, p, n, block_seed);
      });
  return result.proportion();
}

Proportion failure_rate_spacetime(const decode::SpacetimeToricDecoder& dec,
                                  double p, size_t rounds, size_t shots,
                                  uint64_t seed, sim::ShotEngine engine) {
  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  plan.seed_stride = 7;
  plan.engine = engine;
  plan.parallel = false;
  const sim::ShotRunner runner(plan);
  const auto result = runner.run(
      [&](uint64_t shot_seed) {
        return decode::run_phenomenological_memory(dec, p, p, rounds, shot_seed)
            .logical_fail;
      },
      [&](uint64_t block_seed, size_t n) {
        Rng rng(block_seed);
        decode::PhenomenologicalScratch scratch;
        uint64_t fails = 0;
        for (size_t i = 0; i < n; ++i) {
          fails += decode::run_phenomenological_memory(dec, p, p, rounds,
                                                      rng.next_u64(), &scratch)
                       .logical_fail
                       ? 1
                       : 0;
        }
        return fails;
      });
  return result.proportion();
}

// Circuit-level memory: every extraction-circuit location (prep, CNOT,
// storage, readout) faults at rate eps, and the decoder carries the DEM's
// -log p weights instead of the phenomenological unit metric.
Proportion failure_rate_circuit(const decode::SpacetimeToricDecoder& dec,
                                double eps, size_t rounds, size_t shots,
                                uint64_t seed, sim::ShotEngine engine) {
  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  plan.seed_stride = 7;
  plan.engine = engine;
  plan.parallel = false;
  const sim::ShotRunner runner(plan);
  const auto result = runner.run(
      [&](uint64_t shot_seed) {
        return decode::run_circuit_memory(dec, eps, rounds, shot_seed)
            .logical_fail;
      },
      [&](uint64_t block_seed, size_t n) {
        Rng rng(block_seed);
        decode::PhenomenologicalScratch scratch;
        uint64_t fails = 0;
        for (size_t i = 0; i < n; ++i) {
          fails += decode::run_circuit_memory(dec, eps, rounds, rng.next_u64(),
                                              &scratch)
                       .logical_fail
                       ? 1
                       : 0;
        }
        return fails;
      });
  return result.proportion();
}

const char* trend_label(double f_small, double f_mid, double f_large) {
  if (f_large < f_mid && f_mid < f_small) return "bigger is better";
  if (f_large > f_mid && f_mid > f_small) return "bigger is WORSE";
  return "crossover";
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E14",
                    {sim::ShotEngine::kFrame, sim::ShotEngine::kBatch});
  const sim::ShotEngine engine = ftqc::bench::engine_or(sim::ShotEngine::kBatch);
  using ftqc::topo::ToricCode;
  std::printf(
      "E14: toric-code memory, decoder A/B/C sweep (greedy vs MWPM vs 3D\n"
      "space-time MWPM under faulty syndrome measurement). Rows: physical\n"
      "error rate p; columns: lattice size L (2L^2 qubits). [engine: %s]\n\n",
      sim::shot_engine_name(engine));

  const size_t shots = ftqc::bench::scaled(4000, 300);
  const size_t shots_st = ftqc::bench::scaled(2500, 150);
  const ToricCode code4(4), code6(6), code8(8);
  const ToricCode* const codes[] = {&code4, &code6, &code8};
  constexpr size_t kL[] = {4, 6, 8};
  // Legacy per-lattice seeds, kept so the scheduler port reproduces the
  // hand-rolled sweep's values exactly (the compare_bench trend would read
  // a reseed as accuracy drift).
  constexpr uint64_t kSeed2d[] = {11, 13, 17};

  const auto greedy = std::make_shared<const decode::GreedyMatching>();
  // Blossom replaced the subset-DP + union-find MwpmMatching as the "mwpm"
  // contender: exact at ANY defect count, so the high-p / large-L points
  // that used to fall back to greedy-inside-clusters now get the true
  // optimum (the ~0.097 -> ~0.103 threshold gap of PR 4's fallback).
  const auto mwpm = std::make_shared<const decode::BlossomMatching>();
  struct Strategy {
    const char* key;  // sweep-point id component
    const char* label;
    const char* json_suffix;
    std::shared_ptr<const decode::MatchingStrategy> matching;
  };
  const std::vector<Strategy> strategies = {
      {"greedy", "greedy matching", "", greedy},
      {"mwpm", "minimum-weight perfect matching (blossom)", "_mwpm", mwpm},
  };
  const std::vector<double> p_grid = {0.12, 0.11, 0.10, 0.09, 0.08,
                                      0.07, 0.06, 0.04, 0.02};
  const std::vector<double> st_grid = {0.05, 0.04, 0.032, 0.026,
                                       0.02, 0.015, 0.01};
  // Circuit-level grid: gate/storage/readout faults push the threshold an
  // order of magnitude below the phenomenological ~0.03, so the grid
  // brackets the expected ~0.012-0.018 crossing.
  const std::vector<double> circuit_grid = {0.024, 0.020, 0.016, 0.013,
                                            0.010, 0.008, 0.006};

  // Decoders outlive the sweep: points capture them by reference.
  std::deque<decode::ToricMatchingDecoder> decoders;
  // Spacetime twins of the 2D decoders for the batched block path (same
  // strategy; with a single trusted round and unit space weight the metric
  // and defect order match ToricMatchingDecoder exactly).
  std::deque<decode::SpacetimeToricDecoder> batch_decoders;
  for (const Strategy& strat : strategies) {
    for (const ToricCode* code : codes) {
      decoders.emplace_back(*code, decode::ToricSide::kPlaquette,
                            strat.matching);
      batch_decoders.emplace_back(*code, decode::ToricSide::kPlaquette,
                                  strat.matching);
    }
  }
  const decode::SpacetimeToricDecoder st4(code4, decode::ToricSide::kPlaquette,
                                          mwpm);
  const decode::SpacetimeToricDecoder st6(code6, decode::ToricSide::kPlaquette,
                                          mwpm);

  // Detector error models from the frame-simulated extraction circuit; the
  // counts are eps-independent, so one enumeration per lattice serves the
  // whole grid and each point gets weights_at(eps).
  const decode::ToricDem dem4 =
      decode::ToricDem::build(code4, decode::ToricSide::kPlaquette);
  const decode::ToricDem dem6 =
      decode::ToricDem::build(code6, decode::ToricSide::kPlaquette);

  // --- Build the sweep: one point per measured Proportion -------------------
  std::vector<sim::SweepPoint> points;
  std::map<std::string, size_t> index;
  const auto add_point = [&](std::string id,
                             std::function<Proportion()> measure) {
    index.emplace(id, points.size());
    points.push_back(sim::SweepPoint{
        "E14", std::move(id),
        [measure = std::move(measure)]() -> std::optional<sim::SweepMetrics> {
          const auto result = measure();
          sim::SweepMetrics metrics;
          metrics.add("failures", static_cast<double>(result.successes));
          metrics.add("trials", static_cast<double>(result.trials));
          return metrics;
        }});
  };
  for (size_t s = 0; s < strategies.size(); ++s) {
    for (size_t l = 0; l < 3; ++l) {
      const decode::ToricMatchingDecoder& dec = decoders[s * 3 + l];
      const decode::SpacetimeToricDecoder& batch_dec = batch_decoders[s * 3 + l];
      for (const double p : p_grid) {
        add_point(ftqc::strfmt("%s_L%zu_p%.3f", strategies[s].key, kL[l], p),
                  [&, p, l] {
                    return failure_rate_2d(*codes[l], dec, batch_dec, p, shots,
                                           kSeed2d[l], engine);
                  });
      }
    }
  }
  for (const double p : st_grid) {
    add_point(ftqc::strfmt("spacetime_L4_p%.3f", p), [&, p] {
      return failure_rate_spacetime(st4, p, 4, shots_st, 101, engine);
    });
    add_point(ftqc::strfmt("spacetime_L6_p%.3f", p), [&, p] {
      return failure_rate_spacetime(st6, p, 6, shots_st, 103, engine);
    });
  }
  // Circuit-level points build their decoder per eps: the DEM counts are
  // shared but the -log p weights change with the physical rate.
  for (const double eps : circuit_grid) {
    add_point(ftqc::strfmt("circuit_L4_p%.3f", eps), [&, eps] {
      const decode::SpacetimeToricDecoder dec(
          code4, decode::ToricSide::kPlaquette, mwpm, dem4.weights_at(eps));
      return failure_rate_circuit(dec, eps, 4, shots_st, 107, engine);
    });
    add_point(ftqc::strfmt("circuit_L6_p%.3f", eps), [&, eps] {
      const decode::SpacetimeToricDecoder dec(
          code6, decode::ToricSide::kPlaquette, mwpm, dem6.weights_at(eps));
      return failure_rate_circuit(dec, eps, 6, shots_st, 109, engine);
    });
  }

  sim::CheckpointStore store(ftqc::bench::checkpoint_dir());
  const sim::SweepReport report = sim::run_sweep(
      points, ftqc::bench::sweep_options(),
      ftqc::bench::checkpoint_dir().empty() ? nullptr : &store);
  if (!report.finished()) {
    std::printf(
        "E14 sweep checkpointed: %zu done, %zu remaining (rerun with the "
        "same --checkpoint-dir to resume; no BENCH_E14.json written)\n",
        report.completed + report.skipped, report.remaining + report.failed);
    return report.failed > 0 ? 1 : 0;
  }
  const auto prop = [&](const std::string& id) {
    const auto& metrics = report.results[index.at(id)];
    return Proportion{static_cast<uint64_t>(metrics->at("failures")),
                      static_cast<uint64_t>(metrics->at("trials"))};
  };

  // --- Tables, fits and the BENCH_E14.json artifact -------------------------
  ftqc::bench::JsonResult json;
  for (const Strategy& strat : strategies) {
    std::printf("Perfect measurement, %s decoder:\n", strat.label);
    ftqc::Table table({"p", "L=4", "L=6", "L=8", "trend"});
    std::vector<double> grid, ratio;
    for (const double p : p_grid) {
      const auto f4 = prop(ftqc::strfmt("%s_L4_p%.3f", strat.key, p));
      const auto f6 = prop(ftqc::strfmt("%s_L6_p%.3f", strat.key, p));
      const auto f8 = prop(ftqc::strfmt("%s_L8_p%.3f", strat.key, p));
      table.add_row({ftqc::strfmt("%.2f", p), ftqc::strfmt("%.4f", f4.mean()),
                     ftqc::strfmt("%.4f", f6.mean()),
                     ftqc::strfmt("%.4f", f8.mean()),
                     trend_label(f4.mean(), f6.mean(), f8.mean())});
      // The L=8/L=4 failure ratio crosses 1 at the threshold. Only points
      // where BOTH proportions resolved with at least one failure enter the
      // fit: a zero mean can be "0 of 4000" (real, but log-unfittable) or
      // "0 of 0" (never measured), and neither is a measured ratio.
      grid.push_back(p);
      ratio.push_back(f4.resolved() && f8.resolved() && f4.mean() > 0 &&
                              f8.mean() > 0
                          ? f8.mean() / f4.mean()
                          : 0.0);
      if (p == 0.02) {
        json.add(std::string("failure_L4") + strat.json_suffix, f4.mean());
        json.add(std::string("failure_L6") + strat.json_suffix, f6.mean());
        json.add(std::string("failure_L8") + strat.json_suffix, f8.mean());
      }
      if (p == 0.08) {
        json.add(std::string("failure_L8_p08") + strat.json_suffix,
                 f8.mean());
      }
    }
    table.print();
    const std::string field =
        std::string("threshold") +
        (strat.json_suffix[0] ? strat.json_suffix : "_greedy");
    const ftqc::UnitCrossing crossing =
        ftqc::loglog_unit_crossing_ex(grid, ratio);
    json.add(field, crossing.valid ? crossing.x : 0.0);
    json.add(field + "_extrapolated", !crossing.valid || crossing.extrapolated);
    if (crossing.valid) {
      std::printf("  %s threshold (L8/L4 ratio -> 1): p ~ %.3f\n\n",
                  crossing.extrapolated ? "extrapolated" : "bracketed",
                  crossing.x);
    } else {
      std::printf("  threshold not resolved at these shot counts\n\n");
    }
  }

  // Faulty measurement: T = L rounds of noisy extraction (q = p), then one
  // trusted readout; defects are syndrome changes between rounds and the
  // matching runs in 3D. The threshold survives — smaller (~3%), but finite:
  // below it, growing L still suppresses the logical failure even though no
  // single syndrome snapshot can be trusted.
  std::printf(
      "Faulty syndrome measurement (q = p), space-time MWPM, T = L rounds:\n");
  ftqc::Table st_table({"p", "L=4", "L=6", "trend"});
  std::vector<double> st_fit_grid, st_ratio;
  for (const double p : st_grid) {
    const auto f4 = prop(ftqc::strfmt("spacetime_L4_p%.3f", p));
    const auto f6 = prop(ftqc::strfmt("spacetime_L6_p%.3f", p));
    st_table.add_row({ftqc::strfmt("%.3f", p),
                      ftqc::strfmt("%.4f", f4.mean()),
                      ftqc::strfmt("%.4f", f6.mean()),
                      f6.mean() < f4.mean()   ? "bigger is better"
                      : f6.mean() > f4.mean() ? "bigger is WORSE"
                                              : "tie"});
    st_fit_grid.push_back(p);
    st_ratio.push_back(f4.resolved() && f6.resolved() && f4.mean() > 0 &&
                               f6.mean() > 0
                           ? f6.mean() / f4.mean()
                           : 0.0);
    if (p == 0.02) {
      json.add("spacetime_p", p);
      json.add("spacetime_failure_L4", f4.mean());
      json.add("spacetime_failure_L6", f6.mean());
    }
  }
  st_table.print();
  const ftqc::UnitCrossing st_crossing =
      ftqc::loglog_unit_crossing_ex(st_fit_grid, st_ratio);
  json.add("threshold_spacetime", st_crossing.valid ? st_crossing.x : 0.0);
  json.add("threshold_spacetime_extrapolated",
           !st_crossing.valid || st_crossing.extrapolated);
  if (st_crossing.valid) {
    std::printf("  %s threshold (L6/L4 ratio -> 1): p ~ %.3f\n",
                st_crossing.extrapolated ? "extrapolated" : "bracketed",
                st_crossing.x);
  }

  // Circuit-level noise: the same space-time matching, but every fault now
  // originates in the extraction circuit itself (prep, four CNOT layers,
  // storage, readout) and the edge weights come from the enumerated DEM.
  std::printf(
      "\nCircuit-level noise (every location faults at eps), DEM-weighted\n"
      "space-time matching, T = L rounds:\n");
  ftqc::Table c_table({"eps", "L=4", "L=6", "trend"});
  std::vector<double> c_fit_grid, c_ratio;
  for (const double eps : circuit_grid) {
    const auto f4 = prop(ftqc::strfmt("circuit_L4_p%.3f", eps));
    const auto f6 = prop(ftqc::strfmt("circuit_L6_p%.3f", eps));
    c_table.add_row({ftqc::strfmt("%.3f", eps),
                     ftqc::strfmt("%.4f", f4.mean()),
                     ftqc::strfmt("%.4f", f6.mean()),
                     f6.mean() < f4.mean()   ? "bigger is better"
                     : f6.mean() > f4.mean() ? "bigger is WORSE"
                                             : "tie"});
    c_fit_grid.push_back(eps);
    c_ratio.push_back(f4.resolved() && f6.resolved() && f4.mean() > 0 &&
                              f6.mean() > 0
                          ? f6.mean() / f4.mean()
                          : 0.0);
    if (eps == 0.010) {
      json.add("circuit_failure_L4", f4.mean());
      json.add("circuit_failure_L6", f6.mean());
    }
  }
  c_table.print();
  const ftqc::UnitCrossing c_crossing =
      ftqc::loglog_unit_crossing_ex(c_fit_grid, c_ratio);
  json.add("threshold_circuit", c_crossing.valid ? c_crossing.x : 0.0);
  json.add("threshold_circuit_extrapolated",
           !c_crossing.valid || c_crossing.extrapolated);
  if (c_crossing.valid) {
    std::printf("  %s threshold (L6/L4 ratio -> 1): eps ~ %.4f\n",
                c_crossing.extrapolated ? "extrapolated" : "bracketed",
                c_crossing.x);
  }
  const auto w_dem = dem6.weights_at(0.010);
  json.add("dem_space_weight", w_dem.space_weight);
  json.add("dem_time_weight", w_dem.time_weight);

  // Batched decode throughput: 64 phenomenological L=6 T=6 histories packed
  // per word, decoded lane-parallel through the shared-diff front-end (OpenMP
  // across words when available). Sampling/packing time is excluded — this is
  // the decode-side metric the 2D sweep's batch engine pays.
  {
    const size_t num_words = ftqc::bench::scaled(24, 4);
    const size_t T = 6;
    const size_t c_sites = code6.num_plaquettes();
    std::vector<decode::PackedSyndromes> packs(num_words);
    Rng rng(4242);
    for (auto& pack : packs) {
      pack.resize(c_sites, T + 1);
      for (size_t lane = 0; lane < 64; ++lane) {
        gf2::BitVec errors(code6.num_qubits());
        gf2::BitVec measured(c_sites);
        for (size_t t = 0; t < T; ++t) {
          for (size_t e = 0; e < code6.num_qubits(); ++e) {
            if (rng.bernoulli(0.02)) errors.flip(e);
          }
          code6.plaquette_syndrome_into(errors, measured);
          for (size_t s = 0; s < c_sites; ++s) {
            if (rng.bernoulli(0.02)) measured.flip(s);
          }
          for (size_t s = 0; s < c_sites; ++s) {
            pack.set(t, s, lane, measured.get(s));
          }
        }
        code6.plaquette_syndrome_into(errors, measured);
        for (size_t s = 0; s < c_sites; ++s) {
          pack.set(T, s, lane, measured.get(s));
        }
      }
    }
    size_t sink = 0;
    const auto lanes_start = std::chrono::steady_clock::now();
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) reduction(+ : sink)
#endif
    for (size_t w = 0; w < num_words; ++w) {
      const auto corrections = decode::decode_lanes(st6, packs[w]);
      for (const auto& c : corrections) sink += c.popcount();
    }
    const double lanes_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      lanes_start)
            .count();
    const double lanes_per_sec =
        (static_cast<double>(64 * num_words) + (sink == SIZE_MAX ? 1 : 0)) /
        lanes_seconds;
    std::printf("\nBatched decode: %.3g lanes/sec (L=6, T=6, p=q=0.02, %zu "
                "words x 64 lanes)\n",
                lanes_per_sec, num_words);
    json.add("decode_lanes_per_sec", lanes_per_sec);
  }

  json.add("p", 0.02);
  json.add("shots", shots);
  json.add("shots_spacetime", shots_st);
  json.write();
  std::printf(
      "\nShape check: with perfect measurement MWPM pushes the crossover from\n"
      "the greedy matcher's ~0.08 toward the optimal ~0.103 — same hardware,\n"
      "same noise, better pairing. With every syndrome bit itself unreliable\n"
      "the 2D picture collapses (one snapshot cannot tell a data error from\n"
      "a misread), yet matching syndrome CHANGES across repeated rounds in 3D\n"
      "restores a finite threshold — the repeated-measurement workhorse of\n"
      "surface-code fault tolerance, and the quantitative completion of the\n"
      "§7 'intrinsically fault-tolerant hardware' claim.\n");
  return 0;
}
