// E8 (§5 Eq. 36-37, §6): concatenated-code resource estimates for factoring
// a 130-digit (432-bit) number with Shor's algorithm: 5n = 2160 logical
// qubits, 38 n^3 ≈ 3e9 Toffoli gates, 3 levels of concatenation (block 343)
// at physical error 1e-6, total machine ~1e6 qubits; plus Steane's
// block-55-code alternative (4e5 qubits at 1e-5).
#include <cstdio>

#include "bench_harness.h"
#include "common/table.h"
#include "threshold/flow.h"
#include "threshold/resources.h"

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E08");
  using namespace ftqc::threshold;

  std::printf("E8: factoring resource estimates (§6).\n\n");
  const FactoringWorkload load;  // 432 bits
  std::printf("Workload: %zu-bit number -> %zu logical qubits, %.2e Toffoli\n",
              load.bits, load.logical_qubits(), load.toffoli_gates());
  std::printf("Budgets: per-Toffoli error <= %.1e, storage <= %.1e\n\n",
              load.target_gate_error(), load.target_storage_error());

  const ResourceModel model;
  ftqc::bench::JsonResult json;
  ftqc::Table table({"eps (gate=storage)", "levels L", "block 7^L",
                     "gate err @L", "storage err @L", "total qubits"});
  for (const double eps : {1e-5, 1e-6, 1e-7, 1e-8}) {
    const auto plan = model.plan(load, eps, eps);
    if (eps == 1e-6 && plan.feasible) {
      json.add("levels_at_1e-6", plan.levels);
      json.add("block_size_at_1e-6", plan.block_size);
      json.add("total_qubits_at_1e-6", static_cast<double>(plan.total_qubits));
    }
    if (!plan.feasible) {
      table.add_row({ftqc::strfmt("%.0e", eps), "-", "-", "-", "-",
                     "above threshold"});
      continue;
    }
    table.add_row({ftqc::strfmt("%.0e", eps), ftqc::strfmt("%zu", plan.levels),
                   ftqc::strfmt("%zu", plan.block_size),
                   ftqc::strfmt("%.1e", plan.gate_error_achieved),
                   ftqc::strfmt("%.1e", plan.storage_error_achieved),
                   ftqc::strfmt("%.2e", static_cast<double>(plan.total_qubits))});
  }
  table.print();

  std::printf(
      "\nPaper row (eps = 1e-6): L = 3, block 343, ~1e6 qubits  <- reproduced"
      "\nSteane's alternative (§6, ref. 48): block-55 code correcting 5\n"
      "errors, 4e5 qubits at eps_gate ~ 1e-5 — fewer qubits by replacing\n"
      "concatenation with a single bigger block:\n");
  const double steane_block = 55;
  const double steane_qubits =
      static_cast<double>(load.logical_qubits()) * steane_block * 3.4;
  std::printf("  block-55 plan: %zu x %.0f x (ancilla 3.4x) = %.1e qubits\n\n",
              load.logical_qubits(), steane_block, steane_qubits);

  std::printf("Eq. 37: block size needed vs computation length (eps0 = 1e-3):\n");
  ftqc::Table b37({"T gates", "eps = 1e-4", "eps = 1e-5", "eps = 1e-6"});
  for (const double t : {1e6, 1e9, 1e12}) {
    b37.add_row({ftqc::strfmt("%.0e", t),
                 ftqc::strfmt("%.0f", block_size_for_computation(t, 1e-4, 1e-3)),
                 ftqc::strfmt("%.0f", block_size_for_computation(t, 1e-5, 1e-3)),
                 ftqc::strfmt("%.0f", block_size_for_computation(t, 1e-6, 1e-3))});
  }
  b37.print();
  json.write();
  std::printf(
      "\nShape check: levels fall as hardware improves; block size grows\n"
      "polylogarithmically in T and shrinks with better eps (Eq. 37).\n");
  return 0;
}
