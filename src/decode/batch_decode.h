#pragma once

#include <cstdint>
#include <vector>

#include "decode/spacetime.h"

namespace ftqc::decode {

// 64 decoding problems packed bit-parallel, matching BatchFrameSim's lane
// layout: word [round * sites + site] holds the syndrome bit of that
// (site, round) cell for all 64 lanes (bit l = lane l). `rounds` counts the
// measured rounds PLUS the final trusted row, exactly like the syndrome list
// SpacetimeToricDecoder::decode takes.
struct PackedSyndromes {
  size_t sites = 0;
  size_t rounds = 0;
  std::vector<uint64_t> words;

  void resize(size_t num_sites, size_t num_rounds) {
    sites = num_sites;
    rounds = num_rounds;
    words.assign(num_sites * num_rounds, 0);
  }
  [[nodiscard]] uint64_t* row(size_t round) { return &words[round * sites]; }
  [[nodiscard]] const uint64_t* row(size_t round) const {
    return &words[round * sites];
  }
  void set(size_t round, size_t site, size_t lane, bool value) {
    uint64_t& w = words[round * sites + site];
    const uint64_t bit = uint64_t{1} << lane;
    w = value ? (w | bit) : (w & ~bit);
  }
  [[nodiscard]] bool get(size_t round, size_t site, size_t lane) const {
    return (words[round * sites + site] >> lane) & 1;
  }
};

// Decodes all 64 packed lanes. The round-to-round syndrome diffs are computed
// once per (site, round) word — shared across the 64 lanes — and each set bit
// streams a (site, round) defect into its lane's list in the canonical order
// (rounds ascending, sites ascending within a round). Each lane then runs
// through SpacetimeToricDecoder::decode_defects, the same matching core the
// serial decode() uses, so lane l's correction is bit-for-bit what a serial
// decode of lane l's unpacked syndromes returns. Lanes outside `lane_mask`
// are skipped and get an empty BitVec.
[[nodiscard]] std::vector<gf2::BitVec> decode_lanes(
    const SpacetimeToricDecoder& decoder, const PackedSyndromes& packed,
    uint64_t lane_mask = ~uint64_t{0});

// Batched 2D memory kernel (perfect measurement): `shots` lanes of iid X
// noise at rate p, sampled 64 per BatchFrameSim word, syndromes extracted
// bit-sliced (one 4-word XOR per plaquette), decoded through decode_lanes,
// logical verdicts read bit-sliced off the residual. `decoder` must be a
// single-trusted-round plaquette decoder on the target code; with unit
// space weight its matching metric equals ToricMatchingDecoder's, so this is
// the batched twin of the serial memory_shot_2d loop. Returns the failure
// count (either logical qubit flipped).
[[nodiscard]] uint64_t batch_memory_2d_failures(
    const SpacetimeToricDecoder& decoder, double p, size_t shots,
    uint64_t seed);

}  // namespace ftqc::decode
