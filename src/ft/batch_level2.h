#pragma once

#include <cstdint>
#include <vector>

#include "ft/batch_recovery.h"
#include "ft/recovery.h"
#include "gf2/hamming.h"
#include "sim/batch_frame_sim.h"
#include "sim/noise_model.h"

namespace ftqc::ft {

// Bit-parallel Level2Recovery: the full extended-rectangle level-2 recovery
// cycle (§5, Fig. 14) on 64 shots per word. Statistically equivalent to
// `shots` independent Level2Recovery instances under the same
// NoiseParams/RecoveryPolicy, for BOTH disciplines:
//
//  * kBare replays the "all levels simultaneously" extraction: one 49-qubit
//    transversal measurement decoded hierarchically per lane, all in word
//    ops (per-subblock syndrome rows are XORs of record rows; the level-2
//    syndrome is the Hamming decode of the seven bit-sliced subblock
//    logical-value words);
//  * kExRec additionally nests a verified level-1 Steane recovery
//    (run_batch_steane_cycle) on every 7-qubit subblock of the level-2
//    ancilla — and, with exrec_data_recoveries, on the data subblocks —
//    passing down the current active-lane mask so nested per-shot control
//    flow (repeats, verification fixes, corrections) composes with the
//    level-2 gadget's own (§3.4 repeats only re-extract on nontrivial
//    lanes, corrections only fire on agreeing lanes).
//
// Corrections at both levels are per-lane masked Pauli injections with the
// serial path's fault opportunities: gate noise on each corrected qubit
// (twice where a level-1 and the level-2 logical fix coincide, matching the
// serial two-gate circuit whose injections cancel), storage noise on the
// rest of the data block, and nothing at all on lanes that deferred.
//
// Register layout matches Level2Recovery: data [0,49), ancilla A [49,98),
// verification ancilla B [98,147), level-1 scratch ancillas [147,161)
// (exRec only). Leakage is not representable; p_leak > 0 is an error.
class BatchLevel2Recovery {
 public:
  static constexpr size_t kBlock = 49;
  static constexpr uint32_t kNumQubits = 161;

  // shots is rounded up to a multiple of 64.
  BatchLevel2Recovery(const sim::NoiseParams& noise, RecoveryPolicy policy,
                      size_t shots, uint64_t seed);

  [[nodiscard]] size_t num_shots() const { return sim_.num_shots(); }
  [[nodiscard]] size_t num_words() const { return sim_.num_words(); }

  void reset();
  void inject_data(uint32_t q, char pauli);
  void apply_memory_noise(double p);

  // One full two-level recovery cycle across all lanes.
  void run_cycle();

  // Lanes (among the first `num_lanes`; SIZE_MAX = all) whose residual
  // frame defeats the hierarchical ideal decode.
  [[nodiscard]] uint64_t count_any_logical_error(
      size_t num_lanes = SIZE_MAX) const;

  // Per-lane introspection for tests.
  [[nodiscard]] bool logical_x_error(size_t shot) const;
  [[nodiscard]] bool logical_z_error(size_t shot) const;
  [[nodiscard]] bool any_logical_error(size_t shot) const {
    return logical_x_error(shot) || logical_z_error(shot);
  }

  [[nodiscard]] sim::BatchFrameSim& frames() { return sim_; }

 private:
  // Bit-sliced DecodedSyndrome: 24 rows of num_words() words — three
  // level-1 Hamming syndrome rows per subblock (rows [3*sub, 3*sub+3)),
  // then the three level-2 rows (rows [21, 24)). The serial repeat-policy
  // equality compares exactly these bits.
  static constexpr size_t kSyndromeRows = 24;

  void prepare_verified_zero_ancilla(const uint64_t* lane_mask);
  void run_subblock_recoveries(uint32_t base, const uint64_t* lane_mask);
  void extract_syndrome(bool phase_type, const uint64_t* lane_mask,
                        uint64_t* rows24);
  void correct(bool phase_type, const uint64_t* rows24,
               const uint64_t* act_mask);
  // Hierarchical decode of 49 frame/record rows: writes the seven
  // bit-sliced subblock logical-value words into `logicals` (7 * words) and
  // the level-2 logical decode into `out` (words words).
  void hierarchical_decode(const uint64_t* const rows[49], uint64_t* logicals,
                           uint64_t* out) const;
  // Per-lane residual logical error on one side (phase_type false = X),
  // bit-sliced across the whole register.
  void residual_logical(bool phase_type, uint64_t* out) const;
  // Single-lane hierarchical decode (the serial Level2Recovery algorithm).
  [[nodiscard]] bool lane_logical(bool phase_type, size_t shot) const;

  sim::BatchFrameSim sim_;
  BatchGadgetRunner gadgets_;
  sim::NoiseParams noise_;
  RecoveryPolicy policy_;
  gf2::Hamming743 hamming_;
  size_t words_;
  std::vector<uint32_t> data_and_a_;
  std::vector<uint32_t> all_;
};

}  // namespace ftqc::ft
