#include "ft/shor_recovery.h"

#include <array>

#include "common/check.h"
#include "ft/gadget_runner.h"
#include "ft/steane_circuits.h"

namespace ftqc::ft {

namespace {

constexpr std::array<uint32_t, 7> kData = {0, 1, 2, 3, 4, 5, 6};
constexpr std::array<uint32_t, 4> kCat = {7, 8, 9, 10};
constexpr uint32_t kCheck = 11;
constexpr std::array<uint32_t, 12> kAll = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};

}  // namespace

ShorRecovery::ShorRecovery(const sim::NoiseParams& noise, RecoveryPolicy policy,
                           uint64_t seed)
    : frame_(kNumQubits, seed),
      noise_(noise),
      policy_(policy),
      stochastic_(noise),
      injector_(&stochastic_) {}

void ShorRecovery::reset() {
  frame_.clear();
  cats_discarded_ = 0;
}

void ShorRecovery::set_injector(NoiseInjector* injector) {
  injector_ = injector != nullptr ? injector : &stochastic_;
}

void ShorRecovery::inject_data(uint32_t q, char pauli) {
  FTQC_CHECK(q < 7, "data qubit index out of range");
  switch (pauli) {
    case 'X': frame_.inject_x(q); break;
    case 'Y': frame_.inject_y(q); break;
    case 'Z': frame_.inject_z(q); break;
    default: FTQC_CHECK(false, "inject_data expects X, Y or Z");
  }
}

void ShorRecovery::apply_memory_noise(double p) {
  for (uint32_t q : kData) frame_.depolarize1(q, p);
}

void ShorRecovery::prepare_verified_cat(bool final_hadamards) {
  const sim::Circuit prep = cat_prep_with_check(kCat, kCheck, final_hadamards);
  for (int attempt = 0; attempt < policy_.max_cat_attempts; ++attempt) {
    for (uint32_t q : kCat) frame_.reset(q);
    frame_.reset(kCheck);
    const auto record = run_gadget(frame_, prep, *injector_, kAll);
    // Reference check outcome is 0 (the cat bits agree); a flip means the
    // verification failed and the cat is discarded (§3.3). A heralded
    // erasure on a cat qubit is a failure the check bit cannot see — the
    // qubit is maximally mixed — so the herald joins the discard decision.
    bool heralded = false;
    if (policy_.herald_reinit) {
      for (uint32_t q : kCat) heralded = heralded || frame_.is_erased(q);
    }
    const bool failed = (policy_.verify_ancilla && record[0] != 0) || heralded;
    if (!failed) return;
    ++cats_discarded_;
  }
  // Retry budget exhausted: use the last cat unverified. (Unreachable in the
  // noiseless and single-fault analyses.)
}

bool ShorRecovery::measure_syndrome_bit(const gf2::BitVec& support, bool x_type) {
  prepare_verified_cat(/*final_hadamards=*/!x_type);
  const sim::Circuit gadget = shor_syndrome_bit(kData, kCat, support, x_type);
  const auto flips = run_gadget(frame_, gadget, *injector_, kAll);
  bool parity = false;
  for (uint8_t f : flips) parity ^= (f != 0);
  return parity;
}

gf2::BitVec ShorRecovery::extract_syndrome(bool phase_type) {
  // Bit-flip errors are diagnosed by the Z-type generators (measured with
  // Shor-state ancillas); phase errors by the X-type generators.
  gf2::BitVec syndrome(3);
  for (size_t row = 0; row < 3; ++row) {
    const gf2::BitVec support = hamming_.check_matrix().row(row);
    syndrome.set(row, measure_syndrome_bit(support, /*x_type=*/phase_type));
  }
  return syndrome;
}

void ShorRecovery::correct(bool phase_type, const gf2::BitVec& syndrome) {
  const size_t pos = hamming_.error_position(syndrome);
  if (pos >= 7) return;
  sim::Circuit fix;
  if (phase_type) {
    fix.z(kData[pos]);
  } else {
    fix.x(kData[pos]);
  }
  fix.tick();
  run_gadget(frame_, fix, *injector_, kData);
  if (phase_type) {
    frame_.inject_z(kData[pos]);
  } else {
    frame_.inject_x(kData[pos]);
  }
}

void ShorRecovery::run_cycle() {
  for (const bool phase_type : {false, true}) {
    const gf2::BitVec syndrome = extract_syndrome(phase_type);
    if (!syndrome.any()) continue;
    if (policy_.repeat_nontrivial_syndrome) {
      const gf2::BitVec again = extract_syndrome(phase_type);
      if (again == syndrome) correct(phase_type, syndrome);
    } else {
      correct(phase_type, syndrome);
    }
  }
}

bool ShorRecovery::logical_x_error() const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, frame_.x_frame().get(q));
  return hamming_.decode_logical(word);
}

bool ShorRecovery::logical_z_error() const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, frame_.z_frame().get(q));
  return hamming_.decode_logical(word);
}

}  // namespace ftqc::ft
