#include "gf2/bitmat.h"

namespace ftqc::gf2 {

BitMat BitMat::from_rows(std::initializer_list<std::string> rows) {
  FTQC_CHECK(rows.size() > 0, "from_rows requires at least one row");
  const size_t cols = rows.begin()->size();
  BitMat m(rows.size(), cols);
  size_t r = 0;
  for (const auto& row : rows) {
    FTQC_CHECK(row.size() == cols, "ragged rows in BitMat::from_rows");
    m.data_[r] = BitVec::from_string(row);
    ++r;
  }
  return m;
}

BitMat BitMat::hconcat(const BitMat& a, const BitMat& b) {
  FTQC_CHECK(a.rows() == b.rows(), "hconcat row mismatch");
  BitMat m(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) m.set(r, c, a.get(r, c));
    for (size_t c = 0; c < b.cols(); ++c) m.set(r, a.cols() + c, b.get(r, c));
  }
  return m;
}

}  // namespace ftqc::gf2
