#pragma once

#include <string>

#include "codes/stabilizer_code.h"
#include "gf2/bitmat.h"

namespace ftqc::codes {

// Builds a CSS code from two parity-check matrices: rows of `hx` become
// X-type generators, rows of `hz` Z-type generators. Requires
// hx · hzᵀ = 0 (so the generators commute). Logical operators are computed
// generically: logical X representatives span ker(hz)/rowspace(hx), logical
// Z representatives span ker(hx)/rowspace(hz), paired so that
// X̂_i anticommutes with Ẑ_j exactly when i = j (Eq. 29).
//
// Steane's code (§2) is the self-dual case hx = hz = Hamming check matrix;
// the [[15,7,3]] code of §3.6 ("codes that encode many qubits") is the
// r = 4 Hamming case.
[[nodiscard]] StabilizerCode make_css_code(std::string name,
                                           const gf2::BitMat& hx,
                                           const gf2::BitMat& hz);

}  // namespace ftqc::codes
