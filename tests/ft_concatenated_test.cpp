#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "ft/concatenated_recovery.h"
#include "ft/fault_enumeration.h"

namespace ftqc::ft {
namespace {

const sim::NoiseParams kNoiseless{};

RecoveryPolicy exrec_policy() {
  RecoveryPolicy policy;
  policy.level2_discipline = Level2Discipline::kExRec;
  return policy;
}

bool cycle_fails_under(NoiseInjector& injector, const RecoveryPolicy& policy,
                       uint64_t seed) {
  Level2Recovery rec(kNoiseless, policy, seed);
  rec.set_injector(&injector);
  rec.run_cycle();
  return rec.any_logical_error();
}

TEST(Level2Recovery, NoiselessCycleIsClean) {
  Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 1);
  rec.run_cycle();
  EXPECT_FALSE(rec.any_logical_error());
  EXPECT_FALSE(rec.frame().x_frame().any());
  EXPECT_FALSE(rec.frame().z_frame().any());
}

TEST(Level2Recovery, CorrectsSinglePhysicalErrors) {
  // Sampled positions across subblocks, every Pauli type.
  for (uint32_t q : {0u, 5u, 7u, 13u, 24u, 30u, 48u}) {
    for (char pauli : {'X', 'Y', 'Z'}) {
      Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 10 + q);
      rec.inject_data(q, pauli);
      rec.run_cycle();
      EXPECT_FALSE(rec.any_logical_error())
          << pauli << " on qubit " << q << " not corrected";
      EXPECT_FALSE(rec.frame().x_frame().any() || rec.frame().z_frame().any())
          << pauli << " on qubit " << q << " left residuals";
    }
  }
}

TEST(Level2Recovery, CorrectsOneErrorPerSubblockSimultaneously) {
  // Seven X errors, one per subblock: each level-1 decode fixes its own.
  Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 21);
  for (size_t sub = 0; sub < 7; ++sub) {
    rec.inject_data(static_cast<uint32_t>(7 * sub + (sub % 7)), 'X');
  }
  rec.run_cycle();
  EXPECT_FALSE(rec.any_logical_error());
}

TEST(Level2Recovery, CorrectsSubblockLogicalError) {
  // Two X's in one subblock = a level-1 logical X after subblock decoding;
  // the level-2 syndrome must catch and fix it.
  Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 22);
  rec.inject_data(0, 'X');
  rec.inject_data(1, 'X');
  rec.run_cycle();
  EXPECT_FALSE(rec.any_logical_error());
}

TEST(Level2Recovery, TwoFailedSubblocksDefeatLevel2) {
  // Double-logical failure exceeds the top code's correction power.
  Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 23);
  rec.inject_data(0, 'X');
  rec.inject_data(1, 'X');  // subblock 0 logically flipped
  rec.inject_data(7, 'X');
  rec.inject_data(8, 'X');  // subblock 1 logically flipped
  rec.run_cycle();
  EXPECT_TRUE(rec.logical_x_error());
}

TEST(Level2Recovery, SingleFaultSampleSurvives) {
  // The full single-fault scan over a level-2 cycle is ~27k runs of a
  // ~3000-location gadget — run a strided sample here; the bench covers a
  // fuller sweep statistically.
  FaultPointInjector recorder;
  {
    Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 31);
    rec.set_injector(&recorder);
    rec.run_cycle();
  }
  const auto& kinds = recorder.kinds();
  ASSERT_GT(kinds.size(), 1000u);
  size_t tried = 0;
  for (size_t loc = 0; loc < kinds.size(); loc += 37) {
    for (int v = 0; v < location_variants(kinds[loc]); ++v) {
      FaultPointInjector injector({{loc, v}});
      Level2Recovery rec(kNoiseless, RecoveryPolicy{}, 31);
      rec.set_injector(&injector);
      rec.run_cycle();
      rec.set_injector(nullptr);
      EXPECT_FALSE(rec.any_logical_error())
          << "single fault at location " << loc << " variant " << v;
      ++tried;
    }
  }
  EXPECT_GT(tried, 200u);
}

TEST(Level2Recovery, StochasticLowNoiseIsQuiet) {
  const auto noise = sim::NoiseParams::uniform_gate(1e-4);
  size_t failures = 0;
  for (uint64_t s = 0; s < 300; ++s) {
    Level2Recovery rec(noise, RecoveryPolicy{}, 100 + s);
    rec.run_cycle();
    failures += rec.any_logical_error();
  }
  EXPECT_EQ(failures, 0u);
}

// ---- Extended-rectangle discipline ---------------------------------------

TEST(Level2ExRec, NoiselessCycleIsClean) {
  for (const bool data_recoveries : {false, true}) {
    RecoveryPolicy policy = exrec_policy();
    policy.exrec_data_recoveries = data_recoveries;
    Level2Recovery rec(kNoiseless, policy, 1);
    rec.run_cycle();
    EXPECT_FALSE(rec.any_logical_error());
    EXPECT_FALSE(rec.frame().x_frame().any());
    EXPECT_FALSE(rec.frame().z_frame().any());
  }
}

TEST(Level2ExRec, CorrectsSinglePhysicalErrors) {
  for (const bool data_recoveries : {false, true}) {
    RecoveryPolicy policy = exrec_policy();
    policy.exrec_data_recoveries = data_recoveries;
    for (uint32_t q : {0u, 5u, 13u, 24u, 30u, 48u}) {
      for (char pauli : {'X', 'Y', 'Z'}) {
        Level2Recovery rec(kNoiseless, policy, 10 + q);
        rec.inject_data(q, pauli);
        rec.run_cycle();
        EXPECT_FALSE(rec.any_logical_error())
            << pauli << " on qubit " << q << " not corrected (data_recoveries="
            << data_recoveries << ")";
        EXPECT_FALSE(rec.frame().x_frame().any() || rec.frame().z_frame().any())
            << pauli << " on qubit " << q << " left residuals";
      }
    }
  }
}

TEST(Level2ExRec, CorrectsSubblockLogicalError) {
  Level2Recovery rec(kNoiseless, exrec_policy(), 22);
  rec.inject_data(0, 'X');
  rec.inject_data(1, 'X');
  rec.run_cycle();
  EXPECT_FALSE(rec.any_logical_error());
}

TEST(Level2ExRec, MarkersExposeSubgadgetWindows) {
  // The recorder's markers bracket every sub-gadget so scans can target
  // them; the prep:A window is the same circuit under both disciplines, and
  // only exRec has the interleave window.
  FaultPointInjector bare_rec, exrec_rec;
  cycle_fails_under(bare_rec, RecoveryPolicy{}, 31);
  cycle_fails_under(exrec_rec, exrec_policy(), 31);

  const auto bare_prep = bare_rec.marker_window("prep:A", "prep:A:end");
  const auto exrec_prep = exrec_rec.marker_window("prep:A", "prep:A:end");
  EXPECT_EQ(bare_prep.first, 0u);
  EXPECT_EQ(bare_prep, exrec_prep);
  EXPECT_GT(bare_prep.second, 1000u);

  const auto interleave = exrec_rec.marker_window("exrec:A", "exrec:A:end");
  EXPECT_EQ(interleave.first, exrec_prep.second);
  EXPECT_GT(interleave.second - interleave.first, 4000u)
      << "seven level-1 cycles should dominate the interleave window";
  for (const auto& [label, loc] : bare_rec.markers()) {
    EXPECT_NE(label, "exrec:A") << "bare discipline must not interleave";
  }
  // Both extractions expose a second prep window, further along the path.
  const auto bare_prep2 = bare_rec.marker_window("prep:A", "prep:A:end", 1);
  const auto exrec_prep2 = exrec_rec.marker_window("prep:A", "prep:A:end", 1);
  EXPECT_GT(bare_prep2.first, bare_prep.second);
  EXPECT_EQ(bare_prep2.second - bare_prep2.first,
            exrec_prep2.second - exrec_prep2.first);
}

TEST(Level2ExRec, SingleFaultStridedSampleSurvives) {
  // Strided cross-section of the full scan (the exhaustive version runs in
  // the integration tier; see Level2ExRecIntegration).
  FaultPointInjector recorder;
  cycle_fails_under(recorder, exrec_policy(), 31);
  ASSERT_GT(recorder.kinds().size(), 50000u);
  ScanOptions options;
  options.location_stride = 211;
  const auto scan = scan_single_faults(
      [](NoiseInjector& injector) {
        return cycle_fails_under(injector, exrec_policy(), 31);
      },
      options);
  EXPECT_GT(scan.faults_tried, 500u);
  EXPECT_EQ(scan.faults_failing, 0u)
      << "a single fault defeated the exRec gadget";
}

// ---- Seed determinism and bare-path regression ---------------------------

TEST(Level2Determinism, SameSeedSameOutcomePerDiscipline) {
  const auto noise = sim::NoiseParams::uniform_gate(3e-3);
  for (const auto& policy : {RecoveryPolicy{}, exrec_policy()}) {
    for (uint64_t seed : {7u, 1234u, 999u}) {
      Level2Recovery a(noise, policy, seed);
      Level2Recovery b(noise, policy, seed);
      a.run_cycle();
      b.run_cycle();
      EXPECT_EQ(a.logical_x_error(), b.logical_x_error());
      EXPECT_EQ(a.logical_z_error(), b.logical_z_error());
      EXPECT_TRUE(a.frame().x_frame() == b.frame().x_frame());
      EXPECT_TRUE(a.frame().z_frame() == b.frame().z_frame());
    }
  }
}

TEST(Level2Determinism, BareDisciplineReproducesPinnedResults) {
  // Bit-for-bit pin of the bare path so RNG-stream drift cannot slip in
  // unnoticed. Re-pinned once, deliberately, when FrameSim stopped consuming
  // RNG draws for p <= 0 channels (aligning the serial stream with the batch
  // engine's fill_hit_words short-circuit); the per-seed outcomes shifted
  // but the statistics stayed within binomial error of the published
  // E18 bare-discipline numbers.
  size_t fails = 0;
  uint64_t mask = 0;
  const auto noise = sim::NoiseParams::uniform_gate(2e-3);
  for (uint64_t i = 0; i < 200; ++i) {
    Level2Recovery rec(noise, RecoveryPolicy{}, 9000 + i);
    rec.run_cycle();
    if (rec.any_logical_error()) {
      ++fails;
      if (i < 64) mask |= uint64_t{1} << i;
    }
  }
  EXPECT_EQ(fails, 6u);
  EXPECT_EQ(mask, 0x40000000010ull);

  size_t fx = 0, fz = 0;
  const auto noisier = sim::NoiseParams::uniform_gate(4e-3);
  for (uint64_t i = 0; i < 100; ++i) {
    Level2Recovery rec(noisier, RecoveryPolicy{}, 5000 + i);
    rec.run_cycle();
    fx += rec.logical_x_error();
    fz += rec.logical_z_error();
  }
  EXPECT_EQ(fx, 8u);
  EXPECT_EQ(fz, 13u);
}

// ---- Integration tier: the exhaustive fault-enumeration battery ----------
// (tests/CMakeLists.txt labels this suite `integration`; everything above
// stays in the unit tier.)

TEST(Level2ExRecIntegration, ExhaustiveSingleFaultScanIsClean) {
  // Every circuit location x every Pauli variant across the FULL exRec
  // level-2 cycle — interleaved level-1 recoveries included — must leave no
  // logical error. This is the §3 fault-tolerance property verified
  // exhaustively rather than statistically (~200k gadget replays).
  const auto scan = scan_single_faults(
      [](NoiseInjector& injector) {
        return cycle_fails_under(injector, exrec_policy(), 77);
      },
      all_kinds());
  EXPECT_GT(scan.num_locations, 50000u);
  EXPECT_GT(scan.faults_tried, 190000u);
  EXPECT_EQ(scan.faults_failing, 0u)
      << "a single fault caused a level-2 logical error: not fault tolerant";
}

TEST(Level2ExRecIntegration, MalignantPairFractionStrictlyBelowBare) {
  // The bare gadget's malignant pairs put one fault in EACH of the two
  // level-2 ancilla preparations (one per syndrome type); the interleaved
  // recoveries scrub the first prep's damage before it can combine with the
  // second's. Sample that cross-extraction region with fixed seeds: the
  // exRec fraction must be strictly below the bare fraction.
  const auto sample = [](const RecoveryPolicy& policy) {
    FaultPointInjector recorder;
    cycle_fails_under(recorder, policy, 77);
    const auto w1 = recorder.marker_window("prep:A", "prep:A:end", 0);
    const auto w2 = recorder.marker_window("prep:A", "prep:A:end", 1);
    ScanOptions first, second;
    first.filter = second.filter = gate_kinds_only();
    first.first_location = w1.first;
    first.last_location = w1.second;
    second.first_location = w2.first;
    second.last_location = w2.second;
    return sample_fault_pairs(
        [&policy](NoiseInjector& injector) {
          return cycle_fails_under(injector, policy, 77);
        },
        first, second, 2500, 20260729);
  };
  const auto bare = sample(RecoveryPolicy{});
  const auto exrec = sample(exrec_policy());
  EXPECT_GT(bare.pairs_failing, 20u)
      << "expected the bare gadget to expose cross-extraction malignant pairs";
  EXPECT_LT(exrec.malignant_fraction(), bare.malignant_fraction());
  EXPECT_LT(exrec.pairs_failing * 10, bare.pairs_failing)
      << "the interleave should suppress malignancy by an order of magnitude";
}

TEST(Level2ExRecIntegration, DataRecoveryVariantStridedScanIsClean) {
  // The optional trailing leg (level-1 recoveries between extraction and
  // correction) must preserve single-fault tolerance too. Its extra
  // sub-gadgets only execute on fault-bearing paths, so a strided scan
  // covers representative locations cheaply.
  RecoveryPolicy policy = exrec_policy();
  policy.exrec_data_recoveries = true;
  ScanOptions options;
  options.location_stride = 23;
  const auto scan = scan_single_faults(
      [&policy](NoiseInjector& injector) {
        return cycle_fails_under(injector, policy, 77);
      },
      options);
  EXPECT_GT(scan.faults_tried, 5000u);
  EXPECT_EQ(scan.faults_failing, 0u);
}

}  // namespace
}  // namespace ftqc::ft
