#include "codes/css.h"

#include <vector>

#include "common/check.h"
#include "gf2/linalg.h"

namespace ftqc::codes {

namespace {

using gf2::BitMat;
using gf2::BitVec;
using pauli::PauliString;

// Basis of ker(killer) modulo rowspace(modout): returns vectors that extend
// rowspace(modout) to rowspace(modout) + ker(killer).
std::vector<BitVec> quotient_basis(const BitMat& killer, const BitMat& modout) {
  const auto kernel = gf2::kernel_basis(killer);
  std::vector<BitVec> result;
  // Grow a matrix starting from modout's rows; keep kernel vectors that
  // increase the rank.
  std::vector<BitVec> rows;
  for (size_t r = 0; r < modout.rows(); ++r) rows.push_back(modout.row(r));
  auto current_rank = [&rows, &killer]() {
    BitMat m(rows.size(), killer.cols());
    for (size_t i = 0; i < rows.size(); ++i) m.row(i) = rows[i];
    return gf2::rank(m);
  };
  size_t base_rank = current_rank();
  for (const auto& v : kernel) {
    rows.push_back(v);
    const size_t new_rank = current_rank();
    if (new_rank > base_rank) {
      base_rank = new_rank;
      result.push_back(v);
    } else {
      rows.pop_back();
    }
  }
  return result;
}

PauliString pauli_from_support(size_t n, const BitVec& support, char type) {
  PauliString p(n);
  for (size_t q = 0; q < n; ++q) {
    if (support.get(q)) p.set_pauli(q, type);
  }
  return p;
}

}  // namespace

StabilizerCode make_css_code(std::string name, const BitMat& hx,
                             const BitMat& hz) {
  FTQC_CHECK(hx.cols() == hz.cols(), "CSS matrices must share block length");
  const size_t n = hx.cols();

  // Commutation: every X row must overlap every Z row evenly.
  for (size_t i = 0; i < hx.rows(); ++i) {
    for (size_t j = 0; j < hz.rows(); ++j) {
      FTQC_CHECK(!hx.row(i).dot(hz.row(j)),
                 "CSS requires hx · hzᵀ = 0 (odd overlap found)");
    }
  }

  std::vector<PauliString> generators;
  for (size_t i = 0; i < hx.rows(); ++i) {
    generators.push_back(pauli_from_support(n, hx.row(i), 'X'));
  }
  for (size_t j = 0; j < hz.rows(); ++j) {
    generators.push_back(pauli_from_support(n, hz.row(j), 'Z'));
  }

  // Logical X supports: ker(hz) beyond rowspace(hx); logical Z supports:
  // ker(hx) beyond rowspace(hz).
  const auto x_supports = quotient_basis(hz, hx);
  const auto z_supports = quotient_basis(hx, hz);
  FTQC_CHECK(x_supports.size() == z_supports.size(),
             "CSS logical X/Z dimension mismatch");
  const size_t k = x_supports.size();

  // Pair the bases so that <x_i, z_j> = delta_ij: Gaussian elimination on the
  // k x k GF(2) pairing matrix M_ij = <x_i, z_j>, adjusting the Z side.
  std::vector<BitVec> zs = z_supports;
  std::vector<BitVec> xs = x_supports;
  for (size_t i = 0; i < k; ++i) {
    // Find a z with odd overlap with x_i among columns >= i.
    size_t pivot = k;
    for (size_t j = i; j < k; ++j) {
      if (xs[i].dot(zs[j])) {
        pivot = j;
        break;
      }
    }
    FTQC_CHECK(pivot != k, "CSS pairing is degenerate");
    std::swap(zs[i], zs[pivot]);
    // Clear the overlap of z_i with every other x (rows below and above).
    for (size_t r = 0; r < k; ++r) {
      if (r != i && xs[r].dot(zs[i])) {
        // Add x-row fix on the X side instead: adjust x_r by x_i? No —
        // adjust the other z columns so each x_r pairs only with z_r.
        // Here we fix the Z vector paired to x_r later; instead clear
        // <x_r, z_i> by adding z_r-candidates. Simplest correct scheme:
        // adjust X side: x_r <- x_r + x_i keeps ker/quotient membership and
        // kills the overlap with z_i.
        xs[r] ^= xs[i];
      }
    }
    // And clear <x_i, z_j> for j > i by adding z_i into those z_j.
    for (size_t j = 0; j < k; ++j) {
      if (j != i && xs[i].dot(zs[j])) zs[j] ^= zs[i];
    }
  }

  std::vector<PauliString> logical_x;
  std::vector<PauliString> logical_z;
  for (size_t i = 0; i < k; ++i) {
    logical_x.push_back(pauli_from_support(n, xs[i], 'X'));
    logical_z.push_back(pauli_from_support(n, zs[i], 'Z'));
  }

  return StabilizerCode(std::move(name), n, std::move(generators),
                        std::move(logical_x), std::move(logical_z));
}

}  // namespace ftqc::codes
