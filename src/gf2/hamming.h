#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gf2/bitmat.h"

namespace ftqc::gf2 {

// The classical [7,4,3] Hamming code, exactly as used in §2 of the paper.
//
// Two equivalent parity-check matrices appear in the paper: Eq. (1), whose
// i-th column is the binary expansion of i+1 (so the syndrome literally spells
// the error position), and Eq. (15), the systematic form used by the encoding
// circuit of Fig. 3. Both are exposed; they differ by a column permutation.
class Hamming743 {
 public:
  static constexpr size_t kN = 7;  // block length
  static constexpr size_t kK = 4;  // message bits
  static constexpr size_t kD = 3;  // minimum distance

  Hamming743();

  // Parity check matrix of Eq. (1): column i is binary(i+1), MSB first row.
  [[nodiscard]] const BitMat& check_matrix() const { return h_; }
  // Systematic parity check matrix of Eq. (15).
  [[nodiscard]] const BitMat& check_matrix_systematic() const { return h_sys_; }

  // 3-bit syndrome H·v of a 7-bit word (Eq. 2/3).
  [[nodiscard]] BitVec syndrome(const BitVec& word) const { return h_.mul(word); }

  [[nodiscard]] bool is_codeword(const BitVec& word) const {
    return !syndrome(word).any();
  }

  // Single-error correction: returns the corrected word. A zero syndrome
  // leaves the word unchanged; syndrome s points at bit s-1 (Eq. 3).
  [[nodiscard]] BitVec correct(BitVec word) const;

  // Position (0-based) indicated by a syndrome, or kN when trivial.
  [[nodiscard]] size_t error_position(const BitVec& syn) const;

  // All 16 codewords, as 7-bit integers bit i = qubit i (index 0 = leftmost
  // column of H). Order: even-weight words first, then odd-weight (the
  // supports of Steane's |0>_code, Eq. 6, and |1>_code, Eq. 7).
  [[nodiscard]] const std::vector<uint8_t>& codewords() const { return all_; }
  [[nodiscard]] const std::vector<uint8_t>& even_codewords() const { return even_; }
  [[nodiscard]] const std::vector<uint8_t>& odd_codewords() const { return odd_; }

  // Classical decode of a measured 7-bit word to the logical bit of Steane's
  // code: correct one error, then take the parity of the corrected word
  // (§2: "the parity of that codeword is the value of the logical qubit").
  [[nodiscard]] bool decode_logical(const BitVec& word) const {
    return correct(word).parity();
  }

  // Minimum distance by exhaustion (sanity invariant; must equal 3).
  [[nodiscard]] size_t brute_force_distance() const;

 private:
  BitMat h_;
  BitMat h_sys_;
  std::vector<uint8_t> all_;
  std::vector<uint8_t> even_;
  std::vector<uint8_t> odd_;
};

// General binary linear code defined by a parity check matrix; used for the
// larger-code discussions of §3.6 / §5 (e.g. the [15,11,3] Hamming code that
// seeds the [[15,7,3]] CSS construction).
class LinearCode {
 public:
  explicit LinearCode(BitMat check_matrix);

  [[nodiscard]] const BitMat& check_matrix() const { return h_; }
  [[nodiscard]] size_t n() const { return h_.cols(); }
  [[nodiscard]] size_t k() const { return h_.cols() - rank_; }

  [[nodiscard]] BitVec syndrome(const BitVec& word) const { return h_.mul(word); }
  [[nodiscard]] bool is_codeword(const BitVec& word) const {
    return !syndrome(word).any();
  }

  // Generator rows: a basis of the codeword space (kernel of H).
  [[nodiscard]] const std::vector<BitVec>& generator_basis() const { return gen_; }

  // Minimum distance by exhaustive search over the codeword space
  // (feasible for k <= ~20).
  [[nodiscard]] size_t brute_force_distance() const;

 private:
  BitMat h_;
  size_t rank_;
  std::vector<BitVec> gen_;
};

// Parity check matrix of the [2^r - 1, 2^r - 1 - r, 3] Hamming family:
// column i (0-based) is the binary expansion of i+1.
[[nodiscard]] BitMat hamming_check_matrix(size_t r);

}  // namespace ftqc::gf2
