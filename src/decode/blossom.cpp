#include "decode/blossom.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "common/check.h"

namespace ftqc::decode {
namespace {

// Primal-dual maximum-weight general matching (Edmonds' blossom algorithm,
// the classic O(n³) formulation with an explicit contraction stack). Vertices
// are 1-indexed; ids n+1..2n name contracted blossoms, 0 is the "unmatched"
// sentinel. Every edge keeps its ORIGINAL endpoints (u, v) even when stored
// in a blossom's adjacency row, so expanding a contraction can recover which
// inner vertex the edge actually touches.
//
// Dual bookkeeping follows the standard half-integral trick: edge weights are
// doubled inside the slack arithmetic (slack(e) = lab[u] + lab[v] - 2 w(e)),
// vertex duals move by d and blossom duals by 2d per dual adjustment, so all
// quantities stay integral for integral weights.
class BlossomSolver {
 public:
  BlossomSolver(size_t n, const std::vector<int64_t>& weight)
      : n_(static_cast<int>(n)),
        ids_(2 * n + 1),
        g_(ids_ * ids_),
        lab_(ids_, 0),
        match_(ids_, 0),
        slack_(ids_, 0),
        st_(ids_, 0),
        pa_(ids_, 0),
        flower_(ids_),
        flower_from_(ids_, std::vector<int>(n + 1, 0)),
        s_(ids_, -1),
        vis_(ids_, 0) {
    n_x_ = n_;
    int64_t w_max = 0;
    for (int u = 1; u <= n_; ++u) {
      st_[u] = u;
      flower_from_[u][u] = u;
      for (int v = 1; v <= n_; ++v) {
        const int64_t w =
            u == v ? 0
                   : weight[static_cast<size_t>(u - 1) * n_ +
                            static_cast<size_t>(v - 1)];
        g_at(u, v) = {u, v, w};
        w_max = std::max(w_max, w);
      }
    }
    for (int u = 1; u <= n_; ++u) lab_[u] = w_max;
  }

  // Runs augmentation phases to exhaustion and returns the matched partner of
  // every original vertex (1-indexed; FTQC_CHECKed perfect by the caller).
  const std::vector<int>& solve() {
    while (grow_forest()) {
    }
    return match_;
  }

 private:
  struct Edge {
    int u = 0;
    int v = 0;
    int64_t w = 0;
  };

  static constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;

  Edge& g_at(int u, int v) {
    return g_[static_cast<size_t>(u) * ids_ + static_cast<size_t>(v)];
  }
  [[nodiscard]] const Edge& g_at(int u, int v) const {
    return g_[static_cast<size_t>(u) * ids_ + static_cast<size_t>(v)];
  }

  [[nodiscard]] int64_t edge_slack(const Edge& e) const {
    return lab_[e.u] + lab_[e.v] - 2 * e.w;
  }

  void update_slack(int u, int x) {
    if (slack_[x] == 0 ||
        edge_slack(g_at(u, x)) < edge_slack(g_at(slack_[x], x))) {
      slack_[x] = u;
    }
  }

  void set_slack(int x) {
    slack_[x] = 0;
    for (int u = 1; u <= n_; ++u) {
      if (g_at(u, x).w > 0 && st_[u] != x && s_[st_[u]] == 0) {
        update_slack(u, x);
      }
    }
  }

  void queue_push(int x) {
    if (x <= n_) {
      queue_.push_back(x);
    } else {
      for (const int inner : flower_[x]) queue_push(inner);
    }
  }

  void set_st(int x, int b) {
    st_[x] = b;
    if (x > n_) {
      for (const int inner : flower_[x]) set_st(inner, b);
    }
  }

  // Rotation offset of inner vertex `xr` inside blossom b's cycle such that
  // the even-length alternating segment starts at the blossom's base; odd
  // positions flip the stored cycle orientation first.
  int get_pr(int b, int xr) {
    auto& cycle = flower_[b];
    const int pr = static_cast<int>(
        std::find(cycle.begin(), cycle.end(), xr) - cycle.begin());
    if (pr % 2 == 1) {
      std::reverse(cycle.begin() + 1, cycle.end());
      return static_cast<int>(cycle.size()) - pr;
    }
    return pr;
  }

  void set_match(int u, int v) {
    match_[u] = g_at(u, v).v;
    if (u <= n_) return;
    const Edge e = g_at(u, v);
    const int xr = flower_from_[u][e.u];
    const int pr = get_pr(u, xr);
    auto& cycle = flower_[u];
    for (int i = 0; i < pr; ++i) set_match(cycle[i], cycle[i ^ 1]);
    set_match(xr, v);
    std::rotate(cycle.begin(), cycle.begin() + pr, cycle.end());
  }

  void augment(int u, int v) {
    for (;;) {
      const int xnv = st_[match_[u]];
      set_match(u, v);
      if (xnv == 0) return;
      set_match(xnv, st_[pa_[xnv]]);
      u = st_[pa_[xnv]];
      v = xnv;
    }
  }

  int get_lca(int u, int v) {
    for (++vis_stamp_; u != 0 || v != 0; std::swap(u, v)) {
      if (u == 0) continue;
      if (vis_[u] == vis_stamp_) return u;
      vis_[u] = vis_stamp_;
      u = st_[match_[u]];
      if (u != 0) u = st_[pa_[u]];
    }
    return 0;
  }

  void add_blossom(int u, int lca, int v) {
    int b = n_ + 1;
    while (b <= n_x_ && st_[b] != 0) ++b;
    if (b > n_x_) ++n_x_;
    FTQC_CHECK(b < static_cast<int>(ids_), "blossom id overflow");
    lab_[b] = 0;
    s_[b] = 0;
    match_[b] = match_[lca];
    auto& cycle = flower_[b];
    cycle.clear();
    cycle.push_back(lca);
    for (int x = u, y = 0; x != lca; x = st_[pa_[y]]) {
      cycle.push_back(x);
      cycle.push_back(y = st_[match_[x]]);
      queue_push(y);
    }
    std::reverse(cycle.begin() + 1, cycle.end());
    for (int x = v, y = 0; x != lca; x = st_[pa_[y]]) {
      cycle.push_back(x);
      cycle.push_back(y = st_[match_[x]]);
      queue_push(y);
    }
    set_st(b, b);
    for (int x = 1; x <= n_x_; ++x) g_at(b, x).w = g_at(x, b).w = 0;
    for (int x = 1; x <= n_; ++x) flower_from_[b][x] = 0;
    // The blossom's adjacency row keeps, per outer vertex, the least-slack
    // edge leaving any inner vertex (original endpoints preserved).
    for (const int xs : cycle) {
      for (int x = 1; x <= n_x_; ++x) {
        if (g_at(b, x).w == 0 ||
            edge_slack(g_at(xs, x)) < edge_slack(g_at(b, x))) {
          g_at(b, x) = g_at(xs, x);
          g_at(x, b) = g_at(x, xs);
        }
      }
      for (int x = 1; x <= n_; ++x) {
        if (flower_from_[xs][x] != 0) flower_from_[b][x] = xs;
      }
    }
    set_slack(b);
  }

  // A T-blossom whose dual hit zero no longer pays to stay contracted; its
  // cycle re-enters the forest with alternating S/T roles along the stem.
  void expand_blossom(int b) {
    auto& cycle = flower_[b];
    for (const int inner : cycle) set_st(inner, inner);
    const int xr = flower_from_[b][g_at(b, pa_[b]).u];
    const int pr = get_pr(b, xr);
    for (int i = 0; i < pr; i += 2) {
      const int xs = cycle[static_cast<size_t>(i)];
      const int xns = cycle[static_cast<size_t>(i) + 1];
      pa_[xs] = g_at(xns, xs).u;
      s_[xs] = 1;
      s_[xns] = 0;
      slack_[xs] = 0;
      set_slack(xns);
      queue_push(xns);
    }
    s_[xr] = 1;
    pa_[xr] = pa_[b];
    for (size_t i = static_cast<size_t>(pr) + 1; i < cycle.size(); ++i) {
      s_[cycle[i]] = -1;
      set_slack(cycle[i]);
    }
    st_[b] = 0;
  }

  // Processes one tight edge out of the S-forest: grows the tree through a
  // matched T-vertex, contracts an odd cycle, or augments (returns true).
  bool on_found_edge(const Edge& e) {
    const int u = st_[e.u];
    const int v = st_[e.v];
    if (s_[v] == -1) {
      pa_[v] = e.u;
      s_[v] = 1;
      const int nu = st_[match_[v]];
      slack_[v] = slack_[nu] = 0;
      s_[nu] = 0;
      queue_push(nu);
    } else if (s_[v] == 0) {
      const int lca = get_lca(u, v);
      if (lca == 0) {
        augment(u, v);
        augment(v, u);
        return true;
      }
      add_blossom(u, lca, v);
    }
    return false;
  }

  // One phase: BFS the S-forest over tight edges, adjusting duals when it
  // stalls, until an augmenting path is found (true) or the duals prove no
  // further augmentation can raise the total weight (false).
  bool grow_forest() {
    std::fill(s_.begin(), s_.end(), -1);
    std::fill(slack_.begin(), slack_.end(), 0);
    queue_.clear();
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[x] == x && match_[x] == 0) {
        pa_[x] = 0;
        s_[x] = 0;
        queue_push(x);
      }
    }
    if (queue_.empty()) return false;
    for (;;) {
      while (!queue_.empty()) {
        const int u = queue_.front();
        queue_.pop_front();
        if (s_[st_[u]] == 1) continue;
        for (int v = 1; v <= n_; ++v) {
          if (g_at(u, v).w > 0 && st_[u] != st_[v]) {
            if (edge_slack(g_at(u, v)) == 0) {
              if (on_found_edge(g_at(u, v))) return true;
            } else {
              update_slack(u, st_[v]);
            }
          }
        }
      }
      // Dual adjustment: the largest step that keeps every constraint tight
      // or slack-nonnegative (S-S edges move twice as fast, T-blossom duals
      // shrink toward their expansion point).
      int64_t d = kInf;
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1) d = std::min(d, lab_[b] / 2);
      }
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x] != 0) {
          if (s_[x] == -1) {
            d = std::min(d, edge_slack(g_at(slack_[x], x)));
          } else if (s_[x] == 0) {
            d = std::min(d, edge_slack(g_at(slack_[x], x)) / 2);
          }
        }
      }
      for (int u = 1; u <= n_; ++u) {
        if (s_[st_[u]] == 0) {
          if (lab_[u] <= d) return false;  // maximum reached
          lab_[u] -= d;
        } else if (s_[st_[u]] == 1) {
          lab_[u] += d;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b) {
          if (s_[b] == 0) {
            lab_[b] += 2 * d;
          } else if (s_[b] == 1) {
            lab_[b] -= 2 * d;
          }
        }
      }
      queue_.clear();
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x] != 0 && st_[slack_[x]] != x &&
            edge_slack(g_at(slack_[x], x)) == 0) {
          if (on_found_edge(g_at(slack_[x], x))) return true;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1 && lab_[b] == 0) expand_blossom(b);
      }
    }
  }

  int n_;
  int n_x_;  // one past the highest vertex/blossom id in use
  size_t ids_;
  std::vector<Edge> g_;
  std::vector<int64_t> lab_;
  std::vector<int> match_;
  std::vector<int> slack_;  // per outer vertex: least-slack S-neighbor
  std::vector<int> st_;     // surface id: outermost blossom containing x
  std::vector<int> pa_;
  std::vector<std::vector<int>> flower_;      // blossom cycles
  std::vector<std::vector<int>> flower_from_; // blossom -> inner vertex owning
                                              // the edge to each original id
  std::vector<int> s_;  // -1 free, 0 = S (even), 1 = T (odd)
  std::vector<int> vis_;
  int vis_stamp_ = 0;
  std::deque<int> queue_;
};

}  // namespace

std::vector<Match> BlossomMatching::match(size_t num_defects,
                                          const DistanceFn& distance) const {
  FTQC_CHECK(num_defects % 2 == 0, "defects come in pairs");
  std::vector<Match> out;
  if (num_defects == 0) return out;

  // One metric evaluation per unordered pair; the complement transform
  // w' = w_max + 1 - w turns minimization into maximization with all-positive
  // weights, so on the complete defect graph the maximum-weight matching is
  // perfect and minimizes the original summed metric.
  constexpr size_t kMaxWeight = size_t{1} << 40;
  std::vector<int64_t> weight(num_defects * num_defects, 0);
  size_t w_max = 0;
  for (size_t i = 0; i < num_defects; ++i) {
    for (size_t j = i + 1; j < num_defects; ++j) {
      const size_t d = distance(i, j);
      FTQC_CHECK(d < kMaxWeight, "metric too large for exact matching duals");
      weight[i * num_defects + j] = static_cast<int64_t>(d);
      weight[j * num_defects + i] = static_cast<int64_t>(d);
      w_max = std::max(w_max, d);
    }
  }
  const int64_t flip = static_cast<int64_t>(w_max) + 1;
  for (size_t i = 0; i < num_defects; ++i) {
    for (size_t j = 0; j < num_defects; ++j) {
      if (i != j) weight[i * num_defects + j] =
          flip - weight[i * num_defects + j];
    }
  }

  BlossomSolver solver(num_defects, weight);
  const std::vector<int>& mate = solver.solve();
  out.reserve(num_defects / 2);
  for (size_t u = 1; u <= num_defects; ++u) {
    const int v = mate[u];
    FTQC_CHECK(v > 0, "blossom matching must be perfect on a complete graph");
    if (static_cast<size_t>(v) > u) {
      out.push_back({static_cast<uint32_t>(u - 1), static_cast<uint32_t>(v - 1)});
    }
  }
  return out;
}

}  // namespace ftqc::decode
