#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace ftqc {

// Minimal fixed-width console table used by the bench harness to print
// paper-style rows. Columns auto-size to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::FILE* out = stdout) const {
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row(out, headers_, width);
    std::string rule;
    for (size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) rule += "+";
    }
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(out, row, width);
  }

 private:
  static void print_row(std::FILE* out, const std::vector<std::string>& row,
                        const std::vector<size_t>& width) {
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::fprintf(out, " %-*s ", static_cast<int>(width[c]), cell.c_str());
      if (c + 1 < width.size()) std::fprintf(out, "|");
    }
    std::fprintf(out, "\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style helper returning std::string, used for table cells.
[[gnu::format(printf, 1, 2)]] inline std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[256];
  vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

}  // namespace ftqc
