#include "ft/fault_enumeration.h"

#include <algorithm>
#include <random>
#include <vector>

#include "common/check.h"

namespace ftqc::ft {

SingleFaultScan scan_single_faults(const GadgetExperiment& run,
                                   const ScanOptions& options) {
  FTQC_CHECK(options.location_stride > 0, "location stride must be positive");
  // Recording pass: learn the noiseless path's locations.
  FaultPointInjector recorder;
  (void)run(recorder);
  const std::vector<LocationKind> kinds = recorder.kinds();

  SingleFaultScan scan;
  scan.num_locations = kinds.size();
  const size_t last = std::min(options.last_location, kinds.size());
  for (size_t loc = options.first_location; loc < last;
       loc += options.location_stride) {
    if (!options.filter(kinds[loc])) continue;
    const int variants = location_variants(kinds[loc]);
    for (int v = 0; v < variants; ++v) {
      FaultPointInjector injector({{loc, v}}, /*record_kinds=*/false);
      const bool failed = run(injector);
      ++scan.faults_tried;
      if (failed) {
        ++scan.faults_failing;
        scan.weighted_failing += variant_weight(kinds[loc]);
      }
    }
  }
  return scan;
}

SingleFaultScan scan_single_faults(const GadgetExperiment& run,
                                   const KindFilter& filter) {
  ScanOptions options;
  options.filter = filter;
  return scan_single_faults(run, options);
}

PairFaultScan scan_fault_pairs(const GadgetExperiment& run,
                               const KindFilter& filter) {
  FaultPointInjector recorder;
  (void)run(recorder);
  const std::vector<LocationKind> kinds = recorder.kinds();

  PairFaultScan scan;
  for (size_t loc1 = 0; loc1 < kinds.size(); ++loc1) {
    if (!filter(kinds[loc1])) continue;
    const int variants1 = location_variants(kinds[loc1]);
    for (int v1 = 0; v1 < variants1; ++v1) {
      // Path probe: the armed first fault may change control flow, so the
      // set of later locations is discovered per (loc1, v1).
      FaultPointInjector probe({{loc1, v1}});
      (void)run(probe);
      const std::vector<LocationKind> path_kinds = probe.kinds();
      const double w1 = variant_weight(kinds[loc1]);

      for (size_t loc2 = loc1 + 1; loc2 < path_kinds.size(); ++loc2) {
        if (!filter(path_kinds[loc2])) continue;
        const int variants2 = location_variants(path_kinds[loc2]);
        for (int v2 = 0; v2 < variants2; ++v2) {
          FaultPointInjector injector({{loc1, v1}, {loc2, v2}},
                                      /*record_kinds=*/false);
          const bool failed = run(injector);
          const double w = w1 * variant_weight(path_kinds[loc2]);
          ++scan.pairs_tried;
          scan.weighted_total += w;
          if (failed) {
            ++scan.pairs_failing;
            scan.weighted_failing += w;
          }
        }
      }
    }
  }
  return scan;
}

namespace {

// Window locations passing the kind filter, in order.
std::vector<size_t> eligible_locations(const std::vector<LocationKind>& kinds,
                                       const ScanOptions& options) {
  std::vector<size_t> eligible;
  const size_t last = std::min(options.last_location, kinds.size());
  for (size_t loc = options.first_location; loc < last; ++loc) {
    if (options.filter(kinds[loc])) eligible.push_back(loc);
  }
  return eligible;
}

// Draws (loc1 from pool1) < (loc2 from pool2) pairs with uniform variants
// and replays the gadget with both armed. With pool1 == pool2 any distinct
// ordered pair from the pool is possible.
PairSampleScan sample_pairs_from(const GadgetExperiment& run,
                                 const std::vector<LocationKind>& kinds,
                                 const std::vector<size_t>& pool1,
                                 const std::vector<size_t>& pool2,
                                 size_t num_samples, uint64_t seed) {
  FTQC_CHECK(!pool1.empty() && !pool2.empty(),
             "pair sampling needs nonempty location pools");
  std::mt19937_64 rng(seed);
  PairSampleScan scan;
  for (size_t s = 0; s < num_samples; ++s) {
    size_t loc1 = pool1[rng() % pool1.size()];
    size_t loc2 = pool2[rng() % pool2.size()];
    while (loc1 == loc2) loc2 = pool2[rng() % pool2.size()];
    if (loc1 > loc2) std::swap(loc1, loc2);
    const int v1 = static_cast<int>(
        rng() % static_cast<uint64_t>(location_variants(kinds[loc1])));
    const int v2 = static_cast<int>(
        rng() % static_cast<uint64_t>(location_variants(kinds[loc2])));
    FaultPointInjector injector({{loc1, v1}, {loc2, v2}},
                                /*record_kinds=*/false);
    injector.set_clamp_variants(true);
    ++scan.pairs_sampled;
    if (run(injector)) ++scan.pairs_failing;
  }
  return scan;
}

}  // namespace

PairSampleScan sample_fault_pairs(const GadgetExperiment& run,
                                  const ScanOptions& options,
                                  size_t num_samples, uint64_t seed) {
  FaultPointInjector recorder;
  (void)run(recorder);
  const std::vector<LocationKind> kinds = recorder.kinds();
  const std::vector<size_t> eligible = eligible_locations(kinds, options);
  FTQC_CHECK(eligible.size() >= 2, "pair sampling needs >= 2 locations");
  return sample_pairs_from(run, kinds, eligible, eligible, num_samples, seed);
}

PairSampleScan sample_fault_pairs(const GadgetExperiment& run,
                                  const ScanOptions& first,
                                  const ScanOptions& second,
                                  size_t num_samples, uint64_t seed) {
  FTQC_CHECK(first.last_location <= second.first_location,
             "pair-sample windows must be ordered and disjoint");
  FaultPointInjector recorder;
  (void)run(recorder);
  const std::vector<LocationKind> kinds = recorder.kinds();
  const std::vector<size_t> pool1 = eligible_locations(kinds, first);
  const std::vector<size_t> pool2 = eligible_locations(kinds, second);
  return sample_pairs_from(run, kinds, pool1, pool2, num_samples, seed);
}

}  // namespace ftqc::ft
