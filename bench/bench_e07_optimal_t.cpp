// E7 (§5, Eqs. 30-32): non-concatenated block codes with recovery complexity
// t^b. Reproduces the optimal-t table, the minimum block error
// exp(-e^{-1} b eps^{-1/b}), and the required accuracy eps ~ (log T)^{-b}.
#include <cmath>
#include <cstdio>

#include "bench_harness.h"
#include "common/table.h"
#include "threshold/optimal_t.h"

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E07");
  using ftqc::threshold::OptimalTAnalysis;
  const OptimalTAnalysis analysis{4.0};  // b = 4: Shor's procedure (§5)

  std::printf(
      "E7: optimal error-correcting power t for block codes whose recovery\n"
      "takes ~t^b steps (Eq. 30-32, b = 4).\n\n");

  ftqc::Table table({"eps", "t* (continuum)", "t* (integer)",
                     "min block error (exact)", "min block error (Eq. 31)"});
  for (const double eps : {1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9}) {
    table.add_row({ftqc::strfmt("%.0e", eps),
                   ftqc::strfmt("%.2f", analysis.optimal_t(eps)),
                   ftqc::strfmt("%zu", analysis.optimal_t_integer(eps)),
                   ftqc::strfmt("%.3e", analysis.min_block_error_exact(eps)),
                   ftqc::strfmt("%.3e", analysis.min_block_error_asymptotic(eps))});
  }
  table.print();

  std::printf("\nRequired accuracy for a T-cycle computation (Eq. 32):\n");
  ftqc::Table acc({"T (cycles)", "required eps", "(log T)^-4 scaling check"});
  for (const double t : {1e6, 1e9, 1e12, 1e15}) {
    const double eps = analysis.required_accuracy(t);
    acc.add_row({ftqc::strfmt("%.0e", t), ftqc::strfmt("%.3e", eps),
                 ftqc::strfmt("%.3f", eps * std::pow(std::log(t), 4.0))});
  }
  acc.print();
  ftqc::bench::JsonResult json;
  json.add("optimal_t_at_1e-6", analysis.optimal_t(1e-6));
  json.add("min_block_error_at_1e-6", analysis.min_block_error_exact(1e-6));
  json.add("required_eps_T1e9", analysis.required_accuracy(1e9));
  json.write();
  std::printf(
      "\nShape check: t* grows as eps^{-1/4}; the last column is constant\n"
      "(eps ~ (log T)^{-4}), so longer computations need only polylog-better\n"
      "gates — but unlike concatenation, never arbitrarily long ones at\n"
      "fixed eps.\n");
  return 0;
}
