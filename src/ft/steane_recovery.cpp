#include "ft/steane_recovery.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "ft/gadget_runner.h"
#include "ft/steane_circuits.h"
#include "ft/steane_layout.h"

namespace ftqc::ft {

namespace {
using steane_layout::kAncA;
using steane_layout::kAncB;
using steane_layout::kData;

// The cycle of Fig. 9 on an arbitrary layout. Holds the active-qubit sets
// (data+anc_a during syndrome-ancilla work, all 21 during verification) so
// storage-noise accounting matches the original fixed-register driver
// location for location.
class SteaneCycleRunner {
 public:
  SteaneCycleRunner(sim::FrameSim& frame, NoiseInjector& injector,
                    const RecoveryPolicy& policy,
                    const gf2::Hamming743& hamming,
                    const SteaneCycleLayout& layout,
                    const SteaneCycleCircuits& circuits)
      : frame_(frame),
        injector_(injector),
        policy_(policy),
        hamming_(hamming),
        layout_(layout),
        circuits_(circuits) {
    for (size_t i = 0; i < 7; ++i) {
      data_and_a_[i] = layout.data[i];
      data_and_a_[7 + i] = layout.anc_a[i];
      all_[i] = layout.data[i];
      all_[7 + i] = layout.anc_a[i];
      all_[14 + i] = layout.anc_b[i];
    }
  }

  void run_cycle() {
    for (const bool phase_type : {false, true}) {
      const gf2::BitVec syndrome = extract_syndrome(phase_type);
      if (!syndrome.any()) continue;  // trivial: take no action (§3.4)
      if (policy_.repeat_nontrivial_syndrome) {
        const gf2::BitVec again = extract_syndrome(phase_type);
        // Act only when the repeat agrees; a conflict defers to the next
        // cycle.
        if (again == syndrome) correct(phase_type, syndrome);
      } else {
        correct(phase_type, syndrome);
      }
    }
  }

 private:
  [[nodiscard]] bool syndrome_ancilla_heralded() const {
    for (uint32_t q : layout_.anc_a) {
      if (frame_.is_erased(q)) return true;
    }
    return false;
  }

  void prepare_verified_zero_ancilla() {
    // Fresh |0>_code on the syndrome ancilla.
    run_gadget(frame_, circuits_.zero_prep_a, injector_, data_and_a_);
    if (policy_.herald_reinit) {
      // Herald-triggered reinit: an erased ancilla qubit is known to be
      // maximally mixed, so the block is discarded and re-prepared rather
      // than verified. zero_prep_a opens with R resets, which clear both
      // the frames and the heralds of the discarded block — each replay is
      // a genuine fresh preparation. An exhausted budget keeps the last
      // (still-heralded) block and lets verification judge it.
      for (int retry = 0;
           retry < policy_.max_herald_retries && syndrome_ancilla_heralded();
           ++retry) {
        run_gadget(frame_, circuits_.zero_prep_a, injector_, data_and_a_);
      }
    }
    if (!policy_.verify_ancilla) return;

    // §3.3: compare against freshly encoded blocks; equal nontrivial
    // readings trigger a logical flip of the ancilla, a conflicted pair is
    // left alone.
    int votes_one = 0;
    int rounds = 0;
    for (int round = 0; round < policy_.verification_rounds; ++round) {
      run_gadget(frame_, circuits_.zero_prep_b, injector_, all_);
      run_gadget(frame_, circuits_.cx_ab, injector_, all_);
      const auto flips =
          run_gadget(frame_, circuits_.measure_b, injector_, all_);
      gf2::BitVec word(7);
      for (size_t q = 0; q < 7; ++q) word.set(q, flips[q] != 0);
      votes_one += hamming_.decode_logical(word) ? 1 : 0;
      ++rounds;
      for (uint32_t q : layout_.anc_b) frame_.reset(q);
    }
    if (votes_one == rounds && rounds > 0) {
      // Confident the ancilla is (logically) flipped: apply the bitwise fix.
      // Three NOTs on the logical-X support suffice (§4.1 footnote f).
      run_gadget(frame_, circuits_.ancilla_flip_fix, injector_, data_and_a_);
      frame_.inject_x(layout_.anc_a[0]);
      frame_.inject_x(layout_.anc_a[1]);
      frame_.inject_x(layout_.anc_a[2]);
    }
  }

  gf2::BitVec extract_syndrome(bool phase_type) {
    prepare_verified_zero_ancilla();
    const auto flips = run_gadget(frame_, circuits_.syndrome[phase_type],
                                  injector_, data_and_a_);
    for (uint32_t q : layout_.anc_a) frame_.reset(q);
    return hamming_syndrome_of_flips(hamming_, flips.data());
  }

  void correct(bool phase_type, const gf2::BitVec& syndrome) {
    const size_t pos = hamming_.error_position(syndrome);
    if (pos >= 7) return;
    // The correction is a real gate: it costs one fault opportunity, and it
    // shifts the reference (the noiseless run never applies corrections).
    run_gadget(frame_, circuits_.correction[phase_type][pos], injector_,
               layout_.data);
    if (phase_type) {
      frame_.inject_z(layout_.data[pos]);
    } else {
      frame_.inject_x(layout_.data[pos]);
    }
  }

  sim::FrameSim& frame_;
  NoiseInjector& injector_;
  const RecoveryPolicy& policy_;
  const gf2::Hamming743& hamming_;
  const SteaneCycleLayout& layout_;
  const SteaneCycleCircuits& circuits_;
  std::array<uint32_t, 14> data_and_a_{};
  std::array<uint32_t, 21> all_{};
};

}  // namespace

SteaneCycleCircuits compile_steane_cycle(const SteaneCycleLayout& layout) {
  SteaneCycleCircuits c;
  c.zero_prep_a = steane_zero_prep(layout.anc_a);
  c.zero_prep_b = steane_zero_prep(layout.anc_b);
  c.cx_ab = transversal_cx(layout.anc_a, layout.anc_b);
  c.measure_b = destructive_measure(layout.anc_b);
  for (uint32_t q : {layout.anc_a[0], layout.anc_a[1], layout.anc_a[2]}) {
    c.ancilla_flip_fix.x(q);
  }
  c.ancilla_flip_fix.tick();
  for (const bool phase_type : {false, true}) {
    c.syndrome[phase_type] =
        steane_syndrome_gadget(phase_type, layout.data, layout.anc_a);
    for (size_t pos = 0; pos < 7; ++pos) {
      sim::Circuit& fix = c.correction[phase_type][pos];
      if (phase_type) {
        fix.z(layout.data[pos]);
      } else {
        fix.x(layout.data[pos]);
      }
      fix.tick();
    }
  }
  return c;
}

void run_steane_cycle(sim::FrameSim& frame, NoiseInjector& injector,
                      const RecoveryPolicy& policy,
                      const gf2::Hamming743& hamming,
                      const SteaneCycleLayout& layout,
                      const SteaneCycleCircuits& circuits) {
  SteaneCycleRunner(frame, injector, policy, hamming, layout, circuits)
      .run_cycle();
}

void run_steane_cycle(sim::FrameSim& frame, NoiseInjector& injector,
                      const RecoveryPolicy& policy,
                      const gf2::Hamming743& hamming,
                      const SteaneCycleLayout& layout) {
  run_steane_cycle(frame, injector, policy, hamming, layout,
                   compile_steane_cycle(layout));
}

SteaneRecovery::SteaneRecovery(const sim::NoiseParams& noise,
                               RecoveryPolicy policy, uint64_t seed)
    : frame_(kNumQubits, seed),
      noise_(noise),
      policy_(policy),
      stochastic_(noise),
      injector_(&stochastic_) {}

void SteaneRecovery::reset() { frame_.clear(); }

void SteaneRecovery::set_injector(NoiseInjector* injector) {
  injector_ = injector != nullptr ? injector : &stochastic_;
}

void SteaneRecovery::inject_data(uint32_t q, char pauli) {
  FTQC_CHECK(q < 7, "data qubit index out of range");
  switch (pauli) {
    case 'X': frame_.inject_x(q); break;
    case 'Y': frame_.inject_y(q); break;
    case 'Z': frame_.inject_z(q); break;
    default: FTQC_CHECK(false, "inject_data expects X, Y or Z");
  }
}

void SteaneRecovery::apply_memory_noise(double p) {
  for (uint32_t q : kData) frame_.depolarize1(q, p);
}

void SteaneRecovery::run_cycle() {
  static const SteaneCycleLayout kLayout{kData, kAncA, kAncB};
  static const SteaneCycleCircuits kCircuits = compile_steane_cycle(kLayout);
  run_steane_cycle(frame_, *injector_, policy_, hamming_, kLayout, kCircuits);
}

bool SteaneRecovery::logical_x_error() const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, frame_.x_frame().get(q));
  return hamming_.decode_logical(word);
}

bool SteaneRecovery::logical_z_error() const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, frame_.z_frame().get(q));
  return hamming_.decode_logical(word);
}

size_t SteaneRecovery::residual_x_weight() const {
  size_t w = 0;
  for (size_t q = 0; q < 7; ++q) w += frame_.x_frame().get(q);
  return w;
}

size_t SteaneRecovery::residual_z_weight() const {
  size_t w = 0;
  for (size_t q = 0; q < 7; ++q) w += frame_.z_frame().get(q);
  return w;
}

namespace {
// Minimum weight of `word` xored with any even Hamming codeword (the
// stabilizer supports of the self-dual Steane code).
size_t coset_weight(const gf2::Hamming743& hamming, const gf2::BitVec& word) {
  size_t best = 8;
  for (uint8_t stab : hamming.even_codewords()) {
    size_t w = 0;
    for (size_t q = 0; q < 7; ++q) w += word.get(q) ^ ((stab >> q) & 1u);
    best = std::min(best, w);
  }
  return best;
}
}  // namespace

size_t SteaneRecovery::residual_x_coset_weight() const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, frame_.x_frame().get(q));
  return coset_weight(hamming_, word);
}

size_t SteaneRecovery::residual_z_coset_weight() const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) word.set(q, frame_.z_frame().get(q));
  return coset_weight(hamming_, word);
}

}  // namespace ftqc::ft
