#include "threshold/flow.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace ftqc::threshold {

double QuadraticFlow::at_level_closed_form(double p0, size_t levels) const {
  const double eps0 = threshold();
  return eps0 * std::pow(p0 / eps0, std::pow(2.0, static_cast<double>(levels)));
}

size_t QuadraticFlow::levels_needed(double p0, double target) const {
  if (p0 <= target) return 0;
  if (p0 >= threshold()) return std::numeric_limits<size_t>::max();
  double p = p0;
  for (size_t level = 1; level <= 64; ++level) {
    p = map(p);
    if (p <= target) return level;
  }
  return std::numeric_limits<size_t>::max();
}

size_t concatenated_block_size(size_t levels) {
  size_t size = 1;
  for (size_t l = 0; l < levels; ++l) {
    FTQC_CHECK(size <= std::numeric_limits<size_t>::max() / 7,
               "block size overflow");
    size *= 7;
  }
  return size;
}

double block_size_for_computation(double t_gates, double eps, double eps0) {
  FTQC_CHECK(eps < eps0, "below-threshold operation required");
  const double ratio = std::log(eps0 * t_gates) / std::log(eps0 / eps);
  return std::pow(std::max(ratio, 1.0), std::log2(7.0));
}

std::vector<double> flow_trajectory(const QuadraticFlow& flow, double p0,
                                    size_t levels) {
  std::vector<double> traj = {p0};
  double p = p0;
  for (size_t l = 0; l < levels; ++l) {
    p = flow.map(p);
    traj.push_back(p);
  }
  return traj;
}

}  // namespace ftqc::threshold
