#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "decode/decoder.h"
#include "sim/noise_model.h"

namespace ftqc::decode {

struct ErasureOptions {
  // Matching-metric cost of crossing an unheralded edge (~ -log p at the
  // decoder's integer scale; only the normal : erased ratio matters).
  size_t normal_weight = 16;
  // Cost of crossing a heralded edge. An erased qubit carries this side's
  // error with probability 1/2 — nearly free — so paths are steered through
  // the erasure support whenever one exists.
  size_t erased_weight = 1;
};

// Erasure-aware matching decoder for one perfect-measurement syndrome
// snapshot (code capacity). Two stages:
//
//  1. Peeling fast path (Delfosse & Zémor, arXiv:1703.01517): build a
//     spanning forest of the heralded subgraph and peel it leaf-first,
//     toggling a leaf edge whenever its pendant site holds a defect. Pure
//     erasure noise is fully corrected here — up to the bond-percolation
//     threshold of 0.5 — because every erasure cluster then carries even
//     defect parity. Odd-parity clusters (mixed Pauli + erasure) sweep
//     their one surplus defect to the cluster root for stage 2.
//  2. Weighted matching on whatever defects remain: pairwise distances are
//     Dijkstra shortest paths over the site graph with heralded edges
//     discounted to `erased_weight`, and each matched pair is corrected
//     along its reconstructed shortest path (which may thread through the
//     erasure support — toggle_*_path geodesics cannot).
//
// Passing an empty herald vector degrades to herald-blind decoding: no
// peeling, uniform edge weights, i.e. ordinary geodesic matching through the
// same code path. The blind-vs-aware threshold gap (bench E20) is measured
// decoder-for-decoder this way.
class ErasureAwareDecoder {
 public:
  ErasureAwareDecoder(const topo::ToricCode& code, ToricSide side,
                      std::shared_ptr<const MatchingStrategy> strategy,
                      ErasureOptions options = {});

  [[nodiscard]] const char* name() const { return strategy_->name(); }
  [[nodiscard]] const topo::ToricCode& code() const { return code_; }
  [[nodiscard]] ToricSide side() const { return side_; }

  // `syndrome` has one bit per site of this side; `heralds` one bit per data
  // qubit (1 = erased), or empty for herald-blind decoding. Deterministic:
  // consumes no randomness, so blind and aware corrections of the same shot
  // are directly comparable.
  [[nodiscard]] gf2::BitVec decode(const gf2::BitVec& syndrome,
                                   const gf2::BitVec& heralds) const;

 private:
  struct Incidence {
    uint32_t edge;
    uint32_t site;  // the far endpoint
  };

  void peel(gf2::BitVec& defects, const gf2::BitVec& heralds,
            gf2::BitVec& correction) const;

  const topo::ToricCode& code_;
  ToricSide side_;
  std::shared_ptr<const MatchingStrategy> strategy_;
  ErasureOptions options_;
  size_t sites_;
  // Four incident (edge, far-site) pairs per site, from edge_plaquettes /
  // edge_vertices depending on side. L = 2 produces parallel edges, which
  // both BFS and Dijkstra tolerate.
  std::vector<std::vector<Incidence>> adjacency_;
};

// One code-capacity shot of the heralded-erasure memory experiment: every
// data qubit takes one biased Pauli channel at rate `params.eps_store`
// (split by the bias fractions) and one heralded erasure at `params.p_erase`
// through a FrameSim, the side's syndrome is read perfectly, and the SAME
// snapshot is decoded twice — heralds withheld, then heralds supplied. The
// paired verdicts isolate the value of the herald bit shot-for-shot.
struct ErasureMemoryResult {
  bool blind_fail = false;
  bool aware_fail = false;
  bool blind_cleared = false;   // decoder invariant: residual syndrome empty
  bool aware_cleared = false;
  size_t num_heralds = 0;       // erased data qubits this shot
};

[[nodiscard]] ErasureMemoryResult run_erasure_memory(
    const ErasureAwareDecoder& decoder, const sim::NoiseParams& params,
    uint64_t seed);

}  // namespace ftqc::decode
