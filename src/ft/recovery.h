#pragma once

#include <cstdint>

#include "gf2/bitvec.h"
#include "gf2/hamming.h"
#include "sim/frame_sim.h"

namespace ftqc::ft {

// Knobs of the fault-tolerant recovery protocols of §3. Disabling a knob
// reproduces the paper's "what goes wrong without this precaution"
// comparisons (benches E2-E4).
struct RecoveryPolicy {
  // §3.3: verify ancilla states (cat check bit / encoded-|0> comparison)
  // before use.
  bool verify_ancilla = true;
  // §3.4: accept a nontrivial syndrome only after reading the same value
  // twice; defer the correction otherwise.
  bool repeat_nontrivial_syndrome = true;
  // §3.3 verification of the encoded ancilla is itself measured twice; a
  // conflicted pair means "safe to do nothing".
  int verification_rounds = 2;
  // Maximum cat-state preparation attempts before giving up the discard
  // loop and using the last cat unverified.
  int max_cat_attempts = 8;
};

// Decodes 7 measurement flips into the 3-bit Hamming syndrome (Eq. 3)
// relative to the trivial reference.
[[nodiscard]] gf2::BitVec hamming_syndrome_of_flips(const gf2::Hamming743& code,
                                                    const uint8_t* flips);

}  // namespace ftqc::ft
