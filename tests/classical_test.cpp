#include <gtest/gtest.h>

#include <cmath>

#include "classical/multiplexing.h"

namespace ftqc::classical {
namespace {

TEST(RestorationMap, CleanBundleStaysClean) {
  EXPECT_DOUBLE_EQ(restoration_map(0.0, 0.0), 0.0);
}

TEST(RestorationMap, MajorityAmplifiesBelowHalfSuppression) {
  // Without gate noise, majority voting contracts small error fractions
  // (quadratically) and leaves 1/2 fixed.
  EXPECT_LT(restoration_map(0.1, 0.0), 0.1);
  EXPECT_NEAR(restoration_map(0.5, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(restoration_map(0.01, 0.0) / (0.01 * 0.01), 3.0, 0.1);
}

TEST(RestorationMap, StableFixedPointExistsBelowThreshold) {
  const double f = stable_error_fraction(0.01);
  ASSERT_GT(f, 0.0);
  EXPECT_NEAR(restoration_map(f, 0.01), f, 1e-10);
  EXPECT_LT(f, 0.05);
}

TEST(RestorationMap, NoFixedPointAboveThreshold) {
  EXPECT_LT(stable_error_fraction(0.2), 0.0);
}

TEST(Threshold, MatchesAnalyticOneSixth) {
  // MAJ-3 organs with gate error eps evolve f' = eps + (1-2eps)(3f² - 2f³);
  // the stable/unstable fixed points merge at exactly eps = 1/6 (the
  // classical majority-multiplexing threshold).
  EXPECT_NEAR(multiplexing_threshold(), 1.0 / 6.0, 1e-3);
}

TEST(Bundle, RestorationPinsErrorsBelowThreshold) {
  MultiplexedBundle bundle(2001, true, 5);
  bundle.corrupt(0.10);
  for (int step = 0; step < 30; ++step) bundle.restore_step(0.005);
  EXPECT_TRUE(bundle.majority_value());
  EXPECT_LT(bundle.error_fraction(), 0.03);
}

TEST(Bundle, RestorationLosesAboveThreshold) {
  MultiplexedBundle bundle(2001, true, 7);
  for (int step = 0; step < 200; ++step) bundle.restore_step(0.25);
  // Far above threshold the bundle is ~50/50 scrambled.
  EXPECT_NEAR(bundle.error_fraction(), 0.5, 0.1);
}

TEST(Bundle, NandComputesThroughNoise) {
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      MultiplexedBundle x(1001, a != 0, 11);
      MultiplexedBundle y(1001, b != 0, 13);
      x.corrupt(0.02);
      y.corrupt(0.02);
      x.nand_with(y, 0.005);
      x.restore_step(0.005);
      x.restore_step(0.005);
      EXPECT_EQ(x.majority_value(), !(a && b)) << a << "," << b;
      EXPECT_LT(x.error_fraction(), 0.1);
    }
  }
}

TEST(Bundle, MonteCarloTracksMeanFieldMap) {
  const double eps = 0.01;
  MultiplexedBundle bundle(20001, false, 17);
  bundle.corrupt(0.2);
  double f = bundle.error_fraction();
  for (int step = 0; step < 5; ++step) {
    f = restoration_map(f, eps);
    bundle.restore_step(eps);
  }
  EXPECT_NEAR(bundle.error_fraction(), f, 0.02);
}

}  // namespace
}  // namespace ftqc::classical
