#pragma once

#include <cstdint>
#include <span>

#include "sim/tableau_sim.h"

namespace ftqc::ft {

// Logical-level measurement helpers of §2/Fig. 4 and §3.5, operating on the
// exact tableau engine (these are the correctness-critical paths used by the
// gate and encoder tests and by the examples; statistics run on the frame
// engine instead).

// Destructive measurement: measure all seven qubits, classically
// Hamming-correct the outcome word, return the parity (the logical value).
// Robust to one bit-flip error — in the block or in the measurements.
[[nodiscard]] bool destructive_logical_measure(sim::TableauSim& sim,
                                               std::span<const uint32_t> block);

// Nondestructive measurement (Fig. 4, right): copy the block parity onto an
// ancilla through the weight-3 logical-Z support and measure the ancilla.
// Per §3.5 the parity measurement must be repeated to reach O(ε²)
// confidence; `repetitions` readings are taken and the majority returned.
[[nodiscard]] bool nondestructive_logical_measure(sim::TableauSim& sim,
                                                  std::span<const uint32_t> block,
                                                  uint32_t ancilla,
                                                  int repetitions = 3);

// Prepares |0>_code on the block *without* an encoding circuit (§3.5):
// project with fault-tolerant error correction — here idealized as direct
// stabilizer measurements — then measure the logical qubit and flip the
// block if it reads 1.
void project_to_logical_zero(sim::TableauSim& sim,
                             std::span<const uint32_t> block,
                             uint32_t ancilla);

}  // namespace ftqc::ft
