#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "ft/recovery.h"
#include "sim/noise_model.h"

namespace ftqc::threshold {

// Circuit-level Monte Carlo for the level-1 pseudothreshold (E5): run one
// fault-tolerant recovery cycle of the chosen method on a clean block under
// the uniform gate-error model and report the logical failure probability
// after an ideal final decode. The pseudothreshold is the ε where the
// encoded cycle stops beating a bare physical gate (failure = ε).
enum class RecoveryMethod { kSteane, kShor };

struct CyclePoint {
  double eps = 0;
  Proportion failures;
};

// One sweep point; OpenMP-parallel over shots.
[[nodiscard]] CyclePoint measure_cycle_failure(RecoveryMethod method,
                                               double eps_gate, size_t shots,
                                               uint64_t seed,
                                               double eps_store = 0.0);

// Sweep a list of ε values.
[[nodiscard]] std::vector<CyclePoint> sweep_cycle_failure(
    RecoveryMethod method, const std::vector<double>& eps_values, size_t shots,
    uint64_t seed);

// Quadratic-fit coefficient c from failure = c·ε² (least squares through the
// sweep points, weighted by shots); 1/c estimates the pseudothreshold.
[[nodiscard]] double fit_quadratic_coefficient(const std::vector<CyclePoint>& points);

}  // namespace ftqc::threshold
