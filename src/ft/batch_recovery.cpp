#include "ft/batch_recovery.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/errors.h"
#include "ft/steane_circuits.h"
#include "ft/steane_layout.h"
#include "sim/simd.h"

namespace ftqc::ft {

namespace {

// Depolarize-or-biased 1-qubit draw at rate eps (no erasure): the storage
// half of the serial StochasticInjector::pauli1.
void batch_pauli1(sim::BatchFrameSim& sim, const sim::NoiseParams& noise,
                  uint32_t q, double eps, const uint64_t* lane_mask) {
  if (noise.is_biased()) {
    sim.pauli_channel1(q, eps * noise.frac_x(), eps * noise.frac_y(),
                       eps * noise.frac_z(), lane_mask);
  } else {
    sim.depolarize1(q, eps, lane_mask);
  }
}

}  // namespace

void batch_on_gate1(sim::BatchFrameSim& sim, const sim::NoiseParams& noise,
                    uint32_t q, const uint64_t* lane_mask) {
  batch_pauli1(sim, noise, q, noise.eps_gate1, lane_mask);
  if (noise.p_erase > 0) sim.erase_error(q, noise.p_erase, lane_mask);
}

void batch_on_gate2(sim::BatchFrameSim& sim, const sim::NoiseParams& noise,
                    uint32_t a, uint32_t b, const uint64_t* lane_mask) {
  if (noise.is_biased()) {
    sim.pauli_channel2(a, b, noise.eps_gate2, noise.frac_x(), noise.frac_y(),
                       lane_mask);
  } else {
    sim.depolarize2(a, b, noise.eps_gate2, lane_mask);
  }
  if (noise.p_erase > 0) {
    sim.erase_error(a, noise.p_erase, lane_mask);
    sim.erase_error(b, noise.p_erase, lane_mask);
  }
}

void batch_on_prep(sim::BatchFrameSim& sim, const sim::NoiseParams& noise,
                   uint32_t q, const uint64_t* lane_mask) {
  sim.x_error(q, noise.eps_prep, lane_mask);
  if (noise.p_erase > 0) sim.erase_error(q, noise.p_erase, lane_mask);
}

void batch_on_storage(sim::BatchFrameSim& sim, const sim::NoiseParams& noise,
                      uint32_t q, const uint64_t* lane_mask) {
  batch_pauli1(sim, noise, q, noise.eps_store, lane_mask);
}

void batch_nontrivial_mask(const uint64_t* syndrome_rows, size_t num_rows,
                           const uint64_t* active, uint64_t* out,
                           size_t words) {
  sim::simd::or_rows_masked(syndrome_rows, num_rows, active, out, words);
}

void batch_agreement_mask(const uint64_t* syn1, const uint64_t* syn2,
                          size_t num_rows, const uint64_t* nontrivial,
                          uint64_t* out, size_t words) {
  std::copy_n(nontrivial, words, out);
  for (size_t r = 0; r < num_rows; ++r) {
    sim::simd::and_eq_into(out, syn1 + r * words, syn2 + r * words, words);
  }
}

void batch_decode_rows(const gf2::Hamming743& hamming,
                       const uint64_t* const rows[7], bool logical,
                       uint64_t* out, size_t words) {
  // Collapse the 3x7 check matrix into three 7-bit column masks once, then
  // run the bit-sliced decode register-wide. The logical/residual formulas
  // (corrected parity vs coset weight) live in the kernel; see simd.h.
  const gf2::BitMat& h = hamming.check_matrix();
  uint8_t syn_mask[3] = {0, 0, 0};
  for (size_t j = 0; j < 3; ++j) {
    for (size_t i = 0; i < 7; ++i) {
      if (h.row(j).get(i)) syn_mask[j] |= static_cast<uint8_t>(1u << i);
    }
  }
  sim::simd::hamming7_decode(rows, syn_mask, logical, out, words);
}

void batch_decode_positions(const uint64_t* syndrome_rows,
                            const uint64_t* act_mask, uint64_t* pos_masks,
                            size_t words) {
  const uint64_t* s0 = syndrome_rows;
  const uint64_t* s1 = syndrome_rows + words;
  const uint64_t* s2 = syndrome_rows + 2 * words;
  // Syndrome bits (s0,s1,s2) spell the 1-based position s0*4 + s1*2 + s2
  // (Eq. 3); position value-1 gets the correction. XORing each row with
  // all-ones where the position bit is 0 turns "match this 3-bit value"
  // into three ANDs.
  for (uint64_t value = 1; value <= 7; ++value) {
    uint64_t* out = pos_masks + (value - 1) * words;
    sim::simd::select3_and(out, act_mask, s0, (value & 4) ? 0 : ~uint64_t{0},
                           s1, (value & 2) ? 0 : ~uint64_t{0}, s2,
                           (value & 1) ? 0 : ~uint64_t{0}, words);
  }
}

void batch_correct_data_block(sim::BatchFrameSim& sim,
                              const sim::NoiseParams& noise, bool phase_type,
                              std::span<const uint32_t> data,
                              const uint64_t* syndrome_rows,
                              const uint64_t* act_mask) {
  FTQC_CHECK(data.size() == 7, "Hamming correction needs a 7-qubit block");
  const size_t words = sim.num_words();
  if (!batch_any_lane(act_mask, words)) return;
  std::vector<uint64_t> pos_masks(7 * words);
  batch_decode_positions(syndrome_rows, act_mask, pos_masks.data(), words);

  // The serial correction is a one-gate circuit over the data block: gate
  // noise lands on the corrected qubit, storage noise on the other six, and
  // only for the lanes that actually correct (§3.4 lanes that deferred take
  // no fault opportunity at all).
  for (size_t p = 0; p < 7; ++p) {
    batch_on_gate1(sim, noise, data[p], pos_masks.data() + p * words);
  }
  std::vector<uint64_t> storage_mask(words);
  for (size_t q = 0; q < 7; ++q) {
    const uint64_t* pos = pos_masks.data() + q * words;
    sim::simd::andnot(storage_mask.data(), act_mask, pos, words);
    batch_on_storage(sim, noise, data[q], storage_mask.data());
  }
  for (size_t p = 0; p < 7; ++p) {
    const uint64_t* pos = pos_masks.data() + p * words;
    if (phase_type) {
      sim.inject_z_masked(data[p], pos);
    } else {
      sim.inject_x_masked(data[p], pos);
    }
  }
}

BatchGadgetRunner::BatchGadgetRunner(sim::BatchFrameSim& sim,
                                     const sim::NoiseParams& noise)
    : sim_(sim), noise_(noise), touched_(sim.num_qubits(), false) {}

std::vector<size_t> BatchGadgetRunner::run(
    const sim::Circuit& circuit, std::span<const uint32_t> active_qubits,
    const uint64_t* lane_mask) {
  using sim::Gate;
  // Row indices from earlier gadgets are consumed before the next gadget
  // runs, so the record can be dropped here to keep memory flat.
  sim_.clear_record();
  std::vector<size_t> rows;
  rows.reserve(circuit.num_measurements());
  std::fill(touched_.begin(), touched_.end(), false);

  const auto flush_storage = [&] {
    for (uint32_t q : active_qubits) {
      if (!touched_[q]) batch_on_storage(sim_, noise_, q, lane_mask);
    }
    std::fill(touched_.begin(), touched_.end(), false);
  };

  for (const sim::Operation& op : circuit.ops()) {
    FTQC_CHECK(op.cond < 0, "gadget circuits cannot use feedforward");
    for (uint32_t t : op.targets) touched_[t] = true;
    switch (op.gate) {
      case Gate::TICK:
        flush_storage();
        break;
      case Gate::I:
        break;
      case Gate::X:
      case Gate::Y:
      case Gate::Z:
        // Deterministic Paulis shift the reference, not the frame, but the
        // physical gate is still a fault opportunity.
        batch_on_gate1(sim_, noise_, op.targets[0], lane_mask);
        break;
      case Gate::H:
        sim_.apply_h(op.targets[0]);
        batch_on_gate1(sim_, noise_, op.targets[0], lane_mask);
        break;
      case Gate::S:
      case Gate::S_DAG:
        sim_.apply_s(op.targets[0]);
        batch_on_gate1(sim_, noise_, op.targets[0], lane_mask);
        break;
      case Gate::CX:
        sim_.apply_cx(op.targets[0], op.targets[1]);
        batch_on_gate2(sim_, noise_, op.targets[0], op.targets[1], lane_mask);
        break;
      case Gate::CZ:
        sim_.apply_cz(op.targets[0], op.targets[1]);
        batch_on_gate2(sim_, noise_, op.targets[0], op.targets[1], lane_mask);
        break;
      case Gate::SWAP:
        sim_.apply_swap(op.targets[0], op.targets[1]);
        batch_on_gate2(sim_, noise_, op.targets[0], op.targets[1], lane_mask);
        break;
      case Gate::M:
        sim_.x_error(op.targets[0], noise_.eps_meas, lane_mask);
        rows.push_back(sim_.measure_z(op.targets[0]));
        break;
      case Gate::MX:
        sim_.z_error(op.targets[0], noise_.eps_meas, lane_mask);
        rows.push_back(sim_.measure_x(op.targets[0]));
        break;
      case Gate::MR:
        sim_.x_error(op.targets[0], noise_.eps_meas, lane_mask);
        rows.push_back(sim_.measure_reset(op.targets[0]));
        batch_on_prep(sim_, noise_, op.targets[0], lane_mask);
        break;
      case Gate::R:
        sim_.reset(op.targets[0]);
        batch_on_prep(sim_, noise_, op.targets[0], lane_mask);
        break;
      case Gate::INJECT_X:
        sim_.inject_x(op.targets[0]);
        break;
      case Gate::INJECT_Y:
        sim_.inject_y(op.targets[0]);
        break;
      case Gate::INJECT_Z:
        sim_.inject_z(op.targets[0]);
        break;
      default:
        FTQC_CHECK(false, std::string("batch run_gadget cannot execute ") +
                              sim::gate_name(op.gate));
    }
  }
  return rows;
}

namespace {

// The Fig. 9 cycle on an arbitrary layout, all lanes at once — the batch
// mirror of SteaneCycleRunner (steane_recovery.cpp). Holds the active-qubit
// sets (data+anc_a during syndrome-ancilla work, all 21 during
// verification) so storage-noise accounting matches the serial driver
// location for location; every derived lane mask is composed with the
// incoming `active` mask so the cycle nests under a caller's own per-lane
// control flow.
class BatchSteaneCycleRunner {
 public:
  BatchSteaneCycleRunner(sim::BatchFrameSim& sim,
                         const sim::NoiseParams& noise,
                         const RecoveryPolicy& policy,
                         const gf2::Hamming743& hamming,
                         const SteaneCycleLayout& layout,
                         const SteaneCycleCircuits& circuits)
      : sim_(sim),
        gadgets_(sim, noise),
        noise_(noise),
        policy_(policy),
        hamming_(hamming),
        layout_(layout),
        circuits_(circuits),
        words_(sim.num_words()) {
    for (size_t i = 0; i < 7; ++i) {
      data_and_a_[i] = layout.data[i];
      data_and_a_[7 + i] = layout.anc_a[i];
      all_[i] = layout.data[i];
      all_[7 + i] = layout.anc_a[i];
      all_[14 + i] = layout.anc_b[i];
    }
  }

  void run_cycle(const uint64_t* active) {
    for (const bool phase_type : {false, true}) {
      run_batch_repeat_policy(
          3, words_, policy_.repeat_nontrivial_syndrome, active,
          [&](const uint64_t* mask, uint64_t* out) {
            extract_syndrome(phase_type, mask, out);
          },
          [&](const uint64_t* syn, const uint64_t* act) {
            batch_correct_data_block(sim_, noise_, phase_type, layout_.data,
                                     syn, act);
          });
    }
  }

 private:
  void prepare_verified_zero_ancilla(const uint64_t* lane_mask) {
    // Fresh |0>_code on the syndrome ancilla.
    gadgets_.run(circuits_.zero_prep_a, data_and_a_, lane_mask);
    if (policy_.herald_reinit && noise_.p_erase > 0) {
      herald_reinit_ancilla(lane_mask);
    }
    if (!policy_.verify_ancilla || policy_.verification_rounds <= 0) return;

    // §3.3: compare against freshly encoded blocks; a lane is fixed only
    // when EVERY round votes "logically flipped" (serial votes_one ==
    // rounds).
    std::vector<uint64_t> votes(words_, ~uint64_t{0});
    for (int round = 0; round < policy_.verification_rounds; ++round) {
      gadgets_.run(circuits_.zero_prep_b, all_, lane_mask);
      gadgets_.run(circuits_.cx_ab, all_, lane_mask);
      const auto rows = gadgets_.run(circuits_.measure_b, all_, lane_mask);
      FTQC_CHECK(rows.size() == 7, "destructive measure must read 7 qubits");
      const uint64_t* flip_rows[7];
      for (size_t i = 0; i < 7; ++i) flip_rows[i] = sim_.record().row(rows[i]);
      std::vector<uint64_t> vote(words_);
      batch_decode_rows(hamming_, flip_rows, /*logical=*/true, vote.data(),
                        words_);
      sim::simd::and_into(votes.data(), vote.data(), words_);
      for (uint32_t q : layout_.anc_b) sim_.reset(q);
    }
    if (lane_mask != nullptr) {
      sim::simd::and_into(votes.data(), lane_mask, words_);
    }
    if (!batch_any_lane(votes.data(), words_)) return;

    // Confident the ancilla is (logically) flipped: bitwise fix on the
    // logical-X support. The serial path runs a 3-NOT circuit through
    // run_gadget (gate noise on the three targets, storage on the rest of
    // data+anc_a) and then flips the frame; replay that masked per lane.
    for (size_t i = 0; i < 3; ++i) {
      batch_on_gate1(sim_, noise_, layout_.anc_a[i], votes.data());
    }
    for (uint32_t q : layout_.data) {
      batch_on_storage(sim_, noise_, q, votes.data());
    }
    for (size_t i = 3; i < 7; ++i) {
      batch_on_storage(sim_, noise_, layout_.anc_a[i], votes.data());
    }
    for (size_t i = 0; i < 3; ++i) {
      sim_.inject_x_masked(layout_.anc_a[i], votes.data());
    }
  }

  // Herald-triggered reinit (batch form of the serial retry loop): lanes
  // whose syndrome ancilla carries any heralded erasure replay zero_prep_a
  // until clean or the retry budget runs out. The replay's R resets act on
  // EVERY lane, so the non-retrying lanes' ancilla frames are parked in a
  // side buffer and XOR-restored afterwards, exactly the BatchCatRetry
  // scatter/compact. Budget-exhausted lanes keep their last (heralded)
  // block — the serial path lets verification judge it — and are surfaced
  // through the abort-mask contract.
  void herald_reinit_ancilla(const uint64_t* lane_mask) {
    std::vector<uint64_t> need(words_, 0);
    const auto gather_heralds = [&](uint64_t* out) {
      std::fill_n(out, words_, 0);
      for (uint32_t q : layout_.anc_a) {
        sim::simd::or_into(out, sim_.herald_word(q), words_);
      }
    };
    gather_heralds(need.data());
    if (lane_mask != nullptr) {
      sim::simd::and_into(need.data(), lane_mask, words_);
    }
    if (!batch_any_lane(need.data(), words_)) return;

    // Park every lane that is NOT retrying. Inactive lanes ride along with
    // clean frames, so their round-trip is a no-op.
    std::vector<uint64_t> keep(words_);
    for (size_t w = 0; w < words_; ++w) keep[w] = ~need[w];
    std::vector<uint64_t> parked(2 * 7 * words_, 0);
    std::vector<uint64_t> passed_any(words_, 0), fresh(words_),
        heralded(words_);
    const auto park = [&](const uint64_t* mask) {
      for (size_t i = 0; i < 7; ++i) {
        const uint32_t q = layout_.anc_a[i];
        sim::simd::blend_into(&parked[2 * i * words_], sim_.x_flips(q), mask,
                              words_);
        sim::simd::blend_into(&parked[(2 * i + 1) * words_], sim_.z_flips(q),
                              mask, words_);
      }
      sim::simd::or_into(passed_any.data(), mask, words_);
    };
    park(keep.data());

    for (int retry = 0; retry < policy_.max_herald_retries; ++retry) {
      if (!batch_any_lane(need.data(), words_)) break;
      // zero_prep_a opens with R resets, which clear both the frames and
      // the heralds of the retrying block — each replay is a genuine fresh
      // preparation (noise masked to the retrying lanes).
      gadgets_.run(circuits_.zero_prep_a, data_and_a_, need.data());
      gather_heralds(heralded.data());
      sim::simd::andnot(fresh.data(), need.data(), heralded.data(), words_);
      if (batch_any_lane(fresh.data(), words_)) park(fresh.data());
      sim::simd::and_into(need.data(), heralded.data(), words_);
    }
    if (batch_any_lane(need.data(), words_)) {
      // Exhausted lanes keep their last-attempt (still-heralded) frames and
      // are surfaced in the abort mask; they were never parked, so the
      // restore below (masked to passed_any) leaves them untouched.
      sim_.discard_lanes(need.data());
    }
    // Restore the parked frames: XOR-inject the difference between what the
    // last replay left behind and what each parked lane actually holds.
    for (size_t i = 0; i < 7; ++i) {
      const uint32_t q = layout_.anc_a[i];
      sim::simd::xor_and(fresh.data(), sim_.x_flips(q),
                         &parked[2 * i * words_], passed_any.data(), words_);
      sim_.inject_x_masked(q, fresh.data());
      sim::simd::xor_and(fresh.data(), sim_.z_flips(q),
                         &parked[(2 * i + 1) * words_], passed_any.data(),
                         words_);
      sim_.inject_z_masked(q, fresh.data());
    }
  }

  // Writes 3 syndrome rows (3 * words words) into `syndrome_rows`.
  void extract_syndrome(bool phase_type, const uint64_t* lane_mask,
                        uint64_t* syndrome_rows) {
    prepare_verified_zero_ancilla(lane_mask);
    const auto rows =
        gadgets_.run(circuits_.syndrome[phase_type], data_and_a_, lane_mask);
    FTQC_CHECK(rows.size() == 7, "syndrome extraction must read 7 qubits");

    const gf2::BitMat& h = hamming_.check_matrix();
    for (size_t j = 0; j < 3; ++j) {
      uint64_t* out = syndrome_rows + j * words_;
      std::fill_n(out, words_, 0);
      for (size_t i = 0; i < 7; ++i) {
        if (!h.row(j).get(i)) continue;
        sim::simd::xor_into(out, sim_.record().row(rows[i]), words_);
      }
    }
    for (uint32_t q : layout_.anc_a) sim_.reset(q);
  }

  sim::BatchFrameSim& sim_;
  BatchGadgetRunner gadgets_;
  const sim::NoiseParams& noise_;
  const RecoveryPolicy& policy_;
  const gf2::Hamming743& hamming_;
  const SteaneCycleLayout& layout_;
  const SteaneCycleCircuits& circuits_;
  size_t words_;
  std::array<uint32_t, 14> data_and_a_{};
  std::array<uint32_t, 21> all_{};
};

}  // namespace

void run_batch_steane_cycle(sim::BatchFrameSim& sim,
                            const sim::NoiseParams& noise,
                            const RecoveryPolicy& policy,
                            const gf2::Hamming743& hamming,
                            const SteaneCycleLayout& layout,
                            const SteaneCycleCircuits& circuits,
                            const uint64_t* active) {
  BatchSteaneCycleRunner(sim, noise, policy, hamming, layout, circuits)
      .run_cycle(active);
}

BatchSteaneRecovery::BatchSteaneRecovery(const sim::NoiseParams& noise,
                                         RecoveryPolicy policy, size_t shots,
                                         uint64_t seed)
    : sim_(kNumQubits, shots, seed),
      noise_(noise),
      policy_(policy),
      words_(sim_.num_words()) {
  if (noise.p_leak > 0) {
    throw UnsupportedChannel("BatchSteaneRecovery", "p_leak > 0",
                             "SteaneRecovery");
  }
}

void BatchSteaneRecovery::reset() { sim_.clear(); }

void BatchSteaneRecovery::inject_data(uint32_t q, char pauli) {
  FTQC_CHECK(q < 7, "data qubit index out of range");
  switch (pauli) {
    case 'X': sim_.inject_x(q); break;
    case 'Y': sim_.inject_y(q); break;
    case 'Z': sim_.inject_z(q); break;
    default: FTQC_CHECK(false, "inject_data expects X, Y or Z");
  }
}

void BatchSteaneRecovery::apply_memory_noise(double p) {
  for (uint32_t q : steane_layout::kData) sim_.depolarize1(q, p);
}

void BatchSteaneRecovery::run_cycle() {
  static const SteaneCycleLayout kLayout{steane_layout::kData,
                                         steane_layout::kAncA,
                                         steane_layout::kAncB};
  static const SteaneCycleCircuits kCircuits = compile_steane_cycle(kLayout);
  run_batch_steane_cycle(sim_, noise_, policy_, hamming_, kLayout, kCircuits,
                         /*active=*/nullptr);
}

uint64_t BatchSteaneRecovery::count_frames(bool logical,
                                           size_t num_lanes) const {
  const uint64_t* x_rows[7];
  const uint64_t* z_rows[7];
  for (size_t i = 0; i < 7; ++i) {
    x_rows[i] = sim_.x_flips(steane_layout::kData[i]);
    z_rows[i] = sim_.z_flips(steane_layout::kData[i]);
  }
  std::vector<uint64_t> lx(words_), lz(words_);
  batch_decode_rows(hamming_, x_rows, logical, lx.data(), words_);
  batch_decode_rows(hamming_, z_rows, logical, lz.data(), words_);
  sim::simd::or_into(lx.data(), lz.data(), words_);
  return batch_count_lanes(lx.data(), words_,
                           std::min(num_lanes, sim_.num_shots()));
}

uint64_t BatchSteaneRecovery::count_any_logical_error(size_t num_lanes) const {
  return count_frames(/*logical=*/true, num_lanes);
}

uint64_t BatchSteaneRecovery::count_residual(size_t num_lanes) const {
  return count_frames(/*logical=*/false, num_lanes);
}

bool BatchSteaneRecovery::logical_x_error(size_t shot) const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) {
    word.set(q, sim_.x_flip(steane_layout::kData[q], shot));
  }
  return hamming_.decode_logical(word);
}

bool BatchSteaneRecovery::logical_z_error(size_t shot) const {
  gf2::BitVec word(7);
  for (size_t q = 0; q < 7; ++q) {
    word.set(q, sim_.z_flip(steane_layout::kData[q], shot));
  }
  return hamming_.decode_logical(word);
}

}  // namespace ftqc::ft
