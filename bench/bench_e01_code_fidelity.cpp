// E1 (§2, Eq. 14): storing a qubit bare loses fidelity F = 1 - eps per step;
// stored in Steane's code with ideal recovery the failure is O(eps²).
// Regenerates the quadratic-improvement series and the crossover.
#include <cstdio>

#include "bench_harness.h"
#include "codes/library.h"
#include "codes/lookup_decoder.h"
#include "common/rng.h"
#include "common/table.h"
#include "pauli/pauli_string.h"

namespace {

using ftqc::codes::LookupDecoder;
using ftqc::pauli::PauliString;

// Exact logical-failure probability of one error-channel step + ideal
// recovery: sum over all 4^7 Pauli patterns of the §6 channel (X, Y, Z each
// with eps/3 per qubit).
double exact_encoded_failure(const LookupDecoder& decoder, double eps) {
  const double p_each = eps / 3.0;
  double failure = 0;
  for (uint32_t pattern = 0; pattern < (1u << 14); ++pattern) {
    PauliString error(7);
    double prob = 1;
    for (size_t q = 0; q < 7; ++q) {
      const uint32_t code = (pattern >> (2 * q)) & 3u;
      static constexpr char kChars[] = {'I', 'X', 'Y', 'Z'};
      error.set_pauli(q, kChars[code]);
      prob *= code == 0 ? (1 - eps) : p_each;
    }
    if (prob == 0) continue;
    if (decoder.residual_effect(error).any()) failure += prob;
  }
  return failure;
}

double mc_encoded_failure(const LookupDecoder& decoder, double eps,
                          size_t shots, uint64_t seed) {
  ftqc::Rng rng(seed);
  size_t failures = 0;
  for (size_t s = 0; s < shots; ++s) {
    PauliString error(7);
    for (size_t q = 0; q < 7; ++q) {
      if (!rng.bernoulli(eps)) continue;
      static constexpr char kChars[] = {'X', 'Y', 'Z'};
      error.set_pauli(q, kChars[rng.next_below(3)]);
    }
    failures += decoder.residual_effect(error).any() ? 1 : 0;
  }
  return static_cast<double>(failures) / static_cast<double>(shots);
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E01");
  std::printf(
      "E1: Steane-encoded vs bare storage fidelity (paper §2, Eq. 14)\n"
      "Claim: bare failure = eps; encoded failure = O(eps^2), so encoding\n"
      "wins once eps is small; the coefficient is ~ C(7,2)-like.\n\n");
  const LookupDecoder decoder(ftqc::codes::steane());
  const size_t shots = ftqc::bench::scaled(200000, 2000);
  ftqc::Table table({"eps", "bare (1-F)", "encoded exact", "encoded MC",
                     "encoded/eps^2", "improvement x"});
  ftqc::bench::JsonResult json;
  for (const double eps : {0.05, 0.02, 0.01, 0.005, 0.002, 0.001, 0.0005}) {
    const double exact = exact_encoded_failure(decoder, eps);
    const double mc = mc_encoded_failure(decoder, eps, shots, 42);
    table.add_row({ftqc::strfmt("%.4g", eps), ftqc::strfmt("%.4g", eps),
                   ftqc::strfmt("%.4g", exact), ftqc::strfmt("%.4g", mc),
                   ftqc::strfmt("%.2f", exact / (eps * eps)),
                   ftqc::strfmt("%.1f", eps / exact)});
    if (eps == 0.01) {
      json.add("eps", eps);
      json.add("encoded_exact", exact);
      json.add("encoded_mc", mc);
      json.add("quadratic_coeff", exact / (eps * eps));
    }
  }
  table.print();
  json.add("shots", shots);
  json.write();
  std::printf(
      "\nShape check: encoded/eps^2 is ~constant (quadratic law) and the\n"
      "improvement factor grows like 1/eps, as §2 claims.\n");
  return 0;
}
