// E12 (§4.1, Figs. 12-13): Shor's measurement-based Toffoli gadget at the
// bare level: exact agreement with a direct Toffoli on every basis state and
// on random superpositions (phases included), the gate budget of the encoded
// version, and a Monte Carlo failure rate for the noisy consumption stage
// (stage 2) under the §6 error model, on either shot engine
// (--engine=frame|batch).
#include <cstdio>
#include <vector>

#include "bench_harness.h"
#include "common/rng.h"
#include "common/table.h"
#include "ft/batch_recovery.h"
#include "ft/gadget_runner.h"
#include "ft/noise_injector.h"
#include "ft/toffoli_gadget.h"
#include "sim/batch_frame_sim.h"
#include "sim/frame_sim.h"
#include "sim/runner.h"
#include "sim/simd.h"
#include "sim/statevector_sim.h"

namespace {
using namespace ftqc;
using namespace ftqc::ft;

// Failure probability of the stage-2 consumption circuit at gate error eps:
// the ancilla triple {0,1,2} arrives with a lumped preparation infidelity
// (stage 1 is a multi-gate verified circuit; 10x the gate error is a
// conservative per-qubit account), then the three XORs, the Hadamard and the
// three destructive measurements each take §6 noise. A shot fails when any
// measurement outcome flips or any residual Pauli is left on the output
// triple — exact for this circuit even without the conditional fix-ups (see
// make_toffoli_consumption_gadget).
double consumption_failure_rate(double eps, size_t shots, uint64_t seed,
                                sim::ShotEngine engine) {
  const auto noise = sim::NoiseParams::uniform_gate(eps);
  const double eps_anc = 10 * eps;
  static constexpr uint32_t kAll[] = {0, 1, 2, 3, 4, 5, 6};
  const ToffoliGadget gadget = make_toffoli_consumption_gadget();

  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  plan.seed_stride = 0x9E37;
  plan.engine = engine;
  const sim::ShotRunner runner(plan);

  const auto shot_fails = [&](uint64_t shot_seed) {
    sim::FrameSim frame(7, shot_seed);
    StochasticInjector inj(noise);
    for (uint32_t q : gadget.out_data) frame.depolarize1(q, eps_anc);
    const auto flips = run_gadget(frame, gadget.circuit, inj, kAll);
    bool fail = false;
    for (uint8_t f : flips) fail |= f != 0;
    for (uint32_t q : gadget.out_data) {
      fail |= frame.x_frame().get(q) || frame.z_frame().get(q);
    }
    return fail;
  };
  const auto block_fails = [&](uint64_t block_seed, size_t block_shots) {
    sim::BatchFrameSim bsim(7, block_shots, block_seed);
    BatchGadgetRunner gadgets(bsim, noise);
    for (uint32_t q : gadget.out_data) bsim.depolarize1(q, eps_anc);
    const auto rows = gadgets.run(gadget.circuit, kAll, nullptr);
    const size_t words = bsim.num_words();
    std::vector<uint64_t> fail(words, 0);
    for (size_t r : rows) {
      sim::simd::or_into(fail.data(), bsim.record().row(r), words);
    }
    for (uint32_t q : gadget.out_data) {
      sim::simd::or_into(fail.data(), bsim.x_flips(q), words);
      sim::simd::or_into(fail.data(), bsim.z_flips(q), words);
    }
    return batch_count_lanes(fail.data(), words, block_shots);
  };
  return runner.run(shot_fails, block_fails).failure_rate();
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E12",
                    {sim::ShotEngine::kFrame, sim::ShotEngine::kBatch});
  std::printf("E12: Shor's Toffoli gadget (Fig. 13), bare-level verification.\n\n");

  // Truth table.
  ftqc::Table table({"input |x,y,z>", "gadget output", "CCX output", "match"});
  for (int in = 0; in < 8; ++in) {
    const ToffoliGadget g = make_bare_toffoli_gadget();
    sim::StateVectorSim sim(7, 500 + in);
    if (in & 1) sim.apply_x(g.in_data[0]);
    if (in & 2) sim.apply_x(g.in_data[1]);
    if (in & 4) sim.apply_x(g.in_data[2]);
    run_circuit(sim, g.circuit);
    int got = 0;
    got |= sim.measure_z(g.out_data[0]) ? 1 : 0;
    got |= sim.measure_z(g.out_data[1]) ? 2 : 0;
    got |= sim.measure_z(g.out_data[2]) ? 4 : 0;
    const int x = in & 1, y = (in >> 1) & 1, z = (in >> 2) & 1;
    const int want = x | (y << 1) | ((z ^ (x & y)) << 2);
    table.add_row({ftqc::strfmt("|%d,%d,%d>", x, y, z),
                   ftqc::strfmt("|%d,%d,%d>", got & 1, (got >> 1) & 1, got >> 2),
                   ftqc::strfmt("|%d,%d,%d>", want & 1, (want >> 1) & 1,
                                want >> 2),
                   got == want ? "yes" : "NO"});
  }
  table.print();

  // Fidelity on random superposition inputs.
  const uint64_t num_inputs = ftqc::bench::scaled(50, 8);
  double min_fidelity = 1.0;
  for (uint64_t seed = 0; seed < num_inputs; ++seed) {
    const ToffoliGadget g = make_bare_toffoli_gadget();
    sim::Circuit prep(7);
    Rng rng(900 + seed);
    for (uint32_t q = 4; q < 7; ++q) {
      if (rng.bernoulli(0.5)) prep.h(q);
      if (rng.bernoulli(0.5)) prep.s(q);
      if (rng.bernoulli(0.5)) prep.x(q);
      if (rng.bernoulli(0.5)) prep.h(q);
    }
    sim::StateVectorSim sim(7, seed);
    run_circuit(sim, prep);
    sim::StateVectorSim ref(7, seed);
    run_circuit(ref, prep);
    ref.apply_ccx(4, 5, 6);
    run_circuit(sim, g.circuit);
    sim.apply_swap(0, 4);
    sim.apply_swap(1, 5);
    sim.apply_swap(2, 6);
    for (uint32_t q = 0; q < 4; ++q) sim.reset(q);
    min_fidelity = std::min(min_fidelity, sim.fidelity_with(ref));
  }
  std::printf("\nMinimum fidelity vs direct CCX over %zu random inputs: %.12f\n",
              static_cast<size_t>(num_inputs), min_fidelity);

  // Monte Carlo: stage-2 consumption under the §6 model, per gate error.
  const sim::ShotEngine engine = ftqc::bench::engine_or(sim::ShotEngine::kBatch);
  const size_t shots = ftqc::bench::scaled(200000, 4096);
  const std::vector<double> eps_grid = {1e-3, 3e-3, 1e-2};
  std::printf("\nNoisy consumption stage (engine=%s, %zu shots/point):\n",
              sim::shot_engine_name(engine), shots);
  ftqc::Table mc({"gate eps", "ancilla eps", "failure rate"});
  std::vector<double> fail_rates;
  for (size_t i = 0; i < eps_grid.size(); ++i) {
    const double eps = eps_grid[i];
    const double rate =
        consumption_failure_rate(eps, shots, 4200 + 131 * i, engine);
    fail_rates.push_back(rate);
    mc.add_row({ftqc::strfmt("%.0e", eps), ftqc::strfmt("%.0e", 10 * eps),
                ftqc::strfmt("%.5f", rate)});
  }
  mc.print();

  ftqc::bench::JsonResult json;
  json.add("random_inputs", static_cast<size_t>(num_inputs));
  json.add("min_fidelity", min_fidelity);
  json.add_string("engine", sim::shot_engine_name(engine));
  json.add("consumption_shots", shots);
  for (size_t i = 0; i < eps_grid.size(); ++i) {
    json.add(ftqc::strfmt("consumption_eps_%zu", i), eps_grid[i]);
    json.add(ftqc::strfmt("consumption_fail_%zu", i), fail_rates[i]);
  }
  json.write();

  const ToffoliGadget g = make_bare_toffoli_gadget();
  std::printf(
      "\nGadget structure: %zu ops, 1 bitwise Toffoli (CCZ), %zu "
      "measurements,\n%zu conditional corrections.\n",
      g.circuit.ops().size(), g.circuit.count(sim::Gate::M),
      static_cast<size_t>(7));
  std::printf(
      "Encoded cost (Steane blocks, block size 7): ~%zu physical gates; the\n"
      "elementary Toffoli tolerance requirement is ~1e-3 when other gates\n"
      "are ~1e-4-1e-6 (§5 footnote j) because it appears once per gadget.\n",
      encoded_gadget_gate_count(7));
  std::printf(
      "\nShape check: exact truth table and unit fidelity on superpositions —\n"
      "the measurement-based construction implements Toffoli exactly, using\n"
      "only gates with transversal/bitwise fault-tolerant realizations.\n");
  return 0;
}
