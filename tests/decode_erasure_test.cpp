// Erasure-aware decoding (decode/erasure.h): the Delfosse-Zémor peeling
// fast path must exactly correct any error supported on a cycle-free
// erasure, the Dijkstra matching stage must stay a valid decoder with and
// without heralds, and exploiting heralds must strictly beat ignoring them
// on the same shots.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "decode/erasure.h"
#include "decode/matching.h"
#include "sim/noise_model.h"
#include "topo/toric_code.h"

namespace ftqc::decode {
namespace {

using topo::ToricCode;

std::shared_ptr<const MwpmMatching> mwpm() {
  static const auto strategy = std::make_shared<const MwpmMatching>();
  return strategy;
}

// Residual after decoding: empty syndrome and no logical flip = success.
void expect_exact_correction(const ToricCode& code,
                             const ErasureAwareDecoder& decoder,
                             const gf2::BitVec& errors,
                             const gf2::BitVec& heralds) {
  const gf2::BitVec syndrome = code.plaquette_syndrome(errors);
  gf2::BitVec residual = errors;
  residual ^= decoder.decode(syndrome, heralds);
  EXPECT_FALSE(code.plaquette_syndrome(residual).any())
      << "correction must clear the syndrome";
  const auto [f1, f2] = code.logical_x_flips(residual);
  EXPECT_FALSE(f1 || f2) << "correction must not be logical";
}

// Any error pattern supported on a forest-shaped (cycle-free) erasure is
// corrected exactly by peeling alone: every cluster has even defect parity
// and the leaf-first sweep reproduces the error up to stabilizers.
TEST(ErasurePeeling, CorrectsEveryErrorOnForestErasure) {
  const ToricCode code(4);
  const ErasureAwareDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  // A bent 5-edge path: no cycle, no wrap.
  const uint32_t path[] = {code.h_edge(0, 0), code.h_edge(1, 0),
                           code.v_edge(2, 0), code.h_edge(2, 1),
                           code.v_edge(3, 1)};
  gf2::BitVec heralds(code.num_qubits());
  for (uint32_t e : path) heralds.set(e, true);
  for (uint32_t subset = 0; subset < (1u << 5); ++subset) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t i = 0; i < 5; ++i) {
      if ((subset >> i) & 1u) errors.set(path[i], true);
    }
    expect_exact_correction(code, decoder, errors, heralds);
  }
}

// Pure erasure noise below the bond-percolation threshold: peeling must
// clear the syndrome on every shot, and the logical failure rate stays far
// below the herald-blind decode of the very same shots (for which each
// erased edge is an invisible 50/50 error).
TEST(ErasurePeeling, PureErasureAwareBeatsBlind) {
  const ToricCode code(6);
  const ErasureAwareDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  Rng rng(0xE20A);
  const double p_erase = 0.25;
  const size_t shots = 400;
  size_t aware_fails = 0, blind_fails = 0;
  for (size_t shot = 0; shot < shots; ++shot) {
    gf2::BitVec heralds(code.num_qubits());
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.next_double() >= p_erase) continue;
      heralds.set(e, true);
      if (rng.next_double() < 0.5) errors.set(e, true);
    }
    const gf2::BitVec syndrome = code.plaquette_syndrome(errors);
    for (const bool aware : {false, true}) {
      gf2::BitVec residual = errors;
      residual ^= decoder.decode(syndrome, aware ? heralds : gf2::BitVec());
      ASSERT_FALSE(code.plaquette_syndrome(residual).any()) << shot;
      const auto [f1, f2] = code.logical_x_flips(residual);
      (aware ? aware_fails : blind_fails) += (f1 || f2) ? 1 : 0;
    }
  }
  // p_erase = 0.25 is comfortably below percolation (0.5) but the blind
  // view — 12.5% iid X — is above the matching threshold (~10.3%).
  EXPECT_LT(aware_fails, blind_fails);
  EXPECT_LT(static_cast<double>(aware_fails) / shots, 0.10);
  EXPECT_GT(static_cast<double>(blind_fails) / shots, 0.10);
}

// Empty heralds = ordinary matching: the decoder must stay a valid decoder
// (syndrome always cleared) and be deterministic shot for shot.
TEST(ErasureDecoder, BlindModeClearsEverySyndromeDeterministically) {
  const ToricCode code(5);
  const ErasureAwareDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  Rng rng(0xE20B);
  for (size_t shot = 0; shot < 100; ++shot) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.next_double() < 0.08) errors.set(e, true);
    }
    const gf2::BitVec syndrome = code.plaquette_syndrome(errors);
    const gf2::BitVec c1 = decoder.decode(syndrome, gf2::BitVec());
    const gf2::BitVec c2 = decoder.decode(syndrome, gf2::BitVec());
    EXPECT_TRUE(c1 == c2);
    gf2::BitVec residual = errors;
    residual ^= c1;
    EXPECT_FALSE(code.plaquette_syndrome(residual).any());
  }
}

// The star side walks the primal (vertex) graph; same invariants.
TEST(ErasureDecoder, StarSideClearsAndPeels) {
  const ToricCode code(4);
  const ErasureAwareDecoder decoder(code, ToricSide::kStar, mwpm());
  Rng rng(0xE20C);
  for (size_t shot = 0; shot < 100; ++shot) {
    gf2::BitVec heralds(code.num_qubits());
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.next_double() < 0.15) {
        heralds.set(e, true);
        if (rng.next_double() < 0.5) errors.set(e, true);
      }
      if (rng.next_double() < 0.03) errors.flip(e);
    }
    const gf2::BitVec syndrome = code.star_syndrome(errors);
    gf2::BitVec residual = errors;
    residual ^= decoder.decode(syndrome, heralds);
    EXPECT_FALSE(code.star_syndrome(residual).any()) << shot;
  }
}

// The matching stage must route corrections THROUGH the erasure support:
// two defects whose erased connection is longer than the geodesic still
// decode exactly, because erased edges cost ~nothing.
TEST(ErasureDecoder, MatchingThreadsTheErasureSupport) {
  const ToricCode code(6);
  const ErasureAwareDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  // An error on a bent chain of erased edges plus one defect pair whose
  // direct geodesic (2 steps) is shorter than the erased detour (4 steps):
  // the aware decoder must still find the zero-residual correction.
  const uint32_t chain[] = {code.h_edge(1, 1), code.v_edge(2, 1),
                            code.v_edge(2, 2), code.h_edge(2, 3)};
  gf2::BitVec heralds(code.num_qubits());
  gf2::BitVec errors(code.num_qubits());
  for (uint32_t e : chain) {
    heralds.set(e, true);
    errors.set(e, true);
  }
  expect_exact_correction(code, decoder, errors, heralds);
}

// The paired-shot harness drives real FrameSim channels: the decoder's
// invariants must hold and the aware verdict can only improve on the blind
// one in aggregate.
TEST(ErasureMemory, AwareNeverWorseInAggregate) {
  const ToricCode code(6);
  const ErasureAwareDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  sim::NoiseParams params;
  params.eps_store = 0.02;
  params.p_erase = 0.20;
  size_t aware_fails = 0, blind_fails = 0, heralds_seen = 0;
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    const ErasureMemoryResult r = run_erasure_memory(decoder, params, seed);
    ASSERT_TRUE(r.blind_cleared) << seed;
    ASSERT_TRUE(r.aware_cleared) << seed;
    aware_fails += r.aware_fail ? 1 : 0;
    blind_fails += r.blind_fail ? 1 : 0;
    heralds_seen += r.num_heralds;
  }
  EXPECT_GT(heralds_seen, 0u);
  EXPECT_LT(aware_fails, blind_fails);
}

// Biased channels shift which side of the decoder hurts: under pure Z bias
// the star side (sensitive to Z errors) sees nearly every fault and the
// plaquette side nearly none.
TEST(ErasureMemory, ZBiasLoadsTheStarSide) {
  const ToricCode code(6);
  const ErasureAwareDecoder plaq(code, ToricSide::kPlaquette, mwpm());
  const ErasureAwareDecoder star(code, ToricSide::kStar, mwpm());
  sim::NoiseParams params;
  params.eps_store = 0.08;
  params.bias_x = 1.0;
  params.bias_y = 1.0;
  params.bias_z = 100.0;
  size_t plaq_fails = 0, star_fails = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    plaq_fails += run_erasure_memory(plaq, params, seed).blind_fail ? 1 : 0;
    star_fails += run_erasure_memory(star, params, seed).blind_fail ? 1 : 0;
  }
  EXPECT_LT(plaq_fails, star_fails);
}

}  // namespace
}  // namespace ftqc::decode
