#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

// Shared harness for the E01-E18 paper benchmarks.
//
//   int main(int argc, char** argv) {
//     ftqc::bench::init(argc, argv, "E05");
//     const size_t shots = ftqc::bench::scaled(200000, 500);
//     ...
//     ftqc::bench::JsonResult json;
//     json.add("p_fail", p_fail);
//     json.write();
//   }
//
// `--smoke` (or FTQC_BENCH_SMOKE=1) switches every benchmark to a <=1s
// configuration so CTest's bench-smoke tier catches bit-rot cheaply.
// JsonResult::write() appends one self-describing line to stdout
// (`BENCH_JSON {...}`) and writes a BENCH_<name>.json artifact next to the
// working directory so perf trajectories can be diffed across PRs.
namespace ftqc::bench {

struct Options {
  bool smoke = false;
  std::string name;      // benchmark id, e.g. "E05"
  std::string json_dir;  // defaults to the working directory
};

inline Options& options() {
  static Options opts;
  return opts;
}

inline bool smoke() { return options().smoke; }

// Pick `full` normally, `smoke_value` under --smoke.
inline size_t scaled(size_t full, size_t smoke_value) {
  return options().smoke ? smoke_value : full;
}

inline void init(int argc, char** argv, const char* name) {
  Options& opts = options();
  opts.name = name;
  if (const char* env = std::getenv("FTQC_BENCH_SMOKE")) {
    opts.smoke = env[0] != '\0' && env[0] != '0';
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(arg, "--full") == 0) {
      opts.smoke = false;
    } else if (std::strncmp(arg, "--json-dir=", 11) == 0) {
      opts.json_dir = arg + 11;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf("usage: %s [--smoke] [--full] [--json-dir=DIR]\n", argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      std::exit(2);
    }
  }
  if (opts.smoke) std::printf("[smoke mode: reduced shot counts]\n");
}

// Accumulates flat key/value metrics and emits them as one JSON object.
class JsonResult {
 public:
  void add(const std::string& key, double value) {
    char buf[64];
    // %.12g would print bare nan/inf tokens, which are not valid JSON.
    if (std::isfinite(value)) {
      std::snprintf(buf, sizeof buf, "%.12g", value);
    } else {
      std::snprintf(buf, sizeof buf, "null");
    }
    fields_.emplace_back(key, buf);
  }
  void add(const std::string& key, size_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add_string(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + escaped(value) + "\"");
  }

  // Serializes {"bench":"E05","smoke":...,<fields>}, prints a BENCH_JSON
  // line, and writes BENCH_<name>.json for machine consumption.
  void write() const {
    const Options& opts = options();
    FTQC_CHECK(!opts.name.empty(), "bench::init must run before write()");
    std::string json = "{\"bench\":\"" + escaped(opts.name) + "\"";
    json += ",\"smoke\":";
    json += opts.smoke ? "true" : "false";
    for (const auto& [key, value] : fields_) {
      json += ",\"" + escaped(key) + "\":" + value;
    }
    json += "}";
    std::printf("BENCH_JSON %s\n", json.c_str());
    std::string path = opts.json_dir.empty() ? "" : opts.json_dir + "/";
    path += "BENCH_" + opts.name + ".json";
    if (std::FILE* out = std::fopen(path.c_str(), "w")) {
      std::fprintf(out, "%s\n", json.c_str());
      std::fclose(out);
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
  }

 private:
  static std::string escaped(const std::string& raw) {
    std::string out;
    for (char c : raw) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace ftqc::bench
