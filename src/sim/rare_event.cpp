#include "sim/rare_event.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace ftqc::sim {

double binomial_pmf(double n, size_t k, double p) {
  const double kd = static_cast<double>(k);
  if (n < kd || p < 0 || p > 1) return 0.0;
  if (p == 0) return k == 0 ? 1.0 : 0.0;
  if (p == 1) return kd == n ? 1.0 : 0.0;
  const double log_choose = std::lgamma(n + 1) - std::lgamma(kd + 1) -
                            std::lgamma(n - kd + 1);
  const double log_pmf =
      log_choose + kd * std::log(p) + (n - kd) * std::log1p(-p);
  return std::exp(log_pmf);
}

size_t BudgetRouter::run(size_t budget, size_t chunk, double target) {
  spent_.assign(arms_.size(), 0);
  if (arms_.empty() || chunk == 0) return 0;
  std::vector<bool> retired(arms_.size(), false);
  size_t total = 0;
  while (total < budget) {
    size_t best = arms_.size();
    double best_width = -1;
    for (size_t i = 0; i < arms_.size(); ++i) {
      if (retired[i]) continue;
      const double w = arms_[i].width();
      if (w <= target) continue;  // arm resolved to target — done with it
      if (w > best_width) {
        best = i;
        best_width = w;
      }
    }
    if (best == arms_.size()) break;  // every live arm within target
    const size_t grant = std::min(chunk, budget - total);
    const size_t used = arms_[best].spend(grant);
    if (used == 0) {
      retired[best] = true;
      continue;
    }
    spent_[best] += used;
    total += used;
  }
  return total;
}

StratifiedEstimator::StratifiedEstimator(size_t num_strata,
                                         StratumSampler sampler)
    : strata_(num_strata),
      sampler_(std::move(sampler)),
      shots_per_stratum_(num_strata, 0) {}

size_t StratifiedEstimator::add_view(std::vector<double> weights,
                                     double tail_weight) {
  assert(weights.size() == strata_.size());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  views_.push_back(View{std::move(weights), tail_weight,
                        std::vector<double>(strata_.size(), nan),
                        std::vector<double>(strata_.size(), nan)});
  return views_.size() - 1;
}

void StratifiedEstimator::mark_known_zero(size_t stratum) {
  strata_[stratum].known_zero = true;
}

void StratifiedEstimator::add_shots(size_t stratum, size_t shots) {
  if (shots == 0 || strata_[stratum].known_zero) return;
  const StratumChunk chunk =
      sampler_(stratum, shots, shots_per_stratum_[stratum]);
  strata_[stratum].sampled.successes += chunk.sampled.successes;
  strata_[stratum].sampled.trials += chunk.sampled.trials;
  shots_per_stratum_[stratum] += chunk.raw;
  total_shots_ += chunk.raw;
}

double StratifiedEstimator::view_conditional_mean(size_t view,
                                                  size_t stratum) const {
  if (strata_[stratum].known_zero) return 0.0;
  const double override_mean = views_[view].cond_mean[stratum];
  return std::isnan(override_mean) ? strata_[stratum].conditional_mean()
                                   : override_mean;
}

double StratifiedEstimator::view_conditional_halfwidth(size_t view,
                                                       size_t stratum) const {
  if (strata_[stratum].known_zero) return 0.0;
  const double override_hw = views_[view].cond_halfwidth[stratum];
  return std::isnan(override_hw) ? strata_[stratum].conditional_halfwidth()
                                 : override_hw;
}

StratifiedEstimate StratifiedEstimator::estimate(size_t view) const {
  const View& v = views_[view];
  StratifiedEstimate out;
  out.tail_weight = v.tail_weight;
  out.shots = total_shots_;
  double var = 0;  // sum of squared w_k * halfwidth_k contributions
  for (size_t k = 0; k < strata_.size(); ++k) {
    const double w = v.weights[k];
    out.mean += w * view_conditional_mean(view, k);
    const double contrib = w * view_conditional_halfwidth(view, k);
    var += contrib * contrib;
  }
  out.halfwidth = std::sqrt(var) + v.tail_weight;
  return out;
}

double StratifiedEstimator::contribution(size_t stratum, size_t view) const {
  const View& v = views_[view];
  const double contrib =
      v.weights[stratum] * view_conditional_halfwidth(view, stratum);
  if (contrib <= 0) return 0;
  // Normalize by the view's mean so strata compete on RELATIVE width; a
  // still-zero mean leaves the raw contribution, which preserves the
  // ordering (all strata of that view share the same denominator anyway).
  const double mean = estimate(view).mean;
  return mean > 0 ? contrib / mean : contrib * 1e12;
}

double StratifiedEstimator::max_contribution(size_t stratum) const {
  double best = 0;
  for (size_t v = 0; v < views_.size(); ++v) {
    best = std::max(best, contribution(stratum, v));
  }
  return best;
}

double StratifiedEstimator::max_view_relative_halfwidth() const {
  double widest = 0;
  for (size_t v = 0; v < views_.size(); ++v) {
    widest = std::max(widest, estimate(v).relative_halfwidth());
  }
  return widest;
}

void StratifiedEstimator::run(const StratifiedPlan& plan) {
  if (views_.empty() || plan.budget == 0 || plan.chunk == 0) return;
  size_t spent = 0;
  // Initialization pass: pull every live, never-sampled stratum once before
  // routing adaptively. Routing priorities start from the caller's prior
  // weights, and a prior that badly underweights a stratum (e.g. the
  // underdispersed binomial fallback of a gadget whose path stretches with
  // its fault count) would otherwise starve it forever — the router can
  // only correct a weight the sampler has had one chunk to measure.
  for (size_t k = 0; k < strata_.size() && spent < plan.budget; ++k) {
    if (strata_[k].known_zero || shots_per_stratum_[k] > 0) continue;
    const size_t before = total_shots_;
    add_shots(k, std::min(plan.chunk, plan.budget - spent));
    spent += total_shots_ - before;
  }
  while (spent < plan.budget) {
    if (plan.target_relative_halfwidth > 0 &&
        max_view_relative_halfwidth() <= plan.target_relative_halfwidth) {
      return;
    }
    size_t best = strata_.size();
    double best_metric = 0;
    for (size_t k = 0; k < strata_.size(); ++k) {
      if (strata_[k].known_zero) continue;
      const double m = max_contribution(k);
      if (m > best_metric) {
        best_metric = m;
        best = k;
      }
    }
    if (best == strata_.size()) return;  // nothing left to tighten
    const size_t before = total_shots_;
    add_shots(best, std::min(plan.chunk, plan.budget - spent));
    const size_t used = total_shots_ - before;
    if (used == 0) return;  // sampler refused; avoid spinning
    spent += used;
  }
}

}  // namespace ftqc::sim
