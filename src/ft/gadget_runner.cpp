#include "ft/gadget_runner.h"

#include <algorithm>

#include "common/check.h"

namespace ftqc::ft {

std::vector<uint8_t> run_gadget(sim::FrameSim& frame,
                                const sim::Circuit& circuit,
                                NoiseInjector& injector,
                                std::span<const uint32_t> active_qubits) {
  using sim::Gate;
  std::vector<uint8_t> record;
  record.reserve(circuit.num_measurements());
  std::vector<bool> touched(frame.num_qubits(), false);

  const auto flush_storage = [&] {
    for (uint32_t q : active_qubits) {
      if (!touched[q]) injector.on_storage(frame, q);
    }
    std::fill(touched.begin(), touched.end(), false);
  };

  for (const sim::Operation& op : circuit.ops()) {
    FTQC_CHECK(op.cond < 0, "gadget circuits cannot use feedforward");
    for (uint32_t t : op.targets) touched[t] = true;
    switch (op.gate) {
      case Gate::TICK:
        flush_storage();
        break;
      case Gate::I:
        break;
      case Gate::X:
      case Gate::Y:
      case Gate::Z:
        // Deterministic Paulis shift the reference, not the frame, but the
        // physical gate is still a fault opportunity.
        injector.on_gate1(frame, op.targets[0]);
        break;
      case Gate::H:
        frame.apply_h(op.targets[0]);
        injector.on_gate1(frame, op.targets[0]);
        break;
      case Gate::S:
      case Gate::S_DAG:
        frame.apply_s(op.targets[0]);
        injector.on_gate1(frame, op.targets[0]);
        break;
      case Gate::CX:
        frame.apply_cx(op.targets[0], op.targets[1]);
        injector.on_gate2(frame, op.targets[0], op.targets[1]);
        break;
      case Gate::CZ:
        frame.apply_cz(op.targets[0], op.targets[1]);
        injector.on_gate2(frame, op.targets[0], op.targets[1]);
        break;
      case Gate::SWAP:
        frame.apply_swap(op.targets[0], op.targets[1]);
        injector.on_gate2(frame, op.targets[0], op.targets[1]);
        break;
      case Gate::M:
        injector.on_meas(frame, op.targets[0], /*x_basis=*/false);
        record.push_back(frame.measure_z(op.targets[0]));
        break;
      case Gate::MX:
        injector.on_meas(frame, op.targets[0], /*x_basis=*/true);
        record.push_back(frame.measure_x(op.targets[0]));
        break;
      case Gate::MR:
        injector.on_meas(frame, op.targets[0], /*x_basis=*/false);
        record.push_back(frame.measure_z(op.targets[0]));
        frame.reset(op.targets[0]);
        injector.on_prep(frame, op.targets[0]);
        break;
      case Gate::R:
        frame.reset(op.targets[0]);
        injector.on_prep(frame, op.targets[0]);
        break;
      case Gate::INJECT_X:
        frame.inject_x(op.targets[0]);
        break;
      case Gate::INJECT_Y:
        frame.inject_y(op.targets[0]);
        break;
      case Gate::INJECT_Z:
        frame.inject_z(op.targets[0]);
        break;
      default:
        FTQC_CHECK(false, std::string("run_gadget cannot execute ") +
                              sim::gate_name(op.gate));
    }
  }
  return record;
}

}  // namespace ftqc::ft
