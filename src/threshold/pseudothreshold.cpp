#include "threshold/pseudothreshold.h"

#ifdef _OPENMP
#include <omp.h>
#endif

#include "ft/shor_recovery.h"
#include "ft/steane_recovery.h"

namespace ftqc::threshold {

namespace {

template <typename Driver>
uint64_t run_shots(double eps_gate, double eps_store, size_t shots,
                   uint64_t seed) {
  const auto noise = sim::NoiseParams::uniform_gate(eps_gate, eps_store);
  uint64_t failures = 0;
#pragma omp parallel reduction(+ : failures)
  {
#ifdef _OPENMP
    const int worker = omp_get_thread_num();
    const int num_workers = omp_get_num_threads();
#else
    const int worker = 0;
    const int num_workers = 1;
#endif
    for (size_t shot = static_cast<size_t>(worker); shot < shots;
         shot += static_cast<size_t>(num_workers)) {
      Driver rec(noise, ft::RecoveryPolicy{}, seed + 0x9E37 * shot);
      rec.run_cycle();
      failures += rec.any_logical_error() ? 1 : 0;
    }
  }
  return failures;
}

}  // namespace

CyclePoint measure_cycle_failure(RecoveryMethod method, double eps_gate,
                                 size_t shots, uint64_t seed,
                                 double eps_store) {
  CyclePoint point;
  point.eps = eps_gate;
  point.failures.trials = shots;
  point.failures.successes =
      method == RecoveryMethod::kSteane
          ? run_shots<ft::SteaneRecovery>(eps_gate, eps_store, shots, seed)
          : run_shots<ft::ShorRecovery>(eps_gate, eps_store, shots, seed);
  return point;
}

std::vector<CyclePoint> sweep_cycle_failure(RecoveryMethod method,
                                            const std::vector<double>& eps_values,
                                            size_t shots, uint64_t seed) {
  std::vector<CyclePoint> points;
  points.reserve(eps_values.size());
  for (size_t i = 0; i < eps_values.size(); ++i) {
    points.push_back(
        measure_cycle_failure(method, eps_values[i], shots, seed + 131 * i));
  }
  return points;
}

double fit_quadratic_coefficient(const std::vector<CyclePoint>& points) {
  // Least squares for failure = c·ε² (single parameter):
  // c = Σ w f ε² / Σ w ε⁴ with w = trials (binomial weight ~ 1/variance up
  // to the common factor f(1-f) which is nearly constant across the sweep).
  double num = 0, denom = 0;
  for (const auto& p : points) {
    const double w = static_cast<double>(p.failures.trials);
    const double e2 = p.eps * p.eps;
    num += w * p.failures.mean() * e2;
    denom += w * e2 * e2;
  }
  return denom > 0 ? num / denom : 0.0;
}

}  // namespace ftqc::threshold
