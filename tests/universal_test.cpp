// The universal-gate stack: [[15,1,3]] Reed-Muller structure, the
// transversal-T rule cross-validated on a state vector, flag-qubit syndrome
// extraction (decode tables, exhaustive single-fault tolerance on both the
// Steane and Reed-Muller codes), and the batch-vs-serial FlagRecovery pin.
// The statistical pin under noise lives in the UniversalBatchIntegration
// suite (integration tier); everything else is unit-fast.
#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

#include "codes/library.h"
#include "ft/fault_enumeration.h"
#include "ft/transversal.h"
#include "sim/runner.h"
#include "sim/statevector_sim.h"
#include "universal/batch_flag_recovery.h"
#include "universal/flag_extraction.h"
#include "universal/flag_recovery.h"

namespace {

using namespace ftqc;

// ---- [[15,1,3]] structure ---------------------------------------------------

TEST(ReedMuller15, ShapeAndLogicals) {
  const auto& code = codes::reed_muller15();
  EXPECT_EQ(code.n(), 15u);
  EXPECT_EQ(code.k(), 1u);
  EXPECT_EQ(code.num_generators(), 14u);
  // Four X-generators (weight-8 hyperplanes), then ten Z-generators.
  for (size_t g = 0; g < 4; ++g) {
    EXPECT_EQ(code.generators()[g].z_part().popcount(), 0u);
    EXPECT_EQ(code.generators()[g].x_part().popcount(), 8u);
  }
  for (size_t g = 4; g < 14; ++g) {
    EXPECT_EQ(code.generators()[g].x_part().popcount(), 0u);
  }
  EXPECT_EQ(code.logical_x().x_part().popcount(), 15u);
  EXPECT_EQ(code.logical_z().z_part().popcount(), 3u);
}

TEST(ReedMuller15, DistillationKernelHas35OddTriples) {
  // The error patterns invisible to the four X-hyperplane parity checks form
  // the [15,11,3] Hamming code; its 35 weight-3 codewords all have odd
  // overlap with X̄ = X^15, which is what gives 15-to-1 its ~35*eps^3 output.
  const auto& code = codes::reed_muller15();
  uint32_t checks[4] = {0, 0, 0, 0};
  for (size_t j = 0; j < 4; ++j) {
    for (size_t q = 0; q < 15; ++q) {
      if (code.generators()[j].x_part().get(q)) checks[j] |= 1u << q;
    }
  }
  size_t weight3 = 0;
  for (uint32_t v = 1; v < (1u << 15); ++v) {
    if (__builtin_popcount(v) != 3) continue;
    bool invisible = true;
    for (uint32_t c : checks) invisible &= __builtin_popcount(v & c) % 2 == 0;
    if (!invisible) continue;
    ++weight3;
    EXPECT_EQ(__builtin_popcount(v) % 2, 1);  // flips the total parity
  }
  EXPECT_EQ(weight3, 35u);
}

// GF(2) row reduction to reduced row echelon form; returns the rows (each a
// 15-bit mask) with distinct pivot columns.
std::vector<uint32_t> rref(std::vector<uint32_t> rows) {
  size_t rank = 0;
  for (int col = 0; col < 15 && rank < rows.size(); ++col) {
    size_t pivot = rank;
    while (pivot < rows.size() && !(rows[pivot] >> col & 1u)) ++pivot;
    if (pivot == rows.size()) continue;
    std::swap(rows[rank], rows[pivot]);
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r != rank && (rows[r] >> col & 1u)) rows[r] ^= rows[rank];
    }
    ++rank;
  }
  rows.resize(rank);
  return rows;
}

TEST(ReedMuller15, TransversalTIsLogicalT) {
  // Prepare logical |+> = (|0̄> + |1̄>)/sqrt(2): the uniform superposition
  // over the span of the four X-generators and X̄. With the span basis in
  // RREF, H on each pivot plus fan-out CXs is an exact encoder.
  const auto& code = codes::reed_muller15();
  std::vector<uint32_t> rows;
  for (size_t j = 0; j < 4; ++j) {
    uint32_t row = 0;
    for (size_t q = 0; q < 15; ++q) {
      if (code.generators()[j].x_part().get(q)) row |= 1u << q;
    }
    rows.push_back(row);
  }
  rows.push_back((1u << 15) - 1);  // X̄ = X^15
  rows = rref(rows);
  ASSERT_EQ(rows.size(), 5u);

  sim::StateVectorSim psi(15, /*seed=*/1);
  for (uint32_t row : rows) {
    const int pivot = __builtin_ctz(row);
    psi.apply_h(static_cast<size_t>(pivot));
    for (int q = pivot + 1; q < 15; ++q) {
      if (row >> q & 1u) psi.apply_cx(static_cast<size_t>(pivot),
                                      static_cast<size_t>(q));
    }
  }

  // Bitwise physical T† (the rz(-pi/4) layer) must act as logical T: on a
  // weight-w basis state it contributes e^{-i pi w/4} (up to one global
  // phase), and the codeword weights are 0 mod 8 on the |0̄> branch and
  // 7 mod 8 on the |1̄> branch — so |0̄> is fixed and |1̄> gains e^{i pi/4}.
  static constexpr uint32_t kBlock[15] = {0, 1, 2,  3,  4,  5,  6, 7,
                                          8, 9, 10, 11, 12, 13, 14};
  run_circuit(psi, ft::logical_t_transversal(kBlock));

  const std::complex<double> amp0 = psi.amplitude(0);
  ASSERT_GT(std::abs(amp0), 1e-12);
  const std::complex<double> t_phase(std::cos(M_PI / 4), std::sin(M_PI / 4));
  size_t support = 0;
  for (uint64_t b = 0; b < (1u << 15); ++b) {
    const std::complex<double> amp = psi.amplitude(b);
    if (std::abs(amp) < 1e-12) continue;
    ++support;
    const int w = __builtin_popcountll(b);
    if (w % 2 == 0) {
      EXPECT_EQ(w % 8, 0);
      EXPECT_LT(std::abs(amp - amp0), 1e-9);
    } else {
      EXPECT_EQ(w % 8, 7);
      EXPECT_LT(std::abs(amp - amp0 * t_phase), 1e-9);
    }
  }
  EXPECT_EQ(support, 32u);  // 16 codewords per logical branch
}

// ---- Flag decode tables -----------------------------------------------------

TEST(FlagExtraction, TablesCoverBothCodes) {
  for (const auto* code : {&codes::steane(), &codes::reed_muller15()}) {
    const universal::FlagDecodeTable table(*code);
    EXPECT_EQ(table.num_generators(), code->num_generators());
    EXPECT_GT(table.table_size(), 0u);
    for (size_t g = 0; g < code->num_generators(); ++g) {
      // The comb order is a permutation of the generator's support.
      const auto& order = table.order(g);
      EXPECT_EQ(order.size(), code->generators()[g].weight());
      for (uint32_t q : order) {
        EXPECT_NE(code->generators()[g].pauli_at(q), 'I');
      }
      // The trivial follow-up syndrome decodes to the identity: a fired
      // flag whose re-extraction reads clean needs no correction.
      const gf2::BitVec trivial(code->num_generators());
      const pauli::PauliString* id = table.decode(g, trivial);
      ASSERT_NE(id, nullptr);
      EXPECT_TRUE(id->is_identity());
    }
  }
}

// ---- Single-fault tolerance -------------------------------------------------

// Exhaustive order-eps scan (§3): no single fault anywhere in the flagged
// cycle — gates, preps, measurements, storage — may leave a logical error.
void expect_single_fault_tolerant(const codes::StabilizerCode& code) {
  // One recovery object for the whole scan: the [[15,1,3]] lookup-table BFS
  // covers 2^14 syndromes and the scan replays the cycle thousands of times,
  // so per-replay construction would dominate the runtime. reset() restores
  // a clean frame between replays.
  universal::FlagRecovery rec(code, sim::NoiseParams{}, ft::RecoveryPolicy{},
                              /*seed=*/77);
  const ft::GadgetExperiment experiment = [&rec](ft::NoiseInjector& inj) {
    rec.reset();
    rec.set_injector(&inj);
    rec.run_cycle();
    rec.set_injector(nullptr);
    return rec.any_logical_error();
  };
  const ft::SingleFaultScan scan =
      ft::scan_single_faults(experiment, ft::all_kinds());
  EXPECT_GT(scan.num_locations, 100u);
  EXPECT_EQ(scan.faults_failing, 0u)
      << code.name() << ": " << scan.faults_failing << " of "
      << scan.faults_tried << " single faults caused a logical error";
}

TEST(FlagRecovery, NoSingleFaultFailsSteane) {
  expect_single_fault_tolerant(codes::steane());
}

TEST(FlagRecovery, NoSingleFaultFailsReedMuller15) {
  expect_single_fault_tolerant(codes::reed_muller15());
}

TEST(FlagRecovery, CorrectsInjectedSingleErrors) {
  // Noiseless cycles fix every weight-1 Pauli without firing a flag.
  for (const auto* code : {&codes::steane(), &codes::reed_muller15()}) {
    universal::FlagRecovery rec(*code, sim::NoiseParams{}, ft::RecoveryPolicy{},
                                /*seed=*/5);
    for (char pauli : {'X', 'Y', 'Z'}) {
      for (uint32_t q = 0; q < code->n(); ++q) {
        rec.reset();
        rec.inject_data(q, pauli);
        rec.run_cycle();
        EXPECT_TRUE(rec.residual().is_identity() ||
                    code->in_stabilizer_group(rec.residual()));
        EXPECT_FALSE(rec.any_logical_error());
        EXPECT_EQ(rec.flags_raised(), 0u);
      }
    }
  }
}

// ---- Batch-vs-serial pin ----------------------------------------------------

TEST(BatchFlagRecovery, NoiselessBitForBitPin) {
  // Same injected pattern on every lane, zero noise: each of the 128 lanes
  // must reproduce the serial driver's residual exactly — including the
  // word-boundary lanes 63/64 — for single and multi-qubit patterns.
  struct Pattern {
    std::vector<std::pair<uint32_t, char>> paulis;
  };
  const std::vector<Pattern> patterns = {
      {{{2, 'X'}}},
      {{{5, 'Z'}}},
      {{{0, 'Y'}}},
      {{{1, 'X'}, {4, 'Z'}}},
      {{{0, 'X'}, {1, 'X'}, {2, 'X'}}},
  };
  for (const auto* code : {&codes::steane(), &codes::reed_muller15()}) {
    for (const Pattern& pattern : patterns) {
      universal::FlagRecovery serial(*code, sim::NoiseParams{},
                                     ft::RecoveryPolicy{}, /*seed=*/11);
      universal::BatchFlagRecovery batch(*code, sim::NoiseParams{},
                                         ft::RecoveryPolicy{}, /*shots=*/128,
                                         /*seed=*/99);
      for (const auto& [q, p] : pattern.paulis) {
        serial.inject_data(q, p);
        batch.inject_data(q, p);
      }
      serial.run_cycle();
      batch.run_cycle();
      for (size_t shot : {size_t{0}, size_t{63}, size_t{64}, size_t{127}}) {
        EXPECT_EQ(batch.residual(shot).to_string(),
                  serial.residual().to_string())
            << code->name() << " shot " << shot;
        EXPECT_EQ(batch.any_logical_error(shot), serial.any_logical_error());
      }
      EXPECT_EQ(batch.count_any_logical_error(),
                serial.any_logical_error() ? batch.num_shots() : 0u);
      EXPECT_EQ(batch.flags_raised(), 0u);
      EXPECT_EQ(serial.flags_raised(), 0u);
    }
  }
}

// ---- Statistical pin under noise (integration tier) -------------------------

TEST(UniversalBatchIntegration, BatchMatchesSerialWithinOneSigma) {
  // Same noise, independent seed streams: the batch failure estimate must
  // land within one combined binomial sigma of the serial one, and both
  // paths must be alive (failures observed, flags actually firing).
  const auto noise = sim::NoiseParams::uniform_gate(3e-3);
  const auto& code = codes::steane();
  const size_t shots = 8192;

  uint64_t serial_fails = 0, serial_flags = 0;
  for (size_t s = 0; s < shots; ++s) {
    universal::FlagRecovery rec(code, noise, ft::RecoveryPolicy{},
                                /*seed=*/1000 + 0x9E37 * s);
    rec.run_cycle();
    serial_fails += rec.any_logical_error();
    serial_flags += rec.flags_raised();
  }
  universal::BatchFlagRecovery batch(code, noise, ft::RecoveryPolicy{}, shots,
                                     /*seed=*/424242);
  batch.run_cycle();
  const uint64_t batch_fails = batch.count_any_logical_error(shots);

  const double n = static_cast<double>(shots);
  const double pf = static_cast<double>(serial_fails) / n;
  const double pb = static_cast<double>(batch_fails) / n;
  const double se = std::sqrt(pf * (1 - pf) / n + pb * (1 - pb) / n);
  EXPECT_GT(serial_fails, 0u);
  EXPECT_GT(batch_fails, 0u);
  EXPECT_GT(serial_flags, 0u);
  EXPECT_GT(batch.flags_raised(), 0u);
  EXPECT_LE(std::fabs(pf - pb), se)
      << "serial " << pf << " vs batch " << pb << " (se " << se << ")";
}

}  // namespace
