#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "ft/noise_injector.h"
#include "ft/recovery.h"
#include "gf2/hamming.h"
#include "sim/frame_sim.h"
#include "sim/noise_model.h"

namespace ftqc::ft {

// Fault-tolerant error recovery for one Steane block using Steane's
// encoded-ancilla method — the complete circuit of Fig. 9:
//
//   1. prepare |0>_code ancilla blocks and verify them against a second
//      encoded block (§3.3);
//   2. bit-flip syndrome: verified ancilla rotated to the Steane state
//      (Eq. 17), transversal XOR data->ancilla, destructive Z measurement,
//      classical Hamming check (§3.6);
//   3. phase-flip syndrome: verified |0>_code ancilla, transversal XOR
//      ancilla->data, destructive X measurement, Hamming check;
//   4. §3.4 syndrome repetition: act only on a nontrivial syndrome read
//      twice in agreement.
//
// Runs on a Pauli frame, so one cycle costs microseconds and the level-1
// failure analysis (E5/E6) can afford exhaustive two-fault enumeration.
//
// Register layout: data block [0,7), syndrome ancilla [7,14), verification
// ancilla [14,21).
class SteaneRecovery {
 public:
  static constexpr uint32_t kNumQubits = 21;

  SteaneRecovery(const sim::NoiseParams& noise, RecoveryPolicy policy,
                 uint64_t seed);

  // Returns the frame to the all-clean state.
  void reset();

  // Injects a Pauli on a data qubit (error-channel input for experiments).
  void inject_data(uint32_t q, char pauli);
  // iid depolarizing channel on every data qubit (the memory step of E1/E5).
  void apply_memory_noise(double p);

  // One full fault-tolerant recovery cycle (Fig. 9).
  void run_cycle();

  // Residual data-block errors, ideally decoded: true if the block carries a
  // logical X (resp. Z) error that ideal recovery can no longer repair.
  [[nodiscard]] bool logical_x_error() const;
  [[nodiscard]] bool logical_z_error() const;
  [[nodiscard]] bool any_logical_error() const {
    return logical_x_error() || logical_z_error();
  }

  // Raw residual weight per error type (for the "two errors in a block"
  // accounting of §3).
  [[nodiscard]] size_t residual_x_weight() const;
  [[nodiscard]] size_t residual_z_weight() const;

  // Residual weight reduced modulo the stabilizer: a frame pattern equal to
  // a stabilizer element (e.g. the X part of a prep fault that fans out into
  // exactly one generator's support) acts trivially on the code space and
  // counts as weight 0. This is the §3 notion of "errors in a block".
  [[nodiscard]] size_t residual_x_coset_weight() const;
  [[nodiscard]] size_t residual_z_coset_weight() const;

  // Replaces the stochastic injector (owned default) with an external one;
  // used by the fault enumerator. Pass nullptr to restore the default.
  void set_injector(NoiseInjector* injector);

  [[nodiscard]] sim::FrameSim& frame() { return frame_; }

 private:
  // 3-bit Hamming syndrome (as flips) for the given error type.
  gf2::BitVec extract_syndrome(bool phase_type);
  // Verified |0>_code on the syndrome ancilla block (§3.3).
  void prepare_verified_zero_ancilla();
  void correct(bool phase_type, const gf2::BitVec& syndrome);

  sim::FrameSim frame_;
  sim::NoiseParams noise_;
  RecoveryPolicy policy_;
  gf2::Hamming743 hamming_;
  StochasticInjector stochastic_;
  NoiseInjector* injector_;  // points at stochastic_ unless overridden
};

}  // namespace ftqc::ft
