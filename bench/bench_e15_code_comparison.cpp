// E15 (§4.2): code comparison. "There is a 5-qubit code ... but the gate
// implementation is quite complex. The 7-qubit Steane code requires a larger
// block, but it is much more convenient for computation." Compares the
// library codes on parameters, decoding, degeneracy and transversal-gate
// support, plus exact code-capacity failure rates.
#include <cstdio>

#include "bench_harness.h"
#include "codes/library.h"
#include "codes/lookup_decoder.h"
#include "common/table.h"
#include "pauli/pauli_string.h"

namespace {

using namespace ftqc;
using namespace ftqc::codes;
using pauli::PauliString;

// Exact logical failure under iid single-qubit depolarizing noise with
// lookup decoding: sum over all 4^n patterns (n <= 9).
double exact_failure(const StabilizerCode& code, const LookupDecoder& decoder,
                     double eps) {
  const size_t n = code.n();
  double failure = 0;
  const size_t total = size_t{1} << (2 * n);
  for (size_t pattern = 0; pattern < total; ++pattern) {
    PauliString error(n);
    double prob = 1;
    for (size_t q = 0; q < n; ++q) {
      const size_t c = (pattern >> (2 * q)) & 3u;
      static constexpr char kChars[] = {'I', 'X', 'Y', 'Z'};
      error.set_pauli(q, kChars[c]);
      prob *= c == 0 ? (1 - eps) : eps / 3;
    }
    if (decoder.residual_effect(error).any()) failure += prob;
  }
  return failure;
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E15");
  std::printf("E15: library code comparison (§4.2, §3.6).\n\n");
  const StabilizerCode* codes[] = {&five_qubit(), &steane(), &shor9(),
                                   &hamming15()};
  ftqc::Table params({"code", "n", "k", "d", "syndromes", "transversal set"});
  for (const auto* code : codes) {
    const LookupDecoder decoder(*code);
    const char* gates =
        code == &five_qubit()
            ? "none standard (§4.2: 'quite complex')"
            : (code == &shor9() ? "CNOT (CSS)" : "CNOT, H, S (self-dual CSS)");
    params.add_row({code->name(), ftqc::strfmt("%zu", code->n()),
                    ftqc::strfmt("%zu", code->k()),
                    code->n() <= 11
                        ? ftqc::strfmt("%zu", code->brute_force_distance())
                        : std::string("3"),
                    ftqc::strfmt("%zu", decoder.table_size()), gates});
  }
  params.print();

  std::printf("\nExact code-capacity logical failure (iid depolarizing eps):\n");
  ftqc::Table failure({"eps", "[[5,1,3]]", "[[7,1,3]]", "[[9,1,3]]"});
  const LookupDecoder d5(five_qubit());
  const LookupDecoder d7(steane());
  const LookupDecoder d9(shor9());
  ftqc::bench::JsonResult json;
  for (const double eps : {0.02, 0.01, 0.005, 0.002}) {
    const double f5 = exact_failure(five_qubit(), d5, eps);
    const double f7 = exact_failure(steane(), d7, eps);
    const double f9 = exact_failure(shor9(), d9, eps);
    failure.add_row({ftqc::strfmt("%.3g", eps), ftqc::strfmt("%.3e", f5),
                     ftqc::strfmt("%.3e", f7), ftqc::strfmt("%.3e", f9)});
    if (eps == 0.01) {
      json.add("eps", eps);
      json.add("failure_5qubit", f5);
      json.add("failure_steane", f7);
      json.add("failure_shor9", f9);
    }
  }
  failure.print();
  json.write();
  std::printf(
      "\nShape check: all three distance-3 codes fail at O(eps^2); the\n"
      "5-qubit code has the best raw rate (smallest block), Shor's benefits\n"
      "from degeneracy — but only the CSS codes admit the easy transversal\n"
      "gates of §4.1, and only self-dual CSS (Steane) gets H and S bitwise:\n"
      "exactly the paper's 'more convenient for computation'. [[15,7,3]]\n"
      "shows the §3.6 k>1 efficiency trade: 7 logical qubits in 15 physical.\n");
  return 0;
}
