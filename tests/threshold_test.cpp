#include <gtest/gtest.h>

#include <cmath>

#include "threshold/flow.h"
#include "threshold/optimal_t.h"
#include "threshold/pseudothreshold.h"
#include "threshold/resources.h"
#include "threshold/systematic.h"

namespace ftqc::threshold {
namespace {

TEST(QuadraticFlow, ThresholdIsInverseCoefficient) {
  const QuadraticFlow flow{21.0};
  EXPECT_DOUBLE_EQ(flow.threshold(), 1.0 / 21.0);
  // At the fixed point the map is stationary.
  EXPECT_NEAR(flow.map(flow.threshold()), flow.threshold(), 1e-15);
}

TEST(QuadraticFlow, BelowThresholdContractsAboveExpands) {
  const QuadraticFlow flow{21.0};
  EXPECT_LT(flow.map(0.01), 0.01);
  EXPECT_GT(flow.map(0.1), 0.1);
}

TEST(QuadraticFlow, ClosedFormMatchesIteration) {
  // Eq. (36) is exactly the iterated Eq. (33).
  const QuadraticFlow flow{21.0};
  for (const double p0 : {1e-3, 5e-3, 0.02}) {
    for (size_t levels : {1u, 2u, 3u, 5u}) {
      const double iterated = flow.at_level(p0, levels);
      const double closed = flow.at_level_closed_form(p0, levels);
      EXPECT_NEAR(iterated / closed, 1.0, 1e-9);
    }
  }
}

TEST(QuadraticFlow, LevelsNeededMonotone) {
  const QuadraticFlow flow{21.0};
  EXPECT_EQ(flow.levels_needed(1e-3, 1e-3), 0u);
  const size_t l9 = flow.levels_needed(1e-3, 1e-9);
  const size_t l15 = flow.levels_needed(1e-3, 1e-15);
  EXPECT_GE(l15, l9);
  EXPECT_GT(l9, 0u);
  // Above threshold: impossible.
  EXPECT_EQ(flow.levels_needed(0.2, 1e-9), std::numeric_limits<size_t>::max());
}

TEST(QuadraticFlow, BlockSizes) {
  EXPECT_EQ(concatenated_block_size(0), 1u);
  EXPECT_EQ(concatenated_block_size(3), 343u);
}

TEST(QuadraticFlow, Eq37BlockSizeScalesPolylogarithmically) {
  // block size ~ [log(eps0 T)/log(eps0/eps)]^{log2 7}: the growth between
  // two computation sizes is the log-ratio raised to log2(7) ≈ 2.81.
  const double b1 = block_size_for_computation(1e9, 1e-5, 1e-3);
  const double b2 = block_size_for_computation(1e18, 1e-5, 1e-3);
  EXPECT_GT(b2, b1);
  const double log_ratio = std::log(1e-3 * 1e18) / std::log(1e-3 * 1e9);
  EXPECT_NEAR(b2 / b1, std::pow(log_ratio, std::log2(7.0)), 0.05);
}

TEST(OptimalT, BlockErrorFormula) {
  const OptimalTAnalysis analysis{4.0};
  // (t^b eps)^(t+1) with t=2, b=4, eps=1e-3: (16e-3)^3.
  EXPECT_NEAR(analysis.block_error(2.0, 1e-3), std::pow(16e-3, 3.0), 1e-12);
}

TEST(OptimalT, OptimalTGrowsAsEpsShrinks) {
  const OptimalTAnalysis analysis{4.0};
  const size_t t1 = analysis.optimal_t_integer(1e-4);
  const size_t t2 = analysis.optimal_t_integer(1e-8);
  EXPECT_GT(t2, t1);
  // Continuum formula t* = e^{-1} eps^{-1/4}: at eps=1e-8, t* = 10/e ≈ 3.7.
  EXPECT_NEAR(analysis.optimal_t(1e-8), 100.0 / std::exp(1.0), 1e-9);
}

TEST(OptimalT, IntegerOptimumBeatsNeighbors) {
  const OptimalTAnalysis analysis{4.0};
  for (const double eps : {1e-5, 1e-7, 1e-9}) {
    const size_t t = analysis.optimal_t_integer(eps);
    const double at_t = analysis.block_error(static_cast<double>(t), eps);
    if (t > 1) {
      EXPECT_LE(at_t, analysis.block_error(static_cast<double>(t - 1), eps));
    }
    EXPECT_LE(at_t, analysis.block_error(static_cast<double>(t + 1), eps));
  }
}

TEST(OptimalT, RequiredAccuracyIsPolylog) {
  // Eq. (32): eps ~ (log T)^{-b}; check the exact inversion round-trips.
  const OptimalTAnalysis analysis{4.0};
  const double t_cycles = 1e12;
  const double eps = analysis.required_accuracy(t_cycles);
  EXPECT_NEAR(analysis.min_block_error_asymptotic(eps), 1.0 / t_cycles,
              1e-12 / t_cycles * 1e3);
  // Longer computations need better accuracy.
  EXPECT_LT(analysis.required_accuracy(1e15), eps);
}

TEST(Resources, PaperFactoringWorkload) {
  const FactoringWorkload load;  // 432 bits
  EXPECT_EQ(load.logical_qubits(), 2160u);          // 5·432
  EXPECT_NEAR(load.toffoli_gates(), 3.06e9, 5e7);   // 38·432³ ≈ 3·10⁹
  EXPECT_LT(load.target_gate_error(), 1e-9);        // "less than about 1e-9"
  EXPECT_LT(load.target_storage_error(), 1e-12);
}

TEST(Resources, PaperCalibrationReproducesLevel3Block343) {
  const FactoringWorkload load;
  const ResourceModel model;
  const auto plan = model.plan(load, 1e-6, 1e-6);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.levels, 3u);
  EXPECT_EQ(plan.block_size, 343u);
  EXPECT_GT(plan.total_qubits, 700'000u);
  EXPECT_LT(plan.total_qubits, 2'000'000u);  // "of order 10^6"
}

TEST(Resources, BetterHardwareNeedsFewerLevels) {
  const FactoringWorkload load;
  const ResourceModel model;
  const auto coarse = model.plan(load, 1e-6, 1e-6);
  const auto fine = model.plan(load, 1e-8, 1e-8);
  ASSERT_TRUE(fine.feasible);
  EXPECT_LT(fine.levels, coarse.levels);
  EXPECT_LT(fine.total_qubits, coarse.total_qubits);
}

TEST(Resources, AboveThresholdIsInfeasible) {
  const FactoringWorkload load;
  const ResourceModel model;
  EXPECT_FALSE(model.plan(load, 1e-3, 1e-3).feasible);
}

TEST(Systematic, ApproximationsMatchExactForms) {
  const CoherentErrorModel model{0.001};
  EXPECT_NEAR(model.systematic_failure(100) /
                  model.systematic_failure_approx(100),
              1.0, 1e-2);
  EXPECT_NEAR(model.random_walk_failure(100) /
                  model.random_walk_failure_approx(100),
              1.0, 1e-2);
}

TEST(Systematic, SystematicBeatsRandomQuadratically) {
  // After N steps the systematic failure is ~N× the random-walk failure.
  const CoherentErrorModel model{0.002};
  const size_t n = 400;
  const double ratio =
      model.systematic_failure(n) / model.random_walk_failure(n);
  EXPECT_NEAR(ratio, static_cast<double>(n), static_cast<double>(n) * 0.1);
}

TEST(Systematic, SimulationMatchesAnalyticRandomWalk) {
  const double theta = 0.2;
  const size_t n = 50;
  const CoherentErrorModel model{theta};
  const double analytic = model.random_walk_failure(n);
  const double mc = simulate_random_walk_failure(theta, n, 4000, 7);
  EXPECT_NEAR(mc, analytic, 0.03);
}

TEST(Systematic, SimulationMatchesAnalyticSystematic) {
  const double theta = 0.05;
  const size_t n = 20;
  const CoherentErrorModel model{theta};
  EXPECT_NEAR(simulate_systematic_failure(theta, n, 11),
              model.systematic_failure(n), 1e-9);
}

TEST(Pseudothreshold, FailureRateIsQuadraticInEps) {
  const auto p1 = measure_cycle_failure(RecoveryMethod::kSteane, 2e-3, 20000, 3);
  const auto p2 = measure_cycle_failure(RecoveryMethod::kSteane, 4e-3, 20000, 5);
  ASSERT_GT(p1.failures.successes, 5u);
  const double ratio = p2.failures.mean() / p1.failures.mean();
  EXPECT_GT(ratio, 2.0);  // quadratic scaling: expect ~4
  EXPECT_LT(ratio, 8.0);
}

TEST(Pseudothreshold, QuadraticFitRecoversPlantedCoefficient) {
  std::vector<CyclePoint> points;
  for (const double eps : {1e-3, 2e-3, 4e-3}) {
    CyclePoint p;
    p.eps = eps;
    p.failures.trials = 100000;
    p.failures.successes = static_cast<uint64_t>(250.0 * eps * eps * 100000);
    points.push_back(p);
  }
  EXPECT_NEAR(fit_quadratic_coefficient(points), 250.0, 1.0);
}

}  // namespace
}  // namespace ftqc::threshold
