#pragma once

#include <array>
#include <cstdint>

#include "sim/circuit.h"

namespace ftqc::ft {

// Shor's measurement-based Toffoli construction (§4.1, Figs. 12-13), at the
// "bare" level where each encoded block of Fig. 13 is represented by one
// qubit and the 7-qubit cat by one qubit. The encoded version applies every
// gate below transversally / bitwise; since the construction only uses
// gates with known fault-tolerant block implementations (bitwise H, X, Z,
// CZ, XOR, the single bitwise Toffoli onto the cat, and block measurements),
// verifying the bare gadget verifies the logical action of the encoded one.
//
// Stage 1 prepares the ancilla state |A> = (1/2) Σ_{a,b} |a,b,ab> (Eq. 23)
// by measuring Z_AB = (-1)^{ab+c} with a cat-state control (Fig. 12) and
// applying NOT_3 on the -1 outcome. Stage 2 entangles the ancilla with the
// data, measures the three data qubits, and applies the Fig. 13
// measurement-conditioned corrections; the data moves onto what were the
// ancilla qubits.
struct ToffoliGadget {
  sim::Circuit circuit;
  // Input data qubits (consumed: they are measured destructively).
  std::array<uint32_t, 3> in_data;
  // Output qubits now carrying |x, y, z XOR xy> (the former ancilla blocks).
  std::array<uint32_t, 3> out_data;
  uint32_t cat;
};

// Builds the gadget on 7 qubits: ancilla a = {0,1,2}, cat = 3,
// data d = {4,5,6}. The data state must be loaded on qubits 4,5,6 before
// running. Requires the state-vector runner (contains CCZ).
[[nodiscard]] ToffoliGadget make_bare_toffoli_gadget();

// Stage 2 alone (Eq. 27 consumption: three XORs, one H, three destructive
// measurements) on the same 7-qubit layout, with NO conditional fix-ups —
// run_gadget forbids feedforward, and for Pauli-frame failure counting the
// fix-ups are redundant anyway: a flipped measurement outcome means the run
// applies a conditional Clifford the reference run does not, a non-Pauli
// deviation, so any flip already counts as failure; with zero flips the
// omitted (never-firing) reference conditionals only conjugate the residual
// frame by a fixed Clifford on out_data, under which "residual != I" is
// invariant. Hence failure(shot) = any of the three flips OR any frame bit
// left on out_data — exact for this circuit, no feedforward needed.
[[nodiscard]] ToffoliGadget make_toffoli_consumption_gadget();

// Number of fault locations in the encoded version of the gadget per data
// block, used in the E8/E12 resource accounting: every bitwise stage costs
// one gate per block qubit.
[[nodiscard]] size_t encoded_gadget_gate_count(size_t block_size);

}  // namespace ftqc::ft
