#include "topo/suppression.h"

#include <cmath>

#include "common/check.h"

namespace ftqc::topo {

double TopologicalMemoryModel::error_rate(double separation,
                                          double temperature) const {
  const double tunneling = std::exp(-mass * separation);
  const double thermal =
      temperature > 0 ? std::exp(-gap / temperature) : 0.0;
  return attempt_rate * (tunneling + thermal);
}

double TopologicalMemoryModel::survival_probability(double separation,
                                                    double temperature,
                                                    double time) const {
  return std::exp(-error_rate(separation, temperature) * time);
}

size_t TopologicalMemoryModel::sample_error_events(double separation,
                                                   double temperature,
                                                   double time,
                                                   Rng& rng) const {
  const double lambda = error_rate(separation, temperature) * time;
  FTQC_CHECK(lambda < 700, "Poisson mean too large to sample by inversion");
  // Knuth's method: multiply uniforms until the product drops below e^-λ.
  const double threshold = std::exp(-lambda);
  size_t count = 0;
  double product = rng.next_double();
  while (product > threshold) {
    ++count;
    product *= rng.next_double();
  }
  return count;
}

double TopologicalMemoryModel::separation_for_target(double target_rate) const {
  FTQC_CHECK(target_rate > 0 && target_rate < attempt_rate,
             "target must be below the attempt rate");
  return std::log(attempt_rate / target_rate) / mass;
}

double TopologicalMemoryModel::temperature_for_target(double target_rate) const {
  FTQC_CHECK(target_rate > 0 && target_rate < attempt_rate,
             "target must be below the attempt rate");
  return gap / std::log(attempt_rate / target_rate);
}

}  // namespace ftqc::topo
