// Cross-module integration tests: logical-level protocols built from the
// public API (encoder + transversal gates + encoded measurement + recovery),
// and statistical cross-validation between the simulation engines.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "codes/library.h"
#include "ft/encoded_measure.h"
#include "ft/steane_circuits.h"
#include "ft/steane_recovery.h"
#include "ft/transversal.h"
#include "pauli/pauli_string.h"
#include "sim/runner.h"
#include "sim/statevector_sim.h"
#include "sim/tableau_sim.h"

namespace ftqc {
namespace {

using pauli::PauliString;

constexpr std::array<uint32_t, 7> kBlockA = {0, 1, 2, 3, 4, 5, 6};
constexpr std::array<uint32_t, 7> kBlockB = {7, 8, 9, 10, 11, 12, 13};
constexpr std::array<uint32_t, 7> kBlockC = {14, 15, 16, 17, 18, 19, 20};

// Teleport an encoded logical qubit from block A to block C through a
// logical Bell pair (B, C), using only fault-tolerant primitives:
// transversal CNOTs, bitwise H, destructive logical measurements, and
// conditioned logical Pauli fix-ups (§4.1 gate set).
bool teleport_and_read(char input_state, uint64_t seed) {
  sim::TableauSim sim(21, seed);
  // Prepare the input logical state on A.
  switch (input_state) {
    case '0': run_circuit(sim, ft::steane_zero_prep(kBlockA)); break;
    case '1':
      run_circuit(sim, ft::steane_zero_prep(kBlockA));
      run_circuit(sim, ft::logical_x_bitwise(kBlockA));
      break;
    case '+': run_circuit(sim, ft::steane_plus_prep(kBlockA)); break;
    default: ADD_FAILURE() << "bad input"; break;
  }
  // Logical Bell pair on (B, C).
  run_circuit(sim, ft::steane_plus_prep(kBlockB));
  run_circuit(sim, ft::steane_zero_prep(kBlockC));
  run_circuit(sim, ft::logical_cx_transversal(kBlockB, kBlockC));
  // Bell measurement of (A, B).
  run_circuit(sim, ft::logical_cx_transversal(kBlockA, kBlockB));
  run_circuit(sim, ft::logical_h_bitwise(kBlockA));
  const bool mz_a = ft::destructive_logical_measure(sim, kBlockA);
  const bool mz_b = ft::destructive_logical_measure(sim, kBlockB);
  // Conditioned logical fix-ups on C.
  if (mz_b) run_circuit(sim, ft::logical_x_bitwise(kBlockC));
  if (mz_a) run_circuit(sim, ft::logical_z_bitwise(kBlockC));
  // Read out C in the basis matching the input.
  if (input_state == '+') {
    run_circuit(sim, ft::logical_h_bitwise(kBlockC));
    return !ft::destructive_logical_measure(sim, kBlockC);  // |+> reads 0
  }
  return ft::destructive_logical_measure(sim, kBlockC) == (input_state == '1');
}

TEST(LogicalTeleportation, TeleportsZeroOneAndPlus) {
  for (const char state : {'0', '1', '+'}) {
    for (uint64_t seed = 0; seed < 8; ++seed) {
      EXPECT_TRUE(teleport_and_read(state, 100 * seed + state))
          << "teleporting |" << state << "> failed at seed " << seed;
    }
  }
}

TEST(LogicalBellPair, ViolatesClassicalCorrelationBound) {
  // Encoded Bell pair measured in matching bases is perfectly correlated in
  // both Z and X — impossible classically without shared randomness in both
  // bases at once. (A logical-level sanity check of the transversal gate
  // set working on superpositions.)
  for (uint64_t seed = 0; seed < 10; ++seed) {
    sim::TableauSim sim(14, 500 + seed);
    run_circuit(sim, ft::steane_plus_prep(kBlockA));
    run_circuit(sim, ft::steane_zero_prep(kBlockB));
    run_circuit(sim, ft::logical_cx_transversal(kBlockA, kBlockB));
    if (seed % 2 == 0) {
      const bool a = ft::destructive_logical_measure(sim, kBlockA);
      const bool b = ft::destructive_logical_measure(sim, kBlockB);
      EXPECT_EQ(a, b);
    } else {
      run_circuit(sim, ft::logical_h_bitwise(kBlockA));
      run_circuit(sim, ft::logical_h_bitwise(kBlockB));
      const bool a = ft::destructive_logical_measure(sim, kBlockA);
      const bool b = ft::destructive_logical_measure(sim, kBlockB);
      EXPECT_EQ(a, b);
    }
  }
}

TEST(EngineCrossValidation, MeasurementDistributionsAgree) {
  // Random Clifford circuit with interleaved measurements: the joint
  // outcome distribution must agree between the tableau and state-vector
  // engines (compared via outcome frequencies over many seeds).
  sim::Circuit circuit(4);
  Rng build_rng(7);
  for (int step = 0; step < 25; ++step) {
    const auto q = static_cast<uint32_t>(build_rng.next_below(4));
    switch (build_rng.next_below(5)) {
      case 0: circuit.h(q); break;
      case 1: circuit.s(q); break;
      case 2: circuit.x(q); break;
      case 3: {
        auto q2 = static_cast<uint32_t>(build_rng.next_below(4));
        if (q2 == q) q2 = (q + 1) % 4;
        circuit.cx(q, q2);
        break;
      }
      default: circuit.m(q); break;
    }
  }
  circuit.m(0);
  circuit.m(1);
  circuit.m(2);
  circuit.m(3);

  const size_t shots = 6000;
  std::array<size_t, 16> tableau_counts{};
  std::array<size_t, 16> vector_counts{};
  for (size_t s = 0; s < shots; ++s) {
    sim::TableauSim tab(4, 1000 + s);
    const auto rt = run_circuit(tab, circuit);
    size_t key_t = 0;
    for (size_t i = rt.size() - 4; i < rt.size(); ++i) {
      key_t = (key_t << 1) | rt[i];
    }
    tableau_counts[key_t]++;

    sim::StateVectorSim vec(4, 5000 + s);
    const auto rv = run_circuit(vec, circuit);
    size_t key_v = 0;
    for (size_t i = rv.size() - 4; i < rv.size(); ++i) {
      key_v = (key_v << 1) | rv[i];
    }
    vector_counts[key_v]++;
  }
  for (size_t k = 0; k < 16; ++k) {
    const double ft = static_cast<double>(tableau_counts[k]) / shots;
    const double fv = static_cast<double>(vector_counts[k]) / shots;
    EXPECT_NEAR(ft, fv, 0.03) << "outcome " << k;
  }
}

TEST(RecoveryUnderBiasedNoise, PhaseOnlyNoiseOnlyMakesZErrors) {
  // §6 notes the model can be tailored; with pure dephasing the block never
  // suffers logical X errors.
  sim::NoiseParams noise;
  noise.eps_store = 0.0;
  size_t z_failures = 0;
  for (uint64_t s = 0; s < 3000; ++s) {
    ft::SteaneRecovery rec(noise, ft::RecoveryPolicy{}, 900 + s);
    for (uint32_t q = 0; q < 7; ++q) rec.frame().z_error(q, 0.05);
    rec.run_cycle();
    EXPECT_FALSE(rec.logical_x_error());
    z_failures += rec.logical_z_error();
  }
  EXPECT_GT(z_failures, 0u);  // dephasing does cause logical Z at this rate
}

}  // namespace
}  // namespace ftqc
