#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gf2/bitvec.h"
#include "gf2/hamming.h"

namespace ftqc::codes {

// The concatenated Steane code of §5 (Fig. 14): an L-level hierarchy in
// which each qubit of a level-(l) block is itself a level-(l-1) block, for a
// total block size of 7^L physical qubits.
//
// Because Steane's code is CSS and self-dual, X and Z errors decode
// independently and identically; this class works on one error type at a
// time as a bit vector over the 7^L physical qubits. Decoding proceeds
// bottom-up — "recover from errors ... by dividing and conquering" — each
// block of 7 is Hamming-corrected and its logical value passed upward.
class ConcatenatedSteane {
 public:
  explicit ConcatenatedSteane(size_t levels);

  [[nodiscard]] size_t levels() const { return levels_; }
  [[nodiscard]] size_t block_size() const { return block_size_; }

  // Logical error bit left after ideal hierarchical decoding of a physical
  // error pattern (one bit per physical qubit, 1 = flipped).
  [[nodiscard]] bool decode_logical(const gf2::BitVec& errors) const;

  // Per-level intermediate: the logical values of every level-`level` block
  // (level 0 = the raw bits).
  [[nodiscard]] std::vector<bool> decode_to_level(const gf2::BitVec& errors,
                                                  size_t level) const;

  // Monte Carlo estimate of the logical failure probability under iid
  // physical flips with probability p (code-capacity noise).
  [[nodiscard]] double logical_failure_rate(double p, size_t shots, Rng& rng) const;

  // Exact single-level flow map of Eq. (33) for code-capacity noise: the
  // probability that a 7-qubit Hamming block decodes to a logical flip when
  // each qubit is flipped independently with probability p. Expanding around
  // p = 0 gives 21 p² + O(p³) — the origin of the 1/21 threshold.
  [[nodiscard]] static double block_failure_exact(double p);

  // Fixed point of the flow map p -> block_failure_exact(p): the
  // code-capacity threshold of the concatenated Steane code.
  [[nodiscard]] static double code_capacity_threshold();

 private:
  size_t levels_;
  size_t block_size_;
  gf2::Hamming743 hamming_;
};

}  // namespace ftqc::codes
