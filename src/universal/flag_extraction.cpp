#include "universal/flag_extraction.h"

#include <algorithm>

#include "common/check.h"
#include "ft/generic_recovery.h"

namespace ftqc::universal {

using pauli::PauliString;

sim::Circuit flag_extraction_circuit(const PauliString& generator,
                                     std::span<const uint32_t> order,
                                     uint32_t ancilla, uint32_t flag,
                                     bool flagged) {
  const size_t w = order.size();
  FTQC_CHECK(w == generator.weight(), "comb order must cover the support");
  FTQC_CHECK(w >= 3, "flag extraction needs weight >= 3 generators (below "
                     "that a hook is already weight <= 1)");
  for (const uint32_t q : order) {
    FTQC_CHECK(generator.pauli_at(q) != 'I', "comb qubit outside support");
  }

  sim::Circuit circuit;
  circuit.ensure_qubits(std::max(ancilla, flag) + 1);
  circuit.r(ancilla);
  circuit.h(ancilla);
  if (flagged) circuit.r(flag);
  circuit.tick();
  for (size_t i = 0; i < w; ++i) {
    ft::append_controlled_pauli(circuit, ancilla, order[i],
                                generator.pauli_at(order[i]));
    circuit.tick();
    // The two flag couplings bracket comb positions 1..w-2: an ancilla X
    // fault in between fires the flag, while faults outside the bracket
    // spread to at most one data qubit and stay invisible on purpose.
    if (flagged && (i == 0 || i == w - 2)) {
      circuit.cx(ancilla, flag);
      circuit.tick();
    }
  }
  circuit.mx(ancilla);
  if (flagged) circuit.m(flag);
  circuit.tick();
  return circuit;
}

namespace {

// The generator's Paulis restricted to the comb suffix order[k..w-1]: the
// data error left by an ancilla X entering the comb at position k.
PauliString suffix_hook(const PauliString& generator,
                        const std::vector<uint32_t>& order, size_t k) {
  PauliString hook(generator.num_qubits());
  for (size_t i = k; i < order.size(); ++i) {
    hook.set_pauli(order[i], generator.pauli_at(order[i]));
  }
  return hook;
}

// splitmix64: deterministic stream for the comb-order permutation search.
uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

FlagDecodeTable::FlagDecodeTable(const codes::StabilizerCode& code)
    : code_(code) {
  FTQC_CHECK(code.num_generators() <= 64,
             "flag table keys pack the syndrome into one word");
  orders_.resize(code.num_generators());
  tables_.resize(code.num_generators());
  for (size_t g = 0; g < code.num_generators(); ++g) {
    const PauliString& generator = code.generators()[g];
    std::vector<uint32_t> order;
    for (size_t q = 0; q < code.n(); ++q) {
      if (generator.pauli_at(q) != 'I') {
        order.push_back(static_cast<uint32_t>(q));
      }
    }
    // Natural support order first; on ambiguity, deterministically permute
    // the comb until the candidate syndromes separate. Every order tried is
    // a valid circuit — the search only changes WHICH hooks are possible.
    bool built = false;
    for (int attempt = 0; attempt < 200 && !built; ++attempt) {
      if (attempt > 0) {
        // Fisher-Yates driven by splitmix64 on (generator, attempt).
        for (size_t i = order.size() - 1; i > 0; --i) {
          const uint64_t r = mix64(mix64(g * 1000003 + attempt) + i);
          std::swap(order[i], order[r % (i + 1)]);
        }
      }
      Table table;
      if (try_build(g, order, &table)) {
        orders_[g] = order;
        tables_[g] = std::move(table);
        built = true;
      }
    }
    FTQC_CHECK(built, "no unambiguous comb order found for generator");
  }
}

bool FlagDecodeTable::try_build(size_t g, const std::vector<uint32_t>& order,
                                Table* table) const {
  const PauliString& generator = code_.generators()[g];
  const size_t w = order.size();
  // Every data error a flag-firing single fault can leave behind:
  //  * identity — the fault hit the flag qubit alone (prep, measurement, or
  //    the flag side of a coupling CX);
  //  * suffix hooks H_k, k = 0..w-1 — an ancilla X between comb positions
  //    (k = 0, before the first coupling, is the full generator and so is
  //    trivially a stabilizer; it is kept for completeness);
  //  * H_k times a one-qubit Pauli on order[k-1] — the two-qubit
  //    depolarizing variants of comb gate k itself (ancilla X component
  //    plus X/Y/Z on the gate's data target).
  std::vector<PauliString> candidates;
  candidates.emplace_back(code_.n());
  for (size_t k = 0; k < w; ++k) {
    candidates.push_back(suffix_hook(generator, order, k));
  }
  for (size_t k = 1; k < w; ++k) {
    for (const char pauli : {'X', 'Y', 'Z'}) {
      PauliString e = suffix_hook(generator, order, k);
      e = e * PauliString::single(code_.n(), order[k - 1], pauli);
      candidates.push_back(std::move(e));
    }
  }

  table->clear();
  for (const PauliString& candidate : candidates) {
    const uint64_t key = code_.syndrome(candidate).to_u64();
    const auto it = table->find(key);
    if (it == table->end()) {
      table->emplace(key, candidate);
      continue;
    }
    // Same syndrome: sound only if the two candidates act identically on
    // the code space (their product is a stabilizer). Otherwise correcting
    // one when the other happened would be a logical error — reject this
    // comb order and let the constructor permute.
    if (!code_.in_stabilizer_group(it->second * candidate)) return false;
    if (candidate.weight() < it->second.weight()) it->second = candidate;
  }
  return true;
}

const PauliString* FlagDecodeTable::decode(size_t g,
                                           const gf2::BitVec& syndrome) const {
  FTQC_CHECK(g < tables_.size(), "generator index out of range");
  const auto it = tables_[g].find(syndrome.to_u64());
  return it == tables_[g].end() ? nullptr : &it->second;
}

size_t FlagDecodeTable::table_size() const {
  size_t total = 0;
  for (const Table& t : tables_) total += t.size();
  return total;
}

}  // namespace ftqc::universal
