#include <gtest/gtest.h>

#include <array>

#include "codes/library.h"
#include "ft/steane_circuits.h"
#include "gf2/hamming.h"
#include "pauli/pauli_string.h"
#include "sim/runner.h"
#include "sim/tableau_sim.h"

namespace ftqc::ft {
namespace {

using pauli::PauliString;
using sim::TableauSim;

constexpr std::array<uint32_t, 7> kBlock = {0, 1, 2, 3, 4, 5, 6};

// Places a 7-qubit code operator onto a wider register.
PauliString on_block(const PauliString& p, size_t total,
                     std::span<const uint32_t> block) {
  PauliString out(total);
  for (size_t i = 0; i < 7; ++i) out.set_pauli(block[i], p.pauli_at(i));
  out.set_phase_exponent(p.phase_exponent());
  return out;
}

void expect_in_code_space(TableauSim& sim, std::span<const uint32_t> block) {
  for (const auto& g : codes::steane().generators()) {
    bool sign = true;
    EXPECT_TRUE(sim.stabilizes(on_block(g, sim.num_qubits(), block), &sign))
        << g.to_string();
    EXPECT_FALSE(sign) << "generator must stabilize with +1: " << g.to_string();
  }
}

TEST(SteaneZeroPrep, ProducesLogicalZero) {
  TableauSim sim(7, 3);
  auto record = run_circuit(sim, steane_zero_prep(kBlock));
  expect_in_code_space(sim, kBlock);
  bool sign = true;
  EXPECT_TRUE(sim.stabilizes(
      on_block(codes::steane().logical_z(), 7, kBlock), &sign));
  EXPECT_FALSE(sign);  // +Z̄: logical |0>
}

TEST(SteanePlusPrep, ProducesLogicalPlus) {
  TableauSim sim(7, 4);
  run_circuit(sim, steane_plus_prep(kBlock));
  expect_in_code_space(sim, kBlock);
  bool sign = true;
  EXPECT_TRUE(sim.stabilizes(
      on_block(codes::steane().logical_x(), 7, kBlock), &sign));
  EXPECT_FALSE(sign);  // +X̄: logical |+> (the Steane state, Eq. 17)
}

TEST(SteaneEncoder, EncodesZeroAndOne) {
  {
    TableauSim sim(7, 5);
    run_circuit(sim, steane_encoder(kBlock));  // input |0>
    expect_in_code_space(sim, kBlock);
    bool sign = true;
    EXPECT_TRUE(sim.stabilizes(on_block(codes::steane().logical_z(), 7, kBlock),
                               &sign));
    EXPECT_FALSE(sign);
  }
  {
    TableauSim sim(7, 6);
    sim.apply_x(0);  // input |1>
    run_circuit(sim, steane_encoder(kBlock));
    expect_in_code_space(sim, kBlock);
    bool sign = false;
    EXPECT_TRUE(sim.stabilizes(
        on_block(codes::steane().logical_z(), 7, kBlock), &sign));
    EXPECT_TRUE(sign);  // -Z̄: logical |1>
  }
}

TEST(SteaneEncoder, EncodesPlusAndMinus) {
  {
    TableauSim sim(7, 7);
    sim.apply_h(0);  // input |+>
    run_circuit(sim, steane_encoder(kBlock));
    expect_in_code_space(sim, kBlock);
    bool sign = true;
    EXPECT_TRUE(sim.stabilizes(
        on_block(codes::steane().logical_x(), 7, kBlock), &sign));
    EXPECT_FALSE(sign);
  }
  {
    TableauSim sim(7, 8);
    sim.apply_x(0);
    sim.apply_h(0);  // input |->
    run_circuit(sim, steane_encoder(kBlock));
    bool sign = false;
    EXPECT_TRUE(sim.stabilizes(
        on_block(codes::steane().logical_x(), 7, kBlock), &sign));
    EXPECT_TRUE(sign);
  }
}

TEST(CssZeroPrep, WorksForHamming15) {
  const auto& code = codes::hamming15();
  std::array<uint32_t, 15> qubits{};
  for (uint32_t i = 0; i < 15; ++i) qubits[i] = i;
  TableauSim sim(15, 9);
  run_circuit(sim, css_zero_prep(gf2::hamming_check_matrix(4), qubits));
  for (const auto& g : code.generators()) {
    bool sign = true;
    EXPECT_TRUE(sim.stabilizes(g, &sign)) << g.to_string();
    EXPECT_FALSE(sign);
  }
  // Every logical qubit reads |0>.
  for (size_t i = 0; i < code.k(); ++i) {
    bool sign = true;
    EXPECT_TRUE(sim.stabilizes(code.logical_z(i), &sign));
    EXPECT_FALSE(sign);
  }
}

TEST(CatPrep, ProducesCatState) {
  TableauSim sim(5, 11);
  const std::array<uint32_t, 4> cat = {0, 1, 2, 3};
  auto record = run_circuit(sim, cat_prep_with_check(cat, 4, false));
  EXPECT_EQ(record.size(), 1u);
  EXPECT_EQ(record[0], 0);  // verification passes noiselessly
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("XXXXI")));
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("ZZIII")));
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("IZZII")));
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("IIZZI")));
}

TEST(CatPrep, ShorStateIsEvenWeightSuperposition) {
  // After the final Hadamards the state is stabilized by the parity operator
  // ZZZZ (even weight) and by the X-pair operators.
  TableauSim sim(5, 12);
  const std::array<uint32_t, 4> cat = {0, 1, 2, 3};
  run_circuit(sim, cat_prep_with_check(cat, 4, true));
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("ZZZZI")));
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("XXIII")));
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("IXXII")));
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("IIXXI")));
}

TEST(CatPrep, VerificationCatchesChainFault) {
  // An X fault on the target of the middle chain XOR spreads to two cat
  // bits; the check qubit must flag it (§3.3: first and last bits disagree).
  TableauSim sim(5, 13);
  // Rebuild the prep circuit manually with the fault inserted after CX(1,2).
  sim::Circuit c;
  for (uint32_t q = 0; q < 5; ++q) c.r(q);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.inject(2, 'X');  // the bad fault: X on qubit 2 spreads through CX(2,3)
  c.cx(2, 3);
  c.cx(0, 4);
  c.cx(3, 4);
  c.m(4);
  const auto record = run_circuit(sim, c);
  EXPECT_EQ(record[0], 1);  // flagged
}

TEST(NonFtSyndrome, MeasuresTrivialSyndromeOnCodeword) {
  TableauSim sim(8, 14);
  run_circuit(sim, steane_zero_prep(kBlock));
  const auto record = run_circuit(sim, nonft_bitflip_syndrome(kBlock, 7));
  ASSERT_EQ(record.size(), 3u);
  for (uint8_t bit : record) EXPECT_EQ(bit, 0);
}

TEST(NonFtSyndrome, DiagnosesBitFlip) {
  const gf2::Hamming743 hamming;
  for (uint32_t flipped = 0; flipped < 7; ++flipped) {
    TableauSim sim(8, 15 + flipped);
    run_circuit(sim, steane_zero_prep(kBlock));
    sim.apply_x(flipped);
    const auto record = run_circuit(sim, nonft_bitflip_syndrome(kBlock, 7));
    gf2::BitVec syn(3);
    for (size_t b = 0; b < 3; ++b) syn.set(b, record[b] != 0);
    EXPECT_EQ(hamming.error_position(syn), flipped);
  }
}

TEST(Fig4, NondestructiveParityCircuitReadsLogicalValue) {
  TableauSim sim(8, 31);
  run_circuit(sim, steane_zero_prep(kBlock));
  auto record = run_circuit(sim, nondestructive_parity(kBlock, 7));
  EXPECT_EQ(record[0], 0);
  // Flip the logical qubit (bitwise NOT) and re-measure.
  for (uint32_t q : kBlock) sim.apply_x(q);
  record = run_circuit(sim, nondestructive_parity(kBlock, 7));
  EXPECT_EQ(record[0], 1);
  // The block is preserved: still in the code space.
  expect_in_code_space(sim, kBlock);
}

TEST(Fig15, LeakDetectionDistinguishesHealthyFromLeaked) {
  {
    TableauSim sim(2, 33);
    const auto record = run_circuit(sim, leak_detection(0, 1));
    EXPECT_EQ(record[0], 1);  // healthy
  }
  {
    TableauSim sim(2, 34);
    sim.apply_x(0);  // healthy |1> data
    const auto record = run_circuit(sim, leak_detection(0, 1));
    EXPECT_EQ(record[0], 1);
  }
  {
    TableauSim sim(2, 35);
    sim.mark_leaked(0);
    const auto record = run_circuit(sim, leak_detection(0, 1));
    EXPECT_EQ(record[0], 0);  // leaked: both XORs inert
  }
}

TEST(CircuitStructure, EncoderMatchesFig3GateBudget) {
  // Fig. 3: 11 XORs and 3 Hadamard rotations.
  const auto c = steane_encoder(kBlock);
  EXPECT_EQ(c.count(sim::Gate::CX), 11u);
  EXPECT_EQ(c.count(sim::Gate::H), 3u);
}

TEST(CircuitStructure, ShorSyndromeUsesOneXorPerAncillaBit) {
  // Fig. 6 "Good!": four XORs, each with its own ancilla target.
  const gf2::Hamming743 hamming;
  const std::array<uint32_t, 4> anc = {7, 8, 9, 10};
  const auto c =
      shor_syndrome_bit(kBlock, anc, hamming.check_matrix().row(0), false);
  EXPECT_EQ(c.count(sim::Gate::CX), 4u);
  // All four XOR targets are distinct.
  std::set<uint32_t> targets;
  for (const auto& op : c.ops()) {
    if (op.gate == sim::Gate::CX) targets.insert(op.targets[1]);
  }
  EXPECT_EQ(targets.size(), 4u);
}

}  // namespace
}  // namespace ftqc::ft
