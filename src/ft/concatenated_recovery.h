#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ft/noise_injector.h"
#include "ft/recovery.h"
#include "gf2/hamming.h"
#include "sim/frame_sim.h"
#include "sim/noise_model.h"

namespace ftqc::ft {

// Physical qubits of level-1 subblock `sub` within the 49-qubit block
// starting at `base`. Shared by the serial and batch level-2 drivers.
[[nodiscard]] std::array<uint32_t, 7> level2_subblock(uint32_t base,
                                                      size_t sub);

// The level-2 |0>_code preparation circuit on a 49-qubit block at `base`:
// seven level-1 |0>_code preparations followed by the Fig. 3 structure
// applied with LOGICAL gates (bitwise H on pivot subblocks, transversal XOR
// fan-outs). One builder so the serial and batch engines replay the exact
// same circuit.
[[nodiscard]] sim::Circuit level2_zero_prep(const gf2::Hamming743& hamming,
                                            uint32_t base);

// Fault-tolerant recovery for a LEVEL-2 concatenated Steane block (§5,
// Fig. 14): 49 data qubits arranged as seven level-1 subblocks. Because the
// Steane method is transversal at every level, one 49-qubit extraction
// serves both levels simultaneously — "the quantum data processing needed to
// extract a syndrome can be carried out at all levels of the concatenated
// code simultaneously":
//
//   * the ancilla is a verified level-2 |0>_code: seven level-1 |0>_code
//     preparations followed by the Fig. 3 structure applied with LOGICAL
//     gates (bitwise H on pivot subblocks, transversal XOR fan-outs);
//   * verification compares against a second level-2 block and decodes the
//     destructive measurement hierarchically (§3.3 at the top level);
//   * one transversal-XOR extraction yields, per subblock, the level-1
//     Hamming syndrome AND the subblock's logical value, whose 7-bit word
//     gives the level-2 syndrome — corrections are then applied at both
//     levels (physical Paulis and 3-qubit logical Paulis).
//
// Under RecoveryPolicy::level2_discipline == kExRec the gadget runs the
// extended-rectangle discipline instead: after the logical fan-out layers
// of the ancilla-A preparation (and, with exrec_data_recoveries, between
// extraction and correction on the data block) a full verified level-1
// Steane recovery cycle (run_steane_cycle) is interleaved on every 7-qubit
// subblock, scrubbing physical errors before they can pair up across
// subblocks. The seven subblock recoveries are physically concurrent under
// the §6 maximal-parallelism assumption, so each accounts storage noise
// only over its own 21-qubit register; the simulation serializes them
// through one shared pair of 7-qubit scratch ancilla blocks.
//
// Register: data [0,49), ancilla A [49,98), verification ancilla B
// [98,147), level-1 scratch ancillas [147,161) (exRec only; the bare
// discipline never touches them).
class Level2Recovery {
 public:
  static constexpr size_t kBlock = 49;
  static constexpr uint32_t kScratchA = 147;
  static constexpr uint32_t kScratchB = 154;
  static constexpr uint32_t kNumQubits = 161;

  Level2Recovery(const sim::NoiseParams& noise, RecoveryPolicy policy,
                 uint64_t seed);

  void reset();
  void inject_data(uint32_t q, char pauli);
  void apply_memory_noise(double p);

  // One full two-level recovery cycle.
  void run_cycle();

  // Hierarchical ideal decode of the residual frame.
  [[nodiscard]] bool logical_x_error() const;
  [[nodiscard]] bool logical_z_error() const;
  [[nodiscard]] bool any_logical_error() const {
    return logical_x_error() || logical_z_error();
  }

  void set_injector(NoiseInjector* injector);
  [[nodiscard]] sim::FrameSim& frame() { return frame_; }

 private:
  struct DecodedSyndrome {
    // Level-1 Hamming syndrome per subblock (7 entries, 3 bits each).
    std::array<gf2::BitVec, 7> sub;
    // Level-2 Hamming syndrome over the subblock logical values.
    gf2::BitVec top;
    [[nodiscard]] bool any() const;
    [[nodiscard]] bool operator==(const DecodedSyndrome& other) const;
  };

  // exRec interleave: one verified level-1 recovery cycle per 7-qubit
  // subblock of the block starting at `base`, on the shared scratch
  // ancillas.
  void run_subblock_recoveries(uint32_t base);
  void prepare_verified_zero_ancilla();
  [[nodiscard]] DecodedSyndrome extract_syndrome(bool phase_type);
  void correct(bool phase_type, const DecodedSyndrome& syndrome);
  [[nodiscard]] bool hierarchical_decode(bool phase_type) const;

  sim::FrameSim frame_;
  sim::NoiseParams noise_;
  RecoveryPolicy policy_;
  gf2::Hamming743 hamming_;
  StochasticInjector stochastic_;
  NoiseInjector* injector_;
  std::vector<uint32_t> data_and_a_;
  std::vector<uint32_t> all_;
};

}  // namespace ftqc::ft
