#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace ftqc::decode {

// Integer edge weight between two defects, by index into the caller's defect
// list. Matching strategies see nothing but this metric, so one strategy
// serves the 2D torus, the 3D space-time graph, and any future defect graph.
using DistanceFn = std::function<size_t(size_t, size_t)>;

struct Match {
  uint32_t a;
  uint32_t b;
};

// Pairs up an even set of defects, minimizing (exactly or approximately) the
// summed metric cost. Matching is the workhorse of surface-code decoding
// (Gottesman arXiv:2210.15844 §5, Paler & Devitt arXiv:1508.03695): each
// matched pair is corrected along a geodesic between its defects, and the
// quality of the pairing sets the code's threshold.
class MatchingStrategy {
 public:
  virtual ~MatchingStrategy() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  // `num_defects` must be even; returns num_defects/2 disjoint pairs.
  [[nodiscard]] virtual std::vector<Match> match(
      size_t num_defects, const DistanceFn& distance) const = 0;
};

// Repeatedly matches the globally closest remaining pair. O(n^3), no
// optimality guarantee — on the toric code it tops out near an 8% threshold
// where true MWPM reaches ~10.3%.
class GreedyMatching final : public MatchingStrategy {
 public:
  [[nodiscard]] const char* name() const override { return "greedy"; }
  [[nodiscard]] std::vector<Match> match(
      size_t num_defects, const DistanceFn& distance) const override;
};

struct MwpmOptions {
  // Largest instance handed to the O(2^n · n) exact subset-DP. Above it the
  // defect set is first split into parity-even clusters (union-find over
  // Kruskal-ordered pair edges); each cluster is then matched exactly if it
  // fits, greedily otherwise. Capped at 26: the DP tables hold 2^n entries
  // (26 → ~600 MB transient), and the subset masks are 32-bit.
  size_t exact_limit = 16;
};

// Minimum-weight perfect matching: exact on small instances via bitmask DP
// over subsets (always matching the lowest-indexed unmatched defect), with a
// union-find clustering fallback for large ones. The fallback mirrors the
// cluster-growth idea of union-find decoders: edges are grown radius by
// radius (distance-bucketed, never globally sorted or densified) merging
// odd-parity clusters until every cluster is even, and the hard optimization
// only ever runs on a cluster-local distance matrix. For a true global
// optimum at any defect count, see BlossomMatching in decode/blossom.h.
class MwpmMatching final : public MatchingStrategy {
 public:
  explicit MwpmMatching(MwpmOptions options = {});
  [[nodiscard]] const char* name() const override { return "mwpm"; }
  [[nodiscard]] std::vector<Match> match(
      size_t num_defects, const DistanceFn& distance) const override;

 private:
  MwpmOptions options_;
};

// Summed metric cost of a pairing — the quantity MWPM minimizes, and the
// invariant property tests compare across strategies.
[[nodiscard]] size_t matching_cost(const std::vector<Match>& matches,
                                   const DistanceFn& distance);

}  // namespace ftqc::decode
