#include "sim/simd.h"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define FTQC_SIMD_X86 1
#endif

namespace ftqc::sim::simd {

namespace {

// --- The three kernel stamps (see simd_kernels_impl.inc) --------------------

#define FTQC_SIMD_NS scalar_impl
#define FTQC_SIMD_WORDS 1
#define FTQC_SIMD_TARGET
#include "sim/simd_kernels_impl.inc"
#undef FTQC_SIMD_NS
#undef FTQC_SIMD_WORDS
#undef FTQC_SIMD_TARGET

#ifdef FTQC_SIMD_X86
#define FTQC_SIMD_NS avx2_impl
#define FTQC_SIMD_WORDS 4
#define FTQC_SIMD_TARGET __attribute__((target("avx2")))
#include "sim/simd_kernels_impl.inc"
#undef FTQC_SIMD_NS
#undef FTQC_SIMD_WORDS
#undef FTQC_SIMD_TARGET

#define FTQC_SIMD_NS avx512_impl
#define FTQC_SIMD_WORDS 8
#define FTQC_SIMD_TARGET __attribute__((target("avx512f")))
#include "sim/simd_kernels_impl.inc"
#undef FTQC_SIMD_NS
#undef FTQC_SIMD_WORDS
#undef FTQC_SIMD_TARGET
#else
namespace avx2_impl = scalar_impl;
namespace avx512_impl = scalar_impl;
#endif

// --- Dispatch table ---------------------------------------------------------

struct KernelTable {
  void (*xor_into)(uint64_t*, const uint64_t*, size_t);
  void (*xor_masked_into)(uint64_t*, const uint64_t*, const uint64_t*, size_t);
  void (*xor2_into)(uint64_t*, const uint64_t*, uint64_t*, const uint64_t*,
                    size_t);
  void (*swap_words)(uint64_t*, uint64_t*, size_t);
  void (*or_into)(uint64_t*, const uint64_t*, size_t);
  void (*or_not_into)(uint64_t*, const uint64_t*, size_t);
  void (*and_into)(uint64_t*, const uint64_t*, size_t);
  void (*and_eq_into)(uint64_t*, const uint64_t*, const uint64_t*, size_t);
  void (*andnot)(uint64_t*, const uint64_t*, const uint64_t*, size_t);
  void (*blend_into)(uint64_t*, const uint64_t*, const uint64_t*, size_t);
  void (*xor_and)(uint64_t*, const uint64_t*, const uint64_t*, const uint64_t*,
                  size_t);
  void (*select3_and)(uint64_t*, const uint64_t*, const uint64_t*, uint64_t,
                      const uint64_t*, uint64_t, const uint64_t*, uint64_t,
                      size_t);
  void (*hamming7_decode)(const uint64_t* const[7], const uint8_t[3], bool,
                          uint64_t*, size_t);
  void (*or_rows_masked)(const uint64_t*, size_t, const uint64_t*, uint64_t*,
                         size_t);
  void (*log_unit)(double*, size_t);
};

#define FTQC_SIMD_TABLE(ns)                                            \
  KernelTable {                                                        \
    ns::xor_into, ns::xor_masked_into, ns::xor2_into, ns::swap_words,  \
        ns::or_into, ns::or_not_into, ns::and_into, ns::and_eq_into,   \
        ns::andnot, ns::blend_into, ns::xor_and, ns::select3_and,      \
        ns::hamming7_decode, ns::or_rows_masked, ns::log_unit          \
  }

const KernelTable kTables[3] = {
    FTQC_SIMD_TABLE(scalar_impl),
    FTQC_SIMD_TABLE(avx2_impl),
    FTQC_SIMD_TABLE(avx512_impl),
};
#undef FTQC_SIMD_TABLE

Level detect_max_level() {
#ifdef FTQC_SIMD_X86
  // avx512bw is what makes 512-bit integer lane ops first-class; f alone
  // covers the 64-bit XOR/AND ops used here, but gate on both so the level
  // only claims hardware that runs every kernel natively.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    return Level::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

Level initial_level() {
  Level level = detect_max_level();
  if (const char* env = std::getenv("FTQC_SIMD")) {
    if (const auto parsed = parse_level(env)) {
      // The env var caps the dispatch; asking for more than the CPU has
      // falls back to the best supported level rather than crashing later.
      if (*parsed < level) level = *parsed;
    }
  }
  return level;
}

// -1 = not yet resolved; otherwise a Level. set_level() writes it directly.
std::atomic<int> g_active_level{-1};

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "?";
}

std::optional<Level> parse_level(std::string_view name) {
  if (name == "scalar") return Level::kScalar;
  if (name == "avx2") return Level::kAvx2;
  if (name == "avx512") return Level::kAvx512;
  return std::nullopt;
}

size_t level_words(Level level) {
  switch (level) {
    case Level::kScalar: return 1;
    case Level::kAvx2: return 4;
    case Level::kAvx512: return 8;
  }
  return 1;
}

Level max_supported_level() {
  static const Level level = detect_max_level();
  return level;
}

Level active_level() {
  int lv = g_active_level.load(std::memory_order_relaxed);
  if (lv < 0) {
    lv = static_cast<int>(initial_level());
    g_active_level.store(lv, std::memory_order_relaxed);
  }
  return static_cast<Level>(lv);
}

Level set_level(Level level) {
  if (level > max_supported_level()) level = max_supported_level();
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return level;
}

namespace {
inline const KernelTable& table() {
  return kTables[static_cast<int>(active_level())];
}
}  // namespace

void xor_into(uint64_t* dst, const uint64_t* src, size_t words) {
  table().xor_into(dst, src, words);
}
void xor_masked_into(uint64_t* dst, const uint64_t* src, const uint64_t* mask,
                     size_t words) {
  table().xor_masked_into(dst, src, mask, words);
}
void xor2_into(uint64_t* d1, const uint64_t* s1, uint64_t* d2,
               const uint64_t* s2, size_t words) {
  table().xor2_into(d1, s1, d2, s2, words);
}
void swap_words(uint64_t* a, uint64_t* b, size_t words) {
  table().swap_words(a, b, words);
}
void or_into(uint64_t* dst, const uint64_t* src, size_t words) {
  table().or_into(dst, src, words);
}
void or_not_into(uint64_t* dst, const uint64_t* src, size_t words) {
  table().or_not_into(dst, src, words);
}
void and_into(uint64_t* dst, const uint64_t* src, size_t words) {
  table().and_into(dst, src, words);
}
void and_eq_into(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                 size_t words) {
  table().and_eq_into(dst, a, b, words);
}
void andnot(uint64_t* dst, const uint64_t* a, const uint64_t* b,
            size_t words) {
  table().andnot(dst, a, b, words);
}
void blend_into(uint64_t* dst, const uint64_t* src, const uint64_t* mask,
                size_t words) {
  table().blend_into(dst, src, mask, words);
}
void xor_and(uint64_t* dst, const uint64_t* a, const uint64_t* b,
             const uint64_t* mask, size_t words) {
  table().xor_and(dst, a, b, mask, words);
}
void select3_and(uint64_t* out, const uint64_t* act, const uint64_t* s0,
                 uint64_t i0, const uint64_t* s1, uint64_t i1,
                 const uint64_t* s2, uint64_t i2, size_t words) {
  table().select3_and(out, act, s0, i0, s1, i1, s2, i2, words);
}
void hamming7_decode(const uint64_t* const rows[7], const uint8_t syn_mask[3],
                     bool logical, uint64_t* out, size_t words) {
  table().hamming7_decode(rows, syn_mask, logical, out, words);
}
void or_rows_masked(const uint64_t* rows, size_t num_rows,
                    const uint64_t* active, uint64_t* out, size_t words) {
  table().or_rows_masked(rows, num_rows, active, out, words);
}
void log_unit(double* values, size_t n) { table().log_unit(values, n); }

}  // namespace ftqc::sim::simd
