#pragma once

#include <functional>

#include "ft/noise_injector.h"

namespace ftqc::ft {

// Exhaustive fault enumeration over a gadget experiment. The experiment is a
// callable that executes one full gadget run against the given injector and
// returns true when the run FAILED (by whatever criterion the experiment
// defines, e.g. "a logical error survives ideal decoding").
//
// This realizes the paper's order-ε analysis: a gadget is fault tolerant
// when no single fault fails it (§3), and its level-1 failure coefficient is
// the weighted count of failing fault *pairs* (Eq. 33's "21").
using GadgetExperiment = std::function<bool(NoiseInjector&)>;

// Which location kinds can fault (mirrors which ε knobs are nonzero).
using KindFilter = std::function<bool(LocationKind)>;

[[nodiscard]] inline KindFilter all_kinds() {
  return [](LocationKind) { return true; };
}
[[nodiscard]] inline KindFilter gate_kinds_only() {
  return [](LocationKind k) { return k != LocationKind::kStorage; };
}

struct SingleFaultScan {
  size_t num_locations = 0;       // fault opportunities on the noiseless path
  size_t faults_tried = 0;        // (location, variant) pairs executed
  size_t faults_failing = 0;      // of those, how many failed the gadget
  double weighted_failing = 0.0;  // Σ variant_weight over failing faults:
                                  // the coefficient of ε¹ in P(fail)
};

[[nodiscard]] SingleFaultScan scan_single_faults(const GadgetExperiment& run,
                                                 const KindFilter& filter);

struct PairFaultScan {
  size_t pairs_tried = 0;
  size_t pairs_failing = 0;
  double weighted_failing = 0.0;  // Σ w1·w2 over failing pairs: the ε²
                                  // coefficient (the "A" of p1 = A ε²)
  double weighted_total = 0.0;    // Σ w1·w2 over all pairs (normalization)
};

// Enumerates ordered pairs loc1 < loc2 where loc2 ranges over the execution
// path taken once the first fault is armed (fault-dependent control flow —
// ancilla retries, syndrome repeats — lengthens the path; those locations
// are enumerated too).
[[nodiscard]] PairFaultScan scan_fault_pairs(const GadgetExperiment& run,
                                             const KindFilter& filter);

}  // namespace ftqc::ft
