#include "sim/batch_frame_sim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "sim/simd.h"

namespace ftqc::sim {

BatchFrameSim::BatchFrameSim(size_t num_qubits, size_t shots, uint64_t seed)
    : n_(num_qubits),
      shots_((shots + 63) & ~size_t{63}),
      words_(shots_ / 64),
      frames_(2 * num_qubits * words_, 0),
      heralds_(num_qubits * words_, 0),
      record_(words_),
      abort_(words_, 0),
      hit_(words_, 0),
      hit_dirty_(words_ + 1, 0),
      rng_(seed) {}

void BatchFrameSim::clear() {
  std::fill(frames_.begin(), frames_.end(), 0);
  std::fill(heralds_.begin(), heralds_.end(), 0);
  std::fill(abort_.begin(), abort_.end(), 0);
  record_.clear();
}

void BatchFrameSim::clear_heralds() {
  std::fill(heralds_.begin(), heralds_.end(), 0);
}

void BatchFrameSim::clear_record() { record_.clear(); }

void BatchFrameSim::apply_h(size_t q) {
  simd::swap_words(x_word(q), z_word(q), words_);
}

void BatchFrameSim::apply_s(size_t q) {
  simd::xor_into(z_word(q), x_word(q), words_);
}

void BatchFrameSim::apply_cx(size_t control, size_t target) {
  simd::xor2_into(x_word(target), x_word(control), z_word(control),
                  z_word(target), words_);
}

void BatchFrameSim::apply_cz(size_t a, size_t b) {
  simd::xor2_into(z_word(b), x_word(a), z_word(a), x_word(b), words_);
}

void BatchFrameSim::apply_swap(size_t a, size_t b) {
  simd::swap_words(x_word(a), x_word(b), words_);
  simd::swap_words(z_word(a), z_word(b), words_);
}

void BatchFrameSim::refill_skip_log() {
  // 1-u is uniform in (0, 1], exactly the log_unit kernel's domain. The
  // tiny rounding difference vs log1p(-u) only matters where the skip is
  // ~0 anyway; the skip distribution is unchanged to ~1e-10 relative.
  // Draw through a local copy of the generator: the tight loop then keeps
  // the xoshiro state in registers instead of round-tripping four members
  // through memory per draw. Same stream, same results.
  Rng rng = rng_;
  for (size_t i = 0; i < kFillBlock; ++i) {
    skip_log_[i] = 1.0 - rng.next_double();
  }
  rng_ = rng;
  simd::log_unit(skip_log_.data(), kFillBlock);
  skip_pos_ = 0;
}

BatchFrameSim::HitWords BatchFrameSim::fill_hit_words(double p) {
  if (p <= 0) return {};
  // Undo the previous fill: only the words it actually set. At the sparse p
  // this library simulates (1e-5..1e-2) that is a handful of words, where a
  // whole-buffer std::fill used to dominate the channel cost.
  if (hit_dense_) {
    std::fill(hit_.begin(), hit_.end(), 0);
    hit_dense_ = false;
  } else {
    for (size_t i = 0; i < hit_dirty_len_; ++i) hit_[hit_dirty_[i]] = 0;
  }
  hit_dirty_len_ = 0;
  if (p >= 1) {
    std::fill(hit_.begin(), hit_.end(), ~uint64_t{0});
    hit_dense_ = true;
    return {hit_.data(), nullptr, 0, true};
  }
  // Sample the set-bit positions via geometric skipping over the whole shot
  // register: ~shots*p skip draws per channel call (precomputed in blocks,
  // see next_skip_log), not one per word (the original per-word restart)
  // and not one per bit. The cache is consumed block-wise with all loop
  // state in locals — calling the out-of-line refill from inside the hot
  // loop would force the members to be reloaded on every iteration.
  const double inv = 1.0 / std::log1p(-p);
  const auto total = static_cast<double>(shots_);
  uint64_t* const hit = hit_.data();
  uint32_t* const dirty = hit_dirty_.data();
  size_t ndirty = 0;
  uint32_t last = ~uint32_t{0};
  double position = -1.0;  // the +1 below makes the first skip start at 0
  for (;;) {
    if (skip_pos_ == kFillBlock) refill_skip_log();
    const double* const cache = skip_log_.data() + skip_pos_;
    const size_t avail = kFillBlock - skip_pos_;
    // Two passes per block. The skip lengths are elementwise in the cached
    // logs (no loop-carried dependency, so this pass vectorizes); the walk
    // below then carries only a bare add chain per hit instead of
    // mul+floor+add, which at dense p was the fill's critical path.
    double skips[kFillBlock];
    for (size_t i = 0; i < avail; ++i) {
      skips[i] = 1.0 + std::floor(cache[i] * inv);
    }
    size_t i = 0;
    while (i < avail) {
      position += skips[i++];
      if (position >= total) break;
      const auto bit = static_cast<size_t>(position);
      const auto word = static_cast<uint32_t>(bit >> 6);
      hit[word] |= uint64_t{1} << (bit & 63);
      // Branchless dirty append: at dense p consecutive hits often share a
      // word and a conditional push mispredicts ~25% of the time there.
      dirty[ndirty] = word;  // positions ascend, so words ascend too
      ndirty += word != last ? 1 : 0;
      last = word;
    }
    skip_pos_ += i;
    if (position >= total) break;
  }
  hit_dirty_len_ = ndirty;
  if (ndirty == 0) return {};
  return {hit, dirty, ndirty, false};
}

void BatchFrameSim::depolarize1(size_t q, double p, const uint64_t* lane_mask) {
  const HitWords hits = fill_hit_words(p);
  if (!hits) return;
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  Rng rng = rng_;  // register-resident draws in the hot loop (same stream)
  const auto flavor_word = [&](size_t w) {
    uint64_t pending = hits.bits[w];
    if (lane_mask != nullptr) pending &= lane_mask[w];
    // Draw the X/Y/Z flavor for every hit lane of this word at once: two
    // random bitplanes spell one of four outcomes per lane, the all-ones
    // pair is rejected and redrawn, so X, Y and Z stay exactly equiprobable
    // at ~2.7 word draws per word instead of one Lemire draw per hit lane.
    while (pending != 0) {
      const uint64_t a = rng.next_u64();
      const uint64_t b = rng.next_u64();
      const uint64_t valid = pending & ~(a & b);
      xs[w] ^= valid & ~a;       // a=0: X (b=0) or Y (b=1) flips the X frame
      zs[w] ^= valid & (a ^ b);  // Y (01) and Z (10) flip the Z frame
      pending &= ~valid;
    }
  };
  if (hits.dense) {
    for (size_t w = 0; w < words_; ++w) flavor_word(w);
  } else {
    // The dirty list is known up front, so prefetch the frame words a few
    // hits ahead: at large shot counts each row is tens of KB and the
    // random-word touches otherwise serialize on cache misses.
    for (size_t i = 0; i < hits.num_dirty; ++i) {
      if (i + 4 < hits.num_dirty) {
        const uint32_t pw = hits.dirty[i + 4];
        __builtin_prefetch(&xs[pw], 1);
        __builtin_prefetch(&zs[pw], 1);
      }
      flavor_word(hits.dirty[i]);
    }
  }
  rng_ = rng;
}

void BatchFrameSim::depolarize2(size_t a, size_t b, double p,
                                const uint64_t* lane_mask) {
  const HitWords hits = fill_hit_words(p);
  if (!hits) return;
  uint64_t* xa = x_word(a);
  uint64_t* za = z_word(a);
  uint64_t* xb = x_word(b);
  uint64_t* zb = z_word(b);
  Rng rng = rng_;  // register-resident draws in the hot loop (same stream)
  const auto flavor_word = [&](size_t w) {
    uint64_t pending = hits.bits[w];
    if (lane_mask != nullptr) pending &= lane_mask[w];
    // Four random bitplanes pick one of the 16 two-qubit Paulis per lane;
    // rejecting the all-zero (identity) plane leaves the 15 non-identity
    // flavors exactly equiprobable, drawn word-wide instead of per lane.
    while (pending != 0) {
      const uint64_t rxa = rng.next_u64();
      const uint64_t rza = rng.next_u64();
      const uint64_t rxb = rng.next_u64();
      const uint64_t rzb = rng.next_u64();
      const uint64_t valid = pending & (rxa | rza | rxb | rzb);
      xa[w] ^= valid & rxa;
      za[w] ^= valid & rza;
      xb[w] ^= valid & rxb;
      zb[w] ^= valid & rzb;
      pending &= ~valid;
    }
  };
  if (hits.dense) {
    for (size_t w = 0; w < words_; ++w) flavor_word(w);
  } else {
    for (size_t i = 0; i < hits.num_dirty; ++i) {
      if (i + 4 < hits.num_dirty) {
        const uint32_t pw = hits.dirty[i + 4];
        __builtin_prefetch(&xa[pw], 1);
        __builtin_prefetch(&za[pw], 1);
        __builtin_prefetch(&xb[pw], 1);
        __builtin_prefetch(&zb[pw], 1);
      }
      flavor_word(hits.dirty[i]);
    }
  }
  rng_ = rng;
}

void BatchFrameSim::x_error(size_t q, double p, const uint64_t* lane_mask) {
  const HitWords hits = fill_hit_words(p);
  if (!hits) return;
  uint64_t* xs = x_word(q);
  if (hits.dense) {
    if (lane_mask != nullptr) {
      simd::xor_masked_into(xs, hits.bits, lane_mask, words_);
    } else {
      simd::xor_into(xs, hits.bits, words_);
    }
    return;
  }
  for (size_t i = 0; i < hits.num_dirty; ++i) {
    if (i + 8 < hits.num_dirty) __builtin_prefetch(&xs[hits.dirty[i + 8]], 1);
    const uint32_t w = hits.dirty[i];
    xs[w] ^= lane_mask != nullptr ? hits.bits[w] & lane_mask[w] : hits.bits[w];
  }
}

void BatchFrameSim::y_error(size_t q, double p, const uint64_t* lane_mask) {
  const HitWords hits = fill_hit_words(p);
  if (!hits) return;
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  if (hits.dense) {
    if (lane_mask != nullptr) {
      simd::xor_masked_into(xs, hits.bits, lane_mask, words_);
      simd::xor_masked_into(zs, hits.bits, lane_mask, words_);
    } else {
      simd::xor_into(xs, hits.bits, words_);
      simd::xor_into(zs, hits.bits, words_);
    }
    return;
  }
  for (size_t i = 0; i < hits.num_dirty; ++i) {
    if (i + 8 < hits.num_dirty) {
      const uint32_t pw = hits.dirty[i + 8];
      __builtin_prefetch(&xs[pw], 1);
      __builtin_prefetch(&zs[pw], 1);
    }
    const uint32_t w = hits.dirty[i];
    const uint64_t hit =
        lane_mask != nullptr ? hits.bits[w] & lane_mask[w] : hits.bits[w];
    xs[w] ^= hit;
    zs[w] ^= hit;
  }
}

void BatchFrameSim::z_error(size_t q, double p, const uint64_t* lane_mask) {
  const HitWords hits = fill_hit_words(p);
  if (!hits) return;
  uint64_t* zs = z_word(q);
  if (hits.dense) {
    if (lane_mask != nullptr) {
      simd::xor_masked_into(zs, hits.bits, lane_mask, words_);
    } else {
      simd::xor_into(zs, hits.bits, words_);
    }
    return;
  }
  for (size_t i = 0; i < hits.num_dirty; ++i) {
    if (i + 8 < hits.num_dirty) __builtin_prefetch(&zs[hits.dirty[i + 8]], 1);
    const uint32_t w = hits.dirty[i];
    zs[w] ^= lane_mask != nullptr ? hits.bits[w] & lane_mask[w] : hits.bits[w];
  }
}

void BatchFrameSim::pauli_channel1(size_t q, double px, double py, double pz,
                                   const uint64_t* lane_mask) {
  const double total = px + py + pz;
  const HitWords hits = fill_hit_words(total);
  if (!hits) return;
  const double fx = px / total;
  const double fy = py / total;
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  Rng rng = rng_;  // register-resident draws in the hot loop (same stream)
  // Per-hit-lane axis draw: the bias fractions are arbitrary doubles, so
  // (unlike the equiprobable depolarize) there is no exact word-wide
  // bitplane trick — but hits are O(shots * p), so per-hit draws cost what
  // the fill already does.
  const auto flavor_word = [&](size_t w) {
    uint64_t pending = hits.bits[w];
    if (lane_mask != nullptr) pending &= lane_mask[w];
    while (pending != 0) {
      const uint64_t lane = uint64_t{1} << __builtin_ctzll(pending);
      pending &= pending - 1;
      const double u = rng.next_double();
      if (u < fx) {
        xs[w] ^= lane;
      } else if (u < fx + fy) {
        xs[w] ^= lane;
        zs[w] ^= lane;
      } else {
        zs[w] ^= lane;
      }
    }
  };
  if (hits.dense) {
    for (size_t w = 0; w < words_; ++w) flavor_word(w);
  } else {
    for (size_t i = 0; i < hits.num_dirty; ++i) flavor_word(hits.dirty[i]);
  }
  rng_ = rng;
}

void BatchFrameSim::pauli_channel2(size_t a, size_t b, double p, double fx,
                                   double fy, const uint64_t* lane_mask) {
  const HitWords hits = fill_hit_words(p);
  if (!hits) return;
  uint64_t* xa = x_word(a);
  uint64_t* za = z_word(a);
  uint64_t* xb = x_word(b);
  uint64_t* zb = z_word(b);
  const double wx = 3.0 * fx;
  const double wy = 3.0 * fy;
  Rng rng = rng_;
  // Same conditioned product draw as FrameSim::pauli_channel2, per hit lane.
  const auto draw_code = [&]() -> uint64_t {
    const double u = rng.next_double() * 4.0;
    if (u < 1.0) return 0;
    if (u < 1.0 + wx) return 1;
    if (u < 1.0 + wx + wy) return 3;
    return 2;
  };
  const auto flavor_word = [&](size_t w) {
    uint64_t pending = hits.bits[w];
    if (lane_mask != nullptr) pending &= lane_mask[w];
    while (pending != 0) {
      const uint64_t lane = uint64_t{1} << __builtin_ctzll(pending);
      pending &= pending - 1;
      uint64_t ca = 0, cb = 0;
      do {
        ca = draw_code();
        cb = draw_code();
      } while (ca == 0 && cb == 0);
      if (ca & 1) xa[w] ^= lane;
      if (ca & 2) za[w] ^= lane;
      if (cb & 1) xb[w] ^= lane;
      if (cb & 2) zb[w] ^= lane;
    }
  };
  if (hits.dense) {
    for (size_t w = 0; w < words_; ++w) flavor_word(w);
  } else {
    for (size_t i = 0; i < hits.num_dirty; ++i) flavor_word(hits.dirty[i]);
  }
  rng_ = rng;
}

void BatchFrameSim::erase_error(size_t q, double p, const uint64_t* lane_mask) {
  const HitWords hits = fill_hit_words(p);
  if (!hits) return;
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  uint64_t* hs = herald_word_mut(q);
  Rng rng = rng_;
  // Reset-to-mixed per hit lane: herald bit set, frame bits REPLACED by
  // fresh uniform random (not XORed — the twirl forgets the old frame).
  // Two word draws per dirty word cover all 64 lanes at once.
  const auto erase_word = [&](size_t w) {
    uint64_t hit = hits.bits[w];
    if (lane_mask != nullptr) hit &= lane_mask[w];
    if (hit == 0) return;
    hs[w] |= hit;
    const uint64_t rx = rng.next_u64();
    const uint64_t rz = rng.next_u64();
    xs[w] = (xs[w] & ~hit) | (rx & hit);
    zs[w] = (zs[w] & ~hit) | (rz & hit);
  };
  if (hits.dense) {
    for (size_t w = 0; w < words_; ++w) erase_word(w);
  } else {
    for (size_t i = 0; i < hits.num_dirty; ++i) erase_word(hits.dirty[i]);
  }
  rng_ = rng;
}

void BatchFrameSim::mark_erased_masked(size_t q, const uint64_t* lane_mask) {
  simd::or_into(herald_word_mut(q), lane_mask, words_);
}

void BatchFrameSim::inject_x(size_t q) {
  uint64_t* xs = x_word(q);
  for (size_t w = 0; w < words_; ++w) xs[w] ^= ~uint64_t{0};
}

void BatchFrameSim::inject_y(size_t q) {
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) {
    xs[w] ^= ~uint64_t{0};
    zs[w] ^= ~uint64_t{0};
  }
}

void BatchFrameSim::inject_z(size_t q) {
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) zs[w] ^= ~uint64_t{0};
}

void BatchFrameSim::inject_x_masked(size_t q, const uint64_t* lane_mask) {
  simd::xor_into(x_word(q), lane_mask, words_);
}

void BatchFrameSim::inject_y_masked(size_t q, const uint64_t* lane_mask) {
  simd::xor_into(x_word(q), lane_mask, words_);
  simd::xor_into(z_word(q), lane_mask, words_);
}

void BatchFrameSim::inject_z_masked(size_t q, const uint64_t* lane_mask) {
  simd::xor_into(z_word(q), lane_mask, words_);
}

void BatchFrameSim::randomize_gauge(uint64_t* component) {
  Rng rng = rng_;  // register-resident draws in the hot loop (same stream)
  for (size_t w = 0; w < words_; ++w) component[w] ^= rng.next_u64();
  rng_ = rng;
}

size_t BatchFrameSim::measure_z(size_t q) {
  record_.append_row(x_word(q));
  // Collapse gauge: the post-measurement Z frame is unobservable. One fresh
  // random bit per lane (FrameSim draws one bit per shot).
  randomize_gauge(z_word(q));
  return record_.size() - 1;
}

size_t BatchFrameSim::measure_x(size_t q) {
  record_.append_row(z_word(q));
  randomize_gauge(x_word(q));
  return record_.size() - 1;
}

size_t BatchFrameSim::measure_reset(size_t q) {
  record_.append_row(x_word(q));
  reset(q);
  return record_.size() - 1;
}

void BatchFrameSim::reset(size_t q) {
  std::fill_n(x_word(q), words_, 0);
  std::fill_n(z_word(q), words_, 0);
  // A freshly prepared qubit is not erased: prep-circuit R gates clear the
  // herald plane, which is what lets retry loops re-arm lanes in place.
  std::fill_n(herald_word_mut(q), words_, 0);
}

void BatchFrameSim::classical_x(size_t q, size_t record_index) {
  inject_x_masked(q, record_.row(record_index));
}

void BatchFrameSim::classical_y(size_t q, size_t record_index) {
  inject_y_masked(q, record_.row(record_index));
}

void BatchFrameSim::classical_z(size_t q, size_t record_index) {
  inject_z_masked(q, record_.row(record_index));
}

void BatchFrameSim::discard_where(size_t record_index, bool value) {
  const uint64_t* row = record_.row(record_index);
  if (value) {
    simd::or_into(abort_.data(), row, words_);
  } else {
    simd::or_not_into(abort_.data(), row, words_);
  }
}

void BatchFrameSim::discard_lanes(const uint64_t* lane_mask) {
  simd::or_into(abort_.data(), lane_mask, words_);
}

size_t BatchFrameSim::num_kept() const {
  size_t discarded = 0;
  for (uint64_t w : abort_) discarded += __builtin_popcountll(w);
  return shots_ - discarded;
}

void BatchFrameSim::run(const Circuit& circuit) {
  FTQC_CHECK(circuit.num_qubits() <= n_, "circuit larger than frame register");
  const size_t record_base = record_.size();
  const auto cond_row = [&](const Operation& op) -> size_t {
    const size_t row = record_base + static_cast<size_t>(op.cond);
    FTQC_CHECK(row < record_.size(),
               "conditional references future measurement");
    return row;
  };
  for (const Operation& op : circuit.ops()) {
    if (op.cond >= 0) {
      // Only Pauli feedforward can be bit-sliced: a conditional Clifford
      // would need a different frame map per lane.
      switch (op.gate) {
        case Gate::X: classical_x(op.targets[0], cond_row(op)); continue;
        case Gate::Y: classical_y(op.targets[0], cond_row(op)); continue;
        case Gate::Z: classical_z(op.targets[0], cond_row(op)); continue;
        default:
          FTQC_CHECK(false,
                     std::string("BatchFrameSim feedforward supports only "
                                 "Pauli corrections, got ") +
                         gate_name(op.gate));
      }
    }
    switch (op.gate) {
      case Gate::I:
      case Gate::TICK:
        break;
      case Gate::X:
      case Gate::Y:
      case Gate::Z:
        break;  // deterministic Paulis shift the reference, not the frame
      case Gate::H: apply_h(op.targets[0]); break;
      case Gate::S:
      case Gate::S_DAG: apply_s(op.targets[0]); break;
      case Gate::CX: apply_cx(op.targets[0], op.targets[1]); break;
      case Gate::CZ: apply_cz(op.targets[0], op.targets[1]); break;
      case Gate::SWAP: apply_swap(op.targets[0], op.targets[1]); break;
      case Gate::M: measure_z(op.targets[0]); break;
      case Gate::MX: measure_x(op.targets[0]); break;
      case Gate::MR: measure_reset(op.targets[0]); break;
      case Gate::R: reset(op.targets[0]); break;
      case Gate::DEPOLARIZE1: depolarize1(op.targets[0], op.arg); break;
      case Gate::DEPOLARIZE2:
        depolarize2(op.targets[0], op.targets[1], op.arg);
        break;
      case Gate::X_ERROR: x_error(op.targets[0], op.arg); break;
      case Gate::Y_ERROR: y_error(op.targets[0], op.arg); break;
      case Gate::Z_ERROR: z_error(op.targets[0], op.arg); break;
      case Gate::PAULI_CHANNEL1:
        pauli_channel1(op.targets[0], op.arg, op.arg2, op.arg3);
        break;
      case Gate::PAULI_CHANNEL2:
        pauli_channel2(op.targets[0], op.targets[1], op.arg, op.arg2,
                       op.arg3);
        break;
      case Gate::ERASE: erase_error(op.targets[0], op.arg); break;
      // Injections flip (not set) the frame, matching FrameSim::inject_*:
      // two injections of the same Pauli cancel.
      case Gate::INJECT_X: inject_x(op.targets[0]); break;
      case Gate::INJECT_Y: inject_y(op.targets[0]); break;
      case Gate::INJECT_Z: inject_z(op.targets[0]); break;
      default:
        FTQC_CHECK(false, std::string("BatchFrameSim cannot run gate ") +
                              gate_name(op.gate));
    }
  }
}

}  // namespace ftqc::sim
