#include "sim/batch_frame_sim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ftqc::sim {

BatchFrameSim::BatchFrameSim(size_t num_qubits, size_t shots, uint64_t seed)
    : n_(num_qubits),
      shots_((shots + 63) & ~size_t{63}),
      words_(shots_ / 64),
      frames_(2 * num_qubits * words_, 0),
      record_(words_),
      abort_(words_, 0),
      hit_(words_, 0),
      rng_(seed) {}

void BatchFrameSim::clear() {
  std::fill(frames_.begin(), frames_.end(), 0);
  std::fill(abort_.begin(), abort_.end(), 0);
  record_.clear();
}

void BatchFrameSim::clear_record() { record_.clear(); }

void BatchFrameSim::apply_h(size_t q) {
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) std::swap(xs[w], zs[w]);
}

void BatchFrameSim::apply_s(size_t q) {
  const uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) zs[w] ^= xs[w];
}

void BatchFrameSim::apply_cx(size_t control, size_t target) {
  const uint64_t* xc = x_word(control);
  uint64_t* xt = x_word(target);
  uint64_t* zc = z_word(control);
  const uint64_t* zt = z_word(target);
  for (size_t w = 0; w < words_; ++w) {
    xt[w] ^= xc[w];
    zc[w] ^= zt[w];
  }
}

void BatchFrameSim::apply_cz(size_t a, size_t b) {
  const uint64_t* xa = x_word(a);
  const uint64_t* xb = x_word(b);
  uint64_t* za = z_word(a);
  uint64_t* zb = z_word(b);
  for (size_t w = 0; w < words_; ++w) {
    zb[w] ^= xa[w];
    za[w] ^= xb[w];
  }
}

void BatchFrameSim::apply_swap(size_t a, size_t b) {
  uint64_t* xa = x_word(a);
  uint64_t* xb = x_word(b);
  uint64_t* za = z_word(a);
  uint64_t* zb = z_word(b);
  for (size_t w = 0; w < words_; ++w) {
    std::swap(xa[w], xb[w]);
    std::swap(za[w], zb[w]);
  }
}

const uint64_t* BatchFrameSim::fill_hit_words(double p) {
  if (p <= 0) return nullptr;
  if (p >= 1) {
    std::fill(hit_.begin(), hit_.end(), ~uint64_t{0});
    return hit_.data();
  }
  std::fill(hit_.begin(), hit_.end(), 0);
  // Sample the set-bit positions via geometric skipping over the whole shot
  // register: for the small p of this library (1e-5..1e-2) this draws
  // ~shots*p + 1 uniforms per channel call, not one per word (the previous
  // per-word restart) and not one per bit.
  const double log1mp = std::log1p(-p);
  const auto total = static_cast<double>(shots_);
  double position = std::floor(std::log1p(-rng_.next_double()) / log1mp);
  while (position < total) {
    const auto bit = static_cast<size_t>(position);
    hit_[bit >> 6] |= uint64_t{1} << (bit & 63);
    position += 1 + std::floor(std::log1p(-rng_.next_double()) / log1mp);
  }
  return hit_.data();
}

void BatchFrameSim::depolarize1(size_t q, double p, const uint64_t* lane_mask) {
  const uint64_t* hits = fill_hit_words(p);
  if (hits == nullptr) return;
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) {
    uint64_t hit = hits[w];
    if (lane_mask != nullptr) hit &= lane_mask[w];
    if (hit == 0) continue;
    // Hit lanes are sparse at this library's error rates, so picking the
    // X/Y/Z flavor per lane keeps the three exactly equiprobable.
    while (hit != 0) {
      const int lane = __builtin_ctzll(hit);
      hit &= hit - 1;
      const uint64_t bit = uint64_t{1} << lane;
      switch (rng_.next_below(3)) {
        case 0: xs[w] ^= bit; break;
        case 1: xs[w] ^= bit; zs[w] ^= bit; break;
        default: zs[w] ^= bit; break;
      }
    }
  }
}

void BatchFrameSim::depolarize2(size_t a, size_t b, double p,
                                const uint64_t* lane_mask) {
  const uint64_t* hits = fill_hit_words(p);
  if (hits == nullptr) return;
  uint64_t* xa = x_word(a);
  uint64_t* za = z_word(a);
  uint64_t* xb = x_word(b);
  uint64_t* zb = z_word(b);
  for (size_t w = 0; w < words_; ++w) {
    uint64_t hit = hits[w];
    if (lane_mask != nullptr) hit &= lane_mask[w];
    if (hit == 0) continue;
    // Per hit lane pick one of 15 non-identity 2-qubit Paulis. The lanes are
    // sparse at our error rates, so a per-bit loop is fine here.
    while (hit != 0) {
      const int lane = __builtin_ctzll(hit);
      hit &= hit - 1;
      const uint64_t which = rng_.next_below(15) + 1;
      const uint64_t bit = uint64_t{1} << lane;
      if (which & 1) xa[w] ^= bit;
      if (which & 2) za[w] ^= bit;
      if (which & 4) xb[w] ^= bit;
      if (which & 8) zb[w] ^= bit;
    }
  }
}

void BatchFrameSim::x_error(size_t q, double p, const uint64_t* lane_mask) {
  const uint64_t* hits = fill_hit_words(p);
  if (hits == nullptr) return;
  uint64_t* xs = x_word(q);
  for (size_t w = 0; w < words_; ++w) {
    uint64_t hit = hits[w];
    if (lane_mask != nullptr) hit &= lane_mask[w];
    xs[w] ^= hit;
  }
}

void BatchFrameSim::y_error(size_t q, double p, const uint64_t* lane_mask) {
  const uint64_t* hits = fill_hit_words(p);
  if (hits == nullptr) return;
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) {
    uint64_t hit = hits[w];
    if (lane_mask != nullptr) hit &= lane_mask[w];
    xs[w] ^= hit;
    zs[w] ^= hit;
  }
}

void BatchFrameSim::z_error(size_t q, double p, const uint64_t* lane_mask) {
  const uint64_t* hits = fill_hit_words(p);
  if (hits == nullptr) return;
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) {
    uint64_t hit = hits[w];
    if (lane_mask != nullptr) hit &= lane_mask[w];
    zs[w] ^= hit;
  }
}

void BatchFrameSim::inject_x(size_t q) {
  uint64_t* xs = x_word(q);
  for (size_t w = 0; w < words_; ++w) xs[w] ^= ~uint64_t{0};
}

void BatchFrameSim::inject_y(size_t q) {
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) {
    xs[w] ^= ~uint64_t{0};
    zs[w] ^= ~uint64_t{0};
  }
}

void BatchFrameSim::inject_z(size_t q) {
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) zs[w] ^= ~uint64_t{0};
}

void BatchFrameSim::inject_x_masked(size_t q, const uint64_t* lane_mask) {
  uint64_t* xs = x_word(q);
  for (size_t w = 0; w < words_; ++w) xs[w] ^= lane_mask[w];
}

void BatchFrameSim::inject_y_masked(size_t q, const uint64_t* lane_mask) {
  uint64_t* xs = x_word(q);
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) {
    xs[w] ^= lane_mask[w];
    zs[w] ^= lane_mask[w];
  }
}

void BatchFrameSim::inject_z_masked(size_t q, const uint64_t* lane_mask) {
  uint64_t* zs = z_word(q);
  for (size_t w = 0; w < words_; ++w) zs[w] ^= lane_mask[w];
}

void BatchFrameSim::randomize_gauge(uint64_t* component) {
  for (size_t w = 0; w < words_; ++w) component[w] ^= rng_.next_u64();
}

size_t BatchFrameSim::measure_z(size_t q) {
  record_.append_row(x_word(q));
  // Collapse gauge: the post-measurement Z frame is unobservable. One fresh
  // random bit per lane (FrameSim draws one bit per shot).
  randomize_gauge(z_word(q));
  return record_.size() - 1;
}

size_t BatchFrameSim::measure_x(size_t q) {
  record_.append_row(z_word(q));
  randomize_gauge(x_word(q));
  return record_.size() - 1;
}

size_t BatchFrameSim::measure_reset(size_t q) {
  record_.append_row(x_word(q));
  reset(q);
  return record_.size() - 1;
}

void BatchFrameSim::reset(size_t q) {
  std::fill_n(x_word(q), words_, 0);
  std::fill_n(z_word(q), words_, 0);
}

void BatchFrameSim::classical_x(size_t q, size_t record_index) {
  inject_x_masked(q, record_.row(record_index));
}

void BatchFrameSim::classical_y(size_t q, size_t record_index) {
  inject_y_masked(q, record_.row(record_index));
}

void BatchFrameSim::classical_z(size_t q, size_t record_index) {
  inject_z_masked(q, record_.row(record_index));
}

void BatchFrameSim::discard_where(size_t record_index, bool value) {
  const uint64_t* row = record_.row(record_index);
  for (size_t w = 0; w < words_; ++w) {
    abort_[w] |= value ? row[w] : ~row[w];
  }
}

void BatchFrameSim::discard_lanes(const uint64_t* lane_mask) {
  for (size_t w = 0; w < words_; ++w) abort_[w] |= lane_mask[w];
}

size_t BatchFrameSim::num_kept() const {
  size_t discarded = 0;
  for (uint64_t w : abort_) discarded += __builtin_popcountll(w);
  return shots_ - discarded;
}

void BatchFrameSim::run(const Circuit& circuit) {
  FTQC_CHECK(circuit.num_qubits() <= n_, "circuit larger than frame register");
  const size_t record_base = record_.size();
  const auto cond_row = [&](const Operation& op) -> size_t {
    const size_t row = record_base + static_cast<size_t>(op.cond);
    FTQC_CHECK(row < record_.size(),
               "conditional references future measurement");
    return row;
  };
  for (const Operation& op : circuit.ops()) {
    if (op.cond >= 0) {
      // Only Pauli feedforward can be bit-sliced: a conditional Clifford
      // would need a different frame map per lane.
      switch (op.gate) {
        case Gate::X: classical_x(op.targets[0], cond_row(op)); continue;
        case Gate::Y: classical_y(op.targets[0], cond_row(op)); continue;
        case Gate::Z: classical_z(op.targets[0], cond_row(op)); continue;
        default:
          FTQC_CHECK(false,
                     std::string("BatchFrameSim feedforward supports only "
                                 "Pauli corrections, got ") +
                         gate_name(op.gate));
      }
    }
    switch (op.gate) {
      case Gate::I:
      case Gate::TICK:
        break;
      case Gate::X:
      case Gate::Y:
      case Gate::Z:
        break;  // deterministic Paulis shift the reference, not the frame
      case Gate::H: apply_h(op.targets[0]); break;
      case Gate::S:
      case Gate::S_DAG: apply_s(op.targets[0]); break;
      case Gate::CX: apply_cx(op.targets[0], op.targets[1]); break;
      case Gate::CZ: apply_cz(op.targets[0], op.targets[1]); break;
      case Gate::SWAP: apply_swap(op.targets[0], op.targets[1]); break;
      case Gate::M: measure_z(op.targets[0]); break;
      case Gate::MX: measure_x(op.targets[0]); break;
      case Gate::MR: measure_reset(op.targets[0]); break;
      case Gate::R: reset(op.targets[0]); break;
      case Gate::DEPOLARIZE1: depolarize1(op.targets[0], op.arg); break;
      case Gate::DEPOLARIZE2:
        depolarize2(op.targets[0], op.targets[1], op.arg);
        break;
      case Gate::X_ERROR: x_error(op.targets[0], op.arg); break;
      case Gate::Y_ERROR: y_error(op.targets[0], op.arg); break;
      case Gate::Z_ERROR: z_error(op.targets[0], op.arg); break;
      // Injections flip (not set) the frame, matching FrameSim::inject_*:
      // two injections of the same Pauli cancel.
      case Gate::INJECT_X: inject_x(op.targets[0]); break;
      case Gate::INJECT_Y: inject_y(op.targets[0]); break;
      case Gate::INJECT_Z: inject_z(op.targets[0]); break;
      default:
        FTQC_CHECK(false, std::string("BatchFrameSim cannot run gate ") +
                              gate_name(op.gate));
    }
  }
}

}  // namespace ftqc::sim
