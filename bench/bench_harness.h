#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/shot_runner.h"
#include "sim/sweep_scheduler.h"

// Shared harness for the E01-E18 paper benchmarks.
//
//   int main(int argc, char** argv) {
//     ftqc::bench::init(argc, argv, "E05");
//     const size_t shots = ftqc::bench::scaled(200000, 500);
//     ...
//     ftqc::bench::JsonResult json;
//     json.add("p_fail", p_fail);
//     json.write();
//   }
//
// `--smoke` (or FTQC_BENCH_SMOKE=1) switches every benchmark to a <=1s
// configuration so CTest's bench-smoke tier catches bit-rot cheaply.
// JsonResult::write() appends one self-describing line to stdout
// (`BENCH_JSON {...}`) and writes a BENCH_<name>.json artifact next to the
// working directory so perf trajectories can be diffed across PRs.
namespace ftqc::bench {

struct Options {
  bool smoke = false;
  std::string name;      // benchmark id, e.g. "E05"
  std::string json_dir;  // defaults to the working directory
  std::string engine;    // --engine value ("" = bench default)
  // Sweep-scheduler controls (benches whose sweeps ride run_sweep honor
  // them; elsewhere they are accepted and unused so run_campaign can pass
  // them uniformly):
  //   --checkpoint-dir=DIR  shard completed points to DIR and resume by
  //                         skipping the ones already present;
  //   --workers=N           scheduler worker threads (0 = auto);
  //   --max-points=N        stop after N fresh points (simulated kill).
  std::string checkpoint_dir;
  size_t workers = 0;
  size_t max_points = 0;
  // Engines this benchmark honors; init() rejects --engine when empty and
  // rejects values outside the set, so the flag can never be silently
  // ignored or crash deep inside a driver.
  std::vector<sim::ShotEngine> supported_engines;
};

inline Options& options() {
  static Options opts;
  return opts;
}

inline bool smoke() { return options().smoke; }

// Pick `full` normally, `smoke_value` under --smoke.
inline size_t scaled(size_t full, size_t smoke_value) {
  return options().smoke ? smoke_value : full;
}

// `supported_engines` lists the engines the benchmark honors via
// engine_or(); benchmarks whose loops have no engine choice leave it empty
// and --engine becomes an unknown-flag error for them.
inline void init(int argc, char** argv, const char* name,
                 std::vector<sim::ShotEngine> supported_engines = {}) {
  Options& opts = options();
  opts.name = name;
  opts.supported_engines = std::move(supported_engines);
  if (const char* env = std::getenv("FTQC_BENCH_SMOKE")) {
    opts.smoke = env[0] != '\0' && env[0] != '0';
  }
  std::string engine_usage;
  for (const sim::ShotEngine e : opts.supported_engines) {
    engine_usage += engine_usage.empty() ? "" : "|";
    engine_usage += sim::shot_engine_name(e);
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(arg, "--full") == 0) {
      opts.smoke = false;
    } else if (std::strncmp(arg, "--json-dir=", 11) == 0) {
      opts.json_dir = arg + 11;
    } else if (std::strncmp(arg, "--checkpoint-dir=", 17) == 0) {
      opts.checkpoint_dir = arg + 17;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      opts.workers = static_cast<size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--max-points=", 13) == 0) {
      opts.max_points =
          static_cast<size_t>(std::strtoull(arg + 13, nullptr, 10));
    } else if (std::strncmp(arg, "--engine=", 9) == 0 &&
               !opts.supported_engines.empty()) {
      opts.engine = arg + 9;
      const auto parsed = sim::parse_shot_engine(opts.engine);
      const bool supported =
          parsed && std::find(opts.supported_engines.begin(),
                              opts.supported_engines.end(),
                              *parsed) != opts.supported_engines.end();
      if (!supported) {
        std::fprintf(stderr, "unsupported engine: %s (want %s)\n",
                     opts.engine.c_str(), engine_usage.c_str());
        std::exit(2);
      }
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      if (engine_usage.empty()) {
        std::printf("usage: %s [--smoke] [--full] [--json-dir=DIR] "
                    "[--checkpoint-dir=DIR] [--workers=N] [--max-points=N]\n",
                    argv[0]);
      } else {
        std::printf("usage: %s [--smoke] [--full] [--json-dir=DIR] "
                    "[--checkpoint-dir=DIR] [--workers=N] [--max-points=N] "
                    "[--engine=%s]\n",
                    argv[0], engine_usage.c_str());
      }
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      std::exit(2);
    }
  }
  if (opts.smoke) std::printf("[smoke mode: reduced shot counts]\n");
}

// Shot engine requested via --engine (already validated against the
// supported set in init), or `fallback` when the flag is absent.
inline sim::ShotEngine engine_or(sim::ShotEngine fallback) {
  const Options& opts = options();
  if (opts.engine.empty()) return fallback;
  return *sim::parse_shot_engine(opts.engine);
}

// Sweep-scheduler options assembled from the --checkpoint-dir / --workers /
// --max-points flags, for benches whose sweeps ride sim::run_sweep.
inline const std::string& checkpoint_dir() { return options().checkpoint_dir; }
inline sim::SweepOptions sweep_options() {
  sim::SweepOptions sweep;
  sweep.workers = options().workers;
  sweep.max_points = options().max_points;
  return sweep;
}

// Accumulates flat key/value metrics and emits them as one JSON object.
class JsonResult {
 public:
  void add(const std::string& key, double value) {
    char buf[64];
    // %.12g would print bare nan/inf tokens, which are not valid JSON.
    if (std::isfinite(value)) {
      std::snprintf(buf, sizeof buf, "%.12g", value);
    } else {
      std::snprintf(buf, sizeof buf, "null");
    }
    fields_.emplace_back(key, buf);
  }
  void add(const std::string& key, size_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, bool value) {
    // Real JSON booleans (the crossover_*_extrapolated flags): tooling can
    // gate numeric comparisons on them without sentinel-value conventions.
    fields_.emplace_back(key, value ? "true" : "false");
  }
  void add_string(const std::string& key, const std::string& value) {
    // Built up in place: GCC 12's -Wrestrict misfires on `"..." + temporary`.
    std::string quoted = "\"";
    quoted += escaped(value);
    quoted += '"';
    fields_.emplace_back(key, std::move(quoted));
  }

  // Serializes {"bench":"E05","smoke":...,<fields>}, prints a BENCH_JSON
  // line, and writes BENCH_<name>.json for machine consumption.
  void write() const {
    const Options& opts = options();
    FTQC_CHECK(!opts.name.empty(), "bench::init must run before write()");
    std::string json = "{\"bench\":\"" + escaped(opts.name) + "\"";
    json += ",\"smoke\":";
    json += opts.smoke ? "true" : "false";
    for (const auto& [key, value] : fields_) {
      json += ",\"" + escaped(key) + "\":" + value;
    }
    json += "}";
    std::printf("BENCH_JSON %s\n", json.c_str());
    std::string path = opts.json_dir.empty() ? "" : opts.json_dir + "/";
    path += "BENCH_" + opts.name + ".json";
    if (std::FILE* out = std::fopen(path.c_str(), "w")) {
      std::fprintf(out, "%s\n", json.c_str());
      std::fclose(out);
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
  }

 private:
  static std::string escaped(const std::string& raw) {
    std::string out;
    for (char c : raw) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace ftqc::bench
