#pragma once

#include <cstdint>
#include <string>

#include "gf2/bitvec.h"

namespace ftqc::pauli {

// Exponent of i contributed by multiplying single-qubit Paulis
// (x1,z1)·(x2,z2) under the literal-Y convention ((1,1) means Y): 0 when
// either factor is I or both are equal, +1 for cyclic products (XY = iZ),
// +3 for anti-cyclic ones (YX = -iZ).
[[nodiscard]] int pauli_product_phase(bool x1, bool z1, bool x2, bool z2);

// An n-qubit Pauli operator  i^phase · X^x · Z^z  stored as two bit vectors
// (the binary-symplectic representation of §3.6) plus a phase exponent
// mod 4. Qubit q carries:
//   x=0,z=0 -> I    x=1,z=0 -> X    x=1,z=1 -> Y (= iXZ)    x=0,z=1 -> Z
//
// The paper's stabilizer formalism (Eq. 18, Eq. 21) works with exactly this
// representation: H̄ = (H_Z | H_X).
class PauliString {
 public:
  PauliString() = default;
  explicit PauliString(size_t n) : x_(n), z_(n) {}

  // Parses e.g. "IIIZZZZ" or "+XIXIXIX" or "-iYZ". Characters map per qubit.
  [[nodiscard]] static PauliString from_string(const std::string& text);

  // Single-qubit Pauli at position q of an otherwise-identity string.
  [[nodiscard]] static PauliString single(size_t n, size_t q, char pauli);

  [[nodiscard]] size_t num_qubits() const { return x_.size(); }

  [[nodiscard]] bool x_bit(size_t q) const { return x_.get(q); }
  [[nodiscard]] bool z_bit(size_t q) const { return z_.get(q); }
  void set_x(size_t q, bool v) { x_.set(q, v); }
  void set_z(size_t q, bool v) { z_.set(q, v); }

  [[nodiscard]] const gf2::BitVec& x_part() const { return x_; }
  [[nodiscard]] const gf2::BitVec& z_part() const { return z_; }
  [[nodiscard]] gf2::BitVec& x_part() { return x_; }
  [[nodiscard]] gf2::BitVec& z_part() { return z_; }

  // Phase exponent k in i^k, k in {0,1,2,3}.
  [[nodiscard]] uint8_t phase_exponent() const { return phase_; }
  void set_phase_exponent(uint8_t k) { phase_ = k & 3; }

  // 'I', 'X', 'Y' or 'Z' at qubit q.
  [[nodiscard]] char pauli_at(size_t q) const;
  void set_pauli(size_t q, char pauli);

  // Number of non-identity positions (the "weight" of §3.6).
  [[nodiscard]] size_t weight() const { return (x_ | z_).popcount(); }

  [[nodiscard]] bool is_identity() const { return !x_.any() && !z_.any(); }

  // True iff this commutes with other (symplectic inner product is 0).
  [[nodiscard]] bool commutes_with(const PauliString& other) const {
    return !(x_.dot(other.z_) ^ z_.dot(other.x_));
  }

  // Group product, tracking the i^k phase: (this) * (other).
  [[nodiscard]] PauliString operator*(const PauliString& other) const;

  // In-place multiply without phase tracking (sufficient for frame updates).
  void xor_in(const PauliString& other) {
    x_ ^= other.x_;
    z_ ^= other.z_;
  }

  // Equal up to (and including) phase.
  [[nodiscard]] bool operator==(const PauliString& other) const {
    return phase_ == other.phase_ && x_ == other.x_ && z_ == other.z_;
  }
  [[nodiscard]] bool equals_up_to_phase(const PauliString& other) const {
    return x_ == other.x_ && z_ == other.z_;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  gf2::BitVec x_;
  gf2::BitVec z_;
  uint8_t phase_ = 0;  // exponent of i
};

}  // namespace ftqc::pauli
