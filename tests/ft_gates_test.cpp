#include <gtest/gtest.h>

#include <array>

#include "codes/library.h"
#include "ft/encoded_measure.h"
#include "ft/steane_circuits.h"
#include "ft/toffoli_gadget.h"
#include "ft/transversal.h"
#include "pauli/pauli_string.h"
#include "sim/runner.h"
#include "sim/statevector_sim.h"
#include "sim/tableau_sim.h"

namespace ftqc::ft {
namespace {

using pauli::PauliString;
using sim::StateVectorSim;
using sim::TableauSim;

constexpr std::array<uint32_t, 7> kBlockA = {0, 1, 2, 3, 4, 5, 6};
constexpr std::array<uint32_t, 7> kBlockB = {7, 8, 9, 10, 11, 12, 13};

PauliString on_block(const PauliString& p, size_t total,
                     std::span<const uint32_t> block) {
  PauliString out(total);
  for (size_t i = 0; i < 7; ++i) out.set_pauli(block[i], p.pauli_at(i));
  out.set_phase_exponent(p.phase_exponent());
  return out;
}

bool logical_z_sign(TableauSim& sim, std::span<const uint32_t> block) {
  bool sign = false;
  EXPECT_TRUE(sim.stabilizes(
      on_block(codes::steane().logical_z(), sim.num_qubits(), block), &sign));
  return sign;
}

bool logical_x_sign(TableauSim& sim, std::span<const uint32_t> block) {
  bool sign = false;
  EXPECT_TRUE(sim.stabilizes(
      on_block(codes::steane().logical_x(), sim.num_qubits(), block), &sign));
  return sign;
}

TEST(TransversalGates, BitwiseNotFlipsLogicalQubit) {
  TableauSim sim(7, 41);
  run_circuit(sim, steane_zero_prep(kBlockA));
  auto c = logical_x_bitwise(kBlockA);
  run_circuit(sim, c);
  EXPECT_TRUE(logical_z_sign(sim, kBlockA));  // -Z̄: logical |1>
}

TEST(TransversalGates, MinimalThreeGateNotMatchesBitwiseNot) {
  TableauSim a(7, 42), b(7, 42);
  run_circuit(a, steane_zero_prep(kBlockA));
  run_circuit(b, steane_zero_prep(kBlockA));
  run_circuit(a, logical_x_bitwise(kBlockA));
  run_circuit(b, logical_x_minimal(kBlockA));
  EXPECT_EQ(logical_z_sign(a, kBlockA), logical_z_sign(b, kBlockA));
  EXPECT_TRUE(logical_z_sign(b, kBlockA));
}

TEST(TransversalGates, BitwiseHadamardMapsZeroToPlus) {
  // Eq. (11): bitwise R implements the encoded Hadamard.
  TableauSim sim(7, 43);
  run_circuit(sim, steane_zero_prep(kBlockA));
  run_circuit(sim, logical_h_bitwise(kBlockA));
  EXPECT_FALSE(logical_x_sign(sim, kBlockA));  // +X̄: logical |+>
}

TEST(TransversalGates, BitwiseZFlipsPhaseOfPlus) {
  TableauSim sim(7, 44);
  run_circuit(sim, steane_plus_prep(kBlockA));
  run_circuit(sim, logical_z_bitwise(kBlockA));
  EXPECT_TRUE(logical_x_sign(sim, kBlockA));  // -X̄: logical |->
}

TEST(TransversalGates, BitwiseSDagImplementsLogicalPhaseGate) {
  // S̄|+> = |+i>, the +1 eigenstate of logical Y = -Y^⊗7 (since
  // X̄·Z̄ = (XZ)^⊗7 = (-iY)^⊗7 = +i·Y^⊗7 and Ȳ = iX̄Z̄).
  TableauSim sim(7, 45);
  run_circuit(sim, steane_plus_prep(kBlockA));
  run_circuit(sim, logical_s_bitwise(kBlockA));
  bool sign = true;
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("-YYYYYYY"), &sign));
  EXPECT_FALSE(sign);
}

TEST(TransversalGates, LogicalSSquaredIsLogicalZ) {
  TableauSim sim(7, 46);
  run_circuit(sim, steane_plus_prep(kBlockA));
  run_circuit(sim, logical_s_bitwise(kBlockA));
  run_circuit(sim, logical_s_bitwise(kBlockA));
  EXPECT_TRUE(logical_x_sign(sim, kBlockA));  // Z̄|+> = |->
}

TEST(TransversalGates, TransversalXorActsAsEncodedXor) {
  // |1>_A |0>_B -> |1>_A |1>_B.
  TableauSim sim(14, 47);
  run_circuit(sim, steane_zero_prep(kBlockA));
  run_circuit(sim, steane_zero_prep(kBlockB));
  run_circuit(sim, logical_x_bitwise(kBlockA));
  run_circuit(sim, logical_cx_transversal(kBlockA, kBlockB));
  EXPECT_TRUE(logical_z_sign(sim, kBlockA));
  EXPECT_TRUE(logical_z_sign(sim, kBlockB));
}

TEST(TransversalGates, TransversalXorCreatesLogicalBellPair) {
  TableauSim sim(14, 48);
  run_circuit(sim, steane_plus_prep(kBlockA));
  run_circuit(sim, steane_zero_prep(kBlockB));
  run_circuit(sim, logical_cx_transversal(kBlockA, kBlockB));
  // Logical ZZ and XX both stabilize.
  const auto zz = on_block(codes::steane().logical_z(), 14, kBlockA) *
                  on_block(codes::steane().logical_z(), 14, kBlockB);
  const auto xx = on_block(codes::steane().logical_x(), 14, kBlockA) *
                  on_block(codes::steane().logical_x(), 14, kBlockB);
  bool sign = true;
  EXPECT_TRUE(sim.stabilizes(zz, &sign));
  EXPECT_FALSE(sign);
  EXPECT_TRUE(sim.stabilizes(xx, &sign));
  EXPECT_FALSE(sign);
}

TEST(EncodedMeasure, DestructiveReadsLogicalValue) {
  for (int value = 0; value < 2; ++value) {
    TableauSim sim(7, 50 + value);
    run_circuit(sim, steane_zero_prep(kBlockA));
    if (value) run_circuit(sim, logical_x_bitwise(kBlockA));
    EXPECT_EQ(destructive_logical_measure(sim, kBlockA), value == 1);
  }
}

TEST(EncodedMeasure, DestructiveToleratesOneBitFlip) {
  for (uint32_t flipped = 0; flipped < 7; ++flipped) {
    TableauSim sim(7, 60 + flipped);
    run_circuit(sim, steane_zero_prep(kBlockA));
    run_circuit(sim, logical_x_bitwise(kBlockA));
    sim.apply_x(flipped);  // a single error must not corrupt the readout
    EXPECT_TRUE(destructive_logical_measure(sim, kBlockA));
  }
}

TEST(EncodedMeasure, NondestructivePreservesCodeSpace) {
  TableauSim sim(8, 70);
  run_circuit(sim, steane_zero_prep(kBlockA));
  EXPECT_FALSE(nondestructive_logical_measure(sim, kBlockA, 7));
  // Still a valid codeword afterwards; a second read agrees.
  EXPECT_FALSE(nondestructive_logical_measure(sim, kBlockA, 7));
  for (const auto& g : codes::steane().generators()) {
    EXPECT_TRUE(sim.stabilizes(on_block(g, 8, kBlockA)));
  }
}

TEST(EncodedMeasure, NondestructiveCollapsesSuperposition) {
  // On |+>_code the parity measurement collapses to |0> or |1> and repeats
  // consistently (§2: it "destroys" the superposition by collapsing).
  int ones = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    TableauSim sim(8, 100 + seed);
    run_circuit(sim, steane_plus_prep(kBlockA));
    const bool first = nondestructive_logical_measure(sim, kBlockA, 7);
    EXPECT_EQ(nondestructive_logical_measure(sim, kBlockA, 7), first);
    ones += first;
  }
  EXPECT_GT(ones, 2);   // both outcomes occur
  EXPECT_LT(ones, 18);
}

TEST(EncodedMeasure, ProjectToLogicalZeroFromGarbage) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    TableauSim sim(8, 200 + seed);
    // Garbage state: random single-qubit gates.
    for (uint32_t q = 0; q < 7; ++q) {
      if (sim.rng().bernoulli(0.5)) sim.apply_h(q);
      if (sim.rng().bernoulli(0.5)) sim.apply_x(q);
      if (sim.rng().bernoulli(0.5)) sim.apply_s(q);
    }
    project_to_logical_zero(sim, kBlockA, 7);
    bool sign = true;
    EXPECT_TRUE(sim.stabilizes(
        on_block(codes::steane().logical_z(), 8, kBlockA), &sign));
    EXPECT_FALSE(sign);
  }
}

// --- Shor's Toffoli gadget (Fig. 13), bare level ---------------------------

// Runs the gadget on basis input |x,y,z> and checks the output block equals
// |x, y, z^xy> exactly.
class ToffoliGadgetBasis : public ::testing::TestWithParam<int> {};

TEST_P(ToffoliGadgetBasis, MatchesTruthTable) {
  const int in = GetParam();
  const ToffoliGadget g = make_bare_toffoli_gadget();
  StateVectorSim sim(7, 300 + static_cast<uint64_t>(in));
  // Load |x,y,z> on the input data qubits 4,5,6.
  if (in & 1) sim.apply_x(g.in_data[0]);
  if (in & 2) sim.apply_x(g.in_data[1]);
  if (in & 4) sim.apply_x(g.in_data[2]);
  run_circuit(sim, g.circuit);
  const int x = in & 1, y = (in >> 1) & 1, z = (in >> 2) & 1;
  const int want = x | (y << 1) | ((z ^ (x & y)) << 2);
  // Output lives on qubits 0,1,2; measure them.
  int got = 0;
  got |= sim.measure_z(g.out_data[0]) ? 1 : 0;
  got |= sim.measure_z(g.out_data[1]) ? 2 : 0;
  got |= sim.measure_z(g.out_data[2]) ? 4 : 0;
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(AllBasisStates, ToffoliGadgetBasis,
                         ::testing::Range(0, 8));

TEST(ToffoliGadget, CorrectOnSuperpositionsIncludingPhases) {
  // Compare gadget output against a direct CCX on a batch of random input
  // states, checking full state fidelity (catches any phase errors that the
  // truth-table test cannot see).
  for (uint64_t seed = 0; seed < 12; ++seed) {
    const ToffoliGadget g = make_bare_toffoli_gadget();
    StateVectorSim sim(7, 400 + seed);
    // Random product-ish input on qubits 4,5,6 built from H/S/X layers.
    sim::Circuit prep(7);
    ftqc::Rng rng(500 + seed);
    for (uint32_t q = 4; q < 7; ++q) {
      if (rng.bernoulli(0.5)) prep.h(q);
      if (rng.bernoulli(0.5)) prep.s(q);
      if (rng.bernoulli(0.5)) prep.x(q);
      if (rng.bernoulli(0.5)) prep.h(q);
    }
    run_circuit(sim, prep);

    // Reference: same input state, direct Toffoli, placed on qubits 4,5,6.
    StateVectorSim ref(7, 400 + seed);
    run_circuit(ref, prep);
    ref.apply_ccx(4, 5, 6);

    run_circuit(sim, g.circuit);
    // The gadget leaves its output on qubits 0,1,2 (with 4,5,6 measured).
    // Swap output into the reference position for comparison.
    sim.apply_swap(0, 4);
    sim.apply_swap(1, 5);
    sim.apply_swap(2, 6);
    // Qubits 0,1,2 (old data) and 3 (cat) are now in measured basis states;
    // reset them so both states live on the same factor space.
    for (uint32_t q = 0; q < 4; ++q) sim.reset(q);
    const double fidelity = sim.fidelity_with(ref);
    EXPECT_NEAR(fidelity, 1.0, 1e-9) << "seed " << seed;
  }
}

TEST(ToffoliGadget, GateBudget) {
  const ToffoliGadget g = make_bare_toffoli_gadget();
  EXPECT_EQ(g.circuit.count(sim::Gate::CCZ), 1u);  // one bitwise Toffoli
  EXPECT_EQ(g.circuit.count(sim::Gate::M), 4u);    // cat + three data blocks
  EXPECT_EQ(encoded_gadget_gate_count(7), 7u * 21u);
}

}  // namespace
}  // namespace ftqc::ft
