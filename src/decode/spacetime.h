#pragma once

#include <memory>
#include <vector>

#include "decode/decoder.h"

namespace ftqc::decode {

struct SpacetimeOptions {
  // Relative integer edge weights of the 3D defect graph. Spatial steps
  // explain data errors, temporal steps explain syndrome-measurement errors;
  // weighting them ~ -log(p)/-log(q) biases the matching toward the likelier
  // explanation. Equal weights are right for the phenomenological p = q model.
  size_t space_weight = 1;
  size_t time_weight = 1;
};

// 3D space-time matching decoder for faulty syndrome measurement (Gottesman
// arXiv:2210.15844 §5; Paler & Devitt arXiv:1508.03695 §V): the syndrome is
// extracted every round but each extracted bit can itself be wrong, so a
// single snapshot is untrustworthy. Defects become syndrome *changes* between
// consecutive rounds — a data error flips a check from its round onward
// (two defects displaced in space), a measurement error flips one round only
// (two defects stacked in time) — and matching runs over (site, round) nodes
// with the torus metric in space plus |Δt| in time. Only the spatial
// projection of each matched pair becomes a data correction; time-like
// displacement is the "it was a misread" explanation and touches no qubit.
class SpacetimeToricDecoder {
 public:
  SpacetimeToricDecoder(const topo::ToricCode& code, ToricSide side,
                        std::shared_ptr<const MatchingStrategy> strategy,
                        SpacetimeOptions options = {});

  [[nodiscard]] const char* name() const { return strategy_->name(); }
  [[nodiscard]] const topo::ToricCode& code() const { return code_; }
  [[nodiscard]] ToricSide side() const { return side_; }

  // `syndromes` holds the T measured (possibly faulty) rounds followed by
  // one final trusted round — memory experiments append the true syndrome of
  // the accumulated error, which guarantees an even defect count and a
  // correction that clears the final syndrome exactly.
  [[nodiscard]] gf2::BitVec decode(
      const std::vector<gf2::BitVec>& syndromes) const;

  // Matching core over an already-extracted defect list: defect k lives at
  // site defect_site[k] in round defect_round[k]. This is the single decode
  // path shared by decode() and the batched front-end (decode/batch_decode.h)
  // — any front-end that lists defects in the canonical order (rounds
  // ascending, sites ascending within a round) gets bit-identical corrections
  // by construction.
  [[nodiscard]] gf2::BitVec decode_defects(
      const std::vector<uint32_t>& defect_site,
      const std::vector<uint32_t>& defect_round) const;

 private:
  const topo::ToricCode& code_;
  ToricSide side_;
  std::shared_ptr<const MatchingStrategy> strategy_;
  SpacetimeOptions options_;
};

// One shot of the phenomenological-noise memory experiment: per round, iid
// data errors at `data_error` accumulate on the qubits and the round's
// syndrome is read with each bit flipped at `meas_error`; after `rounds`
// noisy extractions a final perfect readout closes the history. Decodes with
// `decoder` and reports whether a logical operator was left behind.
struct PhenomenologicalResult {
  bool logical_fail = false;  // residual anticommutes with a logical
  bool cleared = false;       // residual syndrome empty (decoder invariant)
};

// Per-shot working buffers for run_phenomenological_memory. Passing the same
// instance across the shots of a sweep point reuses every BitVec allocation
// (errors, the rounds+1 syndrome snapshots, the scratch syndrome) instead of
// reallocating them per shot.
struct PhenomenologicalScratch {
  gf2::BitVec errors;
  std::vector<gf2::BitVec> syndromes;
  gf2::BitVec check;
};

[[nodiscard]] PhenomenologicalResult run_phenomenological_memory(
    const SpacetimeToricDecoder& decoder, double data_error, double meas_error,
    size_t rounds, uint64_t seed, PhenomenologicalScratch* scratch = nullptr);

}  // namespace ftqc::decode
