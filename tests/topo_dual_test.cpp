// The electric (Z-error / star-defect) side of the toric code: duality with
// the magnetic side, decoder correctness through the src/decode interface
// (greedy, exact MWPM and the 3D space-time variant), and the combined
// depolarizing memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "decode/decoder.h"
#include "decode/matching.h"
#include "decode/spacetime.h"
#include "topo/toric_code.h"

namespace ftqc::topo {
namespace {

TEST(ToricDual, SingleZErrorCreatesChargePair) {
  const ToricCode code(4);
  gf2::BitVec errors(code.num_qubits());
  errors.set(code.v_edge(2, 1), true);
  EXPECT_EQ(code.star_syndrome(errors).popcount(), 2u);
}

TEST(ToricDual, StarDecoderClearsSyndrome) {
  const ToricCode code(6);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(0.03)) errors.set(e, true);
    }
    gf2::BitVec residual = errors;
    residual ^= code.decode_star_syndrome(code.star_syndrome(errors));
    EXPECT_FALSE(code.star_syndrome(residual).any());
  }
}

TEST(ToricDual, LogicalZFlipDetection) {
  const ToricCode code(4);
  // A full nontrivial Z loop along logical_z1's support is itself logical:
  // syndrome-free and flipping logical X... check via overlap bookkeeping:
  // logical_x1 (h-column) crosses it once.
  gf2::BitVec z_loop(code.num_qubits());
  for (size_t x = 0; x < 4; ++x) z_loop.set(code.h_edge(x, 0), true);
  EXPECT_FALSE(code.star_syndrome(z_loop).any());
  const auto [f1, f2] = code.logical_z_flips(z_loop);
  EXPECT_TRUE(f1);
  EXPECT_FALSE(f2);
}

TEST(ToricDual, StarsAndPlaquettesDecodeIndependently) {
  // Depolarizing-style noise: independent X and Z patterns; decoding each
  // side separately clears both syndromes (CSS structure of the model).
  const ToricCode code(6);
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    gf2::BitVec x_errors(code.num_qubits());
    gf2::BitVec z_errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      const auto roll = rng.next_below(100);
      if (roll < 2) x_errors.set(e, true);         // X
      if (roll >= 1 && roll < 3) z_errors.set(e, true);  // Z (and Y overlap)
    }
    gf2::BitVec rx = x_errors;
    rx ^= code.decode_plaquette_syndrome(code.plaquette_syndrome(x_errors));
    gf2::BitVec rz = z_errors;
    rz ^= code.decode_star_syndrome(code.star_syndrome(z_errors));
    EXPECT_FALSE(code.plaquette_syndrome(rx).any());
    EXPECT_FALSE(code.star_syndrome(rz).any());
  }
}

TEST(ToricDual, ZMemoryFailureDropsWithLatticeSize) {
  const double p = 0.03;
  auto failure_rate = [&](size_t l, size_t shots) {
    const ToricCode code(l);
    Rng rng(31 + l);
    size_t failures = 0;
    for (size_t s = 0; s < shots; ++s) {
      gf2::BitVec errors(code.num_qubits());
      for (size_t e = 0; e < code.num_qubits(); ++e) {
        if (rng.bernoulli(p)) errors.set(e, true);
      }
      gf2::BitVec residual = errors;
      residual ^= code.decode_star_syndrome(code.star_syndrome(errors));
      const auto [f1, f2] = code.logical_z_flips(residual);
      failures += (f1 || f2) ? 1 : 0;
    }
    return static_cast<double>(failures) / static_cast<double>(shots);
  };
  EXPECT_LT(failure_rate(8, 1500), failure_rate(4, 1500) + 1e-9);
}

TEST(ToricDual, StarMwpmDecoderClearsSyndromeAtOrBelowGreedyCost) {
  // The electric side through the pluggable Decoder interface: exact MWPM
  // clears every charge syndrome and never pays more total geodesic length
  // than the greedy strategy.
  const ToricCode code(6);
  const auto mwpm = std::make_shared<const decode::MwpmMatching>();
  const auto greedy = std::make_shared<const decode::GreedyMatching>();
  const decode::ToricMatchingDecoder mwpm_dec(code, decode::ToricSide::kStar,
                                              mwpm);
  const decode::ToricMatchingDecoder greedy_dec(code, decode::ToricSide::kStar,
                                                greedy);
  Rng rng(47);
  for (int trial = 0; trial < 50; ++trial) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(0.05)) errors.set(e, true);
    }
    const gf2::BitVec syndrome = code.star_syndrome(errors);
    const gf2::BitVec mwpm_corr = mwpm_dec.decode(syndrome);
    EXPECT_FALSE(code.star_syndrome(errors ^ mwpm_corr).any());
    EXPECT_LE(mwpm_corr.popcount(), greedy_dec.decode(syndrome).popcount());
  }
}

TEST(ToricDual, StarMwpmMatchesBruteForceMinimumWeightL2) {
  // Dual of the plaquette-side exhaustive pin (tests/decode_test.cpp): on the
  // L=2 torus, enumerate all 2^8 Z-error patterns, record the minimum weight
  // per star syndrome, and demand the MWPM correction meets it exactly.
  const ToricCode code(2);
  const auto mwpm = std::make_shared<const decode::MwpmMatching>();
  const decode::ToricMatchingDecoder decoder(code, decode::ToricSide::kStar,
                                             mwpm);
  constexpr size_t kUnreachable = std::numeric_limits<size_t>::max();
  std::vector<size_t> min_weight(size_t{1} << code.num_vertices(), kUnreachable);
  for (uint64_t pattern = 0; pattern < (uint64_t{1} << code.num_qubits());
       ++pattern) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      errors.set(e, ((pattern >> e) & 1) != 0);
    }
    const size_t s = code.star_syndrome(errors).to_u64();
    min_weight[s] = std::min(min_weight[s],
                             static_cast<size_t>(__builtin_popcountll(pattern)));
  }
  for (size_t s = 0; s < min_weight.size(); ++s) {
    if (min_weight[s] == kUnreachable) continue;
    gf2::BitVec syndrome(code.num_vertices());
    for (size_t b = 0; b < code.num_vertices(); ++b) {
      syndrome.set(b, ((s >> b) & 1) != 0);
    }
    const gf2::BitVec correction = decoder.decode(syndrome);
    EXPECT_EQ(code.star_syndrome(correction), syndrome);
    EXPECT_EQ(correction.popcount(), min_weight[s]) << "syndrome " << s;
  }
}

TEST(ToricDual, StarSpacetimeSingleZErrorIsCorrectedExactly) {
  const ToricCode code(4);
  const auto mwpm = std::make_shared<const decode::MwpmMatching>();
  const decode::SpacetimeToricDecoder decoder(code, decode::ToricSide::kStar,
                                              mwpm);
  gf2::BitVec errors(code.num_qubits());
  errors.set(code.v_edge(2, 1), true);
  const gf2::BitVec truth = code.star_syndrome(errors);
  const std::vector<gf2::BitVec> syndromes = {gf2::BitVec(code.num_vertices()),
                                              truth, truth, truth};
  const gf2::BitVec correction = decoder.decode(syndromes);
  EXPECT_EQ(correction.popcount(), 1u);
  EXPECT_TRUE(correction.get(code.v_edge(2, 1)));
}

TEST(ToricDual, StarSpacetimeMeasurementErrorNeedsNoCorrection) {
  const ToricCode code(4);
  const auto mwpm = std::make_shared<const decode::MwpmMatching>();
  const decode::SpacetimeToricDecoder decoder(code, decode::ToricSide::kStar,
                                              mwpm);
  const gf2::BitVec vacuum(code.num_vertices());
  gf2::BitVec misread = vacuum;
  misread.set(7, true);
  const std::vector<gf2::BitVec> syndromes = {vacuum, misread, vacuum, vacuum};
  EXPECT_FALSE(decoder.decode(syndromes).any());
}

TEST(ToricDual, StarSpacetimePhenomenologicalMemoryStaysBelowThreshold) {
  // Faulty charge measurement: every run must clear the trusted final
  // syndrome, and at p = q = 1% the logical Z failure stays rare.
  const ToricCode code(4);
  const auto mwpm = std::make_shared<const decode::MwpmMatching>();
  const decode::SpacetimeToricDecoder decoder(code, decode::ToricSide::kStar,
                                              mwpm);
  size_t failures = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const auto result =
        decode::run_phenomenological_memory(decoder, 0.01, 0.01, 4, 500 + seed);
    EXPECT_TRUE(result.cleared) << "seed " << seed;
    failures += result.logical_fail ? 1 : 0;
  }
  EXPECT_LT(failures, 20u);
}

TEST(ToricDual, ChargeAharonovBohmSeenByXLoop) {
  // Dual of the Fig. 16 check: an X loop (transporting a fluxon around a
  // region) equals the product of enclosed star operators and flags an
  // enclosed electric charge with a -1.
  const ToricCode code(3);
  sim::TableauSim sim(code.num_qubits(), 7);
  code.prepare_ground_state(sim);
  const auto loop = code.star_operator(1, 1);  // X loop around vertex (1,1)
  auto value = sim.peek_pauli(loop);
  ASSERT_TRUE(value.has_value());
  EXPECT_FALSE(*value);
  sim.apply_z(code.v_edge(1, 1));  // creates charges at vertices (1,1),(1,2)
  value = sim.peek_pauli(loop);
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(*value);
}

}  // namespace
}  // namespace ftqc::topo
