#pragma once

#include <array>
#include <cstdint>

namespace ftqc::ft::steane_layout {

// Register layout shared by the serial (SteaneRecovery) and batch
// (BatchSteaneRecovery) Fig. 9 drivers: data block [0,7), syndrome ancilla
// [7,14), verification ancilla [14,21). One definition so the two engines —
// whose contract is exact statistical equivalence — cannot drift apart.
inline constexpr uint32_t kNumQubits = 21;
inline constexpr std::array<uint32_t, 7> kData = {0, 1, 2, 3, 4, 5, 6};
inline constexpr std::array<uint32_t, 7> kAncA = {7, 8, 9, 10, 11, 12, 13};
inline constexpr std::array<uint32_t, 7> kAncB = {14, 15, 16, 17, 18, 19, 20};

// Active sets for storage accounting: the data block always idles through
// ancilla work; ancilla blocks join once they are in flight.
inline constexpr std::array<uint32_t, 14> kDataAndA = {0, 1, 2,  3,  4,  5,  6,
                                                       7, 8, 9, 10, 11, 12, 13};
inline constexpr std::array<uint32_t, 21> kAll = {0,  1,  2,  3,  4,  5,  6,
                                                  7,  8,  9,  10, 11, 12, 13,
                                                  14, 15, 16, 17, 18, 19, 20};

}  // namespace ftqc::ft::steane_layout
