// Cross-engine consistency: the exact tableau engine, the Pauli-frame
// sampler, and the bit-parallel batch sampler must tell the same story for a
// shared Clifford circuit — and each engine must be reproducible from its
// seed alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/batch_frame_sim.h"
#include "sim/circuit.h"
#include "sim/frame_sim.h"
#include "sim/runner.h"
#include "sim/tableau_sim.h"

namespace ftqc::sim {
namespace {

// A representative 5-qubit Clifford mixing circuit with noise channels and a
// full terminal Z-measurement layer.
Circuit noisy_clifford_circuit() {
  Circuit c(5);
  for (uint32_t q = 0; q < 5; ++q) c.h(q);
  c.cx(0, 1);
  c.cx(2, 3);
  c.cz(1, 2);
  c.swap(3, 4);
  for (uint32_t q = 0; q < 5; ++q) c.depolarize1(q, 0.2);
  c.depolarize2(0, 4, 0.2);
  c.tick();
  c.cx(4, 0);
  for (uint32_t q = 0; q < 5; ++q) c.h(q);
  for (uint32_t q = 0; q < 5; ++q) c.m(q);
  return c;
}

// Self-inverting Clifford circuit with a deterministic Pauli error pattern
// injected at the midpoint. The noiseless version is the identity, so every
// terminal measurement is deterministic (reference outcome 0) and the frame
// flips must reproduce the exact engine's record bit for bit.
Circuit injected_clifford_circuit() {
  Circuit c(5);
  for (uint32_t q = 0; q < 5; ++q) c.h(q);
  c.cx(0, 1);
  c.cx(2, 3);
  c.cz(1, 2);
  c.swap(3, 4);
  c.inject(0, 'X');
  c.inject(2, 'Y');
  c.inject(3, 'Z');
  c.tick();
  c.swap(3, 4);
  c.cz(1, 2);
  c.cx(2, 3);
  c.cx(0, 1);
  for (uint32_t q = 0; q < 5; ++q) c.h(q);
  for (uint32_t q = 0; q < 5; ++q) c.m(q);
  return c;
}

TEST(CrossEngine, TableauSameSeedSameRecord) {
  const Circuit c = noisy_clifford_circuit();
  TableauSim a(5, /*seed=*/1234), b(5, /*seed=*/1234);
  EXPECT_EQ(run_circuit(a, c), run_circuit(b, c));
}

TEST(CrossEngine, FrameSameSeedSameRecord) {
  const Circuit c = noisy_clifford_circuit();
  FrameSim a(5, /*seed=*/77), b(5, /*seed=*/77);
  EXPECT_EQ(run_circuit(a, c), run_circuit(b, c));
}

TEST(CrossEngine, BatchFrameSameSeedSameFlips) {
  Circuit c(5);
  for (uint32_t q = 0; q < 5; ++q) c.h(q);
  c.cx(0, 1);
  c.cz(1, 2);
  for (uint32_t q = 0; q < 5; ++q) c.depolarize1(q, 0.2);
  c.x_error(3, 0.5);
  c.z_error(4, 0.5);

  BatchFrameSim a(5, 256, /*seed=*/99), b(5, 256, /*seed=*/99);
  a.run(c);
  b.run(c);
  for (size_t q = 0; q < 5; ++q) {
    for (size_t shot = 0; shot < 256; ++shot) {
      ASSERT_EQ(a.x_flip(q, shot), b.x_flip(q, shot)) << q << "," << shot;
      ASSERT_EQ(a.z_flip(q, shot), b.z_flip(q, shot)) << q << "," << shot;
    }
  }
}

// With no noise at all, the frame engine must report zero flips regardless of
// seed: the noisy run *is* the reference run.
TEST(CrossEngine, NoiselessFrameRecordIsAllZero) {
  Circuit c = injected_clifford_circuit();
  Circuit clean(5);
  for (const auto& op : c.ops()) {
    if (op.gate == Gate::INJECT_X || op.gate == Gate::INJECT_Y ||
        op.gate == Gate::INJECT_Z) {
      continue;  // strip the injected errors
    }
    clean.append(op.gate, op.targets, op.arg, op.cond);
  }
  for (uint64_t seed : {1ull, 2ull, 983ull}) {
    FrameSim f(5, seed);
    const auto record = run_circuit(f, clean);
    ASSERT_EQ(record.size(), 5u);
    for (uint8_t bit : record) EXPECT_EQ(bit, 0);
  }
}

// The frame record of a deterministically injected error must equal the
// exact engine's record bit for bit: the circuit is self-inverting, so the
// noiseless reference outcome of every measurement is a deterministic 0 and
// the flip IS the outcome. This pins FrameSim's flip semantics (and its
// Pauli propagation) to the tableau engine's.
TEST(CrossEngine, FrameFlipsMatchTableauDifference) {
  const Circuit noisy = injected_clifford_circuit();
  Circuit clean(5);
  for (const auto& op : noisy.ops()) {
    if (op.gate == Gate::INJECT_X || op.gate == Gate::INJECT_Y ||
        op.gate == Gate::INJECT_Z) {
      continue;
    }
    clean.append(op.gate, op.targets, op.arg, op.cond);
  }

  for (uint64_t seed : {5ull, 6ull, 7ull}) {
    TableauSim noisy_sim(5, seed), clean_sim(5, seed);
    const auto noisy_rec = run_circuit(noisy_sim, noisy);
    const auto clean_rec = run_circuit(clean_sim, clean);
    ASSERT_EQ(noisy_rec.size(), clean_rec.size());
    // Sanity: the clean circuit really is the identity on |00000>.
    for (uint8_t bit : clean_rec) ASSERT_EQ(bit, 0);

    FrameSim frame(5, seed);
    const auto flips = run_circuit(frame, noisy);
    ASSERT_EQ(flips.size(), noisy_rec.size());
    for (size_t i = 0; i < flips.size(); ++i) {
      EXPECT_EQ(flips[i], noisy_rec[i]) << "measurement " << i;
    }
    // The injected pattern is not trivial: at least one bit must flip.
    size_t weight = 0;
    for (uint8_t bit : flips) weight += bit;
    EXPECT_GT(weight, 0u);
  }
}

// For a straight-line circuit the batch sampler's destructive flip masks
// must agree with FrameSim's destructive flips when the error pattern is
// deterministic (every shot identical).
TEST(CrossEngine, BatchFlipsMatchFrameSimDestructiveFlips) {
  Circuit c(4);
  for (uint32_t q = 0; q < 4; ++q) c.h(q);
  c.cx(0, 1);
  c.cx(1, 2);
  c.cz(2, 3);
  c.inject(1, 'X');
  c.inject(3, 'Y');

  FrameSim frame(4, /*seed=*/11);
  for (const auto& op : c.ops()) {
    switch (op.gate) {
      case Gate::H: frame.apply_h(op.targets[0]); break;
      case Gate::CX: frame.apply_cx(op.targets[0], op.targets[1]); break;
      case Gate::CZ: frame.apply_cz(op.targets[0], op.targets[1]); break;
      case Gate::INJECT_X: frame.inject_x(op.targets[0]); break;
      case Gate::INJECT_Y: frame.inject_y(op.targets[0]); break;
      case Gate::INJECT_Z: frame.inject_z(op.targets[0]); break;
      default: break;
    }
  }

  BatchFrameSim batch(4, 128, /*seed=*/22);
  batch.run(c);
  for (size_t q = 0; q < 4; ++q) {
    for (size_t shot = 0; shot < 128; ++shot) {
      ASSERT_EQ(batch.x_flip(q, shot), frame.destructive_z_flip(q))
          << q << "," << shot;
      ASSERT_EQ(batch.z_flip(q, shot), frame.destructive_x_flip(q))
          << q << "," << shot;
    }
  }

  // Double injection cancels (flip semantics, matching FrameSim::inject_*).
  Circuit cancel(2);
  cancel.inject(0, 'Y');
  cancel.inject(0, 'Y');
  BatchFrameSim batch2(2, 64, /*seed=*/23);
  batch2.run(cancel);
  EXPECT_FALSE(batch2.x_flip(0, 0));
  EXPECT_FALSE(batch2.z_flip(0, 0));
}

// Different seeds must (overwhelmingly) produce different records on a
// random-outcome circuit — guards against an RNG that ignores its seed.
TEST(CrossEngine, DifferentSeedsDiverge) {
  Circuit c(8);
  for (uint32_t q = 0; q < 8; ++q) c.h(q);
  for (uint32_t q = 0; q < 8; ++q) c.m(q);

  // 8 random bits collide with probability 2^-8 per pair; run three rounds so
  // a spurious failure is ~2^-24.
  std::vector<uint8_t> rec_a, rec_b;
  for (int round = 0; round < 3; ++round) {
    TableauSim fresh_a(8, static_cast<uint64_t>(round) * 2 + 1);
    TableauSim fresh_b(8, static_cast<uint64_t>(round) * 2 + 2);
    const auto ra = run_circuit(fresh_a, c);
    const auto rb = run_circuit(fresh_b, c);
    rec_a.insert(rec_a.end(), ra.begin(), ra.end());
    rec_b.insert(rec_b.end(), rb.begin(), rb.end());
  }
  EXPECT_NE(rec_a, rec_b);
}

}  // namespace
}  // namespace ftqc::sim
