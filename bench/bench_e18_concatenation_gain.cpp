// E18 (§5): the point of concatenation, measured at circuit level — compare
// the logical failure of one fault-tolerant recovery cycle on a level-1
// Steane block against a full level-2 (49-qubit) block, across the
// pseudothreshold. Above it, the bigger code is WORSE ("coding will make
// things worse instead of better"); below it, level 2 wins and the gain
// grows as eps shrinks — the mechanism behind the accuracy threshold.
//
// The level-2 gadget runs under BOTH disciplines side by side: the bare
// "all levels simultaneously" extraction and the extended-rectangle (exRec)
// interleave of level-1 recoveries inside the level-2 ancilla preparation.
// The exhaustive fault enumeration (tests/ft_concatenated_test.cpp) shows
// why the disciplines differ at O(eps^2): the bare gadget's malignant
// pairs put one fault in each of the two ancilla preparations.
//
// Both levels ride the ShotRunner engine parameter. Under --engine=batch
// (the default) the level-2 sweep runs BatchLevel2Recovery — the whole
// exRec cycle at 64 shots/word, nested level-1 recoveries included — which
// buys 4x the level-2 shot budget AND a frame-vs-batch cross-check at
// eps = 1e-3 whose speedup and agreement land in BENCH_E18.json
// (batch_speedup, cross_engine_sigma).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "ft/batch_level2.h"
#include "ft/concatenated_recovery.h"
#include "ft/steane_recovery.h"
#include "sim/shot_runner.h"
#include "threshold/pseudothreshold.h"

namespace {

using namespace ftqc;
using namespace ftqc::ft;

// Level 1 is exactly the pseudothreshold cycle measurement, so it rides the
// shared ShotRunner path and its engine parameter (batch by default: the
// level-1 curve is the shot-hungry side of this comparison).
Proportion level1_failure(double eps, size_t shots, uint64_t seed,
                          sim::ShotEngine engine) {
  return threshold::measure_cycle_failure(threshold::RecoveryMethod::kSteane,
                                          eps, shots, seed, 0.0, engine)
      .failures;
}

struct Level2Point {
  Proportion failures;
  double seconds = 0;
  [[nodiscard]] double shots_per_sec() const {
    return seconds > 0 ? static_cast<double>(failures.trials) / seconds : 0.0;
  }
};

// The 49-qubit level-2 gadget on either engine: serial Level2Recovery per
// shot, or BatchLevel2Recovery replaying the whole (exRec) cycle at 64
// shots/word with nested lane-masked level-1 recoveries.
Level2Point level2_failure(double eps, size_t shots, uint64_t seed,
                           Level2Discipline discipline,
                           sim::ShotEngine engine) {
  const auto noise = sim::NoiseParams::uniform_gate(eps);
  RecoveryPolicy policy;
  policy.level2_discipline = discipline;
  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  plan.seed_stride = 11;
  plan.engine = engine;
  plan.block_shots = 1024;  // 161-qubit registers: keep per-block memory flat
  const sim::ShotRunner runner(plan);
  const auto result = runner.run(
      [&](uint64_t shot_seed) {
        Level2Recovery rec(noise, policy, shot_seed);
        rec.run_cycle();
        return rec.any_logical_error();
      },
      [&](uint64_t block_seed, size_t block_shots) {
        BatchLevel2Recovery rec(noise, policy, block_shots, block_seed);
        rec.run_cycle();
        return rec.count_any_logical_error(block_shots);
      });
  return Level2Point{result.proportion(), result.seconds};
}

// |p1 - p2| in units of the combined binomial standard error.
double agreement_sigma(const Proportion& a, const Proportion& b) {
  const double pa = a.mean(), pb = b.mean();
  const double va = pa * (1 - pa) / static_cast<double>(a.trials);
  const double vb = pb * (1 - pb) / static_cast<double>(b.trials);
  const double se = std::sqrt(va + vb);
  return se > 0 ? std::fabs(pa - pb) / se : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E18",
                    {sim::ShotEngine::kFrame, sim::ShotEngine::kBatch});
  const sim::ShotEngine engine =
      ftqc::bench::engine_or(sim::ShotEngine::kBatch);
  const bool batch = engine == sim::ShotEngine::kBatch;
  std::printf(
      "E18: level-1 vs level-2 concatenated recovery, full circuit level.\n"
      "One FT recovery cycle per level; failure after ideal decode. The\n"
      "level-2 gadget runs both disciplines: bare subblocks vs the\n"
      "extended-rectangle (exRec) interleave of level-1 recoveries.\n"
      "[engine: %s%s]\n\n",
      sim::shot_engine_name(engine),
      batch ? ", level-2 shot budget x4" : "");
  ftqc::Table table({"eps", "level-1 P(fail)", "L2 bare", "L2 exRec",
                     "bare/L1", "exRec/L1", "exRec gain"});
  struct Point {
    double eps;
    size_t shots;
  };
  // Smoke mode divides shot counts by 100 (and still exercises both levels,
  // both disciplines and — under batch — the cross-engine check).
  const size_t div = ftqc::bench::smoke() ? 100 : 1;
  ftqc::bench::JsonResult json;
  std::vector<double> grid, bare_ratio, exrec_ratio;
  for (const Point pt : {Point{4e-3, 20000}, Point{2e-3, 20000},
                         Point{1e-3, 30000}, Point{5e-4, 40000},
                         Point{2.5e-4, 40000}}) {
    // The batch engine reclaims enough wall-clock to run the level-2 sweep
    // at the full level-1 shot budget (4x the serial sweep), tightening the
    // crossover extrapolation's error bars.
    const size_t l2_shots = batch ? pt.shots / div : pt.shots / div / 4;
    const auto l1 = level1_failure(pt.eps, pt.shots / div, 1000, engine);
    const auto bare =
        level2_failure(pt.eps, l2_shots, 2000, Level2Discipline::kBare, engine);
    const auto exrec = level2_failure(pt.eps, l2_shots, 2000,
                                      Level2Discipline::kExRec, engine);
    const double f1 = l1.mean();
    const double fb = bare.failures.mean();
    const double fx = exrec.failures.mean();
    grid.push_back(pt.eps);
    bare_ratio.push_back(f1 > 0 && fb > 0 ? fb / f1 : 0.0);
    exrec_ratio.push_back(f1 > 0 && fx > 0 ? fx / f1 : 0.0);
    table.add_row({ftqc::strfmt("%.2e", pt.eps), ftqc::strfmt("%.3e", f1),
                   ftqc::strfmt("%.3e", fb), ftqc::strfmt("%.3e", fx),
                   ftqc::strfmt("%.2f", bare_ratio.back()),
                   ftqc::strfmt("%.2f", exrec_ratio.back()),
                   ftqc::strfmt("%.2fx", fx > 0 ? fb / fx : -1.0)});
    if (pt.eps == 1e-3) {
      json.add("eps", pt.eps);
      json.add("level1_failure", f1);
      json.add("level2_failure", fb);  // historical name: bare discipline
      json.add("level2_exrec_failure", fx);
      if (fx > 0) json.add("exrec_gain", fb / fx);
      if (batch) {
        // Cross-engine acceptance gate: the exRec sweep's batch estimate
        // must match a serial frame run within binomial error while
        // delivering an order-of-magnitude throughput win.
        const auto serial = level2_failure(pt.eps, pt.shots / div / 4, 2000,
                                           Level2Discipline::kExRec,
                                           sim::ShotEngine::kFrame);
        const double sigma = agreement_sigma(serial.failures, exrec.failures);
        const double speedup =
            serial.shots_per_sec() > 0
                ? exrec.shots_per_sec() / serial.shots_per_sec()
                : 0.0;
        std::printf(
            "\nexRec cross-engine check at eps = %.0e: frame %.3e vs batch "
            "%.3e\n(%.2f sigma), frame %.3g shots/s vs batch %.3g shots/s -> "
            "%.1fx\n\n",
            pt.eps, serial.failures.mean(), fx, sigma,
            serial.shots_per_sec(), exrec.shots_per_sec(), speedup);
        json.add("batch_speedup", speedup);
        json.add("cross_engine_sigma", sigma);
      }
    }
  }
  table.print();
  // Log-log extrapolation of the level-2/level-1 failure ratio to ratio = 1:
  // the eps where each discipline's level-2 curve crosses the level-1 curve.
  const double cross_bare = ftqc::loglog_unit_crossing(grid, bare_ratio);
  const double cross_exrec = ftqc::loglog_unit_crossing(grid, exrec_ratio);
  if (cross_bare > 0) json.add("crossover_bare", cross_bare);
  if (cross_exrec > 0) json.add("crossover_exrec", cross_exrec);
  json.add_string("engine", sim::shot_engine_name(engine));
  json.write();
  if (cross_bare > 0 || cross_exrec > 0) {
    std::printf(
        "\nExtrapolated level-2-beats-level-1 crossover (ratio->1, log-log):\n"
        "  bare  : eps ~ %.1e\n"
        "  exRec : eps ~ %.1e   (paper's Eq. 34 threshold estimate ~ 6e-4)\n",
        cross_bare, cross_exrec);
  }
  std::printf(
      "\nShape check: both level-2 curves are steeper than level 1. Below\n"
      "the pseudothreshold the exRec curve sits well under the bare one:\n"
      "interleaving level-1 recoveries inside the level-2 ancilla\n"
      "preparation removes the cross-extraction malignant pairs (one\n"
      "transversal-XOR fault in EACH ancilla prep) that inflate the bare\n"
      "gadget's O(eps^2) constant, so the measured crossover moves up\n"
      "toward the paper's Eq. 34 estimate — at full shot counts exRec\n"
      "level 2 already beats level 1 at eps = 5e-4, where the bare gadget\n"
      "still loses by 5x. Above the pseudothreshold the interleave's extra\n"
      "hardware costs more than it saves (exRec gain < 1 at 4e-3), exactly\n"
      "the paper's \"coding makes things worse\" regime. The qualitative §5\n"
      "mechanism — the bigger code's failure curve is steeper, so below a\n"
      "critical eps each added level helps — is what the falling ratio\n"
      "columns demonstrate.\n");
  return 0;
}
