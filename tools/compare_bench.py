#!/usr/bin/env python3
"""Diff BENCH_*.json artifacts between two runs and flag regressions.

Usage:
    compare_bench.py BASELINE_DIR CURRENT_DIR [--threshold 0.2] [--strict]\
                     [--ignore REGEX]

Both directories are searched recursively for BENCH_<name>.json files (one
flat JSON object per file, as written by bench/bench_harness.h). Benchmarks
are paired by name; numeric fields are compared by relative change.

Field classes:
  * throughput  — names ending in shots_per_sec, _per_sec or speedup
    (higher is better): flagged when the current value drops by more than
    the threshold. This covers the cross-engine `batch_speedup` gates
    (BENCH_E05/BENCH_E18) and the BATCHSIM kernel rates — a faster batch
    engine must never be reported as a regression;
  * wall-clock  — names ending in seconds (lower is better): flagged when
    the current value grows by more than the threshold;
  * precision   — names ending in _relerr (relative 95% interval half-width
    of a rare-event estimate; lower is better): flagged when the current
    interval widens by more than the threshold. A widening relerr means the
    stratified estimator lost resolution — budget router drift or a
    conditional-table regression;
  * cost        — names ending in _infidelity or _qubit_rounds (lower is
    better): flagged when the current value grows by more than the
    threshold. This covers the BENCH_E19.json magic-state pipeline: a
    rising distilled_infidelity_* means the 15-to-1 distillation lost
    suppression, and a rising pipeline_qubit_rounds means the pipeline's
    space-time footprint grew;
  * threshold   — names starting with "threshold" (error-correction
    threshold estimates, e.g. threshold_mwpm / threshold_circuit in
    BENCH_E14.json; higher is better): flagged when the current estimate
    drops by more than the comparison threshold. A falling decoder
    threshold means the matcher or its DEM weights got worse at the same
    physical noise — the one direction E14's decoder ladder must not move;
  * accuracy    — every other numeric field: flagged when it moves by more
    than the threshold in either direction. Monte Carlo estimates wobble, so
    accuracy flags are advisory; rerun with more shots before reverting.
    The `crossover_*` fields of BENCH_E18.json ride this class: they are
    the headline Eq. 34 quantities, so a >threshold drift of the exRec
    crossover deserves a rerun at full statistics.

Fields with a boolean `<field>_extrapolated` companion (the E14/E18
crossing estimates) are compared only when NEITHER run flags them as
extrapolated: a log-log extrapolation and a data-bracketed measurement of
the same crossing are different quantities, and diffing them produces
noise, not signal.

Exit status is 0 unless --strict is given, in which case any flagged
regression exits 1. The CI step runs without --strict (non-blocking trend
tracking); humans comparing two local runs can opt into enforcement.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path


def load_benchmarks(root: Path) -> dict[str, dict]:
    """Maps bench name -> merged JSON for every BENCH_*.json under root.

    Two artifact shapes share the BENCH_*.json naming:
      * final artifacts (bench_harness.h JsonResult): no "point" field; their
        fields land under the bench name as-is;
      * checkpoint shards (sim/sweep_scheduler.h CheckpointStore): carry a
        "point" field naming the sweep point; their numeric fields merge into
        the same bench entry prefixed "<point>/" so a sharded (killed or
        in-flight) run still diffs point-by-point against a baseline instead
        of a shard silently OVERWRITING the final artifact's entry.
    """
    benches: dict[str, dict] = {}
    for path in sorted(root.rglob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping unreadable {path}: {err}")
            continue
        name = data.get("bench", path.stem.removeprefix("BENCH_"))
        entry = benches.setdefault(name, {})
        point = data.get("point")
        if isinstance(point, str):
            for field, value in data.items():
                if field in ("bench", "point", "crc"):
                    continue
                entry[f"{point}/{field}"] = value
        else:
            # Final artifacts merge second so a bench-level field always
            # wins over a same-named (never actually point-prefixed) key.
            entry.update(data)
    return benches


def classify(field: str) -> str:
    if field.endswith(("_per_sec", "speedup")):
        return "throughput"
    if field.endswith("seconds"):
        return "wall-clock"
    if field.endswith("_relerr"):
        return "precision"
    if field.endswith(("_infidelity", "_qubit_rounds")):
        return "cost"
    # Checkpoint-shard keys arrive "<point>/<field>"; classify the field part.
    if field.rsplit("/", 1)[-1].startswith("threshold"):
        return "threshold"
    return "accuracy"


def relative_change(base: float, cur: float) -> float | None:
    """Relative change, or None when a zero baseline makes it meaningless.

    Zero-valued Monte Carlo estimates (a failure count of 0 at smoke shot
    counts) flip between 0 and nonzero run to run; flagging them as infinite
    regressions would bury genuine signals, so they are skipped.
    """
    if base == cur:
        return 0.0
    if base == 0:
        return None
    return (cur - base) / abs(base)


def compare(
    base: dict, cur: dict, threshold: float, ignore: re.Pattern | None = None
) -> list[str]:
    """Returns human-readable regression lines for one benchmark pair."""
    flags: list[str] = []
    for field, base_value in base.items():
        if field in ("bench", "smoke") or field not in cur:
            continue
        if ignore is not None and ignore.search(field):
            continue
        cur_value = cur[field]
        if not isinstance(base_value, (int, float)) or isinstance(
            base_value, bool
        ):
            continue
        if not isinstance(cur_value, (int, float)) or cur_value is None:
            continue
        if base.get(f"{field}_extrapolated") is True or (
            cur.get(f"{field}_extrapolated") is True
        ):
            # The crossing was not bracketed by measured data in at least
            # one run; comparing an extrapolation against a measurement (or
            # another extrapolation) is noise.
            continue
        change = relative_change(float(base_value), float(cur_value))
        if change is None:
            continue
        kind = classify(field)
        regressed = (
            (kind == "throughput" and change < -threshold)
            or (kind == "wall-clock" and change > threshold)
            or (kind == "precision" and change > threshold)
            or (kind == "cost" and change > threshold)
            or (kind == "threshold" and change < -threshold)
            or (kind == "accuracy" and abs(change) > threshold)
        )
        if regressed:
            flags.append(
                f"  {field} [{kind}]: {base_value:g} -> {cur_value:g} "
                f"({change:+.1%})"
            )
    return flags


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative change that counts as a regression (default 0.20)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any regression is flagged",
    )
    parser.add_argument(
        "--ignore",
        type=re.compile,
        default=None,
        metavar="REGEX",
        help="skip fields whose name matches this regex (e.g. "
        "'seconds|_per_sec|speedup' to diff statistics only)",
    )
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cur = load_benchmarks(args.current)
    if not base:
        print(f"no BENCH_*.json under {args.baseline}; nothing to compare")
        return 0
    if not cur:
        print(f"no BENCH_*.json under {args.current}; nothing to compare")
        return 0

    total_flags = 0
    compared = 0
    for name in sorted(base):
        if name not in cur:
            print(f"{name}: present in baseline only (skipped)")
            continue
        if base[name].get("smoke") != cur[name].get("smoke"):
            print(f"{name}: smoke/full mode mismatch (skipped)")
            continue
        compared += 1
        flags = compare(base[name], cur[name], args.threshold, args.ignore)
        if flags:
            total_flags += len(flags)
            print(f"{name}: {len(flags)} regression(s) beyond "
                  f"{args.threshold:.0%}")
            print("\n".join(flags))
        else:
            print(f"{name}: ok")
    for name in sorted(set(cur) - set(base)):
        print(f"{name}: new benchmark (no baseline)")

    print(
        f"\ncompared {compared} benchmark(s); {total_flags} flagged "
        f"regression(s) at threshold {args.threshold:.0%}"
    )
    return 1 if (args.strict and total_flags) else 0


if __name__ == "__main__":
    sys.exit(main())
