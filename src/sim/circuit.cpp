#include "sim/circuit.h"

#include <algorithm>

namespace ftqc::sim {

std::string Operation::to_string() const {
  std::string s = gate_name(gate);
  // insert() instead of `"..." + s`: the latter trips GCC 12's -Wrestrict
  // false positive (PR 105651) at -O3 under -Werror.
  if (cond >= 0) s.insert(0, "if[m" + std::to_string(cond) + "] ");
  for (uint32_t t : targets) {
    s += ' ';
    s += std::to_string(t);
  }
  if (gate_is_channel(gate) || gate == Gate::RX || gate == Gate::RZ) {
    s += " (";
    s += std::to_string(arg);
    s += ')';
  }
  return s;
}

int32_t Circuit::append(Gate g, std::span<const uint32_t> targets, double arg,
                        int32_t cond) {
  FTQC_CHECK(static_cast<int>(targets.size()) == gate_arity(g),
             std::string("bad target count for ") + gate_name(g));
  if (g == Gate::CX || g == Gate::CZ || g == Gate::SWAP) {
    FTQC_CHECK(targets[0] != targets[1], "2-qubit gate with equal targets");
  }
  for (uint32_t t : targets) ensure_qubits(t + 1);
  Operation op;
  op.gate = g;
  op.targets.assign(targets.begin(), targets.end());
  op.arg = arg;
  op.cond = cond;
  if (cond >= 0) {
    FTQC_CHECK(static_cast<size_t>(cond) < num_measurements_,
               "conditional references a measurement that does not exist yet");
  }
  ops_.push_back(std::move(op));
  if (gate_records_measurement(g)) {
    return static_cast<int32_t>(num_measurements_++);
  }
  return -1;
}

void Circuit::inject(uint32_t q, char pauli) {
  switch (pauli) {
    case 'X': append1(Gate::INJECT_X, q); break;
    case 'Y': append1(Gate::INJECT_Y, q); break;
    case 'Z': append1(Gate::INJECT_Z, q); break;
    default: FTQC_CHECK(false, "inject expects X, Y or Z");
  }
}

void Circuit::append_circuit(const Circuit& other,
                             std::span<const uint32_t> qubit_map) {
  FTQC_CHECK(qubit_map.size() >= other.num_qubits(),
             "qubit map smaller than appended circuit");
  const auto record_offset = static_cast<int32_t>(num_measurements_);
  for (const Operation& op : other.ops()) {
    Operation mapped = op;
    for (auto& t : mapped.targets) t = qubit_map[t];
    if (mapped.cond >= 0) mapped.cond += record_offset;
    for (uint32_t t : mapped.targets) ensure_qubits(t + 1);
    ops_.push_back(std::move(mapped));
    if (gate_records_measurement(op.gate)) ++num_measurements_;
  }
}

size_t Circuit::count(Gate g) const {
  return static_cast<size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [g](const Operation& op) { return op.gate == g; }));
}

size_t Circuit::depth_in_ticks() const {
  return ops_.empty() ? 0 : count(Gate::TICK) + 1;
}

std::string Circuit::to_string() const {
  std::string s;
  for (const Operation& op : ops_) {
    s += op.to_string();
    s += '\n';
  }
  return s;
}

}  // namespace ftqc::sim
