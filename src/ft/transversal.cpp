#include "ft/transversal.h"

#include "common/check.h"

namespace ftqc::ft {

using sim::Circuit;

Circuit logical_x_bitwise(std::span<const uint32_t> block) {
  Circuit c;
  for (uint32_t q : block) c.x(q);
  c.tick();
  return c;
}

Circuit logical_x_minimal(std::span<const uint32_t> block) {
  FTQC_CHECK(block.size() == 7, "Steane block expected");
  Circuit c;
  // {0,1,2} supports the odd codeword 1110000 (Eq. (1) convention).
  c.x(block[0]);
  c.x(block[1]);
  c.x(block[2]);
  c.tick();
  return c;
}

Circuit logical_z_bitwise(std::span<const uint32_t> block) {
  Circuit c;
  for (uint32_t q : block) c.z(q);
  c.tick();
  return c;
}

Circuit logical_h_bitwise(std::span<const uint32_t> block) {
  Circuit c;
  for (uint32_t q : block) c.h(q);
  c.tick();
  return c;
}

Circuit logical_s_bitwise(std::span<const uint32_t> block) {
  Circuit c;
  for (uint32_t q : block) c.s_dag(q);
  c.tick();
  return c;
}

Circuit logical_cx_transversal(std::span<const uint32_t> source,
                               std::span<const uint32_t> target) {
  FTQC_CHECK(source.size() == target.size(), "block size mismatch");
  Circuit c;
  for (size_t i = 0; i < source.size(); ++i) c.cx(source[i], target[i]);
  c.tick();
  return c;
}

}  // namespace ftqc::ft
