#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftqc::threshold {

// The concatenation flow equations of §5. One level of concatenation maps
// the block error probability p to A·p² (Eq. 33, with A = C(7,2) = 21 in the
// combinatorial model); the fixed point 1/A is the accuracy threshold.
struct QuadraticFlow {
  double coefficient = 21.0;  // the "A" of p_{L+1} = A p_L²

  [[nodiscard]] double map(double p) const { return coefficient * p * p; }

  [[nodiscard]] double threshold() const { return 1.0 / coefficient; }

  // p after L levels of concatenation, iterating the map.
  [[nodiscard]] double at_level(double p0, size_t levels) const {
    double p = p0;
    for (size_t l = 0; l < levels; ++l) p = map(p);
    return p;
  }

  // Closed form of Eq. (36): eps(L) = eps0 (eps/eps0)^{2^L} with
  // eps0 = threshold().
  [[nodiscard]] double at_level_closed_form(double p0, size_t levels) const;

  // Smallest L with at_level(p0, L) <= target; SIZE_MAX when p0 is at or
  // above threshold (the flow diverges: "coding makes things worse").
  [[nodiscard]] size_t levels_needed(double p0, double target) const;
};

// Block size of the L-times concatenated [[7,1,3]] code.
[[nodiscard]] size_t concatenated_block_size(size_t levels);

// Eq. (37): the block size required to run a T-gate computation reliably,
// given threshold eps0 and physical rate eps:
//   blocksize ~ [ log(eps0·T) / log(eps0/eps) ]^{log2 7}.
[[nodiscard]] double block_size_for_computation(double t_gates, double eps,
                                                double eps0);

// Iterated trajectory p0, p1, ..., pL (convenience for tables/plots).
[[nodiscard]] std::vector<double> flow_trajectory(const QuadraticFlow& flow,
                                                  double p0, size_t levels);

}  // namespace ftqc::threshold
