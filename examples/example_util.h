#pragma once

#include <cstring>

// Removes every "--smoke" occurrence from argv (so positional-argument
// parsing stays intact) and reports whether one was present. The CTest
// bench-smoke tier runs each example with --smoke; examples shrink their
// statistical shot counts accordingly.
inline bool strip_smoke_flag(int& argc, char** argv) {
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;  // preserve the argv[argc] == NULL contract
  return smoke;
}
