#include "gf2/hamming.h"

#include <algorithm>

#include "gf2/linalg.h"

namespace ftqc::gf2 {

Hamming743::Hamming743()
    : h_(BitMat::from_rows({
          "0001111",
          "0110011",
          "1010101",
      })),
      h_sys_(BitMat::from_rows({
          "1001011",
          "0101101",
          "0011110",
      })) {
  // Enumerate codewords by brute force over all 7-bit words; 16 must survive.
  for (uint32_t w = 0; w < 128; ++w) {
    BitVec v(kN);
    for (size_t i = 0; i < kN; ++i) v.set(i, (w >> i) & 1u);
    if (!is_codeword(v)) continue;
    all_.push_back(static_cast<uint8_t>(w));
    if (v.parity()) {
      odd_.push_back(static_cast<uint8_t>(w));
    } else {
      even_.push_back(static_cast<uint8_t>(w));
    }
  }
  FTQC_CHECK(all_.size() == 16, "Hamming code must have 16 codewords");
  FTQC_CHECK(even_.size() == 8 && odd_.size() == 8,
             "even/odd Hamming subsets must have 8 words each");
}

BitVec Hamming743::correct(BitVec word) const {
  const size_t pos = error_position(syndrome(word));
  if (pos < kN) word.flip(pos);
  return word;
}

size_t Hamming743::error_position(const BitVec& syn) const {
  FTQC_CHECK(syn.size() == 3, "Hamming syndrome must have 3 bits");
  // Rows of Eq. (1) are MSB-first: syndrome bits (s0,s1,s2) encode the
  // 1-based position as s0*4 + s1*2 + s2.
  const size_t value = (syn.get(0) ? 4u : 0u) | (syn.get(1) ? 2u : 0u) |
                       (syn.get(2) ? 1u : 0u);
  return value == 0 ? kN : value - 1;
}

size_t Hamming743::brute_force_distance() const {
  size_t best = kN;
  for (uint8_t w : all_) {
    if (w == 0) continue;
    best = std::min(best, static_cast<size_t>(__builtin_popcount(w)));
  }
  return best;
}

LinearCode::LinearCode(BitMat check_matrix)
    : h_(std::move(check_matrix)), rank_(rank(h_)), gen_(kernel_basis(h_)) {
  FTQC_CHECK(gen_.size() == k(), "kernel basis size must equal k");
}

size_t LinearCode::brute_force_distance() const {
  FTQC_CHECK(k() <= 20, "distance exhaustion limited to k <= 20");
  size_t best = n();
  const size_t count = size_t{1} << k();
  for (size_t m = 1; m < count; ++m) {
    BitVec v(n());
    for (size_t i = 0; i < k(); ++i) {
      if ((m >> i) & 1u) v ^= gen_[i];
    }
    best = std::min(best, v.popcount());
  }
  return best;
}

BitMat hamming_check_matrix(size_t r) {
  FTQC_CHECK(r >= 2 && r <= 16, "hamming_check_matrix: 2 <= r <= 16");
  const size_t n = (size_t{1} << r) - 1;
  BitMat h(r, n);
  for (size_t col = 0; col < n; ++col) {
    const size_t value = col + 1;
    for (size_t row = 0; row < r; ++row) {
      // Row 0 holds the most significant bit, matching Eq. (1).
      h.set(row, col, (value >> (r - 1 - row)) & 1u);
    }
  }
  return h;
}

}  // namespace ftqc::gf2
