#include "topo/perm.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace ftqc::topo {

Perm Perm::from_cycles(const std::vector<std::vector<uint8_t>>& cycles) {
  Perm p;
  for (const auto& cycle : cycles) {
    FTQC_CHECK(cycle.size() >= 2, "cycles need at least two points");
    for (size_t i = 0; i < cycle.size(); ++i) {
      const uint8_t from = cycle[i];
      const uint8_t to = cycle[(i + 1) % cycle.size()];
      FTQC_CHECK(from < kPoints && to < kPoints, "cycle point out of range");
      p.image_[from] = to;
    }
  }
  return p;
}

bool Perm::is_even() const {
  // Parity = (#points - #cycles) mod 2 over the full cycle decomposition.
  std::array<bool, kPoints> seen{};
  int transpositions = 0;
  for (uint8_t start = 0; start < kPoints; ++start) {
    if (seen[start]) continue;
    int length = 0;
    uint8_t cursor = start;
    while (!seen[cursor]) {
      seen[cursor] = true;
      cursor = image_[cursor];
      ++length;
    }
    transpositions += length - 1;
  }
  return transpositions % 2 == 0;
}

std::vector<uint8_t> Perm::cycle_type() const {
  std::array<bool, kPoints> seen{};
  std::vector<uint8_t> type;
  for (uint8_t start = 0; start < kPoints; ++start) {
    if (seen[start]) continue;
    uint8_t length = 0;
    uint8_t cursor = start;
    while (!seen[cursor]) {
      seen[cursor] = true;
      cursor = image_[cursor];
      ++length;
    }
    if (length > 1) type.push_back(length);
  }
  std::sort(type.begin(), type.end());
  return type;
}

uint8_t Perm::lehmer_index() const {
  // Lehmer code: position of image_[i] among the not-yet-used values.
  uint8_t index = 0;
  uint8_t factorial[] = {24, 6, 2, 1, 1};
  std::array<bool, kPoints> used{};
  for (uint8_t i = 0; i < kPoints; ++i) {
    uint8_t rank = 0;
    for (uint8_t v = 0; v < image_[i]; ++v) {
      if (!used[v]) ++rank;
    }
    used[image_[i]] = true;
    index = static_cast<uint8_t>(index + rank * factorial[i]);
  }
  return index;
}

std::string Perm::to_string() const {
  if (is_identity()) return "e";
  std::array<bool, kPoints> seen{};
  std::string s;
  for (uint8_t start = 0; start < kPoints; ++start) {
    if (seen[start] || image_[start] == start) {
      seen[start] = true;
      continue;
    }
    s += '(';
    uint8_t cursor = start;
    while (!seen[cursor]) {
      seen[cursor] = true;
      s += static_cast<char>('1' + cursor);
      cursor = image_[cursor];
    }
    s += ')';
  }
  return s;
}

A5::A5() {
  index_by_lehmer_.fill(-1);
  // Generate A5 from two standard generators by closure.
  const Perm g1 = Perm::from_cycles({{0, 1, 2, 3, 4}});  // (12345)
  const Perm g2 = Perm::from_cycles({{0, 1, 2}});        // (123)
  std::set<Perm> closure = {Perm{}};
  bool grew = true;
  while (grew) {
    grew = false;
    std::vector<Perm> current(closure.begin(), closure.end());
    for (const Perm& p : current) {
      for (const Perm* g : {&g1, &g2}) {
        const Perm next = p * (*g);
        if (closure.insert(next).second) grew = true;
      }
    }
  }
  elements_.assign(closure.begin(), closure.end());
  FTQC_CHECK(elements_.size() == 60, "A5 must have 60 elements");
  for (size_t i = 0; i < elements_.size(); ++i) {
    FTQC_CHECK(elements_[i].is_even(), "A5 element must be even");
    index_by_lehmer_[elements_[i].lehmer_index()] = static_cast<int16_t>(i);
  }
}

size_t A5::index_of(const Perm& p) const {
  const int16_t idx = index_by_lehmer_[p.lehmer_index()];
  FTQC_CHECK(idx >= 0, "permutation is not in A5");
  return static_cast<size_t>(idx);
}

std::vector<size_t> A5::conjugacy_class(const Perm& p) const {
  std::set<size_t> members;
  for (const Perm& h : elements_) {
    members.insert(index_of(p.conjugated_by(h)));
  }
  return {members.begin(), members.end()};
}

bool A5::conjugate_in_group(const Perm& a, const Perm& b) const {
  for (const Perm& h : elements_) {
    if (a.conjugated_by(h) == b) return true;
  }
  return false;
}

std::vector<size_t> A5::commutator_subgroup() const {
  std::set<size_t> closure;
  // Seed with all commutators, then close under multiplication.
  for (const Perm& a : elements_) {
    for (const Perm& b : elements_) {
      closure.insert(index_of(a.inverse() * b.inverse() * a * b));
    }
  }
  bool grew = true;
  while (grew) {
    grew = false;
    std::vector<size_t> current(closure.begin(), closure.end());
    for (size_t i : current) {
      for (size_t j : current) {
        if (closure.insert(index_of(elements_[i] * elements_[j])).second) {
          grew = true;
        }
      }
    }
  }
  return {closure.begin(), closure.end()};
}

}  // namespace ftqc::topo
