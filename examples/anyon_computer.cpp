// anyon_computer: drive the §7 topological computer — calibrate flux pairs
// from the vacuum, run NOT gates by pull-through, build superpositions with
// the charge interferometer, and compute AND purely by conjugation.
//
//   ./build/examples/anyon_computer [--smoke]
#include <cstdio>

#include "example_util.h"
#include "topo/anyon_gates.h"
#include "topo/anyon_sim.h"

int main(int argc, char** argv) {
  using namespace ftqc::topo;
  // The walkthrough is already sub-second; --smoke is accepted (contract
  // shared by every example) but changes nothing.
  strip_smoke_flag(argc, argv);
  const A5 group;

  std::printf("== Topological quantum computing with A5 fluxons (§7) ==\n\n");

  std::printf("1. Calibrating flux pairs from vacuum pairs (Eq. 44 + Fig. 18):\n");
  AnyonSim sim(group, 2026);
  const size_t raw = sim.create_vacuum_pair(computational_u0());
  std::printf("   vacuum pair spans the full 3-cycle class: %zu flux values\n",
              sim.support_size());
  const Perm calibrated = sim.measure_flux(raw);
  std::printf("   interferometer projects it onto flux %s\n\n",
              calibrated.to_string().c_str());

  std::printf("2. A classical NOT by pulling through a v = %s pair (Fig. 21):\n",
              not_conjugator().to_string().c_str());
  const size_t qubit = create_computational_pair(sim, false);
  std::printf("   qubit starts as u0 = %s (|0>)\n",
              computational_u0().to_string().c_str());
  apply_topological_not(sim, qubit);
  std::printf("   after NOT: flux is u1 with probability %.1f\n",
              sim.flux_probability(qubit, computational_u1()));

  std::printf("\n3. Superposition via the charge interferometer (Fig. 22):\n");
  const bool minus = measure_computational_charge(sim, qubit);
  std::printf("   measured charge %s: the pair is now (|u0> %s |u1>)/sqrt2\n",
              minus ? "-" : "+", minus ? "-" : "+");
  std::printf("   flux is genuinely undetermined: P(u0) = %.2f, P(u1) = %.2f\n",
              sim.flux_probability(qubit, computational_u0()),
              sim.flux_probability(qubit, computational_u1()));
  const Perm collapsed = sim.measure_flux(qubit);
  std::printf("   a flux measurement collapses it to %s\n\n",
              collapsed.to_string().c_str());

  std::printf("4. AND by conjugation (nonsolvability of A5, Barrington):\n");
  const Perm sigma = Perm::from_cycles({{0, 1, 2, 3, 4}});
  const auto and_prog = BranchingProgram::conjunction(
      group, BranchingProgram::variable(0, sigma),
      BranchingProgram::variable(1, sigma));
  for (int in = 0; in < 4; ++in) {
    const bool a = in & 1, b = in & 2;
    std::printf("   AND(%d,%d) -> group element %s -> bit %d\n", a ? 1 : 0,
                b ? 1 : 0, and_prog.eval_group({a, b}).to_string().c_str(),
                and_prog.eval({a, b}) ? 1 : 0);
  }
  std::printf(
      "\nEverything above used only topological operations: pair creation,\n"
      "braiding/pull-through, and interferometric charge/flux measurement —\n"
      "no local control of the medium, which is why it is intrinsically\n"
      "fault tolerant (§7.1).\n");
  return 0;
}
