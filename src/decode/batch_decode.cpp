#include "decode/batch_decode.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/rng.h"
#include "sim/batch_frame_sim.h"
#include "topo/toric_code.h"

namespace ftqc::decode {

std::vector<gf2::BitVec> decode_lanes(const SpacetimeToricDecoder& decoder,
                                      const PackedSyndromes& packed,
                                      uint64_t lane_mask) {
  const topo::ToricCode& code = decoder.code();
  const size_t sites = decoder.side() == ToricSide::kPlaquette
                           ? code.num_plaquettes()
                           : code.num_vertices();
  FTQC_CHECK(packed.sites == sites, "packed syndrome site count mismatch");
  FTQC_CHECK(packed.rounds > 0, "need at least the final trusted round");
  FTQC_CHECK(packed.words.size() == packed.sites * packed.rounds,
             "packed syndrome word buffer size mismatch");

  // Diff pass, shared across lanes: one XOR per (site, round) word. prev
  // folds the diff back in (prev ^= d restores the current row) so no row is
  // ever copied. Set bits stream defects into their lane's list; iterating
  // rounds outer and sites inner preserves the serial decoder's canonical
  // defect order within every lane.
  std::array<std::vector<uint32_t>, 64> lane_site;
  std::array<std::vector<uint32_t>, 64> lane_round;
  std::vector<uint64_t> prev(sites, 0);
  for (size_t r = 0; r < packed.rounds; ++r) {
    const uint64_t* row = packed.row(r);
    for (size_t s = 0; s < sites; ++s) {
      uint64_t d = row[s] ^ prev[s];
      prev[s] ^= d;
      d &= lane_mask;
      while (d != 0) {
        const int lane = __builtin_ctzll(d);
        d &= d - 1;
        lane_site[static_cast<size_t>(lane)].push_back(
            static_cast<uint32_t>(s));
        lane_round[static_cast<size_t>(lane)].push_back(
            static_cast<uint32_t>(r));
      }
    }
  }

  std::vector<gf2::BitVec> corrections(64);
  for (size_t lane = 0; lane < 64; ++lane) {
    if (((lane_mask >> lane) & 1) == 0) continue;
    corrections[lane] =
        decoder.decode_defects(lane_site[lane], lane_round[lane]);
  }
  return corrections;
}

uint64_t batch_memory_2d_failures(const SpacetimeToricDecoder& decoder,
                                  double p, size_t shots, uint64_t seed) {
  const topo::ToricCode& code = decoder.code();
  FTQC_CHECK(decoder.side() == ToricSide::kPlaquette,
             "2D memory kernel decodes the plaquette (X-error) side");
  const size_t l = code.lattice();
  const size_t sites = code.num_plaquettes();

  uint64_t failures = 0;
  Rng seq(seed);
  PackedSyndromes packed;
  packed.resize(sites, 1);
  for (size_t done = 0; done < shots; done += 64) {
    const size_t lanes = std::min<size_t>(64, shots - done);
    const uint64_t mask =
        lanes == 64 ? ~uint64_t{0} : (uint64_t{1} << lanes) - 1;
    sim::BatchFrameSim bsim(code.num_qubits(), 64, seq.next_u64());
    for (size_t q = 0; q < code.num_qubits(); ++q) {
      bsim.x_error(q, p);
    }
    // One trusted syndrome row: each plaquette's word is the XOR of its four
    // edges' X-flip words — 64 shots of syndrome extraction per plaquette in
    // three word ops.
    for (size_t y = 0; y < l; ++y) {
      for (size_t x = 0; x < l; ++x) {
        packed.words[y * l + x] = bsim.x_flips(code.h_edge(x, y))[0] ^
                                  bsim.x_flips(code.h_edge(x, y + 1))[0] ^
                                  bsim.x_flips(code.v_edge(x, y))[0] ^
                                  bsim.x_flips(code.v_edge(x + 1, y))[0];
      }
    }
    const auto corrections = decode_lanes(decoder, packed, mask);
    // Logical parities of the raw error, bit-sliced across all lanes.
    uint64_t err_f1 = 0, err_f2 = 0;
    for (size_t x = 0; x < l; ++x) err_f1 ^= bsim.x_flips(code.h_edge(x, 0))[0];
    for (size_t y = 0; y < l; ++y) err_f2 ^= bsim.x_flips(code.v_edge(0, y))[0];
    for (size_t lane = 0; lane < lanes; ++lane) {
      const auto [c1, c2] = code.logical_x_flips(corrections[lane]);
      const bool f1 = (((err_f1 >> lane) & 1) != 0) != c1;
      const bool f2 = (((err_f2 >> lane) & 1) != 0) != c2;
      failures += (f1 || f2) ? 1 : 0;
    }
  }
  return failures;
}

}  // namespace ftqc::decode
