#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "codes/stabilizer_code.h"
#include "pauli/pauli_string.h"
#include "sim/circuit.h"

namespace ftqc::universal {

// Flag-qubit syndrome extraction (Postler et al., after Chao-Reichardt):
// one bare syndrome ancilla A plus one flag qubit F replace the verified
// w-bit cat state of the Shor method. The ancilla couples to the generator's
// support through a controlled-Pauli comb; two CX(A, F) gates bracket the
// middle of the comb, so any ancilla X fault that could spread to a
// weight >= 2 "hook" error on the data also flips F. A fired flag does not
// say *which* hook landed — it narrows the possibilities to a small,
// position-dependent set that a follow-up (unflagged) syndrome round can
// disambiguate. That conditional decode table is FlagDecodeTable below.
//
// Cost per generator: 2 ancilla qubits and w+2 two-qubit gates, against the
// Shor method's w-qubit cat + check qubit (w+1 ancillas before verification
// retries) — the trade bench E19 quantifies.

// The extraction circuit for one generator. `order` lists the generator's
// support qubits in comb order (it must be exactly the support); `ancilla`
// and `flag` are scratch qubit indices outside the data block. With
// `flagged` false the flag qubit is omitted entirely — the bare comb used
// for the follow-up rounds, which measures one bit instead of two.
//
// Measurement rows: [0] = X-basis ancilla readout (the syndrome bit),
// [1] = Z-basis flag readout (flagged builds only).
//
// Fault-propagation contract (what makes the decode table sound):
//  * Z on A only flips the syndrome readout — it never reaches F or data.
//  * Data errors never reach F (Z propagates target->control through CX as
//    Z on A; X on a CZ target adds Z on A; neither has an X component on A).
//    So the flag fires only for genuine ancilla X faults.
//  * X on A after comb position k spreads the generator's Paulis onto the
//    suffix order[k..w-1] (the hook) and, if it happens between the two
//    CX(A, F), flips the flag.
[[nodiscard]] sim::Circuit flag_extraction_circuit(
    const pauli::PauliString& generator, std::span<const uint32_t> order,
    uint32_t ancilla, uint32_t flag, bool flagged);

// Flag-conditioned decode table: for each generator g, a map from the TRUE
// syndrome (read by a clean follow-up round — under a single fault, a fired
// flag spends the fault, so the follow-up is noiseless) to the unique
// single-fault data error consistent with "the flag of g fired".
//
// The candidate set per generator enumerates every circuit fault that can
// fire the flag: suffix hooks H_k (an ancilla X between comb positions),
// H_k times a one-qubit Pauli on order[k-1] (the 2-qubit depolarizing
// variants of the comb gate itself), and the identity (faults on the flag
// qubit alone). Construction verifies the table is unambiguous — two
// candidates sharing a syndrome must differ by a stabilizer — and, when the
// natural support order is ambiguous, deterministically searches permuted
// comb orders until an unambiguous one is found (the chosen order is what
// flag_extraction_circuit must be built with; read it back via order()).
class FlagDecodeTable {
 public:
  explicit FlagDecodeTable(const codes::StabilizerCode& code);

  [[nodiscard]] const codes::StabilizerCode& code() const { return code_; }
  [[nodiscard]] size_t num_generators() const { return orders_.size(); }

  // Comb order the table was built for (per generator).
  [[nodiscard]] const std::vector<uint32_t>& order(size_t g) const {
    return orders_[g];
  }

  // Correction for "flag of generator g fired; the follow-up round read
  // `syndrome`". nullptr when no single-fault candidate matches (more than
  // one fault happened) — callers fall back to the plain lookup decoder.
  [[nodiscard]] const pauli::PauliString* decode(
      size_t g, const gf2::BitVec& syndrome) const;

  // Total table entries, summed over generators (structure tests).
  [[nodiscard]] size_t table_size() const;

 private:
  using Table = std::unordered_map<uint64_t, pauli::PauliString>;
  // Builds the table for one generator under one comb order; false on
  // ambiguity (two candidates share a syndrome but differ by a logical).
  [[nodiscard]] bool try_build(size_t g, const std::vector<uint32_t>& order,
                               Table* table) const;

  const codes::StabilizerCode& code_;
  std::vector<std::vector<uint32_t>> orders_;
  std::vector<Table> tables_;
};

}  // namespace ftqc::universal
