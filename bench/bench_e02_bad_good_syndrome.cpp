// E2 (§3.1, Fig. 6): the "Bad!" syndrome circuit reuses one ancilla as the
// target of four successive XORs, so a single ancilla phase error feeds back
// into several data qubits: block phase errors at O(eps). The "Good!"
// circuit (one Shor-state bit per XOR) pushes that to O(eps²).
//
// The Monte Carlo section rides ShotRunner's engine parameter. The "Good!"
// path's cat-retry loop is data-dependent per shot; under --engine=batch
// (the default) it runs as masked re-replay through BatchCatRetry, the same
// machinery as BatchShorRecovery. The failure metric bit-slices too: for
// the self-dual Steane code, Z-coset weight >= 2 is exactly the Hamming
// decode_logical of the Z-frame word (coset weight 0 -> trivial, 1 -> a
// correctable single error; both decode to logical 0).
#include <array>
#include <cstdio>

#include "bench_harness.h"
#include "common/table.h"
#include "ft/batch_recovery.h"
#include "ft/batch_shor.h"
#include "ft/fault_enumeration.h"
#include "ft/gadget_runner.h"
#include "ft/steane_circuits.h"
#include "gf2/hamming.h"
#include "sim/batch_frame_sim.h"
#include "sim/frame_sim.h"
#include "sim/shot_runner.h"

namespace {

using namespace ftqc;
using namespace ftqc::ft;

constexpr std::array<uint32_t, 7> kData = {0, 1, 2, 3, 4, 5, 6};
constexpr std::array<uint32_t, 4> kCat = {7, 8, 9, 10};
constexpr uint32_t kCheck = 11;
constexpr std::array<uint32_t, 8> kBadAll = {0, 1, 2, 3, 4, 5, 6, 7};
constexpr std::array<uint32_t, 12> kAll = {0, 1, 2, 3, 4, 5,
                                           6, 7, 8, 9, 10, 11};

// Z-coset weight of the data block after extraction (>=2 means the gadget
// injected a multi-qubit phase error: the §3.1 catastrophe).
size_t data_z_coset_weight(const sim::FrameSim& frame) {
  static const gf2::Hamming743 hamming;
  size_t best = 8;
  for (uint8_t stab : hamming.even_codewords()) {
    size_t w = 0;
    for (size_t q = 0; q < 7; ++q) {
      w += frame.z_frame().get(q) ^ ((stab >> q) & 1u);
    }
    best = std::min(best, w);
  }
  return best;
}

void execute_bad(sim::FrameSim& frame, NoiseInjector& injector) {
  run_gadget(frame, nonft_bitflip_syndrome(kData, 7), injector, kBadAll);
}

void execute_good(sim::FrameSim& frame, NoiseInjector& injector) {
  static const gf2::Hamming743 hamming;
  for (size_t row = 0; row < 3; ++row) {
    // Verified Shor-state ancilla (§3.3: discard flagged cats and retry),
    // then one XOR per ancilla bit (Fig. 7a).
    for (int attempt = 0; attempt < 8; ++attempt) {
      for (uint32_t q : kCat) frame.reset(q);
      frame.reset(kCheck);
      const auto record = run_gadget(
          frame, cat_prep_with_check(kCat, kCheck, true), injector, kAll);
      if (record[0] == 0) break;  // verification passed
    }
    run_gadget(frame,
               shor_syndrome_bit(kData, kCat, hamming.check_matrix().row(row),
                                 /*x_type=*/false),
               injector, kAll);
    for (uint32_t q : kCat) frame.reset(q);
    frame.reset(kCheck);
  }
}

bool run_bad(NoiseInjector& injector) {
  sim::FrameSim frame(8, 1);
  execute_bad(frame, injector);
  return data_z_coset_weight(frame) >= 2;
}

bool run_good(NoiseInjector& injector) {
  sim::FrameSim frame(12, 1);
  execute_good(frame, injector);
  return data_z_coset_weight(frame) >= 2;
}

// Lanes among the first n whose data Z frame has coset weight >= 2 — the
// bit-sliced data_z_coset_weight(frame) >= 2 (see the header comment).
uint64_t count_bad_lanes(const sim::BatchFrameSim& sim, size_t n) {
  static const gf2::Hamming743 hamming;
  const size_t words = sim.num_words();
  const uint64_t* z_rows[7];
  for (size_t q = 0; q < 7; ++q) z_rows[q] = sim.z_flips(q);
  std::vector<uint64_t> logical(words);
  batch_decode_rows(hamming, z_rows, /*logical=*/true, logical.data(), words);
  return batch_count_lanes(logical.data(), words, n);
}

uint64_t bad_block(const sim::NoiseParams& noise, uint64_t seed, size_t n) {
  sim::BatchFrameSim sim(8, n, seed);
  BatchGadgetRunner gadgets(sim, noise);
  static const sim::Circuit kBad = nonft_bitflip_syndrome(kData, 7);
  gadgets.run(kBad, kBadAll, /*lane_mask=*/nullptr);
  return count_bad_lanes(sim, n);
}

uint64_t good_block(const sim::NoiseParams& noise, uint64_t seed, size_t n) {
  static const gf2::Hamming743 hamming;
  static const sim::Circuit kPrep = cat_prep_with_check(kCat, kCheck, true);
  static const std::array<sim::Circuit, 3> kSyndrome = [] {
    std::array<sim::Circuit, 3> c;
    for (size_t row = 0; row < 3; ++row) {
      c[row] = shor_syndrome_bit(kData, kCat, hamming.check_matrix().row(row),
                                 /*x_type=*/false);
    }
    return c;
  }();
  sim::BatchFrameSim sim(12, n, seed);
  BatchGadgetRunner gadgets(sim, noise);
  BatchCatRetry retry(sim);
  ft::RecoveryPolicy retry_policy;
  retry_policy.max_cat_attempts = 8;
  retry_policy.verify_ancilla = true;
  for (size_t row = 0; row < 3; ++row) {
    retry.prepare(gadgets, kPrep, kCat, kAll, retry_policy,
                  /*active=*/nullptr);
    gadgets.run(kSyndrome[row], kAll, /*lane_mask=*/nullptr);
    for (uint32_t q : kCat) sim.reset(q);
    sim.reset(kCheck);
  }
  return count_bad_lanes(sim, n);
}

double mc_rate(bool good, double eps, size_t shots, uint64_t seed,
               sim::ShotEngine engine) {
  const auto noise = sim::NoiseParams::uniform_gate(eps);
  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  plan.engine = engine;
  const sim::ShotRunner runner(plan);
  const auto result = runner.run(
      [&](uint64_t shot_seed) {
        StochasticInjector injector(noise);
        sim::FrameSim frame(12, shot_seed);
        if (good) {
          execute_good(frame, injector);
        } else {
          execute_bad(frame, injector);
        }
        return data_z_coset_weight(frame) >= 2;
      },
      [&](uint64_t block_seed, size_t block_shots) {
        return good ? good_block(noise, block_seed, block_shots)
                    : bad_block(noise, block_seed, block_shots);
      });
  return result.failure_rate();
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E02",
                    {sim::ShotEngine::kFrame, sim::ShotEngine::kBatch});
  const sim::ShotEngine engine =
      ftqc::bench::engine_or(sim::ShotEngine::kBatch);
  std::printf(
      "E2: shared-ancilla (Fig. 2/6 'Bad!') vs Shor-state ('Good!') syndrome\n"
      "extraction. Metric: P(>=2 phase errors fed into the data block).\n"
      "[engine: %s]\n\n",
      sim::shot_engine_name(engine));

  const auto bad_scan = scan_single_faults(run_bad, gate_kinds_only());
  const auto good_scan = scan_single_faults(run_good, gate_kinds_only());
  std::printf("Single-fault enumeration (linear-in-eps coefficient):\n");
  std::printf("  bad circuit : %zu locations, weighted failing = %.2f  -> O(eps)\n",
              bad_scan.num_locations, bad_scan.weighted_failing);
  std::printf("  good circuit: %zu locations, weighted failing = %.2f  -> O(eps^2)\n\n",
              good_scan.num_locations, good_scan.weighted_failing);

  ftqc::bench::JsonResult json;
  json.add("bad_single_fault_coeff", bad_scan.weighted_failing);
  json.add("good_single_fault_coeff", good_scan.weighted_failing);

  const size_t shots = ftqc::bench::scaled(40000, 500);
  ftqc::Table table({"eps", "bad: P(>=2 Z)", "good: P(>=2 Z)", "bad/eps",
                     "good/eps^2"});
  for (const double eps : {0.02, 0.01, 0.005, 0.002}) {
    const double bad = mc_rate(false, eps, shots, 7, engine);
    const double good = mc_rate(true, eps, shots, 11, engine);
    table.add_row({ftqc::strfmt("%.3g", eps), ftqc::strfmt("%.4g", bad),
                   ftqc::strfmt("%.4g", good), ftqc::strfmt("%.2f", bad / eps),
                   ftqc::strfmt("%.1f", good / (eps * eps))});
  }
  table.print();
  json.add("shots", shots);
  json.add_string("engine", sim::shot_engine_name(engine));
  json.write();
  std::printf(
      "\nShape check: bad/eps is ~constant (first-order failure); good/eps^2\n"
      "is ~constant (fault tolerance achieved), matching §3.1-3.2.\n");
  return 0;
}
