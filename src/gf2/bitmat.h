#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "gf2/bitvec.h"

namespace ftqc::gf2 {

// Dense GF(2) matrix stored as a vector of bit-packed rows. Row operations
// (the only ones Gaussian elimination needs) are word-parallel.
class BitMat {
 public:
  BitMat() = default;
  BitMat(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows, BitVec(cols)) {}

  // Builds from rows of '0'/'1' strings, e.g. the Hamming matrix of Eq. (1).
  [[nodiscard]] static BitMat from_rows(std::initializer_list<std::string> rows);

  [[nodiscard]] size_t rows() const { return rows_; }
  [[nodiscard]] size_t cols() const { return cols_; }

  [[nodiscard]] bool get(size_t r, size_t c) const { return data_[r].get(c); }
  void set(size_t r, size_t c, bool v) { data_[r].set(c, v); }

  [[nodiscard]] const BitVec& row(size_t r) const { return data_[r]; }
  [[nodiscard]] BitVec& row(size_t r) { return data_[r]; }

  void xor_row_into(size_t src, size_t dst) { data_[dst] ^= data_[src]; }
  void swap_rows(size_t a, size_t b) { std::swap(data_[a], data_[b]); }

  // Matrix-vector product over GF(2): y_r = <row_r, x>.
  [[nodiscard]] BitVec mul(const BitVec& x) const {
    FTQC_DCHECK(x.size() == cols_, "dimension mismatch in BitMat::mul");
    BitVec y(rows_);
    for (size_t r = 0; r < rows_; ++r) y.set(r, data_[r].dot(x));
    return y;
  }

  [[nodiscard]] BitMat transposed() const {
    BitMat t(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r) {
      for (size_t c = 0; c < cols_; ++c) {
        if (get(r, c)) t.set(c, r, true);
      }
    }
    return t;
  }

  // Horizontal concatenation [A | B]; used for the H̄ = (H_Z | H_X) checks of
  // §3.6 and for augmented solves.
  [[nodiscard]] static BitMat hconcat(const BitMat& a, const BitMat& b);

  [[nodiscard]] bool operator==(const BitMat& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s;
    for (size_t r = 0; r < rows_; ++r) {
      s += data_[r].to_string();
      s += '\n';
    }
    return s;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<BitVec> data_;
};

}  // namespace ftqc::gf2
