#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/circuit.h"

namespace ftqc::sim {

// Bit-parallel Pauli-frame sampler: 64 independent shots advance per word
// operation. Qubit-major layout (one x-word and one z-word per qubit per
// 64-shot block) keeps every gate a handful of word ops — the same design
// trade Stim makes, sized for this library's block codes.
//
// Unlike FrameSim, this engine runs straight-line circuits only (no
// per-shot control flow / postselection); it exists for the heavy
// memory-channel sweeps and the kernel-throughput benchmark (E17).
class BatchFrameSim {
 public:
  // shots is rounded up to a multiple of 64.
  BatchFrameSim(size_t num_qubits, size_t shots, uint64_t seed = 1);

  [[nodiscard]] size_t num_qubits() const { return n_; }
  [[nodiscard]] size_t num_shots() const { return shots_; }
  [[nodiscard]] size_t num_words() const { return words_; }

  void clear();

  void apply_h(size_t q);
  void apply_s(size_t q);
  void apply_cx(size_t control, size_t target);
  void apply_cz(size_t a, size_t b);

  void depolarize1(size_t q, double p);
  void depolarize2(size_t a, size_t b, double p);
  void x_error(size_t q, double p);
  void y_error(size_t q, double p);
  void z_error(size_t q, double p);

  // Measurement flip masks for all shots (64 shots per word).
  [[nodiscard]] const uint64_t* x_flips(size_t q) const { return x_word(q); }
  [[nodiscard]] const uint64_t* z_flips(size_t q) const { return z_word(q); }
  [[nodiscard]] bool x_flip(size_t q, size_t shot) const {
    return (x_word(q)[shot >> 6] >> (shot & 63)) & 1u;
  }
  [[nodiscard]] bool z_flip(size_t q, size_t shot) const {
    return (z_word(q)[shot >> 6] >> (shot & 63)) & 1u;
  }

  // Executes a straight-line circuit (unitaries + channels; measurements are
  // ignored — read flips afterwards). Used by bench E17 and the memory sweeps.
  void run(const Circuit& circuit);

 private:
  [[nodiscard]] uint64_t* x_word(size_t q) { return &frames_[2 * q * words_]; }
  [[nodiscard]] const uint64_t* x_word(size_t q) const {
    return &frames_[2 * q * words_];
  }
  [[nodiscard]] uint64_t* z_word(size_t q) {
    return &frames_[(2 * q + 1) * words_];
  }
  [[nodiscard]] const uint64_t* z_word(size_t q) const {
    return &frames_[(2 * q + 1) * words_];
  }

  // Word with each bit set independently with probability p.
  uint64_t random_mask(double p);

  size_t n_;
  size_t shots_;
  size_t words_;
  std::vector<uint64_t> frames_;  // layout: [qubit][x|z][word]
  Rng rng_;
};

}  // namespace ftqc::sim
