#pragma once

#include <complex>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "topo/perm.h"

namespace ftqc::topo {

// Simulator for a register of fluxon-antifluxon pairs in a Kitaev spin
// model with gauge group A5 (§7.3-7.4). Each pair carries trivial total
// flux — the state |u, u^{-1}> is labeled by a single group element u — so a
// basis state of the register is a tuple of group elements, and the physical
// operations are:
//   * pull-through (Eq. 41): pulling pair t through pair c conjugates the
//     inside flux, u_t -> u_c^{-1} u_t u_c, a classical reversible gate
//     extended linearly to superpositions;
//   * flux measurement (Fig. 18/19): projective in the flux basis, realized
//     by repeated charged-projectile interferometry;
//   * charge measurement (Fig. 22): projects a pair supported on {u0, u1}
//     (conjugate fluxes) onto |±> = (|u0> ± |u1>)/sqrt2;
//   * vacuum pair creation (Eq. 44): the charge-zero superposition over a
//     conjugacy class.
//
// Pull-throughs keep basis states sparse; charge measurements at most double
// the support, so a hash-map state is exact and cheap.
class AnyonSim {
 public:
  explicit AnyonSim(const A5& group, uint64_t seed = 1);

  [[nodiscard]] size_t num_pairs() const { return num_pairs_; }

  // Appends a calibrated pair |u, u^{-1}> ("withdrawn from the reservoir of
  // calibrated flux pairs"); returns its index.
  size_t create_pair(const Perm& u);

  // Appends a charge-zero vacuum pair: the normalized sum over the whole
  // conjugacy class of `representative` (Eq. 44).
  size_t create_vacuum_pair(const Perm& representative);

  // Eq. (41): pulls pair `target` through pair `through`; the target's flux
  // is conjugated by the through-pair's flux.
  void pull_through(size_t target, size_t through);
  // The inverse motion (conjugation by the inverse flux).
  void pull_through_inverse(size_t target, size_t through);

  // Eq. (40): the exchange interaction on single fluxons, lifted to pairs:
  // |u_a>|u_b> -> |u_b>|u_b^{-1} u_a u_b| — the two pairs swap roles and the
  // one carried around picks up the conjugation.
  void exchange(size_t a, size_t b);

  // Conjugates pair `target` by a calibrated classical flux u (a pull
  // through a freshly created |u, u^{-1}> pair that is then returned to the
  // reservoir).
  void conjugate_by_constant(size_t target, const Perm& u);

  // Flux measurement: projects pair `p` onto a definite flux and returns it.
  [[nodiscard]] Perm measure_flux(size_t p);

  // Charge interferometer on a pair supported on exactly {u0, u1}: returns
  // +1 (true => |->) ... false => projected onto |+>, true => onto |->.
  [[nodiscard]] bool measure_charge_pm(size_t p, const Perm& u0, const Perm& u1);

  // Amplitude of a basis assignment (for tests).
  [[nodiscard]] std::complex<double> amplitude(
      const std::vector<Perm>& assignment) const;
  [[nodiscard]] double norm() const;
  // Marginal probability that pair p holds flux u.
  [[nodiscard]] double flux_probability(size_t p, const Perm& u) const;
  [[nodiscard]] size_t support_size() const { return amplitudes_.size(); }

  Rng& rng() { return rng_; }

 private:
  using Key = uint64_t;  // 6 bits per pair, up to 10 pairs

  [[nodiscard]] Key key_set(Key key, size_t pair, size_t element_index) const;
  [[nodiscard]] size_t key_get(Key key, size_t pair) const;

  const A5& group_;
  size_t num_pairs_ = 0;
  std::unordered_map<Key, std::complex<double>> amplitudes_;
  Rng rng_;
};

}  // namespace ftqc::topo
