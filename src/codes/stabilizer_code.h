#pragma once

#include <string>
#include <vector>

#include "gf2/bitvec.h"
#include "pauli/pauli_string.h"

namespace ftqc::codes {

// An [[n, k, d]] stabilizer code in the formalism of §3.6: the code space is
// the simultaneous +1 eigenspace of n-k commuting Pauli generators, and the
// 2k logical operators X̂_i / Ẑ_i commute with the stabilizer, anticommute
// pairwise within a logical qubit, and commute across logical qubits
// (Eq. 29).
class StabilizerCode {
 public:
  StabilizerCode(std::string name, size_t n,
                 std::vector<pauli::PauliString> generators,
                 std::vector<pauli::PauliString> logical_x,
                 std::vector<pauli::PauliString> logical_z);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] size_t n() const { return n_; }
  [[nodiscard]] size_t k() const { return logical_x_.size(); }
  [[nodiscard]] size_t num_generators() const { return generators_.size(); }

  [[nodiscard]] const std::vector<pauli::PauliString>& generators() const {
    return generators_;
  }
  [[nodiscard]] const pauli::PauliString& logical_x(size_t i = 0) const {
    return logical_x_[i];
  }
  [[nodiscard]] const pauli::PauliString& logical_z(size_t i = 0) const {
    return logical_z_[i];
  }

  // Syndrome of a Pauli error: bit j is 1 iff the error anticommutes with
  // generator j ("every error changes the eigenvalues of some generators").
  [[nodiscard]] gf2::BitVec syndrome(const pauli::PauliString& error) const;

  // True iff p commutes with every generator (p is in the normalizer).
  [[nodiscard]] bool in_normalizer(const pauli::PauliString& p) const {
    return !syndrome(p).any();
  }

  // True iff p is a product of generators, up to phase (p acts trivially on
  // the code space).
  [[nodiscard]] bool in_stabilizer_group(const pauli::PauliString& p) const;

  // For a residual error in the normalizer: which logical qubits suffer an
  // X flip (residual anticommutes with Ẑ_i) or a Z flip (anticommutes with
  // X̂_i). A degenerate residual (in the stabilizer) flips nothing.
  struct LogicalEffect {
    gf2::BitVec x_flips;  // k bits
    gf2::BitVec z_flips;  // k bits
    [[nodiscard]] bool any() const { return x_flips.any() || z_flips.any(); }
  };
  [[nodiscard]] LogicalEffect logical_effect(const pauli::PauliString& residual) const;

  // Minimum weight of a normalizer element outside the stabilizer group —
  // the code distance — by exhaustive search (3^n; use only for n <= ~11).
  [[nodiscard]] size_t brute_force_distance() const;

  // Checks all the structural invariants (generator commutation, logical
  // algebra of Eq. 29) and aborts on violation; called by the constructor.
  void validate() const;

 private:
  std::string name_;
  size_t n_;
  std::vector<pauli::PauliString> generators_;
  std::vector<pauli::PauliString> logical_x_;
  std::vector<pauli::PauliString> logical_z_;
};

}  // namespace ftqc::codes
