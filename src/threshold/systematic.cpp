#include "threshold/systematic.h"

#include <cmath>

#include "common/rng.h"
#include "sim/statevector_sim.h"

namespace ftqc::threshold {

double CoherentErrorModel::systematic_failure(size_t n) const {
  const double phi = theta * static_cast<double>(n) / 2.0;
  const double s = std::sin(phi);
  return s * s;
}

double CoherentErrorModel::random_walk_failure(size_t n) const {
  // S ~ sum of n iid ±1; failure = E[sin²(theta·S/2)]. Binomial sum; n is
  // small enough (<= ~1e4) for the direct evaluation used by the bench.
  double total = 0;
  // log-binomial to stay stable for large n.
  double log_binom = -static_cast<double>(n) * std::log(2.0);  // C(n,0)/2^n
  for (size_t k = 0; k <= n; ++k) {
    const double s = static_cast<double>(2.0 * static_cast<double>(k) -
                                         static_cast<double>(n));
    const double sin_term = std::sin(theta * s / 2.0);
    total += std::exp(log_binom) * sin_term * sin_term;
    // C(n,k+1)/2^n from C(n,k)/2^n.
    log_binom += std::log(static_cast<double>(n - k)) -
                 std::log(static_cast<double>(k + 1));
  }
  return total;
}

double CoherentErrorModel::systematic_failure_approx(size_t n) const {
  const double nn = static_cast<double>(n);
  return nn * nn * theta * theta / 4.0;
}

double CoherentErrorModel::random_walk_failure_approx(size_t n) const {
  return static_cast<double>(n) * theta * theta / 4.0;
}

double simulate_random_walk_failure(double theta, size_t n, size_t shots,
                                    uint64_t seed) {
  Rng rng(seed);
  size_t failures = 0;
  for (size_t shot = 0; shot < shots; ++shot) {
    sim::StateVectorSim sim(1, seed * 7919 + shot);
    sim.apply_h(0);
    for (size_t g = 0; g < n; ++g) {
      sim.apply_rz(0, rng.bernoulli(0.5) ? theta : -theta);
    }
    failures += sim.measure_x(0) ? 1 : 0;  // |-> outcome = failure
  }
  return static_cast<double>(failures) / static_cast<double>(shots);
}

double simulate_systematic_failure(double theta, size_t n, uint64_t seed) {
  sim::StateVectorSim sim(1, seed);
  sim.apply_h(0);
  for (size_t g = 0; g < n; ++g) sim.apply_rz(0, theta);
  // Probability of reading |->: project onto the X basis.
  sim.apply_h(0);
  return sim.prob_one(0);
}

}  // namespace ftqc::threshold
