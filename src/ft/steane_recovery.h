#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "ft/noise_injector.h"
#include "ft/recovery.h"
#include "gf2/hamming.h"
#include "sim/frame_sim.h"
#include "sim/noise_model.h"

namespace ftqc::ft {

// Qubit placement of one Fig. 9 recovery cycle inside a caller-owned frame:
// the block under recovery plus its syndrome and verification ancilla
// blocks. SteaneRecovery uses the fixed steane_layout register; the level-2
// extended-rectangle interleave (concatenated_recovery) aims the same cycle
// at each 7-qubit subblock of a 49-qubit block with shared scratch ancillas.
struct SteaneCycleLayout {
  std::array<uint32_t, 7> data{};
  std::array<uint32_t, 7> anc_a{};
  std::array<uint32_t, 7> anc_b{};
};

// Every circuit one cycle executes, precompiled for a fixed layout. The
// exhaustive fault scans replay a level-2 cycle — which nests 14+ level-1
// cycles — hundreds of thousands of times, so rebuilding these per call
// would triple the scan's wall clock.
struct SteaneCycleCircuits {
  sim::Circuit zero_prep_a;
  sim::Circuit zero_prep_b;
  sim::Circuit cx_ab;
  sim::Circuit measure_b;
  sim::Circuit ancilla_flip_fix;
  // Indexed by phase_type (false=bit-flip, true=phase-flip).
  std::array<sim::Circuit, 2> syndrome;
  // Indexed by [phase_type][error position].
  std::array<std::array<sim::Circuit, 7>, 2> correction;
};

[[nodiscard]] SteaneCycleCircuits compile_steane_cycle(
    const SteaneCycleLayout& layout);

// One full fault-tolerant Steane recovery cycle (Fig. 9) on `layout`,
// announcing every fault opportunity to `injector`. Storage accounting is
// local to the 21 named qubits: data+anc_a idle during syndrome-ancilla
// work, all 21 during verification — the §6 "maximal parallelism" rule
// applied to this cycle's own register. Corrections land in place; the
// caller decodes the residual frame. This is THE cycle implementation:
// SteaneRecovery::run_cycle delegates here, so the standalone level-1
// driver and the level-2 interleave cannot drift apart. `circuits` must be
// compile_steane_cycle(layout); the convenience overload compiles it on the
// fly.
void run_steane_cycle(sim::FrameSim& frame, NoiseInjector& injector,
                      const RecoveryPolicy& policy,
                      const gf2::Hamming743& hamming,
                      const SteaneCycleLayout& layout,
                      const SteaneCycleCircuits& circuits);
void run_steane_cycle(sim::FrameSim& frame, NoiseInjector& injector,
                      const RecoveryPolicy& policy,
                      const gf2::Hamming743& hamming,
                      const SteaneCycleLayout& layout);

// Fault-tolerant error recovery for one Steane block using Steane's
// encoded-ancilla method — the complete circuit of Fig. 9:
//
//   1. prepare |0>_code ancilla blocks and verify them against a second
//      encoded block (§3.3);
//   2. bit-flip syndrome: verified ancilla rotated to the Steane state
//      (Eq. 17), transversal XOR data->ancilla, destructive Z measurement,
//      classical Hamming check (§3.6);
//   3. phase-flip syndrome: verified |0>_code ancilla, transversal XOR
//      ancilla->data, destructive X measurement, Hamming check;
//   4. §3.4 syndrome repetition: act only on a nontrivial syndrome read
//      twice in agreement.
//
// Runs on a Pauli frame, so one cycle costs microseconds and the level-1
// failure analysis (E5/E6) can afford exhaustive two-fault enumeration.
//
// Register layout: data block [0,7), syndrome ancilla [7,14), verification
// ancilla [14,21).
class SteaneRecovery {
 public:
  static constexpr uint32_t kNumQubits = 21;

  SteaneRecovery(const sim::NoiseParams& noise, RecoveryPolicy policy,
                 uint64_t seed);

  // Returns the frame to the all-clean state.
  void reset();

  // Injects a Pauli on a data qubit (error-channel input for experiments).
  void inject_data(uint32_t q, char pauli);
  // iid depolarizing channel on every data qubit (the memory step of E1/E5).
  void apply_memory_noise(double p);

  // One full fault-tolerant recovery cycle (Fig. 9).
  void run_cycle();

  // Residual data-block errors, ideally decoded: true if the block carries a
  // logical X (resp. Z) error that ideal recovery can no longer repair.
  [[nodiscard]] bool logical_x_error() const;
  [[nodiscard]] bool logical_z_error() const;
  [[nodiscard]] bool any_logical_error() const {
    return logical_x_error() || logical_z_error();
  }

  // Raw residual weight per error type (for the "two errors in a block"
  // accounting of §3).
  [[nodiscard]] size_t residual_x_weight() const;
  [[nodiscard]] size_t residual_z_weight() const;

  // Residual weight reduced modulo the stabilizer: a frame pattern equal to
  // a stabilizer element (e.g. the X part of a prep fault that fans out into
  // exactly one generator's support) acts trivially on the code space and
  // counts as weight 0. This is the §3 notion of "errors in a block".
  [[nodiscard]] size_t residual_x_coset_weight() const;
  [[nodiscard]] size_t residual_z_coset_weight() const;

  // Replaces the stochastic injector (owned default) with an external one;
  // used by the fault enumerator. Pass nullptr to restore the default.
  void set_injector(NoiseInjector* injector);

  [[nodiscard]] sim::FrameSim& frame() { return frame_; }

 private:
  sim::FrameSim frame_;
  sim::NoiseParams noise_;
  RecoveryPolicy policy_;
  gf2::Hamming743 hamming_;
  StochasticInjector stochastic_;
  NoiseInjector* injector_;  // points at stochastic_ unless overridden
};

}  // namespace ftqc::ft
