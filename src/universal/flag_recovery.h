#pragma once

#include <cstdint>
#include <vector>

#include "codes/lookup_decoder.h"
#include "codes/stabilizer_code.h"
#include "ft/noise_injector.h"
#include "ft/recovery.h"
#include "sim/frame_sim.h"
#include "sim/noise_model.h"
#include "universal/flag_extraction.h"

namespace ftqc::universal {

// Fault-tolerant recovery for an arbitrary stabilizer code via flag-qubit
// syndrome extraction: the third RecoveryPolicy family next to the Steane
// (encoded-ancilla) and Shor (cat-state) methods. Two ancilla qubits total —
// one syndrome ancilla, one flag — against the Shor method's
// max-weight cat + check qubit.
//
// Protocol per cycle:
//  1. Measure every generator once with the FLAGGED comb, recording
//     syndrome and flag bits.
//  2. Any flag fired: one full UNFLAGGED re-extraction (under a single
//     fault the fired flag spent it, so this round is clean), then decode
//     through the flag-conditioned table of the FIRST fired generator; a
//     syndrome outside the table (multi-fault) falls back to the plain
//     lookup decoder. An identity correction applies no circuit (and
//     collects no noise).
//  3. No flag: the §3.4 repeat policy on the round-1 syndrome — trivial
//     means done; nontrivial is re-read with the unflagged comb and
//     corrected only when the two readings agree.
//
// Round 1 deliberately completes ALL generators before branching (no early
// abort at the first flag): the batched driver replays whole gadgets per
// 64-lane word, and identical control flow is what makes the two pin
// bit-for-bit. Register layout: data [0, n), ancilla n, flag n+1.
class FlagRecovery {
 public:
  FlagRecovery(const codes::StabilizerCode& code, const sim::NoiseParams& noise,
               ft::RecoveryPolicy policy, uint64_t seed);

  void reset();
  void inject_data(uint32_t q, char pauli);
  void apply_memory_noise(double p);

  void run_cycle();

  [[nodiscard]] pauli::PauliString residual() const;
  [[nodiscard]] bool any_logical_error() const;

  // Flagged round-1 measurements whose flag fired, summed over cycles.
  [[nodiscard]] uint64_t flags_raised() const { return flags_raised_; }

  void set_injector(ft::NoiseInjector* injector);
  [[nodiscard]] sim::FrameSim& frame() { return frame_; }
  [[nodiscard]] const FlagDecodeTable& table() const { return table_; }

 private:
  // One comb measurement. Flagged: fills *flag_fired; unflagged: pass
  // nullptr. Returns the syndrome bit.
  [[nodiscard]] bool measure_generator(size_t g, bool flagged,
                                       bool* flag_fired);
  [[nodiscard]] gf2::BitVec extract_unflagged();
  void apply_correction(const pauli::PauliString& correction);

  const codes::StabilizerCode& code_;
  FlagDecodeTable table_;
  codes::LookupDecoder decoder_;
  sim::FrameSim frame_;
  sim::NoiseParams noise_;
  ft::RecoveryPolicy policy_;
  ft::StochasticInjector stochastic_;
  ft::NoiseInjector* injector_;
  uint32_t ancilla_;
  uint32_t flag_;
  std::vector<uint32_t> all_qubits_;     // data + ancilla + flag
  std::vector<uint32_t> noflag_qubits_;  // data + ancilla
  std::vector<uint32_t> data_only_;
  std::vector<sim::Circuit> flagged_gadgets_;
  std::vector<sim::Circuit> unflagged_gadgets_;
  uint64_t flags_raised_ = 0;
};

}  // namespace ftqc::universal
