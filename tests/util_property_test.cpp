// Property tests for the support layers: RNG, statistics, circuit IR
// composition, batch-vs-single frame agreement, tableau internals, and
// anyon-simulator entanglement behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/batch_frame_sim.h"
#include "sim/frame_sim.h"
#include "sim/noise_model.h"
#include "sim/runner.h"
#include "sim/tableau_sim.h"
#include "topo/anyon_gates.h"
#include "topo/anyon_sim.h"

namespace ftqc {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (const uint64_t bound : {1ull, 2ull, 3ull, 7ull, 60ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[rng.next_below(5)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(5);
  Rng child_a = parent.fork(0);
  Rng child_b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child_a.next_u64() == child_b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Proportion, WilsonIntervalCoversTruth) {
  // 95% interval should cover the true p in most repeated experiments.
  const double p_true = 0.3;
  Rng rng(17);
  int covered = 0;
  const int reps = 200;
  for (int r = 0; r < reps; ++r) {
    Proportion prop;
    for (int i = 0; i < 500; ++i) {
      prop.trials++;
      prop.successes += rng.bernoulli(p_true);
    }
    const double lo = prop.wilson_center() - prop.wilson_halfwidth();
    const double hi = prop.wilson_center() + prop.wilson_halfwidth();
    covered += (p_true >= lo && p_true <= hi);
  }
  EXPECT_GT(covered, reps * 0.9);
}

TEST(Proportion, EmptyTrialsAreSafe) {
  const Proportion p;
  EXPECT_EQ(p.mean(), 0.0);
  EXPECT_EQ(p.wilson_halfwidth(), 1.0);
}

TEST(Proportion, ZeroTrialsAreNotAMeasuredZero) {
  // mean() returns 0.0 both for "never ran" and "0 failures in n shots";
  // resolved() is the bit fit loops must gate on (regression: the E14/E18
  // sweeps used to feed unresolved points into their crossover fits).
  const Proportion never_ran;
  EXPECT_FALSE(never_ran.resolved());
  EXPECT_EQ(never_ran.mean(), 0.0);
  EXPECT_TRUE(std::isinf(never_ran.relative_halfwidth()));

  const Proportion measured_zero{0, 1000};
  EXPECT_TRUE(measured_zero.resolved());
  EXPECT_EQ(measured_zero.mean(), 0.0);

  const Proportion resolved{25, 1000};
  EXPECT_TRUE(resolved.resolved());
  EXPECT_NEAR(resolved.relative_halfwidth(),
              resolved.wilson_halfwidth() / 0.025, 1e-12);
}

TEST(UnitCrossing, FlagsExtrapolationOutsideSampledRange) {
  // Ratios straddle 1 inside the sampled x range: a measured crossing.
  const std::vector<double> xs = {1e-4, 2e-4, 4e-4, 8e-4};
  const std::vector<double> straddling = {0.25, 0.5, 1.0, 2.0};
  const UnitCrossing measured = loglog_unit_crossing_ex(xs, straddling);
  EXPECT_TRUE(measured.valid);
  EXPECT_FALSE(measured.extrapolated);
  EXPECT_GE(measured.x, measured.x_min);
  EXPECT_LE(measured.x, measured.x_max);

  // All ratios below 1: the fitted crossing lies beyond x_max and must be
  // flagged (this was silently reported as a measurement before).
  const std::vector<double> below = {0.01, 0.02, 0.04, 0.08};
  const UnitCrossing extrapolated = loglog_unit_crossing_ex(xs, below);
  EXPECT_TRUE(extrapolated.valid);
  EXPECT_TRUE(extrapolated.extrapolated);
  EXPECT_GT(extrapolated.x, extrapolated.x_max);

  // The scalar wrapper keeps its historical contract.
  EXPECT_EQ(loglog_unit_crossing(xs, straddling), measured.x);

  // Unusable inputs: fewer than two positive points -> invalid.
  const UnitCrossing invalid = loglog_unit_crossing_ex({1e-4}, {0.5});
  EXPECT_FALSE(invalid.valid);
  EXPECT_EQ(loglog_unit_crossing({1e-4}, {0.5}), 0.0);

  // Zero-ratio points (unresolved Monte Carlo zeros) are excluded from the
  // fit and from the sampled range.
  const std::vector<double> with_zeros = {0.0, 0.5, 1.0, 2.0};
  const UnitCrossing skip_zeros = loglog_unit_crossing_ex(xs, with_zeros);
  EXPECT_TRUE(skip_zeros.valid);
  EXPECT_EQ(skip_zeros.x_min, 2e-4);
}

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d/%d", 3, 7), "3/7");
  EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
}

TEST(CircuitCompose, AppendRemapsQubitsAndConditionals) {
  sim::Circuit inner(2);
  inner.h(0);
  const int32_t m = inner.m(0);
  inner.x(1, m);

  sim::Circuit outer(5);
  outer.m(4);  // occupies record slot 0
  const std::vector<uint32_t> map = {3, 2};
  outer.append_circuit(inner, map);

  // Inner's H 0 must land on qubit 3; the conditional must reference the
  // OFFSET record index (1, not 0).
  bool saw_h3 = false, saw_cond = false;
  for (const auto& op : outer.ops()) {
    if (op.gate == sim::Gate::H && op.targets[0] == 3) saw_h3 = true;
    if (op.gate == sim::Gate::X && op.targets[0] == 2) {
      saw_cond = true;
      EXPECT_EQ(op.cond, 1);
    }
  }
  EXPECT_TRUE(saw_h3);
  EXPECT_TRUE(saw_cond);
  EXPECT_EQ(outer.num_measurements(), 2u);
}

TEST(CircuitCompose, GateCountsAndDepth) {
  sim::Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.tick();
  c.cx(1, 2);
  c.tick();
  EXPECT_EQ(c.count(sim::Gate::CX), 2u);
  EXPECT_EQ(c.depth_in_ticks(), 3u);  // two TICKs => three layers
}

TEST(BatchVsSingleFrame, CompositeCircuitStatisticsMatch) {
  // A layered circuit with propagation: compare marginal flip rates.
  sim::Circuit circuit(4);
  circuit.x_error(0, 0.08);
  circuit.cx(0, 1);
  circuit.depolarize1(2, 0.1);
  circuit.cx(2, 3);
  circuit.z_error(3, 0.05);
  circuit.cx(1, 2);

  const size_t shots = 64 * 1024;
  sim::BatchFrameSim batch(4, shots, 5);
  batch.run(circuit);

  std::array<double, 4> batch_x{};
  for (size_t q = 0; q < 4; ++q) {
    size_t hits = 0;
    for (size_t s = 0; s < batch.num_shots(); ++s) hits += batch.x_flip(q, s);
    batch_x[q] = static_cast<double>(hits) / batch.num_shots();
  }

  std::array<double, 4> single_x{};
  for (size_t s = 0; s < shots; ++s) {
    sim::FrameSim frame(4, 9000 + s);
    run_circuit(frame, circuit);
    for (size_t q = 0; q < 4; ++q) {
      single_x[q] += frame.destructive_z_flip(q) ? 1 : 0;
    }
  }
  for (auto& v : single_x) v /= static_cast<double>(shots);

  for (size_t q = 0; q < 4; ++q) {
    EXPECT_NEAR(batch_x[q], single_x[q], 0.01) << "qubit " << q;
  }
}

TEST(TableauInternals, DestabilizersPairWithStabilizers) {
  // destab_i anticommutes with stab_i and commutes with every stab_j (j!=i),
  // in the initial state and after a scrambling Clifford circuit.
  sim::TableauSim sim(5, 3);
  sim.apply_h(0);
  sim.apply_cx(0, 3);
  sim.apply_s(3);
  sim.apply_cx(3, 1);
  sim.apply_h(4);
  sim.apply_cx(4, 2);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      const bool commute =
          sim.destabilizer(i).commutes_with(sim.stabilizer(j));
      EXPECT_EQ(commute, i != j) << i << "," << j;
    }
  }
}

TEST(NoiseModelExtras, LeakChannelsInserted) {
  sim::Circuit ideal(2);
  ideal.h(0);
  ideal.cx(0, 1);
  sim::NoiseParams params;
  params.p_leak = 1e-3;
  const auto noisy = add_noise(ideal, params);
  EXPECT_EQ(noisy.count(sim::Gate::LEAK_ERROR), 3u);  // 1 after H, 2 after CX
}

TEST(NoiseModelExtras, UniformGateSetsAllKnobs) {
  const auto p = sim::NoiseParams::uniform_gate(1e-3, 1e-4);
  EXPECT_EQ(p.eps_gate1, 1e-3);
  EXPECT_EQ(p.eps_gate2, 1e-3);
  EXPECT_EQ(p.eps_meas, 1e-3);
  EXPECT_EQ(p.eps_prep, 1e-3);
  EXPECT_EQ(p.eps_store, 1e-4);
  EXPECT_FALSE(p.is_noiseless());
  EXPECT_TRUE(sim::NoiseParams{}.is_noiseless());
}

TEST(AnyonEntanglement, PullThroughSuperpositionEntanglesPairs) {
  // Pull a u0-pair through a vacuum pair: each class element conjugates the
  // target differently, entangling the two pairs (Eq. 41 extended linearly).
  const topo::A5 group;
  topo::AnyonSim sim(group, 21);
  const size_t target = sim.create_pair(topo::computational_u0());
  const size_t through = sim.create_vacuum_pair(topo::computational_u0());
  EXPECT_EQ(sim.support_size(), 20u);
  sim.pull_through(target, through);
  EXPECT_EQ(sim.support_size(), 20u);
  // The target's marginal is now mixed over the orbit of u0 under
  // class conjugation; measuring the through-pair's flux collapses the
  // target to the matching conjugate.
  const topo::Perm u_c = sim.measure_flux(through);
  const topo::Perm expected = topo::computational_u0().conjugated_by(u_c);
  EXPECT_NEAR(sim.flux_probability(target, expected), 1.0, 1e-12);
}

TEST(AnyonEntanglement, ChargeMeasurementOnHalfOfEntangledState) {
  // NOT conditioned on a superposed through-pair, then charge-measure the
  // target: outcomes remain properly normalized (regression test for the
  // projector bookkeeping).
  const topo::A5 group;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    topo::AnyonSim sim(group, 50 + seed);
    const size_t q = topo::create_computational_pair(sim, false);
    (void)topo::measure_computational_charge(sim, q);
    topo::apply_topological_not(sim, q);
    EXPECT_NEAR(sim.norm(), 1.0, 1e-9);
    (void)sim.measure_flux(q);
    EXPECT_NEAR(sim.norm(), 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace ftqc
