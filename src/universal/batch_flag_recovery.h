#pragma once

#include <cstdint>
#include <vector>

#include "codes/lookup_decoder.h"
#include "codes/stabilizer_code.h"
#include "ft/batch_recovery.h"
#include "ft/recovery.h"
#include "sim/batch_frame_sim.h"
#include "sim/noise_model.h"
#include "universal/flag_extraction.h"

namespace ftqc::universal {

// Bit-parallel FlagRecovery: the flag-qubit recovery cycle on 64 shots per
// word, replaying the same comb circuits through BatchGadgetRunner with the
// noise masked to the lanes whose serial shot would execute each gadget.
// Per-shot control flow maps to lane masks:
//  * round 1 (flagged combs) runs on every lane;
//  * the clean re-extraction runs masked to the lanes whose flag fired;
//  * the flag-conditioned correction gathers those lanes by (first fired
//    generator, follow-up syndrome), decodes each distinct key once, and
//    applies the Pauli as masked injections;
//  * the unflagged lanes run the ordinary §3.4 repeat policy through
//    run_batch_repeat_policy, with round 1's syndrome reused as the first
//    reading (the closure's first extract call copies it instead of
//    measuring again — serial shots never re-measure round 1 either).
// Identical control flow is what pins this driver bit-for-bit against the
// serial FlagRecovery under deterministic injections.
class BatchFlagRecovery {
 public:
  BatchFlagRecovery(const codes::StabilizerCode& code,
                    const sim::NoiseParams& noise, ft::RecoveryPolicy policy,
                    size_t shots, uint64_t seed);

  [[nodiscard]] size_t num_shots() const { return sim_.num_shots(); }
  [[nodiscard]] size_t num_words() const { return sim_.num_words(); }

  void reset();
  void inject_data(uint32_t q, char pauli);
  void apply_memory_noise(double p);

  void run_cycle();

  [[nodiscard]] pauli::PauliString residual(size_t shot) const;
  [[nodiscard]] bool any_logical_error(size_t shot) const;
  [[nodiscard]] uint64_t count_any_logical_error(
      size_t num_lanes = SIZE_MAX) const;

  // Flagged round-1 measurements whose flag fired, summed over lanes.
  [[nodiscard]] uint64_t flags_raised() const { return flags_raised_; }

  [[nodiscard]] sim::BatchFrameSim& frames() { return sim_; }
  [[nodiscard]] const FlagDecodeTable& table() const { return table_; }

 private:
  // One unflagged comb on the lanes of `active`; writes the bit-sliced
  // syndrome bit (words words) into `out`.
  void measure_unflagged(size_t g, const uint64_t* active, uint64_t* out);
  // Flag-conditioned correction for the lanes of `flagged_mask`.
  void correct_flagged(const std::vector<uint64_t>& flag_rows,
                       const uint64_t* syndrome_rows,
                       const uint64_t* flagged_mask);
  // Masked data-block correction shared by both decode paths: gate noise on
  // the corrected qubits, storage on the rest, then the reference shift.
  void apply_group_correction(const pauli::PauliString& correction,
                              const uint64_t* mask);

  const codes::StabilizerCode& code_;
  FlagDecodeTable table_;
  codes::LookupDecoder decoder_;
  sim::BatchFrameSim sim_;
  ft::BatchGadgetRunner gadgets_;
  sim::NoiseParams noise_;
  ft::RecoveryPolicy policy_;
  size_t words_;
  uint32_t ancilla_;
  uint32_t flag_;
  std::vector<uint32_t> all_qubits_;
  std::vector<uint32_t> noflag_qubits_;
  std::vector<sim::Circuit> flagged_gadgets_;
  std::vector<sim::Circuit> unflagged_gadgets_;
  uint64_t flags_raised_ = 0;
};

}  // namespace ftqc::universal
