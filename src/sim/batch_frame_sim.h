#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sim/circuit.h"

namespace ftqc::sim {

// Word-packed measurement record: one row per recorded measurement, 64 shots
// per word. Rows hold outcome *flips* relative to the noiseless reference run
// (the same flip semantics as FrameSim's record).
class BatchRecord {
 public:
  BatchRecord() = default;
  explicit BatchRecord(size_t words_per_row) : words_(words_per_row) {}

  [[nodiscard]] size_t size() const {
    return words_ == 0 ? 0 : bits_.size() / words_;
  }
  [[nodiscard]] size_t num_words() const { return words_; }

  [[nodiscard]] const uint64_t* row(size_t m) const {
    FTQC_DCHECK(m < size(), "record row out of range");
    return &bits_[m * words_];
  }
  [[nodiscard]] bool bit(size_t m, size_t shot) const {
    return (row(m)[shot >> 6] >> (shot & 63)) & 1u;
  }

  // Appends one row copied from `src` (words_per_row words).
  void append_row(const uint64_t* src) {
    bits_.insert(bits_.end(), src, src + words_);
  }
  void clear() { bits_.clear(); }

 private:
  size_t words_ = 0;
  std::vector<uint64_t> bits_;
};

// Bit-parallel Pauli-frame sampler: 64 independent shots advance per word
// operation. Qubit-major layout (one x-word and one z-word per qubit per
// 64-shot block) keeps every gate a handful of word ops — the same design
// trade Stim makes, sized for this library's block codes.
//
// Unlike the original straight-line-only version, this engine now replays
// full gadgets: M/MX/MR/R append word-packed rows to a measurement record
// (with the post-measurement gauge randomization FrameSim does), classical
// feedforward is bit-sliced (conditional Pauli corrections keyed on record
// rows), and per-shot postselection accumulates into an abort mask. Every
// stochastic channel takes an optional per-lane mask so drivers can model
// per-shot control flow (lanes that skipped a gadget must not collect its
// faults). Non-Pauli conditional gates remain unsupported: they cannot be
// bit-sliced.
class BatchFrameSim {
 public:
  // shots is rounded up to a multiple of 64.
  BatchFrameSim(size_t num_qubits, size_t shots, uint64_t seed = 1);

  [[nodiscard]] size_t num_qubits() const { return n_; }
  [[nodiscard]] size_t num_shots() const { return shots_; }
  [[nodiscard]] size_t num_words() const { return words_; }

  // Zeroes frames, the record, and the abort mask.
  void clear();
  // Drops recorded rows only (frames keep evolving); invalidates indices
  // previously returned by the measurement methods.
  void clear_record();

  void apply_h(size_t q);
  void apply_s(size_t q);
  void apply_cx(size_t control, size_t target);
  void apply_cz(size_t a, size_t b);
  void apply_swap(size_t a, size_t b);

  // Stochastic channels. `lane_mask` (words() words), when non-null,
  // restricts the error to the lanes whose bit is set — the bit-sliced
  // equivalent of "this shot did not execute the faulty gate".
  void depolarize1(size_t q, double p, const uint64_t* lane_mask = nullptr);
  void depolarize2(size_t a, size_t b, double p,
                   const uint64_t* lane_mask = nullptr);
  void x_error(size_t q, double p, const uint64_t* lane_mask = nullptr);
  void y_error(size_t q, double p, const uint64_t* lane_mask = nullptr);
  void z_error(size_t q, double p, const uint64_t* lane_mask = nullptr);
  // Biased Pauli channels (Gate::PAULI_CHANNEL1/2): same parameterization
  // as FrameSim's — px/py/pz per axis, and (p, fx, fy) for the conditioned
  // two-qubit product draw.
  void pauli_channel1(size_t q, double px, double py, double pz,
                      const uint64_t* lane_mask = nullptr);
  void pauli_channel2(size_t a, size_t b, double p, double fx, double fy,
                      const uint64_t* lane_mask = nullptr);

  // --- Heralded erasure ----------------------------------------------------
  // Per-lane erasure at rate p: hit lanes get their herald bit set and their
  // frame words replaced by fresh uniform random bits (reset-to-mixed).
  // Erasure does NOT gate subsequent word ops — unlike leakage, all 64
  // lanes keep advancing per word, which is why the batch engine supports
  // it at full width.
  void erase_error(size_t q, double p, const uint64_t* lane_mask = nullptr);
  // Deterministic herald-only injection (no frame change, no RNG): the
  // cross-engine tests pin herald planes bit for bit through this.
  void mark_erased_masked(size_t q, const uint64_t* lane_mask);
  // Herald bitplane for qubit q (words() words, 1 = erased since the last
  // reset of that lane's qubit / clear_heralds()).
  [[nodiscard]] const uint64_t* herald_word(size_t q) const {
    return &heralds_[q * words_];
  }
  [[nodiscard]] bool heralded(size_t q, size_t shot) const {
    return (herald_word(q)[shot >> 6] >> (shot & 63)) & 1u;
  }
  void clear_heralds();

  // Deterministic frame flips on every lane (flip semantics: two injections
  // of the same Pauli cancel, matching FrameSim::inject_*).
  void inject_x(size_t q);
  void inject_y(size_t q);
  void inject_z(size_t q);
  // Masked variants: flip only the lanes set in `lane_mask` — the bit-sliced
  // form of a per-shot conditional correction.
  void inject_x_masked(size_t q, const uint64_t* lane_mask);
  void inject_y_masked(size_t q, const uint64_t* lane_mask);
  void inject_z_masked(size_t q, const uint64_t* lane_mask);

  // --- Measurement / reset (flip semantics, all lanes at once) ------------
  // Each measurement appends one row to record() and returns its row index.
  // measure_z/measure_x inject a fresh random gauge on the collapsed
  // component per lane (the standard frame-sampler trick; see FrameSim).
  size_t measure_z(size_t q);
  size_t measure_x(size_t q);
  // Measure Z then reset to |0> (no gauge needed: the frame is cleared).
  size_t measure_reset(size_t q);
  void reset(size_t q);

  [[nodiscard]] const BatchRecord& record() const { return record_; }

  // --- Classical feedforward ----------------------------------------------
  // Applies a Pauli on the lanes where record row `record_index` is 1. The
  // noiseless reference (whose record is all-zero) never fires the
  // conditional, so in flip space the correction simply XORs the record row
  // into the frame.
  void classical_x(size_t q, size_t record_index);
  void classical_y(size_t q, size_t record_index);
  void classical_z(size_t q, size_t record_index);

  // --- Postselection / abort ----------------------------------------------
  // Marks as aborted every lane whose record bit equals `value` (e.g. a
  // failed verification measurement). Aborts accumulate until clear().
  void discard_where(size_t record_index, bool value);
  // ORs an arbitrary lane mask into the abort mask. Drivers with per-lane
  // control flow (batched cat-retry loops) use this to surface lanes whose
  // retry budget ran out without a verified ancilla.
  void discard_lanes(const uint64_t* lane_mask);
  [[nodiscard]] const uint64_t* abort_mask() const { return abort_.data(); }
  [[nodiscard]] bool aborted(size_t shot) const {
    return (abort_[shot >> 6] >> (shot & 63)) & 1u;
  }
  // Lanes that survived every discard_where so far.
  [[nodiscard]] size_t num_kept() const;

  // Measurement flip masks for all shots (64 shots per word).
  [[nodiscard]] const uint64_t* x_flips(size_t q) const { return x_word(q); }
  [[nodiscard]] const uint64_t* z_flips(size_t q) const { return z_word(q); }
  [[nodiscard]] bool x_flip(size_t q, size_t shot) const {
    return (x_word(q)[shot >> 6] >> (shot & 63)) & 1u;
  }
  [[nodiscard]] bool z_flip(size_t q, size_t shot) const {
    return (z_word(q)[shot >> 6] >> (shot & 63)) & 1u;
  }

  // Executes a circuit with full gadget replay: unitaries, channels,
  // measurements (recorded), resets, and measurement-conditioned Pauli
  // corrections. Conditional non-Pauli gates are rejected. Measurement rows
  // append to record() in circuit order starting at the current record size.
  void run(const Circuit& circuit);

  Rng& rng() { return rng_; }

  // Result of one stochastic hit-word fill. `bits` is the shared scratch
  // buffer (valid until the next fill); nullptr means no lane was hit and the
  // channel is a no-op. When `dense` (p >= 1) every word is all-ones;
  // otherwise `dirty` lists the ascending indices of the (typically few)
  // nonzero words so channels touch O(hits) words instead of O(words_).
  struct HitWords {
    const uint64_t* bits = nullptr;
    const uint32_t* dirty = nullptr;
    size_t num_dirty = 0;
    bool dense = false;
    explicit operator bool() const { return bits != nullptr; }
  };
  // Fills the reusable hit buffer with bits set iid with probability p,
  // running ONE geometric-skip stream across the whole 64*num_words() bit
  // register (instead of restarting the stream per word, which costs a
  // log1p division per word even when no bit lands there). The skip
  // logarithms come from a block cache refilled kFillBlock draws at a time
  // (see next_skip_log), and only the words dirtied by the previous fill
  // are re-zeroed — so at p <= 1e-4 a channel call costs O(shots*p)
  // instead of O(words_). Public for the kernel benchmark breakdown and
  // the fill regression test; callers other than the channels must not
  // hold the returned pointers across fills.
  HitWords fill_hit_words(double p);

  // Uniform draws per refill of the skip-logarithm cache. The fill
  // regression test mirrors this draw order exactly; change the two
  // together.
  static constexpr size_t kFillBlock = 256;

 private:
  [[nodiscard]] uint64_t* x_word(size_t q) { return &frames_[2 * q * words_]; }
  [[nodiscard]] const uint64_t* x_word(size_t q) const {
    return &frames_[2 * q * words_];
  }
  [[nodiscard]] uint64_t* z_word(size_t q) {
    return &frames_[(2 * q + 1) * words_];
  }
  [[nodiscard]] const uint64_t* z_word(size_t q) const {
    return &frames_[(2 * q + 1) * words_];
  }

  void randomize_gauge(uint64_t* component);

  // Next precomputed log(1-u), u ~ U[0,1). The geometric skip divides this
  // by log1p(-p), and the log is p-independent — so the draws are taken and
  // transformed in blocks of kFillBlock through the simd::log_unit kernel
  // (the one-at-a-time version chained every libm call through the running
  // position and was latency-bound), and leftovers carry across channel
  // calls with different p, wasting nothing.
  double next_skip_log() {
    if (skip_pos_ == kFillBlock) refill_skip_log();
    return skip_log_[skip_pos_++];
  }
  void refill_skip_log();

  [[nodiscard]] uint64_t* herald_word_mut(size_t q) {
    return &heralds_[q * words_];
  }

  size_t n_;
  size_t shots_;
  size_t words_;
  std::vector<uint64_t> frames_;  // layout: [qubit][x|z][word]
  std::vector<uint64_t> heralds_;  // layout: [qubit][word], erasure heralds
  BatchRecord record_;
  std::vector<uint64_t> abort_;
  std::vector<uint64_t> hit_;        // scratch for fill_hit_words
  // Dirty-index scratch for fill_hit_words. Sized words_ + 1: the branchless
  // append writes slot ndirty before deciding whether to keep it, so a fill
  // that dirties every word still stores one (discarded) entry past the last
  // kept index.
  std::vector<uint32_t> hit_dirty_;
  size_t hit_dirty_len_ = 0;         // how many of them the last fill set
  bool hit_dense_ = false;           // last fill set every word (p >= 1)
  std::array<double, kFillBlock> skip_log_;  // precomputed log1p(-u) draws
  size_t skip_pos_ = kFillBlock;             // consumed prefix; == => refill
  Rng rng_;
};

}  // namespace ftqc::sim
