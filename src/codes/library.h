#pragma once

#include "codes/stabilizer_code.h"

namespace ftqc::codes {

// Steane's [[7,1,3]] code (§2), built as the self-dual CSS code on the
// [7,4,3] Hamming parity check of Eq. (1). Its stabilizer generators are
// exactly the six operators of Eq. (18). Logical operators are the
// transversal X^⊗7 / Z^⊗7 (the paper's bitwise NOT, §4.1).
[[nodiscard]] const StabilizerCode& steane();

// The five-qubit [[5,1,3]] code of §4.2 (Bennett et al. / Laflamme et al.):
// the smallest single-error-correcting code; not CSS, and far less
// convenient for fault-tolerant computation than Steane's (bench E15).
[[nodiscard]] const StabilizerCode& five_qubit();

// Shor's [[9,1,3]] code (ref. 10): the original concatenation of the 3-bit
// repetition codes in both bases.
[[nodiscard]] const StabilizerCode& shor9();

// The [[15,7,3]] CSS code built from the r=4 Hamming code: the §3.6 example
// of a block code "encoding many qubits in a single block".
[[nodiscard]] const StabilizerCode& hamming15();

}  // namespace ftqc::codes
