// threshold_explorer: sweep the gate error rate for either recovery method
// and locate the level-1 pseudothreshold, then project the concatenation
// cascade from your measured point (Eqs. 33/36).
//
//   ./build/examples/threshold_explorer [--smoke] [steane|shor] [shots]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/table.h"
#include "example_util.h"
#include "threshold/flow.h"
#include "threshold/pseudothreshold.h"

int main(int argc, char** argv) {
  using namespace ftqc;
  using namespace ftqc::threshold;

  const bool smoke = strip_smoke_flag(argc, argv);
  const bool shor = argc > 1 && std::strcmp(argv[1], "shor") == 0;
  const size_t shots = argc > 2 ? static_cast<size_t>(std::atoll(argv[2]))
                                : (smoke ? 400 : 40000);
  const RecoveryMethod method =
      shor ? RecoveryMethod::kShor : RecoveryMethod::kSteane;

  std::printf("Level-1 pseudothreshold explorer (%s method, %zu shots/point)\n\n",
              shor ? "Shor" : "Steane", shots);

  const std::vector<double> eps = {8e-3, 4e-3, 2e-3, 1e-3, 5e-4};
  const auto points = sweep_cycle_failure(method, eps, shots, 12345);

  Table table({"eps", "P(logical)/cycle", "95% half-width", "encoded beats bare?"});
  for (const auto& p : points) {
    table.add_row({strfmt("%.1e", p.eps), strfmt("%.3e", p.failures.mean()),
                   strfmt("%.1e", p.failures.wilson_halfwidth()),
                   p.failures.mean() < p.eps ? "yes" : "no"});
  }
  table.print();

  const double c = fit_quadratic_coefficient(points);
  const double pseudo = 1.0 / c;
  std::printf("\nQuadratic fit: failure = %.0f * eps^2  ->  pseudothreshold %.2e\n",
              c, pseudo);

  std::printf("\nConcatenation projection from eps = %.1e (Eq. 36):\n", 1e-4);
  const QuadraticFlow flow{c};
  Table proj({"levels L", "block 7^L", "projected failure"});
  for (size_t level = 0; level <= 4; ++level) {
    proj.add_row({strfmt("%zu", level),
                  strfmt("%zu", concatenated_block_size(level)),
                  strfmt("%.2e", flow.at_level(1e-4, level))});
  }
  proj.print();
  return 0;
}
