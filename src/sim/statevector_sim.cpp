#include "sim/statevector_sim.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace ftqc::sim {

namespace {
using cd = std::complex<double>;
constexpr double kInvSqrt2 = 0.70710678118654752440;
}  // namespace

StateVectorSim::StateVectorSim(size_t num_qubits, uint64_t seed)
    : n_(num_qubits), rng_(seed) {
  FTQC_CHECK(n_ <= 24, "state-vector simulator capped at 24 qubits");
  amps_.assign(size_t{1} << n_, cd(0, 0));
  amps_[0] = cd(1, 0);
}

void StateVectorSim::set_state(uint64_t basis_index) {
  FTQC_CHECK(basis_index < amps_.size(), "basis index out of range");
  std::fill(amps_.begin(), amps_.end(), cd(0, 0));
  amps_[basis_index] = cd(1, 0);
}

void StateVectorSim::apply_unitary1(size_t q, cd u00, cd u01, cd u10, cd u11) {
  const uint64_t bit = uint64_t{1} << q;
  const uint64_t dim = amps_.size();
  for (uint64_t i = 0; i < dim; ++i) {
    if ((i & bit) != 0) continue;
    const cd a0 = amps_[i];
    const cd a1 = amps_[i | bit];
    amps_[i] = u00 * a0 + u01 * a1;
    amps_[i | bit] = u10 * a0 + u11 * a1;
  }
}

void StateVectorSim::apply_h(size_t q) {
  apply_unitary1(q, kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2);
}

void StateVectorSim::apply_x(size_t q) {
  const uint64_t bit = uint64_t{1} << q;
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    if ((i & bit) == 0) std::swap(amps_[i], amps_[i | bit]);
  }
}

void StateVectorSim::apply_y(size_t q) {
  const uint64_t bit = uint64_t{1} << q;
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    if ((i & bit) == 0) {
      const cd a0 = amps_[i];
      const cd a1 = amps_[i | bit];
      amps_[i] = cd(0, -1) * a1;
      amps_[i | bit] = cd(0, 1) * a0;
    }
  }
}

void StateVectorSim::apply_z(size_t q) {
  const uint64_t bit = uint64_t{1} << q;
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    if ((i & bit) != 0) amps_[i] = -amps_[i];
  }
}

void StateVectorSim::apply_s(size_t q) {
  const uint64_t bit = uint64_t{1} << q;
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    if ((i & bit) != 0) amps_[i] *= cd(0, 1);
  }
}

void StateVectorSim::apply_s_dag(size_t q) {
  const uint64_t bit = uint64_t{1} << q;
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    if ((i & bit) != 0) amps_[i] *= cd(0, -1);
  }
}

void StateVectorSim::apply_rx(size_t q, double theta) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  apply_unitary1(q, cd(c, 0), cd(0, -s), cd(0, -s), cd(c, 0));
}

void StateVectorSim::apply_rz(size_t q, double theta) {
  const cd e0 = std::polar(1.0, -theta / 2);
  const cd e1 = std::polar(1.0, theta / 2);
  apply_unitary1(q, e0, cd(0, 0), cd(0, 0), e1);
}

void StateVectorSim::apply_cx(size_t control, size_t target) {
  const uint64_t cbit = uint64_t{1} << control;
  const uint64_t tbit = uint64_t{1} << target;
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    if ((i & cbit) != 0 && (i & tbit) == 0) std::swap(amps_[i], amps_[i | tbit]);
  }
}

void StateVectorSim::apply_cz(size_t a, size_t b) {
  const uint64_t mask = (uint64_t{1} << a) | (uint64_t{1} << b);
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    if ((i & mask) == mask) amps_[i] = -amps_[i];
  }
}

void StateVectorSim::apply_swap(size_t a, size_t b) {
  apply_cx(a, b);
  apply_cx(b, a);
  apply_cx(a, b);
}

void StateVectorSim::apply_ccx(size_t c0, size_t c1, size_t target) {
  const uint64_t cmask = (uint64_t{1} << c0) | (uint64_t{1} << c1);
  const uint64_t tbit = uint64_t{1} << target;
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    if ((i & cmask) == cmask && (i & tbit) == 0) {
      std::swap(amps_[i], amps_[i | tbit]);
    }
  }
}

void StateVectorSim::apply_ccz(size_t a, size_t b, size_t c) {
  const uint64_t mask =
      (uint64_t{1} << a) | (uint64_t{1} << b) | (uint64_t{1} << c);
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    if ((i & mask) == mask) amps_[i] = -amps_[i];
  }
}

void StateVectorSim::apply_pauli(const pauli::PauliString& p) {
  FTQC_CHECK(p.num_qubits() == n_, "apply_pauli size mismatch");
  for (size_t q = 0; q < n_; ++q) {
    switch (p.pauli_at(q)) {
      case 'X': apply_x(q); break;
      case 'Y': apply_y(q); break;
      case 'Z': apply_z(q); break;
      default: break;
    }
  }
  switch (p.phase_exponent()) {
    case 1:
      for (auto& a : amps_) a *= cd(0, 1);
      break;
    case 2:
      for (auto& a : amps_) a = -a;
      break;
    case 3:
      for (auto& a : amps_) a *= cd(0, -1);
      break;
    default: break;
  }
}

double StateVectorSim::prob_one(size_t q) const {
  const uint64_t bit = uint64_t{1} << q;
  double p = 0;
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    if ((i & bit) != 0) p += std::norm(amps_[i]);
  }
  return p;
}

void StateVectorSim::collapse(size_t q, bool outcome, double prob_one) {
  const uint64_t bit = uint64_t{1} << q;
  const double keep = outcome ? prob_one : 1.0 - prob_one;
  FTQC_CHECK(keep > 1e-12, "collapse onto a zero-probability branch");
  const double scale = 1.0 / std::sqrt(keep);
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    const bool is_one = (i & bit) != 0;
    if (is_one == outcome) {
      amps_[i] *= scale;
    } else {
      amps_[i] = cd(0, 0);
    }
  }
}

bool StateVectorSim::measure_z(size_t q) {
  const double p1 = prob_one(q);
  const bool outcome = rng_.next_double() < p1;
  collapse(q, outcome, p1);
  return outcome;
}

bool StateVectorSim::measure_x(size_t q) {
  apply_h(q);
  const bool outcome = measure_z(q);
  apply_h(q);
  return outcome;
}

void StateVectorSim::reset(size_t q) {
  if (measure_z(q)) apply_x(q);
}

bool StateVectorSim::measure_pauli(const pauli::PauliString& p) {
  FTQC_CHECK(p.phase_exponent() % 2 == 0, "cannot measure an imaginary Pauli");
  // Probability of outcome 0 (+1 eigenvalue) is (1 + <P>)/2.
  const double expect = expectation_pauli(p);
  const double p_plus = std::min(1.0, std::max(0.0, (1.0 + expect) / 2.0));
  const bool outcome = rng_.next_double() >= p_plus;
  // Project: |psi> <- (I ± P)|psi> / norm.
  StateVectorSim scratch = *this;
  scratch.apply_pauli(p);
  const double sign = outcome ? -1.0 : 1.0;
  double norm2 = 0;
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    amps_[i] = 0.5 * (amps_[i] + sign * scratch.amps_[i]);
    norm2 += std::norm(amps_[i]);
  }
  FTQC_CHECK(norm2 > 1e-12, "projected onto a zero-probability eigenspace");
  const double scale = 1.0 / std::sqrt(norm2);
  for (auto& a : amps_) a *= scale;
  return outcome;
}

double StateVectorSim::expectation_pauli(const pauli::PauliString& p) const {
  StateVectorSim scratch = *this;
  scratch.apply_pauli(p);
  return inner_product(scratch).real();
}

std::complex<double> StateVectorSim::inner_product(
    const StateVectorSim& other) const {
  FTQC_CHECK(n_ == other.n_, "inner product size mismatch");
  cd acc(0, 0);
  for (uint64_t i = 0; i < amps_.size(); ++i) {
    acc += std::conj(amps_[i]) * other.amps_[i];
  }
  return acc;
}

double StateVectorSim::fidelity_with(const StateVectorSim& other) const {
  return std::norm(inner_product(other));
}

double StateVectorSim::norm() const {
  double acc = 0;
  for (const auto& a : amps_) acc += std::norm(a);
  return std::sqrt(acc);
}

}  // namespace ftqc::sim
