#pragma once

#include <cstdint>

#include "gf2/bitvec.h"
#include "gf2/hamming.h"
#include "sim/frame_sim.h"

namespace ftqc::ft {

// How a level-2 concatenated gadget treats its level-1 subblocks.
enum class Level2Discipline : uint8_t {
  // §5 "all levels simultaneously": bare level-1 subblocks, one 49-qubit
  // extraction serves both levels. A pair of transversal-XOR faults during
  // ancilla preparation can seed two subblocks at once and defeat the
  // hierarchy at O(eps^2) with a large constant.
  kBare,
  // Extended-rectangle discipline (Aliferis-Gottesman-Preskill, after the
  // malignant-pair counting in Gottesman's stabilizer framework): verified
  // level-1 Steane recoveries are interleaved on every 7-qubit subblock of
  // the level-2 ancilla after the logical-H/transversal-XOR fan-out layers
  // and before verification, so physical errors are scrubbed before they
  // can pair up across subblocks.
  kExRec,
};

// Knobs of the fault-tolerant recovery protocols of §3. Disabling a knob
// reproduces the paper's "what goes wrong without this precaution"
// comparisons (benches E2-E4).
struct RecoveryPolicy {
  // §3.3: verify ancilla states (cat check bit / encoded-|0> comparison)
  // before use.
  bool verify_ancilla = true;
  // §3.4: accept a nontrivial syndrome only after reading the same value
  // twice; defer the correction otherwise.
  bool repeat_nontrivial_syndrome = true;
  // §3.3 verification of the encoded ancilla is itself measured twice; a
  // conflicted pair means "safe to do nothing".
  int verification_rounds = 2;
  // Maximum cat-state preparation attempts before giving up the discard
  // loop and using the last cat unverified.
  int max_cat_attempts = 8;
  // Heralded-erasure handling (the Fig. 15 detect-and-replace generalized
  // to an in-gadget reinit): a freshly prepared ancilla block that reports
  // an erasure herald is discarded and re-prepared instead of feeding a
  // known-maximally-mixed qubit into the extraction, and heralded cat
  // qubits count as failed verification in the §3.3 discard loop. A no-op
  // when the noise model has p_erase = 0.
  bool herald_reinit = true;
  // Re-preparation budget per ancilla; an exhausted loop keeps the last
  // (still-heralded) block — the serial drivers proceed with it, the batch
  // drivers additionally surface those lanes through the abort-mask
  // contract (same semantics as cat-retry exhaustion).
  int max_herald_retries = 4;
  // Level-2 gadgets only: bare subblocks or the extended-rectangle
  // interleave. kBare reproduces the original gadget bit for bit.
  Level2Discipline level2_discipline = Level2Discipline::kBare;
  // kExRec only: additionally run level-1 recoveries on the DATA subblocks
  // between syndrome extraction and correction. The level-2 correction then
  // applies only the top-level logical fix and delegates the per-subblock
  // physical fixes to those recoveries (re-applying the now-stale level-1
  // corrections would re-inject the very errors the recoveries removed).
  bool exrec_data_recoveries = false;
};

// Decodes 7 measurement flips into the 3-bit Hamming syndrome (Eq. 3)
// relative to the trivial reference.
[[nodiscard]] gf2::BitVec hamming_syndrome_of_flips(const gf2::Hamming743& code,
                                                    const uint8_t* flips);

}  // namespace ftqc::ft
