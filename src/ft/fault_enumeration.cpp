#include "ft/fault_enumeration.h"

#include <vector>

namespace ftqc::ft {

SingleFaultScan scan_single_faults(const GadgetExperiment& run,
                                   const KindFilter& filter) {
  // Recording pass: learn the noiseless path's locations.
  FaultPointInjector recorder;
  (void)run(recorder);
  const std::vector<LocationKind> kinds = recorder.kinds();

  SingleFaultScan scan;
  scan.num_locations = kinds.size();
  for (size_t loc = 0; loc < kinds.size(); ++loc) {
    if (!filter(kinds[loc])) continue;
    const int variants = location_variants(kinds[loc]);
    for (int v = 0; v < variants; ++v) {
      FaultPointInjector injector({{loc, v}});
      const bool failed = run(injector);
      ++scan.faults_tried;
      if (failed) {
        ++scan.faults_failing;
        scan.weighted_failing += variant_weight(kinds[loc]);
      }
    }
  }
  return scan;
}

PairFaultScan scan_fault_pairs(const GadgetExperiment& run,
                               const KindFilter& filter) {
  FaultPointInjector recorder;
  (void)run(recorder);
  const std::vector<LocationKind> kinds = recorder.kinds();

  PairFaultScan scan;
  for (size_t loc1 = 0; loc1 < kinds.size(); ++loc1) {
    if (!filter(kinds[loc1])) continue;
    const int variants1 = location_variants(kinds[loc1]);
    for (int v1 = 0; v1 < variants1; ++v1) {
      // Path probe: the armed first fault may change control flow, so the
      // set of later locations is discovered per (loc1, v1).
      FaultPointInjector probe({{loc1, v1}});
      (void)run(probe);
      const std::vector<LocationKind> path_kinds = probe.kinds();
      const double w1 = variant_weight(kinds[loc1]);

      for (size_t loc2 = loc1 + 1; loc2 < path_kinds.size(); ++loc2) {
        if (!filter(path_kinds[loc2])) continue;
        const int variants2 = location_variants(path_kinds[loc2]);
        for (int v2 = 0; v2 < variants2; ++v2) {
          FaultPointInjector injector({{loc1, v1}, {loc2, v2}});
          const bool failed = run(injector);
          const double w = w1 * variant_weight(path_kinds[loc2]);
          ++scan.pairs_tried;
          scan.weighted_total += w;
          if (failed) {
            ++scan.pairs_failing;
            scan.weighted_failing += w;
          }
        }
      }
    }
  }
  return scan;
}

}  // namespace ftqc::ft
