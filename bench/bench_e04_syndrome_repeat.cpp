// E4 (§3.4): verifying the syndrome. Acting on a single (possibly faulty)
// nontrivial syndrome reading risks "correcting" an error that is not there,
// compounding the damage; accepting only a twice-repeated nontrivial
// syndrome removes those order-eps miscorrections.
//
// Shot loops run on the unified ShotRunner; pass --engine=frame|batch to
// choose the serial FrameSim path or the 64-shots-per-word batch path
// (default). A measurement-error-only section isolates the §3.4 mechanism:
// with perfect gates the syndrome itself is the only unreliable ingredient,
// so every residual error of the act-at-once policy is a miscorrection that
// repetition should remove.
#include <array>
#include <cstdio>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "ft/batch_recovery.h"
#include "ft/steane_recovery.h"
#include "sim/shot_runner.h"

namespace {

using namespace ftqc;
using namespace ftqc::ft;

struct RepeatStats {
  Proportion residual;  // any residual error left on the block
  Proportion logical;   // residual is a logical error after ideal decode
};

// Event bits for the ShotRunner: 0 = logical error, 1 = any residual.
constexpr uint32_t kLogicalBit = 1u << 0;
constexpr uint32_t kResidualBit = 1u << 1;

RepeatStats run(bool repeat, const sim::NoiseParams& noise, size_t shots,
                uint64_t seed, sim::ShotEngine engine) {
  RecoveryPolicy policy;
  policy.repeat_nontrivial_syndrome = repeat;

  sim::ShotPlan plan;
  plan.shots = shots;
  plan.seed = seed;
  plan.engine = engine;
  const sim::ShotRunner runner(plan);

  const auto result = runner.run(
      [&](uint64_t shot_seed) -> uint32_t {
        SteaneRecovery rec(noise, policy, shot_seed);
        rec.run_cycle();
        uint32_t events = rec.any_logical_error() ? kLogicalBit : 0;
        if (rec.residual_x_coset_weight() + rec.residual_z_coset_weight() > 0) {
          events |= kResidualBit;
        }
        return events;
      },
      [&](uint64_t block_seed, size_t block_shots) {
        BatchSteaneRecovery rec(noise, policy, block_shots, block_seed);
        rec.run_cycle();
        std::array<uint64_t, sim::ShotResult::kMaxEvents> counts{};
        counts[0] = rec.count_any_logical_error(block_shots);
        counts[1] = rec.count_residual(block_shots);
        return counts;
      });

  RepeatStats stats;
  stats.logical = result.proportion(0);
  stats.residual = result.proportion(1);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  ftqc::bench::init(argc, argv, "E04",
                    {sim::ShotEngine::kFrame, sim::ShotEngine::kBatch});
  const sim::ShotEngine engine =
      ftqc::bench::engine_or(sim::ShotEngine::kBatch);
  std::printf(
      "E4: syndrome repetition (§3.4). One recovery cycle on a clean block\n"
      "at gate error eps; compare acting on every nontrivial syndrome vs\n"
      "acting only on a repeated, agreeing one. [engine: %s]\n\n",
      sim::shot_engine_name(engine));
  const size_t shots = ftqc::bench::scaled(60000, 1000);
  ftqc::bench::JsonResult json;
  ftqc::Table table({"eps", "P(residual) once", "P(residual) repeat",
                     "P(logical) once", "P(logical) repeat"});
  for (const double eps : {0.01, 0.005, 0.002, 0.001}) {
    const auto noise = sim::NoiseParams::uniform_gate(eps);
    const auto once = run(false, noise, shots, 1000, engine);
    const auto twice = run(true, noise, shots, 2000, engine);
    table.add_row({ftqc::strfmt("%.3g", eps),
                   ftqc::strfmt("%.4f", once.residual.mean()),
                   ftqc::strfmt("%.4f", twice.residual.mean()),
                   ftqc::strfmt("%.2e", once.logical.mean()),
                   ftqc::strfmt("%.2e", twice.logical.mean())});
    if (eps == 0.01) {
      json.add("eps", eps);
      json.add("p_residual_once", once.residual.mean());
      json.add("p_residual_repeat", twice.residual.mean());
      json.add("p_logical_once", once.logical.mean());
      json.add("p_logical_repeat", twice.logical.mean());
    }
  }
  table.print();

  // Measurement-error-only model (ROADMAP scenario coverage): gates, preps
  // and storage are perfect; only the readout lies. Any residual the
  // act-at-once policy leaves is a pure miscorrection.
  std::printf(
      "\nMeasurement-error-only model (gates perfect, readout flips at\n"
      "eps_meas):\n");
  ftqc::Table meas({"eps_meas", "P(residual) once", "P(residual) repeat",
                    "repeat gain"});
  for (const double eps_meas : {0.02, 0.01, 0.005}) {
    const auto noise = sim::NoiseParams::measurement_only(eps_meas);
    const auto once = run(false, noise, shots, 3000, engine);
    const auto twice = run(true, noise, shots, 4000, engine);
    const double gain = twice.residual.mean() > 0
                            ? once.residual.mean() / twice.residual.mean()
                            : -1.0;
    meas.add_row({ftqc::strfmt("%.3g", eps_meas),
                  ftqc::strfmt("%.2e", once.residual.mean()),
                  ftqc::strfmt("%.2e", twice.residual.mean()),
                  ftqc::strfmt("%.1fx", gain)});
    if (eps_meas == 0.01) {
      json.add("meas_only_p_residual_once", once.residual.mean());
      json.add("meas_only_p_residual_repeat", twice.residual.mean());
    }
  }
  meas.print();

  json.add("shots", shots);
  json.add_string("engine", sim::shot_engine_name(engine));
  json.write();
  std::printf(
      "\nShape check: repetition lowers the leftover-error rate (fewer\n"
      "miscorrections) at every eps; logical failures stay O(eps^2) for both\n"
      "(single faults never cause them), but the repeated protocol's\n"
      "coefficient is smaller. Under measurement error alone the once-policy\n"
      "residual is O(eps_meas) miscorrection while repetition demotes it to\n"
      "O(eps_meas^2) — the §3.4 argument in its purest form.\n");
  return 0;
}
