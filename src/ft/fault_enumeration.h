#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.h"
#include "ft/noise_injector.h"
#include "sim/rare_event.h"

namespace ftqc::ft {

// Exhaustive fault enumeration over a gadget experiment. The experiment is a
// callable that executes one full gadget run against the given injector and
// returns true when the run FAILED (by whatever criterion the experiment
// defines, e.g. "a logical error survives ideal decoding").
//
// This realizes the paper's order-ε analysis: a gadget is fault tolerant
// when no single fault fails it (§3), and its level-1 failure coefficient is
// the weighted count of failing fault *pairs* (Eq. 33's "21").
using GadgetExperiment = std::function<bool(NoiseInjector&)>;

// Which location kinds can fault (mirrors which ε knobs are nonzero).
using KindFilter = std::function<bool(LocationKind)>;

[[nodiscard]] inline KindFilter all_kinds() {
  return [](LocationKind) { return true; };
}
[[nodiscard]] inline KindFilter gate_kinds_only() {
  return [](LocationKind k) { return k != LocationKind::kStorage; };
}

// Restricts a scan to part of the gadget. The window [first_location,
// last_location) is expressed in the recorder's location indices; gadget
// drivers publish sub-gadget boundaries as markers (see
// FaultPointInjector::marker_window), so a scan can be aimed at, say, one
// level-2 ancilla preparation ("prep:A".."prep:A:end") or the block of
// interleaved level-1 recoveries ("exrec:A".."exrec:A:end") instead of the
// whole ~50k-location level-2 cycle.
// `location_stride > 1` subsamples every stride-th location for cheap
// smoke-level coverage of a gadget too large to scan exhaustively in a
// unit-tier test.
struct ScanOptions {
  KindFilter filter = all_kinds();
  size_t first_location = 0;
  size_t last_location = SIZE_MAX;
  size_t location_stride = 1;
};

struct SingleFaultScan {
  size_t num_locations = 0;       // fault opportunities on the noiseless path
  size_t faults_tried = 0;        // (location, variant) pairs executed
  size_t faults_failing = 0;      // of those, how many failed the gadget
  double weighted_failing = 0.0;  // Σ variant_weight over failing faults:
                                  // the coefficient of ε¹ in P(fail)
};

[[nodiscard]] SingleFaultScan scan_single_faults(const GadgetExperiment& run,
                                                 const ScanOptions& options);
[[nodiscard]] SingleFaultScan scan_single_faults(const GadgetExperiment& run,
                                                 const KindFilter& filter);

struct PairFaultScan {
  size_t pairs_tried = 0;
  size_t pairs_failing = 0;
  double weighted_failing = 0.0;  // Σ w1·w2 over failing pairs: the ε²
                                  // coefficient (the "A" of p1 = A ε²)
  double weighted_total = 0.0;    // Σ w1·w2 over all pairs (normalization)
};

// Enumerates ordered pairs loc1 < loc2 where loc2 ranges over the execution
// path taken once the first fault is armed (fault-dependent control flow —
// ancilla retries, syndrome repeats — lengthens the path; those locations
// are enumerated too).
[[nodiscard]] PairFaultScan scan_fault_pairs(const GadgetExperiment& run,
                                             const KindFilter& filter);

struct PairSampleScan {
  size_t pairs_sampled = 0;
  size_t pairs_failing = 0;  // malignant pairs among the samples
  [[nodiscard]] double malignant_fraction() const {
    return pairs_sampled > 0
               ? static_cast<double>(pairs_failing) /
                     static_cast<double>(pairs_sampled)
               : 0.0;
  }
  // Interval-carrying form; benches report the Wilson width next to the
  // point estimate instead of a bare fraction.
  [[nodiscard]] Proportion proportion() const {
    return Proportion{pairs_failing, pairs_sampled};
  }
};

// Monte Carlo estimate of the malignant-pair fraction: draws `num_samples`
// ordered fault pairs (location and variant uniform over the options
// window of the RECORDED noiseless path) and replays the gadget with both
// armed. Deterministic for a fixed seed. Exhaustive pair scans over a
// level-2 gadget are ~1e10 runs; sampling inside a marker window makes the
// bare-vs-exRec malignancy comparison affordable. Variants are clamped
// (FaultPointInjector::set_clamp_variants) in case the first fault reroutes
// control flow across the second location; windows that stay inside one
// straight-line sub-gadget are unaffected.
[[nodiscard]] PairSampleScan sample_fault_pairs(const GadgetExperiment& run,
                                                const ScanOptions& options,
                                                size_t num_samples,
                                                uint64_t seed);

// Two-window variant: the first fault is drawn from `first`, the second
// from `second` (windows must be ordered and disjoint: first.last_location
// <= second.first_location). This is how the cross-extraction malignancy of
// the bare level-2 gadget is measured — its failing pairs put one fault in
// EACH of the two ancilla preparations, a region pairing that uniform
// whole-cycle sampling rarely hits.
[[nodiscard]] PairSampleScan sample_fault_pairs(const GadgetExperiment& run,
                                                const ScanOptions& first,
                                                const ScanOptions& second,
                                                size_t num_samples,
                                                uint64_t seed);

// ---------------------------------------------------------------------------
// Rare-event stratum sampling (the importance half of sim/rare_event.h).
//
// Under the §6 model with every ε knob equal, each eligible location of a
// run faults independently with probability ε, so conditioning on the fault
// multiplicity K gives
//
//   P(fail) = Σ_k P_ε(K = k) · P(fail | exactly k faults),
//
// where the conditionals are ε-free and one stratum table serves a whole ε
// sweep. For a FIXED execution path of N locations, P_ε(K = k) is the
// binomial C(N,k) ε^k (1-ε)^(N-k) and sampling a uniform k-subset of the
// noiseless path IS the conditional fault distribution.
//
// Real gadgets retry: a detected fault reroutes control flow (cat-state
// re-preparation, syndrome repeats) and LENGTHENS the path, which breaks
// the fixed-path picture in two measured ways. (1) Funneling: arming
// noiseless-path indices makes later faults land inside the retry windows
// that earlier faults opened, piling multi-fault mass onto the retried
// region and inflating the conditionals (~14x for the level-2 exRec at
// k = 8). (2) Prior mismatch: K under the true process is overdispersed
// relative to any Binomial(N_eff, ε), because the path length itself grows
// with the number of faults. Both biases push the estimate the same
// direction, and no calibrated scalar N_eff fixes them.
//
// The sampler below therefore conditions AT RUNTIME: each proposal shot
// drives the gadget with per-location Bernoulli(q) faults (uniform
// variants, exactly the physical errors FaultPointInjector injects), keeps
// the shots whose realized fault count equals k, and records each kept
// shot's realized path length N_s. Accepted shots are EXACT draws from the
// conditional fault distribution — faults land on the path the gadget
// actually takes. The prior weight comes from the same shots by likelihood
// ratio: since the path is a deterministic function of the per-location
// fault decisions,
//
//   P_ε(K = k) = E_q[ 1{K = k} · (ε/q)^k ((1-ε)/(1-q))^(N_s-k) ],
//
// estimated by averaging the ratio over the raw proposal shots. For a
// fixed-length path this reduces exactly to the binomial above; for an
// adaptive gadget it IS the overdispersed mass the binomial misses.
//
// Within a stratum, N_s correlates with failure (failing configurations
// preferentially open retries), so the conditional is importance-weighted
// by the same per-shot ratio rather than counted: the per-view product
// weight × conditional then equals (ε/q)^k · Σ_fail ratio / raw — the
// plain unbiased importance estimate of P_ε(fail AND K = k). And because
// the shot allocation could re-introduce bias through optional stopping,
// the sweep budgets in two stages: a value-independent pilot, then one
// proportional split computed from the pilot alone (see the .cpp).
// ---------------------------------------------------------------------------

// Recorded fault-opportunity universe of a gadget: the kinds of the full
// noiseless path plus the window locations passing the scan filter. One
// recording pass serves every stratum of every sweep point.
struct FaultUniverse {
  std::vector<LocationKind> kinds;
  std::vector<size_t> eligible;
  [[nodiscard]] size_t size() const { return eligible.size(); }
};

[[nodiscard]] FaultUniverse record_fault_universe(const GadgetExperiment& run,
                                                  const ScanOptions& options);

struct FaultSetScan {
  size_t sets_sampled = 0;
  size_t sets_failing = 0;
  [[nodiscard]] Proportion proportion() const {
    return Proportion{sets_failing, sets_sampled};
  }
};

// Fixed-path Monte Carlo estimate of P(fail | exactly k faults): each shot
// draws k distinct locations from the recorded universe (uniform), a
// uniform variant at each, and replays the gadget with the set armed
// (clamped variants, as in sample_fault_pairs). Shot i derives its
// configuration from seed + seed_stride * (first_shot + i) alone, so
// splitting a total into incremental grants changes nothing. k = 0 replays
// the noiseless path. Runs
// through ShotRunner::run_range. Exact only for gadgets WITHOUT fault-
// dependent control flow (see the funneling bias above); rare-event sweeps
// use sample_conditioned_fault_sets instead.
[[nodiscard]] FaultSetScan sample_fault_sets(
    const GadgetExperiment& run, const FaultUniverse& universe, size_t k,
    size_t num_shots, size_t first_shot, uint64_t seed,
    uint64_t seed_stride = 0x9E3779B97F4A7C15ull);

struct ConditionedSetScan {
  size_t raw_shots = 0;  // proposal replays executed — the true cost
  size_t accepted = 0;   // of those, shots whose realized fault count == k
  size_t accepted_failing = 0;
  // Per accepted shot, in shot order: the realized eligible-location count
  // N_s and whether the gadget failed. Together they feed the likelihood-
  // ratio weight and the importance-weighted conditional.
  std::vector<size_t> accepted_locations;
  std::vector<uint8_t> accepted_failing_mask;
  [[nodiscard]] Proportion proportion() const {
    return Proportion{accepted_failing, accepted};
  }
};

// Runtime-conditioned estimate of P(fail | exactly k faults) for gadgets
// with fault-dependent control flow: each proposal shot replays the gadget
// with independent Bernoulli(q) faults at every filter-passing location
// (uniform variants via the shared inject_*_fault helpers) and is accepted
// when its realized fault count equals k. Accepted shots are exact
// conditional draws over the path the gadget actually takes. Choose q so
// the proposal's modal fault count sits near k (q ≈ k / N_eff); any
// q ∈ (0,1) is correct, q only sets the acceptance rate. Shot i is fully
// determined by seed + seed_stride * (first_shot + i), so chunking cannot
// change the sample.
[[nodiscard]] ConditionedSetScan sample_conditioned_fault_sets(
    const GadgetExperiment& run, const KindFilter& filter, double q, size_t k,
    size_t num_shots, size_t first_shot, uint64_t seed,
    uint64_t seed_stride = 0x9E3779B97F4A7C15ull);

// Exhaustive companion: every k-subset of the universe crossed with every
// variant assignment, weighted by the product of variant weights. Exact
// P(fail | k) for toy gadgets (the property tests pin the sampled estimator
// against it) and for k <= 1 on real gadgets. Cost is C(N,k) · ~15^k runs —
// keep N tiny for k >= 2.
struct ExhaustiveSetScan {
  size_t sets_tried = 0;
  size_t sets_failing = 0;
  double weighted_failing = 0.0;  // Σ Π variant_weight over failing sets
  double weighted_total = 0.0;    // Σ Π variant_weight over all sets (= C(N,k))
  [[nodiscard]] double conditional_failure() const {
    return weighted_total > 0 ? weighted_failing / weighted_total : 0.0;
  }
};

[[nodiscard]] ExhaustiveSetScan scan_fault_sets(const GadgetExperiment& run,
                                                const FaultUniverse& universe,
                                                size_t k);

// Gadget experiment whose stochastic-noise runs need per-shot seeds (the
// injector carries no RNG of its own; the experiment seeds its FrameSim).
using SeededGadgetExperiment =
    std::function<bool(NoiseInjector&, uint64_t seed)>;

// Mean eligible-location count under the stochastic model at `params`.
// Fault-dependent control flow (ancilla verification retries) lengthens the
// realized path as ε grows, so the binomial prior of a rare-event sweep
// should use this calibrated N_eff rather than the noiseless count when the
// gadget retries. Counts locations passing `filter` while a real
// StochasticInjector drives the noise.
[[nodiscard]] double calibrate_mean_locations(
    const SeededGadgetExperiment& run, const sim::NoiseParams& params,
    const KindFilter& filter, size_t num_shots, uint64_t seed);

// One fully-wired rare-event sweep: strata k = 0..max_faults share a single
// conditional table; every ε point is a view of it. Conditionals come from
// sample_conditioned_fault_sets (runtime Bernoulli proposals at
// q_k = k / N_eff); prior weights start at the Binomial(N_eff, ε) fallback
// and are replaced per stratum by the likelihood-ratio estimate of
// P_ε(K = k) as soon as the stratum has accepted shots, so adaptive-path
// overdispersion is captured where it is measured and conservatively
// bounded (via the tail mass) where it is not. The budget is spent in two
// stages — a deterministic pilot across all live strata, then a single
// proportional split of the remainder driven by the pilot's relative
// interval contributions — so the allocation never feeds back on the shots
// it buys (chunked adaptive routing systematically undershoots with a
// self-reweighting sampler; see the .cpp).
struct RareEventOptions {
  ScanOptions scan;            // eligible-location filter (whole-path only)
  size_t max_faults = 3;       // strata k = 0..max_faults
  size_t budget = 20000;       // raw proposal replays across all strata
  // Sampler-call granularity for direct StratifiedEstimator drives; the
  // two-stage sweep issues stage-sized grants and ignores it (chunk
  // boundaries never change the sample — the samplers seed per shot).
  size_t chunk = 64;
  double target_relative_halfwidth = 0;  // 0 = spend the whole budget
  uint64_t seed = 1;
  // Strata 1..known_zero_max_k are pinned to P(fail|k) = 0 — supply only
  // when an exhaustive scan has PROVEN them malignancy-free (e.g. k = 1 on
  // a verified fault-tolerant gadget; with K = 1 total the path up to the
  // fault is the noiseless path, so the noiseless-path scan covers every
  // reachable single-fault configuration). Stratum 0 is auto-pinned by a
  // single noiseless replay (deterministic), checked to not fail.
  size_t known_zero_max_k = 0;
  // Location count steering the proposal probabilities q_k = k / N_eff and
  // the Binomial fallback prior of strata that never accept a shot
  // (calibrated N_eff from calibrate_mean_locations); 0 = the universe's
  // noiseless count. Sampled strata replace the fallback with the
  // likelihood-ratio weight, so this only tunes acceptance rates and the
  // unsampled-tail bound, not the estimate's center.
  double n_eff_override = 0;
};

struct RareEventSweep {
  double n_eff = 0;         // N_eff steering proposals and fallback prior
  std::vector<double> eps;  // sweep points, as given
  std::vector<sim::StratifiedEstimate> estimates;  // one per ε
  // Accepted conditional P(fail|k) draws, k = 0..max_faults.
  std::vector<Proportion> strata;
  // Raw proposal replays spent per stratum (cost next to the accepted
  // trials above), and their total.
  std::vector<size_t> raw_shots;
  size_t shots = 0;
};

[[nodiscard]] RareEventSweep estimate_rare_failure_sweep(
    const GadgetExperiment& run, const std::vector<double>& eps_points,
    const RareEventOptions& options);

}  // namespace ftqc::ft
