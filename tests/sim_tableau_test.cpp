#include <gtest/gtest.h>

#include "pauli/pauli_string.h"
#include "sim/runner.h"
#include "sim/tableau_sim.h"

namespace ftqc::sim {
namespace {

using pauli::PauliString;

TEST(TableauSim, InitialStateIsAllZeros) {
  TableauSim sim(3);
  for (size_t q = 0; q < 3; ++q) {
    const auto peek = sim.peek_pauli(PauliString::single(3, q, 'Z'));
    ASSERT_TRUE(peek.has_value());
    EXPECT_FALSE(*peek);  // +1 eigenvalue: |0>
  }
}

TEST(TableauSim, XFlipsMeasurement) {
  TableauSim sim(2);
  sim.apply_x(0);
  EXPECT_TRUE(sim.measure_z(0));
  EXPECT_FALSE(sim.measure_z(1));
}

TEST(TableauSim, HadamardMakesRandomOutcome) {
  TableauSim sim(1, 7);
  sim.apply_h(0);
  EXPECT_FALSE(sim.peek_pauli(PauliString::single(1, 0, 'Z')).has_value());
  // But X is determined: |+> is stabilized by +X.
  const auto px = sim.peek_pauli(PauliString::single(1, 0, 'X'));
  ASSERT_TRUE(px.has_value());
  EXPECT_FALSE(*px);
}

TEST(TableauSim, BellPairCorrelations) {
  TableauSim sim(2, 3);
  sim.apply_h(0);
  sim.apply_cx(0, 1);
  // Stabilized by XX and ZZ.
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("XX")));
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("ZZ")));
  EXPECT_FALSE(sim.stabilizes(PauliString::from_string("ZI")));
  // Measuring both qubits gives equal outcomes.
  for (int trial = 0; trial < 10; ++trial) {
    TableauSim s(2, static_cast<uint64_t>(trial) + 100);
    s.apply_h(0);
    s.apply_cx(0, 1);
    EXPECT_EQ(s.measure_z(0), s.measure_z(1));
  }
}

TEST(TableauSim, MeasurementCollapseIsRepeatable) {
  TableauSim sim(1, 11);
  sim.apply_h(0);
  const bool first = sim.measure_z(0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(sim.measure_z(0), first);
}

TEST(TableauSim, SGateTurnsXIntoY) {
  TableauSim sim(1);
  sim.apply_h(0);  // |+>, stabilized by X
  sim.apply_s(0);  // now stabilized by Y
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("Y")));
  sim.apply_s(0);  // S^2 = Z gate: stabilized by -X
  bool sign = false;
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("X"), &sign));
  EXPECT_TRUE(sign);
}

TEST(TableauSim, SDagIsInverseOfS) {
  TableauSim sim(1);
  sim.apply_h(0);
  sim.apply_s(0);
  sim.apply_s_dag(0);
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("X")));
}

TEST(TableauSim, CZEqualsHadamardConjugatedCX) {
  // Build |++> then CZ; resulting state is stabilized by XZ and ZX.
  TableauSim sim(2);
  sim.apply_h(0);
  sim.apply_h(1);
  sim.apply_cz(0, 1);
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("XZ")));
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("ZX")));
}

TEST(TableauSim, SwapMovesState) {
  TableauSim sim(2);
  sim.apply_x(0);
  sim.apply_swap(0, 1);
  EXPECT_FALSE(sim.measure_z(0));
  EXPECT_TRUE(sim.measure_z(1));
}

TEST(TableauSim, Fig5Identity) {
  // Fig. 5: (H⊗H) CX(a->b) (H⊗H) = CX(b->a). Verify on stabilizers of a
  // random-ish state prepared by a fixed Clifford prefix.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    TableauSim lhs(2, seed);
    TableauSim rhs(2, seed);
    // prefix
    for (auto* s : {&lhs, &rhs}) {
      s->apply_h(0);
      s->apply_s(0);
      s->apply_cx(0, 1);
      s->apply_s(1);
    }
    lhs.apply_h(0);
    lhs.apply_h(1);
    lhs.apply_cx(0, 1);
    lhs.apply_h(0);
    lhs.apply_h(1);
    rhs.apply_cx(1, 0);
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_EQ(lhs.stabilizer(i).to_string(), rhs.stabilizer(i).to_string());
    }
  }
}

TEST(TableauSim, GHZParityIsDeterministic) {
  TableauSim sim(4, 5);
  sim.apply_h(0);
  for (size_t q = 1; q < 4; ++q) sim.apply_cx(0, q);
  // Z on a single qubit is random, but ZZZZ (parity) is +1 deterministic.
  EXPECT_FALSE(sim.peek_pauli(PauliString::single(4, 0, 'Z')).has_value());
  const auto parity = sim.peek_pauli(PauliString::from_string("ZZZZ"));
  ASSERT_TRUE(parity.has_value());
  EXPECT_FALSE(*parity);
  // XXXX also stabilizes the cat state (Eq. 26 generalization).
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("XXXX")));
}

TEST(TableauSim, MeasurePauliProjectsJointObservable) {
  // Measuring ZZ on |+0> then XX is the standard entanglement-swap check:
  // after measuring ZZ, XX is still random; measuring XX then gives a Bell
  // state whose ZZ sign matches the first outcome.
  TableauSim sim(2, 9);
  sim.apply_h(0);
  const bool zz = sim.measure_pauli(PauliString::from_string("ZZ"));
  bool sign = false;
  EXPECT_TRUE(sim.stabilizes(PauliString::from_string("ZZ"), &sign));
  EXPECT_EQ(sign, zz);
}

TEST(TableauSim, ResetClearsEntanglement) {
  TableauSim sim(2, 13);
  sim.apply_h(0);
  sim.apply_cx(0, 1);
  sim.reset(0);
  const auto z0 = sim.peek_pauli(PauliString::single(2, 0, 'Z'));
  ASSERT_TRUE(z0.has_value());
  EXPECT_FALSE(*z0);
}

TEST(TableauSim, LeakedQubitAbsorbsGates) {
  TableauSim sim(2, 17);
  sim.mark_leaked(0);
  sim.apply_x(0);                    // absorbed
  sim.apply_cx(0, 1);                // absorbed
  EXPECT_FALSE(sim.measure_z(1));    // qubit 1 untouched
  sim.reset(0);                      // restores a fresh |0>
  EXPECT_FALSE(sim.is_leaked(0));
  EXPECT_FALSE(sim.measure_z(0));
}

TEST(Runner, RecordsMeasurementsInOrder) {
  Circuit c(3);
  c.x(0);
  c.m(0);
  c.m(1);
  c.h(2);
  c.m(2);
  TableauSim sim(3, 21);
  const auto record = run_circuit(sim, c);
  ASSERT_EQ(record.size(), 3u);
  EXPECT_EQ(record[0], 1);
  EXPECT_EQ(record[1], 0);
}

TEST(Runner, ConditionalAppliesOnOne) {
  Circuit c(2);
  c.x(0);
  const int32_t m0 = c.m(0);
  c.x(1, m0);  // should fire
  c.m(1);
  TableauSim sim(2, 23);
  const auto record = run_circuit(sim, c);
  EXPECT_EQ(record[1], 1);
}

TEST(Runner, ConditionalSkipsOnZero) {
  Circuit c(2);
  const int32_t m0 = c.m(0);
  c.x(1, m0);  // should not fire
  c.m(1);
  TableauSim sim(2, 29);
  const auto record = run_circuit(sim, c);
  EXPECT_EQ(record[1], 0);
}

TEST(Runner, InjectedErrorsAreDeterministic) {
  Circuit c(1);
  c.inject(0, 'X');
  c.m(0);
  TableauSim sim(1, 31);
  EXPECT_EQ(run_circuit(sim, c)[0], 1);
}

TEST(Runner, DepolarizeProbabilityOneAlwaysErrs) {
  // DEPOLARIZE1(1.0) applies X, Y or Z; on |+> measured in X basis, X leaves
  // it fixed but Y/Z flip it. Just verify it runs and stays valid.
  Circuit c(1);
  c.depolarize1(0, 1.0);
  c.m(0);
  int ones = 0;
  for (uint64_t s = 0; s < 64; ++s) {
    TableauSim sim(1, 1000 + s);
    ones += run_circuit(sim, c)[0];
  }
  // X or Y (2/3 of choices) flip |0>; Z leaves it. Expect roughly 2/3.
  EXPECT_GT(ones, 25);
  EXPECT_LT(ones, 60);
}

}  // namespace
}  // namespace ftqc::sim
