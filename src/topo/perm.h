#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ftqc::topo {

// A permutation of {0,...,4}: the magnetic flux labels of Kitaev's model
// specialized to the group the paper uses for universality, A5 (§7.4).
// image_[i] is where point i goes.
class Perm {
 public:
  static constexpr size_t kPoints = 5;

  Perm() {
    for (uint8_t i = 0; i < kPoints; ++i) image_[i] = i;
  }

  // From disjoint cycle notation on 0-based points, e.g. {{0,1,4}} = (015)
  // in 1-based cycle notation.
  [[nodiscard]] static Perm from_cycles(
      const std::vector<std::vector<uint8_t>>& cycles);

  [[nodiscard]] uint8_t operator()(uint8_t point) const { return image_[point]; }

  // Composition: (a * b)(x) = a(b(x)).
  [[nodiscard]] Perm operator*(const Perm& other) const {
    Perm out;
    for (uint8_t i = 0; i < kPoints; ++i) out.image_[i] = image_[other.image_[i]];
    return out;
  }

  [[nodiscard]] Perm inverse() const {
    Perm out;
    for (uint8_t i = 0; i < kPoints; ++i) out.image_[image_[i]] = i;
    return out;
  }

  // Conjugation g^h = h^{-1} g h — the flux metamorphosis of Eq. (40).
  [[nodiscard]] Perm conjugated_by(const Perm& h) const {
    return h.inverse() * (*this) * h;
  }

  [[nodiscard]] bool commutes_with(const Perm& other) const {
    return (*this) * other == other * (*this);
  }

  [[nodiscard]] bool is_identity() const {
    for (uint8_t i = 0; i < kPoints; ++i) {
      if (image_[i] != i) return false;
    }
    return true;
  }

  // Sign of the permutation: true for even (members of A5).
  [[nodiscard]] bool is_even() const;

  // Cycle type as a sorted list of cycle lengths > 1 (e.g. {3} for a
  // 3-cycle, {2,2} for a double transposition).
  [[nodiscard]] std::vector<uint8_t> cycle_type() const;

  [[nodiscard]] bool operator==(const Perm& other) const {
    return image_ == other.image_;
  }
  [[nodiscard]] bool operator<(const Perm& other) const {
    return image_ < other.image_;
  }

  // Dense index in [0, 120) for table lookups.
  [[nodiscard]] uint8_t lehmer_index() const;

  [[nodiscard]] std::string to_string() const;  // cycle notation, 1-based

 private:
  std::array<uint8_t, kPoints> image_;
};

// The alternating group A5 (order 60), materialized: element list, index
// lookup, conjugacy classes. §7.4: "the group A5 ... the smallest of the
// finite nonsolvable groups".
class A5 {
 public:
  A5();

  [[nodiscard]] const std::vector<Perm>& elements() const { return elements_; }
  [[nodiscard]] size_t order() const { return elements_.size(); }
  [[nodiscard]] size_t index_of(const Perm& p) const;
  [[nodiscard]] const Perm& element(size_t index) const { return elements_[index]; }

  // Conjugacy class of p, as element indices (sorted).
  [[nodiscard]] std::vector<size_t> conjugacy_class(const Perm& p) const;

  // True if some h in A5 conjugates a into b.
  [[nodiscard]] bool conjugate_in_group(const Perm& a, const Perm& b) const;

  // A5 is nonsolvable: its commutator subgroup is itself (checked in tests
  // via this helper, which generates the commutator subgroup).
  [[nodiscard]] std::vector<size_t> commutator_subgroup() const;

 private:
  std::vector<Perm> elements_;
  std::array<int16_t, 120> index_by_lehmer_;
};

}  // namespace ftqc::topo
