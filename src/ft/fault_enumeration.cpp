#include "ft/fault_enumeration.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "common/check.h"
#include "sim/shot_runner.h"

namespace ftqc::ft {

SingleFaultScan scan_single_faults(const GadgetExperiment& run,
                                   const ScanOptions& options) {
  FTQC_CHECK(options.location_stride > 0, "location stride must be positive");
  // Recording pass: learn the noiseless path's locations.
  FaultPointInjector recorder;
  (void)run(recorder);
  const std::vector<LocationKind> kinds = recorder.kinds();

  SingleFaultScan scan;
  scan.num_locations = kinds.size();
  const size_t last = std::min(options.last_location, kinds.size());
  for (size_t loc = options.first_location; loc < last;
       loc += options.location_stride) {
    if (!options.filter(kinds[loc])) continue;
    const int variants = location_variants(kinds[loc]);
    for (int v = 0; v < variants; ++v) {
      FaultPointInjector injector({{loc, v}}, /*record_kinds=*/false);
      const bool failed = run(injector);
      ++scan.faults_tried;
      if (failed) {
        ++scan.faults_failing;
        scan.weighted_failing += variant_weight(kinds[loc]);
      }
    }
  }
  return scan;
}

SingleFaultScan scan_single_faults(const GadgetExperiment& run,
                                   const KindFilter& filter) {
  ScanOptions options;
  options.filter = filter;
  return scan_single_faults(run, options);
}

PairFaultScan scan_fault_pairs(const GadgetExperiment& run,
                               const KindFilter& filter) {
  FaultPointInjector recorder;
  (void)run(recorder);
  const std::vector<LocationKind> kinds = recorder.kinds();

  PairFaultScan scan;
  for (size_t loc1 = 0; loc1 < kinds.size(); ++loc1) {
    if (!filter(kinds[loc1])) continue;
    const int variants1 = location_variants(kinds[loc1]);
    for (int v1 = 0; v1 < variants1; ++v1) {
      // Path probe: the armed first fault may change control flow, so the
      // set of later locations is discovered per (loc1, v1).
      FaultPointInjector probe({{loc1, v1}});
      (void)run(probe);
      const std::vector<LocationKind> path_kinds = probe.kinds();
      const double w1 = variant_weight(kinds[loc1]);

      for (size_t loc2 = loc1 + 1; loc2 < path_kinds.size(); ++loc2) {
        if (!filter(path_kinds[loc2])) continue;
        const int variants2 = location_variants(path_kinds[loc2]);
        for (int v2 = 0; v2 < variants2; ++v2) {
          FaultPointInjector injector({{loc1, v1}, {loc2, v2}},
                                      /*record_kinds=*/false);
          const bool failed = run(injector);
          const double w = w1 * variant_weight(path_kinds[loc2]);
          ++scan.pairs_tried;
          scan.weighted_total += w;
          if (failed) {
            ++scan.pairs_failing;
            scan.weighted_failing += w;
          }
        }
      }
    }
  }
  return scan;
}

namespace {

// Window locations passing the kind filter, in order.
std::vector<size_t> eligible_locations(const std::vector<LocationKind>& kinds,
                                       const ScanOptions& options) {
  std::vector<size_t> eligible;
  const size_t last = std::min(options.last_location, kinds.size());
  for (size_t loc = options.first_location; loc < last; ++loc) {
    if (options.filter(kinds[loc])) eligible.push_back(loc);
  }
  return eligible;
}

// Draws (loc1 from pool1) < (loc2 from pool2) pairs with uniform variants
// and replays the gadget with both armed. With pool1 == pool2 any distinct
// ordered pair from the pool is possible.
PairSampleScan sample_pairs_from(const GadgetExperiment& run,
                                 const std::vector<LocationKind>& kinds,
                                 const std::vector<size_t>& pool1,
                                 const std::vector<size_t>& pool2,
                                 size_t num_samples, uint64_t seed) {
  FTQC_CHECK(!pool1.empty() && !pool2.empty(),
             "pair sampling needs nonempty location pools");
  std::mt19937_64 rng(seed);
  PairSampleScan scan;
  for (size_t s = 0; s < num_samples; ++s) {
    size_t loc1 = pool1[rng() % pool1.size()];
    size_t loc2 = pool2[rng() % pool2.size()];
    while (loc1 == loc2) loc2 = pool2[rng() % pool2.size()];
    if (loc1 > loc2) std::swap(loc1, loc2);
    const int v1 = static_cast<int>(
        rng() % static_cast<uint64_t>(location_variants(kinds[loc1])));
    const int v2 = static_cast<int>(
        rng() % static_cast<uint64_t>(location_variants(kinds[loc2])));
    FaultPointInjector injector({{loc1, v1}, {loc2, v2}},
                                /*record_kinds=*/false);
    injector.set_clamp_variants(true);
    ++scan.pairs_sampled;
    if (run(injector)) ++scan.pairs_failing;
  }
  return scan;
}

}  // namespace

PairSampleScan sample_fault_pairs(const GadgetExperiment& run,
                                  const ScanOptions& options,
                                  size_t num_samples, uint64_t seed) {
  FaultPointInjector recorder;
  (void)run(recorder);
  const std::vector<LocationKind> kinds = recorder.kinds();
  const std::vector<size_t> eligible = eligible_locations(kinds, options);
  FTQC_CHECK(eligible.size() >= 2, "pair sampling needs >= 2 locations");
  return sample_pairs_from(run, kinds, eligible, eligible, num_samples, seed);
}

PairSampleScan sample_fault_pairs(const GadgetExperiment& run,
                                  const ScanOptions& first,
                                  const ScanOptions& second,
                                  size_t num_samples, uint64_t seed) {
  FTQC_CHECK(first.last_location <= second.first_location,
             "pair-sample windows must be ordered and disjoint");
  FaultPointInjector recorder;
  (void)run(recorder);
  const std::vector<LocationKind> kinds = recorder.kinds();
  const std::vector<size_t> pool1 = eligible_locations(kinds, first);
  const std::vector<size_t> pool2 = eligible_locations(kinds, second);
  return sample_pairs_from(run, kinds, pool1, pool2, num_samples, seed);
}

FaultUniverse record_fault_universe(const GadgetExperiment& run,
                                    const ScanOptions& options) {
  FaultPointInjector recorder;
  (void)run(recorder);
  FaultUniverse universe;
  universe.kinds = recorder.kinds();
  universe.eligible = eligible_locations(universe.kinds, options);
  return universe;
}

FaultSetScan sample_fault_sets(const GadgetExperiment& run,
                               const FaultUniverse& universe, size_t k,
                               size_t num_shots, size_t first_shot,
                               uint64_t seed, uint64_t seed_stride) {
  FTQC_CHECK(universe.size() >= k, "fault-set sampling needs >= k locations");
  sim::ShotPlan plan;
  plan.shots = num_shots;
  plan.seed = seed;
  plan.seed_stride = seed_stride;
  const sim::ShotRunner runner(plan);
  const sim::ShotResult result = runner.run_range(
      first_shot, num_shots, [&](uint64_t shot_seed) -> bool {
        // The whole configuration comes from the shot seed; the replay
        // itself is deterministic, so chunking cannot change the estimate.
        std::mt19937_64 rng(shot_seed);
        std::vector<size_t> chosen;
        chosen.reserve(k);
        while (chosen.size() < k) {
          const size_t idx = static_cast<size_t>(
              rng() % static_cast<uint64_t>(universe.eligible.size()));
          if (std::find(chosen.begin(), chosen.end(), idx) == chosen.end()) {
            chosen.push_back(idx);
          }
        }
        std::sort(chosen.begin(), chosen.end());
        std::vector<FaultPointInjector::Fault> faults;
        faults.reserve(k);
        for (const size_t idx : chosen) {
          const size_t loc = universe.eligible[idx];
          const int v = static_cast<int>(
              rng() %
              static_cast<uint64_t>(location_variants(universe.kinds[loc])));
          faults.push_back({loc, v});
        }
        FaultPointInjector injector(std::move(faults), /*record_kinds=*/false);
        injector.set_clamp_variants(true);
        return run(injector);
      });
  return FaultSetScan{result.trials, result.failures()};
}

namespace {

// Per-location Bernoulli(q) proposal injector for runtime-conditioned
// stratum sampling: every filter-passing location faults independently with
// probability q, with a uniform variant applied through the same
// inject_*_fault helpers FaultPointInjector uses, so the accepted shots of
// sample_conditioned_fault_sets realize exactly the enumerated fault model.
// Counts the eligible locations seen (the realized path length N_s) and the
// faults landed (K_s); locations failing the filter neither fault nor
// count, mirroring the universe restriction of the fixed-path samplers.
class BernoulliFaultInjector final : public NoiseInjector {
 public:
  BernoulliFaultInjector(double q, const KindFilter& filter, uint64_t seed)
      : q_(q), filter_(filter), rng_(seed) {}

  void on_gate1(sim::FrameSim& sim, uint32_t q) override {
    if (step(LocationKind::kGate1)) {
      inject_pauli1_fault(sim, q, variant(3));
    }
  }
  void on_gate2(sim::FrameSim& sim, uint32_t a, uint32_t b) override {
    if (step(LocationKind::kGate2)) {
      inject_pauli2_fault(sim, a, b, variant(15));
    }
  }
  void on_prep(sim::FrameSim& sim, uint32_t q) override {
    if (step(LocationKind::kPrep)) inject_prep_fault(sim, q);
  }
  void on_meas(sim::FrameSim& sim, uint32_t q, bool x_basis) override {
    if (step(LocationKind::kMeas)) inject_meas_fault(sim, q, x_basis);
  }
  void on_storage(sim::FrameSim& sim, uint32_t q) override {
    if (step(LocationKind::kStorage)) {
      inject_pauli1_fault(sim, q, variant(3));
    }
  }

  [[nodiscard]] size_t locations() const { return locations_; }
  [[nodiscard]] size_t faults() const { return faults_; }

 private:
  // Advances the path and decides whether this location faults.
  bool step(LocationKind kind) {
    if (!filter_(kind)) return false;
    ++locations_;
    if (dist_(rng_) >= q_) return false;
    ++faults_;
    return true;
  }
  int variant(int num_variants) {
    return static_cast<int>(rng_() % static_cast<uint64_t>(num_variants));
  }

  double q_;
  const KindFilter& filter_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
  size_t locations_ = 0;
  size_t faults_ = 0;
};

}  // namespace

ConditionedSetScan sample_conditioned_fault_sets(
    const GadgetExperiment& run, const KindFilter& filter, double q, size_t k,
    size_t num_shots, size_t first_shot, uint64_t seed, uint64_t seed_stride) {
  FTQC_CHECK(q > 0.0 && q < 1.0, "proposal probability must lie in (0, 1)");
  ConditionedSetScan scan;
  scan.raw_shots = num_shots;
  // Serial on purpose: each accepted shot contributes its realized path
  // length, and the acceptance decision needs the injector's state after
  // the run — ShotRunner's bool-only contract doesn't carry either.
  for (size_t i = 0; i < num_shots; ++i) {
    const uint64_t shot_seed = seed + seed_stride * (first_shot + i);
    BernoulliFaultInjector injector(q, filter, shot_seed);
    const bool failed = run(injector);
    if (injector.faults() != k) continue;
    ++scan.accepted;
    if (failed) ++scan.accepted_failing;
    scan.accepted_locations.push_back(injector.locations());
    scan.accepted_failing_mask.push_back(failed ? 1 : 0);
  }
  return scan;
}

ExhaustiveSetScan scan_fault_sets(const GadgetExperiment& run,
                                  const FaultUniverse& universe, size_t k) {
  ExhaustiveSetScan scan;
  const size_t n = universe.size();
  if (k > n) return scan;

  // Enumerates the k-subsets of the NOISELESS path's eligible locations
  // (unlike scan_fault_pairs this does not re-probe rerouted paths, so
  // variants are clamped); intended for toy universes and k <= 1.
  std::vector<size_t> combo(k);
  std::iota(combo.begin(), combo.end(), 0);
  const auto next_combination = [&]() -> bool {
    size_t i = k;
    while (i > 0) {
      --i;
      if (combo[i] != i + n - k) {
        ++combo[i];
        for (size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
        return true;
      }
    }
    return false;
  };

  std::vector<int> radix(k), variant(k);
  do {
    double weight = 1.0;
    for (size_t i = 0; i < k; ++i) {
      const LocationKind kind = universe.kinds[universe.eligible[combo[i]]];
      radix[i] = location_variants(kind);
      variant[i] = 0;
      weight *= variant_weight(kind);
    }
    bool more = true;
    while (more) {
      std::vector<FaultPointInjector::Fault> faults;
      faults.reserve(k);
      for (size_t i = 0; i < k; ++i) {
        faults.push_back({universe.eligible[combo[i]], variant[i]});
      }
      FaultPointInjector injector(std::move(faults), /*record_kinds=*/false);
      injector.set_clamp_variants(true);
      const bool failed = run(injector);
      ++scan.sets_tried;
      scan.weighted_total += weight;
      if (failed) {
        ++scan.sets_failing;
        scan.weighted_failing += weight;
      }
      more = false;
      for (size_t i = 0; i < k; ++i) {
        if (++variant[i] < radix[i]) {
          more = true;
          break;
        }
        variant[i] = 0;
      }
    }
  } while (next_combination());
  return scan;
}

namespace {

// StochasticInjector that also counts the eligible fault opportunities it
// passes — the measuring stick for the N of the binomial prior when fault-
// dependent control flow stretches the path.
class CountingStochasticInjector final : public NoiseInjector {
 public:
  CountingStochasticInjector(const sim::NoiseParams& params,
                             const KindFilter& filter)
      : noise_(params), filter_(filter) {}

  void on_gate1(sim::FrameSim& sim, uint32_t q) override {
    count(LocationKind::kGate1);
    noise_.on_gate1(sim, q);
  }
  void on_gate2(sim::FrameSim& sim, uint32_t a, uint32_t b) override {
    count(LocationKind::kGate2);
    noise_.on_gate2(sim, a, b);
  }
  void on_prep(sim::FrameSim& sim, uint32_t q) override {
    count(LocationKind::kPrep);
    noise_.on_prep(sim, q);
  }
  void on_meas(sim::FrameSim& sim, uint32_t q, bool x_basis) override {
    count(LocationKind::kMeas);
    noise_.on_meas(sim, q, x_basis);
  }
  void on_storage(sim::FrameSim& sim, uint32_t q) override {
    count(LocationKind::kStorage);
    noise_.on_storage(sim, q);
  }

  [[nodiscard]] size_t locations() const { return locations_; }

 private:
  void count(LocationKind kind) {
    if (filter_(kind)) ++locations_;
  }

  StochasticInjector noise_;
  const KindFilter& filter_;
  size_t locations_ = 0;
};

}  // namespace

double calibrate_mean_locations(const SeededGadgetExperiment& run,
                                const sim::NoiseParams& params,
                                const KindFilter& filter, size_t num_shots,
                                uint64_t seed) {
  FTQC_CHECK(num_shots > 0, "calibration needs at least one shot");
  size_t total = 0;
  for (size_t s = 0; s < num_shots; ++s) {
    CountingStochasticInjector injector(params, filter);
    (void)run(injector, seed + 0x9E3779B97F4A7C15ull * s);
    total += injector.locations();
  }
  return static_cast<double>(total) / static_cast<double>(num_shots);
}

RareEventSweep estimate_rare_failure_sweep(const GadgetExperiment& run,
                                           const std::vector<double>& eps_points,
                                           const RareEventOptions& options) {
  // Runtime conditioning drives the whole gadget; a location window would
  // silently mean something different here than in the recorded-path scans.
  FTQC_CHECK(options.scan.first_location == 0 &&
                 options.scan.last_location == SIZE_MAX &&
                 options.scan.location_stride == 1,
             "rare-event sweeps condition over the whole path; location "
             "windows are not supported");
  const FaultUniverse universe = record_fault_universe(run, options.scan);
  FTQC_CHECK(universe.size() > options.max_faults,
             "rare-event sweep needs more locations than strata");
  FTQC_CHECK(options.known_zero_max_k <= options.max_faults,
             "known-zero strata must exist");

  // Stratum 0 is a deterministic replay of the noiseless path; sampling it
  // would charge a Wilson interval for a certainty, so resolve it once and
  // pin it. A failure here means the experiment is broken, not rare.
  {
    FaultPointInjector noiseless({}, /*record_kinds=*/false);
    FTQC_CHECK(!run(noiseless), "gadget fails its noiseless replay");
  }

  const double n0 = static_cast<double>(universe.size());
  const double n_eff = options.n_eff_override > 0 ? options.n_eff_override : n0;
  const size_t num_strata = options.max_faults + 1;
  const size_t num_views = eps_points.size();

  // Proposal fault probability per stratum: q_k = k / N_eff aims the
  // proposal's modal fault count at k. Any value is unbiased (the
  // likelihood ratio uses the q actually sampled); this choice just keeps
  // the exactly-k acceptance rate near its 1/sqrt(2 pi k) optimum.
  std::vector<double> proposal(num_strata, 0.0);
  for (size_t k = 1; k < num_strata; ++k) {
    proposal[k] =
        std::min(static_cast<double>(k) / std::max(n_eff, 1.0), 0.5);
  }

  // View weights start at the Binomial(N_eff, eps) fallback — except k = 0,
  // where P(K = 0) = (1-eps)^{N0} is exact (zero faults leave the noiseless
  // path untouched) — and are replaced by the likelihood-ratio estimate
  //   w_k(eps) = (eps/q_k)^k * mean over raw shots of 1{K=k} r^(N_s - k),
  //   r = (1-eps)/(1-q_k),
  // as strata accept shots. The tail bound stays on the ANALYTIC fallback
  // prior throughout: the empirical weights carry sampling noise of a few
  // parts per thousand, which would masquerade as tail mass if the tail
  // were recomputed as 1 - sum(weights). Choose max_faults so the binomial
  // beyond it is negligible at every view; path-extension overdispersion
  // past the last stratum is then second-order too.
  std::vector<std::vector<double>> weights(
      num_views, std::vector<double>(num_strata, 0.0));
  std::vector<double> tail(num_views, 0.0);
  for (size_t v = 0; v < num_views; ++v) {
    weights[v][0] = sim::binomial_pmf(n0, 0, eps_points[v]);
    double covered = weights[v][0];
    for (size_t k = 1; k < num_strata; ++k) {
      weights[v][k] = sim::binomial_pmf(n_eff, k, eps_points[v]);
      covered += weights[v][k];
    }
    tail[v] = std::max(0.0, 1.0 - covered);
  }

  std::vector<size_t> raw(num_strata, 0);
  std::vector<size_t> accepted(num_strata, 0);
  // Per-(stratum, view) sufficient statistics over accepted shots, with
  // per-shot likelihood weight u_s = r_v^(N_s - k):
  //   lr_sum  = sum u_s            -> the weight estimate,
  //   lr_fail = sum u_s over FAILING shots -> the weighted conditional,
  //   lr_sq   = sum u_s^2          -> Kish effective sample size.
  // The estimator's product w_k * p_k then equals
  //   (eps/q)^k * lr_fail / raw  =  the plain importance estimate of
  // P_eps(fail AND K = k) — exactly unbiased even when the likelihood
  // weight correlates with failure inside the stratum (it does: failing
  // configurations preferentially open retries, changing N_s).
  std::vector<std::vector<double>> lr_sum(num_strata,
                                          std::vector<double>(num_views, 0.0));
  std::vector<std::vector<double>> lr_fail(
      num_strata, std::vector<double>(num_views, 0.0));
  std::vector<std::vector<double>> lr_sq(num_strata,
                                         std::vector<double>(num_views, 0.0));
  std::vector<std::vector<double>> lr_fail_sq(
      num_strata, std::vector<double>(num_views, 0.0));
  // Mirror of the conditional half-widths pushed to the estimator (1.0 =
  // unsampled, the whole unit interval); read back by the stage-2 split.
  std::vector<std::vector<double>> cond_hw(num_strata,
                                           std::vector<double>(num_views, 1.0));

  sim::StratifiedEstimator* est = nullptr;
  const auto sampler = [&](size_t stratum, size_t shots,
                           size_t first_shot) -> sim::StratumChunk {
    sim::ShotPlan base;
    base.seed = options.seed;
    const ConditionedSetScan scan = sample_conditioned_fault_sets(
        run, options.scan.filter, proposal[stratum], stratum, shots,
        first_shot, base.for_stratum(stratum).seed);
    raw[stratum] += scan.raw_shots;
    accepted[stratum] += scan.accepted;
    for (size_t v = 0; v < num_views; ++v) {
      const double log_r =
          std::log1p(-eps_points[v]) - std::log1p(-proposal[stratum]);
      for (size_t s = 0; s < scan.accepted_locations.size(); ++s) {
        const double u = std::exp(
            static_cast<double>(scan.accepted_locations[s] - stratum) * log_r);
        lr_sum[stratum][v] += u;
        lr_sq[stratum][v] += u * u;
        if (scan.accepted_failing_mask[s]) {
          lr_fail[stratum][v] += u;
          lr_fail_sq[stratum][v] += u * u;
        }
      }
    }
    if (est != nullptr && accepted[stratum] > 0) {
      const double n = static_cast<double>(raw[stratum]);
      for (size_t v = 0; v < num_views; ++v) {
        const double log_ratio =
            static_cast<double>(stratum) *
            (std::log(eps_points[v]) - std::log(proposal[stratum]));
        weights[v][stratum] =
            std::exp(log_ratio) * lr_sum[stratum][v] / n;
        est->set_weight(v, stratum, weights[v][stratum]);
        const double mean = lr_fail[stratum][v] / lr_sum[stratum][v];
        const double ess = lr_sum[stratum][v] * lr_sum[stratum][v] /
                           lr_sq[stratum][v];
        // Two half-width estimates for the stratum's CONTRIBUTION w * p,
        // expressed as conditional widths (the estimator multiplies by w):
        //  - Wilson at the Kish effective sample size — nonzero even with
        //    zero observed failures, so unresolved strata stay honestly
        //    wide and keep attracting budget;
        //  - the delta-method width of the unbiased product estimate
        //    (eps/q)^k * lr_fail / raw, whose per-raw-shot variance
        //    lr_fail_sq/n - (lr_fail/n)^2 covers the WEIGHT noise the
        //    conditional-only Wilson width cannot see.
        // Take the max: each underestimates in a regime the other covers.
        const double mean_fail = lr_fail[stratum][v] / n;
        const double var_fail = std::max(
            0.0, lr_fail_sq[stratum][v] / n - mean_fail * mean_fail);
        constexpr double z95 = 1.959963984540054;
        const double product_hw =
            z95 * std::sqrt(var_fail * n) / lr_sum[stratum][v];
        cond_hw[stratum][v] =
            std::max(wilson_halfwidth_at(mean, ess), product_hw);
        est->set_conditional(v, stratum, mean, cond_hw[stratum][v]);
      }
    }
    return sim::StratumChunk{scan.proportion(), scan.raw_shots};
  };

  sim::StratifiedEstimator estimator(num_strata, sampler);
  est = &estimator;
  estimator.mark_known_zero(0);
  for (size_t k = 1; k <= options.known_zero_max_k; ++k) {
    estimator.mark_known_zero(k);
  }
  for (size_t v = 0; v < num_views; ++v) {
    (void)estimator.add_view(weights[v], tail[v]);
  }

  // ---- Stage 1: deterministic pilot --------------------------------------
  // Every live stratum gets a grant sized for roughly kPilotAccepted
  // accepted shots (exactly-k acceptance is ~1/sqrt(2 pi k) at q_k =
  // k/N_eff), floored at an equal 1/8th budget share. The likelihood-ratio
  // weight is heavy-tailed upward — its typical value at a handful of
  // accepted shots sits well BELOW its mean — so a split seeded from a
  // few-shot weight would starve exactly the overdispersed high-k strata
  // this sampler exists to measure. The grants depend only on k and the
  // budget, never on sampled values: stage 2's unbiasedness leans on that.
  constexpr size_t kPilotAccepted = 24;
  constexpr double kTwoPi = 6.283185307179586;
  const size_t first_live = options.known_zero_max_k + 1;
  const size_t num_live = num_strata - first_live;
  const size_t pilot_floor =
      num_live > 0 ? options.budget / (8 * num_live) : 0;
  std::vector<size_t> pilot(num_strata, 0);
  size_t pilot_total = 0;
  for (size_t k = first_live; k < num_strata; ++k) {
    pilot[k] = std::max(
        static_cast<size_t>(std::ceil(
            kPilotAccepted * std::sqrt(kTwoPi * static_cast<double>(k)))),
        pilot_floor);
    pilot_total += pilot[k];
  }
  // Cap the pilot at half the budget (wide stratum ranges would otherwise
  // spend everything warming up); the scale factor depends only on the
  // budget and the stratum count, so the pilot stays value-independent.
  if (pilot_total > options.budget / 2 && pilot_total > 0) {
    const double scale = static_cast<double>(options.budget / 2) /
                         static_cast<double>(pilot_total);
    for (size_t k = first_live; k < num_strata; ++k) {
      pilot[k] = static_cast<size_t>(
          std::max(1.0, std::floor(static_cast<double>(pilot[k]) * scale)));
    }
  }
  for (size_t k = first_live; k < num_strata; ++k) {
    const size_t room = options.budget - estimator.total_shots();
    if (room == 0) break;
    estimator.add_shots(k, std::min(pilot[k], room));
  }

  // ---- Stage 2: one-shot split of the remainder --------------------------
  // Chunk-by-chunk adaptive routing re-reads the estimates it is growing,
  // and with a self-reweighting sampler that optional-stopping feedback is
  // BIASED: a stratum whose interim likelihood-ratio weight fluctuates low
  // is starved and keeps its low estimate, while one that fluctuates high
  // earns shots that regress it back — a systematic undershoot (~13% on the
  // level-1 cycle at eps = 3e-3 with a 16k budget, far outside the reported
  // interval). Instead the remaining budget is split ONCE, proportional to
  // each stratum's largest relative interval contribution as measured by
  // the pilot. The split never sees the shots it buys, so conditioned on
  // the pilot every stage-2 stratum estimate is unbiased; what remains is a
  // second-order pilot-fraction effect, not the first-order feedback bias.
  const auto max_relative_halfwidth = [&]() {
    double widest = 0;
    for (size_t v = 0; v < num_views; ++v) {
      widest = std::max(widest, estimator.estimate(v).relative_halfwidth());
    }
    return widest;
  };
  size_t remaining = options.budget - estimator.total_shots();
  if (options.target_relative_halfwidth > 0 &&
      max_relative_halfwidth() <= options.target_relative_halfwidth) {
    remaining = 0;  // pilot already resolved every view
  }
  if (remaining > 0 && num_live > 0) {
    std::vector<double> view_mean(num_views, 0.0);
    for (size_t v = 0; v < num_views; ++v) {
      view_mean[v] = estimator.estimate(v).mean;
    }
    std::vector<double> priority(num_strata, 0.0);
    double total_priority = 0;
    for (size_t k = first_live; k < num_strata; ++k) {
      for (size_t v = 0; v < num_views; ++v) {
        const double contrib = weights[v][k] * cond_hw[k][v];
        if (contrib <= 0) continue;
        // Same relative-width metric the estimator routes on: strata
        // compete on how much of each view's interval they own.
        const double rel =
            view_mean[v] > 0 ? contrib / view_mean[v] : contrib * 1e12;
        priority[k] = std::max(priority[k], rel);
      }
      total_priority += priority[k];
    }
    std::vector<size_t> grant(num_strata, 0);
    if (total_priority > 0) {
      size_t granted = 0;
      size_t top = first_live;
      for (size_t k = first_live; k < num_strata; ++k) {
        grant[k] = static_cast<size_t>(static_cast<double>(remaining) *
                                       priority[k] / total_priority);
        granted += grant[k];
        if (priority[k] > priority[top]) top = k;
      }
      grant[top] += remaining - granted;  // rounding leftover
    } else {
      // Nothing measurable stands out (e.g. every weight is zero at every
      // view) — spread evenly rather than refuse the budget.
      for (size_t k = first_live; k < num_strata; ++k) {
        grant[k] = remaining / num_live;
      }
      grant[first_live] += remaining - (remaining / num_live) * num_live;
    }
    for (size_t k = first_live; k < num_strata; ++k) {
      if (grant[k] > 0) estimator.add_shots(k, grant[k]);
    }
  }

  RareEventSweep sweep;
  sweep.n_eff = n_eff;
  sweep.eps = eps_points;
  sweep.shots = estimator.total_shots();
  for (size_t v = 0; v < num_views; ++v) {
    sweep.estimates.push_back(estimator.estimate(v));
  }
  for (size_t k = 0; k < num_strata; ++k) {
    sweep.strata.push_back(estimator.stratum(k).sampled);
  }
  sweep.raw_shots = raw;
  return sweep;
}

}  // namespace ftqc::ft
