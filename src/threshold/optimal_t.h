#pragma once

#include <cstddef>

namespace ftqc::threshold {

// The non-concatenated block-code analysis of §5, Eqs. (30)-(32): with a
// code correcting t errors whose syndrome measurement takes ~t^b steps, the
// block error probability behaves like (t^b ε)^{t+1}; there is an optimal t
// beyond which recovery takes so long that errors accumulate faster than the
// code can correct them.
struct OptimalTAnalysis {
  double b = 4.0;  // recovery-complexity exponent (Shor's procedure: b = 4)

  // Eq. (30).
  [[nodiscard]] double block_error(double t, double eps) const;

  // The continuum optimum t* ~ e^{-1} eps^{-1/b}.
  [[nodiscard]] double optimal_t(double eps) const;

  // Integer t minimizing block_error, by direct search.
  [[nodiscard]] size_t optimal_t_integer(double eps) const;

  // Eq. (31): min block error ~ exp(-e^{-1} b eps^{-1/b}).
  [[nodiscard]] double min_block_error_asymptotic(double eps) const;
  [[nodiscard]] double min_block_error_exact(double eps) const;

  // Eq. (32): the gate accuracy needed to survive T error-correction cycles,
  // eps ~ (b / (e ln T))^b, i.e. eps ~ (log T)^{-b}.
  [[nodiscard]] double required_accuracy(double t_cycles) const;
};

}  // namespace ftqc::threshold
