// The src/decode matching subsystem: exhaustive minimum-weight pins against
// brute force, strategy-vs-strategy cost properties, the 3D space-time
// decoder for faulty syndrome measurement, the circuit-level detector error
// model, and the batched 64-lane decode front-end.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "decode/batch_decode.h"
#include "decode/blossom.h"
#include "decode/decoder.h"
#include "decode/dem.h"
#include "decode/matching.h"
#include "decode/spacetime.h"
#include "topo/toric_code.h"

namespace ftqc::decode {
namespace {

using topo::ToricCode;

constexpr size_t kUnreachable = std::numeric_limits<size_t>::max();

std::shared_ptr<const MwpmMatching> mwpm() {
  static const auto strategy = std::make_shared<const MwpmMatching>();
  return strategy;
}

std::shared_ptr<const GreedyMatching> greedy() {
  static const auto strategy = std::make_shared<const GreedyMatching>();
  return strategy;
}

std::shared_ptr<const BlossomMatching> blossom() {
  static const auto strategy = std::make_shared<const BlossomMatching>();
  return strategy;
}

// Minimum error weight for every plaquette syndrome of a small lattice, by
// Gray-code enumeration of all 2^(2L^2) X-error patterns with the syndrome
// maintained incrementally (each step flips one edge = two syndrome bits).
std::vector<size_t> brute_force_min_weights(const ToricCode& code) {
  const size_t nq = code.num_qubits();
  const size_t ns = code.num_plaquettes();
  EXPECT_LE(nq, 20u) << "brute force is for small lattices only";
  std::vector<uint32_t> edge_toggles(nq, 0);
  for (size_t e = 0; e < nq; ++e) {
    gf2::BitVec err(nq);
    err.set(e, true);
    edge_toggles[e] = static_cast<uint32_t>(code.plaquette_syndrome(err).to_u64());
  }
  std::vector<size_t> min_weight(size_t{1} << ns, kUnreachable);
  min_weight[0] = 0;
  uint64_t pattern = 0;
  uint32_t syndrome = 0;
  int weight = 0;
  for (uint64_t i = 1; i < (uint64_t{1} << nq); ++i) {
    const int bit = __builtin_ctzll(i);
    pattern ^= uint64_t{1} << bit;
    weight += ((pattern >> bit) & 1) != 0 ? 1 : -1;
    syndrome ^= edge_toggles[static_cast<size_t>(bit)];
    min_weight[syndrome] =
        std::min(min_weight[syndrome], static_cast<size_t>(weight));
  }
  return min_weight;
}

void expect_matches_brute_force(
    size_t lattice, std::shared_ptr<const MatchingStrategy> strategy) {
  const ToricCode code(lattice);
  const ToricMatchingDecoder decoder(code, ToricSide::kPlaquette,
                                     std::move(strategy));
  const auto min_weight = brute_force_min_weights(code);
  size_t checked = 0;
  for (size_t s = 0; s < min_weight.size(); ++s) {
    const bool even = (__builtin_popcountll(s) & 1) == 0;
    // On a torus the boundary map reaches exactly the even-parity syndromes.
    ASSERT_EQ(min_weight[s] != kUnreachable, even) << "syndrome " << s;
    if (!even) continue;
    gf2::BitVec syndrome(code.num_plaquettes());
    for (size_t b = 0; b < code.num_plaquettes(); ++b) {
      syndrome.set(b, ((s >> b) & 1) != 0);
    }
    const gf2::BitVec correction = decoder.decode(syndrome);
    EXPECT_EQ(code.plaquette_syndrome(correction), syndrome)
        << "syndrome " << s << " not cleared";
    EXPECT_EQ(correction.popcount(), min_weight[s])
        << "syndrome " << s << " corrected above minimum weight";
    ++checked;
  }
  EXPECT_EQ(checked, min_weight.size() / 2);
}

TEST(MwpmExhaustive, MatchesBruteForceMinimumWeightL2) {
  expect_matches_brute_force(2, mwpm());
}

TEST(MwpmExhaustive, MatchesBruteForceMinimumWeightL3) {
  expect_matches_brute_force(3, mwpm());
}

TEST(BlossomExhaustive, MatchesBruteForceMinimumWeightL2) {
  expect_matches_brute_force(2, blossom());
}

TEST(BlossomExhaustive, MatchesBruteForceMinimumWeightL3) {
  expect_matches_brute_force(3, blossom());
}

// The subset-DP is provably optimal up to exact_limit defects; the blossom
// primal-dual must agree with it on cost for every instance in that range
// (pairings may differ when ties exist, costs may not).
TEST(BlossomMatching, CostMatchesSubsetDpOnRandomMetrics) {
  Rng rng(101);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t n = 2 * (1 + rng.next_below(8));  // 2..16 defects
    std::vector<size_t> weights(n * n, 0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const size_t d = 1 + rng.next_below(60);
        weights[i * n + j] = d;
        weights[j * n + i] = d;
      }
    }
    const DistanceFn metric = [&](size_t a, size_t b) {
      return weights[a * n + b];
    };
    const auto dp_pairs = mwpm()->match(n, metric);
    const auto blossom_pairs = blossom()->match(n, metric);
    ASSERT_EQ(blossom_pairs.size(), n / 2);
    EXPECT_EQ(matching_cost(blossom_pairs, metric),
              matching_cost(dp_pairs, metric))
        << "trial " << trial << " n=" << n;
  }
}

// Above the DP ceiling the blossom is the only exact matcher; pin that its
// cost never exceeds greedy's (a true optimum cannot) on large instances.
TEST(BlossomMatching, LargeInstancesNeverCostMoreThanGreedy) {
  Rng rng(103);
  const size_t n = 40;
  std::vector<size_t> weights(n * n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const size_t d = 1 + rng.next_below(200);
      weights[i * n + j] = d;
      weights[j * n + i] = d;
    }
  }
  const DistanceFn metric = [&](size_t a, size_t b) {
    return weights[a * n + b];
  };
  const auto blossom_pairs = blossom()->match(n, metric);
  const auto greedy_pairs = greedy()->match(n, metric);
  ASSERT_EQ(blossom_pairs.size(), n / 2);
  EXPECT_LE(matching_cost(blossom_pairs, metric),
            matching_cost(greedy_pairs, metric));
}

TEST(MatchingEdgeCases, EmptyDefectSetMatchesTriviallyWithNoMetricCalls) {
  size_t calls = 0;
  const DistanceFn metric = [&](size_t, size_t) -> size_t {
    ++calls;
    return 1;
  };
  const std::vector<std::shared_ptr<const MatchingStrategy>> strategies = {
      greedy(), mwpm(), blossom()};
  for (const auto& strategy : strategies) {
    EXPECT_TRUE(strategy->match(0, metric).empty()) << strategy->name();
  }
  EXPECT_EQ(calls, 0u);
  // Decoder level: an all-clear history decodes to the identity correction.
  const ToricCode code(4);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, blossom());
  const std::vector<gf2::BitVec> vacuum(4, gf2::BitVec(code.num_plaquettes()));
  EXPECT_FALSE(decoder.decode(vacuum).any());
}

// The greedy bugfix contract: the caller's metric is evaluated exactly once
// per unordered pair — n(n-1)/2 calls — never once per pair per scan round
// (the old O(n^3) behavior this test is a regression fence for).
TEST(MatchingEdgeCases, GreedyEvaluatesMetricOncePerUnorderedPair) {
  const size_t n = 32;
  size_t calls = 0;
  const DistanceFn metric = [&](size_t a, size_t b) {
    ++calls;
    return (a * 7919 + b * 104729) % 97 + 1;
  };
  const auto pairs = greedy()->match(n, metric);
  EXPECT_EQ(pairs.size(), n / 2);
  EXPECT_EQ(calls, n * (n - 1) / 2);
}

TEST(MatchingDeathTest, OddDefectCountAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const DistanceFn metric = [](size_t, size_t) -> size_t { return 1; };
  EXPECT_DEATH((void)greedy()->match(3, metric), "defects come in pairs");
  EXPECT_DEATH((void)mwpm()->match(3, metric), "defects come in pairs");
  EXPECT_DEATH((void)blossom()->match(3, metric), "defects come in pairs");
}

TEST(MatchingDeathTest, SpacetimeDefectListMisuseAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const ToricCode code(4);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  EXPECT_DEATH((void)decoder.decode_defects({0, 1}, {0}),
               "defect site/round lists must be parallel");
  EXPECT_DEATH((void)decoder.decode_defects({0}, {0}),
               "space-time defects come in pairs");
}

// In the exact-DP regime (<= MwpmOptions::exact_limit defects) the MWPM cost
// is a global optimum, so it can never exceed the greedy pairing's cost.
TEST(MatchingProperty, MwpmCostNeverExceedsGreedyOnRandomSyndromes) {
  const ToricCode code(6);
  Rng rng(71);
  const DistanceFn metric = [&](size_t a, size_t b) {
    return code.torus_site_distance(a, b);
  };
  for (int trial = 0; trial < 100; ++trial) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(0.05)) errors.set(e, true);
    }
    const gf2::BitVec syndrome = code.plaquette_syndrome(errors);
    std::vector<uint32_t> defects;
    for (size_t s = syndrome.first_set(); s < syndrome.size();
         s = syndrome.next_set(s + 1)) {
      defects.push_back(static_cast<uint32_t>(s));
    }
    // The guarantee only holds while the exact DP runs; the clustering
    // fallback above exact_limit is covered by the aggregate test below.
    if (defects.size() > MwpmOptions{}.exact_limit) continue;
    const DistanceFn defect_metric = [&](size_t a, size_t b) {
      return metric(defects[a], defects[b]);
    };
    const auto exact = mwpm()->match(defects.size(), defect_metric);
    const auto greedy_pairs = greedy()->match(defects.size(), defect_metric);
    EXPECT_LE(matching_cost(exact, defect_metric),
              matching_cost(greedy_pairs, defect_metric));
  }
}

// Above the exact limit the union-find clustering takes over; per-cluster
// optima are not a global guarantee, so the property is checked per shot for
// syndrome clearing and in aggregate for cost.
TEST(MatchingProperty, UnionFindFallbackClearsSyndromesAndStaysCompetitive) {
  const ToricCode code(8);
  const ToricMatchingDecoder exact_dec(code, ToricSide::kPlaquette, mwpm());
  const ToricMatchingDecoder greedy_dec(code, ToricSide::kPlaquette, greedy());
  Rng rng(73);
  size_t mwpm_total = 0, greedy_total = 0, fallback_trials = 0;
  for (int trial = 0; trial < 60; ++trial) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(0.10)) errors.set(e, true);
    }
    const gf2::BitVec syndrome = code.plaquette_syndrome(errors);
    if (syndrome.popcount() <= MwpmOptions{}.exact_limit) continue;
    ++fallback_trials;
    const gf2::BitVec mwpm_corr = exact_dec.decode(syndrome);
    const gf2::BitVec greedy_corr = greedy_dec.decode(syndrome);
    EXPECT_EQ(code.plaquette_syndrome(mwpm_corr), syndrome);
    mwpm_total += mwpm_corr.popcount();
    greedy_total += greedy_corr.popcount();
  }
  ASSERT_GT(fallback_trials, 10u) << "noise too weak to exercise the fallback";
  EXPECT_LE(mwpm_total, greedy_total);
}

TEST(SpacetimeDecoder, SingleDataErrorIsCorrectedExactly) {
  const ToricCode code(4);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  gf2::BitVec errors(code.num_qubits());
  errors.set(code.h_edge(1, 1), true);
  const gf2::BitVec truth = code.plaquette_syndrome(errors);
  // Error lands before round 1: rounds 0 sees vacuum, rounds 1..2 see it,
  // and the final trusted round confirms it.
  const std::vector<gf2::BitVec> syndromes = {
      gf2::BitVec(code.num_plaquettes()), truth, truth, truth};
  const gf2::BitVec correction = decoder.decode(syndromes);
  EXPECT_EQ(correction.popcount(), 1u);
  EXPECT_TRUE(correction.get(code.h_edge(1, 1)));
}

TEST(SpacetimeDecoder, SingleMeasurementErrorNeedsNoCorrection) {
  const ToricCode code(4);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  const gf2::BitVec vacuum(code.num_plaquettes());
  gf2::BitVec misread = vacuum;
  misread.set(5, true);  // one flipped syndrome bit in round 1 only
  const std::vector<gf2::BitVec> syndromes = {vacuum, misread, vacuum, vacuum};
  EXPECT_FALSE(decoder.decode(syndromes).any());
}

TEST(SpacetimeDecoder, DistinguishesDataFromMeasurementError) {
  const ToricCode code(4);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  gf2::BitVec errors(code.num_qubits());
  errors.set(code.v_edge(0, 2), true);
  const gf2::BitVec truth = code.plaquette_syndrome(errors);
  gf2::BitVec misread = truth;
  misread.flip(0);  // simultaneous misread far from the data defect pair
  const std::vector<gf2::BitVec> syndromes = {
      gf2::BitVec(code.num_plaquettes()), misread, truth, truth};
  const gf2::BitVec correction = decoder.decode(syndromes);
  EXPECT_EQ(correction.popcount(), 1u);
  EXPECT_TRUE(correction.get(code.v_edge(0, 2)));
}

TEST(SpacetimeDecoder, PhenomenologicalRunsAlwaysClearTheFinalSyndrome) {
  const ToricCode code(4);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  size_t failures = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const auto result =
        run_phenomenological_memory(decoder, 0.01, 0.01, 4, 900 + seed);
    EXPECT_TRUE(result.cleared) << "seed " << seed;
    failures += result.logical_fail ? 1 : 0;
  }
  // p = q = 1% sits well below the ~3% phenomenological threshold.
  EXPECT_LT(failures, 20u);
}

TEST(SpacetimeDecoder, FailureFallsWithLatticeSizeBelowThreshold) {
  const double p = 0.015;
  const auto failure_rate = [&](size_t lattice, size_t shots) {
    const ToricCode code(lattice);
    const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
    size_t failures = 0;
    for (uint64_t seed = 0; seed < shots; ++seed) {
      failures += run_phenomenological_memory(decoder, p, p, lattice,
                                              1300 + seed * 3)
                      .logical_fail
                      ? 1
                      : 0;
    }
    return static_cast<double>(failures) / static_cast<double>(shots);
  };
  EXPECT_LT(failure_rate(6, 500), failure_rate(3, 500) + 1e-9);
}

TEST(SpacetimeDecoder, PurelyTimelikeDefectsNeedNoCorrection) {
  // Misread chains at three well-separated sites: every defect pair sits at
  // the same site in adjacent rounds, so the optimal matching is purely
  // time-like and the spatial projection — the data correction — is empty.
  const ToricCode code(4);
  const std::vector<std::shared_ptr<const MatchingStrategy>> strategies = {
      greedy(), mwpm(), blossom()};
  for (const auto& strategy : strategies) {
    const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, strategy);
    const std::vector<uint32_t> sites = {0, 0, 7, 7, 12, 12};
    const std::vector<uint32_t> rounds = {0, 1, 1, 2, 2, 3};
    EXPECT_FALSE(decoder.decode_defects(sites, rounds).any())
        << strategy->name();
  }
}

// The batched front-end contract: lane l of decode_lanes is bit-for-bit the
// correction a serial decode of lane l's unpacked syndrome history returns.
TEST(BatchDecode, LanesAreBitIdenticalToSerialDecode) {
  const ToricCode code(6);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  const size_t sites = code.num_plaquettes();
  const size_t rounds = 5;  // noisy rounds; +1 trusted closing row
  Rng rng(91);
  PackedSyndromes packed;
  packed.resize(sites, rounds + 1);
  std::vector<std::vector<gf2::BitVec>> serial(64);
  for (size_t lane = 0; lane < 64; ++lane) {
    gf2::BitVec errors(code.num_qubits());
    std::vector<gf2::BitVec> history;
    for (size_t t = 0; t < rounds; ++t) {
      for (size_t e = 0; e < code.num_qubits(); ++e) {
        if (rng.bernoulli(0.03)) errors.flip(e);
      }
      gf2::BitVec s = code.plaquette_syndrome(errors);
      for (size_t b = 0; b < sites; ++b) {
        if (rng.bernoulli(0.03)) s.flip(b);  // measurement error
      }
      history.push_back(s);
    }
    history.push_back(code.plaquette_syndrome(errors));  // trusted row
    for (size_t t = 0; t <= rounds; ++t) {
      for (size_t b = 0; b < sites; ++b) {
        packed.set(t, b, lane, history[t].get(b));
      }
    }
    serial[lane] = std::move(history);
  }
  const auto batch = decode_lanes(decoder, packed);
  ASSERT_EQ(batch.size(), 64u);
  for (size_t lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(batch[lane], decoder.decode(serial[lane])) << "lane " << lane;
  }
  // Masked lanes are skipped entirely and come back empty.
  const auto masked = decode_lanes(decoder, packed, 0xFFu);
  for (size_t lane = 0; lane < 64; ++lane) {
    if (lane < 8) {
      EXPECT_EQ(masked[lane], batch[lane]) << "lane " << lane;
    } else {
      EXPECT_EQ(masked[lane].size(), 0u) << "lane " << lane;
    }
  }
}

TEST(BatchDecode, MemoryKernelIsDeterministicAndHandlesTailLanes) {
  const ToricCode code(4);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm());
  // 100 shots = one full 64-lane word plus a 36-lane tail word.
  const uint64_t first = batch_memory_2d_failures(decoder, 0.08, 100, 42);
  const uint64_t second = batch_memory_2d_failures(decoder, 0.08, 100, 42);
  EXPECT_EQ(first, second);
  EXPECT_LE(first, 100u);
  EXPECT_GT(first, 0u);  // p = 0.08 on L=4 fails ~18% of shots
}

TEST(DetectorErrorModel, SingleFaultsFireOnlyNearestNeighborDetectorPairs) {
  const ToricCode code(4);
  const ToricDem plaquette = ToricDem::build(code, ToricSide::kPlaquette);
  const auto& counts = plaquette.counts();
  EXPECT_GT(counts.locations, 0u);
  EXPECT_GT(counts.space, 0.0);  // data errors between extraction layers
  EXPECT_GT(counts.time, 0.0);   // readout / ancilla-prep faults
  EXPECT_GT(counts.diag, 0.0);   // mid-extraction CNOT hook faults
  // The greedy pair decomposition must fully explain every single fault with
  // unit-displacement edges; residual "far" mass would mean the DEM graph is
  // missing an edge class the decoder needs.
  EXPECT_EQ(counts.far, 0.0);
  const double ps = plaquette.p_space(0.01);
  const double pt = plaquette.p_time(0.01);
  EXPECT_GT(ps, 0.0);
  EXPECT_LT(ps, 0.5);
  EXPECT_GT(pt, 0.0);
  EXPECT_LT(pt, 0.5);
  const SpacetimeOptions weights = plaquette.weights_at(0.01);
  EXPECT_GE(weights.space_weight, 1u);
  EXPECT_GE(weights.time_weight, 1u);
  // Less likely edge class => larger -log p weight; at 1% the space class
  // (more fault locations feed it) must not be the more expensive edge.
  EXPECT_EQ(ps > pt, weights.space_weight < weights.time_weight);
  // Star side runs the Hadamard sandwich: more fault locations, same clean
  // nearest-neighbor decomposition.
  const ToricDem star = ToricDem::build(code, ToricSide::kStar);
  EXPECT_EQ(star.counts().far, 0.0);
  EXPECT_GT(star.counts().locations, counts.locations);
}

TEST(DetectorErrorModel, CircuitMemoryShotsAlwaysClearTheFinalSyndrome) {
  const ToricCode code(4);
  const ToricDem dem = ToricDem::build(code, ToricSide::kPlaquette);
  const SpacetimeToricDecoder decoder(code, ToricSide::kPlaquette, mwpm(),
                                      dem.weights_at(0.004));
  PhenomenologicalScratch scratch;
  size_t failures = 0;
  for (uint64_t seed = 0; seed < 80; ++seed) {
    const auto result =
        run_circuit_memory(decoder, 0.004, 4, 500 + seed, &scratch);
    EXPECT_TRUE(result.cleared) << "seed " << seed;
    failures += result.logical_fail ? 1 : 0;
  }
  // eps = 0.4% sits well below the ~1.4% circuit-level threshold.
  EXPECT_LT(failures, 16u);
}

TEST(DecoderInterface, StrategiesArePluggableThroughOneCallSite) {
  const ToricCode code(6);
  Rng rng(79);
  gf2::BitVec errors(code.num_qubits());
  for (size_t e = 0; e < code.num_qubits(); ++e) {
    if (rng.bernoulli(0.04)) errors.set(e, true);
  }
  const gf2::BitVec syndrome = code.plaquette_syndrome(errors);
  const std::vector<std::shared_ptr<const MatchingStrategy>> strategies = {
      greedy(), mwpm(), blossom()};
  for (const auto& strategy : strategies) {
    const std::unique_ptr<Decoder> decoder =
        std::make_unique<ToricMatchingDecoder>(code, ToricSide::kPlaquette,
                                               strategy);
    EXPECT_EQ(code.plaquette_syndrome(decoder->decode(syndrome)), syndrome)
        << decoder->name();
  }
}

TEST(DecoderInterface, ToricCodeWrapperStillUsesGreedyStrategy) {
  // ToricCode::decode_plaquette_syndrome delegates to the subsystem with the
  // greedy strategy; pin the equivalence so the rewire stays honest.
  const ToricCode code(6);
  const ToricMatchingDecoder greedy_dec(code, ToricSide::kPlaquette, greedy());
  Rng rng(83);
  for (int trial = 0; trial < 25; ++trial) {
    gf2::BitVec errors(code.num_qubits());
    for (size_t e = 0; e < code.num_qubits(); ++e) {
      if (rng.bernoulli(0.06)) errors.set(e, true);
    }
    const gf2::BitVec syndrome = code.plaquette_syndrome(errors);
    EXPECT_EQ(code.decode_plaquette_syndrome(syndrome),
              greedy_dec.decode(syndrome));
  }
}

}  // namespace
}  // namespace ftqc::decode
